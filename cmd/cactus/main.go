// Command cactus is the driver for the Cactus reproduction: it lists and
// runs workloads, prints per-kernel profiles, regenerates every figure and
// table of the paper on the device model, and exposes the pipeline's
// telemetry — launch timelines, study counters, and profiling endpoints.
//
// Usage:
//
//	cactus list
//	cactus device
//	cactus run <abbr> [...]
//	cactus profile <abbr>
//	cactus export <abbr> [file]
//	cactus trace <abbr> [file]
//	cactus compare <abbr> [...]
//	cactus explain [-json] [-launches] [-depth N] [abbr ...]
//	cactus lint [abbr ...]
//	cactus audit [abbr ...]
//	cactus figure <1..9>
//	cactus table <1..4>
//	cactus bench [run|check|scaling] [flags]
//	cactus serve [-addr HOST:PORT] [-lru N] [-max-inflight N] [-timeout D]
//	cactus all
//
// Flags:
//
//	-device rtx3080|gtx1080   device model (default rtx3080)
//	-clusters K               cluster count for figure 9 (default 6)
//	-j N                      concurrent characterization workers (default NumCPU)
//	-cache DIR                profile cache directory (default per-user cache dir)
//	-no-cache                 disable the on-disk profile cache
//	-trace FILE               write a Chrome trace of the whole study to FILE
//	-v                        per-workload progress and a counters snapshot on stderr
//	-metrics FILE             write a Prometheus text metrics snapshot to FILE at exit
//	-log text|json            structured per-workload logging (log/slog) on stderr
//	-pprof ADDR               serve pprof, /metrics, and /debug endpoints on ADDR
//
// `cactus explain` is the paper's top-down methodology as a live report: it
// characterizes the requested workloads (all by default) and renders the
// hierarchical attribution tree — study → workload → phase (all invocations
// of one kernel), with -launches down to individual launches — splitting
// every node's modeled time into DRAM-bound, compute-bound, latency-bound,
// and launch-overhead shares derived from the model's stall attribution.
// The shares provably sum to 1 at every node (checked on every invocation;
// violations exit nonzero). -json emits the tree as JSON.
//
// The -pprof listener serves, besides net/http/pprof at /debug/pprof/ and
// expvar at /debug/vars: /metrics (Prometheus text exposition of the
// study's counters and histograms), /debug/counters (the same snapshot as
// aligned text, ?format=json for JSON), and /debug/attribution (the latest
// study's attribution tree as JSON, ?format=text for the aligned report).
//
// `cactus lint` statically audits every registered workload's kernel-spec
// stream against the device limits (Table II) without running the
// simulation: each workload executes against an audit device that records
// specs instead of modeling them, and every spec is checked for block sizes
// that are not warp multiples or exceed device limits, shared memory over
// the SM budget, degenerate grids, and zero theoretical occupancy. Exit is
// nonzero on any violation. The code-level companion is cmd/cactuslint.
//
// `cactus audit` replays every registered workload's launches through the
// real timing model and audits each result for metric soundness
// (gpu.CheckResult): fractional metrics finite and within [0,1], stall
// shares summing to at most 1, instruction intensity and GIPS consistent
// with the instruction mix and modeled time, DRAM read throughput under
// the device peak, and per-kernel times adding up to the session total.
// Exit is nonzero on any violation.
//
// `cactus bench` times a fixed benchmark set (the serial and parallel study
// plus subsystem micro-benchmarks) with pinned iteration counts, best-of-N,
// and writes BENCH_<label>.json. `cactus bench check -baseline
// BENCH_baseline.json` re-measures (or reads -current) and exits nonzero
// when any benchmark is more than -threshold (default 15%) slower than the
// baseline — the CI perf gate. `cactus bench scaling` checks the parallel
// study is not slower than serial at -j 2 and -j 8.
//
// `cactus serve` runs the characterization pipeline as a long-running HTTP
// service (see internal/server): profiles, roofline placements, cross-device
// comparisons, and attribution trees for any workload × device combination,
// answered from an in-memory LRU with singleflight collapse of concurrent
// identical studies. The global -j, -cache, and -metrics flags apply.
//
// Exit codes: 0 on success, 1 on a runtime failure, 2 on a usage error
// (unknown command or flag, wrong arity, out-of-range argument).
//
// `cactus trace <abbr>` records one workload's launch timeline as Chrome
// trace-event JSON (load it in chrome://tracing or https://ui.perfetto.dev):
// the modeled-GPU-time track lays kernels end to end using modeled
// durations, and the host track shows what the pipeline did. The -trace
// flag captures the same thing for every study command (run, figure, table,
// all), one modeled lane per workload plus one host lane per worker.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError marks a failure the user caused by invoking cactus wrong —
// unknown command or flag, wrong arity, out-of-range argument. It exits 2,
// distinguishing "you asked wrong" from "the run failed" (exit 1), so
// scripts can tell a typo from a real regression. printed suppresses the
// final error line for flag-parse errors the flag package already reported.
type usageError struct {
	msg     string
	printed bool
}

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// parseFlags runs fs.Parse and classifies the failure: -h/-help passes
// through as flag.ErrHelp (exit 0), anything else is a usage error (exit 2)
// the flag package has already reported on fs.Output.
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageError{msg: err.Error(), printed: true}
}

// cliMain maps run's error to the process exit code: 0 on success (and for
// -h/-help), 2 on usage errors, 1 on everything else. Every subcommand
// reports through this one path, so exit codes and stderr prefixes are
// uniform across the CLI.
func cliMain(args []string, out, errOut io.Writer) int {
	err := run(args, out, errOut)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		if !ue.printed {
			fmt.Fprintln(errOut, "cactus:", err)
		}
		return 2
	}
	fmt.Fprintln(errOut, "cactus:", err)
	return 1
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("cactus", flag.ContinueOnError)
	fs.SetOutput(errOut)
	deviceName := fs.String("device", "rtx3080", "device model: rtx3080 or gtx1080")
	clusters := fs.Int("clusters", 6, "cluster count for figure 9")
	jobs := fs.Int("j", runtime.NumCPU(), "concurrent characterization workers")
	cacheDir := fs.String("cache", "", "profile cache directory (default per-user cache dir)")
	noCache := fs.Bool("no-cache", false, "disable the on-disk profile cache")
	traceFile := fs.String("trace", "", "write a Chrome trace of the study to this file")
	verbose := fs.Bool("v", false, "per-workload progress and counters on stderr")
	metricsFile := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file at exit")
	logFormat := fs.String("log", "", "structured per-workload logging on stderr: text or json")
	pprofAddr := fs.String("pprof", "", "serve pprof, /metrics, and /debug endpoints on this address")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return usagef("missing command (list, device, run, profile, export, trace, compare, explain, lint, audit, figure, table, bench, serve, all)")
	}

	var cfg gpu.DeviceConfig
	switch *deviceName {
	case "rtx3080":
		cfg = gpu.RTX3080()
	case "gtx1080":
		cfg = gpu.GTX1080()
	default:
		return usagef("unknown device %q (rtx3080 or gtx1080)", *deviceName)
	}

	counters := telemetry.NewCounters()
	registry := telemetry.NewRegistryWith(counters)
	liveRegistry.Store(registry)
	opts := core.StudyOptions{Workers: *jobs, Counters: counters, Metrics: registry}
	switch *logFormat {
	case "":
	case "text":
		opts.Logger = slog.New(slog.NewTextHandler(errOut, nil))
	case "json":
		opts.Logger = slog.New(slog.NewJSONHandler(errOut, nil))
	default:
		return usagef("unknown -log format %q (text or json)", *logFormat)
	}
	var rec *telemetry.Recorder
	if *traceFile != "" {
		rec = telemetry.NewRecorder()
		opts.Tracer = rec
	}
	if *verbose {
		opts.Progress = func(p core.WorkloadProgress) {
			if p.StoreErr != nil {
				fmt.Fprintf(errOut, "cactus: %s: cache store failed: %v\n", p.Abbr, p.StoreErr)
			}
			fmt.Fprintf(errOut, "cactus: %s: %d kernels, modeled %.3f ms, wall %s, cache %s\n",
				p.Abbr, p.Kernels, p.ModeledTime.Millis(),
				p.Wall.Round(time.Millisecond), p.Cache)
		}
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer func() { _ = ln.Close() }() // shutdown race with http.Serve; nothing to do with the error
		registry.PublishExpvar("cactus")
		registerObservability()
		// net/http/pprof and expvar register on the default mux; profiles
		// live under /debug/pprof/, the metrics snapshot under /debug/vars
		// and /metrics, the attribution tree under /debug/attribution.
		go func() { _ = http.Serve(ln, nil) }()
		fmt.Fprintf(errOut, "cactus: profiling on http://%s/debug/pprof/ (metrics at /metrics, attribution at /debug/attribution)\n", ln.Addr())
	}
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			d, err := core.DefaultCacheDir()
			if err != nil {
				return fmt.Errorf("no default cache dir (pass -cache DIR or -no-cache): %w", err)
			}
			dir = d
		}
		cache, err := core.OpenCache(dir)
		if err != nil {
			return err
		}
		opts.Cache = cache
	}

	cat, err := core.DefaultCatalog()
	if err != nil {
		return err
	}

	cmdErr := dispatch(rest, cat, cfg, opts, counters, *clusters, out, errOut)
	if *verbose {
		fmt.Fprintln(errOut, "cactus: counters:")
		if err := counters.WriteText(errOut); err != nil && cmdErr == nil {
			cmdErr = err
		}
	}
	if *metricsFile != "" && cmdErr == nil {
		if err := writeMetricsFile(*metricsFile, registry); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "cactus: wrote metrics snapshot to %s\n", *metricsFile)
	}
	if rec != nil && cmdErr == nil {
		if err := writeTraceFile(*traceFile, rec); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "cactus: wrote %d trace events to %s\n", rec.Len(), *traceFile)
	}
	return cmdErr
}

// dispatch executes one CLI command.
func dispatch(rest []string, cat *workloads.Catalog, cfg gpu.DeviceConfig,
	opts core.StudyOptions, counters *telemetry.Counters, clusters int,
	out, errOut io.Writer) error {
	switch rest[0] {
	case "list":
		return core.WriteWorkloadsTable(out, cat.All())

	case "device":
		st := &core.Study{Device: cfg}
		return core.Table2(st, out)

	case "run":
		if len(rest) < 2 {
			return usagef("run: need at least one workload abbreviation")
		}
		var ws []workloads.Workload
		for _, abbr := range rest[1:] {
			w, err := cat.Lookup(abbr)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		st, err := core.NewStudyWith(cfg, opts, ws...)
		if err != nil {
			return err
		}
		liveAttribution.Store(core.Attribute(st))
		for _, p := range st.Profiles {
			fmt.Fprintf(out, "%s: %d kernels, %.3f ms GPU time, %s warp insts, agg II %.2f, agg GIPS %.1f\n",
				p.Abbr(), len(p.Kernels), p.TotalTime.Millis(),
				fmtCount(uint64(p.TotalWarpInsts)), p.AggII, p.AggGIPS)
		}
		return nil

	case "export":
		// The paper's future work: simulator-compatible kernel traces.
		if len(rest) < 2 || len(rest) > 3 {
			return usagef("export: usage: export <abbr> [file]")
		}
		w, err := cat.Lookup(rest[1])
		if err != nil {
			return err
		}
		dev, err := gpu.New(cfg)
		if err != nil {
			return err
		}
		sess := profiler.NewSession(dev)
		if err := w.Run(sess); err != nil {
			return err
		}
		if err := writeToSink(rest, out, func(sink io.Writer) error {
			return trace.Export(sink, w.Abbr(), cfg, sess)
		}); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "exported %d launches\n", sess.LaunchCount())
		return nil

	case "trace":
		// The Nsight-Systems analogue: one workload's launch timeline as
		// Chrome trace-event JSON (chrome://tracing / Perfetto).
		if len(rest) < 2 || len(rest) > 3 {
			return usagef("trace: usage: trace <abbr> [file]")
		}
		w, err := cat.Lookup(rest[1])
		if err != nil {
			return err
		}
		dev, err := gpu.New(cfg)
		if err != nil {
			return err
		}
		rec := telemetry.NewRecorder()
		dev.SetTelemetry(rec, counters)
		sess := profiler.NewSessionWith(dev, profiler.SessionOptions{
			Tracer: rec, Label: w.Abbr(),
		})
		if err := w.Run(sess); err != nil {
			return err
		}
		if err := writeToSink(rest, out, func(sink io.Writer) error {
			return telemetry.WriteChrome(sink, rec.Events())
		}); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "traced %d launches, modeled %.3f ms\n",
			sess.LaunchCount(), sess.TotalTime().Millis())
		return nil

	case "profile":
		if len(rest) != 2 {
			return usagef("profile: need exactly one workload abbreviation")
		}
		w, err := cat.Lookup(rest[1])
		if err != nil {
			return err
		}
		p, err := core.Characterize(w, cfg)
		if err != nil {
			return err
		}
		return core.WriteProfileTable(out, p)

	case "figure":
		if len(rest) != 2 {
			return usagef("figure: need a figure number 1..9")
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil || n < 1 || n > 9 {
			return usagef("figure: %q is not in 1..9", rest[1])
		}
		if n == 1 {
			return core.Figure1(out)
		}
		st, err := studyFor(cat, cfg, opts, n)
		if err != nil {
			return err
		}
		liveAttribution.Store(core.Attribute(st))
		switch n {
		case 2:
			return core.Figure2(st, out)
		case 3:
			return core.Figure3(st, out)
		case 4:
			return core.Figure4(st, out)
		case 5:
			return core.Figure5(st, out)
		case 6:
			return core.Figure6(st, out)
		case 7:
			return core.Figure7(st, out)
		case 8:
			return core.Figure8(st, out)
		case 9:
			return core.Figure9(st, out, clusters)
		}
		return nil

	case "table":
		if len(rest) != 2 {
			return usagef("table: need a table number 1..4")
		}
		switch rest[1] {
		case "1":
			st, err := core.NewStudyWith(cfg, opts, core.CactusWorkloads()...)
			if err != nil {
				return err
			}
			liveAttribution.Store(core.Attribute(st))
			return core.Table1(st, out)
		case "2":
			return core.Table2(&core.Study{Device: cfg}, out)
		case "3":
			return core.Table3(cat, out)
		case "4":
			return core.Table4(out)
		}
		return usagef("table: %q is not in 1..4", rest[1])

	case "compare":
		// Cross-device sensitivity (the paper's future work): characterize
		// the given workloads on the RTX 3080 and GTX 1080 models.
		if len(rest) < 2 {
			return usagef("compare: need at least one workload abbreviation")
		}
		var ws []workloads.Workload
		for _, abbr := range rest[1:] {
			w, err := cat.Lookup(abbr)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		a, err := core.NewStudyWith(gpu.RTX3080(), opts, ws...)
		if err != nil {
			return err
		}
		bSt, err := core.NewStudyWith(gpu.GTX1080(), opts, ws...)
		if err != nil {
			return err
		}
		cmps, err := core.CompareDevices(a, bSt)
		if err != nil {
			return err
		}
		return core.WriteCompareTable(out, cmps)

	case "lint":
		ws := cat.All()
		if len(rest) > 1 {
			ws = ws[:0]
			for _, abbr := range rest[1:] {
				w, err := cat.Lookup(abbr)
				if err != nil {
					return err
				}
				ws = append(ws, w)
			}
		}
		return lintWorkloads(ws, cfg, out, errOut)

	case "audit":
		ws := cat.All()
		if len(rest) > 1 {
			ws = ws[:0]
			for _, abbr := range rest[1:] {
				w, err := cat.Lookup(abbr)
				if err != nil {
					return err
				}
				ws = append(ws, w)
			}
		}
		return auditWorkloads(ws, cfg, out, errOut)

	case "explain":
		return explainCmd(rest, cat, cfg, opts, out, errOut)

	case "bench":
		return benchCmd(rest, cfg, out, errOut)

	case "serve":
		return serveCmd(rest[1:], opts, errOut)

	case "all":
		st, err := core.NewStudyWith(cfg, opts, cat.All()...)
		if err != nil {
			return err
		}
		liveAttribution.Store(core.Attribute(st))
		if err := core.Figure1(out); err != nil {
			return err
		}
		if err := core.Figure2(st, out); err != nil {
			return err
		}
		if err := core.Table1(st, out); err != nil {
			return err
		}
		if err := core.Figure3(st, out); err != nil {
			return err
		}
		if err := core.Figure4(st, out); err != nil {
			return err
		}
		if err := core.Figure5(st, out); err != nil {
			return err
		}
		if err := core.Figure6(st, out); err != nil {
			return err
		}
		if err := core.Figure7(st, out); err != nil {
			return err
		}
		if err := core.Figure8(st, out); err != nil {
			return err
		}
		return core.Figure9(st, out, clusters)

	default:
		return usagef("unknown command %q", rest[0])
	}
}

// lintWorkloads runs each workload against an audit device — recording its
// kernel-spec stream without simulating it — and reports every spec that
// violates the device's hardware limits, one line per (kernel, rule) with
// the number of offending launches. Returns an error (nonzero exit) when
// any violation is found.
func lintWorkloads(ws []workloads.Workload, cfg gpu.DeviceConfig, out, errOut io.Writer) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var launches, violations int
	for _, w := range ws {
		dev, err := gpu.NewAudit(cfg)
		if err != nil {
			return err
		}
		sess := profiler.NewSession(dev)
		if err := w.Run(sess); err != nil {
			return fmt.Errorf("lint: %s: %w", w.Abbr(), err)
		}
		specs := dev.AuditSpecs()
		launches += len(specs)

		type key struct{ kernel, rule string }
		counts := make(map[key]int)
		details := make(map[key]string)
		var order []key
		for _, spec := range specs {
			for _, issue := range gpu.CheckSpec(cfg, spec) {
				k := key{spec.Name, issue.Rule}
				if counts[k] == 0 {
					order = append(order, k)
					details[k] = issue.Detail
				}
				counts[k]++
			}
		}
		for _, k := range order {
			fmt.Fprintf(out, "%s/%s: kernel %s: %s: %s (%d launches)\n",
				w.Suite(), w.Abbr(), k.kernel, k.rule, details[k], counts[k])
			violations++
		}
	}
	fmt.Fprintf(errOut, "cactus lint: %d workloads, %d launches audited, %d violations\n",
		len(ws), launches, violations)
	if violations > 0 {
		return fmt.Errorf("lint: %d kernel-spec violation(s)", violations)
	}
	return nil
}

// auditWorkloads replays each workload on the real timing model and audits
// every launch result for metric soundness (gpu.CheckResult), plus the
// session-level identity that per-kernel times sum to the session total.
// One line per (kernel, rule) with the number of offending launches; returns
// an error (nonzero exit) when any violation is found.
func auditWorkloads(ws []workloads.Workload, cfg gpu.DeviceConfig, out, errOut io.Writer) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var launches, violations int
	for _, w := range ws {
		dev, err := gpu.New(cfg)
		if err != nil {
			return err
		}
		sess := profiler.NewSession(dev)
		if err := w.Run(sess); err != nil {
			return fmt.Errorf("audit: %s: %w", w.Abbr(), err)
		}
		ls := sess.Launches()
		launches += len(ls)

		type key struct{ kernel, rule string }
		counts := make(map[key]int)
		details := make(map[key]string)
		var order []key
		for _, l := range ls {
			for _, issue := range gpu.CheckResult(cfg, l) {
				k := key{l.Name, issue.Rule}
				if counts[k] == 0 {
					order = append(order, k)
					details[k] = issue.Detail
				}
				counts[k]++
			}
		}
		var kernelSum units.Seconds
		for _, kp := range sess.Kernels() {
			kernelSum += kp.TotalTime
		}
		total := sess.TotalTime().Float()
		if diff := math.Abs(kernelSum.Float() - total); diff > 1e-9*math.Max(total, 1e-12) {
			k := key{"(session)", "time-sum"}
			order = append(order, k)
			details[k] = fmt.Sprintf("per-kernel times sum to %.9g s, session total is %.9g s", kernelSum.Float(), total)
			counts[k] = 1
		}
		for _, k := range order {
			fmt.Fprintf(out, "%s/%s: kernel %s: %s: %s (%d launches)\n",
				w.Suite(), w.Abbr(), k.kernel, k.rule, details[k], counts[k])
			violations++
		}
	}
	fmt.Fprintf(errOut, "cactus audit: %d workloads, %d launches audited, %d violations\n",
		len(ws), launches, violations)
	if violations > 0 {
		return fmt.Errorf("audit: %d metric-soundness violation(s)", violations)
	}
	return nil
}

// writeTraceFile dumps a recorded study trace as Chrome trace-event JSON.
func writeTraceFile(path string, rec *telemetry.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChrome(f, rec.Events()); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// writeToSink runs write against rest[2] when a file argument is given
// (propagating the close error — that is when buffered bytes reach disk) or
// against out otherwise.
func writeToSink(rest []string, out io.Writer, write func(io.Writer) error) error {
	if len(rest) < 3 {
		return write(out)
	}
	f, err := os.Create(rest[2])
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// studyFor builds the smallest study each figure needs.
func studyFor(cat *workloads.Catalog, cfg gpu.DeviceConfig, opts core.StudyOptions, figure int) (*core.Study, error) {
	switch figure {
	case 2, 4:
		return core.NewStudyWith(cfg, opts, core.BaselineWorkloads()...)
	case 3, 5, 6, 7:
		return core.NewStudyWith(cfg, opts, core.CactusWorkloads()...)
	default: // 8, 9 compare all suites
		return core.NewStudyWith(cfg, opts, cat.All()...)
	}
}

func fmtCount(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fB", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	}
	return strconv.FormatUint(v, 10)
}
