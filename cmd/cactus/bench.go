package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graphx"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// benchSuite is the registered benchmark set behind `cactus bench`: the two
// end-to-end study shapes the CI gate protects, plus micro-benchmarks for
// the subsystems the studies spend their time in. Iteration counts are
// fixed here — not auto-tuned — so every run times exactly the same work
// and ns/op is comparable between runs (see internal/benchkit).
func benchSuite(cfg gpu.DeviceConfig) []benchkit.Bench {
	// launch_disabled state: one device with telemetry off, so the entry
	// times the bare Launch hot path — the cost the observability layer
	// must not perturb when disabled.
	launchDev, err := gpu.New(cfg)
	if err != nil {
		panic(err) // cfg was validated by the caller; a failure here is a bug
	}
	const launchBytes = 8 << 20
	var launchMix isa.Mix
	launchMix.Add(isa.FP32, launchBytes/64)
	launchMix.Add(isa.LoadGlobal, launchBytes/128)
	// registry_observe state: one registry observed into per iteration —
	// the marginal cost a study pays per metrics event when enabled.
	reg := telemetry.NewRegistry()
	modeled := reg.Histogram(telemetry.HistWorkloadModeledSeconds)
	l1 := reg.Histogram(telemetry.HistKernelL1HitRate)
	return []benchkit.Bench{
		{Name: "study_serial", Iters: 1, Fn: func() {
			if _, err := core.NewStudy(cfg, core.CactusWorkloads()...); err != nil {
				panic(err)
			}
		}},
		{Name: "study_parallel_j8", Iters: 1, Fn: func() {
			if _, err := core.NewStudyWith(cfg, core.StudyOptions{Workers: 8}, core.CactusWorkloads()...); err != nil {
				panic(err)
			}
		}},
		{Name: "memsim_replay", Iters: 20, Fn: func() {
			pool := memsim.NewReplayPool(cfg.L1Config(), cfg.L2Config())
			h := pool.Get()
			b := memsim.NewBatcher(h, false)
			for a := uint64(0); a < 4<<20; a += 64 {
				b.Access(a)
			}
			b.Flush()
			pool.Put(h)
		}},
		{Name: "tensor_conv2d", Iters: 10, Fn: func() {
			r := rand.New(rand.NewSource(1))
			x := tensor.Randn(r, 1, 8, 16, 32, 32)
			w := tensor.Randn(r, 1, 32, 16, 3, 3)
			bias := tensor.New(32)
			if _, err := tensor.Conv2D(x, w, bias, 1, 1); err != nil {
				panic(err)
			}
		}},
		{Name: "graphx_rmat", Iters: 5, Fn: func() {
			if _, err := graphx.RMAT(15, 8, 42); err != nil {
				panic(err)
			}
		}},
		{Name: "launch_disabled", Iters: 100, Fn: func() {
			if _, err := launchDev.Launch(gpu.KernelSpec{
				Name: "bench_launch", Grid: gpu.D1(1024), Block: gpu.D1(256), Mix: launchMix,
				Streams: []memsim.Stream{{
					Name: "s", FootprintBytes: launchBytes, AccessBytes: launchBytes,
					ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true,
				}},
			}); err != nil {
				panic(err)
			}
		}},
		{Name: "registry_observe", Iters: 100000, Fn: func() {
			modeled.Observe(0.0042)
			l1.Observe(0.87)
			reg.Counters().Add(telemetry.CtrLaunches, 1)
			reg.Counters().Add(telemetry.CtrWarpInstructions, 4096)
		}},
	}
}

// benchCmd implements `cactus bench [run|check|scaling]`.
func benchCmd(rest []string, cfg gpu.DeviceConfig, out, errOut io.Writer) error {
	sub, args := "run", rest[1:]
	if len(rest) > 1 && (rest[1] == "check" || rest[1] == "scaling" || rest[1] == "run") {
		sub, args = rest[1], rest[2:]
	}
	switch sub {
	case "run":
		fs := flag.NewFlagSet("cactus bench", flag.ContinueOnError)
		fs.SetOutput(errOut)
		label := fs.String("label", "current", "suite label; results go to BENCH_<label>.json")
		rounds := fs.Int("rounds", 3, "rounds per benchmark (the fastest is reported)")
		if err := parseFlags(fs, args); err != nil {
			return err
		}
		suite := benchkit.RunSuite(*label, benchSuite(cfg), *rounds, out)
		path := "BENCH_" + *label + ".json"
		if err := benchkit.WriteFile(path, suite); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "cactus bench: wrote %d results to %s\n", len(suite.Results), path)
		return nil

	case "check":
		fs := flag.NewFlagSet("cactus bench check", flag.ContinueOnError)
		fs.SetOutput(errOut)
		baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline suite file")
		currentPath := fs.String("current", "", "pre-recorded current suite file (default: measure now)")
		threshold := fs.Float64("threshold", 0.15, "allowed slowdown before failing (0.15 = 15%)")
		rounds := fs.Int("rounds", 3, "rounds per benchmark when measuring")
		annotate := fs.Bool("annotate", false, "emit GitHub Actions ::error annotations for regressions")
		if err := parseFlags(fs, args); err != nil {
			return err
		}
		baseline, err := benchkit.ReadFile(*baselinePath)
		if err != nil {
			return fmt.Errorf("bench check: %w", err)
		}
		var current benchkit.Suite
		if *currentPath != "" {
			if current, err = benchkit.ReadFile(*currentPath); err != nil {
				return fmt.Errorf("bench check: %w", err)
			}
		} else {
			current = benchkit.RunSuite("current", benchSuite(cfg), *rounds, out)
			if err := benchkit.WriteFile("BENCH_current.json", current); err != nil {
				return err
			}
		}
		regs, missing := benchkit.Compare(baseline, current, *threshold)
		for _, name := range missing {
			fmt.Fprintf(out, "missing: %s is in the baseline but was not measured\n", name)
			if *annotate {
				fmt.Fprintf(out, "::error title=Benchmark missing: %s::%s is in %s but was not measured\n",
					name, name, *baselinePath)
			}
		}
		for _, r := range regs {
			fmt.Fprintln(out, r)
			if *annotate {
				fmt.Fprintln(out, r.Annotation())
			}
		}
		if n := len(regs) + len(missing); n > 0 {
			return fmt.Errorf("bench check: %d benchmark(s) regressed past %.0f%% or went missing", n, 100**threshold)
		}
		fmt.Fprintf(errOut, "cactus bench check: %d benchmarks within %.0f%% of %s\n",
			len(baseline.Results), 100**threshold, *baselinePath)
		return nil

	case "scaling":
		// Concurrency-scaling smoke: characterize the Cactus suite at
		// several worker counts and fail if going wide makes the study
		// slower than serial (a lock serializing the workers, a pool gone
		// pathological). Speedup is not asserted — CI runners have few
		// cores — only the absence of a slowdown, with tolerance for noise.
		fs := flag.NewFlagSet("cactus bench scaling", flag.ContinueOnError)
		fs.SetOutput(errOut)
		tolerance := fs.Float64("tolerance", 0.25, "allowed parallel-over-serial slowdown (0.25 = 25%)")
		rounds := fs.Int("rounds", 2, "rounds per worker count (the fastest is reported)")
		if err := parseFlags(fs, args); err != nil {
			return err
		}
		var serialNs float64
		for _, workers := range []int{1, 2, 8} {
			w := workers
			res := benchkit.Run(benchkit.Bench{
				Name: fmt.Sprintf("study_j%d", w), Iters: 1,
				Fn: func() {
					if _, err := core.NewStudyWith(cfg, core.StudyOptions{Workers: w}, core.CactusWorkloads()...); err != nil {
						panic(err)
					}
				},
			}, *rounds)
			fmt.Fprintf(out, "%-12s %14.0f ns/op\n", res.Name, res.NsPerOp)
			if w == 1 {
				serialNs = res.NsPerOp
				continue
			}
			if res.NsPerOp > serialNs*(1+*tolerance) {
				return fmt.Errorf("bench scaling: -j %d is %.1f%% slower than -j 1",
					w, 100*(res.NsPerOp/serialNs-1))
			}
		}
		fmt.Fprintf(errOut, "cactus bench scaling: parallel within %.0f%% of serial\n", 100**tolerance)
		return nil
	}
	return usagef("bench: unknown subcommand %q (run, check, scaling)", sub)
}
