package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/units"
)

// TestObservabilityEndpoints — the -pprof introspection surface serves the
// live registry and attribution tree through the same snapshot path the
// offline formats use: /metrics in Prometheus text exposition,
// /debug/counters in text or JSON, /debug/attribution in JSON or text.
func TestObservabilityEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counters().Add(telemetry.CtrLaunches, 7)
	reg.Histogram(telemetry.HistWorkloadModeledSeconds).Observe(0.004)
	liveRegistry.Store(reg)
	leaf := &telemetry.AttributionNode{
		Level: telemetry.LevelLaunch, Name: "k#0",
		Time: units.Seconds(1e-3), Launches: 1,
		Shares: telemetry.AttributeStalls(units.Seconds(1e-3), units.Seconds(2.5e-6), 0.4, 0.1, 0.1, 0.05),
	}
	liveAttribution.Store(telemetry.AggregateNode(telemetry.LevelStudy, "test-device", []*telemetry.AttributionNode{leaf}))

	registerObservability()
	srv := httptest.NewServer(http.DefaultServeMux)
	defer srv.Close()
	get := func(path string) (body, contentType string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"cactus_gpu_launches 7",
		"# TYPE cactus_workload_modeled_seconds histogram",
		`cactus_workload_modeled_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	text, ct := get("/debug/counters")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/debug/counters Content-Type = %q", ct)
	}
	if !strings.Contains(text, "gpu.launches") {
		t.Errorf("/debug/counters text missing the launch counter:\n%s", text)
	}
	asJSON, ct := get("/debug/counters?format=json")
	if ct != "application/json" {
		t.Errorf("/debug/counters?format=json Content-Type = %q", ct)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(asJSON), &snap); err != nil {
		t.Fatalf("/debug/counters?format=json is not valid JSON: %v\n%s", err, asJSON)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "gpu.launches" || snap.Counters[0].Value != 7 {
		t.Errorf("counters snapshot = %+v, want gpu.launches 7", snap.Counters)
	}

	attr, ct := get("/debug/attribution")
	if ct != "application/json" {
		t.Errorf("/debug/attribution Content-Type = %q", ct)
	}
	var root struct {
		Level    string             `json:"level"`
		Shares   map[string]float64 `json:"shares"`
		Children []json.RawMessage  `json:"children"`
	}
	if err := json.Unmarshal([]byte(attr), &root); err != nil {
		t.Fatalf("/debug/attribution is not valid JSON: %v\n%s", err, attr)
	}
	if root.Level != "study" || len(root.Children) != 1 {
		t.Errorf("attribution tree = %+v", root)
	}
	var sum float64
	for _, v := range root.Shares {
		sum += v
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Errorf("attribution root shares sum to %g, want 1", sum)
	}
	attrText, _ := get("/debug/attribution?format=text")
	if !strings.Contains(attrText, "test-device") || !strings.Contains(attrText, "k#0") {
		t.Errorf("/debug/attribution?format=text rendering:\n%s", attrText)
	}
}
