package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExplainCommand — the text report carries every tree level and all
// four bottleneck categories, and two runs are byte-identical (the
// modeled track is deterministic).
func TestExplainCommand(t *testing.T) {
	explain := func() string {
		var out bytes.Buffer
		if err := run([]string{"-no-cache", "explain", "GMS", "pb-sgemm"}, &out, io.Discard); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := explain()
	for _, want := range []string{
		"NVIDIA GeForce RTX 3080", "GMS", "pb-sgemm", "mysgemmNT",
		"dram", "compute", "latency", "overhead", "launches",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("explain output missing %q:\n%s", want, got)
		}
	}
	if got != explain() {
		t.Error("two explain runs differ byte for byte")
	}
}

// TestExplainJSON — -json emits a parseable tree whose shares sum to 1 at
// the root and which descends study → workload → phase.
func TestExplainJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-cache", "explain", "-json", "pb-sgemm"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	type node struct {
		Level    string             `json:"level"`
		Name     string             `json:"name"`
		Shares   map[string]float64 `json:"shares"`
		Children []node             `json:"children"`
	}
	var root node
	if err := json.Unmarshal(out.Bytes(), &root); err != nil {
		t.Fatalf("explain -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if root.Level != "study" || len(root.Children) != 1 || root.Children[0].Level != "workload" {
		t.Errorf("tree shape = %+v", root)
	}
	var sum float64
	for _, v := range root.Shares {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("root shares sum to %g, want 1", sum)
	}
}

// TestExplainLaunches — -launches descends to individual launch leaves.
func TestExplainLaunches(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-cache", "explain", "-launches", "pb-sgemm"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mysgemmNT#0") {
		t.Errorf("launch-depth output has no launch leaf:\n%s", out.String())
	}
}

// TestMetricsFlag — -metrics FILE writes a Prometheus text snapshot of
// the study's counters and histograms.
func TestMetricsFlag(t *testing.T) {
	file := filepath.Join(t.TempDir(), "metrics.txt")
	var errOut bytes.Buffer
	if err := run([]string{"-no-cache", "-metrics", file, "run", "pb-sgemm"}, io.Discard, &errOut); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE cactus_gpu_launches gauge",
		"# TYPE cactus_workload_modeled_seconds histogram",
		`cactus_workload_modeled_seconds_bucket{le="+Inf"} 1`,
		"cactus_kernel_l1_hit_rate_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut.String(), "wrote metrics snapshot") {
		t.Errorf("stderr lacks the snapshot notice: %q", errOut.String())
	}
}

// TestLogFlag — -log json emits one structured completion event per
// workload on stderr.
func TestLogFlag(t *testing.T) {
	var errOut bytes.Buffer
	if err := run([]string{"-no-cache", "-log", "json", "run", "pb-sgemm"}, io.Discard, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), `"msg":"workload characterized"`) ||
		!strings.Contains(errOut.String(), `"workload":"pb-sgemm"`) {
		t.Errorf("-log json output missing the completion event:\n%s", errOut.String())
	}
}

// TestStudyOutputUnaffectedByObservability — the acceptance criterion
// that observability is an overlay: the same command with every
// observability surface enabled produces byte-identical stdout.
func TestStudyOutputUnaffectedByObservability(t *testing.T) {
	file := filepath.Join(t.TempDir(), "m.txt")
	var plain, observed bytes.Buffer
	if err := run([]string{"-no-cache", "run", "pb-sgemm", "pb-spmv"}, &plain, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-no-cache", "-v", "-log", "json", "-metrics", file, "run", "pb-sgemm", "pb-spmv"},
		&observed, io.Discard); err != nil {
		t.Fatal(err)
	}
	if plain.String() != observed.String() {
		t.Errorf("stdout differs with observability enabled:\n--- plain\n%s--- observed\n%s",
			plain.String(), observed.String())
	}
}
