package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// explainCmd implements `cactus explain [-json] [-launches] [-depth N]
// [abbr ...]`: the top-down attribution report. It characterizes the given
// workloads (all of them by default), builds the study → workload → phase
// attribution tree, verifies the sum-to-1 identity at every node, and
// renders the tree as aligned text or JSON. With -launches it re-simulates
// each workload to descend one further level, to individual launches
// (bypassing the profile cache, which stores no per-launch data).
func explainCmd(rest []string, cat *workloads.Catalog, cfg gpu.DeviceConfig,
	opts core.StudyOptions, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("cactus explain", flag.ContinueOnError)
	fs.SetOutput(errOut)
	asJSON := fs.Bool("json", false, "render the attribution tree as JSON")
	launches := fs.Bool("launches", false, "descend to individual launches (re-simulates, ignoring the cache)")
	depth := fs.Int("depth", 0, "limit the text rendering to this many levels (0 = all)")
	if err := parseFlags(fs, rest[1:]); err != nil {
		return err
	}
	ws := cat.All()
	if args := fs.Args(); len(args) > 0 {
		ws = ws[:0]
		for _, abbr := range args {
			w, err := cat.Lookup(abbr)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
	}

	var root *telemetry.AttributionNode
	if *launches {
		children := make([]*telemetry.AttributionNode, 0, len(ws))
		for _, w := range ws {
			dev, err := gpu.New(cfg)
			if err != nil {
				return err
			}
			sess := profiler.NewSession(dev)
			if err := w.Run(sess); err != nil {
				return fmt.Errorf("explain: %s: %w", w.Abbr(), err)
			}
			children = append(children, core.AttributeSession(w.Abbr(), sess))
		}
		root = telemetry.AggregateNode(telemetry.LevelStudy, cfg.Name, children)
	} else {
		st, err := core.NewStudyWith(cfg, opts, ws...)
		if err != nil {
			return err
		}
		root = core.Attribute(st)
	}
	liveAttribution.Store(root)

	if violations := telemetry.CheckAttribution(root, 0); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(errOut, "cactus explain:", v)
		}
		return fmt.Errorf("explain: %d attribution-identity violation(s)", len(violations))
	}
	if *asJSON {
		return telemetry.WriteAttributionJSON(out, root)
	}
	return telemetry.WriteAttributionText(out, root, *depth)
}

// writeMetricsFile renders the registry's Prometheus text exposition to
// path — the -metrics flag, and the artifact CI attaches to the bench gate.
func writeMetricsFile(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
