package main

import (
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Live observability state behind the -pprof listener. The handlers render
// whatever registry and attribution tree the current command most recently
// produced, through the same snapshot path every offline format uses. The
// state is package-level (atomics, not locals) because the default
// net/http mux accepts only one registration per pattern while tests call
// run() many times per process — the Once keeps re-registration a no-op
// and the pointers let each run swap in its own state.
var (
	liveRegistry    atomic.Pointer[telemetry.Registry]
	liveAttribution atomic.Pointer[telemetry.AttributionNode]
	obsOnce         sync.Once
)

// registerObservability installs the introspection endpoints on the default
// mux, alongside the /debug/pprof/ and /debug/vars handlers net/http/pprof
// and expvar already registered:
//
//	/metrics            Prometheus text exposition of counters + histograms
//	/debug/counters     aligned text (or ?format=json) of the same snapshot
//	/debug/attribution  the latest study's attribution tree as JSON
//	                    (or ?format=text for the aligned rendering)
//
// A handler write error means the scraper hung up mid-response; it cannot
// be retried, so it is counted under serve.write_errors in the live
// registry (the next successful scrape reports it).
func registerObservability() {
	obsOnce.Do(func() {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			countObsWriteError(liveRegistry.Load().WritePrometheus(w))
		})
		http.HandleFunc("/debug/counters", func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				countObsWriteError(liveRegistry.Load().WriteJSON(w))
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			countObsWriteError(liveRegistry.Load().WriteText(w))
		})
		http.HandleFunc("/debug/attribution", func(w http.ResponseWriter, req *http.Request) {
			root := liveAttribution.Load()
			if req.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				countObsWriteError(telemetry.WriteAttributionText(w, root, 0))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			countObsWriteError(telemetry.WriteAttributionJSON(w, root))
		})
	})
}

// countObsWriteError records a failed observability-handler write in the
// live registry's counters (nil-safe on both sides).
func countObsWriteError(err error) {
	if err != nil {
		liveRegistry.Load().Counters().Add(telemetry.CtrServeWriteErrors, 1)
	}
}
