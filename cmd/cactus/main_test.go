package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no command", nil},
		{"unknown command", []string{"frobnicate"}},
		{"unknown device", []string{"-device", "voodoo3", "list"}},
		{"figure out of range", []string{"figure", "12"}},
		{"figure not a number", []string{"figure", "one"}},
		{"table out of range", []string{"table", "9"}},
		{"run without workload", []string{"run"}},
		{"profile wrong arity", []string{"profile"}},
		{"profile unknown workload", []string{"profile", "XYZ"}},
		{"export wrong arity", []string{"export"}},
		{"compare without workload", []string{"compare"}},
		{"audit unknown workload", []string{"audit", "XYZ"}},
		{"explain unknown workload", []string{"explain", "XYZ"}},
		{"unknown log format", []string{"-log", "xml", "list"}},
	}
	for _, tc := range cases {
		if err := run(tc.args, io.Discard, io.Discard); err == nil {
			t.Errorf("%s: expected an error for %v", tc.name, tc.args)
		}
	}
}

// TestUsageListsEveryCommand — the missing-command error is the CLI's only
// usage listing, so every command must appear in it (compare used to be
// omitted).
func TestUsageListsEveryCommand(t *testing.T) {
	err := run(nil, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("expected a missing-command error")
	}
	for _, cmd := range []string{
		"list", "device", "run", "profile", "export", "trace", "compare", "explain", "lint", "audit", "figure", "table", "bench", "serve", "all",
	} {
		if !strings.Contains(err.Error(), cmd) {
			t.Errorf("usage error %q omits command %q", err, cmd)
		}
	}
}

// TestExitCodes pins the CLI's exit-code convention across subcommands:
// 0 for success and -h/-help, 2 for usage errors (unknown command or flag,
// wrong arity, out-of-range argument), 1 for runtime failures.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"list"}, 0},
		{"help flag", []string{"-h"}, 0},
		{"serve help", []string{"serve", "-h"}, 0},
		{"explain help", []string{"explain", "-h"}, 0},
		{"bench check help", []string{"bench", "check", "-h"}, 0},
		{"missing command", nil, 2},
		{"unknown command", []string{"frobnicate"}, 2},
		{"unknown flag", []string{"-frobnicate", "list"}, 2},
		{"unknown device", []string{"-device", "voodoo3", "list"}, 2},
		{"bad log format", []string{"-log", "xml", "list"}, 2},
		{"figure out of range", []string{"figure", "12"}, 2},
		{"figure not a number", []string{"figure", "one"}, 2},
		{"table out of range", []string{"table", "9"}, 2},
		{"run without workload", []string{"run"}, 2},
		{"profile wrong arity", []string{"profile"}, 2},
		{"export wrong arity", []string{"export"}, 2},
		{"trace wrong arity", []string{"trace"}, 2},
		{"compare without workload", []string{"compare"}, 2},
		{"serve unexpected argument", []string{"serve", "bogus"}, 2},
		{"serve unknown flag", []string{"serve", "-frobnicate"}, 2},
		{"explain unknown flag", []string{"explain", "-frobnicate"}, 2},
		{"unknown workload", []string{"profile", "XYZ"}, 1},
		{"bench check missing baseline", []string{"bench", "check", "-baseline", "/nonexistent.json", "-current", "/nonexistent.json"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cliMain(tc.args, io.Discard, io.Discard); got != tc.want {
				t.Errorf("cliMain(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestErrorOutputOnStderr — every failure path reports on stderr exactly
// once: prefixed errors are not duplicated, flag-parse errors are left to
// the flag package's own report, and stdout stays clean.
func TestErrorOutputOnStderr(t *testing.T) {
	t.Run("usage error prefixed once", func(t *testing.T) {
		var out, errOut strings.Builder
		if got := cliMain([]string{"frobnicate"}, &out, &errOut); got != 2 {
			t.Fatalf("exit = %d, want 2", got)
		}
		if want := "cactus: unknown command \"frobnicate\"\n"; errOut.String() != want {
			t.Errorf("stderr = %q, want %q", errOut.String(), want)
		}
		if out.Len() != 0 {
			t.Errorf("stdout = %q, want empty", out.String())
		}
	})
	t.Run("flag error not duplicated", func(t *testing.T) {
		var errOut strings.Builder
		if got := cliMain([]string{"-frobnicate"}, io.Discard, &errOut); got != 2 {
			t.Fatalf("exit = %d, want 2", got)
		}
		if n := strings.Count(errOut.String(), "flag provided but not defined"); n != 1 {
			t.Errorf("flag error reported %d times, want once:\n%s", n, errOut.String())
		}
	})
	t.Run("help usage on requested stream", func(t *testing.T) {
		var errOut strings.Builder
		if got := cliMain([]string{"-h"}, io.Discard, &errOut); got != 0 {
			t.Fatalf("exit = %d, want 0", got)
		}
		if !strings.Contains(errOut.String(), "-device") {
			t.Errorf("-h output missing flag docs:\n%s", errOut.String())
		}
	})
}

// TestAuditCommand replays a small workload subset through the metric
// audit: the model must pass its own soundness checks, and the stderr
// summary must account for every launch.
func TestAuditCommand(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"audit", "GMS", "pb-sgemm", "rd-kmeans"}, &out, &errOut); err != nil {
		t.Fatalf("audit: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean audit wrote violations:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "3 workloads") ||
		!strings.Contains(errOut.String(), "0 violations") {
		t.Errorf("audit summary = %q", errOut.String())
	}
}

func TestRunFastCommands(t *testing.T) {
	for _, args := range [][]string{
		{"list"},
		{"device"},
		{"-device", "gtx1080", "device"},
		{"table", "2"},
		{"table", "3"},
		{"table", "4"},
		{"figure", "1"},
	} {
		if err := run(args, io.Discard, io.Discard); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

// TestFigureCacheAndWorkers runs the same figure cold (populating a fresh
// cache, in parallel) and warm (serving from it, serially) and requires
// byte-identical output — the end-to-end contract of the -j/-cache flags.
func TestFigureCacheAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the baseline workloads")
	}
	dir := t.TempDir()
	var cold, warm bytes.Buffer
	if err := run([]string{"-cache", dir, "-j", "4", "figure", "2"}, &cold, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache", dir, "-j", "1", "figure", "2"}, &warm, io.Discard); err != nil {
		t.Fatal(err)
	}
	if cold.Len() == 0 {
		t.Fatal("figure 2 produced no output")
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("warm-cache figure 2 output differs from cold run")
	}
}

// traceTo runs `cactus -no-cache trace pb-sgemm FILE` and returns the
// parsed trace plus the "traced N launches" stderr line.
func traceTo(t *testing.T, file string) (*telemetry.ChromeTrace, int) {
	t.Helper()
	var errOut bytes.Buffer
	if err := run([]string{"-no-cache", "trace", "pb-sgemm", file}, io.Discard, &errOut); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.ReadChrome(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("trace output is not valid Chrome trace JSON: %v", err)
	}
	var launches int
	for _, line := range strings.Split(errOut.String(), "\n") {
		if strings.HasPrefix(line, "traced ") {
			if _, err := fmt.Sscanf(line, "traced %d launches", &launches); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
		}
	}
	if launches == 0 {
		t.Fatalf("no 'traced N launches' line on stderr: %q", errOut.String())
	}
	return tr, launches
}

// TestTraceCommand — the acceptance contract for `cactus trace`: valid
// Chrome trace JSON with exactly one complete event per kernel launch on
// each track, deterministic across runs on the modeled-time track.
func TestTraceCommand(t *testing.T) {
	dir := t.TempDir()
	tr, launches := traceTo(t, filepath.Join(dir, "a.json"))

	// Each launch yields one complete ("X") span per track: cat "kernel" on
	// the modeled track (pid 1), cat "launch" on the host track (pid 2).
	spans := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Cat]++
		}
	}
	if spans["kernel"] != launches {
		t.Errorf("modeled track has %d kernel spans, want %d (one per launch)", spans["kernel"], launches)
	}
	if spans["launch"] != launches {
		t.Errorf("host track has %d launch spans, want %d (one per launch)", spans["launch"], launches)
	}

	// Modeled-time track must be byte-for-byte reproducible across runs.
	tr2, _ := traceTo(t, filepath.Join(dir, "b.json"))
	pick := func(tr *telemetry.ChromeTrace) []telemetry.ChromeEvent {
		var evs []telemetry.ChromeEvent
		for _, ev := range tr.TraceEvents {
			if ev.PID == 1 {
				evs = append(evs, ev)
			}
		}
		return evs
	}
	if !reflect.DeepEqual(pick(tr), pick(tr2)) {
		t.Error("modeled-track events differ between two runs of the same trace command")
	}
}

// TestVerboseProgressAndCounters — -v must attribute each workload to a
// cache outcome (miss cold, hit warm) and print a counters snapshot whose
// hits+misses accounting is visible.
func TestVerboseProgressAndCounters(t *testing.T) {
	dir := t.TempDir()
	runV := func() string {
		var errOut bytes.Buffer
		if err := run([]string{"-cache", dir, "-v", "-j", "2", "run", "pb-sgemm", "pb-spmv"},
			io.Discard, &errOut); err != nil {
			t.Fatal(err)
		}
		return errOut.String()
	}
	cold := runV()
	for _, want := range []string{
		"cactus: pb-sgemm:", "cactus: pb-spmv:", "cache miss",
		"cactus: counters:", "cache.misses", "study.workloads_characterized",
	} {
		if !strings.Contains(cold, want) {
			t.Errorf("cold -v output missing %q:\n%s", want, cold)
		}
	}
	if strings.Contains(cold, "cache hit") {
		t.Errorf("cold run reported a cache hit:\n%s", cold)
	}
	warm := runV()
	for _, want := range []string{"cache hit", "cache.hits"} {
		if !strings.Contains(warm, want) {
			t.Errorf("warm -v output missing %q:\n%s", want, warm)
		}
	}
	if strings.Contains(warm, "cache miss") {
		t.Errorf("warm run reported a cache miss:\n%s", warm)
	}
}

// TestTraceFlagOnStudy — -trace FILE on a study command must write a valid
// trace containing both tracks.
func TestTraceFlagOnStudy(t *testing.T) {
	file := filepath.Join(t.TempDir(), "study.json")
	if err := run([]string{"-no-cache", "-j", "2", "-trace", file, "run", "pb-sgemm", "pb-spmv"},
		io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.ReadChrome(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("-trace output is not valid Chrome trace JSON: %v", err)
	}
	pids := map[int]bool{}
	characterize := 0
	for _, ev := range tr.TraceEvents {
		pids[ev.PID] = true
		if ev.Ph == "X" && ev.Cat == "characterize" {
			characterize++
		}
	}
	if !pids[1] || !pids[2] {
		t.Errorf("study trace missing a track: pids %v", pids)
	}
	if characterize != 2 {
		t.Errorf("study trace has %d characterize spans, want 2", characterize)
	}
}

// TestNoCacheFlag — -no-cache must keep working without touching any cache
// directory.
func TestNoCacheFlag(t *testing.T) {
	if err := run([]string{"-no-cache", "figure", "1"}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
}
