package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no command", nil},
		{"unknown command", []string{"frobnicate"}},
		{"unknown device", []string{"-device", "voodoo3", "list"}},
		{"figure out of range", []string{"figure", "12"}},
		{"figure not a number", []string{"figure", "one"}},
		{"table out of range", []string{"table", "9"}},
		{"run without workload", []string{"run"}},
		{"profile wrong arity", []string{"profile"}},
		{"profile unknown workload", []string{"profile", "XYZ"}},
		{"export wrong arity", []string{"export"}},
		{"compare without workload", []string{"compare"}},
	}
	for _, tc := range cases {
		if err := run(tc.args, io.Discard); err == nil {
			t.Errorf("%s: expected an error for %v", tc.name, tc.args)
		}
	}
}

// TestUsageListsEveryCommand — the missing-command error is the CLI's only
// usage listing, so every command must appear in it (compare used to be
// omitted).
func TestUsageListsEveryCommand(t *testing.T) {
	err := run(nil, io.Discard)
	if err == nil {
		t.Fatal("expected a missing-command error")
	}
	for _, cmd := range []string{
		"list", "device", "run", "profile", "export", "compare", "figure", "table", "all",
	} {
		if !strings.Contains(err.Error(), cmd) {
			t.Errorf("usage error %q omits command %q", err, cmd)
		}
	}
}

func TestRunFastCommands(t *testing.T) {
	for _, args := range [][]string{
		{"list"},
		{"device"},
		{"-device", "gtx1080", "device"},
		{"table", "2"},
		{"table", "3"},
		{"table", "4"},
		{"figure", "1"},
	} {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

// TestFigureCacheAndWorkers runs the same figure cold (populating a fresh
// cache, in parallel) and warm (serving from it, serially) and requires
// byte-identical output — the end-to-end contract of the -j/-cache flags.
func TestFigureCacheAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the baseline workloads")
	}
	dir := t.TempDir()
	var cold, warm bytes.Buffer
	if err := run([]string{"-cache", dir, "-j", "4", "figure", "2"}, &cold); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-cache", dir, "-j", "1", "figure", "2"}, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.Len() == 0 {
		t.Fatal("figure 2 produced no output")
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("warm-cache figure 2 output differs from cold run")
	}
}

// TestNoCacheFlag — -no-cache must keep working without touching any cache
// directory.
func TestNoCacheFlag(t *testing.T) {
	if err := run([]string{"-no-cache", "figure", "1"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}
