package main

import "testing"

func TestRunArgValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no command", nil},
		{"unknown command", []string{"frobnicate"}},
		{"unknown device", []string{"-device", "voodoo3", "list"}},
		{"figure out of range", []string{"figure", "12"}},
		{"figure not a number", []string{"figure", "one"}},
		{"table out of range", []string{"table", "9"}},
		{"run without workload", []string{"run"}},
		{"profile wrong arity", []string{"profile"}},
		{"profile unknown workload", []string{"profile", "XYZ"}},
		{"export wrong arity", []string{"export"}},
		{"compare without workload", []string{"compare"}},
	}
	for _, tc := range cases {
		if err := run(tc.args); err == nil {
			t.Errorf("%s: expected an error for %v", tc.name, tc.args)
		}
	}
}

func TestRunFastCommands(t *testing.T) {
	for _, args := range [][]string{
		{"list"},
		{"device"},
		{"-device", "gtx1080", "device"},
		{"table", "2"},
		{"table", "3"},
		{"table", "4"},
		{"figure", "1"},
	} {
		if err := run(args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}
