package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// serveCmd runs `cactus serve`: the characterization pipeline as a
// long-running HTTP service. It honors the global -j, -cache/-no-cache,
// -metrics, and -pprof flags through opts — the server's counters and
// histograms land in the same registry those flags snapshot.
func serveCmd(args []string, opts core.StudyOptions, errOut io.Writer) error {
	fs := flag.NewFlagSet("cactus serve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	lruEntries := fs.Int("lru", 512, "in-memory profile cache capacity (entries)")
	maxInflight := fs.Int("max-inflight", 256, "admitted requests beyond this are rejected with 429")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request deadline (requests past it get 504)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usagef("serve: unexpected argument %q", fs.Arg(0))
	}

	srv, err := server.New(server.Options{
		Workers:     opts.Workers,
		Cache:       opts.Cache,
		LRUEntries:  *lruEntries,
		MaxInFlight: *maxInflight,
		Timeout:     *timeout,
		Registry:    opts.Metrics,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve listener: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(errOut, "cactus serve: listening on http://%s\n", ln.Addr())

	select {
	case err := <-serveErr:
		_ = srv.Shutdown(context.Background()) // the serve error is the one worth reporting
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain
	fmt.Fprintln(errOut, "cactus serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		_ = srv.Shutdown(sctx) // the HTTP shutdown error is the one worth reporting
		return err
	}
	return srv.Shutdown(sctx)
}
