package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// TestServerMatchesCLIBytes — the server's text renderings must be
// byte-identical to the CLI commands they mirror; both sides call the same
// core renderers, and this pins that equivalence end to end.
func TestServerMatchesCLIBytes(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return body
	}

	cases := []struct {
		name string
		args []string
		path string
	}{
		{"profile", []string{"-no-cache", "profile", "pb-sgemm"},
			"/api/v1/profile?workload=pb-sgemm&format=text"},
		{"profile gtx1080", []string{"-no-cache", "-device", "gtx1080", "profile", "pb-spmv"},
			"/api/v1/profile?workload=pb-spmv&device=gtx1080&format=text"},
		{"list", []string{"list"},
			"/api/v1/workloads?format=text"},
		{"compare", []string{"-no-cache", "-j", "1", "compare", "pb-sgemm", "pb-spmv"},
			"/api/v1/compare?workload=pb-sgemm,pb-spmv&format=text"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var cli bytes.Buffer
			if err := run(tc.args, &cli, io.Discard); err != nil {
				t.Fatal(err)
			}
			if got := get(tc.path); !bytes.Equal(cli.Bytes(), got) {
				t.Errorf("server bytes differ from CLI output\nCLI:\n%s\nserver:\n%s", cli.Bytes(), got)
			}
		})
	}
}

// lockedBuffer lets the test read stderr while serveCmd writes it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeCommandEndToEnd boots `cactus serve` on an ephemeral port,
// queries it over real HTTP, then delivers SIGINT and requires a clean
// drain.
func TestServeCommandEndToEnd(t *testing.T) {
	var errOut lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- serveCmd([]string{"-addr", "127.0.0.1:0"}, core.StudyOptions{Workers: 2}, &errOut)
	}()

	// The listening line carries the resolved ephemeral address.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; stderr:\n%s", errOut.String())
		}
		for _, line := range strings.Split(errOut.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "cactus serve: listening on "); ok {
				base = rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, path := range []string{
		"/healthz",
		"/api/v1/profile?workload=pb-sgemm",
		"/metrics",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain within 30s of SIGINT")
	}
	if !strings.Contains(errOut.String(), "cactus serve: shutting down") {
		t.Errorf("stderr missing the shutdown line:\n%s", errOut.String())
	}
}
