// Command cactuslint runs the repository's custom static analyzers (see
// internal/lint) over the given package patterns and prints findings as
//
//	file:line: analyzer: message
//
// exiting nonzero when there is any finding. Suppress a finding with a
// comment on the same line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// Usage:
//
//	cactuslint [flags] [packages]
//
// With no packages, ./... is analyzed.
//
// Flags:
//
//	-run a,b         run only the named analyzers (default: all)
//	-analyzers a,b   alias for -run (the original spelling)
//	-json            print findings (or suppressions, or the -list table) as JSON, one per line
//	-list            print every analyzer with its description and scope, sorted by name, and exit
//	-suppressions    list every //lint:ignore directive instead of linting
//
// An unknown analyzer name given to -run (or -analyzers) is a usage
// error: exit code 2, nothing analyzed.
//
// With -json each finding is one object per line, for tooling (the GitHub
// Actions problem matcher in .github/cactuslint-matcher.json consumes it):
//
//	{"file":"internal/gpu/launch.go","line":42,"analyzer":"unitsafety","message":"..."}
//
// -suppressions inventories the accepted exceptions: every //lint:ignore
// in the analyzed packages, as deterministic `file:line: analyzer: reason`
// lines (or JSON objects with -json). The suppression budget test in
// internal/lint pins the total, so adding an exception is a reviewed,
// counted act.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cactuslint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the linter and returns the process exit code: 0 clean, 1
// findings. Errors (bad flags, packages that do not type-check) are returned
// for exit code 2.
func run(args []string, out, errOut io.Writer) (int, error) {
	fs := flag.NewFlagSet("cactuslint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	names := fs.String("analyzers", "", "alias for -run")
	asJSON := fs.Bool("json", false, "print findings (or suppressions, or the -list table) as JSON, one per line")
	list := fs.Bool("list", false, "print every analyzer with its description and scope and exit")
	suppressions := fs.Bool("suppressions", false, "list every //lint:ignore directive instead of linting")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	analyzers := lint.Analyzers()
	if *list {
		return listAnalyzers(out, analyzers, *asJSON)
	}
	sel := *runNames
	if sel == "" {
		sel = *names
	}
	if sel != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(sel, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				return 2, fmt.Errorf("unknown analyzer %q", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		return 2, err
	}
	if len(pkgs) == 0 {
		// `go list` warns but exits zero on an unmatched pattern; an empty
		// analysis must not read as a clean one.
		return 2, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	wd, _ := os.Getwd()
	if *suppressions {
		return listSuppressions(out, pkgs, wd, *asJSON)
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		pos := relTo(wd, f.Pos.Filename)
		if *asJSON {
			if err := printJSON(out, pos, f); err != nil {
				return 2, err
			}
			continue
		}
		fmt.Fprintf(out, "%s:%d: %s: %s\n", pos, f.Pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "cactuslint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1, nil
	}
	return 0, nil
}

// listAnalyzers prints the analyzer table, sorted by name: one
// `name  scope  description` row per analyzer, or one JSON object per
// line with -json.
func listAnalyzers(out io.Writer, analyzers []*lint.Analyzer, asJSON bool) (int, error) {
	sorted := make([]*lint.Analyzer, len(analyzers))
	copy(sorted, analyzers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		scope := a.ScopeDoc
		if scope == "" {
			scope = "all packages"
		}
		if asJSON {
			data, err := json.Marshal(jsonAnalyzer{Name: a.Name, Scope: scope, Doc: a.Doc})
			if err != nil {
				return 2, err
			}
			fmt.Fprintf(out, "%s\n", data)
			continue
		}
		fmt.Fprintf(out, "%-16s scope: %s\n%-16s %s\n", a.Name, scope, "", a.Doc)
	}
	return 0, nil
}

// jsonAnalyzer is the -list -json wire shape.
type jsonAnalyzer struct {
	Name  string `json:"name"`
	Scope string `json:"scope"`
	Doc   string `json:"doc"`
}

// listSuppressions prints the //lint:ignore inventory of pkgs, sorted by
// file, line, then analyzer. Exit code 0: an inventory is not a failure —
// the pinned-count test is what turns growth into one.
func listSuppressions(out io.Writer, pkgs []*lint.Package, wd string, asJSON bool) (int, error) {
	for _, s := range lint.CollectSuppressions(pkgs) {
		file := relTo(wd, s.Pos.Filename)
		if asJSON {
			data, err := json.Marshal(jsonSuppression{
				File: file, Line: s.Pos.Line, Analyzer: s.Analyzer, Reason: s.Reason,
			})
			if err != nil {
				return 2, err
			}
			fmt.Fprintf(out, "%s\n", data)
			continue
		}
		fmt.Fprintf(out, "%s:%d: %s: %s\n", file, s.Pos.Line, s.Analyzer, s.Reason)
	}
	return 0, nil
}

// relTo makes path relative to wd when it is inside it.
func relTo(wd, path string) string {
	if wd != "" {
		if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return path
}

// jsonSuppression is the -suppressions -json wire shape.
type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// jsonFinding is the -json wire shape: one object per line, stable field
// order, relative file path.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON emits one finding as a single JSON line.
func printJSON(out io.Writer, file string, f lint.Finding) error {
	data, err := json.Marshal(jsonFinding{
		File: file, Line: f.Pos.Line, Analyzer: f.Analyzer, Message: f.Message,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}
