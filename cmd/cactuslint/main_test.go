package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListFlagNamesEveryAnalyzer(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"nodeterminism", "finiteflow", "launchpath", "errcheckstrict",
		"unitsafety", "mutexguard", "ctxflow", "atomicsafe"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output omits %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, err := run([]string{"-analyzers", "nope"}, io.Discard, io.Discard)
	if err == nil || code != 2 {
		t.Fatalf("run = %d, %v; want code 2 and an error", code, err)
	}
}

// TestJSONLineShape pins the -json wire format one problem-matcher regexp
// consumes: exactly {"file":...,"line":...,"analyzer":...,"message":...}
// per line, with JSON escaping applied to the message.
func TestJSONLineShape(t *testing.T) {
	var out strings.Builder
	f := lint.Finding{Analyzer: "unitsafety", Message: `bare numeric literal "2.5"`}
	f.Pos.Line = 42
	if err := printJSON(&out, "internal/gpu/launch.go", f); err != nil {
		t.Fatal(err)
	}
	const want = `{"file":"internal/gpu/launch.go","line":42,"analyzer":"unitsafety","message":"bare numeric literal \"2.5\""}` + "\n"
	if out.String() != want {
		t.Errorf("printJSON = %q, want %q", out.String(), want)
	}
}

// TestJSONCleanPackage runs the real pipeline with -json over a package
// that is clean at HEAD: exit code 0 and no output lines.
func TestJSONCleanPackage(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-json", "repro/internal/units"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", out.String())
	}
}

// TestSuppressionsMode pins the -suppressions inventory over a package with
// known directives: deterministic file:line: analyzer: reason lines, exit
// code 0, and the JSON variant's wire shape.
func TestSuppressionsMode(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-suppressions", "repro/internal/server"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("internal/server has 3 suppressions, -suppressions listed %d:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"nodeterminism: request latency", "ctxflow: the singleflight leader"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-suppressions output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(lines[0], "internal/server/handlers.go:") {
		t.Errorf("suppressions not in file order:\n%s", out.String())
	}

	var jsonOut strings.Builder
	code, err = run([]string{"-suppressions", "-json", "repro/internal/server"}, &jsonOut, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-json) = %d, %v", code, err)
	}
	first := strings.SplitN(jsonOut.String(), "\n", 2)[0]
	for _, field := range []string{`"file":`, `"line":`, `"analyzer":`, `"reason":`} {
		if !strings.Contains(first, field) {
			t.Errorf("-suppressions -json line missing %s: %s", field, first)
		}
	}
}
