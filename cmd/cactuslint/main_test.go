package main

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/lint"
)

// allAnalyzers is every analyzer name, in the sorted order -list prints.
var allAnalyzers = []string{"atomicsafe", "ctxflow", "errcheckstrict", "finiteflow",
	"golife", "launchpath", "lockorder", "mutexguard", "nodeterminism", "unitsafety"}

func TestListFlagNamesEveryAnalyzer(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	last := -1
	for _, name := range allAnalyzers {
		idx := strings.Index(out.String(), name)
		if idx < 0 {
			t.Errorf("-list output omits %q:\n%s", name, out.String())
			continue
		}
		if idx < last {
			t.Errorf("-list output not sorted by name: %q appears before its predecessor", name)
		}
		last = idx
	}
	if !strings.Contains(out.String(), "scope: ") {
		t.Errorf("-list output carries no scope lines:\n%s", out.String())
	}
}

// TestListJSON pins the -list -json wire shape: one {"name","scope","doc"}
// object per analyzer, sorted by name.
func TestListJSON(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list", "-json"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-list -json) = %d, %v", code, err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != len(allAnalyzers) {
		t.Fatalf("-list -json printed %d lines, want %d:\n%s", len(lines), len(allAnalyzers), out.String())
	}
	for i, line := range lines {
		var row struct {
			Name  string `json:"name"`
			Scope string `json:"scope"`
			Doc   string `json:"doc"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if row.Name != allAnalyzers[i] {
			t.Errorf("line %d name = %q, want %q", i, row.Name, allAnalyzers[i])
		}
		if row.Scope == "" || row.Doc == "" {
			t.Errorf("line %d has empty scope or doc: %s", i, line)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	for _, flagName := range []string{"-analyzers", "-run"} {
		code, err := run([]string{flagName, "nope"}, io.Discard, io.Discard)
		if err == nil || code != 2 {
			t.Fatalf("run(%s nope) = %d, %v; want code 2 and an error", flagName, code, err)
		}
	}
}

// TestRunFlagSelects runs a single analyzer by name over a clean package:
// the -run selection path must load, run, and exit 0.
func TestRunFlagSelects(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-run", "lockorder,golife", "repro/internal/units"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-run lockorder,golife) = %d, %v\n%s", code, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", out.String())
	}
}

// TestJSONLineShape pins the -json wire format one problem-matcher regexp
// consumes: exactly {"file":...,"line":...,"analyzer":...,"message":...}
// per line, with JSON escaping applied to the message.
func TestJSONLineShape(t *testing.T) {
	var out strings.Builder
	f := lint.Finding{Analyzer: "unitsafety", Message: `bare numeric literal "2.5"`}
	f.Pos.Line = 42
	if err := printJSON(&out, "internal/gpu/launch.go", f); err != nil {
		t.Fatal(err)
	}
	const want = `{"file":"internal/gpu/launch.go","line":42,"analyzer":"unitsafety","message":"bare numeric literal \"2.5\""}` + "\n"
	if out.String() != want {
		t.Errorf("printJSON = %q, want %q", out.String(), want)
	}
}

// TestJSONCleanPackage runs the real pipeline with -json over a package
// that is clean at HEAD: exit code 0 and no output lines.
func TestJSONCleanPackage(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-json", "repro/internal/units"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", out.String())
	}
}

// TestSuppressionsMode pins the -suppressions inventory over a package with
// known directives: deterministic file:line: analyzer: reason lines, exit
// code 0, and the JSON variant's wire shape.
func TestSuppressionsMode(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-suppressions", "repro/internal/server"}, &out, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, out.String())
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("internal/server has 4 suppressions, -suppressions listed %d:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"nodeterminism: request latency", "ctxflow: the singleflight leader",
		"golife: the leader is deliberately detached"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-suppressions output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(lines[0], "internal/server/handlers.go:") {
		t.Errorf("suppressions not in file order:\n%s", out.String())
	}

	var jsonOut strings.Builder
	code, err = run([]string{"-suppressions", "-json", "repro/internal/server"}, &jsonOut, io.Discard)
	if err != nil || code != 0 {
		t.Fatalf("run(-json) = %d, %v", code, err)
	}
	first := strings.SplitN(jsonOut.String(), "\n", 2)[0]
	for _, field := range []string{`"file":`, `"line":`, `"analyzer":`, `"reason":`} {
		if !strings.Contains(first, field) {
			t.Errorf("-suppressions -json line missing %s: %s", field, first)
		}
	}
}
