// Package repro's benchmark harness regenerates every table and figure of
// the paper (Figs. 1-9, Table I) plus the ablation studies DESIGN.md calls
// out. Each benchmark reports the figure's headline statistics as custom
// metrics so `go test -bench` output records paper-vs-measured shape:
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graphx"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/survey"
	"repro/internal/units"
	"repro/internal/workloads"
)

var (
	studyOnce     sync.Once
	fullStudy     *core.Study
	fullStudyErr  error
	baselineStudy *core.Study
	cactusStudy   *core.Study
)

func studies(b *testing.B) (*core.Study, *core.Study, *core.Study) {
	b.Helper()
	studyOnce.Do(func() {
		cat, err := core.DefaultCatalog()
		if err != nil {
			fullStudyErr = err
			return
		}
		// One worker per CPU; assembly order is deterministic, so every
		// figure below is byte-identical to a serial characterization.
		fullStudy, fullStudyErr = core.NewStudyWith(gpu.RTX3080(), core.StudyOptions{}, cat.All()...)
		if fullStudyErr != nil {
			return
		}
		baselineStudy = &core.Study{Device: fullStudy.Device}
		cactusStudy = &core.Study{Device: fullStudy.Device}
		for _, p := range fullStudy.Profiles {
			if p.Workload.Suite() == workloads.Cactus {
				cactusStudy.Add(p)
			} else {
				baselineStudy.Add(p)
			}
		}
	})
	if fullStudyErr != nil {
		b.Fatal(fullStudyErr)
	}
	return fullStudy, cactusStudy, baselineStudy
}

// BenchmarkFigure1 regenerates the benchmark-suite popularity survey.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := core.Figure1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	top, _ := survey.Total(survey.Ranking()[0])
	b.ReportMetric(float64(top), "rodinia_total_papers")
}

// BenchmarkFigure2 regenerates the baseline GPU-time distribution and
// reports the single-kernel concentration fraction (paper: ~70%).
func BenchmarkFigure2(b *testing.B) {
	_, _, base := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure2(base, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	oneKernel := 0
	for _, p := range base.Profiles {
		if p.KernelsFor(0.7) == 1 {
			oneKernel++
		}
	}
	b.ReportMetric(100*float64(oneKernel)/float64(len(base.Profiles)), "pct_1kernel_70pct")
}

// BenchmarkTable1 regenerates the Cactus summary table and reports the
// kernel-count range (paper: 8..66).
func BenchmarkTable1(b *testing.B) {
	_, cactus, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Table1(cactus, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	minK, maxK := 1<<30, 0
	for _, p := range cactus.Profiles {
		if n := len(p.Kernels); n < minK {
			minK = n
		}
		if n := len(p.Kernels); n > maxK {
			maxK = n
		}
	}
	b.ReportMetric(float64(minK), "min_kernels")
	b.ReportMetric(float64(maxK), "max_kernels")
}

// BenchmarkFigure3 regenerates the Cactus cumulative time distribution and
// reports the maximum dominant-set size (paper: up to 14).
func BenchmarkFigure3(b *testing.B) {
	_, cactus, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure3(cactus, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	maxK := 0
	for _, p := range cactus.Profiles {
		if k := p.KernelsFor(0.7); k > maxK {
			maxK = k
		}
	}
	b.ReportMetric(float64(maxK), "max_kernels_for_70pct")
}

// BenchmarkFigure4 regenerates the baseline rooflines and reports the
// number of workloads with mixed kernel behavior (paper: 2 of 31-32).
func BenchmarkFigure4(b *testing.B) {
	_, _, base := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure4(base, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	model := roofline.ForDevice(base.Device)
	mixed := 0
	for _, p := range base.Profiles {
		var mem, cmp units.Fraction
		for _, k := range p.Kernels {
			if k.TimeShare < 0.1 {
				continue
			}
			if model.Classify(k.II()) == roofline.MemoryIntensive {
				mem += k.TimeShare
			} else {
				cmp += k.TimeShare
			}
		}
		if mem > 0.1 && cmp > 0.1 {
			mixed++
		}
	}
	b.ReportMetric(float64(mixed), "mixed_workloads")
}

// BenchmarkFigure5 regenerates the Cactus aggregate roofline and reports
// the memory-intensive fraction (paper: all but GMS and SPT).
func BenchmarkFigure5(b *testing.B) {
	_, cactus, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure5(cactus, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	model := roofline.ForDevice(cactus.Device)
	mem := 0
	for _, p := range cactus.Profiles {
		if model.Classify(p.AggII) == roofline.MemoryIntensive {
			mem++
		}
	}
	b.ReportMetric(float64(mem), "memory_intensive_apps")
}

// BenchmarkFigure6 regenerates the molecular/graph per-kernel rooflines.
func BenchmarkFigure6(b *testing.B) {
	_, cactus, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure6(cactus, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the ML per-kernel rooflines and reports how
// many dominant ML kernels sit near the memory roof (Observation #8).
func BenchmarkFigure7(b *testing.B) {
	_, cactus, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure7(cactus, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	model := roofline.ForDevice(cactus.Device)
	near, total := 0, 0
	for _, p := range cactus.Profiles {
		if p.Workload.Domain() != workloads.MachineL {
			continue
		}
		for _, k := range p.DominantKernels(0.7) {
			total++
			if model.NearMemoryRoof(roofline.Point{II: k.II(), GIPS: k.GIPS()}, 0.5) {
				near++
			}
		}
	}
	b.ReportMetric(float64(near), "ml_dominant_near_mem_roof")
	b.ReportMetric(float64(total), "ml_dominant_total")
}

// BenchmarkFigure8 regenerates the correlation heatmaps and reports the
// correlated-pair counts (paper: Cactus correlates with more metrics).
func BenchmarkFigure8(b *testing.B) {
	full, cactus, base := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure8(full, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	cc, err := core.Correlate(core.DominantObservations(cactus.Profiles, 0.7))
	if err != nil {
		b.Fatal(err)
	}
	pc, err := core.Correlate(core.DominantObservations(base.Profiles, 0.7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cc.StrongOrWeakCount()), "cactus_correlated_pairs")
	b.ReportMetric(float64(pc.StrongOrWeakCount()), "prt_correlated_pairs")
}

// BenchmarkFigure9 regenerates the clustering dendrogram and reports the
// coverage statistics (Observation #12).
func BenchmarkFigure9(b *testing.B) {
	full, _, _ := studies(b)
	for i := 0; i < b.N; i++ {
		if err := core.Figure9(full, io.Discard, 6); err != nil {
			b.Fatal(err)
		}
	}
	obs := core.DominantObservations(full.Profiles, 0.7)
	ca, err := core.Cluster(obs, roofline.ForDevice(full.Device), 6, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(ca.ClustersCoveredBy(workloads.Cactus)), "cactus_clusters_covered")
	b.ReportMetric(float64(len(ca.ClustersDominatedBy(workloads.Cactus))), "cactus_clusters_dominated")
	b.ReportMetric(float64(len(obs)), "dominant_kernels")
}

// --- Study construction ------------------------------------------------------
//
// The benchmarks below time the characterization step itself — the cost
// every `cactus figure/table/all` pays before rendering — serially, on a
// worker pool, and against a warm profile cache.

// BenchmarkStudySerial characterizes the ten Cactus workloads one at a
// time: the pre-PR baseline path.
func BenchmarkStudySerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewStudy(gpu.RTX3080(), core.CactusWorkloads()...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyParallel characterizes the same workloads on 8 workers.
func BenchmarkStudyParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.NewStudyWith(gpu.RTX3080(), core.StudyOptions{Workers: 8}, core.CactusWorkloads()...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyWarmCache characterizes the full 42-workload catalog (the
// Figure 8/9 study) against a primed profile cache: the steady-state cost
// of every repeated `cactus figure N`.
func BenchmarkStudyWarmCache(b *testing.B) {
	cat, err := core.DefaultCatalog()
	if err != nil {
		b.Fatal(err)
	}
	cache, err := core.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.StudyOptions{Workers: 8, Cache: cache}
	if _, err := core.NewStudyWith(gpu.RTX3080(), opts, cat.All()...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewStudyWith(gpu.RTX3080(), opts, cat.All()...); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationMemoryModes contrasts the two memory-resolution paths
// (declarative streams vs trace replay) on the same logical kernel.
func BenchmarkAblationMemoryModes(b *testing.B) {
	dev, err := gpu.New(gpu.RTX3080())
	if err != nil {
		b.Fatal(err)
	}
	const bytes = 8 << 20
	var mix isa.Mix
	mix.Add(isa.FP32, bytes/64)
	mix.Add(isa.LoadGlobal, bytes/128)
	for i := 0; i < b.N; i++ {
		// Model mode.
		_, err := dev.Launch(gpu.KernelSpec{
			Name: "ablate_model", Grid: gpu.D1(1024), Block: gpu.D1(256), Mix: mix,
			Streams: []memsim.Stream{{
				Name: "s", FootprintBytes: bytes, AccessBytes: bytes,
				ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true,
			}},
		})
		if err != nil {
			b.Fatal(err)
		}
		// Trace mode over the same sweep.
		_, err = dev.Launch(gpu.KernelSpec{
			Name: "ablate_trace", Grid: gpu.D1(1024), Block: gpu.D1(256), Mix: mix,
			TraceCoverage: 1,
			Trace: func(h *memsim.Hierarchy) {
				for a := uint64(0); a < bytes; a += 128 {
					h.Access(a, false)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFAMD contrasts FAMD-denoised clustering against
// clustering on raw standardized metrics (the paper's argument for FAMD).
func BenchmarkAblationFAMD(b *testing.B) {
	full, _, _ := studies(b)
	obs := core.DominantObservations(full.Profiles, 0.7)
	model := roofline.ForDevice(full.Device)
	var famdSil, rawSil float64
	for i := 0; i < b.N; i++ {
		ca, err := core.Cluster(obs, model, 6, 6)
		if err != nil {
			b.Fatal(err)
		}
		famdSil, err = stats.SilhouetteScore(ca.FAMD.Coords, ca.Assign)
		if err != nil {
			b.Fatal(err)
		}
		// Raw: standardized quantitative metrics only, no FAMD denoising.
		raw := make([][]float64, len(obs))
		for j, o := range obs {
			row := make([]float64, profiler.NumMetrics)
			for _, m := range profiler.Metrics() {
				row[m] = o.Metrics.Get(m)
			}
			raw[j] = row
		}
		raw = stats.StandardizeColumns(raw)
		dend, err := stats.Agglomerative(raw, nil, stats.WardLinkage)
		if err != nil {
			b.Fatal(err)
		}
		assign, err := dend.Cut(6)
		if err != nil {
			b.Fatal(err)
		}
		rawSil, err = stats.SilhouetteScore(raw, assign)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(famdSil, "famd_silhouette")
	b.ReportMetric(rawSil, "raw_silhouette")
}

// BenchmarkAblationBFS contrasts the Gunrock-style frontier BFS with the
// Rodinia-style all-vertices formulation on the same graph — the paper's
// motivating top-down vs bottom-up contrast.
func BenchmarkAblationBFS(b *testing.B) {
	g, err := graphx.RMAT(14, 8, 99)
	if err != nil {
		b.Fatal(err)
	}
	src := g.LargestComponentVertex()
	dev, err := gpu.New(gpu.RTX3080())
	if err != nil {
		b.Fatal(err)
	}
	var gunrockTime float64
	for i := 0; i < b.N; i++ {
		sess := profiler.NewSession(dev)
		if _, err := graphx.GunrockBFS(g, src, graphx.BFSConfig{DirectionOptimized: true}, sess); err != nil {
			b.Fatal(err)
		}
		gunrockTime = sess.TotalTime().Float()
	}
	b.ReportMetric(gunrockTime*1e3, "gunrock_ms")
}

// BenchmarkAblationDevice re-characterizes two clearly-sided workloads on
// the GTX 1080 model and reports cross-device speedups — the paper's
// future-work platform sensitivity.
func BenchmarkAblationDevice(b *testing.B) {
	cat, err := core.DefaultCatalog()
	if err != nil {
		b.Fatal(err)
	}
	w1, _ := cat.Lookup("pb-cutcp")
	w2, _ := cat.Lookup("pb-spmv")
	var cutcpSpeedup, spmvSpeedup float64
	for i := 0; i < b.N; i++ {
		a, err := core.NewStudy(gpu.RTX3080(), w1, w2)
		if err != nil {
			b.Fatal(err)
		}
		g, err := core.NewStudy(gpu.GTX1080(), w1, w2)
		if err != nil {
			b.Fatal(err)
		}
		cmps, err := core.CompareDevices(a, g)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cmps {
			if !c.SideStable {
				b.Fatalf("%s flipped roofline sides", c.Abbr)
			}
			switch c.Abbr {
			case "pb-cutcp":
				cutcpSpeedup = c.Speedup
			case "pb-spmv":
				spmvSpeedup = c.Speedup
			}
		}
	}
	b.ReportMetric(cutcpSpeedup, "cutcp_3080_over_1080")
	b.ReportMetric(spmvSpeedup, "spmv_3080_over_1080")
}

// BenchmarkAblationAmdahl evaluates the Section II-C dominant-kernel
// speedup model on the paper's five-kernel example.
func BenchmarkAblationAmdahl(b *testing.B) {
	shares := []float64{0.25, 0.2, 0.2, 0.2, 0.15}
	var dom float64
	for i := 0; i < b.N; i++ {
		var err error
		dom, _, err = core.AmdahlExample(shares, 1.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dom, "dominant_speedup_needed")
}
