package repro

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/report"
	"repro/internal/trace"
)

// coldStudy characterizes the full catalog serially with a fresh cache
// rooted at dir, so every profile is simulated from scratch and its JSON
// serialization lands on disk.
func coldStudy(t *testing.T, dir string) *core.Study {
	t.Helper()
	cat, err := core.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.NewStudyWith(gpu.RTX3080(), core.StudyOptions{Workers: 1, Cache: cache}, cat.All()...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// readTree returns path -> contents for every file under root, with paths
// relative to root.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	files := make(map[string][]byte)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// studyCSV renders a study as a full-precision CSV (the report layer's
// serialization), so formatting-level nondeterminism is caught too.
func studyCSV(t *testing.T, st *core.Study) []byte {
	t.Helper()
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var rows [][]string
	for _, p := range st.Profiles {
		rows = append(rows, []string{p.Abbr(), "", g(p.TotalTime.Float()), g(p.AggII), g(p.AggGIPS)})
		for _, k := range p.Kernels {
			rows = append(rows, []string{p.Abbr(), k.Name, g(k.TimeShare.Float()), g(k.II()), g(k.GIPS())})
		}
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf, []string{"workload", "kernel", "time", "ii", "gips"}, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStudyByteDeterminism runs the full characterization twice — cold and
// serial both times — and requires the results to be byte-identical at both
// serialization boundaries: the cached profile JSON entries and the rendered
// report CSV. This is the regression test behind the nodeterminism and
// finiteflow analyzers: any wall-clock read, global random source, or
// map-ordered emission in model code shows up here as a byte diff.
func TestStudyByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-catalog characterizations")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	stA := coldStudy(t, dirA)
	stB := coldStudy(t, dirB)

	filesA, filesB := readTree(t, dirA), readTree(t, dirB)
	if len(filesA) == 0 {
		t.Fatal("first run produced no cache entries")
	}
	if len(filesA) != len(filesB) {
		t.Fatalf("run A wrote %d cache entries, run B wrote %d", len(filesA), len(filesB))
	}
	for rel, a := range filesA {
		b, ok := filesB[rel]
		if !ok {
			t.Errorf("cache entry %s missing from run B", rel)
			continue
		}
		if !bytes.Equal(a, b) {
			t.Errorf("cache entry %s differs between identical runs", rel)
		}
	}

	if a, b := studyCSV(t, stA), studyCSV(t, stB); !bytes.Equal(a, b) {
		t.Error("report CSV differs between identical runs")
	}
}

// TestTraceExportByteDeterminism runs one workload twice through the trace
// exporter and requires byte-identical line-delimited JSON.
func TestTraceExportByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workload characterization")
	}
	cat, err := core.DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	w, err := cat.Lookup("GMS")
	if err != nil {
		t.Fatal(err)
	}
	export := func() []byte {
		dev, err := gpu.New(gpu.RTX3080())
		if err != nil {
			t.Fatal(err)
		}
		sess := profiler.NewSession(dev)
		if err := w.Run(sess); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.Export(&buf, w.Abbr(), gpu.RTX3080(), sess); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := export(), export(); !bytes.Equal(a, b) {
		t.Error("trace export differs between identical runs")
	}
}
