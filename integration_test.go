// Integration tests: the paper's headline observations asserted over the
// full 42-workload catalog in one end-to-end run. These reuse the benchmark
// harness's cached study, so `go test` pays the full characterization cost
// once.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/roofline"
	"repro/internal/workloads"
)

func fullStudyT(t *testing.T) (*core.Study, *core.Study, *core.Study) {
	t.Helper()
	studyOnce.Do(func() {
		cat, err := core.DefaultCatalog()
		if err != nil {
			fullStudyErr = err
			return
		}
		fullStudy, fullStudyErr = core.NewStudy(gpu.RTX3080(), cat.All()...)
		if fullStudyErr != nil {
			return
		}
		baselineStudy = &core.Study{Device: fullStudy.Device}
		cactusStudy = &core.Study{Device: fullStudy.Device}
		for _, p := range fullStudy.Profiles {
			if p.Workload.Suite() == workloads.Cactus {
				cactusStudy.Add(p)
			} else {
				baselineStudy.Add(p)
			}
		}
	})
	if fullStudyErr != nil {
		t.Fatal(fullStudyErr)
	}
	return fullStudy, cactusStudy, baselineStudy
}

// TestObservation1And2 — Cactus executes many more kernels (tens) than the
// traditional benchmarks (one or a few).
func TestObservation1And2(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog characterization")
	}
	_, cactus, base := fullStudyT(t)
	var cactusAvg, baseAvg float64
	for _, p := range cactus.Profiles {
		cactusAvg += float64(len(p.Kernels))
		if len(p.Kernels) < 8 {
			t.Errorf("%s: only %d kernels (Table I minimum is 8)", p.Abbr(), len(p.Kernels))
		}
	}
	cactusAvg /= float64(len(cactus.Profiles))
	for _, p := range base.Profiles {
		baseAvg += float64(len(p.Kernels))
	}
	baseAvg /= float64(len(base.Profiles))
	if cactusAvg < 5*baseAvg {
		t.Errorf("Cactus avg %.1f kernels vs baselines %.1f: expected >= 5x gap", cactusAvg, baseAvg)
	}
}

// TestObservation5 — the Cactus applications are primarily memory-intensive
// in aggregate, with GMS the clear compute-side exception.
func TestObservation5(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog characterization")
	}
	_, cactus, _ := fullStudyT(t)
	model := roofline.ForDevice(cactus.Device)
	mem := 0
	for _, p := range cactus.Profiles {
		if model.Classify(p.AggII) == roofline.MemoryIntensive {
			mem++
		}
	}
	if mem < 6 {
		t.Errorf("only %d/10 Cactus apps memory-intensive, paper reports 8", mem)
	}
	gms, err := cactus.Profile("GMS")
	if err != nil {
		t.Fatal(err)
	}
	if model.Classify(gms.AggII) != roofline.ComputeIntensive {
		t.Errorf("GMS aggregate II %.2f should be compute-intensive", gms.AggII)
	}
}

// TestObservation9 — Cactus correlates with at least as many metrics as the
// baselines (its behavior is more complex).
func TestObservation9(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog characterization")
	}
	_, cactus, base := fullStudyT(t)
	cc, err := core.Correlate(core.DominantObservations(cactus.Profiles, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := core.Correlate(core.DominantObservations(base.Profiles, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if cc.StrongOrWeakCount() < pc.StrongOrWeakCount() {
		t.Errorf("Cactus correlated pairs %d < baselines %d — contradicts Observation #9",
			cc.StrongOrWeakCount(), pc.StrongOrWeakCount())
	}
}

// TestObservation11And12 — kernels of single Cactus applications spread
// across clusters, and Cactus covers at least as much of the workload space
// as the baselines combined.
func TestObservation11And12(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog characterization")
	}
	full, _, _ := fullStudyT(t)
	obs := core.DominantObservations(full.Profiles, 0.7)
	ca, err := core.Cluster(obs, roofline.ForDevice(full.Device), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Observation #11: ML workloads spread over >= 2 clusters each.
	for _, abbr := range []string{"DCG", "NST", "RFL", "SPT", "LGT"} {
		if n := len(ca.ClustersOfWorkload(abbr)); n < 2 {
			t.Errorf("%s dominant kernels confined to %d cluster(s)", abbr, n)
		}
	}
	// Observation #12: Cactus covers >= baseline coverage and dominates at
	// least one cluster.
	cactusCov := ca.ClustersCoveredBy(workloads.Cactus)
	for _, s := range []workloads.Suite{workloads.Parboil, workloads.Rodinia, workloads.Tango} {
		if cov := ca.ClustersCoveredBy(s); cov > cactusCov {
			t.Errorf("%s covers %d clusters > Cactus %d", s, cov, cactusCov)
		}
	}
	if len(ca.ClustersDominatedBy(workloads.Cactus)) == 0 {
		t.Error("no Cactus-dominated clusters — contradicts Observation #12")
	}
}

// TestGraphWorkloadsSlowest — GST and GRU achieve the lowest aggregate
// performance of all Cactus workloads (Fig. 5).
func TestGraphWorkloadsSlowest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog characterization")
	}
	_, cactus, _ := fullStudyT(t)
	gst, err := cactus.Profile("GST")
	if err != nil {
		t.Fatal(err)
	}
	gru, err := cactus.Profile("GRU")
	if err != nil {
		t.Fatal(err)
	}
	worstGraph := gst.AggGIPS
	if gru.AggGIPS > worstGraph {
		worstGraph = gru.AggGIPS
	}
	for _, p := range cactus.Profiles {
		if p.Abbr() == "GST" || p.Abbr() == "GRU" {
			continue
		}
		// LGT sits just above the graph workloads in the paper too; allow a
		// small tolerance around the boundary.
		if p.AggGIPS < 0.9*worstGraph {
			t.Errorf("%s (%.1f GIPS) slower than the graph workloads (%.1f)", p.Abbr(), p.AggGIPS, worstGraph)
		}
	}
}
