// Package roofline implements the instruction roofline model the paper uses
// (after Ding & Williams): performance in Giga warp Instructions Per Second
// (GIPS) against instruction intensity (warp instructions per 32-byte DRAM
// transaction). The elbow — where the memory roof meets the compute roof —
// separates memory-intensive from compute-intensive kernels; a 1 %-of-peak
// performance threshold separates latency-bound from bandwidth-bound ones.
package roofline

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/units"
)

// Side classifies a point relative to the roofline elbow.
type Side uint8

const (
	// MemoryIntensive: instruction intensity left of the elbow.
	MemoryIntensive Side = iota
	// ComputeIntensive: instruction intensity right of the elbow.
	ComputeIntensive
)

// String returns the side label used as a qualitative FAMD variable.
func (s Side) String() string {
	if s == MemoryIntensive {
		return "memory-intensive"
	}
	return "compute-intensive"
}

// Bound classifies a point by achieved performance.
type Bound uint8

const (
	// LatencyBound: performance below the threshold fraction of peak.
	LatencyBound Bound = iota
	// BandwidthBound: performance above it.
	BandwidthBound
)

// String returns the bound label used as a qualitative FAMD variable.
func (b Bound) String() string {
	if b == LatencyBound {
		return "latency-bound"
	}
	return "bandwidth-bound"
}

// Model is an instruction roofline for one device.
type Model struct {
	// PeakGIPS is the compute roof.
	PeakGIPS float64
	// PeakGTXN is the memory roof slope (Giga transactions per second).
	PeakGTXN float64
	// BoundThreshold is the fraction of PeakGIPS below which a kernel is
	// labeled latency-bound. The paper uses 1 % (5.16 GIPS on the 3080).
	BoundThreshold units.Fraction
}

// defaultBoundThreshold is the paper's 1 %-of-peak latency-bound cut.
const defaultBoundThreshold units.Fraction = 0.01

// ForDevice derives the roofline from a device configuration.
func ForDevice(cfg gpu.DeviceConfig) Model {
	return Model{
		PeakGIPS:       cfg.PeakGIPS(),
		PeakGTXN:       cfg.PeakGTXN(),
		BoundThreshold: defaultBoundThreshold,
	}
}

// ElbowII returns the intensity at which the roofs meet.
func (m Model) ElbowII() float64 { return m.PeakGIPS / m.PeakGTXN }

// Roof returns the attainable GIPS at instruction intensity ii.
func (m Model) Roof(ii float64) float64 {
	if ii < 0 {
		return 0
	}
	return math.Min(m.PeakGIPS, ii*m.PeakGTXN)
}

// Classify places ii relative to the elbow.
func (m Model) Classify(ii float64) Side {
	if ii < m.ElbowII() {
		return MemoryIntensive
	}
	return ComputeIntensive
}

// BoundOf classifies achieved performance against the latency threshold.
func (m Model) BoundOf(gips float64) Bound {
	if gips < m.BoundThreshold.Float()*m.PeakGIPS {
		return LatencyBound
	}
	return BandwidthBound
}

// Point is one kernel or application placed on the roofline chart.
type Point struct {
	// Label identifies the point (kernel or workload abbreviation).
	Label string
	// II is instruction intensity (warp instructions per DRAM transaction).
	II float64
	// GIPS is achieved performance.
	GIPS float64
	// TimeShare is the point's share of its application's GPU time;
	// figures color-code by this.
	TimeShare units.Fraction
}

// Validate reports physically impossible points (useful in tests).
func (m Model) Validate(p Point) error {
	if p.II < 0 || math.IsNaN(p.II) {
		return fmt.Errorf("roofline: %s: invalid intensity %g", p.Label, p.II)
	}
	if p.GIPS < 0 || math.IsNaN(p.GIPS) {
		return fmt.Errorf("roofline: %s: invalid GIPS %g", p.Label, p.GIPS)
	}
	// Allow a small tolerance over the roof for rounding in aggregation.
	if !math.IsInf(p.II, 1) && p.GIPS > 1.05*m.Roof(p.II) {
		return fmt.Errorf("roofline: %s: GIPS %.1f exceeds roof %.1f at II %.2f",
			p.Label, p.GIPS, m.Roof(p.II), p.II)
	}
	if p.GIPS > 1.001*m.PeakGIPS {
		return fmt.Errorf("roofline: %s: GIPS %.1f exceeds peak %.1f", p.Label, p.GIPS, m.PeakGIPS)
	}
	return nil
}

// Utilization returns achieved performance as a fraction of the attainable
// roof at the point's intensity (how close to a roof the point sits).
func (m Model) Utilization(p Point) float64 {
	roof := m.Roof(p.II)
	if math.IsInf(p.II, 1) {
		roof = m.PeakGIPS
	}
	if roof <= 0 {
		return 0
	}
	return p.GIPS / roof
}

// NearMemoryRoof reports whether a memory-intensive point achieves at least
// frac of the memory roof — the paper's "bound by DRAM bandwidth, close to
// the memory roof" observation for dominant ML kernels.
func (m Model) NearMemoryRoof(p Point, frac float64) bool {
	return m.Classify(p.II) == MemoryIntensive && m.Utilization(p) >= frac
}
