package roofline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func model() Model { return ForDevice(gpu.RTX3080()) }

func TestForDeviceMatchesPaper(t *testing.T) {
	m := model()
	if math.Abs(m.PeakGIPS-516.8) > 0.01 {
		t.Errorf("PeakGIPS = %g", m.PeakGIPS)
	}
	if math.Abs(m.ElbowII()-21.75) > 0.05 {
		t.Errorf("elbow = %g, want 21.76", m.ElbowII())
	}
	// 1% threshold -> 5.168 GIPS boundary.
	if m.BoundOf(5.0) != LatencyBound {
		t.Error("5 GIPS should be latency-bound")
	}
	if m.BoundOf(5.3) != BandwidthBound {
		t.Error("5.3 GIPS should be bandwidth-bound")
	}
}

func TestRoofShape(t *testing.T) {
	m := model()
	if m.Roof(-1) != 0 {
		t.Error("negative intensity")
	}
	// Memory region: roof = ii * GTXN.
	if got := m.Roof(1); math.Abs(got-m.PeakGTXN) > 1e-9 {
		t.Errorf("roof(1) = %g, want %g", got, m.PeakGTXN)
	}
	// Compute region: roof = peak.
	if got := m.Roof(1000); got != m.PeakGIPS {
		t.Errorf("roof(1000) = %g", got)
	}
	// Continuity at the elbow.
	if math.Abs(m.Roof(m.ElbowII())-m.PeakGIPS) > 1e-6 {
		t.Error("roof discontinuous at elbow")
	}
}

func TestClassify(t *testing.T) {
	m := model()
	if m.Classify(1) != MemoryIntensive {
		t.Error("II=1 should be memory-intensive")
	}
	if m.Classify(100) != ComputeIntensive {
		t.Error("II=100 should be compute-intensive")
	}
	if MemoryIntensive.String() != "memory-intensive" || ComputeIntensive.String() != "compute-intensive" {
		t.Error("side names")
	}
	if LatencyBound.String() != "latency-bound" || BandwidthBound.String() != "bandwidth-bound" {
		t.Error("bound names")
	}
}

func TestValidate(t *testing.T) {
	m := model()
	if err := m.Validate(Point{Label: "ok", II: 5, GIPS: 50}); err != nil {
		t.Errorf("point under roof rejected: %v", err)
	}
	if err := m.Validate(Point{Label: "over", II: 1, GIPS: 100}); err == nil {
		t.Error("point above memory roof should fail")
	}
	if err := m.Validate(Point{Label: "nan", II: math.NaN(), GIPS: 1}); err == nil {
		t.Error("NaN intensity should fail")
	}
	if err := m.Validate(Point{Label: "neg", II: 1, GIPS: -1}); err == nil {
		t.Error("negative GIPS should fail")
	}
	if err := m.Validate(Point{Label: "inf", II: math.Inf(1), GIPS: 100}); err != nil {
		t.Errorf("infinite II under peak should be fine: %v", err)
	}
	if err := m.Validate(Point{Label: "inf-over", II: math.Inf(1), GIPS: 600}); err == nil {
		t.Error("infinite II over peak should fail")
	}
}

func TestUtilizationAndNearRoof(t *testing.T) {
	m := model()
	p := Point{Label: "half", II: 10, GIPS: m.Roof(10) / 2}
	if u := m.Utilization(p); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %g, want 0.5", u)
	}
	near := Point{Label: "near", II: 10, GIPS: 0.9 * m.Roof(10)}
	if !m.NearMemoryRoof(near, 0.8) {
		t.Error("point at 90% of memory roof should be near-roof")
	}
	farCompute := Point{Label: "c", II: 100, GIPS: 0.9 * m.PeakGIPS}
	if m.NearMemoryRoof(farCompute, 0.8) {
		t.Error("compute-intensive point is never near the memory roof")
	}
	if m.Utilization(Point{II: 0, GIPS: 0}) != 0 {
		t.Error("zero point utilization")
	}
}

// Property: the roof is monotonically nondecreasing in intensity and never
// exceeds peak.
func TestRoofMonotone(t *testing.T) {
	m := model()
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		ra, rb := m.Roof(a), m.Roof(b)
		return ra <= rb+1e-9 && rb <= m.PeakGIPS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
