package mlapps

import (
	"repro/internal/nn"
)

// stnClassifier is the spatial-transformer network of the PyTorch tutorial:
// a localization net regresses affine parameters, the input is resampled
// through affine_grid + grid_sample, and a small CNN classifies the result.
type stnClassifier struct {
	// Localization.
	locC1, locC2 *nn.Conv2d
	locF1, locF2 *nn.Linear
	locFlat      int
	// Classifier.
	c1, c2 *nn.Conv2d
	f1, f2 *nn.Linear
	flat   int
	size   int
}

func newSTNClassifier(d *nn.Device, size, classes int) *stnClassifier {
	s := &stnClassifier{size: size}
	s.locC1 = nn.NewConv2d(d, 1, 8, 5, 1, 2)  // size
	s.locC2 = nn.NewConv2d(d, 8, 10, 5, 1, 2) // size/2 after pool
	locSide := size / 4
	s.locFlat = 10 * locSide * locSide
	s.locF1 = nn.NewLinear(d, s.locFlat, 32)
	s.locF2 = nn.NewLinear(d, 32, 6)
	// Bias the affine regressor to the identity transform, as the tutorial
	// does.
	copy(s.locF2.B.T.Data, []float32{1, 0, 0, 0, 1, 0})

	s.c1 = nn.NewConv2d(d, 1, 10, 5, 1, 2)
	s.c2 = nn.NewConv2d(d, 10, 20, 5, 1, 2)
	side := size / 4
	s.flat = 20 * side * side
	s.f1 = nn.NewLinear(d, s.flat, 50)
	s.f2 = nn.NewLinear(d, 50, classes)
	return s
}

// transform runs the localization net and resamples x.
func (s *stnClassifier) transform(x *nn.V, train bool) (*nn.V, error) {
	h, err := s.locC1.Forward(x)
	if err != nil {
		return nil, err
	}
	if h, err = nn.MaxPool(h, 2, 2); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = s.locC2.Forward(h); err != nil {
		return nil, err
	}
	if h, err = nn.MaxPool(h, 2, 2); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = nn.Reshape(h, h.T.Shape[0], s.locFlat); err != nil {
		return nil, err
	}
	if h, err = s.locF1.Forward(h); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	theta, err := s.locF2.Forward(h)
	if err != nil {
		return nil, err
	}
	if theta, err = nn.Reshape(theta, theta.T.Shape[0], 2, 3); err != nil {
		return nil, err
	}
	grid, err := nn.AffineGrid(theta, s.size, s.size)
	if err != nil {
		return nil, err
	}
	return nn.GridSample(x, grid)
}

// forward classifies a (B, 1, size, size) batch.
func (s *stnClassifier) forward(x *nn.V, train bool) (*nn.V, error) {
	x, err := s.transform(x, train)
	if err != nil {
		return nil, err
	}
	h, err := s.c1.Forward(x)
	if err != nil {
		return nil, err
	}
	if h, err = nn.MaxPool(h, 2, 2); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = s.c2.Forward(h); err != nil {
		return nil, err
	}
	h = nn.Dropout(h, 0.3, train)
	if h, err = nn.MaxPool(h, 2, 2); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = nn.Reshape(h, h.T.Shape[0], s.flat); err != nil {
		return nil, err
	}
	if h, err = s.f1.Forward(h); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	h = nn.Dropout(h, 0.3, train)
	return s.f2.Forward(h)
}

func (s *stnClassifier) params() []*nn.V {
	return nn.CollectParams(
		s.locC1.Params(), s.locC2.Params(), s.locF1.Params(), s.locF2.Params(),
		s.c1.Params(), s.c2.Params(), s.f1.Params(), s.f2.Params())
}

// SpatialTransformer returns SPT: training a spatial-transformer classifier
// on distorted procedural digits (the MNIST stand-in), with SGD as in the
// paper's description.
func SpatialTransformer() *Workload {
	return &Workload{
		name:        "Spatial transformer network training (MNIST)",
		abbr:        "SPT",
		replication: 48, // 16x16 batch-8 tile of 28x28 batch-64 training
		seed:        44,
		train: func(d *nn.Device) error {
			const (
				size    = 16
				classes = 4
				batch   = 8
				iters   = 8
			)
			model := newSTNClassifier(d, size, classes)
			opt := nn.NewSGD(d, model.params(), 0.02, 0.9)
			var lastLoss float32
			for it := 0; it < iters; it++ {
				imgs, labels := digitBatch(d.RNG, batch, size, classes, true)
				d.EmitNamed("normalize_images", imgs.Numel(), 3, 1, 1)
				logits, err := model.forward(d.Const(imgs), true)
				if err != nil {
					return err
				}
				loss, err := nn.CrossEntropy(logits, labels)
				if err != nil {
					return err
				}
				if err := loss.Backward(); err != nil {
					return err
				}
				opt.Step()
				lastLoss = loss.T.Data[0]
			}
			_ = lastLoss
			return nil
		},
	}
}
