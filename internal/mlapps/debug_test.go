package mlapps

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/units"
)

func newSession(t *testing.T) *profiler.Session {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return profiler.NewSession(d)
}

// TestDebugTimeShares prints per-kernel shares under -v; never fails.
func TestDebugTimeShares(t *testing.T) {
	for _, w := range []*Workload{DCGAN(), NeuralStyle(), ReinforcementLearning(), SpatialTransformer(), LanguageTranslation()} {
		s := newSession(t)
		if err := w.Run(s); err != nil {
			t.Fatal(err)
		}
		total := s.TotalTime().Float()
		agg := s.TotalWarpInstructions().Float()
		var txns units.Txns
		for _, l := range s.Launches() {
			txns += l.Traffic.DRAMTxns
		}
		ks := s.Kernels()
		// Kernels to reach 70%.
		cum, k70 := 0.0, 0
		for _, k := range ks {
			cum += k.TotalTime.Float() / total
			k70++
			if cum >= 0.7 {
				break
			}
		}
		t.Logf("=== %s: %d launches, %.3f ms, %d kernels (%d @70%%), %d Mwarps, agg II=%.2f agg GIPS=%.2f",
			w.Abbr(), s.LaunchCount(), total*1e3, len(ks), k70,
			s.TotalWarpInstructions()/1e6, agg/(txns.Float()+1), agg/total/1e9)
		for i, k := range ks {
			if i >= 15 {
				t.Logf("  ... and %d more", len(ks)-15)
				break
			}
			m := k.Metrics()
			t.Logf("  %-44s share=%5.1f%% inv=%4d II=%8.2f GIPS=%7.2f",
				k.Name, 100*k.TotalTime.Float()/total, k.Invocations, m[1], m[0])
		}
	}
}
