package mlapps

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/workloads"
)

// Workload is one configured machine-learning training benchmark.
type Workload struct {
	name, abbr  string
	replication float64
	seed        int64
	train       func(d *nn.Device) error
}

var _ workloads.Workload = (*Workload)(nil)

// Name returns the full workload name.
func (w *Workload) Name() string { return w.name }

// Abbr returns the paper's abbreviation.
func (w *Workload) Abbr() string { return w.abbr }

// Suite returns Cactus.
func (w *Workload) Suite() workloads.Suite { return workloads.Cactus }

// Domain returns the machine-learning domain.
func (w *Workload) Domain() workloads.Domain { return workloads.MachineL }

// Run executes the training loop against s.
func (w *Workload) Run(s *profiler.Session) error {
	d := nn.NewDevice(s, w.replication, w.seed)
	if err := w.train(d); err != nil {
		return fmt.Errorf("mlapps: %s: %w", w.abbr, err)
	}
	return nil
}
