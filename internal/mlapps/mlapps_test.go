package mlapps

import (
	"testing"

	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/units"
	"repro/internal/workloads"
)

// runApp executes a workload once and returns its session.
func runApp(t *testing.T, w *Workload) *profiler.Session {
	t.Helper()
	s := newSession(t)
	if err := w.Run(s); err != nil {
		t.Fatalf("%s: %v", w.Abbr(), err)
	}
	return s
}

func TestWorkloadIdentities(t *testing.T) {
	for _, w := range []*Workload{DCGAN(), NeuralStyle(), ReinforcementLearning(), SpatialTransformer(), LanguageTranslation()} {
		if w.Suite() != workloads.Cactus || w.Domain() != workloads.MachineL {
			t.Errorf("%s: wrong suite/domain", w.Abbr())
		}
		if w.Name() == "" || w.Abbr() == "" {
			t.Error("empty identity")
		}
	}
}

// TestKernelCounts checks each app's distinct-kernel count against Table I
// (DCG 50, NST 44, RFL 50, SPT 37, LGT 66) with a tolerance band: the
// reproduction preserves tens-of-kernels complexity, not exact library
// template counts.
func TestKernelCounts(t *testing.T) {
	cases := []struct {
		w        *Workload
		lo, hi   int
		paperVal int
	}{
		{DCGAN(), 42, 58, 50},
		{NeuralStyle(), 34, 50, 44},
		{ReinforcementLearning(), 32, 55, 50},
		{SpatialTransformer(), 30, 44, 37},
		{LanguageTranslation(), 48, 72, 66},
	}
	for _, tc := range cases {
		s := runApp(t, tc.w)
		n := len(s.Kernels())
		if n < tc.lo || n > tc.hi {
			t.Errorf("%s: %d kernels, want %d..%d (paper: %d)", tc.w.Abbr(), n, tc.lo, tc.hi, tc.paperVal)
		}
	}
}

// TestManyKernelsNeededFor70Percent verifies Observation #1: the ML
// applications need on the order of a dozen kernels to reach 70% of GPU
// time, unlike single-kernel traditional benchmarks.
func TestManyKernelsNeededFor70Percent(t *testing.T) {
	for _, w := range []*Workload{DCGAN(), NeuralStyle(), ReinforcementLearning(), SpatialTransformer(), LanguageTranslation()} {
		s := runApp(t, w)
		total := s.TotalTime()
		cum, k := 0.0, 0
		for _, kp := range s.Kernels() {
			cum += (kp.TotalTime / total).Float()
			k++
			if cum >= 0.7 {
				break
			}
		}
		if k < 5 {
			t.Errorf("%s: only %d kernels needed for 70%% — too concentrated for an ML app", w.Abbr(), k)
		}
		if k > 25 {
			t.Errorf("%s: %d kernels for 70%% — implausibly flat", w.Abbr(), k)
		}
	}
}

// TestMixedKernelCharacter verifies Observation #7: every ML app has both
// memory-intensive and compute-intensive kernels with wide II diversity.
func TestMixedKernelCharacter(t *testing.T) {
	model := roofline.Model{PeakGIPS: 516.8, PeakGTXN: 23.76, BoundThreshold: 0.01}
	for _, w := range []*Workload{DCGAN(), NeuralStyle(), ReinforcementLearning(), SpatialTransformer(), LanguageTranslation()} {
		s := runApp(t, w)
		var mem, cmp int
		for _, k := range s.Kernels() {
			ii := k.Metrics().Get(profiler.InstIntensity)
			if model.Classify(ii) == roofline.MemoryIntensive {
				mem++
			} else {
				cmp++
			}
		}
		if mem == 0 || cmp == 0 {
			t.Errorf("%s: kernels not mixed (mem=%d cmp=%d)", w.Abbr(), mem, cmp)
		}
	}
}

// TestLGTAggregateMemoryIntensive verifies the Figure 5 placement for LGT
// (clearly memory-intensive, lowest-performing ML app).
func TestLGTAggregateMemoryIntensive(t *testing.T) {
	s := runApp(t, LanguageTranslation())
	insts := s.TotalWarpInstructions().Float()
	var txns units.Txns
	for _, l := range s.Launches() {
		txns += l.Traffic.DRAMTxns
	}
	ii := insts / (txns.Float() + 1)
	if ii >= 21.76 {
		t.Errorf("LGT aggregate II = %g, want memory-intensive (< 21.76)", ii)
	}
}

// TestDCGANDominantKernelsComputeIntensive verifies the Figure 7c
// observation that DCG's top-ranked kernels are compute-intensive.
func TestDCGANDominantKernelsComputeIntensive(t *testing.T) {
	s := runApp(t, DCGAN())
	ks := s.Kernels()
	cmp := 0
	for i := 0; i < 4 && i < len(ks); i++ {
		if ks[i].Metrics().Get(profiler.InstIntensity) >= 21.76 {
			cmp++
		}
	}
	if cmp < 2 {
		t.Errorf("only %d of DCG's top-4 kernels are compute-intensive", cmp)
	}
}

// TestFlappyEnvPhysics exercises the RL environment directly.
func TestFlappyEnvPhysics(t *testing.T) {
	d := newDevice(t)
	env := newFlappyEnv(d.RNG, 16)
	obs := env.observation()
	if obs.Shape[1] != 4 || obs.Shape[2] != 16 {
		t.Fatalf("observation shape %v", obs.Shape)
	}
	// Never flapping must eventually crash (gravity).
	died := false
	for i := 0; i < 200; i++ {
		r, done := env.step(0)
		if done {
			died = true
			if r != -1 {
				t.Errorf("terminal reward = %g, want -1", r)
			}
			break
		}
	}
	if !died {
		t.Error("bird survived 200 steps without flapping")
	}
}

// TestParallelCorpusStructure verifies the synthetic corpus invariants.
func TestParallelCorpusStructure(t *testing.T) {
	d := newDevice(t)
	c := newParallelCorpus(d.RNG, 30, 100, 120, 4, 8)
	if len(c.Pairs) != 30 {
		t.Fatalf("pairs = %d", len(c.Pairs))
	}
	for _, p := range c.Pairs {
		src, dst := p[0], p[1]
		if len(src) != len(dst) {
			t.Fatal("src/dst length mismatch")
		}
		if src[len(src)-1] != 1 || dst[len(dst)-1] != 1 {
			t.Fatal("missing EOS")
		}
		for _, tok := range src {
			if tok < 1 || tok >= 100 {
				t.Fatalf("src token %d out of vocab", tok)
			}
		}
		for _, tok := range dst {
			if tok < 1 || tok >= 120 {
				t.Fatalf("dst token %d out of vocab", tok)
			}
		}
	}
}

// TestDigitBatchLabels verifies dataset generation.
func TestDigitBatchLabels(t *testing.T) {
	d := newDevice(t)
	imgs, labels := digitBatch(d.RNG, 10, 12, 4, true)
	if imgs.Shape[0] != 10 || imgs.Shape[2] != 12 {
		t.Fatalf("shape %v", imgs.Shape)
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d", l)
		}
	}
	for _, v := range imgs.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %g out of [0,1]", v)
		}
	}
}

// TestFaceBatchRange verifies image normalization to [-1, 1].
func TestFaceBatchRange(t *testing.T) {
	d := newDevice(t)
	f := faceBatch(d.RNG, 2, 16)
	if f.Shape[1] != 3 {
		t.Fatal("faces must be RGB")
	}
	for _, v := range f.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %g out of [-1,1]", v)
		}
	}
}
