package mlapps

import (
	"testing"

	"repro/internal/nn"
)

func newDevice(t *testing.T) *nn.Device {
	t.Helper()
	return nn.NewDevice(newSession(t), 1, 7)
}
