// Package mlapps implements the five Cactus machine-learning workloads —
// DCGAN training (DCG), Neural Style transfer (NST), Deep-Q reinforcement
// learning on a flappy-bird environment (RFL), spatial-transformer training
// (SPT), and seq2seq language translation (LGT) — on the internal/nn
// framework. Dataset inputs are procedural stand-ins for the paper's
// Celeb-A, MNIST, game frames, and Spacy corpora: training-phase kernel
// behavior depends on tensor shapes and loop structure, which the
// generators preserve (see DESIGN.md, substitutions).
package mlapps

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// faceBatch generates a batch of procedural "face-like" images: smooth
// low-frequency blobs with channel correlations, normalized to [-1, 1] —
// the Celeb-A stand-in for DCGAN.
func faceBatch(r *rand.Rand, batch, size int) *tensor.Tensor {
	t := tensor.New(batch, 3, size, size)
	for b := 0; b < batch; b++ {
		cx := 0.5 + 0.1*r.NormFloat64()
		cy := 0.45 + 0.1*r.NormFloat64()
		tone := 0.3 + 0.4*r.Float64()
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				dx := float64(x)/float64(size) - cx
				dy := float64(y)/float64(size) - cy
				face := math.Exp(-(dx*dx + dy*dy) * 12)
				eyes := math.Exp(-((dx-0.12)*(dx-0.12)+(dy+0.08)*(dy+0.08))*260) +
					math.Exp(-((dx+0.12)*(dx+0.12)+(dy+0.08)*(dy+0.08))*260)
				v := tone*face - 0.5*eyes + 0.05*r.NormFloat64()
				for c := 0; c < 3; c++ {
					shade := v * (1 - 0.15*float64(c))
					t.Data[((b*3+c)*size+y)*size+x] = float32(2*clamp01(shade+0.3) - 1)
				}
			}
		}
	}
	return t
}

// artImage generates a structured image: content images get geometric
// shapes, style images get oscillating textures — the stand-ins for the
// Neural Style content/style pair.
func artImage(r *rand.Rand, size int, style bool) *tensor.Tensor {
	t := tensor.New(1, 3, size, size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			var v float64
			if style {
				v = 0.5 + 0.3*math.Sin(float64(x)*0.7)*math.Cos(float64(y)*0.5) +
					0.2*math.Sin(float64(x+y)*0.3)
			} else {
				// Content: a square and a disc.
				v = 0.2
				if x > size/6 && x < size/2 && y > size/6 && y < size/2 {
					v = 0.8
				}
				dx, dy := float64(x-2*size/3), float64(y-2*size/3)
				if dx*dx+dy*dy < float64(size*size)/36 {
					v = 0.6
				}
			}
			v += 0.03 * r.NormFloat64()
			for c := 0; c < 3; c++ {
				t.Data[((0*3+c)*size+y)*size+x] = float32(clamp01(v * (1 - 0.1*float64(c))))
			}
		}
	}
	return t
}

// digitBatch generates procedural digit glyphs (stroke patterns per class)
// with jitter — the MNIST stand-in for the spatial transformer. Returns
// images (batch, 1, size, size) and labels. When distort is set, each digit
// is randomly rotated/translated, giving the transformer something to undo.
func digitBatch(r *rand.Rand, batch, size, classes int, distort bool) (*tensor.Tensor, []int) {
	t := tensor.New(batch, 1, size, size)
	labels := make([]int, batch)
	for b := 0; b < batch; b++ {
		lab := r.Intn(classes)
		labels[b] = lab
		angle := 0.0
		shiftX, shiftY := 0.0, 0.0
		if distort {
			angle = (r.Float64() - 0.5) * 0.9
			shiftX = (r.Float64() - 0.5) * 0.25 * float64(size)
			shiftY = (r.Float64() - 0.5) * 0.25 * float64(size)
		}
		cosA, sinA := math.Cos(angle), math.Sin(angle)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				// Rotate/translate back into glyph space.
				fx := float64(x) - float64(size)/2 - shiftX
				fy := float64(y) - float64(size)/2 - shiftY
				gx := (cosA*fx + sinA*fy) / float64(size) * 2
				gy := (-sinA*fx + cosA*fy) / float64(size) * 2
				v := glyph(lab, gx, gy)
				t.Data[(b*size+y)*size+x] = float32(clamp01(v + 0.05*r.NormFloat64()))
			}
		}
	}
	return t, labels
}

// glyph renders class-dependent stroke patterns over [-1,1]^2.
func glyph(class int, x, y float64) float64 {
	switch class % 4 {
	case 0: // ring
		rr := math.Sqrt(x*x + y*y)
		return math.Exp(-(rr - 0.55) * (rr - 0.55) * 40)
	case 1: // vertical bar
		return math.Exp(-x * x * 30)
	case 2: // cross
		return math.Max(math.Exp(-x*x*30), math.Exp(-y*y*30))
	default: // diagonal
		d := (x - y) / math.Sqrt2
		return math.Exp(-d * d * 30)
	}
}

// parallelCorpus generates a synthetic translation corpus: "source"
// sentences are random token sequences from a Zipf-ish distribution, and
// "target" sentences are a deterministic transformation (token mapping +
// local reordering), so a seq2seq model has real structure to learn — the
// Spacy German-English stand-in.
type parallelCorpus struct {
	SrcVocab, DstVocab int
	Pairs              [][2][]int
}

func newParallelCorpus(r *rand.Rand, nPairs, srcVocab, dstVocab, minLen, maxLen int) *parallelCorpus {
	c := &parallelCorpus{SrcVocab: srcVocab, DstVocab: dstVocab}
	for i := 0; i < nPairs; i++ {
		n := minLen + r.Intn(maxLen-minLen+1)
		src := make([]int, n)
		for j := range src {
			// Zipf-ish: low ids much more frequent.
			src[j] = int(math.Abs(r.NormFloat64()) / 2.5 * float64(srcVocab))
			if src[j] >= srcVocab-2 {
				src[j] = srcVocab - 3
			}
			src[j] += 2 // reserve 0=pad, 1=eos
		}
		dst := make([]int, n)
		for j := range dst {
			// Deterministic mapping with a local swap pattern.
			k := j
			if j+1 < n && j%2 == 0 {
				k = j + 1
			} else if j%2 == 1 {
				k = j - 1
			}
			dst[j] = (src[k]*7+3)%(dstVocab-2) + 2
		}
		src = append(src, 1)
		dst = append(dst, 1)
		c.Pairs = append(c.Pairs, [2][]int{src, dst})
	}
	return c
}

// flappyEnv is a minimal flappy-bird physics simulation producing stacked
// grayscale frames as observations — the RFL environment.
type flappyEnv struct {
	r        *rand.Rand
	size     int
	birdY    float64
	birdVel  float64
	pipeX    float64
	gapY     float64
	score    int
	frames   int
	lastObs  []*tensor.Tensor // last 4 frames
	gapSize  float64
	terminal bool
}

func newFlappyEnv(r *rand.Rand, size int) *flappyEnv {
	e := &flappyEnv{r: r, size: size, gapSize: 0.35}
	e.reset()
	return e
}

func (e *flappyEnv) reset() {
	e.birdY = 0.5
	e.birdVel = 0
	e.pipeX = 1.0
	e.gapY = 0.3 + 0.4*e.r.Float64()
	e.terminal = false
	e.frames = 0
	e.lastObs = nil
	frame := e.render()
	for i := 0; i < 4; i++ {
		e.lastObs = append(e.lastObs, frame)
	}
}

// step advances physics: action 1 = flap. Returns reward and terminal flag.
func (e *flappyEnv) step(action int) (float64, bool) {
	if e.terminal {
		e.reset()
	}
	if action == 1 {
		e.birdVel = -0.045
	}
	e.birdVel += 0.008
	e.birdY += e.birdVel
	e.pipeX -= 0.04
	reward := 0.1
	if e.pipeX < -0.1 {
		e.pipeX = 1.0
		e.gapY = 0.3 + 0.4*e.r.Float64()
		e.score++
		reward = 1.0
	}
	// Collision: bird at x=0.3.
	if e.birdY < 0 || e.birdY > 1 {
		e.terminal = true
	}
	if math.Abs(e.pipeX-0.3) < 0.08 {
		if e.birdY < e.gapY-e.gapSize/2 || e.birdY > e.gapY+e.gapSize/2 {
			e.terminal = true
		}
	}
	if e.terminal {
		reward = -1.0
	}
	e.frames++
	frame := e.render()
	e.lastObs = append(e.lastObs[1:], frame)
	return reward, e.terminal
}

// render draws the current state as a size x size grayscale frame.
func (e *flappyEnv) render() *tensor.Tensor {
	t := tensor.New(1, e.size, e.size)
	for y := 0; y < e.size; y++ {
		for x := 0; x < e.size; x++ {
			fx, fy := float64(x)/float64(e.size), float64(y)/float64(e.size)
			var v float64
			// Pipe.
			if math.Abs(fx-e.pipeX) < 0.06 && (fy < e.gapY-e.gapSize/2 || fy > e.gapY+e.gapSize/2) {
				v = 0.8
			}
			// Bird.
			dx, dy := fx-0.3, fy-e.birdY
			if dx*dx+dy*dy < 0.002 {
				v = 1.0
			}
			t.Data[y*e.size+x] = float32(v)
		}
	}
	return t
}

// observation returns the stacked last-4-frames tensor (1, 4, size, size).
func (e *flappyEnv) observation() *tensor.Tensor {
	t := tensor.New(1, 4, e.size, e.size)
	for i, f := range e.lastObs {
		copy(t.Data[i*e.size*e.size:(i+1)*e.size*e.size], f.Data)
	}
	return t
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
