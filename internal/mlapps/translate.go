package mlapps

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// seq2seq is the attention encoder-decoder of the PyTorch translation
// tutorial: GRU encoder, GRU decoder with learned attention over encoder
// states, teacher forcing during training.
type seq2seq struct {
	srcEmbed, dstEmbed *nn.V
	encoder1, encoder2 *nn.GRUCell
	decoder1, decoder2 *nn.GRUCell
	attn, attnCombine  *nn.Linear
	out                *nn.Linear
	embDim, hidden     int
	maxLen             int
}

func newSeq2Seq(d *nn.Device, srcVocab, dstVocab, embDim, hidden, maxLen int) *seq2seq {
	return &seq2seq{
		srcEmbed:    d.Param(tensor.Randn(d.RNG, 0.1, srcVocab, embDim)),
		dstEmbed:    d.Param(tensor.Randn(d.RNG, 0.1, dstVocab, embDim)),
		encoder1:    nn.NewGRUCell(d, embDim, hidden),
		encoder2:    nn.NewGRUCell(d, hidden, hidden),
		decoder1:    nn.NewGRUCell(d, 2*hidden, hidden),
		decoder2:    nn.NewGRUCell(d, hidden, hidden),
		attn:        nn.NewLinear(d, embDim+hidden, maxLen),
		attnCombine: nn.NewLinear(d, embDim+hidden, hidden),
		out:         nn.NewLinear(d, hidden, dstVocab),
		embDim:      embDim, hidden: hidden, maxLen: maxLen,
	}
}

func (m *seq2seq) params() []*nn.V {
	return nn.CollectParams(
		[]*nn.V{m.srcEmbed, m.dstEmbed},
		m.encoder1.Params(), m.encoder2.Params(),
		m.decoder1.Params(), m.decoder2.Params(),
		m.attn.Params(), m.attnCombine.Params(), m.out.Params())
}

// encode runs the encoder over the padded source batch (time-major token
// ids), returning all hidden states.
func (m *seq2seq) encode(d *nn.Device, src [][]int) ([]*nn.V, *nn.V, error) {
	batch := len(src[0])
	h1 := d.Const(tensor.New(batch, m.hidden))
	h2 := d.Const(tensor.New(batch, m.hidden))
	var states []*nn.V
	for _, tokens := range src {
		emb, err := nn.Embedding(m.srcEmbed, tokens)
		if err != nil {
			return nil, nil, err
		}
		h1, err = m.encoder1.Step(emb, h1)
		if err != nil {
			return nil, nil, err
		}
		h2, err = m.encoder2.Step(h1, h2)
		if err != nil {
			return nil, nil, err
		}
		states = append(states, h2)
	}
	return states, h2, nil
}

// decodeStep runs one attention-decoder step.
func (m *seq2seq) decodeStep(d *nn.Device, prev []int, h *nn.V, encStates []*nn.V, train bool) (logits, hNext *nn.V, err error) {
	emb, err := nn.Embedding(m.dstEmbed, prev)
	if err != nil {
		return nil, nil, err
	}
	emb = nn.Dropout(emb, 0.1, train)
	cat, err := nn.Concat2D(emb, h)
	if err != nil {
		return nil, nil, err
	}
	scores, err := m.attn.Forward(cat)
	if err != nil {
		return nil, nil, err
	}
	// Attention spans maxLen slots; only the first len(encStates) carry
	// states, so restrict the weighted sum to them (PyTorch pads instead;
	// the kernel behavior is identical).
	weights, err := nn.SoftmaxRows(scores)
	if err != nil {
		return nil, nil, err
	}
	wUsed, err := nn.SliceCols(weights, 0, len(encStates))
	if err != nil {
		return nil, nil, err
	}
	ctx, err := nn.AttentionContext(wUsed, encStates)
	if err != nil {
		return nil, nil, err
	}
	comb, err := nn.Concat2D(emb, ctx)
	if err != nil {
		return nil, nil, err
	}
	comb, err = m.attnCombine.Forward(comb)
	if err != nil {
		return nil, nil, err
	}
	comb = nn.ReLU(comb)
	gruIn, err := nn.Concat2D(comb, ctx)
	if err != nil {
		return nil, nil, err
	}
	h1, err := m.decoder1.Step(gruIn, h)
	if err != nil {
		return nil, nil, err
	}
	hNext, err = m.decoder2.Step(h1, h)
	if err != nil {
		return nil, nil, err
	}
	proj, err := m.out.Forward(hNext)
	if err != nil {
		return nil, nil, err
	}
	logits, err = nn.LogSoftmaxRows(proj)
	if err != nil {
		return nil, nil, err
	}
	return logits, hNext, nil
}

// LanguageTranslation returns LGT: training the attention seq2seq model on
// a synthetic parallel corpus (the Spacy German-English stand-in).
func LanguageTranslation() *Workload {
	return &Workload{
		name:        "Seq2seq language translation training",
		abbr:        "LGT",
		replication: 72, // vocab 300 / hidden 32 tile of the full model
		seed:        55,
		train: func(d *nn.Device) error {
			const (
				srcVocab = 300
				dstVocab = 300
				embDim   = 40
				hidden   = 24
				maxLen   = 10
				batch    = 12
				iters    = 4
			)
			corpus := newParallelCorpus(d.RNG, 64, srcVocab, dstVocab, 5, maxLen-1)
			model := newSeq2Seq(d, srcVocab, dstVocab, embDim, hidden, maxLen)
			opt := nn.NewAdam(d, model.params(), 1e-3, 0.9)
			// PyTorch 1.7 (the paper's stack) updates each parameter tensor
			// with its own kernel instance.
			opt.SetPerParam(true)

			makeBatch := func() (src, dst [][]int) {
				// Time-major padded batches.
				maxS, maxD := 0, 0
				var pairs [][2][]int
				for i := 0; i < batch; i++ {
					p := corpus.Pairs[d.RNG.Intn(len(corpus.Pairs))]
					pairs = append(pairs, p)
					if len(p[0]) > maxS {
						maxS = len(p[0])
					}
					if len(p[1]) > maxD {
						maxD = len(p[1])
					}
				}
				src = make([][]int, maxS)
				for t := range src {
					src[t] = make([]int, batch)
					for b, p := range pairs {
						if t < len(p[0]) {
							src[t][b] = p[0][t]
						}
					}
				}
				dst = make([][]int, maxD)
				for t := range dst {
					dst[t] = make([]int, batch)
					for b, p := range pairs {
						if t < len(p[1]) {
							dst[t][b] = p[1][t]
						}
					}
				}
				return src, dst
			}

			for it := 0; it < iters; it++ {
				src, dst := makeBatch()
				// TorchText-style batching pipeline.
				d.EmitNamed("pad_pack_sequences", batch*maxLen, 1, 1, 1)
				d.EmitNamed("bucket_batch_tokens", batch*maxLen, 1, 1, 1)
				encStates, h, err := model.encode(d, src)
				if err != nil {
					return err
				}
				if len(encStates) > maxLen {
					encStates = encStates[:maxLen]
				}
				// Teacher forcing: feed gold tokens, accumulate CE loss.
				prev := make([]int, batch) // SOS = 0
				var total *nn.V
				for t := 0; t < len(dst); t++ {
					logits, hNext, err := model.decodeStep(d, prev, h, encStates, true)
					if err != nil {
						return err
					}
					h = hNext
					loss, err := nn.NLLLoss(logits, dst[t])
					if err != nil {
						return err
					}
					if total == nil {
						total = loss
					} else {
						total, err = nn.Add(total, loss, 1, 1)
						if err != nil {
							return err
						}
					}
					prev = dst[t]
				}
				if err := total.Backward(); err != nil {
					return err
				}
				nn.ClipGradNorm(d, model.params(), 1.0)
				opt.Step()
			}

			// Greedy decoding of one sentence (batch 1), as the tutorial's
			// evaluation does — exercising the batch-1 kernel variants.
			src := [][]int{}
			sent := corpus.Pairs[0][0]
			for _, tok := range sent {
				src = append(src, []int{tok})
			}
			encStates, h, err := model.encode(d, src)
			if err != nil {
				return err
			}
			if len(encStates) > maxLen {
				encStates = encStates[:maxLen]
			}
			prev := []int{0}
			for t := 0; t < maxLen; t++ {
				logits, hNext, err := model.decodeStep(d, prev, h, encStates, false)
				if err != nil {
					return err
				}
				h = hNext
				best, bestV := 0, float32(-1e30)
				for j, v := range logits.T.Data {
					if v > bestV {
						best, bestV = j, v
					}
				}
				if best == 1 { // EOS
					break
				}
				prev = []int{best}
			}
			return nil
		},
	}
}
