package mlapps

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// generator is the DCGAN generator: z (B, zdim, 1, 1) -> image (B, 3, 32, 32)
// through a stack of transposed convolutions with batch norm and ReLU.
type generator struct {
	deconvs []*nn.ConvTranspose2d
	bns     []*nn.BatchNorm2d
}

func newGenerator(d *nn.Device, zdim, base int) *generator {
	g := &generator{}
	// zdim x1x1 -> base*4 x4x4 -> base*2 x8x8 -> base x16x16 -> 3 x32x32
	g.deconvs = append(g.deconvs,
		nn.NewConvTranspose2d(d, zdim, base*4, 4, 1, 0),
		nn.NewConvTranspose2d(d, base*4, base*2, 4, 2, 1),
		nn.NewConvTranspose2d(d, base*2, base, 4, 2, 1),
		nn.NewConvTranspose2d(d, base, 3, 4, 2, 1),
	)
	g.bns = append(g.bns,
		nn.NewBatchNorm2d(d, base*4),
		nn.NewBatchNorm2d(d, base*2),
		nn.NewBatchNorm2d(d, base),
	)
	return g
}

func (g *generator) forward(z *nn.V) (*nn.V, error) {
	x := z
	var err error
	for i, dc := range g.deconvs {
		x, err = dc.Forward(x)
		if err != nil {
			return nil, err
		}
		if i < len(g.bns) {
			x, err = g.bns[i].Forward(x)
			if err != nil {
				return nil, err
			}
			x = nn.ReLU(x)
		}
	}
	return nn.Tanh(x), nil
}

func (g *generator) params() []*nn.V {
	var ps []*nn.V
	for _, l := range g.deconvs {
		ps = append(ps, l.Params()...)
	}
	for _, l := range g.bns {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// discriminator maps images (B, 3, 32, 32) to realness logits (B, 1).
type discriminator struct {
	convs []*nn.Conv2d
	bns   []*nn.BatchNorm2d
}

func newDiscriminator(d *nn.Device, base int) *discriminator {
	disc := &discriminator{}
	disc.convs = append(disc.convs,
		nn.NewConv2d(d, 3, base, 4, 2, 1),      // 16x16
		nn.NewConv2d(d, base, base*2, 4, 2, 1), // 8x8
		nn.NewConv2d(d, base*2, base*4, 4, 2, 1),
		nn.NewConv2d(d, base*4, 1, 4, 1, 0), // 1x1 logit
	)
	disc.bns = append(disc.bns,
		nn.NewBatchNorm2d(d, base*2),
		nn.NewBatchNorm2d(d, base*4),
	)
	return disc
}

func (disc *discriminator) forward(x *nn.V) (*nn.V, error) {
	var err error
	for i, cv := range disc.convs {
		x, err = cv.Forward(x)
		if err != nil {
			return nil, err
		}
		if i == len(disc.convs)-1 {
			break
		}
		if i >= 1 {
			x, err = disc.bns[i-1].Forward(x)
			if err != nil {
				return nil, err
			}
		}
		x = nn.LeakyReLU(x, 0.2)
	}
	return nn.Reshape(x, x.T.Shape[0], 1)
}

func (disc *discriminator) params() []*nn.V {
	var ps []*nn.V
	for _, l := range disc.convs {
		ps = append(ps, l.Params()...)
	}
	for _, l := range disc.bns {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// DCGAN returns DCG: adversarial training of a deep-convolutional GAN on
// procedural face images (the Celeb-A stand-in).
func DCGAN() *Workload {
	return &Workload{
		name:        "DCGAN training (Celeb-A)",
		abbr:        "DCG",
		replication: 384, // batch 8 @32x32 tile of batch 128 @64x64 training
		seed:        11,
		train: func(d *nn.Device) error {
			const (
				batch = 8
				zdim  = 32
				ngf   = 16 // generator feature width
				ndf   = 24 // discriminator feature width
				iters = 6
			)
			g := newGenerator(d, zdim, ngf)
			disc := newDiscriminator(d, ndf)
			optG := nn.NewAdam(d, g.params(), 2e-4, 0.5)
			optD := nn.NewAdam(d, disc.params(), 2e-4, 0.5)
			ones := tensor.Full(1, batch, 1)
			zeros := tensor.New(batch, 1)

			sampleZ := func() *nn.V {
				// z ~ N(0,1): the curand sampling kernel.
				z := tensor.Randn(d.RNG, 1, batch, zdim, 1, 1)
				d.EmitNamed("curand_normal_z", z.Numel(), 4, 0, 1)
				return d.Const(z)
			}
			for it := 0; it < iters; it++ {
				// --- Discriminator step: real batch + fake batch -----------
				real := faceBatch(d.RNG, batch, 32)
				// Data-loading pipeline: decode, resize, flip, normalize.
				d.EmitNamed("image_resize_bilinear", real.Numel(), 6, 1, 1)
				d.EmitNamed("random_horizontal_flip", real.Numel(), 1, 1, 1)
				d.EmitNamed("normalize_images", real.Numel(), 3, 1, 1)
				dReal, err := disc.forward(d.Const(real))
				if err != nil {
					return err
				}
				lossReal, err := nn.BCEWithLogits(dReal, ones)
				if err != nil {
					return err
				}
				fake, err := g.forward(sampleZ())
				if err != nil {
					return err
				}
				dFake, err := disc.forward(fake.Detach())
				if err != nil {
					return err
				}
				lossFake, err := nn.BCEWithLogits(dFake, zeros)
				if err != nil {
					return err
				}
				lossD, err := nn.Add(lossReal, lossFake, 0.5, 0.5)
				if err != nil {
					return err
				}
				if err := lossD.Backward(); err != nil {
					return err
				}
				optD.Step()

				// --- Generator step ----------------------------------------
				fake, err = g.forward(sampleZ())
				if err != nil {
					return err
				}
				dOut, err := disc.forward(fake)
				if err != nil {
					return err
				}
				lossG, err := nn.BCEWithLogits(dOut, ones)
				if err != nil {
					return err
				}
				if err := lossG.Backward(); err != nil {
					return err
				}
				optG.Step()

				if lossG.T.Data[0] < 0 || lossD.T.Data[0] < 0 {
					return fmt.Errorf("mlapps: negative BCE loss")
				}
			}
			return nil
		},
	}
}
