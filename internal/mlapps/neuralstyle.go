package mlapps

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// vggLite is a frozen VGG-style feature extractor; only the input image is
// optimized, as in Gatys-style neural style transfer.
type vggLite struct {
	convs   []*nn.Conv2d
	poolAt  map[int]bool
	styleAt map[int]bool // tap for style (Gram) losses
	content int          // tap for the content loss
}

func newVGGLite(d *nn.Device) *vggLite {
	v := &vggLite{
		poolAt:  map[int]bool{1: true, 3: true, 5: true},
		styleAt: map[int]bool{0: true, 2: true, 4: true, 6: true},
		content: 5,
	}
	chans := []struct{ in, out int }{
		{3, 16}, {16, 16}, // block 1
		{16, 32}, {32, 32}, // block 2
		{32, 64}, {64, 64}, // block 3
		{64, 128}, // block 4
	}
	for _, c := range chans {
		layer := nn.NewConv2d(d, c.in, c.out, 3, 1, 1)
		// Freeze: re-wrap the weights as constants so no wgrad kernels run,
		// exactly like .requires_grad_(False) on a pretrained extractor.
		layer.W = d.Const(layer.W.T)
		layer.B = d.Const(layer.B.T)
		v.convs = append(v.convs, layer)
	}
	return v
}

// features runs the extractor, returning the style taps and content tap.
func (v *vggLite) features(x *nn.V) (style []*nn.V, content *nn.V, err error) {
	for i, cv := range v.convs {
		x, err = cv.Forward(x)
		if err != nil {
			return nil, nil, err
		}
		x = nn.ReLU(x)
		if v.styleAt[i] {
			style = append(style, x)
		}
		if i == v.content {
			content = x
		}
		if v.poolAt[i] {
			x, err = nn.MaxPool(x, 2, 2)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	return style, content, nil
}

// gram computes the Gram matrix of a (B, C, H, W) feature tap.
func gram(x *nn.V) (*nn.V, error) {
	c := x.T.Shape[1]
	hw := x.T.Shape[2] * x.T.Shape[3]
	f, err := nn.Reshape(x, c, hw)
	if err != nil {
		return nil, err
	}
	g, err := nn.MatMul(f, f, false, true)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// NeuralStyle returns NST: optimizing an image so its VGG features match a
// content image and its Gram statistics match a style image.
func NeuralStyle() *Workload {
	return &Workload{
		name:        "Neural Style transfer training",
		abbr:        "NST",
		replication: 64, // 64x64 tile of the 512x512 optimization
		seed:        22,
		train: func(d *nn.Device) error {
			const size = 32
			const iters = 8
			vgg := newVGGLite(d)
			content := artImage(d.RNG, size, false)
			style := artImage(d.RNG, size, true)
			d.EmitNamed("normalize_images", content.Numel()+style.Numel(), 3, 1, 1)

			// Precompute targets (no gradients).
			styleTaps, _, err := vgg.features(d.Const(style))
			if err != nil {
				return err
			}
			var styleTargets []*tensor.Tensor
			for _, tap := range styleTaps {
				g, err := gram(tap)
				if err != nil {
					return err
				}
				styleTargets = append(styleTargets, g.T.Clone())
			}
			_, contentTarget, err := vgg.features(d.Const(content))
			if err != nil {
				return err
			}
			contentRef := contentTarget.T.Clone()

			// The optimized image starts from the content image.
			img := d.Param(content.Clone())
			opt := nn.NewAdam(d, []*nn.V{img}, 0.05, 0.9)
			prev := float32(0)
			for it := 0; it < iters; it++ {
				taps, ct, err := vgg.features(img)
				if err != nil {
					return err
				}
				total, err := nn.MSELoss(ct, contentRef)
				if err != nil {
					return err
				}
				for si, tap := range taps {
					g, err := gram(tap)
					if err != nil {
						return err
					}
					sl, err := nn.MSELoss(g, styleTargets[si])
					if err != nil {
						return err
					}
					total, err = nn.Add(total, sl, 1, 1000)
					if err != nil {
						return err
					}
				}
				tv, err := nn.TVLoss(img)
				if err != nil {
					return err
				}
				total, err = nn.Add(total, tv, 1, 10)
				if err != nil {
					return err
				}
				if err := total.Backward(); err != nil {
					return err
				}
				opt.Step()
				// The optimized image is clamped to the valid range each
				// iteration.
				for i, v := range img.T.Data {
					if v < 0 {
						img.T.Data[i] = 0
					} else if v > 1 {
						img.T.Data[i] = 1
					}
				}
				d.EmitNamed("clamp_image", img.T.Numel(), 2, 1, 1)
				prev = total.T.Data[0]
			}
			_ = prev
			return nil
		},
	}
}
