package mlapps

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// qNetwork is the DeepMind-style DQN: three convolutions over stacked
// frames, then two fully connected layers to per-action Q values.
type qNetwork struct {
	c1, c2, c3 *nn.Conv2d
	f1, f2     *nn.Linear
	flat       int
}

func newQNetwork(d *nn.Device, frameSize, actions int) *qNetwork {
	q := &qNetwork{
		c1: nn.NewConv2d(d, 4, 16, 4, 2, 1),  // 20 -> 10
		c2: nn.NewConv2d(d, 16, 32, 4, 2, 1), // 10 -> 5
		c3: nn.NewConv2d(d, 32, 32, 3, 1, 1), // 5 -> 5
	}
	side := frameSize / 4
	q.flat = 32 * side * side
	q.f1 = nn.NewLinear(d, q.flat, 64)
	q.f2 = nn.NewLinear(d, 64, actions)
	return q
}

func (q *qNetwork) forward(x *nn.V) (*nn.V, error) {
	h, err := q.c1.Forward(x)
	if err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = q.c2.Forward(h); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = q.c3.Forward(h); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	if h, err = nn.Reshape(h, h.T.Shape[0], q.flat); err != nil {
		return nil, err
	}
	if h, err = q.f1.Forward(h); err != nil {
		return nil, err
	}
	h = nn.ReLU(h)
	return q.f2.Forward(h)
}

func (q *qNetwork) params() []*nn.V {
	return nn.CollectParams(q.c1.Params(), q.c2.Params(), q.c3.Params(),
		q.f1.Params(), q.f2.Params())
}

// copyInto copies parameter values into a target network, launching the
// parameter-copy kernel DQN target updates perform.
func (q *qNetwork) copyInto(d *nn.Device, dst *qNetwork) {
	src, dstP := q.params(), dst.params()
	total := 0
	for i := range src {
		copy(dstP[i].T.Data, src[i].T.Data)
		total += src[i].T.Numel()
	}
	d.EmitParamOp("copy_target_network", total, 0.5, 1, 1)
}

type transition struct {
	state     *tensor.Tensor
	action    int
	reward    float64
	nextState *tensor.Tensor
	terminal  bool
}

// ReinforcementLearning returns RFL: DQN training on the flappy-bird
// environment with an experience-replay buffer and a target network.
func ReinforcementLearning() *Workload {
	return &Workload{
		name:        "Deep-Q reinforcement learning (flappy bird)",
		abbr:        "RFL",
		replication: 80, // 20x20 frames, batch 16 tile of 84x84 batch 32
		seed:        33,
		train: func(d *nn.Device) error {
			const (
				frame   = 20
				actions = 2
				batch   = 16
				gamma   = 0.95
				steps   = 30
			)
			policy := newQNetwork(d, frame, actions)
			target := newQNetwork(d, frame, actions)
			policy.copyInto(d, target)
			opt := nn.NewAdam(d, policy.params(), 1e-3, 0.9)
			env := newFlappyEnv(d.RNG, frame)
			var replay []transition

			epsilon := 1.0
			for step := 0; step < steps; step++ {
				// --- Act: epsilon-greedy with a batch-1 inference pass -----
				obs := env.observation()
				// Frame pipeline of the flappy-bird DQN: resize, grayscale,
				// binarize, stack.
				d.EmitNamed("resize_bilinear", obs.Numel(), 6, 1, 1)
				d.EmitNamed("rgb_to_gray", obs.Numel(), 3, 1, 1)
				d.EmitNamed("binarize_frame", obs.Numel(), 1, 1, 1)
				d.EmitNamed("cat_frame_stack", obs.Numel(), 0.5, 1, 1)
				action := 0
				if d.RNG.Float64() < epsilon {
					action = d.RNG.Intn(actions)
				} else {
					q, err := policy.forward(d.Const(obs))
					if err != nil {
						return err
					}
					if q.T.Data[1] > q.T.Data[0] {
						action = 1
					}
				}
				reward, done := env.step(action)
				replay = append(replay, transition{
					state: obs, action: action, reward: reward,
					nextState: env.observation(), terminal: done,
				})
				if len(replay) > 200 {
					replay = replay[1:]
				}
				epsilon = math.Max(0.1, epsilon*0.97)

				// --- Learn: sample a minibatch from replay -----------------
				if len(replay) < batch {
					continue
				}
				states := tensor.New(batch, 4, frame, frame)
				next := tensor.New(batch, 4, frame, frame)
				var acts []int
				var rewards []float64
				var terms []bool
				for i := 0; i < batch; i++ {
					tr := replay[d.RNG.Intn(len(replay))]
					copy(states.Data[i*4*frame*frame:(i+1)*4*frame*frame], tr.state.Data)
					copy(next.Data[i*4*frame*frame:(i+1)*4*frame*frame], tr.nextState.Data)
					acts = append(acts, tr.action)
					rewards = append(rewards, tr.reward)
					terms = append(terms, tr.terminal)
				}
				d.EmitNamed("replay_batch_gather", states.Numel()*2, 1, 1, 1)

				// Target values from the frozen network (no grad).
				qNext, err := target.forward(d.Const(next))
				if err != nil {
					return err
				}
				d.EmitNamed("reduce_max_q", qNext.T.Numel(), 1, 1, 1)
				targets := tensor.New(batch, actions)
				qCur, err := policy.forward(d.Const(states))
				if err != nil {
					return err
				}
				for i := 0; i < batch; i++ {
					maxQ := math.Max(float64(qNext.T.Data[i*actions]), float64(qNext.T.Data[i*actions+1]))
					y := rewards[i]
					if !terms[i] {
						y += gamma * maxQ
					}
					// Only the taken action's Q is regressed; others keep
					// their current value (zero TD error).
					for a := 0; a < actions; a++ {
						targets.Data[i*actions+a] = qCur.T.Data[i*actions+a]
					}
					targets.Data[i*actions+acts[i]] = float32(y)
				}
				d.EmitNamed("q_gather_action", batch, 1, 2, 1)
				d.EmitNamed("clamp_td_error", batch, 2, 1, 1)
				d.EmitNamed("td_target_build", batch*actions, 3, 2, 1)

				// Gradient step on the policy network.
				qPred, err := policy.forward(d.Const(states))
				if err != nil {
					return err
				}
				loss, err := nn.MSELoss(qPred, targets)
				if err != nil {
					return err
				}
				if err := loss.Backward(); err != nil {
					return err
				}
				opt.Step()

				// Periodic target sync.
				if step%10 == 9 {
					policy.copyInto(d, target)
				}
			}
			return nil
		},
	}
}
