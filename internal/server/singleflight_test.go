package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

// TestFlightCollapsesConcurrentCallers — with the computation blocked, any
// number of callers of one key produce exactly one leader and one fn run;
// every caller gets the same result pointer. The leak check proves the
// leader goroutine exits once the flight completes.
func TestFlightCollapsesConcurrentCallers(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	g := newFlightGroup()
	release := make(chan struct{})
	var runs atomic.Int64
	want := &core.Profile{}
	fn := func() (*core.Profile, error) {
		runs.Add(1)
		<-release
		return want, nil
	}

	const callers = 50
	var leaders atomic.Int64
	var wg sync.WaitGroup
	results := make([]*core.Profile, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, leader := g.do("key", fn)
			if leader {
				leaders.Add(1)
			}
			started <- struct{}{}
			<-c.done
			results[i] = c.p
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-started // every caller has joined the flight before release
	}
	close(release)
	wg.Wait()

	if got := leaders.Load(); got != 1 {
		t.Errorf("leaders = %d, want exactly 1", got)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want exactly 1", got)
	}
	for i, p := range results {
		if p != want {
			t.Fatalf("caller %d got %p, want the shared result %p", i, p, want)
		}
	}
}

// TestFlightKeyRetiresAfterCompletion — once a call completes, the key is
// free again and a new caller leads a fresh computation.
func TestFlightKeyRetiresAfterCompletion(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	g := newFlightGroup()
	run := func() *flightCall {
		c, leader := g.do("key", func() (*core.Profile, error) { return &core.Profile{}, nil })
		if !leader {
			t.Fatal("expected to lead an idle key")
		}
		<-c.done
		return c
	}
	if run().p == run().p {
		t.Error("two sequential flights shared one result; the key never retired")
	}
}

// TestFlightIndependentKeys — distinct keys never share a call.
func TestFlightIndependentKeys(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	g := newFlightGroup()
	release := make(chan struct{})
	blocked := func() (*core.Profile, error) { <-release; return nil, nil }
	ca, leadA := g.do("a", blocked)
	cb, leadB := g.do("b", blocked)
	if !leadA || !leadB {
		t.Error("both distinct keys must lead")
	}
	if ca == cb {
		t.Error("distinct keys shared a flightCall")
	}
	close(release)
	<-ca.done
	<-cb.done
}
