package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newTestServer builds a server with test-friendly defaults and registers
// its shutdown.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// do issues one request directly against the handler.
func do(t *testing.T, s *Server, method, target string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, body)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	return rr
}

// errBody renders the exact JSON error envelope the server writes.
func errBody(status int, msg string) string {
	data, _ := json.MarshalIndent(errorBody{Error: msg, Status: status}, "", "\t")
	return string(data) + "\n"
}

// TestHandlerErrorPaths pins every client-facing failure to its exact
// status code and JSON error body.
func TestHandlerErrorPaths(t *testing.T) {
	s := newTestServer(t, Options{MaxBatch: 2})
	cases := []struct {
		name   string
		method string
		target string
		body   string
		status int
		want   string // exact body
	}{
		{"profile missing workload", "GET", "/api/v1/profile", "",
			400, errBody(400, "missing workload parameter")},
		{"profile unknown workload", "GET", "/api/v1/profile?workload=XYZ", "",
			404, errBody(404, `unknown workload "XYZ"`)},
		{"profile unknown device", "GET", "/api/v1/profile?workload=pb-sgemm&device=voodoo3", "",
			400, errBody(400, `unknown device "voodoo3" (known: gtx1080, rtx3080)`)},
		{"profile bad format", "GET", "/api/v1/profile?workload=pb-sgemm&format=xml", "",
			400, errBody(400, `unknown format "xml" (json or text)`)},
		{"profile wrong method", "POST", "/api/v1/profile?workload=pb-sgemm", "",
			405, errBody(405, "method POST not allowed (use GET)")},
		{"roofline missing workload", "GET", "/api/v1/roofline", "",
			400, errBody(400, "missing workload parameter")},
		{"explain unknown workload", "GET", "/api/v1/explain?workload=nope", "",
			404, errBody(404, `unknown workload "nope"`)},
		{"compare missing workload", "GET", "/api/v1/compare", "",
			400, errBody(400, "missing workload parameter")},
		{"compare unknown workload in list", "GET", "/api/v1/compare?workload=pb-sgemm,ZZZ", "",
			404, errBody(404, `unknown workload "ZZZ"`)},
		{"workloads bad format", "GET", "/api/v1/workloads?format=yaml", "",
			400, errBody(400, `unknown format "yaml" (json or text)`)},
		{"healthz wrong method", "POST", "/healthz", "",
			405, errBody(405, "method POST not allowed (use GET)")},
		{"metrics wrong method", "DELETE", "/metrics", "",
			405, errBody(405, "method DELETE not allowed (use GET)")},
		{"batch wrong method", "GET", "/api/v1/batch", "",
			405, errBody(405, "method GET not allowed (use POST)")},
		{"batch empty", "POST", "/api/v1/batch", `{"queries":[]}`,
			400, errBody(400, "empty batch")},
		{"batch too large", "POST", "/api/v1/batch",
			`{"queries":[{"kind":"profile","workload":"pb-sgemm"},{"kind":"profile","workload":"pb-spmv"},{"kind":"profile","workload":"rd-nn"}]}`,
			400, errBody(400, "batch of 3 queries exceeds the limit of 2")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			rr := do(t, s, tc.method, tc.target, body)
			if rr.Code != tc.status {
				t.Fatalf("status = %d, want %d\n%s", rr.Code, tc.status, rr.Body.String())
			}
			if got := rr.Body.String(); got != tc.want {
				t.Errorf("body = %q, want %q", got, tc.want)
			}
			if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
		})
	}

	t.Run("batch malformed JSON", func(t *testing.T) {
		rr := do(t, s, "POST", "/api/v1/batch", strings.NewReader("{nope"))
		if rr.Code != 400 {
			t.Fatalf("status = %d, want 400", rr.Code)
		}
		if !strings.Contains(rr.Body.String(), "parsing body") {
			t.Errorf("body = %q, want a parsing error", rr.Body.String())
		}
	})
}

// TestDeadlineExceeded — a request whose deadline expires gets 504, the
// deadline counter moves, and the underlying study still completes and
// lands in the LRU for the next asker.
func TestDeadlineExceeded(t *testing.T) {
	s := newTestServer(t, Options{Timeout: time.Nanosecond})
	rr := do(t, s, "GET", "/api/v1/profile?workload=pb-sgemm", nil)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504\n%s", rr.Code, rr.Body.String())
	}
	want := errBody(504, "context deadline exceeded")
	if rr.Body.String() != want {
		t.Errorf("body = %q, want %q", rr.Body.String(), want)
	}
	if got := s.ctr.Get(telemetry.CtrServeDeadlineExceeded); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
	// The abandoned study keeps running detached; it must land in the LRU.
	deadline := time.Now().Add(30 * time.Second)
	key := profileKey("pb-sgemm", s.devFPs["rtx3080"])
	for {
		if _, ok := s.lru.get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned study never landed in the LRU")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueueFull — with MaxInFlight admission tokens all held, the next
// request is rejected with 429 and counted.
func TestQueueFull(t *testing.T) {
	s := newTestServer(t, Options{MaxInFlight: 1})
	s.queue <- struct{}{} // hold the only admission token
	defer func() { <-s.queue }()
	rr := do(t, s, "GET", "/api/v1/profile?workload=pb-sgemm", nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429\n%s", rr.Code, rr.Body.String())
	}
	want := errBody(429, "work queue full (1 requests in flight)")
	if rr.Body.String() != want {
		t.Errorf("body = %q, want %q", rr.Body.String(), want)
	}
	if got := s.ctr.Get(telemetry.CtrServeRejectedQueue); got != 1 {
		t.Errorf("queue-rejection counter = %d, want 1", got)
	}
}

// TestShutdownRejects — after Shutdown begins, API requests get 503.
func TestShutdownRejects(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rr := do(t, s, "GET", "/api/v1/profile?workload=pb-sgemm", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	want := errBody(503, "server is shutting down")
	if rr.Body.String() != want {
		t.Errorf("body = %q, want %q", rr.Body.String(), want)
	}
	if got := s.ctr.Get(telemetry.CtrServeRejectedShutdown); got != 1 {
		t.Errorf("shutdown-rejection counter = %d, want 1", got)
	}
}

// TestLRUMismatchRecovers — an LRU entry whose stored identity disagrees
// with its key is never served: the mismatch is counted and the profile
// recomputed correctly.
func TestLRUMismatchRecovers(t *testing.T) {
	s := newTestServer(t, Options{})
	// Poison the cache: file pb-spmv's identity under pb-sgemm's key.
	key := profileKey("pb-sgemm", s.devFPs["rtx3080"])
	s.lru.add(key, profileEntry{abbr: "pb-spmv", fingerprint: "bogus", profile: &core.Profile{}})
	rr := do(t, s, "GET", "/api/v1/profile?workload=pb-sgemm", nil)
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200\n%s", rr.Code, rr.Body.String())
	}
	var p profileJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Workload != "pb-sgemm" {
		t.Errorf("served workload %q, want pb-sgemm", p.Workload)
	}
	if got := s.ctr.Get(telemetry.CtrServeLRUMismatches); got != 1 {
		t.Errorf("mismatch counter = %d, want 1", got)
	}
}

// TestHealthz pins the liveness response shape.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	rr := do(t, s, "GET", "/healthz", nil)
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	var h struct {
		Status    string   `json:"status"`
		Workloads int      `json:"workloads"`
		Devices   []string `json:"devices"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workloads == 0 {
		t.Errorf("healthz = %+v", h)
	}
	if fmt.Sprint(h.Devices) != "[gtx1080 rtx3080]" {
		t.Errorf("devices = %v", h.Devices)
	}
}

// TestMetricsEndpoint — /metrics must expose the serve counters through
// the shared Prometheus snapshot path.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	if rr := do(t, s, "GET", "/api/v1/profile?workload=rd-nn", nil); rr.Code != 200 {
		t.Fatalf("profile: status = %d", rr.Code)
	}
	rr := do(t, s, "GET", "/metrics", nil)
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	for _, want := range []string{
		"serve_requests 1",
		"serve_lru_misses 1",
		"serve_singleflight_leaders 1",
		"serve_request_seconds",
		"study_workloads_characterized 1",
	} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, rr.Body.String())
		}
	}
}

// TestBatchMixedOutcomes — queries in one batch succeed and fail
// independently, in request order.
func TestBatchMixedOutcomes(t *testing.T) {
	s := newTestServer(t, Options{})
	body := `{"queries":[
		{"kind":"profile","workload":"pb-sgemm"},
		{"kind":"profile","workload":"XYZ"},
		{"kind":"roofline","workload":"pb-sgemm","device":"gtx1080"},
		{"kind":"frobnicate","workload":"pb-sgemm"}
	]}`
	rr := do(t, s, "POST", "/api/v1/batch", strings.NewReader(body))
	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200\n%s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Results []batchResult `json:"results"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	wantStatuses := []int{200, 404, 200, 400}
	if len(resp.Results) != len(wantStatuses) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(wantStatuses))
	}
	for i, r := range resp.Results {
		if r.Status != wantStatuses[i] {
			t.Errorf("result %d: status = %d, want %d (%s)", i, r.Status, wantStatuses[i], r.Error)
		}
	}
	if resp.Results[2].Device != "gtx1080" {
		t.Errorf("result 2 device = %q, want gtx1080", resp.Results[2].Device)
	}
}

// TestGoldenResponses pins the exact bytes of every endpoint's successful
// response. Regenerate with `go test ./internal/server -run Golden -update`.
func TestGoldenResponses(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		golden string
		target string
	}{
		{"profile_pb-sgemm.json", "/api/v1/profile?workload=pb-sgemm"},
		{"profile_pb-sgemm.txt", "/api/v1/profile?workload=pb-sgemm&format=text"},
		{"profile_pb-spmv_gtx1080.json", "/api/v1/profile?workload=pb-spmv&device=gtx1080"},
		{"roofline_pb-sgemm.json", "/api/v1/roofline?workload=pb-sgemm"},
		{"explain_rd-nn.json", "/api/v1/explain?workload=rd-nn"},
		{"explain_rd-nn.txt", "/api/v1/explain?workload=rd-nn&format=text"},
		{"compare_pb-sgemm.txt", "/api/v1/compare?workload=pb-sgemm&format=text"},
		{"compare_pb-sgemm.json", "/api/v1/compare?workload=pb-sgemm"},
		{"workloads.json", "/api/v1/workloads"},
		{"workloads.txt", "/api/v1/workloads?format=text"},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			rr := do(t, s, "GET", tc.target, nil)
			if rr.Code != 200 {
				t.Fatalf("status = %d\n%s", rr.Code, rr.Body.String())
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, rr.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(rr.Body.Bytes(), want) {
				t.Errorf("response differs from %s:\ngot:\n%s\nwant:\n%s", path, rr.Body.Bytes(), want)
			}
		})
	}
}
