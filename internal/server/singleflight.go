package server

import (
	"sync"

	"repro/internal/core"
)

// flightGroup deduplicates concurrent studies of the same profile key: the
// first request for a key becomes the leader and runs the work on its own
// goroutine; every request that arrives while the call is in flight joins
// it and shares the result. The work runs detached from any single
// request's context — a waiter whose deadline expires walks away with 504
// while the study completes and lands in the LRU for the next asker, so a
// storm of impatient clients cannot re-trigger the same simulation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall // guarded by mu
}

// flightCall is one in-flight (or completed) computation. p and err are
// not mutex-guarded: the leader writes them before closing done, and
// waiters read them only after <-done, so the channel is the happens-before
// edge.
type flightCall struct {
	done chan struct{} // closed when profile/err are valid
	p    *core.Profile
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do returns the in-flight call for key, creating it when absent. leader
// reports whether this caller created the call and must run it: exactly
// one caller per key at a time sees leader==true. The call is removed from
// the group once fn completes, so a later miss (after LRU eviction)
// computes afresh.
func (g *flightGroup) do(key string, fn func() (*core.Profile, error)) (c *flightCall, leader bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	//lint:ignore golife the leader is deliberately detached from its spawner: do returns immediately and every caller (including this one) joins via <-c.done in the handler, bounded by fn's own context
	go func() {
		c.p, c.err = fn()
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	return c, true
}
