package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
)

func entry(abbr string) profileEntry {
	return profileEntry{abbr: abbr, fingerprint: "fp", profile: &core.Profile{}}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := newShardedLRU(2, 1) // one shard so recency is global
	l.add("a", entry("a"))
	l.add("b", entry("b"))
	if _, ok := l.get("a"); !ok { // touch a: b becomes the eviction victim
		t.Fatal("a missing")
	}
	if evicted := l.add("c", entry("c")); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if _, ok := l.get("b"); ok {
		t.Error("b survived, but it was the least recently used")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := l.get(key); !ok {
			t.Errorf("%s missing after eviction of b", key)
		}
	}
}

func TestLRURefreshDoesNotEvict(t *testing.T) {
	l := newShardedLRU(2, 1)
	l.add("a", entry("a"))
	l.add("b", entry("b"))
	if evicted := l.add("a", entry("a2")); evicted != 0 {
		t.Fatalf("refresh evicted %d entries", evicted)
	}
	e, ok := l.get("a")
	if !ok || e.abbr != "a2" {
		t.Errorf("refresh did not replace the entry: %+v ok=%v", e, ok)
	}
	if l.len() != 2 {
		t.Errorf("len = %d, want 2", l.len())
	}
}

func TestLRUShardCapacity(t *testing.T) {
	// 8 entries over 4 shards: each shard holds at most 2, so inserting many
	// keys never grows past the total capacity.
	l := newShardedLRU(8, 4)
	for i := 0; i < 100; i++ {
		l.add(fmt.Sprintf("key-%d", i), entry("x"))
	}
	if l.len() > 8 {
		t.Errorf("len = %d, want <= 8", l.len())
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	l := newShardedLRU(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", (g*7+i)%40)
				if e, ok := l.get(key); ok && e.abbr != key {
					t.Errorf("key %s returned entry for %s", key, e.abbr)
				}
				l.add(key, profileEntry{abbr: key, fingerprint: "fp", profile: &core.Profile{}})
			}
		}(g)
	}
	wg.Wait()
}
