// HTTP boundary: query parsing, the endpoint handlers, and the JSON
// response shapes. Handlers render complete responses into memory before
// writing, so every reply — success or error — is a single well-formed
// JSON document (or a byte-identical copy of the CLI's text rendering),
// and golden tests can pin exact bytes.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// apiError is an HTTP-mappable failure: a status code plus a message that
// becomes the JSON error body.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func apiErrorf(status int, format string, args ...any) *apiError {
	return &apiError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope every failing request receives.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// query is one parsed and validated API query.
type query struct {
	workload workloads.Workload
	device   string // validated device name
	format   string // "json" or "text"
}

// parseQuery validates the common query parameters against the catalog and
// device table. It is the fuzzed surface of the HTTP boundary: for any
// parameter values it must either return a valid query or an apiError with
// a well-defined status (400 for malformed parameters, 404 for an unknown
// workload) — never panic.
func parseQuery(v url.Values, cat *workloads.Catalog, devices map[string]gpu.DeviceConfig, deviceNames []string, needWorkload bool) (query, *apiError) {
	q := query{format: "json", device: "rtx3080"}
	switch f := v.Get("format"); f {
	case "", "json":
	case "text":
		q.format = "text"
	default:
		return q, apiErrorf(http.StatusBadRequest, "unknown format %q (json or text)", f)
	}
	if d := v.Get("device"); d != "" {
		if _, ok := devices[d]; !ok {
			return q, apiErrorf(http.StatusBadRequest, "unknown device %q (known: %s)",
				d, strings.Join(deviceNames, ", "))
		}
		q.device = d
	}
	if _, ok := devices[q.device]; !ok {
		// A custom device table without rtx3080: the default is not servable.
		return q, apiErrorf(http.StatusBadRequest, "missing device parameter (known: %s)",
			strings.Join(deviceNames, ", "))
	}
	if abbr := v.Get("workload"); abbr != "" {
		w, err := cat.Lookup(abbr)
		if err != nil {
			return q, apiErrorf(http.StatusNotFound, "unknown workload %q", abbr)
		}
		q.workload = w
	} else if needWorkload {
		return q, apiErrorf(http.StatusBadRequest, "missing workload parameter")
	}
	return q, nil
}

// writeJSON writes v as the complete response body. A failed write means
// the client hung up mid-response; it cannot be retried, so it is counted
// under serve.write_errors instead.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		// Response shapes are plain data; failure here is a programming bug.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(append(data, '\n')); err != nil {
		s.ctr.Add(telemetry.CtrServeWriteErrors, 1)
	}
}

// writeAPIError writes the JSON error envelope.
func (s *Server) writeAPIError(w http.ResponseWriter, aerr *apiError) {
	s.ctr.Add("serve.status."+strconv.Itoa(aerr.Status), 1)
	if aerr.Status == http.StatusGatewayTimeout {
		s.ctr.Add(telemetry.CtrServeDeadlineExceeded, 1)
	}
	s.writeJSON(w, aerr.Status, errorBody{Error: aerr.Msg, Status: aerr.Status})
}

// writeBody writes a rendered success body with the given content type.
func (s *Server) writeBody(w http.ResponseWriter, contentType string, body []byte) {
	s.ctr.Add("serve.status.200", 1)
	w.Header().Set("Content-Type", contentType)
	if _, err := w.Write(body); err != nil {
		s.ctr.Add(telemetry.CtrServeWriteErrors, 1)
	}
}

// api wraps a study-backed handler with the production funnel: shutdown
// rejection (503), bounded admission (429), the per-request deadline, the
// request counter, and the latency histogram. The handler returns either a
// rendered body or an apiError; nothing is written until one of the two is
// decided.
func (s *Server) api(h func(*http.Request) (contentType string, body []byte, aerr *apiError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			s.ctr.Add(telemetry.CtrServeRejectedShutdown, 1)
			s.writeAPIError(w, apiErrorf(http.StatusServiceUnavailable, "server is shutting down"))
			return
		}
		defer s.exit()
		select {
		case s.queue <- struct{}{}:
			defer func() { <-s.queue }()
		default:
			s.ctr.Add(telemetry.CtrServeRejectedQueue, 1)
			s.writeAPIError(w, apiErrorf(http.StatusTooManyRequests,
				"work queue full (%d requests in flight)", s.opts.MaxInFlight))
			return
		}
		s.ctr.Add(telemetry.CtrServeRequests, 1)
		//lint:ignore nodeterminism request latency is telemetry about the server, not model output
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
		defer cancel()
		contentType, body, aerr := h(r.WithContext(ctx))
		//lint:ignore nodeterminism request latency is telemetry about the server, not model output
		s.latency.Observe(time.Since(start).Seconds())
		if aerr != nil {
			s.writeAPIError(w, aerr)
			return
		}
		s.writeBody(w, contentType, body)
	}
}

// requireMethod returns a 405 apiError unless the request uses method.
func requireMethod(r *http.Request, method string) *apiError {
	if r.Method != method {
		return apiErrorf(http.StatusMethodNotAllowed, "method %s not allowed (use %s)", r.Method, method)
	}
	return nil
}

// buildMux mounts every endpoint.
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/api/v1/profile", s.api(s.handleProfile))
	mux.HandleFunc("/api/v1/roofline", s.api(s.handleRoofline))
	mux.HandleFunc("/api/v1/compare", s.api(s.handleCompare))
	mux.HandleFunc("/api/v1/explain", s.api(s.handleExplain))
	mux.HandleFunc("/api/v1/batch", s.api(s.handleBatch))
	return mux
}

// handleHealthz answers liveness probes; it bypasses admission so health
// stays observable under full queues and during drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"workloads": len(s.cat.All()),
		"devices":   s.deviceNames(),
	})
}

// handleMetrics serves the Prometheus text exposition of the registry —
// the same snapshot path as the CLI's -metrics flag and /debug surfaces.
// It bypasses admission: metrics must stay scrapable under overload.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.ctr.Add(telemetry.CtrServeWriteErrors, 1)
	}
}

// workloadJSON is one catalog entry in the workloads listing.
type workloadJSON struct {
	Abbr   string `json:"abbr"`
	Suite  string `json:"suite"`
	Domain string `json:"domain"`
	Name   string `json:"name"`
}

// handleWorkloads lists the servable catalog.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	q, aerr := parseQuery(r.URL.Query(), s.cat, s.devices, s.deviceNames(), false)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	if q.format == "text" {
		var buf bytes.Buffer
		if err := core.WriteWorkloadsTable(&buf, s.cat.All()); err != nil {
			s.writeAPIError(w, apiErrorf(http.StatusInternalServerError, "%v", err))
			return
		}
		s.writeBody(w, "text/plain; charset=utf-8", buf.Bytes())
		return
	}
	out := make([]workloadJSON, 0, len(s.cat.All()))
	for _, wl := range s.cat.All() {
		out = append(out, workloadJSON{
			Abbr: wl.Abbr(), Suite: string(wl.Suite()),
			Domain: string(wl.Domain()), Name: wl.Name(),
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// kernelJSON is one kernel's characterization in a profile response.
type kernelJSON struct {
	Name        string             `json:"name"`
	Invocations int                `json:"invocations"`
	TimeShare   float64            `json:"time_share"`
	II          float64            `json:"ii"`
	GIPS        float64            `json:"gips"`
	WarpInsts   uint64             `json:"warp_insts"`
	Metrics     map[string]float64 `json:"metrics"`
}

// profileJSON is the /api/v1/profile response shape.
type profileJSON struct {
	Workload       string       `json:"workload"`
	Device         string       `json:"device"`
	TotalTimeMs    float64      `json:"total_time_ms"`
	TotalWarpInsts uint64       `json:"total_warp_insts"`
	AggII          float64      `json:"agg_ii"`
	AggGIPS        float64      `json:"agg_gips"`
	Kernels        []kernelJSON `json:"kernels"`
}

func profileResponse(p *core.Profile, device string) profileJSON {
	out := profileJSON{
		Workload:       p.Abbr(),
		Device:         device,
		TotalTimeMs:    p.TotalTime.Millis(),
		TotalWarpInsts: uint64(p.TotalWarpInsts),
		AggII:          p.AggII,
		AggGIPS:        p.AggGIPS,
		Kernels:        make([]kernelJSON, 0, len(p.Kernels)),
	}
	for _, k := range p.Kernels {
		metrics := make(map[string]float64, profiler.NumMetrics)
		for _, m := range profiler.Metrics() {
			metrics[m.String()] = k.Metrics.Get(m)
		}
		out.Kernels = append(out.Kernels, kernelJSON{
			Name:        k.Name,
			Invocations: k.Invocations,
			TimeShare:   k.TimeShare.Clamp01(),
			II:          k.II(),
			GIPS:        k.GIPS(),
			WarpInsts:   uint64(k.WarpInstructions()),
			Metrics:     metrics,
		})
	}
	return out
}

// renderProfile renders one (workload, device) profile in the requested
// format — JSON, or the byte-identical CLI profile table for text.
func (s *Server) renderProfile(r *http.Request, q query) (string, []byte, *apiError) {
	p, err := s.profileFor(r.Context(), q.workload, q.device)
	if err != nil {
		return "", nil, apiErrorf(errStatus(err), "%v", err)
	}
	if q.format == "text" {
		var buf bytes.Buffer
		if err := core.WriteProfileTable(&buf, p); err != nil {
			return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
		}
		return "text/plain; charset=utf-8", buf.Bytes(), nil
	}
	return marshalBody(profileResponse(p, q.device))
}

func (s *Server) handleProfile(r *http.Request) (string, []byte, *apiError) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		return "", nil, aerr
	}
	q, aerr := parseQuery(r.URL.Query(), s.cat, s.devices, s.deviceNames(), true)
	if aerr != nil {
		return "", nil, aerr
	}
	return s.renderProfile(r, q)
}

// pointJSON is one roofline point with its paper classifications.
type pointJSON struct {
	Label     string  `json:"label"`
	II        float64 `json:"ii"`
	GIPS      float64 `json:"gips"`
	TimeShare float64 `json:"time_share"`
	Side      string  `json:"side"`
	Bound     string  `json:"bound"`
}

// rooflineJSON is the /api/v1/roofline response shape.
type rooflineJSON struct {
	Workload  string      `json:"workload"`
	Device    string      `json:"device"`
	PeakGIPS  float64     `json:"peak_gips"`
	PeakGTXN  float64     `json:"peak_gtxn"`
	ElbowII   float64     `json:"elbow_ii"`
	Aggregate pointJSON   `json:"aggregate"`
	Kernels   []pointJSON `json:"kernels"`
}

func rooflinePoint(m roofline.Model, pt roofline.Point) pointJSON {
	return pointJSON{
		Label:     pt.Label,
		II:        pt.II,
		GIPS:      pt.GIPS,
		TimeShare: pt.TimeShare.Clamp01(),
		Side:      m.Classify(pt.II).String(),
		Bound:     m.BoundOf(pt.GIPS).String(),
	}
}

func (s *Server) renderRoofline(r *http.Request, q query) (string, []byte, *apiError) {
	p, err := s.profileFor(r.Context(), q.workload, q.device)
	if err != nil {
		return "", nil, apiErrorf(errStatus(err), "%v", err)
	}
	m := roofline.ForDevice(s.devices[q.device])
	out := rooflineJSON{
		Workload:  p.Abbr(),
		Device:    q.device,
		PeakGIPS:  m.PeakGIPS,
		PeakGTXN:  m.PeakGTXN,
		ElbowII:   m.ElbowII(),
		Aggregate: rooflinePoint(m, p.AggregatePoint()),
	}
	for _, pt := range p.KernelPoints() {
		out.Kernels = append(out.Kernels, rooflinePoint(m, pt))
	}
	return marshalBody(out)
}

func (s *Server) handleRoofline(r *http.Request) (string, []byte, *apiError) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		return "", nil, aerr
	}
	q, aerr := parseQuery(r.URL.Query(), s.cat, s.devices, s.deviceNames(), true)
	if aerr != nil {
		return "", nil, aerr
	}
	return s.renderRoofline(r, q)
}

// comparePointJSON is one device's aggregate placement in a comparison.
type comparePointJSON struct {
	II   float64 `json:"ii"`
	GIPS float64 `json:"gips"`
}

// compareJSON is one workload's cross-device comparison.
type compareJSON struct {
	Workload   string           `json:"workload"`
	A          comparePointJSON `json:"rtx3080"`
	B          comparePointJSON `json:"gtx1080"`
	Speedup    float64          `json:"speedup"`
	SideStable bool             `json:"side_stable"`
}

// compareWorkloads resolves the workload list of a compare query: the
// ?workload= parameter accepts one abbreviation or a comma-separated list.
func (s *Server) compareWorkloads(v url.Values) ([]workloads.Workload, *apiError) {
	raw := v.Get("workload")
	if raw == "" {
		return nil, apiErrorf(http.StatusBadRequest, "missing workload parameter")
	}
	var ws []workloads.Workload
	for _, abbr := range strings.Split(raw, ",") {
		w, err := s.cat.Lookup(strings.TrimSpace(abbr))
		if err != nil {
			return nil, apiErrorf(http.StatusNotFound, "unknown workload %q", strings.TrimSpace(abbr))
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// handleCompare characterizes the given workloads on the rtx3080 and
// gtx1080 models — the CLI compare command as a query.
func (s *Server) handleCompare(r *http.Request) (string, []byte, *apiError) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		return "", nil, aerr
	}
	// The workload parameter is a comma list here; validate it separately
	// (compareWorkloads) and give parseQuery only device and format.
	common := r.URL.Query()
	common.Del("workload")
	q, aerr := parseQuery(common, s.cat, s.devices, s.deviceNames(), false)
	if aerr != nil {
		return "", nil, aerr
	}
	for _, name := range []string{"rtx3080", "gtx1080"} {
		if _, ok := s.devices[name]; !ok {
			return "", nil, apiErrorf(http.StatusBadRequest, "compare requires the %s device", name)
		}
	}
	ws, aerr := s.compareWorkloads(r.URL.Query())
	if aerr != nil {
		return "", nil, aerr
	}
	a, err := s.studyFor(r.Context(), ws, "rtx3080")
	if err != nil {
		return "", nil, apiErrorf(errStatus(err), "%v", err)
	}
	b, err := s.studyFor(r.Context(), ws, "gtx1080")
	if err != nil {
		return "", nil, apiErrorf(errStatus(err), "%v", err)
	}
	cmps, err := core.CompareDevices(a, b)
	if err != nil {
		return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
	}
	if q.format == "text" {
		var buf bytes.Buffer
		if err := core.WriteCompareTable(&buf, cmps); err != nil {
			return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
		}
		return "text/plain; charset=utf-8", buf.Bytes(), nil
	}
	out := make([]compareJSON, 0, len(cmps))
	for _, c := range cmps {
		out = append(out, compareJSON{
			Workload:   c.Abbr,
			A:          comparePointJSON{II: c.A.II, GIPS: c.A.GIPS},
			B:          comparePointJSON{II: c.B.II, GIPS: c.B.GIPS},
			Speedup:    c.Speedup,
			SideStable: c.SideStable,
		})
	}
	return marshalBody(out)
}

// renderExplain renders one workload's top-down attribution tree. The
// sum-to-1 identity is verified before rendering, exactly like the CLI.
func (s *Server) renderExplain(r *http.Request, q query) (string, []byte, *apiError) {
	p, err := s.profileFor(r.Context(), q.workload, q.device)
	if err != nil {
		return "", nil, apiErrorf(errStatus(err), "%v", err)
	}
	root := core.AttributeProfile(p, s.devices[q.device])
	if violations := telemetry.CheckAttribution(root, 0); len(violations) > 0 {
		return "", nil, apiErrorf(http.StatusInternalServerError,
			"attribution identity violated: %v", violations[0])
	}
	var buf bytes.Buffer
	if q.format == "text" {
		if err := telemetry.WriteAttributionText(&buf, root, 0); err != nil {
			return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
		}
		return "text/plain; charset=utf-8", buf.Bytes(), nil
	}
	if err := telemetry.WriteAttributionJSON(&buf, root); err != nil {
		return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
	}
	return "application/json", buf.Bytes(), nil
}

func (s *Server) handleExplain(r *http.Request) (string, []byte, *apiError) {
	if aerr := requireMethod(r, http.MethodGet); aerr != nil {
		return "", nil, aerr
	}
	q, aerr := parseQuery(r.URL.Query(), s.cat, s.devices, s.deviceNames(), true)
	if aerr != nil {
		return "", nil, aerr
	}
	return s.renderExplain(r, q)
}

// batchQuery is one query inside a POST /api/v1/batch request.
type batchQuery struct {
	Kind     string `json:"kind"` // profile | roofline | explain
	Workload string `json:"workload"`
	Device   string `json:"device,omitempty"`
	Format   string `json:"format,omitempty"`
}

// batchRequest is the /api/v1/batch request body.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchResult is one query's outcome. Body carries the same bytes the
// single-query endpoint would have returned: raw JSON for format=json, a
// JSON-encoded string for format=text.
type batchResult struct {
	Kind     string          `json:"kind"`
	Workload string          `json:"workload"`
	Device   string          `json:"device"`
	Status   int             `json:"status"`
	Body     json.RawMessage `json:"body,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// handleBatch answers many queries in one request, fanned out over the
// engine's worker pool. Results come back in request order; each query
// fails or succeeds independently.
func (s *Server) handleBatch(r *http.Request) (string, []byte, *apiError) {
	if aerr := requireMethod(r, http.MethodPost); aerr != nil {
		return "", nil, aerr
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return "", nil, apiErrorf(http.StatusBadRequest, "reading body: %v", err)
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", nil, apiErrorf(http.StatusBadRequest, "parsing body: %v", err)
	}
	if len(req.Queries) == 0 {
		return "", nil, apiErrorf(http.StatusBadRequest, "empty batch")
	}
	if len(req.Queries) > s.opts.MaxBatch {
		return "", nil, apiErrorf(http.StatusBadRequest,
			"batch of %d queries exceeds the limit of %d", len(req.Queries), s.opts.MaxBatch)
	}
	results := make([]batchResult, len(req.Queries))
	var wg sync.WaitGroup
	for i, bq := range req.Queries {
		wg.Add(1)
		go func(i int, bq batchQuery) {
			defer wg.Done()
			results[i] = s.batchOne(r, bq)
		}(i, bq)
	}
	wg.Wait()
	return marshalBody(map[string]any{"results": results})
}

// batchOne executes one batch query through the same parse/render path as
// its single-query endpoint.
func (s *Server) batchOne(r *http.Request, bq batchQuery) batchResult {
	v := url.Values{}
	v.Set("workload", bq.Workload)
	if bq.Device != "" {
		v.Set("device", bq.Device)
	}
	if bq.Format != "" {
		v.Set("format", bq.Format)
	}
	res := batchResult{Kind: bq.Kind, Workload: bq.Workload, Device: bq.Device}
	if res.Device == "" {
		res.Device = "rtx3080"
	}
	q, aerr := parseQuery(v, s.cat, s.devices, s.deviceNames(), true)
	if aerr == nil {
		var body []byte
		var contentType string
		switch bq.Kind {
		case "profile":
			contentType, body, aerr = s.renderProfile(r, q)
		case "roofline":
			contentType, body, aerr = s.renderRoofline(r, q)
		case "explain":
			contentType, body, aerr = s.renderExplain(r, q)
		default:
			aerr = apiErrorf(http.StatusBadRequest,
				"unknown kind %q (profile, roofline, explain)", bq.Kind)
		}
		if aerr == nil {
			res.Status = http.StatusOK
			if strings.HasPrefix(contentType, "application/json") {
				res.Body = json.RawMessage(body)
			} else if enc, err := json.Marshal(string(body)); err == nil {
				res.Body = enc
			}
			return res
		}
	}
	res.Status = aerr.Status
	res.Error = aerr.Msg
	return res
}

// marshalBody renders a JSON response body.
func marshalBody(v any) (string, []byte, *apiError) {
	data, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		return "", nil, apiErrorf(http.StatusInternalServerError, "%v", err)
	}
	return "application/json", append(data, '\n'), nil
}
