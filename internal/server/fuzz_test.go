package server

import (
	"net/http"
	"net/url"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
)

// FuzzParseQuery — the HTTP boundary's parameter validation must, for any
// workload/device/format values, either produce a servable query or a
// well-formed 400/404; never panic, never pass an unknown device or
// workload through.
func FuzzParseQuery(f *testing.F) {
	cat, err := core.DefaultCatalog()
	if err != nil {
		f.Fatal(err)
	}
	devices := map[string]gpu.DeviceConfig{
		"rtx3080": gpu.RTX3080(),
		"gtx1080": gpu.GTX1080(),
	}
	names := []string{"gtx1080", "rtx3080"}

	f.Add("pb-sgemm", "rtx3080", "json")
	f.Add("pb-sgemm", "gtx1080", "text")
	f.Add("", "", "")
	f.Add("XYZ", "voodoo3", "xml")
	f.Add("pb-sgemm,GMS", "rtx3080 ", "JSON")
	f.Add("../../etc/passwd", "rtx3080\x00", "te­xt")

	f.Fuzz(func(t *testing.T, workload, device, format string) {
		v := url.Values{}
		if workload != "" {
			v.Set("workload", workload)
		}
		if device != "" {
			v.Set("device", device)
		}
		if format != "" {
			v.Set("format", format)
		}
		q, aerr := parseQuery(v, cat, devices, names, true)
		if aerr != nil {
			switch aerr.Status {
			case http.StatusBadRequest, http.StatusNotFound:
			default:
				t.Fatalf("parseQuery(%q, %q, %q): status %d, want 400 or 404",
					workload, device, format, aerr.Status)
			}
			if aerr.Msg == "" {
				t.Fatal("error with empty message")
			}
			return
		}
		if _, ok := devices[q.device]; !ok {
			t.Fatalf("accepted unknown device %q", q.device)
		}
		if q.format != "json" && q.format != "text" {
			t.Fatalf("accepted unknown format %q", q.format)
		}
		if q.workload == nil {
			t.Fatal("needWorkload accepted a query without a workload")
		}
		if w, err := cat.Lookup(q.workload.Abbr()); err != nil || w != q.workload {
			t.Fatalf("accepted workload %q that the catalog does not serve", q.workload.Abbr())
		}
	})
}
