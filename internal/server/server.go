// Package server implements `cactus serve`: the paper's top-down
// characterization methodology as a long-running HTTP/JSON service.
// Clients query per-kernel profiles, roofline placements, cross-device
// comparisons, and bottleneck-attribution trees for any workload × device
// combination; the server answers from a sharded in-memory LRU in front of
// the on-disk profile cache, collapses concurrent identical studies with
// singleflight, and runs cold studies on one shared core.Engine whose
// global worker pool bounds simulation concurrency across all requests.
//
// Degradation is explicit: a bounded admission queue rejects overload with
// 429, per-request deadlines return 504 (the underlying study keeps
// running and lands in the LRU for the next asker), and shutdown drains
// in-flight requests while rejecting new ones with 503. Every request
// flows into the telemetry registry — request counters, LRU and
// singleflight funnel counters, and a latency histogram — served back out
// at /metrics through the same snapshot path the CLI uses.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Options configures a Server. The zero value serves the default catalog
// on the stock devices with per-CPU workers and no on-disk cache.
type Options struct {
	// Devices maps device names accepted in the ?device= parameter to
	// their configurations. Nil selects the stock rtx3080 + gtx1080 pair.
	Devices map[string]gpu.DeviceConfig
	// Catalog is the servable workload set. Nil selects core.DefaultCatalog.
	Catalog *workloads.Catalog
	// Workers caps concurrent characterizations across all requests
	// (core.EngineOptions.Workers). Zero selects runtime.NumCPU().
	Workers int
	// Cache, when non-nil, is the on-disk profile cache behind the LRU.
	Cache *core.ProfileCache
	// LRUEntries is the in-memory profile cache capacity (default 512
	// entries, spread over LRUShards shards).
	LRUEntries int
	// LRUShards is the LRU shard count (default 16).
	LRUShards int
	// MaxInFlight bounds the admitted work queue: requests beyond this
	// many concurrently in flight are rejected with 429 (default 256).
	MaxInFlight int
	// Timeout is the per-request deadline; a request that exceeds it gets
	// 504 while its study completes in the background (default 60s).
	Timeout time.Duration
	// MaxBatch caps the query count of one POST /api/v1/batch request
	// (default 256).
	MaxBatch int
	// Registry receives the server's counters and histograms. Nil builds a
	// fresh registry; pass one to share a snapshot path with the CLI's
	// -metrics / -pprof surfaces.
	Registry *telemetry.Registry
}

// Server is the characterization service. Construct with New, mount
// Handler on any http.Server, and Shutdown to drain. Safe for concurrent
// use by its nature.
type Server struct {
	opts    Options
	cat     *workloads.Catalog
	devices map[string]gpu.DeviceConfig
	devFPs  map[string]string // device name -> core.Fingerprint
	engine  *core.Engine
	reg     *telemetry.Registry
	ctr     *telemetry.Counters
	latency *telemetry.Histogram
	lru     *shardedLRU
	flight  *flightGroup
	queue   chan struct{} // admission tokens; full queue = 429
	mux     *http.ServeMux

	mu       sync.Mutex
	closed   bool           // guarded by mu
	inflight sync.WaitGroup // Add under mu in enter(); Done/Wait are WaitGroup-synchronized
}

// New builds a ready server. The returned server owns a core.Engine;
// callers must Shutdown it when done.
func New(opts Options) (*Server, error) {
	if opts.Devices == nil {
		opts.Devices = map[string]gpu.DeviceConfig{
			"rtx3080": gpu.RTX3080(),
			"gtx1080": gpu.GTX1080(),
		}
	}
	if opts.Catalog == nil {
		cat, err := core.DefaultCatalog()
		if err != nil {
			return nil, err
		}
		opts.Catalog = cat
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.LRUEntries <= 0 {
		opts.LRUEntries = 512
	}
	if opts.LRUShards <= 0 {
		opts.LRUShards = 16
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 256
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 60 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	devFPs := make(map[string]string, len(opts.Devices))
	for name, cfg := range opts.Devices {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("server: device %q: %w", name, err)
		}
		devFPs[name] = core.Fingerprint(cfg)
	}
	s := &Server{
		opts:    opts,
		cat:     opts.Catalog,
		devices: opts.Devices,
		devFPs:  devFPs,
		reg:     opts.Registry,
		ctr:     opts.Registry.Counters(),
		latency: opts.Registry.Histogram(telemetry.HistServeRequestSeconds),
		lru:     newShardedLRU(opts.LRUEntries, opts.LRUShards),
		flight:  newFlightGroup(),
		queue:   make(chan struct{}, opts.MaxInFlight),
	}
	s.engine = core.NewEngine(core.EngineOptions{
		Workers:  opts.Workers,
		Cache:    opts.Cache,
		Counters: s.ctr,
		Metrics:  s.reg,
	})
	s.mux = s.buildMux()
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry (the /metrics source).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// deviceNames returns the accepted ?device= values, sorted.
func (s *Server) deviceNames() []string {
	names := make([]string, 0, len(s.devices))
	for name := range s.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// enter admits one request unless shutdown has begun.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) exit() { s.inflight.Done() }

// Shutdown stops admitting requests (new ones get 503), waits for
// in-flight requests to drain, then shuts the engine down. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return s.engine.Shutdown(ctx)
}

// profileKey is the LRU and singleflight key for one (workload, device)
// pair: the abbreviation joined with the full device-configuration
// fingerprint, so two devices — or two revisions of one device — can
// never alias.
func profileKey(abbr, fingerprint string) string { return abbr + "@" + fingerprint }

// profileFor resolves one workload's profile on one device through the
// read path the whole API shares: sharded LRU, then singleflight, then the
// engine (which itself consults the on-disk cache before simulating). The
// context only gates how long this caller waits — a deadline that expires
// mid-study abandons the wait, not the study.
func (s *Server) profileFor(ctx context.Context, w workloads.Workload, devName string) (*core.Profile, error) {
	abbr := w.Abbr()
	fp := s.devFPs[devName]
	key := profileKey(abbr, fp)
	if e, ok := s.lru.get(key); ok {
		if e.abbr != abbr || e.fingerprint != fp {
			// Never serve a profile whose identity disagrees with the key
			// that found it: count the corruption and recompute.
			s.ctr.Add(telemetry.CtrServeLRUMismatches, 1)
		} else {
			s.ctr.Add(telemetry.CtrServeLRUHits, 1)
			return e.profile, nil
		}
	}
	s.ctr.Add(telemetry.CtrServeLRUMisses, 1)
	cfg := s.devices[devName]
	c, leader := s.flight.do(key, func() (*core.Profile, error) {
		// Double-check the LRU: a caller that missed it just before the
		// previous flight for this key completed becomes a redundant leader;
		// without this it would re-run the whole study.
		if e, ok := s.lru.get(key); ok && e.abbr == abbr && e.fingerprint == fp {
			return e.profile, nil
		}
		// Detached from the request context: the study belongs to every
		// current and future asker of this key, not to the first one.
		//lint:ignore ctxflow the singleflight leader's study outlives its requester: later askers and the LRU inherit it, so a 504'd first caller must not cancel it
		p, _, err := s.engine.Characterize(context.Background(), cfg, w)
		if err != nil {
			return nil, err
		}
		evicted := s.lru.add(key, profileEntry{abbr: abbr, fingerprint: fp, profile: p})
		s.ctr.Add(telemetry.CtrServeLRUEvictions, int64(evicted))
		return p, nil
	})
	if leader {
		s.ctr.Add(telemetry.CtrServeFlightLeaders, 1)
	} else {
		s.ctr.Add(telemetry.CtrServeFlightShared, 1)
	}
	select {
	case <-c.done:
		return c.p, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// studyFor assembles single-profile studies for the comparison path.
func (s *Server) studyFor(ctx context.Context, ws []workloads.Workload, devName string) (*core.Study, error) {
	st := &core.Study{Device: s.devices[devName]}
	for _, w := range ws {
		p, err := s.profileFor(ctx, w, devName)
		if err != nil {
			return nil, err
		}
		st.Add(p)
	}
	return st, nil
}

// errStatus maps an internal error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto convention.
		return 499
	case errors.Is(err, core.ErrEngineClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
