package server

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// loadRequest is one deterministic entry of the load mix.
type loadRequest struct {
	method, target, body string
	// resolutions is how many (workload, device) profile lookups the
	// request performs — the unit the LRU/singleflight funnel counts.
	resolutions int
	admitted    bool // true when the request flows through the api() funnel
}

// loadMix builds the deterministic mixed-query workload: every endpoint
// type, every (workload, device) combination, both formats.
func loadMix(wls, devs []string) []loadRequest {
	var mix []loadRequest
	for _, w := range wls {
		for _, d := range devs {
			mix = append(mix,
				loadRequest{"GET", fmt.Sprintf("/api/v1/profile?workload=%s&device=%s", w, d), "", 1, true},
				loadRequest{"GET", fmt.Sprintf("/api/v1/profile?workload=%s&device=%s&format=text", w, d), "", 1, true},
				loadRequest{"GET", fmt.Sprintf("/api/v1/roofline?workload=%s&device=%s", w, d), "", 1, true},
				loadRequest{"GET", fmt.Sprintf("/api/v1/explain?workload=%s&device=%s", w, d), "", 1, true},
			)
		}
		mix = append(mix, loadRequest{"GET", "/api/v1/compare?workload=" + w + "&format=text", "", 2, true})
	}
	mix = append(mix,
		loadRequest{"GET", "/api/v1/workloads", "", 0, false},
		loadRequest{"POST", "/api/v1/batch",
			`{"queries":[{"kind":"profile","workload":"` + wls[0] + `"},{"kind":"roofline","workload":"` + wls[1] + `","device":"` + devs[1] + `"}]}`,
			2, true},
	)
	return mix
}

// TestServeLoadMixed is the server's acceptance test: at least 1000
// concurrent mixed requests against one server, run under -race in CI.
// Every response must be byte-identical to the same query answered by a
// fresh single-worker server (cold serial study), the singleflight/LRU
// funnel must account for every profile resolution with zero identity
// mismatches and each combination characterized exactly once, and p99
// latency must stay within bounds.
func TestServeLoadMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("fires >1000 concurrent requests")
	}
	wls := []string{"pb-sgemm", "pb-spmv", "rd-nn"}
	devs := []string{"rtx3080", "gtx1080"}
	mix := loadMix(wls, devs)

	// Reference pass: each unique request against its own fresh serial
	// server, so references are cold, deterministic, and uninfluenced by
	// the server under test.
	refs := make(map[string][]byte, len(mix))
	for _, rq := range mix {
		ref, err := New(Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rr := do(t, ref, rq.method, rq.target, strings.NewReader(rq.body))
		if rr.Code != 200 {
			t.Fatalf("reference %s %s: status %d\n%s", rq.method, rq.target, rr.Code, rr.Body.String())
		}
		refs[rq.method+" "+rq.target] = rr.Body.Bytes()
		if err := ref.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	const total = 1200
	s := newTestServer(t, Options{
		Workers:     8,
		MaxInFlight: total + 1, // overload rejection is tested separately
		Timeout:     5 * time.Minute,
		LRUEntries:  64,
	})

	var (
		wg         sync.WaitGroup
		latencies  = make([]time.Duration, total)
		badStatus  atomic.Int64
		badBytes   atomic.Int64
		firstDiff  sync.Once
		admitted   int64
		wantLookup int64
	)
	for i := 0; i < total; i++ {
		rq := mix[i%len(mix)]
		wantLookup += int64(rq.resolutions)
		if rq.admitted {
			admitted++
		}
		wg.Add(1)
		go func(i int, rq loadRequest) {
			defer wg.Done()
			start := time.Now()
			rr := do(t, s, rq.method, rq.target, strings.NewReader(rq.body))
			latencies[i] = time.Since(start)
			if rr.Code != 200 {
				badStatus.Add(1)
				firstDiff.Do(func() {
					t.Errorf("%s %s: status %d\n%s", rq.method, rq.target, rr.Code, rr.Body.String())
				})
				return
			}
			if !bytes.Equal(rr.Body.Bytes(), refs[rq.method+" "+rq.target]) {
				badBytes.Add(1)
				firstDiff.Do(func() {
					t.Errorf("%s %s: response differs from cold serial reference\ngot:\n%s\nwant:\n%s",
						rq.method, rq.target, rr.Body.Bytes(), refs[rq.method+" "+rq.target])
				})
			}
		}(i, rq)
	}
	wg.Wait()

	if n := badStatus.Load(); n != 0 {
		t.Errorf("%d/%d requests returned a non-200 status", n, total)
	}
	if n := badBytes.Load(); n != 0 {
		t.Errorf("%d/%d responses were not byte-identical to their cold serial reference", n, total)
	}

	// Latency: p99 over all requests, including the cold studies.
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50, p99 := sorted[total/2], sorted[total*99/100]
	t.Logf("latency: p50 %v, p99 %v, max %v", p50, p99, sorted[total-1])
	if p99 > 5*time.Second {
		t.Errorf("p99 latency %v exceeds 5s", p99)
	}

	// The funnel must balance exactly. Each (workload, device) combination
	// is characterized exactly once no matter how many requests raced for
	// it; every lookup is either an LRU hit or a counted miss that joined
	// exactly one flight; no entry was ever served under the wrong identity.
	combos := int64(len(wls) * len(devs))
	get := s.ctr.Get
	if got := get(telemetry.CtrWorkloads); got != combos {
		t.Errorf("workloads characterized = %d, want exactly %d (singleflight must collapse duplicates)", got, combos)
	}
	if got := get(telemetry.CtrServeLRUMismatches); got != 0 {
		t.Errorf("LRU identity mismatches = %d, want 0", got)
	}
	if got := get(telemetry.CtrServeLRUEvictions); got != 0 {
		t.Errorf("LRU evictions = %d, want 0 (capacity exceeds the working set)", got)
	}
	hits, misses := get(telemetry.CtrServeLRUHits), get(telemetry.CtrServeLRUMisses)
	if hits+misses != wantLookup {
		t.Errorf("LRU hits (%d) + misses (%d) = %d, want %d lookups", hits, misses, hits+misses, wantLookup)
	}
	leaders, shared := get(telemetry.CtrServeFlightLeaders), get(telemetry.CtrServeFlightShared)
	if leaders+shared != misses {
		t.Errorf("flight leaders (%d) + shared (%d) = %d, want %d (every LRU miss joins exactly one flight)",
			leaders, shared, leaders+shared, misses)
	}
	if leaders < combos {
		t.Errorf("flight leaders = %d, want >= %d (one per combination)", leaders, combos)
	}
	if got := get(telemetry.CtrServeRequests); got != admitted {
		t.Errorf("serve.requests = %d, want %d", got, admitted)
	}
	for _, ctr := range []string{
		telemetry.CtrServeRejectedQueue,
		telemetry.CtrServeRejectedShutdown,
		telemetry.CtrServeDeadlineExceeded,
	} {
		if got := get(ctr); got != 0 {
			t.Errorf("%s = %d, want 0", ctr, got)
		}
	}
	if got := s.lru.len(); int64(got) != combos {
		t.Errorf("LRU holds %d entries, want %d", got, combos)
	}
}
