package server

import (
	"container/list"
	"hash/fnv"

	"repro/internal/core"
	"sync"
)

// profileEntry is one cached profile together with the identity it was
// computed for. The identity is stored redundantly with the key on purpose:
// Get re-checks it, so a bookkeeping bug that files an entry under the
// wrong key surfaces as a counted mismatch instead of silently serving one
// workload's profile as another's. The load test asserts the mismatch
// count stays zero.
type profileEntry struct {
	abbr        string // workload abbreviation the profile belongs to
	fingerprint string // core.Fingerprint of the device configuration
	profile     *core.Profile
}

// shardedLRU is a fixed-capacity in-memory profile cache sharded by key
// hash, so concurrent requests contend on 1/nth of the lock space. Each
// shard is an independent LRU (map + intrusive recency list). Entries are
// immutable once inserted; readers share the stored *core.Profile.
type shardedLRU struct {
	shards []*lruShard
}

type lruShard struct {
	mu       sync.Mutex
	capacity int                      // immutable after construction
	entries  map[string]*list.Element // guarded by mu; key -> element holding *lruItem
	recency  *list.List               // guarded by mu; front = most recently used
}

type lruItem struct {
	key   string
	entry profileEntry
}

// newShardedLRU builds an LRU with the given total entry capacity spread
// over nShards shards (each shard gets at least one slot).
func newShardedLRU(capacity, nShards int) *shardedLRU {
	if nShards < 1 {
		nShards = 1
	}
	per := capacity / nShards
	if per < 1 {
		per = 1
	}
	l := &shardedLRU{shards: make([]*lruShard, nShards)}
	for i := range l.shards {
		l.shards[i] = &lruShard{
			capacity: per,
			entries:  make(map[string]*list.Element),
			recency:  list.New(),
		}
	}
	return l
}

func (l *shardedLRU) shard(key string) *lruShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // fnv.Write never fails
	return l.shards[h.Sum32()%uint32(len(l.shards))]
}

// get returns the entry for key, marking it most recently used.
func (l *shardedLRU) get(key string) (profileEntry, bool) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return profileEntry{}, false
	}
	s.recency.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// add inserts (or refreshes) key's entry, evicting the least recently used
// entry of its shard when full. It reports how many entries were evicted
// (0 or 1).
func (l *shardedLRU) add(key string, e profileEntry) int {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*lruItem).entry = e
		s.recency.MoveToFront(el)
		return 0
	}
	s.entries[key] = s.recency.PushFront(&lruItem{key: key, entry: e})
	if s.recency.Len() <= s.capacity {
		return 0
	}
	oldest := s.recency.Back()
	s.recency.Remove(oldest)
	delete(s.entries, oldest.Value.(*lruItem).key)
	return 1
}

// len returns the total entry count across shards.
func (l *shardedLRU) len() int {
	n := 0
	for _, s := range l.shards {
		s.mu.Lock()
		n += s.recency.Len()
		s.mu.Unlock()
	}
	return n
}
