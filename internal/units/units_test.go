package units

import (
	"math"
	"testing"
)

func TestSecondsConversions(t *testing.T) {
	s := Seconds(2.5e-3)
	if got := s.Nanos(); got != 2.5e6 {
		t.Errorf("Nanos() = %v, want 2.5e6", got)
	}
	if got := s.Millis(); got != 2.5 {
		t.Errorf("Millis() = %v, want 2.5", got)
	}
	if got := s.Float(); got != 2.5e-3 {
		t.Errorf("Float() = %v, want 2.5e-3", got)
	}
}

func TestCyclesAtRate(t *testing.T) {
	c := Cycles(1900)
	if got := c.AtRate(1.9e9); got != Seconds(1e-6) {
		t.Errorf("AtRate(1.9e9) = %v, want 1e-6", got)
	}
	if got := c.AtRate(0); got != 0 {
		t.Errorf("AtRate(0) = %v, want 0", got)
	}
	if got := c.AtRate(-1); got != 0 {
		t.Errorf("AtRate(-1) = %v, want 0", got)
	}
}

func TestTxnsBytes(t *testing.T) {
	if got := Txns(10).Bytes(32); got != 320 {
		t.Errorf("Txns(10).Bytes(32) = %v, want 320", got)
	}
	if got := Txns(10).Bytes(-1); got != 0 {
		t.Errorf("negative perTxn must yield 0, got %v", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(Bytes(640), Seconds(2)); got != 320 {
		t.Errorf("Throughput(640, 2s) = %v, want 320", got)
	}
	if got := Throughput(Bytes(640), 0); got != 0 {
		t.Errorf("zero duration must yield 0, got %v", got)
	}
}

func TestWarpInstsPerSec(t *testing.T) {
	if got := WarpInsts(1e9).PerSec(Seconds(2)); got != 5e8 {
		t.Errorf("PerSec = %v, want 5e8", got)
	}
	if got := WarpInsts(1).PerSec(0); got != 0 {
		t.Errorf("zero duration must yield 0, got %v", got)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct {
		in   float64
		want Fraction
	}{
		{0.5, 0.5},
		{-0.1, 0},
		{1.5, 1},
		{math.NaN(), 0},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
	}
	for _, tc := range cases {
		if got := Clamp01(tc.in); got != tc.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if got := Fraction(math.NaN()).Clamp01(); got != 0 {
		t.Errorf("Fraction(NaN).Clamp01() = %v, want 0", got)
	}
	if got := Fraction(2).Clamped(); got != 1 {
		t.Errorf("Fraction(2).Clamped() = %v, want 1", got)
	}
}

func TestRatioAndShare(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio(1,4) = %v, want 0.25", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %v, want 0", got)
	}
	if got := Ratio(5, 2); got != 1 {
		t.Errorf("Ratio(5,2) must clamp to 1, got %v", got)
	}
	if got := Share(Seconds(1), Seconds(8)); got != 0.125 {
		t.Errorf("Share(1,8) = %v, want 0.125", got)
	}
	if got := Share(Seconds(1), 0); got != 0 {
		t.Errorf("Share with zero whole must yield 0, got %v", got)
	}
}

func TestIntensity(t *testing.T) {
	if got := Intensity(WarpInsts(100), Txns(4)); got != 25 {
		t.Errorf("Intensity(100,4) = %v, want 25", got)
	}
	if got := Intensity(WarpInsts(100), 0); !math.IsInf(got, 1) {
		t.Errorf("Intensity with zero txns must be +Inf, got %v", got)
	}
	if got := IntensityFloor1(WarpInsts(100), 0); got != 100 {
		t.Errorf("IntensityFloor1(100,0) = %v, want 100", got)
	}
	if got := IntensityFloor1(WarpInsts(100), Txns(4)); got != 25 {
		t.Errorf("IntensityFloor1(100,4) = %v, want 25", got)
	}
}
