// Package units defines the dimensioned numeric types the model's public
// surfaces carry — seconds, cycles, bytes, DRAM transactions, warp
// instructions, throughput, and [0,1] fractions — so the Go type checker
// itself enforces dimensional soundness across package boundaries.
//
// Conventions:
//
//   - Public struct fields and exported return values that carry a
//     dimensioned quantity use these types (gpu.LaunchResult,
//     memsim.Traffic, profiler session aggregates, roofline points).
//   - Crossing between two units goes through a named constructor here
//     (Share, Ratio, Throughput, Intensity, Cycles.AtRate), never a bare
//     conversion like Seconds(txns) — the unitsafety analyzer flags those.
//   - Raw float64 remains acceptable for transient model-internal math
//     (interval-timing intermediates in gpu.Launch), for homogeneous metric
//     vectors (profiler.Vector), and at serialization boundaries after an
//     explicit guard (Fraction.Clamp01, Seconds.Nanos).
package units

import "math"

// Seconds is a duration in seconds.
type Seconds float64

// Float returns the duration as a raw float64 of seconds.
func (s Seconds) Float() float64 { return float64(s) }

// Nanos returns the duration in nanoseconds.
func (s Seconds) Nanos() float64 { return float64(s) * 1e9 }

// Millis returns the duration in milliseconds.
func (s Seconds) Millis() float64 { return float64(s) * 1e3 }

// Cycles is a count of clock cycles.
type Cycles float64

// AtRate converts a cycle count to a duration at the given rate in Hz.
// A non-positive rate yields zero.
func (c Cycles) AtRate(hz float64) Seconds {
	if hz <= 0 {
		return 0
	}
	return Seconds(float64(c) / hz)
}

// Bytes is a byte count.
type Bytes uint64

// Float returns the byte count as a float64.
func (b Bytes) Float() float64 { return float64(b) }

// Txns is a count of memory transactions (32-byte DRAM sectors).
type Txns uint64

// Float returns the transaction count as a float64.
func (t Txns) Float() float64 { return float64(t) }

// Bytes converts a transaction count to bytes at perTxn bytes each.
func (t Txns) Bytes(perTxn int) Bytes {
	if perTxn < 0 {
		return 0
	}
	return Bytes(t) * Bytes(perTxn)
}

// WarpInsts is a count of executed warp instructions.
type WarpInsts uint64

// Float returns the instruction count as a float64.
func (w WarpInsts) Float() float64 { return float64(w) }

// PerSec returns the instruction rate over t in warp instructions per
// second. A non-positive duration yields zero.
func (w WarpInsts) PerSec(t Seconds) float64 {
	if t <= 0 {
		return 0
	}
	return float64(w) / float64(t)
}

// BytesPerSec is a throughput in bytes per second.
type BytesPerSec float64

// Float returns the throughput as a raw float64.
func (r BytesPerSec) Float() float64 { return float64(r) }

// Throughput divides a byte volume by a duration. A non-positive duration
// yields zero.
func Throughput(b Bytes, t Seconds) BytesPerSec {
	if t <= 0 {
		return 0
	}
	return BytesPerSec(float64(b) / float64(t))
}

// Fraction is a dimensionless value intended to lie in [0,1]. Producers
// clamp with Clamp01; serialization boundaries call Clamp01 (the method)
// so NaN and out-of-range values cannot reach JSON.
type Fraction float64

// Float returns the fraction as a raw float64, unguarded.
func (f Fraction) Float() float64 { return float64(f) }

// Clamped returns the fraction clamped to [0,1], mapping NaN to 0.
func (f Fraction) Clamped() Fraction {
	return Clamp01(float64(f))
}

// Clamp01 returns the fraction clamped to [0,1] as a raw float64, mapping
// NaN to 0 — the guard serialization boundaries apply before emitting a
// Fraction into JSON or trace args.
func (f Fraction) Clamp01() float64 {
	return float64(f.Clamped())
}

// Clamp01 clamps v to [0,1], mapping NaN to 0.
func Clamp01(v float64) Fraction {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return Fraction(v)
}

// Ratio divides num by den into a clamped fraction; a non-positive
// denominator yields zero.
func Ratio(num, den float64) Fraction {
	if den <= 0 {
		return 0
	}
	return Clamp01(num / den)
}

// Share is Ratio for durations: the clamped fraction of whole that part
// represents.
func Share(part, whole Seconds) Fraction {
	return Ratio(float64(part), float64(whole))
}

// WeightedMean returns the duration-weighted mean of vals — the fraction
// Σ wᵢ·vᵢ / Σ wᵢ — clamped to [0,1]. It is the sanctioned way to roll a
// child level's fractional metrics up an aggregation hierarchy (per-launch
// bottleneck shares into a kernel, kernels into a workload): the weights
// are modeled durations, so the mean answers "what fraction of this node's
// time". Mismatched lengths or a non-positive total weight yield zero.
func WeightedMean(vals []Fraction, weights []Seconds) Fraction {
	if len(vals) != len(weights) {
		return 0
	}
	var num, den float64
	for i, v := range vals {
		w := weights[i].Float()
		if w <= 0 {
			continue
		}
		num += w * float64(v)
		den += w
	}
	return Ratio(num, den)
}

// Intensity returns warp instructions per DRAM transaction — the roofline
// x-axis. Zero transactions yield +Inf (a compute-only kernel sits
// infinitely far right on the roofline); use IntensityFloor1 at JSON
// boundaries, which cannot represent ±Inf.
func Intensity(n WarpInsts, t Txns) float64 {
	if t == 0 {
		return math.Inf(1)
	}
	return float64(n) / float64(t)
}

// IntensityFloor1 is Intensity with the transaction count floored at 1,
// keeping the result finite for serialization.
func IntensityFloor1(n WarpInsts, t Txns) float64 {
	return float64(n) / math.Max(float64(t), 1)
}
