package profiler

import (
	"sync"
	"testing"

	"repro/internal/gpu"
)

// TestConcurrentLaunchesOneSession records launches into one shared session
// from many goroutines and checks the aggregation invariants hold: exact
// launch count, stable kernel aggregation, totals independent of arrival
// order. Under -race this audits the session mutex for the parallel-study
// path.
func TestConcurrentLaunchesOneSession(t *testing.T) {
	s := session(t)
	const goroutines, perG = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := "even"
				if g%2 == 1 {
					name = "odd"
				}
				if _, err := s.Launch(spec(name, 1<<16, g%2 == 0)); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()

	if n := s.LaunchCount(); n != goroutines*perG {
		t.Fatalf("LaunchCount = %d, want %d", n, goroutines*perG)
	}
	kernels := s.Kernels()
	if len(kernels) != 2 {
		t.Fatalf("got %d kernels, want 2", len(kernels))
	}
	var inv int
	for _, k := range kernels {
		inv += k.Invocations
		if k.Invocations != goroutines*perG/2 {
			t.Errorf("%s: %d invocations, want %d", k.Name, k.Invocations, goroutines*perG/2)
		}
	}
	if inv != goroutines*perG {
		t.Errorf("summed invocations = %d, want %d", inv, goroutines*perG)
	}
	if s.TotalTime() <= 0 || s.TotalWarpInstructions() == 0 {
		t.Error("totals should be positive after launches")
	}
}

// TestConcurrentSessions runs fully independent sessions in parallel — the
// exact shape of the parallel study's worker pool, where each worker owns a
// device and a session — and checks they do not interfere.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 8
	results := make([]float64, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := gpu.New(gpu.RTX3080())
			if err != nil {
				t.Error(err)
				return
			}
			s := NewSession(d)
			for j := 0; j < 5; j++ {
				if _, err := s.Launch(spec("k", 1<<16, j%2 == 0)); err != nil {
					t.Error(err)
					return
				}
			}
			results[i] = s.TotalTime().Float()
		}(i)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if results[i] != results[0] {
			t.Errorf("session %d total time %v differs from session 0's %v",
				i, results[i], results[0])
		}
	}
}
