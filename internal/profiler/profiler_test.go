package profiler

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
)

func session(t *testing.T) *Session {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(d)
}

func spec(name string, insts uint64, memHeavy bool) gpu.KernelSpec {
	var mix isa.Mix
	if memHeavy {
		mix.Add(isa.LoadGlobal, insts/2)
		mix.Add(isa.INT, insts/4)
		mix.Add(isa.Misc, insts/4)
	} else {
		mix.Add(isa.FP32, insts*3/4)
		mix.Add(isa.INT, insts/8)
		mix.Add(isa.Branch, insts/16)
		mix.Add(isa.LoadGlobal, insts/16)
	}
	bytes := insts * 4
	if !memHeavy {
		bytes = insts / 8
	}
	if bytes < 1024 {
		bytes = 1024
	}
	return gpu.KernelSpec{
		Name: name, Grid: gpu.D1(1024), Block: gpu.D1(256), Mix: mix,
		Streams: []memsim.Stream{{
			Name: "data", FootprintBytes: bytes, AccessBytes: bytes,
			ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true,
		}},
	}
}

func TestMetricNames(t *testing.T) {
	if GIPS.String() != "GIPS" || StallMem.String() != "Memory stall" {
		t.Error("metric names")
	}
	if Metric(200).String() == "" {
		t.Error("out-of-range metric should render")
	}
	if len(Metrics()) != NumMetrics {
		t.Error("Metrics() length")
	}
}

func TestPrimarySplit(t *testing.T) {
	prim := PrimaryMetrics()
	if len(prim) != 4 {
		t.Fatalf("primary metrics = %d, want 4 (paper Section V-C)", len(prim))
	}
	for _, m := range prim {
		if !m.Primary() {
			t.Errorf("%v should be primary", m)
		}
	}
	sec := SecondaryMetrics()
	if len(prim)+len(sec) != NumMetrics {
		t.Error("primary + secondary != all")
	}
	for _, m := range sec {
		if m.Primary() {
			t.Errorf("%v should not be primary", m)
		}
	}
}

func TestSessionRecordsLaunches(t *testing.T) {
	s := session(t)
	if _, err := s.Launch(spec("k1", 1<<22, false)); err != nil {
		t.Fatal(err)
	}
	s.MustLaunch(spec("k2", 1<<22, true))
	s.MustLaunch(spec("k1", 1<<22, false))
	if s.LaunchCount() != 3 {
		t.Errorf("launch count = %d", s.LaunchCount())
	}
	if len(s.Launches()) != 3 {
		t.Error("Launches() length")
	}
	if s.TotalTime() <= 0 {
		t.Error("total time should be positive")
	}
	wantInsts := 3 * spec("x", 1<<22, false).Mix.Total()
	// k2 has a different mix total, recompute.
	wantInsts = spec("k1", 1<<22, false).Mix.Total()*2 + spec("k2", 1<<22, true).Mix.Total()
	if got := uint64(s.TotalWarpInstructions()); got != wantInsts {
		t.Errorf("total warp insts = %d, want %d", got, wantInsts)
	}
}

func TestSessionLaunchError(t *testing.T) {
	s := session(t)
	if _, err := s.Launch(gpu.KernelSpec{}); err == nil {
		t.Error("invalid spec should error")
	}
	if s.LaunchCount() != 0 {
		t.Error("failed launch must not be recorded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLaunch should panic")
		}
	}()
	s.MustLaunch(gpu.KernelSpec{})
}

func TestKernelAggregation(t *testing.T) {
	s := session(t)
	s.MustLaunch(spec("alpha", 1<<24, false))
	s.MustLaunch(spec("alpha", 1<<24, false))
	s.MustLaunch(spec("beta", 1<<20, true))
	ks := s.Kernels()
	if len(ks) != 2 {
		t.Fatalf("kernels = %d, want 2", len(ks))
	}
	// alpha has 2 invocations and more total time, so it ranks first.
	if ks[0].Name != "alpha" || ks[0].Invocations != 2 {
		t.Errorf("dominant kernel = %s x%d", ks[0].Name, ks[0].Invocations)
	}
	if ks[0].TotalTime <= ks[1].TotalTime {
		t.Error("kernels must be sorted by descending total time")
	}
	if uint64(ks[0].WarpInstructions()) != 2*spec("x", 1<<24, false).Mix.Total() {
		t.Error("aggregated instruction count")
	}
}

// TestKernelTotalOverhead — the profile's accumulated launch overhead is
// exactly invocations x the device's fixed per-launch overhead, and never
// exceeds the kernel's total time: the inputs the attribution tree's
// overhead category derives from.
func TestKernelTotalOverhead(t *testing.T) {
	s := session(t)
	s.MustLaunch(spec("alpha", 1<<24, false))
	s.MustLaunch(spec("alpha", 1<<24, false))
	s.MustLaunch(spec("beta", 1<<20, true))
	perLaunchNs := s.Device().Config().LaunchOverheadNs
	for _, k := range s.Kernels() {
		want := float64(k.Invocations) * perLaunchNs
		if got := k.TotalOverhead.Nanos(); got != want {
			t.Errorf("%s: TotalOverhead = %g ns, want %g ns", k.Name, got, want)
		}
		if k.TotalOverhead > k.TotalTime {
			t.Errorf("%s: overhead %g s exceeds total time %g s",
				k.Name, k.TotalOverhead.Float(), k.TotalTime.Float())
		}
	}
}

func TestKernelMetricsVector(t *testing.T) {
	s := session(t)
	s.MustLaunch(spec("m", 1<<24, true))
	k := s.Kernels()[0]
	v := k.Metrics()
	if v.Get(GIPS) <= 0 {
		t.Error("GIPS should be positive")
	}
	if v.Get(InstIntensity) <= 0 {
		t.Error("II should be positive")
	}
	if v.Get(WarpOccupancy) <= 0 || v.Get(WarpOccupancy) > 48 {
		t.Errorf("occupancy = %g out of (0,48]", v.Get(WarpOccupancy))
	}
	if v.Get(SMEfficiency) <= 0 || v.Get(SMEfficiency) > 1 {
		t.Errorf("SM efficiency = %g", v.Get(SMEfficiency))
	}
	if f := v.Get(FracLDST); f <= 0 || f >= 1 {
		t.Errorf("frac LD/ST = %g", f)
	}
	for _, m := range []Metric{StallExec, StallPipe, StallSync, StallMem, L1HitRate, L2HitRate} {
		if v.Get(m) < 0 || v.Get(m) > 1 {
			t.Errorf("%v = %g out of [0,1]", m, v.Get(m))
		}
	}
}

func TestEmptyProfileMetrics(t *testing.T) {
	k := &KernelProfile{Name: "empty"}
	v := k.Metrics()
	if v.Get(GIPS) != 0 {
		t.Error("empty profile metrics should be zero")
	}
}

func TestMemVsComputeCharacter(t *testing.T) {
	s := session(t)
	s.MustLaunch(spec("mem", 1<<24, true))
	s.MustLaunch(spec("cmp", 1<<24, false))
	var memII, cmpII float64
	for _, k := range s.Kernels() {
		switch k.Name {
		case "mem":
			memII = k.Metrics().Get(InstIntensity)
		case "cmp":
			cmpII = k.Metrics().Get(InstIntensity)
		}
	}
	if memII >= cmpII {
		t.Errorf("memory kernel II %g should be below compute kernel II %g", memII, cmpII)
	}
}

func TestConcurrentLaunches(t *testing.T) {
	s := session(t)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 10; j++ {
				s.MustLaunch(spec("par", 1<<18, j%2 == 0))
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if s.LaunchCount() != 80 {
		t.Errorf("launch count = %d, want 80", s.LaunchCount())
	}
}
