// Package profiler plays the role Nsight Compute plays in the paper: it
// records every kernel launch a workload issues on the device model and
// aggregates them into per-kernel profiles carrying the paper's performance
// metrics (Table IV) plus the four primary metrics (GIPS, instruction
// intensity, SM efficiency, warp occupancy).
package profiler

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Metric enumerates the collected performance metrics. The first four are
// the paper's primary metrics; the remainder reproduce Table IV.
type Metric uint8

const (
	// GIPS is achieved Giga warp instructions per second.
	GIPS Metric = iota
	// InstIntensity is warp instructions per DRAM transaction.
	InstIntensity
	// SMEfficiency is the fraction of time with at least one active warp
	// per SM.
	SMEfficiency
	// WarpOccupancy is the average number of active warps across all SMs.
	WarpOccupancy
	// L1HitRate is the fraction of accesses that hit in L1.
	L1HitRate
	// L2HitRate is the fraction of accesses that hit in L2.
	L2HitRate
	// DRAMReadThroughput is total DRAM read bytes per second.
	DRAMReadThroughput
	// LDSTUtilization is the average load/store functional-unit utilization.
	LDSTUtilization
	// SPUtilization is the average FP32 pipeline utilization.
	SPUtilization
	// FracBranches is the fraction of branch instructions.
	FracBranches
	// FracLDST is the fraction of memory operations.
	FracLDST
	// StallExec is the stall ratio due to execution dependencies.
	StallExec
	// StallPipe is the stall ratio due to busy pipelines.
	StallPipe
	// StallSync is the stall ratio due to synchronization.
	StallSync
	// StallMem is the stall ratio due to memory accesses.
	StallMem

	numMetrics
)

// NumMetrics is the number of collected metrics.
const NumMetrics = int(numMetrics)

var metricNames = [NumMetrics]string{
	"GIPS", "Inst. intensity", "SM efficiency", "Warp occupancy",
	"L1 hit rate", "L2 hit rate", "DRAM read throughput",
	"LD/ST utilization", "SP utilization",
	"Fraction branches", "Fraction LD/ST insts",
	"Execution stall", "Pipe stall", "Sync stall", "Memory stall",
}

// String returns the metric's display name.
func (m Metric) String() string {
	if int(m) < NumMetrics {
		return metricNames[m]
	}
	return fmt.Sprintf("metric(%d)", uint8(m))
}

// Primary reports whether m is one of the paper's four primary metrics.
func (m Metric) Primary() bool { return m <= WarpOccupancy }

// Metrics returns all metrics in declaration order.
func Metrics() []Metric {
	out := make([]Metric, NumMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// PrimaryMetrics returns the paper's four primary metrics.
func PrimaryMetrics() []Metric {
	return []Metric{GIPS, InstIntensity, SMEfficiency, WarpOccupancy}
}

// SecondaryMetrics returns the Table IV metrics correlated against the
// primary ones in Figure 8.
func SecondaryMetrics() []Metric {
	var out []Metric
	for _, m := range Metrics() {
		if !m.Primary() {
			out = append(out, m)
		}
	}
	return out
}

// Vector is a full metric vector indexed by Metric.
type Vector [NumMetrics]float64

// Get returns the value of metric m.
func (v Vector) Get(m Metric) float64 { return v[m] }

// KernelProfile aggregates all invocations of one kernel (launches sharing a
// name), mirroring the paper's r_i x t_i accounting for dominant-kernel
// ranking.
type KernelProfile struct {
	Name        string
	Invocations int
	TotalTime   units.Seconds // summed over invocations
	// TotalOverhead is the summed fixed launch overhead, the portion of
	// TotalTime the attribution tree reports as BottleneckOverhead. Because
	// overhead is a device constant per launch, it always equals
	// Invocations x the device's launch overhead.
	TotalOverhead units.Seconds
	Mix           isa.Mix
	Traffic       memsim.Traffic

	// time-weighted accumulators for averaged metrics (seconds x metric,
	// raw floats by convention: mixed-dimension intermediates)
	wOcc, wSMEff, wLDST, wSP           float64
	wStallE, wStallP, wStallS, wStallM float64
}

// WarpInstructions returns the kernel's total executed warp instructions.
func (k *KernelProfile) WarpInstructions() units.WarpInsts {
	return units.WarpInsts(k.Mix.Total())
}

func (k *KernelProfile) add(r gpu.LaunchResult) {
	k.Invocations++
	k.TotalTime += r.Time
	k.TotalOverhead += r.Overhead
	k.Mix.AddMix(r.Mix)
	k.Traffic.Add(r.Traffic)
	w := r.Time.Float()
	k.wOcc += w * r.Occ.Achieved
	k.wSMEff += w * r.SMEfficiency.Float()
	k.wLDST += w * r.LDSTUtil.Float()
	k.wSP += w * r.SPUtil.Float()
	k.wStallE += w * r.StallExec.Float()
	k.wStallP += w * r.StallPipe.Float()
	k.wStallS += w * r.StallSync.Float()
	k.wStallM += w * r.StallMem.Float()
}

// Metrics returns the kernel's aggregated metric vector. Instruction
// intensity for kernels with zero DRAM traffic is reported against a single
// transaction (finite, very large) so downstream statistics stay defined
// and every JSON export of the vector (profile cache entries, trace args)
// marshals without error — encoding/json rejects the +Inf that
// gpu.LaunchResult.InstIntensity reports for such kernels.
func (k *KernelProfile) Metrics() Vector {
	var v Vector
	t := k.TotalTime.Float()
	if t <= 0 {
		return v
	}
	insts := float64(k.Mix.Total())
	txns := k.Traffic.DRAMTxns.Float()
	if txns < 1 {
		txns = 1
	}
	v[GIPS] = insts / t / 1e9
	v[InstIntensity] = insts / txns
	v[SMEfficiency] = k.wSMEff / t
	v[WarpOccupancy] = k.wOcc / t
	v[L1HitRate] = k.Traffic.L1HitRate().Float()
	v[L2HitRate] = k.Traffic.L2HitRate().Float()
	v[DRAMReadThroughput] = units.Throughput(
		k.Traffic.DRAMReadTx.Bytes(memsim.SectorBytes), k.TotalTime).Float()
	v[LDSTUtilization] = k.wLDST / t
	v[SPUtilization] = k.wSP / t
	v[FracBranches] = k.Mix.BranchFraction()
	v[FracLDST] = k.Mix.MemoryFraction()
	v[StallExec] = k.wStallE / t
	v[StallPipe] = k.wStallP / t
	v[StallSync] = k.wStallS / t
	v[StallMem] = k.wStallM / t
	return v
}

// Session records the launches of one workload run. It wraps a device so
// workload code only ever talks to the session.
type Session struct {
	dev    *gpu.Device
	tracer telemetry.Tracer
	lane   int

	mu       sync.Mutex
	launches []gpu.LaunchResult
	cursor   units.Seconds // modeled-track timeline position
}

// SessionOptions configures a session's telemetry.
type SessionOptions struct {
	// Tracer, when non-nil, receives one modeled-GPU-track span per launch:
	// kernel launches laid end to end from t=0 using their modeled
	// durations, so the track is deterministic across identical runs.
	Tracer telemetry.Tracer
	// Label names the session's modeled-track lane (usually the workload
	// abbreviation); empty emits no lane metadata.
	Label string
	// Lane is the modeled-track thread id. Sessions recording into a shared
	// tracer (a study) use distinct lanes so timelines don't overlap.
	Lane int
}

// NewSession starts a profiling session on dev with telemetry disabled.
func NewSession(dev *gpu.Device) *Session {
	return NewSessionWith(dev, SessionOptions{})
}

// NewSessionWith starts a profiling session on dev with the given telemetry.
func NewSessionWith(dev *gpu.Device, opts SessionOptions) *Session {
	s := &Session{dev: dev, tracer: telemetry.Or(opts.Tracer), lane: opts.Lane}
	if s.tracer.Enabled() && opts.Label != "" {
		s.tracer.Emit(telemetry.ThreadName(telemetry.TrackModeled, opts.Lane, opts.Label))
	}
	return s
}

// Device returns the underlying device.
func (s *Session) Device() *gpu.Device { return s.dev }

// Launch models spec on the device and records the result.
func (s *Session) Launch(spec gpu.KernelSpec) (gpu.LaunchResult, error) {
	res, err := s.dev.Launch(spec)
	if err != nil {
		return res, err
	}
	s.mu.Lock()
	s.launches = append(s.launches, res)
	start := s.cursor
	s.cursor += res.Time
	s.mu.Unlock()
	if s.tracer.Enabled() {
		s.tracer.Emit(telemetry.Event{
			Track: telemetry.TrackModeled, Phase: telemetry.PhaseSpan,
			Name: res.Name, Cat: "kernel", TID: s.lane,
			Start: start.Float(), Dur: res.Time.Float(),
			Args: res.TelemetryArgs(),
		})
	}
	return res, nil
}

// MustLaunch is Launch that panics on error. Workload kernel specs are
// constructed programmatically; an invalid one is a bug, not an input error.
func (s *Session) MustLaunch(spec gpu.KernelSpec) gpu.LaunchResult {
	res, err := s.Launch(spec)
	if err != nil {
		panic(err)
	}
	return res
}

// Launches returns the recorded launches in issue order.
func (s *Session) Launches() []gpu.LaunchResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]gpu.LaunchResult, len(s.launches))
	copy(out, s.launches)
	return out
}

// LaunchCount returns the number of recorded launches.
func (s *Session) LaunchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.launches)
}

// TotalTime returns the summed GPU time of all launches.
func (s *Session) TotalTime() units.Seconds {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t units.Seconds
	for _, l := range s.launches {
		t += l.Time
	}
	return t
}

// TotalWarpInstructions returns the summed warp-instruction count.
func (s *Session) TotalWarpInstructions() units.WarpInsts {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n units.WarpInsts
	for _, l := range s.launches {
		n += units.WarpInsts(l.Mix.Total())
	}
	return n
}

// Kernels aggregates launches by kernel name and returns the profiles
// sorted by descending total time (the paper's dominant-kernel rank:
// r_i x t_i).
func (s *Session) Kernels() []*KernelProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	byName := make(map[string]*KernelProfile)
	var order []string
	for _, l := range s.launches {
		k, ok := byName[l.Name]
		if !ok {
			k = &KernelProfile{Name: l.Name}
			byName[l.Name] = k
			order = append(order, l.Name)
		}
		k.add(l)
	}
	out := make([]*KernelProfile, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalTime != out[j].TotalTime {
			return out[i].TotalTime > out[j].TotalTime
		}
		return out[i].Name < out[j].Name
	})
	return out
}
