package testutil

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder is a TB that captures failures instead of failing, so the
// checker's own behavior is assertable.
type recorder struct {
	mu       sync.Mutex
	failures []string // guarded by mu
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = append(r.failures, strings.TrimSpace(strings.Split(format, "\n")[0]))
}

func (r *recorder) failed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failures) > 0
}

// TestCheckLeaksCatchesDeliberateLeak parks a goroutine on a channel the
// test holds open past the settle deadline: the checker must report it.
func TestCheckLeaksCatchesDeliberateLeak(t *testing.T) {
	rec := &recorder{}
	check := CheckLeaksWithin(rec, 200*time.Millisecond)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started
	check()
	close(release) // unpark so the leak does not outlive this test
	if !rec.failed() {
		t.Fatal("checker did not report a goroutine parked past the settle deadline")
	}
}

// TestCheckLeaksSettles starts a goroutine that exits shortly after the
// check begins: the retry loop must wait it out instead of flaking. Run
// under -race in CI, where goroutine unwinding is slowest.
func TestCheckLeaksSettles(t *testing.T) {
	check := CheckLeaks(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	check() // the goroutine is still sleeping when this starts
	<-done
}

// TestCheckLeaksCleanPass pins the zero-goroutine fast path: no work, no
// failure, no waiting out the settle deadline.
func TestCheckLeaksCleanPass(t *testing.T) {
	rec := &recorder{}
	start := time.Now()
	CheckLeaksWithin(rec, defaultSettle)()
	if rec.failed() {
		t.Fatalf("clean pass reported failures: %v", rec.failures)
	}
	if elapsed := time.Since(start); elapsed > defaultSettle/2 {
		t.Errorf("clean pass took %v; it must return immediately, not wait the settle deadline", elapsed)
	}
}
