// Package testutil holds test-only runtime harnesses shared across
// packages. The static analyzers (internal/lint) prove lock and context
// discipline at the source level; the goroutine-leak checker here is the
// runtime complement: it proves that lifecycle code — engine shutdown,
// server drain, singleflight completion — actually returns the goroutines
// it started.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak checker reports through. Taking
// the interface (rather than *testing.T) lets the checker's own tests pass
// a recorder and assert on what a deliberate leak produces.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// defaultSettle bounds how long CheckLeaks waits for goroutines started by
// the test to finish before declaring them leaked. Detached work that
// legitimately outlives a request (a singleflight study after a 504) must
// complete within this window or the test fails.
const defaultSettle = 5 * time.Second

// CheckLeaks snapshots the running goroutines and returns a function that,
// deferred at test start as
//
//	defer testutil.CheckLeaks(t)()
//
// fails the test if goroutines created during the test are still running
// once it ends. Goroutines take time to unwind, so the check retries with
// backoff until the settle deadline before reporting; the report includes
// each leaked goroutine's full stack.
func CheckLeaks(tb TB) func() {
	return CheckLeaksWithin(tb, defaultSettle)
}

// CheckLeaksWithin is CheckLeaks with an explicit settle deadline, so the
// checker's own deliberate-leak test does not have to wait out the default.
func CheckLeaksWithin(tb TB, settle time.Duration) func() {
	before := goroutineIDs()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(settle)
		backoff := time.Millisecond
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, stack := range interestingGoroutines() {
				if !before[id] {
					leaked = append(leaked, stack)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		}
		for _, stack := range leaked {
			tb.Errorf("goroutine leaked past the test (still running after %v):\n%s", settle, stack)
		}
	}
}

// goroutineIDs returns the IDs of the currently interesting goroutines.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for id := range interestingGoroutines() {
		ids[id] = true
	}
	return ids
}

// interestingGoroutines parses one runtime.Stack snapshot into id → stack
// stanzas, dropping the runtime's own long-lived goroutines and the
// testing framework's: those exist for the whole process and are never
// leaks.
func interestingGoroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]string)
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(stanza)
		if !ok || boringStack(stanza) {
			continue
		}
		out[id] = stanza
	}
	return out
}

// goroutineID extracts the N of a "goroutine N [state]:" stanza header.
func goroutineID(stanza string) (string, bool) {
	var id int
	var state string
	if _, err := fmt.Sscanf(stanza, "goroutine %d [%s", &id, &state); err != nil {
		return "", false
	}
	return fmt.Sprint(id), true
}

// boringStack reports stanzas that belong to the runtime or the test
// harness rather than to code under test.
func boringStack(stanza string) bool {
	if strings.TrimSpace(stanza) == "" {
		return true
	}
	for _, marker := range []string{
		"runtime.Stack(",      // the snapshotting goroutine itself
		"testing.Main(",       // test harness
		"testing.tRunner(",    // the test's own goroutine
		"testing.(*M).",       // test harness setup
		"testing.runTests(",   // test harness
		"testing.(*T).Run(",   // parent test waiting on subtests
		"runtime.gc(",         // runtime housekeeping
		"runtime.MHeap_",      // runtime housekeeping
		"runtime.ReadTrace(",  // trace reader
		"signal.signal_recv(", // signal handler
		"signal.loop(",        // signal handler
		"runtime.ensureSigM(", // signal mask goroutine
	} {
		if strings.Contains(stanza, marker) {
			return true
		}
	}
	return false
}
