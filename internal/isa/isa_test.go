package isa

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	if FP32.String() != "fp32" {
		t.Errorf("FP32 = %q", FP32.String())
	}
	if LoadGlobal.String() != "ldg" {
		t.Errorf("LoadGlobal = %q", LoadGlobal.String())
	}
	if Class(200).String() == "" {
		t.Error("out-of-range class should still render")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) should fail")
	}
}

func TestClassPredicates(t *testing.T) {
	tests := []struct {
		c                Class
		mem, global, cmp bool
	}{
		{FP32, false, false, true},
		{FP64, false, false, true},
		{INT, false, false, true},
		{SFU, false, false, true},
		{Tensor, false, false, true},
		{LoadGlobal, true, true, false},
		{StoreGlobal, true, true, false},
		{LoadShared, true, false, false},
		{StoreShared, true, false, false},
		{LoadConst, true, false, false},
		{Branch, false, false, false},
		{Sync, false, false, false},
		{Misc, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.c.IsMemory(); got != tt.mem {
			t.Errorf("%v.IsMemory() = %v, want %v", tt.c, got, tt.mem)
		}
		if got := tt.c.IsGlobalMemory(); got != tt.global {
			t.Errorf("%v.IsGlobalMemory() = %v, want %v", tt.c, got, tt.global)
		}
		if got := tt.c.IsCompute(); got != tt.cmp {
			t.Errorf("%v.IsCompute() = %v, want %v", tt.c, got, tt.cmp)
		}
	}
}

func TestMixAddAndTotals(t *testing.T) {
	var m Mix
	m.Add(FP32, 100)
	m.Add(LoadGlobal, 30)
	m.Add(StoreGlobal, 10)
	m.Add(Branch, 5)
	m.Add(LoadShared, 15)
	if got := m.Total(); got != 160 {
		t.Errorf("Total = %d, want 160", got)
	}
	if got := m.GlobalOps(); got != 40 {
		t.Errorf("GlobalOps = %d, want 40", got)
	}
	if got := m.MemoryOps(); got != 55 {
		t.Errorf("MemoryOps = %d, want 55", got)
	}
	if got := m.ComputeOps(); got != 100 {
		t.Errorf("ComputeOps = %d, want 100", got)
	}
	if got := m.BranchFraction(); got != 5.0/160 {
		t.Errorf("BranchFraction = %g", got)
	}
	if got := m.MemoryFraction(); got != 55.0/160 {
		t.Errorf("MemoryFraction = %g", got)
	}
}

func TestMixAddInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with invalid class should panic")
		}
	}()
	var m Mix
	m.Add(Class(99), 1)
}

func TestMixScale(t *testing.T) {
	var m Mix
	m.Add(FP32, 10)
	m.Add(INT, 3)
	s := m.Scale(2.5)
	if s.Count(FP32) != 25 {
		t.Errorf("scaled FP32 = %d, want 25", s.Count(FP32))
	}
	if s.Count(INT) != 8 { // 7.5 rounds to 8
		t.Errorf("scaled INT = %d, want 8", s.Count(INT))
	}
}

func TestMixAddMixCommutative(t *testing.T) {
	f := func(a, b [NumClasses]uint16) bool {
		var ma, mb Mix
		for i := range a {
			ma[i] = uint64(a[i])
			mb[i] = uint64(b[i])
		}
		x, y := ma, mb
		x.AddMix(mb)
		y.AddMix(ma)
		return x == y && x.Total() == ma.Total()+mb.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixFractionsSumToOne(t *testing.T) {
	f := func(a [NumClasses]uint16) bool {
		var m Mix
		for i := range a {
			m[i] = uint64(a[i])
		}
		if m.Total() == 0 {
			return m.Fraction(FP32) == 0
		}
		var sum float64
		for _, c := range Classes() {
			sum += m.Fraction(c)
		}
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixStringOrdersByCount(t *testing.T) {
	var m Mix
	m.Add(FP32, 5)
	m.Add(LoadGlobal, 50)
	s := m.String()
	if s != "ldg:50 fp32:5" {
		t.Errorf("String = %q", s)
	}
	var empty Mix
	if empty.String() != "" {
		t.Errorf("empty mix String = %q", empty.String())
	}
}

func TestEmptyMixFractions(t *testing.T) {
	var m Mix
	if m.MemoryFraction() != 0 || m.BranchFraction() != 0 {
		t.Error("empty mix fractions should be 0")
	}
	if m.Count(Class(99)) != 0 {
		t.Error("invalid class count should be 0")
	}
}
