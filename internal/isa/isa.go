// Package isa defines the warp-level instruction classes used by the GPU
// performance model. The model operates at warp granularity, mirroring the
// paper's methodology: one warp instruction corresponds to 32 thread
// instructions, and all instruction counts reported anywhere in this
// repository are warp-instruction counts.
//
// Classes follow the functional-unit split of an Ampere-style streaming
// multiprocessor: FP32/FP64 pipes, the integer/ALU pipe, the special-function
// unit, tensor cores, load/store units (global, shared, local/constant),
// control flow, barriers, and a catch-all for move/predicate bookkeeping.
package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Class identifies the functional-unit class of a warp instruction.
type Class uint8

// Instruction classes. The order is stable and part of the package API:
// serialized mixes index by the class value.
const (
	// FP32 covers single-precision arithmetic: FADD, FMUL, FFMA.
	FP32 Class = iota
	// FP64 covers double-precision arithmetic.
	FP64
	// INT covers integer ALU work: IADD, IMAD, ISETP, LOP3, SHF.
	INT
	// SFU covers special-function-unit ops: MUFU (rcp, rsqrt, sin, exp, lg2).
	SFU
	// Tensor covers tensor-core matrix ops (HMMA/IMMA). Unused by the FP32
	// workloads in this repository but part of the device model.
	Tensor
	// LoadGlobal covers LDG: loads from global memory.
	LoadGlobal
	// StoreGlobal covers STG: stores to global memory.
	StoreGlobal
	// LoadShared covers LDS: loads from shared memory.
	LoadShared
	// StoreShared covers STS: stores to shared memory.
	StoreShared
	// LoadConst covers LDC and constant-bank reads.
	LoadConst
	// Branch covers BRA/BRX/JMP and predicated divergence points.
	Branch
	// Sync covers BAR.SYNC and named-barrier instructions.
	Sync
	// Misc covers MOV, PRMT, SEL, predicate manipulation, NOP, EXIT.
	Misc

	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [NumClasses]string{
	"fp32", "fp64", "int", "sfu", "tensor",
	"ldg", "stg", "lds", "sts", "ldc",
	"branch", "sync", "misc",
}

// String returns the short mnemonic for the class.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Valid reports whether c is a defined instruction class.
func (c Class) Valid() bool { return int(c) < NumClasses }

// IsMemory reports whether the class executes on a load/store unit.
func (c Class) IsMemory() bool {
	switch c {
	case LoadGlobal, StoreGlobal, LoadShared, StoreShared, LoadConst:
		return true
	}
	return false
}

// IsGlobalMemory reports whether the class accesses the global memory space.
func (c Class) IsGlobalMemory() bool {
	return c == LoadGlobal || c == StoreGlobal
}

// IsCompute reports whether the class executes on an arithmetic pipe.
func (c Class) IsCompute() bool {
	switch c {
	case FP32, FP64, INT, SFU, Tensor:
		return true
	}
	return false
}

// Classes returns all defined classes in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ParseClass maps a mnemonic back to its Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown instruction class %q", s)
}

// Mix is a per-class warp-instruction histogram. The zero value is an empty
// mix ready to use.
type Mix [NumClasses]uint64

// Add increments class c by n warp instructions.
func (m *Mix) Add(c Class, n uint64) {
	if !c.Valid() {
		panic(fmt.Sprintf("isa: invalid class %d", c))
	}
	m[c] += n
}

// AddMix accumulates another mix into m.
func (m *Mix) AddMix(o Mix) {
	for i := range m {
		m[i] += o[i]
	}
}

// Scale returns a copy of m with every count multiplied by f and rounded to
// the nearest integer. Useful when a sampled warp subset stands in for the
// whole grid.
func (m Mix) Scale(f float64) Mix {
	var out Mix
	for i, v := range m {
		out[i] = uint64(float64(v)*f + 0.5)
	}
	return out
}

// Total returns the total number of warp instructions across all classes.
func (m Mix) Total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// Count returns the number of warp instructions in class c.
func (m Mix) Count(c Class) uint64 {
	if !c.Valid() {
		return 0
	}
	return m[c]
}

// MemoryOps returns the number of load/store-unit warp instructions.
func (m Mix) MemoryOps() uint64 {
	var t uint64
	for i, v := range m {
		if Class(i).IsMemory() {
			t += v
		}
	}
	return t
}

// GlobalOps returns the number of global-memory warp instructions.
func (m Mix) GlobalOps() uint64 {
	return m[LoadGlobal] + m[StoreGlobal]
}

// ComputeOps returns the number of arithmetic-pipe warp instructions.
func (m Mix) ComputeOps() uint64 {
	var t uint64
	for i, v := range m {
		if Class(i).IsCompute() {
			t += v
		}
	}
	return t
}

// Fraction returns class c's share of the total, or 0 for an empty mix.
func (m Mix) Fraction(c Class) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.Count(c)) / float64(t)
}

// BranchFraction returns the fraction of branch instructions (Table IV,
// "Fraction branches").
func (m Mix) BranchFraction() float64 { return m.Fraction(Branch) }

// MemoryFraction returns the fraction of load/store instructions (Table IV,
// "Fraction LD/ST insts").
func (m Mix) MemoryFraction() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.MemoryOps()) / float64(t)
}

// String renders the non-zero classes as "class:count" pairs, largest first.
func (m Mix) String() string {
	type kv struct {
		c Class
		n uint64
	}
	var items []kv
	for i, v := range m {
		if v > 0 {
			items = append(items, kv{Class(i), v})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].c < items[j].c
	})
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", it.c, it.n)
	}
	return b.String()
}
