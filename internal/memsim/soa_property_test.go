package memsim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/units"
)

// refCache is the retained reference implementation of the sectored
// set-associative LRU cache: the straightforward slice-of-line-structs
// layout the package used before the struct-of-arrays conversion. It exists
// only as a test oracle — the property tests below drive it and the SoA
// Cache with identical randomized streams and demand identical behavior,
// access by access.
type refCache struct {
	cfg     CacheConfig
	sets    [][]refLine
	tick    uint64
	hits    uint64
	accs    uint64
	setMask uint64
}

type refLine struct {
	tag     uint64
	lastUse uint64
	valid   bool
	sectors uint8
}

func newRefCache(cfg CacheConfig) *refCache {
	nSets := cfg.numSets()
	sets := make([][]refLine, nSets)
	for i := range sets {
		sets[i] = make([]refLine, cfg.Assoc)
	}
	return &refCache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1)}
}

func (c *refCache) access(addr uint64, isStore bool) bool {
	c.tick++
	c.accs++
	lineAddr := addr / LineBytes
	sector := uint8(1) << ((addr / SectorBytes) % SectorsPerLine)
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == lineAddr {
			l.lastUse = c.tick
			if !c.cfg.Sectored || l.sectors&sector != 0 {
				c.hits++
				return true
			}
			l.sectors |= sector
			return false
		}
	}
	if isStore && !c.cfg.WriteAlloc {
		return false
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	l := &set[victim]
	l.valid = true
	l.tag = lineAddr
	l.lastUse = c.tick
	if c.cfg.Sectored {
		l.sectors = sector
	} else {
		l.sectors = (1 << SectorsPerLine) - 1
	}
	return false
}

// refHierarchy mirrors Hierarchy.Access over two reference caches.
type refHierarchy struct {
	l1, l2 *refCache
	t      Traffic
}

func (h *refHierarchy) access(addr uint64, isStore bool) {
	h.t.Sectors++
	if h.l1.access(addr, isStore) {
		h.t.L1Hits++
		return
	}
	if h.l2.access(addr, isStore) {
		h.t.L2Hits++
		return
	}
	h.t.DRAMTxns++
	if isStore {
		h.t.DRAMWriteTx++
	} else {
		h.t.DRAMReadTx++
	}
}

// propConfigs are the cache geometries the property tests sweep: sectored
// and unsectored, write-allocate on and off, and a non-power-of-two set
// count (exercising the round-down mask path).
var propConfigs = []struct {
	name   string
	l1, l2 CacheConfig
}{
	{"ampere-like",
		CacheConfig{Name: "L1", SizeBytes: 16 << 10, Assoc: 4, Sectored: true},
		CacheConfig{Name: "L2", SizeBytes: 128 << 10, Assoc: 8, Sectored: true, WriteAlloc: true}},
	{"unsectored-writealloc",
		CacheConfig{Name: "L1", SizeBytes: 8 << 10, Assoc: 2, WriteAlloc: true},
		CacheConfig{Name: "L2", SizeBytes: 64 << 10, Assoc: 4, WriteAlloc: true}},
	{"direct-mapped-tiny",
		CacheConfig{Name: "L1", SizeBytes: 2 << 10, Assoc: 1, Sectored: true},
		CacheConfig{Name: "L2", SizeBytes: 8 << 10, Assoc: 1}},
	{"non-pow2-sets",
		CacheConfig{Name: "L1", SizeBytes: 3 * 128 * 4, Assoc: 4, Sectored: true},
		CacheConfig{Name: "L2", SizeBytes: 6 * 128 * 8, Assoc: 8, WriteAlloc: true}},
}

// propPatterns generate the address streams: each returns the next
// (address, isStore) pair. The generators only use the shared *rand.Rand,
// so streams are reproducible per seed.
var propPatterns = []struct {
	name string
	gen  func(r *rand.Rand, i int) (uint64, bool)
}{
	{"sequential", func(r *rand.Rand, i int) (uint64, bool) {
		return uint64(i) * SectorBytes, false
	}},
	{"strided-lines", func(r *rand.Rand, i int) (uint64, bool) {
		return uint64(i) * LineBytes * 3, i%7 == 0
	}},
	{"random-window", func(r *rand.Rand, i int) (uint64, bool) {
		return uint64(r.Intn(1 << 16)), r.Intn(4) == 0
	}},
	{"hot-set", func(r *rand.Rand, i int) (uint64, bool) {
		// 90% of accesses land in 4 KiB; the rest roam 16 MiB.
		if r.Intn(10) > 0 {
			return uint64(r.Intn(4 << 10)), false
		}
		return uint64(r.Intn(16 << 20)), true
	}},
	{"conflict-heavy", func(r *rand.Rand, i int) (uint64, bool) {
		// Same set, rotating tags: maximal eviction pressure.
		return uint64(r.Intn(16)) * (64 << 10), false
	}},
}

// TestCacheSoAMatchesReference drives the SoA Cache and the reference
// implementation with identical streams across the configs x patterns table
// and requires identical per-access results and final stats.
func TestCacheSoAMatchesReference(t *testing.T) {
	for _, cfg := range propConfigs {
		for _, pat := range propPatterns {
			t.Run(cfg.name+"/"+pat.name, func(t *testing.T) {
				soa := NewCache(cfg.l1)
				ref := newRefCache(cfg.l1)
				r := rand.New(rand.NewSource(1))
				for i := 0; i < 20000; i++ {
					addr, isStore := pat.gen(r, i)
					got, want := soa.Access(addr, isStore), ref.access(addr, isStore)
					if got != want {
						t.Fatalf("access %d (addr %#x store %v): SoA %v, reference %v",
							i, addr, isStore, got, want)
					}
				}
				accs, hits := soa.Stats()
				if accs != ref.accs || hits != ref.hits {
					t.Errorf("stats: SoA (%d, %d), reference (%d, %d)",
						accs, hits, ref.accs, ref.hits)
				}
			})
		}
	}
}

// TestHierarchySoAMatchesReferenceTraffic checks the full two-level replay:
// identical Traffic from the SoA hierarchy and the reference hierarchy over
// every config x pattern cell, including after a mid-stream Reset (the
// replay-pool reuse path).
func TestHierarchySoAMatchesReferenceTraffic(t *testing.T) {
	for _, cfg := range propConfigs {
		for _, pat := range propPatterns {
			t.Run(cfg.name+"/"+pat.name, func(t *testing.T) {
				soa := NewHierarchy(cfg.l1, cfg.l2)
				ref := &refHierarchy{l1: newRefCache(cfg.l1), l2: newRefCache(cfg.l2)}
				r := rand.New(rand.NewSource(2))
				for i := 0; i < 15000; i++ {
					addr, isStore := pat.gen(r, i)
					soa.Access(addr, isStore)
					ref.access(addr, isStore)
				}
				if soa.Traffic() != ref.t {
					t.Fatalf("traffic: SoA %+v, reference %+v", soa.Traffic(), ref.t)
				}

				// Reset and replay a fresh stream: a stale tag surviving
				// Reset would show up as phantom hits here.
				soa.Reset()
				ref = &refHierarchy{l1: newRefCache(cfg.l1), l2: newRefCache(cfg.l2)}
				r = rand.New(rand.NewSource(3))
				for i := 0; i < 5000; i++ {
					addr, isStore := pat.gen(r, i)
					soa.Access(addr, isStore)
					ref.access(addr, isStore)
				}
				if soa.Traffic() != ref.t {
					t.Fatalf("traffic after Reset: SoA %+v, reference %+v", soa.Traffic(), ref.t)
				}
			})
		}
	}
}

// TestAccessBatchMatchesPerAccess checks the batched entry points resolve
// exactly like element-wise Access over the same stream.
func TestAccessBatchMatchesPerAccess(t *testing.T) {
	for _, cfg := range propConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			one := NewHierarchy(cfg.l1, cfg.l2)
			batched := NewHierarchy(cfg.l1, cfg.l2)
			r := rand.New(rand.NewSource(4))
			for round := 0; round < 50; round++ {
				n := 1 + r.Intn(300)
				addrs := make([]uint64, n)
				for i := range addrs {
					addrs[i] = uint64(r.Intn(1 << 18))
				}
				isStore := round%3 == 0
				for _, a := range addrs {
					one.Access(a, isStore)
				}
				batched.AccessBatch(addrs, isStore)
			}
			if one.Traffic() != batched.Traffic() {
				t.Errorf("traffic: per-access %+v, batched %+v", one.Traffic(), batched.Traffic())
			}
		})
	}
}

// TestTrafficScaleRounding pins Scale's rounding behavior: round-to-nearest
// with halves away from zero, bit-for-bit what the former +0.5-then-truncate
// idiom produced for the non-negative counts Traffic holds. These goldens
// guard the byte-identical-output contract of the replay path (profiles
// store scaled traffic).
func TestTrafficScaleRounding(t *testing.T) {
	cases := []struct {
		v    uint64
		f    float64
		want uint64
	}{
		{0, 2.5, 0},
		{1, 1, 1},
		{7, 1.5, 11},    // 10.5 rounds up
		{5, 0.5, 3},     // 2.5 rounds up (away from zero)
		{3, 1.0 / 3, 1}, // 0.999... rounds to 1
		{10, 1.0 / 3, 3},
		{1000003, 1.0 / 0.25, 4000012},
		{999999999, 1.37, 1369999999}, // large counts stay exact
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%g", c.v, c.f), func(t *testing.T) {
			v := units.Txns(c.v)
			tr := Traffic{Sectors: v, L1Hits: v, L2Hits: v,
				DRAMTxns: v, DRAMReadTx: v, DRAMWriteTx: v}
			got := tr.Scale(c.f)
			if uint64(got.Sectors) != c.want {
				t.Errorf("Scale(%g) of %d = %d, want %d", c.f, c.v, got.Sectors, c.want)
			}
			// Every field scales identically.
			if got.L1Hits != got.Sectors || got.DRAMWriteTx != got.Sectors {
				t.Errorf("fields scaled unevenly: %+v", got)
			}
			// Agreement with the former idiom for non-negative counts.
			if old := uint64(float64(c.v)*c.f + 0.5); old != c.want {
				t.Errorf("golden %d disagrees with the legacy idiom %d — test bug", c.want, old)
			}
		})
	}
}
