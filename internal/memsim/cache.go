// Package memsim models the GPU memory hierarchy. It provides two
// complementary resolution paths for a kernel's global-memory traffic:
//
//   - a sectored set-associative cache simulator (Cache, Hierarchy) that
//     replays address traces, used for kernels whose locality is
//     data-dependent (graph gathers, neighbor-list walks);
//   - an analytical locality model (stream.go) that derives hit rates from a
//     declarative description of access streams, used for dense/regular
//     kernels (GEMM tiles, elementwise, stencils).
//
// Both paths produce the same outcome type (Traffic): sector-granular counts
// of accesses, L1 hits, L2 hits, and DRAM transactions. Ampere-style
// geometry is used throughout: 128-byte cache lines split into four 32-byte
// sectors; DRAM transactions are 32-byte sectors, matching the paper's
// 23.76 GTXN/s peak-bandwidth derivation.
package memsim

import (
	"fmt"

	"repro/internal/units"
)

// Geometry constants shared by the hierarchy.
const (
	// LineBytes is the cache-line size.
	LineBytes = 128
	// SectorBytes is the sector (and DRAM transaction) size.
	SectorBytes = 32
	// SectorsPerLine is the number of sectors per line.
	SectorsPerLine = LineBytes / SectorBytes
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string // e.g. "L1", "L2"
	SizeBytes  int    // total capacity
	Assoc      int    // ways per set
	Sectored   bool   // if true, fills are sector-granular within a line
	WriteAlloc bool   // if true, stores allocate lines (write-allocate)
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("memsim: %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("memsim: %s: non-positive associativity %d", c.Name, c.Assoc)
	}
	if c.SizeBytes%(LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("memsim: %s: size %d not divisible by line*assoc=%d",
			c.Name, c.SizeBytes, LineBytes*c.Assoc)
	}
	return nil
}

type cacheLine struct {
	tag     uint64
	valid   bool
	sectors uint8 // bitmask of present sectors (sectored caches)
	lastUse uint64
}

// Cache is a set-associative, optionally sectored cache with LRU
// replacement. It is not safe for concurrent use.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setMask  uint64
	tick     uint64
	accesses uint64
	hits     uint64
}

// NewCache builds a cache from cfg. It panics on invalid configuration:
// cache geometry is program-defined, so a bad value is a programming error.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (LineBytes * cfg.Assoc)
	if nSets&(nSets-1) != 0 {
		// Round down to a power of two so the set index is a mask. The
		// capacity difference is irrelevant at the fidelity of this model.
		p := 1
		for p*2 <= nSets {
			p *= 2
		}
		nSets = p
	}
	sets := make([][]cacheLine, nSets)
	backing := make([]cacheLine, nSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{cfg: cfg, sets: sets, setMask: uint64(nSets - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access performs one sector-granular access at byte address addr.
// isStore distinguishes stores (which may or may not allocate).
// It returns true on a hit.
func (c *Cache) Access(addr uint64, isStore bool) bool {
	c.tick++
	c.accesses++
	lineAddr := addr / LineBytes
	sector := uint8(1) << ((addr / SectorBytes) % SectorsPerLine)
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> 1 // low bit folded into set index already; tag keeps full line addr
	tag = lineAddr

	// Probe.
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lastUse = c.tick
			if !c.cfg.Sectored || l.sectors&sector != 0 {
				c.hits++
				return true
			}
			// Line present but sector missing: sector miss fills the sector.
			l.sectors |= sector
			return false
		}
	}
	// Miss. Stores bypass allocation when write-allocate is off.
	if isStore && !c.cfg.WriteAlloc {
		return false
	}
	// Fill into LRU victim.
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: tag, valid: true, lastUse: c.tick}
	if c.cfg.Sectored {
		set[victim].sectors = sector
	} else {
		set[victim].sectors = (1 << SectorsPerLine) - 1
	}
	return false
}

// Stats returns (accesses, hits) since construction or the last Reset.
func (c *Cache) Stats() (accesses, hits uint64) { return c.accesses, c.hits }

// HitRate returns the hit fraction, or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
	c.tick, c.accesses, c.hits = 0, 0, 0
}

// Traffic summarizes resolved global-memory traffic for one kernel launch,
// in 32-byte sector units (units.Txns).
type Traffic struct {
	Sectors     units.Txns // total sector accesses issued to L1
	L1Hits      units.Txns
	L2Hits      units.Txns
	DRAMTxns    units.Txns // sectors served by DRAM (reads + writes)
	DRAMReadTx  units.Txns
	DRAMWriteTx units.Txns
}

// Add accumulates other into t.
func (t *Traffic) Add(o Traffic) {
	t.Sectors += o.Sectors
	t.L1Hits += o.L1Hits
	t.L2Hits += o.L2Hits
	t.DRAMTxns += o.DRAMTxns
	t.DRAMReadTx += o.DRAMReadTx
	t.DRAMWriteTx += o.DRAMWriteTx
}

// L1HitRate returns the fraction of sector accesses hitting in L1.
func (t Traffic) L1HitRate() units.Fraction {
	return units.Ratio(t.L1Hits.Float(), t.Sectors.Float())
}

// L2HitRate returns the fraction of L1 misses hitting in L2.
func (t Traffic) L2HitRate() units.Fraction {
	misses := t.Sectors - t.L1Hits
	return units.Ratio(t.L2Hits.Float(), misses.Float())
}

// Scale returns traffic scaled by f (e.g. to extrapolate a sampled trace to
// the full grid).
func (t Traffic) Scale(f float64) Traffic {
	s := func(v units.Txns) units.Txns { return units.Txns(v.Float()*f + 0.5) }
	return Traffic{
		Sectors:     s(t.Sectors),
		L1Hits:      s(t.L1Hits),
		L2Hits:      s(t.L2Hits),
		DRAMTxns:    s(t.DRAMTxns),
		DRAMReadTx:  s(t.DRAMReadTx),
		DRAMWriteTx: s(t.DRAMWriteTx),
	}
}

// Hierarchy couples a per-SM L1 with a device-wide L2 and replays accesses.
// The single L1 instance stands in for one SM's L1; callers replay a sampled
// subset of warps, which is equivalent to tracing one SM's share of the grid.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	t  Traffic
}

// NewHierarchy builds an L1+L2 hierarchy.
func NewHierarchy(l1, l2 CacheConfig) *Hierarchy {
	return &Hierarchy{L1: NewCache(l1), L2: NewCache(l2)}
}

// Access resolves one sector access through L1 then L2, updating traffic.
func (h *Hierarchy) Access(addr uint64, isStore bool) {
	h.t.Sectors++
	if h.L1.Access(addr, isStore) {
		h.t.L1Hits++
		return
	}
	if h.L2.Access(addr, isStore) {
		h.t.L2Hits++
		return
	}
	h.t.DRAMTxns++
	if isStore {
		h.t.DRAMWriteTx++
	} else {
		h.t.DRAMReadTx++
	}
}

// AccessWarp issues one coalesced warp access: 32 lanes reading elemBytes
// each from base with the given lane stride (in bytes). Coalescing collapses
// lanes falling in the same sector into one access, exactly like the
// hardware's coalescing stage.
func (h *Hierarchy) AccessWarp(base uint64, laneStrideBytes, elemBytes int, isStore bool) {
	if laneStrideBytes <= 0 {
		laneStrideBytes = elemBytes
	}
	seen := make(map[uint64]struct{}, 8)
	for lane := 0; lane < 32; lane++ {
		a := base + uint64(lane*laneStrideBytes)
		for b := 0; b < elemBytes; b += SectorBytes {
			sec := (a + uint64(b)) / SectorBytes
			if _, ok := seen[sec]; ok {
				continue
			}
			seen[sec] = struct{}{}
			h.Access(sec*SectorBytes, isStore)
		}
	}
}

// Traffic returns accumulated traffic.
func (h *Hierarchy) Traffic() Traffic { return h.t }

// Reset clears caches and traffic.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.t = Traffic{}
}
