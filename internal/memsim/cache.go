// Package memsim models the GPU memory hierarchy. It provides two
// complementary resolution paths for a kernel's global-memory traffic:
//
//   - a sectored set-associative cache simulator (Cache, Hierarchy) that
//     replays address traces, used for kernels whose locality is
//     data-dependent (graph gathers, neighbor-list walks);
//   - an analytical locality model (stream.go) that derives hit rates from a
//     declarative description of access streams, used for dense/regular
//     kernels (GEMM tiles, elementwise, stencils).
//
// Both paths produce the same outcome type (Traffic): sector-granular counts
// of accesses, L1 hits, L2 hits, and DRAM transactions. Ampere-style
// geometry is used throughout: 128-byte cache lines split into four 32-byte
// sectors; DRAM transactions are 32-byte sectors, matching the paper's
// 23.76 GTXN/s peak-bandwidth derivation.
package memsim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/units"
)

// Geometry constants shared by the hierarchy.
const (
	// LineBytes is the cache-line size.
	LineBytes = 128
	// SectorBytes is the sector (and DRAM transaction) size.
	SectorBytes = 32
	// SectorsPerLine is the number of sectors per line.
	SectorsPerLine = LineBytes / SectorBytes
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string // e.g. "L1", "L2"
	SizeBytes  int    // total capacity
	Assoc      int    // ways per set
	Sectored   bool   // if true, fills are sector-granular within a line
	WriteAlloc bool   // if true, stores allocate lines (write-allocate)
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 {
		return fmt.Errorf("memsim: %s: non-positive size %d", c.Name, c.SizeBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("memsim: %s: non-positive associativity %d", c.Name, c.Assoc)
	}
	if c.SizeBytes%(LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("memsim: %s: size %d not divisible by line*assoc=%d",
			c.Name, c.SizeBytes, LineBytes*c.Assoc)
	}
	return nil
}

// numSets returns the power-of-two set count for the config. Non-power-of-two
// counts round down so the set index is a mask; the capacity difference is
// irrelevant at the fidelity of this model.
func (c CacheConfig) numSets() int {
	nSets := c.SizeBytes / (LineBytes * c.Assoc)
	if nSets&(nSets-1) != 0 {
		p := 1
		for p*2 <= nSets {
			p *= 2
		}
		nSets = p
	}
	return nSets
}

// Cache is a set-associative, optionally sectored cache with LRU
// replacement. It is not safe for concurrent use.
//
// Line metadata lives in flat struct-of-arrays slices indexed set*assoc+way
// rather than per-set slices of line structs: the probe loop walks one
// contiguous tag run per access with no pointer chasing, and Reset only has
// to clear the LRU array. A line is valid iff its lastUse entry is nonzero —
// ticks start at 1, so every resident line has lastUse >= 1, and a cleared
// entry doubles as the invalid bit (this folds the valid bitset into the LRU
// counters and keeps the probe to one load per way).
type Cache struct {
	cfg     CacheConfig
	assoc   int
	setMask uint64

	tags    []uint64 // line tag per (set, way); meaningful iff lastUse != 0
	lastUse []uint64 // LRU tick per (set, way); 0 = invalid
	sectors []uint8  // present-sector bitmask per (set, way)

	tick     uint64
	accesses uint64
	hits     uint64
}

// NewCache builds a cache from cfg. It panics on invalid configuration:
// cache geometry is program-defined, so a bad value is a programming error.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.numSets()
	lines := nSets * cfg.Assoc
	return &Cache{
		cfg:     cfg,
		assoc:   cfg.Assoc,
		setMask: uint64(nSets - 1),
		tags:    make([]uint64, lines),
		lastUse: make([]uint64, lines),
		sectors: make([]uint8, lines),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access performs one sector-granular access at byte address addr.
// isStore distinguishes stores (which may or may not allocate).
// It returns true on a hit.
func (c *Cache) Access(addr uint64, isStore bool) bool {
	c.tick++
	c.accesses++
	lineAddr := addr / LineBytes
	sector := uint8(1) << ((addr / SectorBytes) % SectorsPerLine)
	base := int(lineAddr&c.setMask) * c.assoc
	tag := lineAddr

	tags := c.tags[base : base+c.assoc : base+c.assoc]
	use := c.lastUse[base : base+c.assoc : base+c.assoc]

	// Probe.
	for i, t := range tags {
		if use[i] != 0 && t == tag {
			use[i] = c.tick
			if !c.cfg.Sectored || c.sectors[base+i]&sector != 0 {
				c.hits++
				return true
			}
			// Line present but sector missing: sector miss fills the sector.
			c.sectors[base+i] |= sector
			return false
		}
	}
	// Miss. Stores bypass allocation when write-allocate is off.
	if isStore && !c.cfg.WriteAlloc {
		return false
	}
	// Fill into LRU victim (an invalid way, lastUse 0, always loses the
	// strict-< scan, so empty ways fill before any resident line evicts).
	victim := 0
	for i := 1; i < len(use); i++ {
		if use[i] == 0 {
			victim = i
			break
		}
		if use[i] < use[victim] {
			victim = i
		}
	}
	tags[victim] = tag
	use[victim] = c.tick
	if c.cfg.Sectored {
		c.sectors[base+victim] = sector
	} else {
		c.sectors[base+victim] = (1 << SectorsPerLine) - 1
	}
	return false
}

// Stats returns (accesses, hits) since construction or the last Reset.
func (c *Cache) Stats() (accesses, hits uint64) { return c.accesses, c.hits }

// HitRate returns the hit fraction, or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}

// Reset clears contents and counters. Only the LRU array needs wiping:
// lastUse 0 marks a way invalid, and the fill path overwrites its tag and
// sector mask before the way can match again.
func (c *Cache) Reset() {
	for i := range c.lastUse {
		c.lastUse[i] = 0
	}
	c.tick, c.accesses, c.hits = 0, 0, 0
}

// Traffic summarizes resolved global-memory traffic for one kernel launch,
// in 32-byte sector units (units.Txns).
type Traffic struct {
	Sectors     units.Txns // total sector accesses issued to L1
	L1Hits      units.Txns
	L2Hits      units.Txns
	DRAMTxns    units.Txns // sectors served by DRAM (reads + writes)
	DRAMReadTx  units.Txns
	DRAMWriteTx units.Txns
}

// Add accumulates other into t.
func (t *Traffic) Add(o Traffic) {
	t.Sectors += o.Sectors
	t.L1Hits += o.L1Hits
	t.L2Hits += o.L2Hits
	t.DRAMTxns += o.DRAMTxns
	t.DRAMReadTx += o.DRAMReadTx
	t.DRAMWriteTx += o.DRAMWriteTx
}

// L1HitRate returns the fraction of sector accesses hitting in L1.
func (t Traffic) L1HitRate() units.Fraction {
	return units.Ratio(t.L1Hits.Float(), t.Sectors.Float())
}

// L2HitRate returns the fraction of L1 misses hitting in L2.
func (t Traffic) L2HitRate() units.Fraction {
	misses := t.Sectors - t.L1Hits
	return units.Ratio(t.L2Hits.Float(), misses.Float())
}

// Scale returns traffic scaled by f (e.g. to extrapolate a sampled trace to
// the full grid). Counts round to nearest via math.Round: the former
// truncate-after-adding-0.5 idiom agrees with it for the non-negative counts
// stored here, but mis-rounds negative deltas if a future caller composes
// scaled differences, so the explicit rounding is load-bearing.
func (t Traffic) Scale(f float64) Traffic {
	s := func(v units.Txns) units.Txns { return units.Txns(math.Round(v.Float() * f)) }
	return Traffic{
		Sectors:     s(t.Sectors),
		L1Hits:      s(t.L1Hits),
		L2Hits:      s(t.L2Hits),
		DRAMTxns:    s(t.DRAMTxns),
		DRAMReadTx:  s(t.DRAMReadTx),
		DRAMWriteTx: s(t.DRAMWriteTx),
	}
}

// Hierarchy couples a per-SM L1 with a device-wide L2 and replays accesses.
// The single L1 instance stands in for one SM's L1; callers replay a sampled
// subset of warps, which is equivalent to tracing one SM's share of the grid.
//
// A Hierarchy is the mutable replay state for one launch; the immutable
// config/geometry half lives in the CacheConfig pair (see ReplayPool, which
// hands out per-launch instances so concurrent launches never share one).
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	t  Traffic

	scratch []uint64 // warp-coalescing sector buffer, reused across calls
}

// NewHierarchy builds an L1+L2 hierarchy.
func NewHierarchy(l1, l2 CacheConfig) *Hierarchy {
	return &Hierarchy{L1: NewCache(l1), L2: NewCache(l2)}
}

// Access resolves one sector access through L1 then L2, updating traffic.
func (h *Hierarchy) Access(addr uint64, isStore bool) {
	h.t.Sectors++
	if h.L1.Access(addr, isStore) {
		h.t.L1Hits++
		return
	}
	if h.L2.Access(addr, isStore) {
		h.t.L2Hits++
		return
	}
	h.t.DRAMTxns++
	if isStore {
		h.t.DRAMWriteTx++
	} else {
		h.t.DRAMReadTx++
	}
}

// AccessBatch resolves a block of sector addresses in issue order,
// accumulating traffic once per block instead of once per access. The
// resolved traffic is identical to calling Access per element; trace
// emitters should buffer address runs and feed them here.
func (h *Hierarchy) AccessBatch(addrs []uint64, isStore bool) {
	var l1Hits, l2Hits, dram units.Txns
	for _, a := range addrs {
		if h.L1.Access(a, isStore) {
			l1Hits++
			continue
		}
		if h.L2.Access(a, isStore) {
			l2Hits++
			continue
		}
		dram++
	}
	h.t.Sectors += units.Txns(len(addrs))
	h.t.L1Hits += l1Hits
	h.t.L2Hits += l2Hits
	h.t.DRAMTxns += dram
	if isStore {
		h.t.DRAMWriteTx += dram
	} else {
		h.t.DRAMReadTx += dram
	}
}

// AccessWarp issues one coalesced warp access: 32 lanes reading elemBytes
// each from base with the given lane stride (in bytes). Coalescing collapses
// lanes falling in the same sector into one access, exactly like the
// hardware's coalescing stage.
func (h *Hierarchy) AccessWarp(base uint64, laneStrideBytes, elemBytes int, isStore bool) {
	h.AccessWarpBlock([]uint64{base}, laneStrideBytes, elemBytes, isStore)
}

// AccessWarpBlock coalesces and replays a block of warp accesses, one per
// base address, sharing one scratch buffer across the block. Within each
// warp, lanes landing in the same sector collapse to one access in
// first-touch order (a warp touches at most 32*elemBytes/SectorBytes
// sectors, so the dedup is a short linear scan, not a map).
func (h *Hierarchy) AccessWarpBlock(bases []uint64, laneStrideBytes, elemBytes int, isStore bool) {
	if laneStrideBytes <= 0 {
		laneStrideBytes = elemBytes
	}
	for _, base := range bases {
		seen := h.scratch[:0]
		for lane := 0; lane < 32; lane++ {
			a := base + uint64(lane*laneStrideBytes)
			for b := 0; b < elemBytes; b += SectorBytes {
				sec := (a + uint64(b)) / SectorBytes
				dup := false
				for _, s := range seen {
					if s == sec {
						dup = true
						break
					}
				}
				if !dup {
					seen = append(seen, sec)
				}
			}
		}
		for i, sec := range seen {
			seen[i] = sec * SectorBytes
		}
		h.AccessBatch(seen, isStore)
		h.scratch = seen[:0]
	}
}

// Traffic returns accumulated traffic.
func (h *Hierarchy) Traffic() Traffic { return h.t }

// Reset clears caches and traffic.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.t = Traffic{}
}

// Batcher accumulates same-kind (load or store) sector addresses and flushes
// them through Hierarchy.AccessBatch in issue order, so trace emitters get
// block processing without managing buffers themselves. Zero value is not
// usable; construct with NewBatcher. Flush must be called before reading the
// hierarchy's traffic.
type Batcher struct {
	h       *Hierarchy
	isStore bool
	buf     []uint64
}

// batcherChunk bounds a Batcher's buffered addresses (8 KiB per Batcher).
const batcherChunk = 1024

// NewBatcher returns a Batcher feeding h with loads (isStore false) or
// stores (isStore true).
func NewBatcher(h *Hierarchy, isStore bool) *Batcher {
	return &Batcher{h: h, isStore: isStore, buf: make([]uint64, 0, batcherChunk)}
}

// Access buffers one sector access at byte address addr.
func (b *Batcher) Access(addr uint64) {
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
	b.buf = append(b.buf, addr)
}

// Flush replays all buffered accesses.
func (b *Batcher) Flush() {
	b.h.AccessBatch(b.buf, b.isStore)
	b.buf = b.buf[:0]
}

// ReplayPool hands out per-launch Hierarchy replay states for one immutable
// L1/L2 geometry. Splitting the stateful replay half (Hierarchy) from the
// config half (the CacheConfig pair held here) is what lets a shared Device
// run trace replays concurrently: each launch borrows its own state instead
// of serializing on one hierarchy behind a mutex.
// No field here takes a `guarded by` annotation (the mutexguard
// convention): l1/l2 are immutable after construction, and pool is a
// sync.Pool, which synchronizes internally.
type ReplayPool struct {
	l1, l2 CacheConfig
	pool   sync.Pool
}

// NewReplayPool validates the geometry once and returns a pool. It panics on
// invalid configuration, like NewCache.
func NewReplayPool(l1, l2 CacheConfig) *ReplayPool {
	if err := l1.Validate(); err != nil {
		panic(err)
	}
	if err := l2.Validate(); err != nil {
		panic(err)
	}
	return &ReplayPool{l1: l1, l2: l2}
}

// Configs returns the pool's immutable L1 and L2 configurations.
func (p *ReplayPool) Configs() (l1, l2 CacheConfig) { return p.l1, p.l2 }

// Get returns a reset Hierarchy owned by the caller until Put.
func (p *ReplayPool) Get() *Hierarchy {
	if h, ok := p.pool.Get().(*Hierarchy); ok {
		h.Reset()
		return h
	}
	return NewHierarchy(p.l1, p.l2)
}

// Put returns a Hierarchy to the pool for reuse by a later launch.
func (p *ReplayPool) Put(h *Hierarchy) {
	if h != nil {
		p.pool.Put(h)
	}
}
