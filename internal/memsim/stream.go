package memsim

import (
	"fmt"

	"repro/internal/units"
)

// Pattern classifies the spatial shape of a global-memory access stream.
type Pattern uint8

const (
	// Coalesced: consecutive lanes touch consecutive elements; a warp access
	// maps onto the minimal number of 32-byte sectors.
	Coalesced Pattern = iota
	// Strided: lanes touch elements separated by StrideBytes >= SectorBytes,
	// so every element occupies its own sector (wasted bandwidth).
	Strided
	// Random: data-dependent gather/scatter across the footprint (graph
	// neighbor gathers, hash probes); every request is its own sector.
	Random
	// Broadcast: all lanes of a warp read the same address (lookup tables,
	// filter weights); one sector request per warp instruction.
	Broadcast
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case Coalesced:
		return "coalesced"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case Broadcast:
		return "broadcast"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Stream declaratively describes one global-memory access stream of a kernel
// launch for the analytical locality model.
type Stream struct {
	// Name identifies the stream in diagnostics ("A-tile", "edge-list", ...).
	Name string
	// FootprintBytes is the number of unique bytes the stream touches.
	FootprintBytes uint64
	// AccessBytes is the total bytes requested; AccessBytes/FootprintBytes
	// is the temporal reuse factor (tiled GEMM reads each A element many
	// times; a streaming copy reads each byte once).
	AccessBytes uint64
	// ElemBytes is the per-lane element size (4 for FP32).
	ElemBytes int
	// Pattern is the spatial shape.
	Pattern Pattern
	// Store marks the stream as writes.
	Store bool
	// Partitioned marks footprints that are divided across SMs (the usual
	// data-parallel case); unset means every SM touches the whole footprint
	// (shared weights, lookup tables).
	Partitioned bool
}

// Validate reports obviously inconsistent stream descriptions.
func (s Stream) Validate() error {
	if s.ElemBytes <= 0 {
		return fmt.Errorf("memsim: stream %q: elem bytes %d", s.Name, s.ElemBytes)
	}
	// Random and Broadcast streams may sample an array sparsely, so their
	// access volume can be below the addressable footprint; dense patterns
	// must sweep their footprint at least once.
	if s.AccessBytes < s.FootprintBytes && s.Pattern != Broadcast && s.Pattern != Random {
		return fmt.Errorf("memsim: stream %q: access bytes %d < footprint %d",
			s.Name, s.AccessBytes, s.FootprintBytes)
	}
	return nil
}

// LocalityModel resolves declarative streams against cache capacities.
type LocalityModel struct {
	NumSMs       int
	L1Bytes      int
	L2Bytes      int
	L1Efficiency float64 // usable fraction of L1 capacity (conflicts, other data)
	L2Efficiency float64
}

// NewLocalityModel returns a model with typical efficiency factors.
func NewLocalityModel(numSMs, l1Bytes, l2Bytes int) *LocalityModel {
	return &LocalityModel{
		NumSMs:       numSMs,
		L1Bytes:      l1Bytes,
		L2Bytes:      l2Bytes,
		L1Efficiency: 0.5,
		L2Efficiency: 0.75,
	}
}

// sectorRequests returns the number of 32-byte sector requests the stream
// issues to L1 after warp-level coalescing.
func sectorRequests(s Stream) uint64 {
	elems := s.AccessBytes / uint64(s.ElemBytes)
	switch s.Pattern {
	case Coalesced:
		n := s.AccessBytes / SectorBytes
		if n == 0 && s.AccessBytes > 0 {
			n = 1
		}
		return n
	case Strided, Random:
		// One sector request per element: no coalescing across lanes.
		return elems
	case Broadcast:
		// One request per warp instruction (32 lanes share it).
		n := elems / 32
		if n == 0 && elems > 0 {
			n = 1
		}
		return n
	}
	return elems
}

// uniqueSectors returns the stream's unique-sector footprint.
func uniqueSectors(s Stream) uint64 {
	switch s.Pattern {
	case Coalesced, Broadcast:
		n := s.FootprintBytes / SectorBytes
		if n == 0 && s.FootprintBytes > 0 {
			n = 1
		}
		return n
	case Strided:
		// Every element sits in its own sector.
		return s.FootprintBytes / uint64(s.ElemBytes)
	case Random:
		// Gathers land on footprint/32 distinct sectors once the footprint
		// is covered, but sparse gathers may touch fewer.
		bySectors := s.FootprintBytes / SectorBytes
		if bySectors == 0 {
			bySectors = 1
		}
		req := sectorRequests(s)
		if req < bySectors {
			return req
		}
		return bySectors
	}
	return s.FootprintBytes / SectorBytes
}

// Resolve computes the Traffic for one stream.
func (m *LocalityModel) Resolve(s Stream) (Traffic, error) {
	if err := s.Validate(); err != nil {
		return Traffic{}, err
	}
	req := sectorRequests(s)
	uniq := uniqueSectors(s)
	if uniq > req {
		uniq = req
	}
	reuseHits := req - uniq // accesses beyond the cold footprint sweep

	l1Cap := uint64(float64(m.L1Bytes) * m.L1Efficiency)
	l2Cap := uint64(float64(m.L2Bytes) * m.L2Efficiency)

	l1Footprint := s.FootprintBytes
	if s.Partitioned && m.NumSMs > 0 {
		l1Footprint /= uint64(m.NumSMs)
	}

	var t Traffic
	t.Sectors = units.Txns(req)
	switch {
	case l1Footprint <= l1Cap:
		// Working set is L1-resident: all reuse hits in L1, cold misses go
		// down the hierarchy (and hit L2 only if the full footprint is
		// L2-resident across launches; within a launch they are cold).
		t.L1Hits = units.Txns(reuseHits)
		if s.FootprintBytes <= l2Cap {
			// Fraction of cold misses served by a warm L2 (producer/consumer
			// reuse across thread blocks within the launch).
			t.L2Hits = units.Txns(uniq / 2)
		}
		t.DRAMTxns = t.Sectors - t.L1Hits - t.L2Hits
	case s.FootprintBytes <= l2Cap:
		// L2-resident: reuse hits in L2, plus short-window L1 locality.
		shortL1 := reuseHits / 8
		t.L1Hits = units.Txns(shortL1)
		t.L2Hits = units.Txns(reuseHits - shortL1)
		t.DRAMTxns = units.Txns(uniq)
	default:
		// Streaming through DRAM. Short-window reuse still catches a slice
		// of accesses in L1/L2 (register-tiled GEMM re-reads within a CTA).
		shortL1 := reuseHits / 16
		shortL2 := reuseHits / 4
		if shortL1+shortL2 > reuseHits {
			shortL2 = reuseHits - shortL1
		}
		t.L1Hits = units.Txns(shortL1)
		t.L2Hits = units.Txns(shortL2)
		t.DRAMTxns = units.Txns(req - shortL1 - shortL2)
	}
	if s.Store {
		t.DRAMWriteTx = t.DRAMTxns
	} else {
		t.DRAMReadTx = t.DRAMTxns
	}
	return t, nil
}

// ResolveAll resolves a set of streams and accumulates their traffic.
func (m *LocalityModel) ResolveAll(streams []Stream) (Traffic, error) {
	var total Traffic
	for _, s := range streams {
		t, err := m.Resolve(s)
		if err != nil {
			return Traffic{}, err
		}
		total.Add(t)
	}
	return total, nil
}
