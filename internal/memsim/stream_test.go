package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func model() *LocalityModel {
	return NewLocalityModel(68, 128<<10, 5<<20)
}

func TestStreamValidate(t *testing.T) {
	ok := Stream{Name: "s", FootprintBytes: 100, AccessBytes: 200, ElemBytes: 4}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.ElemBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero elem bytes should fail")
	}
	bad = ok
	bad.AccessBytes = 50
	if err := bad.Validate(); err == nil {
		t.Error("access < footprint should fail for non-broadcast")
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Coalesced: "coalesced", Strided: "strided", Random: "random", Broadcast: "broadcast",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestCoalescedStreamingGoesToDRAM(t *testing.T) {
	// 1 GB coalesced single-pass stream: fits nowhere, all sectors to DRAM.
	m := model()
	tr, err := m.Resolve(Stream{
		Name: "stream", FootprintBytes: 1 << 30, AccessBytes: 1 << 30,
		ElemBytes: 4, Pattern: Coalesced, Partitioned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSectors := units.Txns(1<<30) / SectorBytes
	if tr.Sectors != wantSectors {
		t.Errorf("sectors = %d, want %d", tr.Sectors, wantSectors)
	}
	if float64(tr.DRAMTxns) < 0.95*float64(wantSectors) {
		t.Errorf("DRAM txns = %d, want ~%d (streaming)", tr.DRAMTxns, wantSectors)
	}
}

func TestL1ResidentReuseHitsL1(t *testing.T) {
	m := model()
	// 32 KB per-SM footprint read 10x: all reuse should hit L1.
	foot := uint64(32 << 10 * 68) // partitioned across 68 SMs -> 32 KB/SM
	tr, err := m.Resolve(Stream{
		Name: "tile", FootprintBytes: foot, AccessBytes: 10 * foot,
		ElemBytes: 4, Pattern: Coalesced, Partitioned: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.L1HitRate() < 0.85 {
		t.Errorf("L1 hit rate = %g, want ~0.9 for resident reuse", tr.L1HitRate())
	}
}

func TestL2ResidentReuseHitsL2(t *testing.T) {
	m := model()
	// 2 MB footprint read 8x: too big for L1 (even partitioned at ~30 KB/SM
	// it fits L1 — force non-partitioned), fits L2.
	foot := uint64(2 << 20)
	tr, err := m.Resolve(Stream{
		Name: "l2res", FootprintBytes: foot, AccessBytes: 8 * foot,
		ElemBytes: 4, Pattern: Coalesced, Partitioned: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.L2Hits == 0 {
		t.Error("expected L2 hits for L2-resident reuse")
	}
	// DRAM should be roughly the cold footprint.
	cold := units.Txns(foot / SectorBytes)
	if tr.DRAMTxns > cold*2 {
		t.Errorf("DRAM txns = %d, want ~%d", tr.DRAMTxns, cold)
	}
}

func TestStridedWastesBandwidth(t *testing.T) {
	m := model()
	foot := uint64(64 << 20)
	coal, err := m.Resolve(Stream{Name: "c", FootprintBytes: foot, AccessBytes: foot, ElemBytes: 4, Pattern: Coalesced})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := m.Resolve(Stream{Name: "s", FootprintBytes: foot, AccessBytes: foot, ElemBytes: 4, Pattern: Strided})
	if err != nil {
		t.Fatal(err)
	}
	if strided.DRAMTxns <= coal.DRAMTxns {
		t.Errorf("strided DRAM %d should exceed coalesced %d", strided.DRAMTxns, coal.DRAMTxns)
	}
	// 4-byte elements in 32-byte sectors: 8x waste.
	ratio := float64(strided.DRAMTxns) / float64(coal.DRAMTxns)
	if ratio < 6 || ratio > 9 {
		t.Errorf("waste ratio = %g, want ~8", ratio)
	}
}

func TestBroadcastIsCheap(t *testing.T) {
	m := model()
	tr, err := m.Resolve(Stream{
		Name: "lut", FootprintBytes: 4 << 10, AccessBytes: 1 << 26,
		ElemBytes: 4, Pattern: Broadcast,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.L1HitRate() < 0.9 {
		t.Errorf("broadcast L1 hit rate = %g, want ~1", tr.L1HitRate())
	}
}

func TestStoreStreamCountsWrites(t *testing.T) {
	m := model()
	tr, err := m.Resolve(Stream{
		Name: "out", FootprintBytes: 1 << 26, AccessBytes: 1 << 26,
		ElemBytes: 4, Pattern: Coalesced, Store: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DRAMWriteTx == 0 || tr.DRAMReadTx != 0 {
		t.Errorf("store stream traffic = %+v", tr)
	}
}

func TestResolveAllAccumulates(t *testing.T) {
	m := model()
	s := Stream{Name: "a", FootprintBytes: 1 << 20, AccessBytes: 1 << 20, ElemBytes: 4, Pattern: Coalesced}
	one, err := m.Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	two, err := m.ResolveAll([]Stream{s, s})
	if err != nil {
		t.Fatal(err)
	}
	if two.Sectors != 2*one.Sectors {
		t.Errorf("ResolveAll sectors = %d, want %d", two.Sectors, 2*one.Sectors)
	}
	if _, err := m.ResolveAll([]Stream{{Name: "bad"}}); err == nil {
		t.Error("invalid stream should propagate error")
	}
}

// Property: traffic conservation — sectors == L1 hits + L2 hits + DRAM txns
// for every valid stream resolution.
func TestResolveConservation(t *testing.T) {
	m := model()
	f := func(footKB uint16, reuse uint8, pat uint8, part bool) bool {
		foot := uint64(footKB%2048+1) * 1024
		r := uint64(reuse%16 + 1)
		s := Stream{
			Name: "q", FootprintBytes: foot, AccessBytes: foot * r,
			ElemBytes: 4, Pattern: Pattern(pat % 4), Partitioned: part,
		}
		if s.Pattern == Broadcast {
			s.AccessBytes = foot * 32
		}
		tr, err := m.Resolve(s)
		if err != nil {
			return false
		}
		return tr.Sectors == tr.L1Hits+tr.L2Hits+tr.DRAMTxns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: more reuse never lowers the hit fraction for an L2-resident
// footprint.
func TestReuseMonotonicity(t *testing.T) {
	m := model()
	foot := uint64(1 << 20)
	prevHits := -1.0
	for reuse := uint64(1); reuse <= 16; reuse *= 2 {
		tr, err := m.Resolve(Stream{
			Name: "mono", FootprintBytes: foot, AccessBytes: foot * reuse,
			ElemBytes: 4, Pattern: Coalesced,
		})
		if err != nil {
			t.Fatal(err)
		}
		hitFrac := float64(tr.L1Hits+tr.L2Hits) / float64(tr.Sectors)
		if hitFrac < prevHits-1e-9 {
			t.Errorf("hit fraction decreased with reuse %d: %g -> %g", reuse, prevHits, hitFrac)
		}
		prevHits = hitFrac
	}
}
