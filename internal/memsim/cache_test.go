package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() CacheConfig {
	return CacheConfig{Name: "T", SizeBytes: 8 << 10, Assoc: 4, Sectored: true, WriteAlloc: true}
}

func TestCacheConfigValidate(t *testing.T) {
	if err := smallCache().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallCache()
	bad.SizeBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero size should be invalid")
	}
	bad = smallCache()
	bad.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero assoc should be invalid")
	}
	bad = smallCache()
	bad.SizeBytes = 1000 // not divisible by line*assoc
	if err := bad.Validate(); err == nil {
		t.Error("non-divisible size should be invalid")
	}
}

func TestNewCachePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCache(CacheConfig{Name: "bad"})
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(smallCache())
	if c.Access(0, false) {
		t.Error("cold access should miss")
	}
	if !c.Access(0, false) {
		t.Error("second access should hit")
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", c.HitRate())
	}
}

func TestCacheSectoredFill(t *testing.T) {
	c := NewCache(smallCache())
	c.Access(0, false) // fills sector 0 of line 0
	// Different sector of the same line: must be a sector miss.
	if c.Access(64, false) {
		t.Error("different sector of same line should miss in a sectored cache")
	}
	// Both sectors now present.
	if !c.Access(0, false) || !c.Access(64, false) {
		t.Error("both sectors should now hit")
	}
}

func TestCacheUnsectoredFillsWholeLine(t *testing.T) {
	cfg := smallCache()
	cfg.Sectored = false
	c := NewCache(cfg)
	c.Access(0, false)
	if !c.Access(96, false) {
		t.Error("non-sectored cache should fill the whole line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4-way cache: 5 distinct lines mapping to the same set evict the LRU.
	cfg := smallCache()
	c := NewCache(cfg)
	nSets := cfg.SizeBytes / (LineBytes * cfg.Assoc) // 16 sets
	setStride := uint64(nSets * LineBytes)
	for i := 0; i < 5; i++ {
		c.Access(uint64(i)*setStride, false)
	}
	if c.Access(0, false) {
		t.Error("line 0 should have been evicted (LRU)")
	}
	// Line 1 was refreshed least recently after the wrap: line 1..4 + new 0
	// means line 1 is LRU now.
	if c.Access(4*setStride, false) != true {
		t.Error("line 4 should still be resident")
	}
}

func TestCacheWriteNoAllocate(t *testing.T) {
	cfg := smallCache()
	cfg.WriteAlloc = false
	c := NewCache(cfg)
	if c.Access(0, true) {
		t.Error("store should miss")
	}
	if c.Access(0, false) {
		t.Error("store must not have allocated")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(smallCache())
	c.Access(0, false)
	c.Access(0, false)
	c.Reset()
	acc, hits := c.Stats()
	if acc != 0 || hits != 0 {
		t.Errorf("after reset stats = (%d,%d)", acc, hits)
	}
	if c.Access(0, false) {
		t.Error("after reset contents should be cold")
	}
	if c.HitRate() != 0 {
		t.Error("hit rate of single miss should be 0")
	}
}

func TestCacheNonPowerOfTwoSetsRoundsDown(t *testing.T) {
	// 3-way, 384 lines -> 128 sets... pick sizes forcing non-power-of-two.
	cfg := CacheConfig{Name: "npot", SizeBytes: 3 * 128 * 100, Assoc: 3, Sectored: false, WriteAlloc: true}
	c := NewCache(cfg) // must not panic; sets rounded to 64
	if c.Access(0, false) {
		t.Error("cold miss expected")
	}
	if !c.Access(0, false) {
		t.Error("hit expected")
	}
}

func TestHierarchyTrafficAccounting(t *testing.T) {
	h := NewHierarchy(
		CacheConfig{Name: "L1", SizeBytes: 4 << 10, Assoc: 4, Sectored: true},
		CacheConfig{Name: "L2", SizeBytes: 64 << 10, Assoc: 8, Sectored: true, WriteAlloc: true},
	)
	// Cold read: miss everywhere -> one DRAM read transaction.
	h.Access(0, false)
	tr := h.Traffic()
	if tr.Sectors != 1 || tr.DRAMTxns != 1 || tr.DRAMReadTx != 1 {
		t.Errorf("cold access traffic = %+v", tr)
	}
	// Re-access: L1 hit.
	h.Access(0, false)
	tr = h.Traffic()
	if tr.L1Hits != 1 {
		t.Errorf("expected 1 L1 hit, got %+v", tr)
	}
	if tr.L1HitRate() != 0.5 {
		t.Errorf("L1 hit rate = %g", tr.L1HitRate())
	}
}

func TestHierarchyL2CatchesL1Evictions(t *testing.T) {
	h := NewHierarchy(
		CacheConfig{Name: "L1", SizeBytes: 1 << 10, Assoc: 2, Sectored: true},
		CacheConfig{Name: "L2", SizeBytes: 1 << 20, Assoc: 8, Sectored: true, WriteAlloc: true},
	)
	// Touch a 16 KB footprint twice: too big for L1, fits L2.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 16<<10; a += SectorBytes {
			h.Access(a, false)
		}
	}
	tr := h.Traffic()
	if tr.L2Hits == 0 {
		t.Error("second pass should hit in L2")
	}
	if tr.L2HitRate() < 0.4 {
		t.Errorf("L2 hit rate = %g, want ~0.5", tr.L2HitRate())
	}
	// DRAM transactions should be roughly the cold footprint (512 sectors).
	if tr.DRAMTxns < 480 || tr.DRAMTxns > 560 {
		t.Errorf("DRAM txns = %d, want ~512", tr.DRAMTxns)
	}
}

func TestAccessWarpCoalescing(t *testing.T) {
	h := NewHierarchy(smallCache(), CacheConfig{Name: "L2", SizeBytes: 64 << 10, Assoc: 8, Sectored: true, WriteAlloc: true})
	// Fully coalesced warp read of 4-byte elements: 32 lanes x 4 B = 128 B
	// = 4 sectors.
	h.AccessWarp(0, 4, 4, false)
	if got := h.Traffic().Sectors; got != 4 {
		t.Errorf("coalesced warp = %d sectors, want 4", got)
	}
	h.Reset()
	// Strided by 128 B: every lane its own sector -> 32 sectors.
	h.AccessWarp(0, 128, 4, false)
	if got := h.Traffic().Sectors; got != 32 {
		t.Errorf("strided warp = %d sectors, want 32", got)
	}
	h.Reset()
	// Broadcast (stride 0 defaults to elem size 4 contiguous): lanes share
	// sectors.
	h.AccessWarp(256, 0, 4, false)
	if got := h.Traffic().Sectors; got != 4 {
		t.Errorf("default-stride warp = %d sectors, want 4", got)
	}
}

func TestTrafficScaleAndAdd(t *testing.T) {
	a := Traffic{Sectors: 10, L1Hits: 4, L2Hits: 2, DRAMTxns: 4, DRAMReadTx: 3, DRAMWriteTx: 1}
	b := a.Scale(2)
	if b.Sectors != 20 || b.DRAMTxns != 8 {
		t.Errorf("scale: %+v", b)
	}
	a.Add(b)
	if a.Sectors != 30 || a.DRAMWriteTx != 3 {
		t.Errorf("add: %+v", a)
	}
}

func TestTrafficRatesEmpty(t *testing.T) {
	var tr Traffic
	if tr.L1HitRate() != 0 || tr.L2HitRate() != 0 {
		t.Error("empty traffic rates should be 0")
	}
	full := Traffic{Sectors: 5, L1Hits: 5}
	if full.L2HitRate() != 0 {
		t.Error("no L1 misses -> L2 hit rate 0")
	}
}

// Property: hit counters never exceed accesses, and replaying any trace
// twice on a big-enough cache yields at least the first-pass miss count as
// hits on the second pass.
func TestCacheInvariantHitsBounded(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCache(smallCache())
		for i := 0; i < int(n); i++ {
			c.Access(uint64(r.Intn(1<<14)), r.Intn(4) == 0)
		}
		acc, hits := c.Stats()
		return hits <= acc && acc == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyDRAMConservation(t *testing.T) {
	// Property: sectors = L1 hits + L2 hits + DRAM txns for loads on a
	// write-allocate hierarchy.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHierarchy(
			CacheConfig{Name: "L1", SizeBytes: 2 << 10, Assoc: 2, Sectored: true, WriteAlloc: true},
			CacheConfig{Name: "L2", SizeBytes: 32 << 10, Assoc: 4, Sectored: true, WriteAlloc: true},
		)
		for i := 0; i < int(n); i++ {
			h.Access(uint64(r.Intn(1<<16)), false)
		}
		tr := h.Traffic()
		return tr.Sectors == tr.L1Hits+tr.L2Hits+tr.DRAMTxns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
