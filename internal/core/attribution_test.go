package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/telemetry"
)

// TestAttributeStudyIdentity — the attribution tree over a study of cheap
// workloads passes the sum-to-1 identity at every node, carries the
// study's totals at the root, and orders workloads in study order.
func TestAttributeStudyIdentity(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(6)
	st, err := NewStudyWith(cfg, StudyOptions{Workers: 1}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	root := Attribute(st)
	if v := telemetry.CheckAttribution(root, 0); len(v) != 0 {
		t.Fatalf("attribution identity violated: %v", v)
	}
	if root.Level != telemetry.LevelStudy || root.Name != cfg.Name {
		t.Errorf("root = %s %q, want study %q", root.Level, root.Name, cfg.Name)
	}
	if len(root.Children) != len(ws) {
		t.Fatalf("root has %d workloads, want %d", len(root.Children), len(ws))
	}
	var wantTime, gotLaunches float64
	for i, p := range st.Profiles {
		wantTime += p.TotalTime.Float()
		if root.Children[i].Name != p.Abbr() {
			t.Errorf("child %d = %q, want %q (study order)", i, root.Children[i].Name, p.Abbr())
		}
		for _, k := range p.Kernels {
			gotLaunches += float64(k.Invocations)
		}
	}
	if math.Abs(root.Time.Float()-wantTime) > 1e-9*wantTime {
		t.Errorf("root time = %g s, want %g s", root.Time.Float(), wantTime)
	}
	if float64(root.Launches) != gotLaunches {
		t.Errorf("root launches = %d, want %g", root.Launches, gotLaunches)
	}
}

// TestAttributeFullCatalogIdentity — the acceptance criterion at study
// scope: across every registered workload, the shares sum to 1 within
// 1e-9 at every node of the tree.
func TestAttributeFullCatalogIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the full catalog")
	}
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStudyWith(gpu.RTX3080(), StudyOptions{}, cat.All()...)
	if err != nil {
		t.Fatal(err)
	}
	if v := telemetry.CheckAttribution(Attribute(st), 0); len(v) != 0 {
		t.Fatalf("attribution identity violated over the catalog: %v", v)
	}
}

// TestAttributeCachedEqualsLive — a cache-served study must attribute
// identically to the live-simulated one: the tree derives only from
// fields that round-trip through the profile cache bit for bit.
func TestAttributeCachedEqualsLive(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(4)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewStudyWith(cfg, StudyOptions{Workers: 1, Cache: cache}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewStudyWith(cfg, StudyOptions{Workers: 1, Cache: cache}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Attribute(cold), Attribute(warm)) {
		t.Error("cache-served attribution tree differs from the live one")
	}
}

// TestAttributeSessionLaunchDepth — the deep builder descends to launch
// leaves: one leaf per launch, phase rollups matching their children, and
// the identity holding at every level.
func TestAttributeSessionLaunchDepth(t *testing.T) {
	cfg := gpu.RTX3080()
	w := tinyWorkload{abbr: "DW", launches: 5}
	dev, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := profiler.NewSession(dev)
	if err := w.Run(sess); err != nil {
		t.Fatal(err)
	}
	root := AttributeSession(w.Abbr(), sess)
	if v := telemetry.CheckAttribution(root, 0); len(v) != 0 {
		t.Fatalf("attribution identity violated: %v", v)
	}
	if root.Launches != sess.LaunchCount() {
		t.Errorf("root launches = %d, want %d", root.Launches, sess.LaunchCount())
	}
	var leaves int
	for _, phase := range root.Children {
		if phase.Level != telemetry.LevelPhase {
			t.Errorf("child level = %s, want phase", phase.Level)
		}
		for _, leaf := range phase.Children {
			if leaf.Level != telemetry.LevelLaunch || leaf.Launches != 1 {
				t.Errorf("leaf %q: level %s, %d launches", leaf.Name, leaf.Level, leaf.Launches)
			}
			leaves++
		}
	}
	if leaves != sess.LaunchCount() {
		t.Errorf("tree has %d launch leaves, want %d", leaves, sess.LaunchCount())
	}
	// Phases must come out in dominance order, mirroring Session.Kernels.
	for i := 1; i < len(root.Children); i++ {
		a, b := root.Children[i-1], root.Children[i]
		if a.Time < b.Time {
			t.Errorf("phases out of dominance order: %q (%g s) before %q (%g s)",
				a.Name, a.Time.Float(), b.Name, b.Time.Float())
		}
	}
}
