package core

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/roofline"
	"repro/internal/suites/parboil"
	"repro/internal/units"
	"repro/internal/workloads"
)

// quickStudy characterizes a small, fast subset once per test binary.
var cachedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	// A fast mixed subset: molecular + graph + two baselines.
	var ws []workloads.Workload
	for _, abbr := range []string{"GMS", "LMC", "GRU", "pb-sgemm", "pb-spmv", "rd-kmeans", "rd-lud"} {
		w, err := cat.Lookup(abbr)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	st, err := NewStudy(gpu.RTX3080(), ws...)
	if err != nil {
		t.Fatal(err)
	}
	cachedStudy = st
	return st
}

func TestDefaultCatalog(t *testing.T) {
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 42 { // 10 Cactus + 11 Parboil + 18 Rodinia + 3 Tango
		t.Errorf("catalog has %d workloads, want 42", cat.Len())
	}
	if got := len(cat.BySuite(workloads.Cactus)); got != 10 {
		t.Errorf("cactus workloads = %d, want 10 (Table I)", got)
	}
	if _, err := cat.Lookup("GMS"); err != nil {
		t.Error(err)
	}
	if _, err := cat.Lookup("nope"); err == nil {
		t.Error("unknown abbr should fail")
	}
	// Duplicate protection.
	if _, err := workloads.NewCatalog(CactusWorkloads()[0], CactusWorkloads()[0]); err == nil {
		t.Error("duplicate abbreviation should fail")
	}
}

func TestProfileBasics(t *testing.T) {
	st := study(t)
	p, err := st.Profile("GMS")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kernels) != 9 {
		t.Errorf("GMS kernels = %d, want 9 (Table I)", len(p.Kernels))
	}
	// Shares sum to ~1 and are sorted descending.
	var sum units.Fraction
	for i, k := range p.Kernels {
		sum += k.TimeShare
		if i > 0 && k.TimeShare > p.Kernels[i-1].TimeShare+1e-12 {
			t.Error("kernels not sorted by time share")
		}
	}
	if math.Abs(sum.Float()-1) > 1e-9 {
		t.Errorf("shares sum to %g", sum)
	}
	if p.KernelsFor(0.7) > 4 {
		t.Errorf("GMS needs %d kernels for 70%%, want <= 4 (paper: 3)", p.KernelsFor(0.7))
	}
	cum := p.CumulativeShares(0)
	if cum[len(cum)-1] < 0.999 {
		t.Error("cumulative distribution must reach 1")
	}
	if len(p.CumulativeShares(3)) != 3 {
		t.Error("maxK truncation")
	}
	if p.WeightedAvgInstsPerKernel() <= 0 {
		t.Error("weighted avg insts")
	}
	if got := len(p.DominantKernels(0.7)); got != p.KernelsFor(0.7) {
		t.Errorf("dominant set size %d != KernelsFor %d", got, p.KernelsFor(0.7))
	}
}

func TestAggregatePointsOnRoofline(t *testing.T) {
	st := study(t)
	model := roofline.ForDevice(st.Device)
	for _, p := range st.Profiles {
		pt := p.AggregatePoint()
		if err := model.Validate(pt); err != nil {
			t.Errorf("%s: %v", p.Abbr(), err)
		}
		for _, kp := range p.KernelPoints() {
			if err := model.Validate(kp); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
	// GMS is the compute-intensive Cactus workload (Fig. 5).
	gms, _ := st.Profile("GMS")
	if model.Classify(gms.AggII) != roofline.ComputeIntensive {
		t.Errorf("GMS aggregate II = %.2f, want compute-intensive", gms.AggII)
	}
	// GRU is memory-intensive with the lowest performance.
	gru, _ := st.Profile("GRU")
	if model.Classify(gru.AggII) != roofline.MemoryIntensive {
		t.Errorf("GRU aggregate II = %.2f, want memory-intensive", gru.AggII)
	}
	for _, p := range st.Profiles {
		if p.Abbr() != "GRU" && p.AggGIPS < gru.AggGIPS {
			t.Errorf("%s (%.2f GIPS) below GRU (%.2f) — GRU should be slowest", p.Abbr(), p.AggGIPS, gru.AggGIPS)
		}
	}
}

func TestDominantObservationsAndCorrelation(t *testing.T) {
	st := study(t)
	obs := DominantObservations(st.Profiles, 0.7)
	if len(obs) < 7 {
		t.Fatalf("only %d dominant observations", len(obs))
	}
	res, err := Correlate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Abs) != 4 || len(res.Abs[0]) != 11 {
		t.Fatalf("heatmap shape %dx%d, want 4x11", len(res.Abs), len(res.Abs[0]))
	}
	for _, row := range res.Abs {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("|PCC| = %g out of [0,1]", v)
			}
		}
	}
	if res.StrongOrWeakCount() == 0 {
		t.Error("no correlated pairs at all is implausible")
	}
	if _, err := Correlate(obs[:2]); err == nil {
		t.Error("too few observations should fail")
	}
}

func TestClusterPipeline(t *testing.T) {
	st := study(t)
	obs := DominantObservations(st.Profiles, 0.7)
	model := roofline.ForDevice(st.Device)
	k := 4
	ca, err := Cluster(obs, model, 6, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Assign) != len(obs) {
		t.Fatal("assignment length")
	}
	ids := map[int]bool{}
	for _, c := range ca.Assign {
		if c < 0 || c >= k {
			t.Fatalf("cluster id %d out of range", c)
		}
		ids[c] = true
	}
	if len(ids) != k {
		t.Errorf("%d distinct clusters, want %d", len(ids), k)
	}
	// Coverage utilities are consistent.
	covered := ca.ClustersCoveredBy(workloads.Cactus)
	if covered < 1 || covered > k {
		t.Errorf("cactus covers %d clusters", covered)
	}
	for _, s := range []workloads.Suite{workloads.Cactus, workloads.Parboil, workloads.Rodinia} {
		shares := ca.SuiteShareByCluster(s)
		if len(shares) != k {
			t.Fatal("share vector length")
		}
		for _, f := range shares {
			if f < 0 || f > 1 {
				t.Fatalf("share %g", f)
			}
		}
	}
	if got := ca.ClustersOfWorkload("GMS"); len(got) == 0 {
		t.Error("GMS has no clusters")
	}
	if _, err := Cluster(obs[:2], model, 4, 8); err == nil {
		t.Error("too few observations for k should fail")
	}
}

func TestAmdahlExample(t *testing.T) {
	// The paper's Section II-C example: shares {0.25, 0.2, 0.2, 0.2, 0.15},
	// 20% target speedup => the dominant kernel alone must double.
	dom, uni, err := AmdahlExample([]float64{0.25, 0.2, 0.2, 0.2, 0.15}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dom-3) > 0.01 {
		// 1/1.2 - 0.75 = 0.0833...; 0.25/0.08333 = 3.
		t.Errorf("dominant-kernel speedup = %g, want 3.0", dom)
	}
	if uni != 1.2 {
		t.Errorf("uniform speedup = %g", uni)
	}
	// Single-kernel case: kernel speedup equals target.
	dom, _, err = AmdahlExample([]float64{1}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dom-1.2) > 1e-9 {
		t.Errorf("single-kernel speedup = %g, want 1.2", dom)
	}
	// Infeasible: dominant share too small for the target.
	dom, _, err = AmdahlExample([]float64{0.4, 0.3, 0.3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dom, 1) {
		t.Errorf("infeasible target should need infinite speedup, got %g", dom)
	}
	if _, _, err := AmdahlExample([]float64{0.5, 0.4}, 1.2); err == nil {
		t.Error("shares not summing to 1 should fail")
	}
	if _, _, err := AmdahlExample(nil, 1.2); err == nil {
		t.Error("empty shares should fail")
	}
}

func TestStudyLookupErrors(t *testing.T) {
	st := study(t)
	if _, err := st.Profile("missing"); err == nil {
		t.Error("missing profile should fail")
	}
	if got := len(st.BySuite(workloads.Parboil)); got != 2 {
		t.Errorf("parboil profiles in study = %d, want 2", got)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	bad := gpu.DeviceConfig{}
	if _, err := Characterize(parboil.All()[0], bad); err == nil {
		t.Error("invalid device should fail")
	}
}
