package core

import (
	"fmt"
	"sort"

	"repro/internal/roofline"
	"repro/internal/stats"
)

// Representative is one selected kernel with its cluster context —
// the output of workload subsetting.
type Representative struct {
	Observation
	Cluster int
	// Weight is the cluster's share of all dominant kernels: a subset user
	// weighs the representative's measurements by this factor.
	Weight float64
}

// SelectRepresentatives picks one medoid kernel per cluster — the
// workload-subsetting methodology the paper cites ([2], [17], [49], [54]):
// cluster the dominant kernels in the FAMD space, then keep the kernel
// closest to each cluster centroid as the cluster's representative.
func SelectRepresentatives(obs []Observation, model roofline.Model, k int) ([]Representative, error) {
	ca, err := Cluster(obs, model, 6, k)
	if err != nil {
		return nil, err
	}
	coords := ca.FAMD.Coords
	dim := len(coords[0])

	// Centroids per cluster.
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for i := range centroids {
		centroids[i] = make([]float64, dim)
	}
	for i, c := range ca.Assign {
		counts[c]++
		for d := 0; d < dim; d++ {
			centroids[c][d] += coords[i][d]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			return nil, fmt.Errorf("core: empty cluster %d", c)
		}
		for d := 0; d < dim; d++ {
			centroids[c][d] /= float64(counts[c])
		}
	}

	// Medoid = member closest to the centroid.
	best := make([]int, k)
	bestD := make([]float64, k)
	for c := range best {
		best[c] = -1
	}
	for i, c := range ca.Assign {
		d := stats.EuclideanDist(coords[i], centroids[c])
		if best[c] == -1 || d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}

	out := make([]Representative, 0, k)
	for c := 0; c < k; c++ {
		out = append(out, Representative{
			Observation: obs[best[c]],
			Cluster:     c,
			Weight:      float64(counts[c]) / float64(len(obs)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out, nil
}

// DeviceComparison records one workload's aggregate behavior on two devices
// — the cross-platform sensitivity study the paper lists as future work.
type DeviceComparison struct {
	Abbr string
	// A and B are the aggregate roofline points on the two devices.
	A, B roofline.Point
	// SideStable reports whether the workload stays on the same side of
	// each device's own elbow.
	SideStable bool
	// Speedup is device A's aggregate GIPS over device B's.
	Speedup float64
}

// CompareDevices characterizes the same workloads on two device models and
// reports per-workload placement stability and speedups.
func CompareDevices(a, b *Study) ([]DeviceComparison, error) {
	ma, mb := roofline.ForDevice(a.Device), roofline.ForDevice(b.Device)
	var out []DeviceComparison
	for _, pa := range a.Profiles {
		pb, err := b.Profile(pa.Abbr())
		if err != nil {
			return nil, err
		}
		cmpRec := DeviceComparison{
			Abbr: pa.Abbr(),
			A:    pa.AggregatePoint(),
			B:    pb.AggregatePoint(),
		}
		cmpRec.SideStable = ma.Classify(pa.AggII) == mb.Classify(pb.AggII)
		if pb.AggGIPS > 0 {
			cmpRec.Speedup = pa.AggGIPS / pb.AggGIPS
		}
		out = append(out, cmpRec)
	}
	return out, nil
}
