package core

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/workloads"
)

// TestParallelStudyMatchesSerial characterizes the 32 baseline workloads
// serially and on 8 workers and requires identical profile order plus
// byte-identical rendered output for the figures that consume this study —
// the tentpole's determinism contract.
func TestParallelStudyMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the baseline workloads twice")
	}
	cfg := gpu.RTX3080()
	ws := BaselineWorkloads()
	serial, err := NewStudy(cfg, ws...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewStudyWith(cfg, StudyOptions{Workers: 8}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Profiles) != len(parallel.Profiles) {
		t.Fatalf("profile counts differ: serial %d, parallel %d",
			len(serial.Profiles), len(parallel.Profiles))
	}
	for i := range serial.Profiles {
		if s, p := serial.Profiles[i].Abbr(), parallel.Profiles[i].Abbr(); s != p {
			t.Fatalf("profile %d: order differs: serial %s, parallel %s", i, s, p)
		}
	}
	renderers := map[string]func(*Study, *bytes.Buffer) error{
		"figure2": func(st *Study, b *bytes.Buffer) error { return Figure2(st, b) },
		"figure4": func(st *Study, b *bytes.Buffer) error { return Figure4(st, b) },
		"table1":  func(st *Study, b *bytes.Buffer) error { return Table1(st, b) },
	}
	for name, render := range renderers {
		var a, b bytes.Buffer
		if err := render(serial, &a); err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		if err := render(parallel, &b); err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if a.Len() == 0 {
			t.Fatalf("%s rendered no output", name)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: parallel output differs from serial", name)
		}
	}
}

// failingWorkload fails its run after recording that it started.
type failingWorkload struct {
	abbr   string
	starts *atomic.Int32
}

func (f failingWorkload) Name() string             { return f.abbr }
func (f failingWorkload) Abbr() string             { return f.abbr }
func (f failingWorkload) Suite() workloads.Suite   { return workloads.Cactus }
func (f failingWorkload) Domain() workloads.Domain { return workloads.Scientific }
func (f failingWorkload) Run(*profiler.Session) error {
	f.starts.Add(1)
	return fmt.Errorf("boom in %s", f.abbr)
}

// TestParallelStudyError — a failing workload must fail the whole study,
// stop feeding further work, and not panic or deadlock the pool.
func TestParallelStudyError(t *testing.T) {
	var starts atomic.Int32
	ws := make([]workloads.Workload, 16)
	for i := range ws {
		ws[i] = failingWorkload{abbr: fmt.Sprintf("F%02d", i), starts: &starts}
	}
	_, err := NewStudyWith(gpu.RTX3080(), StudyOptions{Workers: 4}, ws...)
	if err == nil {
		t.Fatal("expected the study to fail")
	}
	if n := starts.Load(); n == 0 || n == 16 {
		t.Logf("starts=%d (early-exit is best-effort)", n)
	}
}

// TestWorkerDefaults — Workers <= 0 must still characterize everything and
// preserve order.
func TestWorkerDefaults(t *testing.T) {
	ws := BaselineWorkloads()[:4]
	st, err := NewStudyWith(gpu.RTX3080(), StudyOptions{Workers: -1}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Profiles) != len(ws) {
		t.Fatalf("got %d profiles, want %d", len(st.Profiles), len(ws))
	}
	for i, w := range ws {
		if st.Profiles[i].Abbr() != w.Abbr() {
			t.Errorf("profile %d is %s, want %s", i, st.Profiles[i].Abbr(), w.Abbr())
		}
	}
}
