package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gpu"
)

// cheapWorkload returns a fast-to-simulate baseline workload for cache
// tests.
func cheapWorkload(t *testing.T) *Profile {
	t.Helper()
	p, err := Characterize(BaselineWorkloads()[0], gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheRoundTrip — store a profile, load it back, and require the
// reconstruction to be deep-equal: every metric vector, time share, and
// instruction count must survive the JSON round trip bit-for-bit so cached
// studies render byte-identical figures.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.RTX3080()
	p := cheapWorkload(t)
	if err := cache.Store(p, cfg); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Load(p.Workload, cfg)
	if !ok {
		t.Fatal("stored profile missed on load")
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("cache round trip altered the profile:\nstored %+v\nloaded %+v", p, got)
	}
	for i, k := range p.Kernels {
		if k.Metrics != got.Kernels[i].Metrics {
			t.Errorf("kernel %s: metric vector changed across round trip", k.Name)
		}
	}
}

// TestCacheMisses — entries must not leak across devices, and corrupt
// entries must read as misses, not errors.
func TestCacheMisses(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.RTX3080()
	p := cheapWorkload(t)

	if _, ok := cache.Load(p.Workload, cfg); ok {
		t.Error("empty cache reported a hit")
	}
	if err := cache.Store(p, cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(p.Workload, gpu.GTX1080()); ok {
		t.Error("RTX 3080 entry served for the GTX 1080")
	}
	// A device-config tweak must change the key even when the name is kept.
	tweaked := cfg
	tweaked.L2Bytes *= 2
	if _, ok := cache.Load(p.Workload, tweaked); ok {
		t.Error("entry served despite a changed device configuration")
	}

	// Corrupt every entry in place: loads must degrade to misses.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("expected cache entries in %s (err=%v)", dir, err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := cache.Load(p.Workload, cfg); ok {
		t.Error("corrupt entry reported a hit")
	}
}

// TestStudyUsesCache — a second study over a warm cache must reproduce the
// first study's profiles without re-simulation (observable via DeepEqual on
// the profile data; the Workload field is the caller's own value).
func TestStudyUsesCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.RTX3080()
	ws := BaselineWorkloads()[:3]
	opts := StudyOptions{Workers: 2, Cache: cache}
	cold, err := NewStudyWith(cfg, opts, ws...)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewStudyWith(cfg, opts, ws...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Profiles, warm.Profiles) {
		t.Error("warm-cache study differs from the cold study")
	}
}
