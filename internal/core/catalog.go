package core

import (
	"repro/internal/graphx"
	"repro/internal/md"
	"repro/internal/mlapps"
	"repro/internal/suites/parboil"
	"repro/internal/suites/rodinia"
	"repro/internal/suites/tango"
	"repro/internal/workloads"
)

// CactusWorkloads returns the ten Cactus benchmarks in Table I order.
func CactusWorkloads() []workloads.Workload {
	return []workloads.Workload{
		md.Gromacs(), md.LammpsRhodopsin(), md.LammpsColloid(),
		graphx.SocialBFS(), graphx.RoadBFS(),
		mlapps.DCGAN(), mlapps.NeuralStyle(), mlapps.ReinforcementLearning(),
		mlapps.SpatialTransformer(), mlapps.LanguageTranslation(),
	}
}

// BaselineWorkloads returns the Parboil, Rodinia and Tango benchmarks of
// Table III (31 workloads).
func BaselineWorkloads() []workloads.Workload {
	var out []workloads.Workload
	out = append(out, parboil.All()...)
	out = append(out, rodinia.All()...)
	out = append(out, tango.All()...)
	return out
}

// DefaultCatalog returns every workload in the repository, Cactus first.
func DefaultCatalog() (*workloads.Catalog, error) {
	var all []workloads.Workload
	all = append(all, CactusWorkloads()...)
	all = append(all, BaselineWorkloads()...)
	return workloads.NewCatalog(all...)
}
