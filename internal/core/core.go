// Package core implements the paper's contribution: the top-down
// GPU-compute characterization methodology. Given profiled workload runs it
// computes GPU-time distributions and dominant-kernel sets (Figs. 2-3,
// Table I), roofline placements (Figs. 4-7), the performance-metric
// correlation analysis (Fig. 8), and the FAMD + hierarchical-clustering
// workload-space analysis (Fig. 9), together with the coverage statistics
// behind Observations #10-#12.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

// KernelChar is one kernel's characterization within a workload profile.
type KernelChar struct {
	Name        string
	Invocations int
	TimeShare   units.Fraction // fraction of the workload's GPU time
	Metrics     profiler.Vector

	instCount float64 // total warp instructions (Table I aggregation)
}

// WarpInstructions returns the kernel's total warp-instruction count.
func (k KernelChar) WarpInstructions() units.WarpInsts { return units.WarpInsts(k.instCount) }

// II returns the kernel's instruction intensity.
func (k KernelChar) II() float64 { return k.Metrics.Get(profiler.InstIntensity) }

// GIPS returns the kernel's achieved performance.
func (k KernelChar) GIPS() float64 { return k.Metrics.Get(profiler.GIPS) }

// Profile is one workload's characterization.
type Profile struct {
	Workload workloads.Workload
	// Kernels in descending time-share order (the paper's dominance rank).
	Kernels []KernelChar
	// TotalTime is the summed GPU time.
	TotalTime units.Seconds
	// TotalWarpInsts is the total executed warp instructions.
	TotalWarpInsts units.WarpInsts
	// AggII and AggGIPS are the application-aggregate roofline coordinates
	// (Fig. 5 plots these).
	AggII, AggGIPS float64
}

// Abbr returns the workload abbreviation.
func (p *Profile) Abbr() string { return p.Workload.Abbr() }

// KernelsFor returns how many dominant kernels are needed to cover the
// given fraction of GPU time (Table I's "70% execution time" column).
func (p *Profile) KernelsFor(frac units.Fraction) int {
	var cum units.Fraction
	for i, k := range p.Kernels {
		cum += k.TimeShare
		if cum >= frac {
			return i + 1
		}
	}
	return len(p.Kernels)
}

// CumulativeShares returns the cumulative GPU-time distribution over the
// dominance-ranked kernels (Fig. 3's series), truncated to at most maxK
// entries (0 = all).
func (p *Profile) CumulativeShares(maxK int) []float64 {
	n := len(p.Kernels)
	if maxK > 0 && maxK < n {
		n = maxK
	}
	out := make([]float64, n)
	cum := 0.0
	for i := 0; i < n; i++ {
		cum += p.Kernels[i].TimeShare.Float()
		out[i] = cum
	}
	return out
}

// DominantKernels returns the smallest prefix of kernels covering frac of
// the GPU time — the paper's dominant-kernel set.
func (p *Profile) DominantKernels(frac units.Fraction) []KernelChar {
	return p.Kernels[:p.KernelsFor(frac)]
}

// WeightedAvgInstsPerKernel returns Table I's "weighted average number of
// warp instructions per kernel": the time-share-weighted mean of per-kernel
// instruction counts.
func (p *Profile) WeightedAvgInstsPerKernel() float64 {
	var avg float64
	for _, k := range p.Kernels {
		avg += k.TimeShare.Float() * k.instCount
	}
	return avg
}

// AggregatePoint returns the workload's aggregate roofline point (Fig. 5).
func (p *Profile) AggregatePoint() roofline.Point {
	return roofline.Point{Label: p.Abbr(), II: p.AggII, GIPS: p.AggGIPS, TimeShare: 1}
}

// KernelPoints returns per-kernel roofline points (Figs. 4, 6, 7), labeled
// workload:kernel.
func (p *Profile) KernelPoints() []roofline.Point {
	out := make([]roofline.Point, len(p.Kernels))
	for i, k := range p.Kernels {
		out[i] = roofline.Point{
			Label: p.Abbr() + ":" + k.Name, II: k.II(), GIPS: k.GIPS(), TimeShare: k.TimeShare,
		}
	}
	return out
}

// Characterize runs one workload on a fresh device and derives its profile.
func Characterize(w workloads.Workload, cfg gpu.DeviceConfig) (*Profile, error) {
	return characterize(w, cfg, telemetry.Nop, nil, 0)
}

// characterize is Characterize with telemetry attached to the device and
// session: the session lays the workload's launches on modeled-track lane
// `lane`, and the device counts launches and warp instructions.
func characterize(w workloads.Workload, cfg gpu.DeviceConfig, tr telemetry.Tracer, ctr *telemetry.Counters, lane int) (*Profile, error) {
	dev, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	dev.SetTelemetry(tr, ctr)
	return characterizeOn(dev, w, tr, lane)
}

// characterizeOn runs one workload on an existing device — fresh or pooled
// — through a fresh profiling session. Devices are safe for concurrent
// launches, so a pooled device may characterize many workloads at once;
// only the session (which accumulates this run's launches) is per-call.
func characterizeOn(dev *gpu.Device, w workloads.Workload, tr telemetry.Tracer, lane int) (*Profile, error) {
	sess := profiler.NewSessionWith(dev, profiler.SessionOptions{
		Tracer: tr, Label: w.Abbr(), Lane: lane,
	})
	if err := w.Run(sess); err != nil {
		return nil, fmt.Errorf("core: running %s: %w", w.Abbr(), err)
	}
	return profileFromSession(w, sess)
}

func profileFromSession(w workloads.Workload, sess *profiler.Session) (*Profile, error) {
	total := sess.TotalTime()
	if total <= 0 {
		return nil, fmt.Errorf("core: %s recorded no GPU time", w.Abbr())
	}
	p := &Profile{
		Workload:       w,
		TotalTime:      total,
		TotalWarpInsts: sess.TotalWarpInstructions(),
	}
	var txns units.Txns
	for _, l := range sess.Launches() {
		txns += l.Traffic.DRAMTxns
	}
	p.AggII = units.IntensityFloor1(p.TotalWarpInsts, txns)
	p.AggGIPS = p.TotalWarpInsts.PerSec(total) / 1e9
	for _, k := range sess.Kernels() {
		p.Kernels = append(p.Kernels, KernelChar{
			Name:        k.Name,
			Invocations: k.Invocations,
			TimeShare:   units.Share(k.TotalTime, total),
			Metrics:     k.Metrics(),
			instCount:   k.WarpInstructions().Float(),
		})
	}
	return p, nil
}

// Study characterizes a set of workloads once and caches their profiles —
// the unit of work every figure and table derives from.
type Study struct {
	Device   gpu.DeviceConfig
	Profiles []*Profile
	byAbbr   map[string]*Profile
}

// StudyOptions configures how NewStudyWith characterizes its workloads.
// The zero value means: one worker per CPU, no profile cache, telemetry off.
type StudyOptions struct {
	// Workers is the number of goroutines characterizing workloads
	// concurrently. Zero or negative selects runtime.NumCPU(). Each worker
	// builds its own gpu.Device and profiler.Session, so no simulator state
	// is shared across goroutines, and Study.Profiles is assembled in the
	// caller's workload order — the resulting figures and tables are
	// byte-identical to a serial run.
	Workers int
	// Cache, when non-nil, is consulted before simulating a workload and
	// updated after each miss, so repeated studies skip re-simulation.
	// Failures to write an entry do not fail the study: they are counted
	// (telemetry.CtrCacheStoreErrors) and surfaced through Progress.
	Cache *ProfileCache
	// Tracer, when non-nil, receives the study's telemetry events: each
	// workload's kernel launches on its own modeled-GPU-time lane, plus
	// host-track spans for characterization tasks, cache probes, and
	// worker-pool lifecycle. Must be safe for concurrent use (it is called
	// from every worker goroutine).
	Tracer telemetry.Tracer
	// Counters, when non-nil, accumulates pipeline counters: launches,
	// warp instructions, cache hits/misses/corruption/store errors, busy
	// workers, and per-workload modeled vs wall time.
	Counters *telemetry.Counters
	// Metrics, when non-nil, receives histogram observations as workloads
	// complete: per-workload modeled and wall seconds, and per-kernel L1/L2
	// hit rates. When Metrics wraps the same Counters registry
	// (telemetry.NewRegistryWith), one snapshot covers both. Must be safe
	// for concurrent use (observed from every worker goroutine).
	Metrics *telemetry.Registry
	// Logger, when non-nil, receives structured per-workload completion
	// events (and cache store-error warnings). Must be safe for concurrent
	// use; slog handlers are.
	Logger *slog.Logger
	// Progress, when non-nil, is invoked once per workload — from the
	// goroutine that characterized it, in completion order — after its
	// profile is ready. Must be safe for concurrent use when Workers > 1.
	Progress func(WorkloadProgress)
}

// WorkloadProgress reports one characterized workload to
// StudyOptions.Progress (the CLI's -v output).
type WorkloadProgress struct {
	// Abbr is the workload abbreviation.
	Abbr string
	// Kernels is the number of distinct kernels in the profile.
	Kernels int
	// ModeledTime is the workload's modeled GPU time.
	ModeledTime units.Seconds
	// Wall is the host wall time spent producing the profile (simulation
	// or cache load, including the cache probe and store).
	Wall time.Duration
	// Cache is the cache-probe outcome; CacheDisabled when no cache is
	// configured.
	Cache CacheOutcome
	// StoreErr, when non-nil, is the cache-write failure for this profile.
	// Store failures do not fail the study; they are reported here and
	// counted under telemetry.CtrCacheStoreErrors.
	StoreErr error
}

// NewStudy characterizes all the given workloads on cfg, serially and
// without a cache — the reference path NewStudyWith must match byte for
// byte.
func NewStudy(cfg gpu.DeviceConfig, ws ...workloads.Workload) (*Study, error) {
	return NewStudyWith(cfg, StudyOptions{Workers: 1}, ws...)
}

// NewStudyWith characterizes all the given workloads on cfg according to
// opts. On error the first failure observed is returned and the partial
// study is discarded.
//
// NewStudyWith is a convenience wrapper over the reusable study engine: it
// builds an ephemeral Engine from opts, runs one study, and shuts the
// engine down. Long-running callers (the HTTP server) construct one Engine
// and share it across requests instead.
func NewStudyWith(cfg gpu.DeviceConfig, opts StudyOptions, ws ...workloads.Workload) (*Study, error) {
	e := NewEngine(EngineOptions{
		Workers:  opts.Workers,
		Cache:    opts.Cache,
		Counters: opts.Counters,
		Metrics:  opts.Metrics,
		Logger:   opts.Logger,
	})
	//lint:ignore ctxflow one-shot CLI entry point with no inbound context; the deferred shutdown must run even after a study error
	defer func() { _ = e.Shutdown(context.Background()) }()
	//lint:ignore ctxflow one-shot CLI entry point with no inbound context; cancellation belongs to the process signal handler
	return e.StudyWith(context.Background(), cfg, opts, ws...)
}

// characterizeCached is one workload's characterization behind the optional
// profile cache, instrumented end to end: the cache probe outcome becomes a
// host-track instant and a hit/miss/corrupt counter, the whole task becomes
// a host-track span on the worker's lane, and the workload's modeled vs
// wall time land in per-workload counters. `lane` is the workload's
// modeled-track lane (its index in the study); `worker` is the host-track
// lane of the goroutine doing the work. When dev is non-nil the simulation
// runs on that (pooled) device instead of building a fresh one — the
// engine's device reuse path; telemetry must already be attached to it.
func characterizeCached(w workloads.Workload, cfg gpu.DeviceConfig, opts StudyOptions, lane, worker int, dev *gpu.Device) (*Profile, error) {
	tr := telemetry.Or(opts.Tracer)
	//lint:ignore nodeterminism wall time is telemetry about the pipeline, not model output
	wallStart := time.Now()
	hostStart := telemetry.Now()

	outcome := CacheDisabled
	var p *Profile
	if opts.Cache != nil {
		p, outcome = opts.Cache.Probe(w, cfg)
		switch outcome {
		case CacheHit:
			opts.Counters.Add(telemetry.CtrCacheHits, 1)
		case CacheMiss:
			opts.Counters.Add(telemetry.CtrCacheMisses, 1)
		case CacheCorrupt:
			// A corrupt entry is functionally a miss, but visible.
			opts.Counters.Add(telemetry.CtrCacheMisses, 1)
			opts.Counters.Add(telemetry.CtrCacheCorrupt, 1)
		}
		if tr.Enabled() {
			tr.Emit(telemetry.Event{
				Track: telemetry.TrackHost, Phase: telemetry.PhaseInstant,
				Name: "cache " + outcome.String(), Cat: "cache", TID: worker,
				Start: telemetry.Now(),
				Args:  map[string]any{"workload": w.Abbr()},
			})
		}
	}

	var storeErr error
	if p == nil {
		var err error
		if dev != nil {
			p, err = characterizeOn(dev, w, tr, lane)
		} else {
			p, err = characterize(w, cfg, tr, opts.Counters, lane)
		}
		if err != nil {
			return nil, err
		}
		if opts.Cache != nil {
			if storeErr = opts.Cache.Store(p, cfg); storeErr != nil {
				storeErr = fmt.Errorf("core: caching %s: %w", w.Abbr(), storeErr)
				opts.Counters.Add(telemetry.CtrCacheStoreErrors, 1)
				if opts.Logger != nil {
					opts.Logger.Warn("profile cache store failed",
						"workload", w.Abbr(), "error", storeErr.Error())
				}
				if tr.Enabled() {
					tr.Emit(telemetry.Event{
						Track: telemetry.TrackHost, Phase: telemetry.PhaseInstant,
						Name: "cache store error", Cat: "cache", TID: worker,
						Start: telemetry.Now(),
						Args: map[string]any{
							"workload": w.Abbr(), "error": storeErr.Error(),
						},
					})
				}
			}
		}
	}

	//lint:ignore nodeterminism wall time is telemetry about the pipeline, not model output
	wall := time.Since(wallStart)
	opts.Counters.Add(telemetry.CtrWorkloads, 1)
	opts.Counters.Add(telemetry.WorkloadModeledNs(w.Abbr()), int64(p.TotalTime.Nanos()))
	opts.Counters.Add(telemetry.WorkloadWallNs(w.Abbr()), wall.Nanoseconds())
	if m := opts.Metrics; m != nil {
		m.Histogram(telemetry.HistWorkloadModeledSeconds).Observe(p.TotalTime.Float())
		m.Histogram(telemetry.HistWorkloadWallSeconds).Observe(wall.Seconds())
		l1 := m.Histogram(telemetry.HistKernelL1HitRate)
		l2 := m.Histogram(telemetry.HistKernelL2HitRate)
		for _, k := range p.Kernels {
			l1.Observe(k.Metrics.Get(profiler.L1HitRate))
			l2.Observe(k.Metrics.Get(profiler.L2HitRate))
		}
	}
	if opts.Logger != nil {
		opts.Logger.Info("workload characterized",
			"workload", w.Abbr(),
			"kernels", len(p.Kernels),
			"modeled_ms", p.TotalTime.Millis(),
			"wall_ms", float64(wall.Nanoseconds())/1e6,
			"cache", outcome.String())
	}
	if tr.Enabled() {
		tr.Emit(telemetry.Event{
			Track: telemetry.TrackHost, Phase: telemetry.PhaseSpan,
			Name: w.Abbr(), Cat: "characterize", TID: worker,
			Start: hostStart, Dur: telemetry.Now() - hostStart,
			Args: map[string]any{
				"cache":      outcome.String(),
				"kernels":    len(p.Kernels),
				"modeled_ms": p.TotalTime.Millis(),
			},
		})
	}
	if opts.Progress != nil {
		opts.Progress(WorkloadProgress{
			Abbr:        w.Abbr(),
			Kernels:     len(p.Kernels),
			ModeledTime: p.TotalTime,
			Wall:        wall,
			Cache:       outcome,
			StoreErr:    storeErr,
		})
	}
	return p, nil
}

// Add appends an already-characterized profile to the study (used to slice
// a full study into per-suite views without re-running workloads).
func (st *Study) Add(p *Profile) {
	if st.byAbbr == nil {
		st.byAbbr = make(map[string]*Profile)
	}
	st.Profiles = append(st.Profiles, p)
	st.byAbbr[p.Abbr()] = p
}

// Profile looks up a workload's profile by abbreviation.
func (st *Study) Profile(abbr string) (*Profile, error) {
	p, ok := st.byAbbr[abbr]
	if !ok {
		return nil, fmt.Errorf("core: no profile for %q", abbr)
	}
	return p, nil
}

// BySuite returns the study's profiles belonging to one suite.
func (st *Study) BySuite(s workloads.Suite) []*Profile {
	var out []*Profile
	for _, p := range st.Profiles {
		if p.Workload.Suite() == s {
			out = append(out, p)
		}
	}
	return out
}

// DominantKernelObservations collects, across the given profiles, each
// dominant kernel (70% cumulative time) as a labeled metric observation —
// the input rows of the correlation and clustering analyses.
type Observation struct {
	Workload string
	Kernel   string
	Suite    workloads.Suite
	Metrics  profiler.Vector
	II, GIPS float64
}

// DominantObservations extracts dominant-kernel observations from profiles.
func DominantObservations(profiles []*Profile, frac units.Fraction) []Observation {
	var out []Observation
	for _, p := range profiles {
		for _, k := range p.DominantKernels(frac) {
			out = append(out, Observation{
				Workload: p.Abbr(), Kernel: k.Name, Suite: p.Workload.Suite(),
				Metrics: k.Metrics, II: k.II(), GIPS: k.GIPS(),
			})
		}
	}
	return out
}

// CorrelationResult is Fig. 8 for one workload group: |PCC| of each primary
// metric against each Table IV metric.
type CorrelationResult struct {
	Primary   []profiler.Metric
	Secondary []profiler.Metric
	// Abs[i][j] = |PCC(primary i, secondary j)|.
	Abs [][]float64
}

// StrongOrWeakCount returns how many (primary, secondary) pairs correlate
// at least weakly (|r| >= 0.2) — the paper's Fig. 8 comparison statistic.
func (c *CorrelationResult) StrongOrWeakCount() int {
	n := 0
	for _, row := range c.Abs {
		for _, v := range row {
			if stats.Strength(v) != stats.NoCorrelation {
				n++
			}
		}
	}
	return n
}

// Correlate computes the Fig. 8 correlation heatmap over a set of
// observations. Intensity values are log-transformed first: the paper's
// metrics span orders of magnitude and Pearson on raw II is dominated by
// outliers.
func Correlate(obs []Observation) (*CorrelationResult, error) {
	if len(obs) < 3 {
		return nil, fmt.Errorf("core: %d observations, need >= 3", len(obs))
	}
	col := func(m profiler.Metric) []float64 {
		out := make([]float64, len(obs))
		for i, o := range obs {
			v := o.Metrics.Get(m)
			if m == profiler.InstIntensity || m == profiler.GIPS || m == profiler.DRAMReadThroughput {
				v = math.Log10(v + 1e-9)
			}
			out[i] = v
		}
		return out
	}
	res := &CorrelationResult{
		Primary:   profiler.PrimaryMetrics(),
		Secondary: profiler.SecondaryMetrics(),
	}
	for _, pm := range res.Primary {
		row := make([]float64, 0, len(res.Secondary))
		pc := col(pm)
		for _, sm := range res.Secondary {
			r, err := stats.Pearson(pc, col(sm))
			if err != nil {
				return nil, err
			}
			row = append(row, math.Abs(r))
		}
		res.Abs = append(res.Abs, row)
	}
	return res, nil
}

// AmdahlExample reproduces the Section II-C worked example: a workload with
// the given kernel time shares; it returns the speedup required on the most
// dominant kernel alone to achieve the target overall speedup, and the
// overall speedup if every kernel is improved by the target factor.
func AmdahlExample(shares []float64, target float64) (dominantSpeedup, uniformSpeedup float64, err error) {
	if len(shares) == 0 || target <= 1 {
		return 0, 0, fmt.Errorf("core: invalid Amdahl example")
	}
	var sum, maxShare float64
	for _, s := range shares {
		if s <= 0 {
			return 0, 0, fmt.Errorf("core: non-positive share")
		}
		sum += s
		if s > maxShare {
			maxShare = s
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return 0, 0, fmt.Errorf("core: shares sum to %g, want 1", sum)
	}
	// Overall time with dominant kernel sped up by x:
	// T(x) = (1 - maxShare) + maxShare/x = 1/target
	// => maxShare/x = 1/target - (1 - maxShare)
	rhs := 1/target - (1 - maxShare)
	if rhs <= 0 {
		return math.Inf(1), target, nil
	}
	return maxShare / rhs, target, nil
}
