// Engine: the study pipeline as a reusable, concurrent library. NewStudy /
// NewStudyWith run one batch and exit — fine for the CLI, useless for a
// long-running server that must answer thousands of overlapping study
// requests. Engine gives the pipeline an explicit lifecycle (constructor,
// Shutdown with drain), a global bounded worker pool shared by every
// concurrent caller, and a per-device simulator pool so trace-replay state
// (memsim hierarchies warmed by earlier launches) is reused across requests
// instead of being rebuilt per call. Results are byte-identical to the
// one-shot path: devices are deterministic and safe for concurrent
// launches, and profiles are assembled in the caller's workload order.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"

	"repro/internal/gpu"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// ErrEngineClosed is returned by Engine methods after Shutdown has begun.
var ErrEngineClosed = errors.New("core: engine is shut down")

// EngineOptions configures a study engine. The zero value means: one
// worker slot per CPU, no profile cache, telemetry off.
type EngineOptions struct {
	// Workers is the engine-wide cap on concurrent characterizations,
	// shared by every Study/Characterize call in flight. Zero or negative
	// selects runtime.NumCPU().
	Workers int
	// Cache, when non-nil, is the on-disk profile cache consulted before
	// simulating and updated after each miss.
	Cache *ProfileCache
	// Counters, Metrics, and Logger are the engine's default telemetry
	// sinks, attached to pooled devices and to Characterize calls. All are
	// optional and must be safe for concurrent use (they are).
	Counters *telemetry.Counters
	Metrics  *telemetry.Registry
	Logger   *slog.Logger
}

// Engine is a long-lived, concurrency-safe study pipeline. Construct with
// NewEngine, issue any number of concurrent Study/StudyWith/Characterize
// calls, then Shutdown to drain. All methods are safe for concurrent use.
type Engine struct {
	opts EngineOptions
	// slots bounds concurrent characterizations engine-wide: every task —
	// whichever Study or Characterize call it belongs to — holds one slot
	// while probing the cache and simulating.
	slots chan struct{}

	mu      sync.Mutex
	devices map[string]*gpu.Device // guarded by mu; pooled simulators by Fingerprint(cfg)
	closed  bool                   // guarded by mu

	wg sync.WaitGroup // in-flight Study/Characterize calls (drained by Shutdown)
}

// NewEngine returns a ready engine. It never fails: device configurations
// are validated lazily, per call, exactly like the one-shot path.
func NewEngine(opts EngineOptions) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	opts.Workers = workers
	return &Engine{
		opts:    opts,
		slots:   make(chan struct{}, workers),
		devices: make(map[string]*gpu.Device),
	}
}

// Workers returns the engine-wide concurrent-characterization cap.
func (e *Engine) Workers() int { return e.opts.Workers }

// begin registers one in-flight call, failing once Shutdown has begun.
func (e *Engine) begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.wg.Add(1)
	return nil
}

// acquire takes one global worker slot, honoring context cancellation.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.slots }

// device returns the pooled simulator for cfg, building and validating it
// on first use. Pooled devices carry the engine's counters and a no-op
// tracer; gpu.Device.Launch is safe for concurrent use, so one device
// serves every concurrent characterization of its configuration, and its
// replay pool's warmed cache-hierarchy states are reused across requests.
func (e *Engine) device(cfg gpu.DeviceConfig) (*gpu.Device, error) {
	fp := Fingerprint(cfg)
	e.mu.Lock()
	defer e.mu.Unlock()
	if dev, ok := e.devices[fp]; ok {
		return dev, nil
	}
	dev, err := gpu.New(cfg)
	if err != nil {
		return nil, err
	}
	dev.SetTelemetry(telemetry.Nop, e.opts.Counters)
	e.devices[fp] = dev
	return dev, nil
}

// pooledFor reports the pooled device to use for a study with the given
// options, or nil when the study must build fresh devices: a per-study
// tracer or a foreign counters registry cannot be attached to a shared
// device without racing other studies that are using it concurrently.
func (e *Engine) pooledFor(cfg gpu.DeviceConfig, opts StudyOptions) (*gpu.Device, error) {
	if opts.Tracer != nil || opts.Counters != e.opts.Counters {
		return nil, nil
	}
	return e.device(cfg)
}

// studyOptions are the engine defaults as one-shot study options.
func (e *Engine) studyOptions() StudyOptions {
	return StudyOptions{
		Workers:  e.opts.Workers,
		Cache:    e.opts.Cache,
		Counters: e.opts.Counters,
		Metrics:  e.opts.Metrics,
		Logger:   e.opts.Logger,
	}
}

// Characterize produces one workload's profile on cfg using the engine's
// cache, telemetry, and pooled device, waiting for a worker slot first. It
// reports how the profile was obtained (cache hit, miss, corrupt entry, or
// CacheDisabled when the engine has no cache). The context gates slot
// acquisition and is checked before simulating; a simulation once started
// runs to completion so a drained engine never abandons simulator state.
func (e *Engine) Characterize(ctx context.Context, cfg gpu.DeviceConfig, w workloads.Workload) (*Profile, CacheOutcome, error) {
	if err := e.begin(); err != nil {
		return nil, CacheDisabled, err
	}
	defer e.wg.Done()
	if err := e.acquire(ctx); err != nil {
		return nil, CacheDisabled, err
	}
	defer e.release()
	if err := ctx.Err(); err != nil {
		return nil, CacheDisabled, err
	}
	dev, err := e.device(cfg)
	if err != nil {
		return nil, CacheDisabled, err
	}
	opts := e.studyOptions()
	outcome := CacheDisabled
	opts.Progress = func(p WorkloadProgress) { outcome = p.Cache }
	p, err := characterizeCached(w, cfg, opts, 0, 0, dev)
	if err != nil {
		return nil, CacheDisabled, err
	}
	return p, outcome, nil
}

// Study characterizes the given workloads on cfg with the engine's default
// options and returns the assembled study.
func (e *Engine) Study(ctx context.Context, cfg gpu.DeviceConfig, ws ...workloads.Workload) (*Study, error) {
	return e.StudyWith(ctx, cfg, e.studyOptions(), ws...)
}

// StudyWith characterizes the given workloads on cfg according to opts,
// exactly as the one-shot NewStudyWith would: opts is honored verbatim
// (including a nil Cache meaning "no cache" and per-study tracer,
// counters, and progress sinks), profiles land in the caller's workload
// order, and the output is byte-identical to a serial run. The engine
// contributes its global worker slots — opts.Workers study-local workers
// still fan out, but every characterization holds an engine slot while it
// runs, so concurrent studies share one bounded pool — and its pooled
// device when opts carries no tracer and no foreign counters.
//
// The context gates slot acquisition and stops the feed between workloads;
// characterizations already started run to completion before StudyWith
// returns, so cancellation never leaks work past the return.
func (e *Engine) StudyWith(ctx context.Context, cfg gpu.DeviceConfig, opts StudyOptions, ws ...workloads.Workload) (*Study, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.wg.Done()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ws) {
		workers = len(ws)
	}
	dev, err := e.pooledFor(cfg, opts)
	if err != nil {
		return nil, err
	}
	profiles := make([]*Profile, len(ws))
	if workers <= 1 {
		for i, w := range ws {
			if err := e.acquire(ctx); err != nil {
				return nil, err
			}
			p, err := characterizeCached(w, cfg, opts, i, 0, dev)
			e.release()
			if err != nil {
				return nil, err
			}
			profiles[i] = p
		}
	} else if err := e.characterizeAll(ctx, profiles, ws, cfg, opts, workers, dev); err != nil {
		return nil, err
	}
	st := &Study{Device: cfg, byAbbr: make(map[string]*Profile, len(ws))}
	for _, p := range profiles {
		st.Profiles = append(st.Profiles, p)
		st.byAbbr[p.Abbr()] = p
	}
	return st, nil
}

// characterizeAll fans the workloads out over a fixed study-local worker
// pool, writing each profile into its workload's slot so order is
// preserved. The first error (or context cancellation) stops the feed;
// in-flight characterizations drain before return. Each worker owns one
// host-track telemetry lane; its per-task spans are the pool's lifecycle
// record, and CtrWorkersBusy gauges its occupancy. Every task additionally
// holds one engine-wide slot, so concurrent studies on one engine share
// the global Workers bound.
func (e *Engine) characterizeAll(ctx context.Context, profiles []*Profile, ws []workloads.Workload, cfg gpu.DeviceConfig, opts StudyOptions, workers int, dev *gpu.Device) error {
	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	tr := telemetry.Or(opts.Tracer)
	idx := make(chan int)
	fail := make(chan struct{})
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if tr.Enabled() {
				tr.Emit(telemetry.ThreadName(telemetry.TrackHost, worker,
					fmt.Sprintf("worker %d", worker)))
			}
			for i := range idx {
				if err := e.acquire(ctx); err != nil {
					once.Do(func() { firstErr = err; close(fail) })
					continue
				}
				opts.Counters.Add(telemetry.CtrWorkersBusy, 1)
				p, err := characterizeCached(ws[i], cfg, opts, i, worker, dev)
				opts.Counters.Add(telemetry.CtrWorkersBusy, -1)
				e.release()
				if err != nil {
					once.Do(func() { firstErr = err; close(fail) })
					continue
				}
				profiles[i] = p
			}
		}(n)
	}
feed:
	for i := range ws {
		select {
		case idx <- i:
		case <-fail:
			break feed
		case <-ctx.Done():
			once.Do(func() { firstErr = ctx.Err(); close(fail) })
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return firstErr
}

// Shutdown stops admitting new calls and waits for every in-flight
// Study/Characterize call to drain, or for ctx to expire. It is
// idempotent; after the first call every engine method fails with
// ErrEngineClosed.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
