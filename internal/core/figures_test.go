package core

import (
	"strings"
	"testing"
)

func TestFigure1Renders(t *testing.T) {
	var b strings.Builder
	if err := Figure1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Rodinia") || !strings.Contains(out, "Parboil") {
		t.Error("survey suites missing")
	}
	// Rodinia must rank first (the paper's headline finding).
	rodiniaIdx := strings.Index(out, "Rodinia")
	parboilIdx := strings.Index(out, "Parboil")
	if rodiniaIdx > parboilIdx {
		t.Error("Rodinia should be ranked above Parboil")
	}
}

func TestFigure2AndTable1(t *testing.T) {
	st := study(t)
	var b strings.Builder
	if err := Figure2(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "70% of GPU time") {
		t.Errorf("figure 2 output: %s", b.String())
	}
	b.Reset()
	if err := Table1(st, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GMS", "kernels(70%)"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestFigure3Through9Render(t *testing.T) {
	st := study(t)
	var b strings.Builder
	if err := Figure3(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "k=14") {
		t.Error("figure 3 columns")
	}
	b.Reset()
	if err := Figure4(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "parboil") {
		t.Error("figure 4 suites")
	}
	b.Reset()
	if err := Figure5(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "elbow II=21.7") {
		t.Error("figure 5 roofline")
	}
	b.Reset()
	if err := Figure6(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 6a") {
		t.Error("figure 6")
	}
	b.Reset()
	if err := Figure8(st, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "correlated (weak or strong) pairs") {
		t.Error("figure 8")
	}
	b.Reset()
	if err := Figure9(st, &b, 4); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dendrogram", "cactus", "covers"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("figure 9 missing %q:\n%s", want, b.String())
		}
	}
}

func TestFigure7RequiresMLProfiles(t *testing.T) {
	st := study(t) // subset without ML workloads
	var b strings.Builder
	if err := Figure7(st, &b); err == nil {
		t.Error("figure 7 without ML profiles should fail")
	}
}

func TestStaticTables(t *testing.T) {
	st := study(t)
	var b strings.Builder
	if err := Table2(st, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"516.8", "23.76", "21.7"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := Table3(cat, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pb-sgemm") || !strings.Contains(b.String(), "rd-lud") {
		t.Error("table 3 workload lists")
	}
	b.Reset()
	if err := Table4(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Warp occupancy") || !strings.Contains(b.String(), "Memory stall") {
		t.Error("table 4 metrics")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[float64]string{
		5:     "5",
		5300:  "5.3 K",
		2.5e6: "2.5 M",
		3.1e9: "3.1 B",
	}
	for v, want := range cases {
		if got := humanCount(v); got != want {
			t.Errorf("humanCount(%g) = %q, want %q", v, got, want)
		}
	}
}
