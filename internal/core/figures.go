package core

import (
	"fmt"
	"io"

	"repro/internal/profiler"
	"repro/internal/report"
	"repro/internal/roofline"
	"repro/internal/survey"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Figure1 renders the benchmark-suite popularity survey.
func Figure1(w io.Writer) error {
	tbl := report.NewTable("Figure 1: GPU-compute benchmark-suite usage in ISCA/MICRO/ASPLOS/HPCA papers, 2010-2020",
		append([]string{"suite"}, yearHeaders()...)...)
	for _, s := range survey.Ranking() {
		series, err := survey.Series(s)
		if err != nil {
			return err
		}
		total, _ := survey.Total(s)
		cells := []string{s}
		for _, v := range series {
			cells = append(cells, fmt.Sprintf("%d", v))
		}
		cells = append(cells, fmt.Sprintf("(total %d)", total))
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}

func yearHeaders() []string {
	out := make([]string, 0, len(survey.Years)+1)
	for _, y := range survey.Years {
		out = append(out, fmt.Sprintf("%d", y%100))
	}
	return append(out, "")
}

// Figure2 renders the baseline GPU-time distribution: one stacked bar per
// Parboil/Rodinia/Tango workload plus the concentration statistics.
func Figure2(st *Study, w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: GPU time distribution for Parboil, Rodinia and Tango")
	var oneK, twoK, threeK int
	baselines := 0
	for _, p := range st.Profiles {
		if p.Workload.Suite() == workloads.Cactus {
			continue
		}
		baselines++
		var shares []units.Fraction
		for _, k := range p.Kernels {
			shares = append(shares, k.TimeShare)
		}
		fmt.Fprintf(w, "%-18s |%s| top=%.0f%% kernels=%d\n",
			p.Abbr(), report.StackedBar(shares, 40), 100*p.Kernels[0].TimeShare, len(p.Kernels))
		switch p.KernelsFor(0.7) {
		case 1:
			oneK++
		case 2:
			twoK++
		default:
			threeK++
		}
	}
	fmt.Fprintf(w, "70%% of GPU time in 1 kernel: %d/%d workloads; in <=2: %d/%d; in 3: %d/%d\n",
		oneK, baselines, oneK+twoK, baselines, threeK, baselines)
	return nil
}

// Table1 renders the Cactus summary table.
func Table1(st *Study, w io.Writer) error {
	tbl := report.NewTable("Table I: the Cactus benchmark suite",
		"workload", "total warp insts", "wavg insts/kernel", "kernels(100%)", "kernels(70%)")
	for _, p := range st.BySuite(workloads.Cactus) {
		tbl.AddRow(
			p.Abbr(),
			humanCount(float64(p.TotalWarpInsts)),
			humanCount(p.WeightedAvgInstsPerKernel()),
			fmt.Sprintf("%d", len(p.Kernels)),
			fmt.Sprintf("%d", p.KernelsFor(0.7)),
		)
	}
	return tbl.Render(w)
}

func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1f B", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1f M", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f K", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}

// Figure3 renders the cumulative time distribution over dominant kernels
// for the Cactus workloads (first 14 kernels, as in the paper).
func Figure3(st *Study, w io.Writer) error {
	tbl := report.NewTable("Figure 3: cumulative GPU-time distribution over dominant kernels (Cactus)",
		"workload", "k=1", "k=2", "k=3", "k=5", "k=8", "k=11", "k=14")
	picks := []int{1, 2, 3, 5, 8, 11, 14}
	for _, p := range st.BySuite(workloads.Cactus) {
		cum := p.CumulativeShares(14)
		cells := []string{p.Abbr()}
		for _, k := range picks {
			idx := k - 1
			if idx >= len(cum) {
				idx = len(cum) - 1
			}
			cells = append(cells, fmt.Sprintf("%.0f%%", 100*cum[idx]))
		}
		tbl.AddRow(cells...)
	}
	return tbl.Render(w)
}

// rooflineChart renders points on the study's device roofline.
func (st *Study) rooflineChart(title string, pts []roofline.Point, w io.Writer) error {
	c := report.RooflineChart{
		Title:  title,
		Model:  roofline.ForDevice(st.Device),
		Points: pts,
	}
	return c.Render(w)
}

// Figure4 renders the three baseline rooflines (per-kernel points weighted
// by contribution).
func Figure4(st *Study, w io.Writer) error {
	for _, s := range []workloads.Suite{workloads.Parboil, workloads.Rodinia, workloads.Tango} {
		var pts []roofline.Point
		for _, p := range st.BySuite(s) {
			for _, kp := range p.KernelPoints() {
				if kp.TimeShare >= 0.05 {
					kp.Label = p.Abbr()
					pts = append(pts, kp)
				}
			}
		}
		if len(pts) == 0 {
			continue
		}
		if err := st.rooflineChart(fmt.Sprintf("Figure 4 (%s): per-kernel roofline", s), pts, w); err != nil {
			return err
		}
	}
	return nil
}

// Figure5 renders the aggregate Cactus roofline.
func Figure5(st *Study, w io.Writer) error {
	var pts []roofline.Point
	for _, p := range st.BySuite(workloads.Cactus) {
		pts = append(pts, p.AggregatePoint())
	}
	return st.rooflineChart("Figure 5: Cactus aggregate roofline", pts, w)
}

// Figure6 renders the molecular and graph per-kernel rooflines plus their
// dominant kernels.
func Figure6(st *Study, w io.Writer) error {
	groups := []struct {
		title  string
		domain workloads.Domain
	}{
		{"Figure 6a: molecular-simulation kernels", workloads.Molecular},
		{"Figure 6b: graph-analytics kernels", workloads.Graph},
	}
	var domPts []roofline.Point
	for _, g := range groups {
		var pts []roofline.Point
		for _, p := range st.BySuite(workloads.Cactus) {
			if p.Workload.Domain() != g.domain {
				continue
			}
			for _, kp := range p.KernelPoints() {
				kp.Label = p.Abbr()
				pts = append(pts, kp)
			}
			for _, k := range p.DominantKernels(0.7) {
				domPts = append(domPts, roofline.Point{Label: p.Abbr(), II: k.II(), GIPS: k.GIPS(), TimeShare: k.TimeShare})
			}
		}
		if len(pts) == 0 {
			continue
		}
		if err := st.rooflineChart(g.title, pts, w); err != nil {
			return err
		}
	}
	if len(domPts) > 0 {
		return st.rooflineChart("Figure 6c: dominant molecular+graph kernels", domPts, w)
	}
	return nil
}

// Figure7 renders the machine-learning per-kernel rooflines.
func Figure7(st *Study, w io.Writer) error {
	var all, dominant []roofline.Point
	for _, p := range st.BySuite(workloads.Cactus) {
		if p.Workload.Domain() != workloads.MachineL {
			continue
		}
		for _, kp := range p.KernelPoints() {
			kp.Label = p.Abbr()
			all = append(all, kp)
		}
		for _, k := range p.DominantKernels(0.7) {
			dominant = append(dominant, roofline.Point{Label: p.Abbr(), II: k.II(), GIPS: k.GIPS(), TimeShare: k.TimeShare})
		}
	}
	if len(all) == 0 {
		return fmt.Errorf("core: no ML profiles in study")
	}
	if err := st.rooflineChart("Figure 7a: all ML kernels by benchmark", all, w); err != nil {
		return err
	}
	// 7b: color by contribution bucket.
	var byContrib []roofline.Point
	for _, p := range all {
		label := "<10%"
		if p.TimeShare >= 0.1 {
			label = ">=10%"
		}
		byContrib = append(byContrib, roofline.Point{Label: label, II: p.II, GIPS: p.GIPS, TimeShare: p.TimeShare})
	}
	if err := st.rooflineChart("Figure 7b: all ML kernels by contribution", byContrib, w); err != nil {
		return err
	}
	model := roofline.ForDevice(st.Device)
	nearRoof := 0
	for _, p := range dominant {
		if model.NearMemoryRoof(p, 0.5) {
			nearRoof++
		}
	}
	if err := st.rooflineChart("Figure 7c: dominant ML kernels", dominant, w); err != nil {
		return err
	}
	fmt.Fprintf(w, "dominant ML kernels within 50%% of the memory roof: %d/%d\n", nearRoof, len(dominant))
	return nil
}

// Figure8 renders the correlation heatmaps for Cactus versus PRT and the
// correlated-pair counts.
func Figure8(st *Study, w io.Writer) error {
	var cactus, prt []*Profile
	for _, p := range st.Profiles {
		if p.Workload.Suite() == workloads.Cactus {
			cactus = append(cactus, p)
		} else {
			prt = append(prt, p)
		}
	}
	names := func(ms []profiler.Metric) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.String()
		}
		return out
	}
	for _, grp := range []struct {
		title    string
		profiles []*Profile
	}{
		{"Figure 8a: |PCC| heatmap — Cactus", cactus},
		{"Figure 8b: |PCC| heatmap — Parboil/Rodinia/Tango", prt},
	} {
		if len(grp.profiles) == 0 {
			continue
		}
		obs := DominantObservations(grp.profiles, 0.7)
		res, err := Correlate(obs)
		if err != nil {
			return err
		}
		if err := report.RenderHeatmap(w, grp.title, names(res.Primary), names(res.Secondary), res.Abs); err != nil {
			return err
		}
		fmt.Fprintf(w, "correlated (weak or strong) pairs: %d of %d\n\n",
			res.StrongOrWeakCount(), len(res.Primary)*len(res.Secondary))
	}
	return nil
}

// Figure9 renders the FAMD + hierarchical-clustering dendrogram of the
// dominant kernels across all suites and the coverage statistics.
func Figure9(st *Study, w io.Writer, k int) error {
	obs := DominantObservations(st.Profiles, 0.7)
	model := roofline.ForDevice(st.Device)
	ca, err := Cluster(obs, model, 6, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 9: dominant-kernel dendrogram (%d kernels, FAMD cumulative variance of kept dims: %.0f%%)\n",
		len(obs), 100*ca.FAMD.CumulativeVariance(6))
	if err := report.RenderClusterSummary(w, ca.Dendrogram, k); err != nil {
		return err
	}
	for _, s := range []workloads.Suite{workloads.Cactus, workloads.Parboil, workloads.Rodinia, workloads.Tango} {
		fmt.Fprintf(w, "%-8s covers %d/%d clusters; dominates %v\n",
			s, ca.ClustersCoveredBy(s), k, ca.ClustersDominatedBy(s))
	}
	return report.RenderDendrogram(w, ca.Dendrogram, k)
}

// Table2 renders the system setup.
func Table2(st *Study, w io.Writer) error {
	cfg := st.Device
	tbl := report.NewTable("Table II: system setup (device model)", "component", "value")
	tbl.AddRow("GPU", cfg.Name)
	tbl.AddRow("SMs", fmt.Sprintf("%d x %d CUDA cores @ %.1f GHz", cfg.NumSMs, cfg.CoresPerSM, cfg.ClockGHz))
	tbl.AddRow("DRAM", fmt.Sprintf("%d GB, %.1f GB/s", cfg.DRAMBytes>>30, cfg.DRAMBandwidth))
	tbl.AddRow("L2", fmt.Sprintf("%d MB", cfg.L2Bytes>>20))
	tbl.AddRow("peak GIPS", fmt.Sprintf("%.1f", cfg.PeakGIPS()))
	tbl.AddRow("peak GTXN/s", fmt.Sprintf("%.2f", cfg.PeakGTXN()))
	tbl.AddRow("roofline elbow II", fmt.Sprintf("%.2f", cfg.ElbowII()))
	return tbl.Render(w)
}

// Table3 renders the baseline benchmark list.
func Table3(cat *workloads.Catalog, w io.Writer) error {
	tbl := report.NewTable("Table III: baseline benchmarks", "suite", "workloads")
	for _, s := range []workloads.Suite{workloads.Parboil, workloads.Rodinia, workloads.Tango} {
		var names string
		for i, wk := range cat.BySuite(s) {
			if i > 0 {
				names += ", "
			}
			names += wk.Abbr()
		}
		tbl.AddRow(string(s), names)
	}
	return tbl.Render(w)
}

// Table4 renders the collected performance metrics.
func Table4(w io.Writer) error {
	tbl := report.NewTable("Table IV: performance characteristics", "metric", "primary")
	for _, m := range profiler.Metrics() {
		p := ""
		if m.Primary() {
			p = "yes"
		}
		tbl.AddRow(m.String(), p)
	}
	return tbl.Render(w)
}
