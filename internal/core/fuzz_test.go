package core

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/gpu"
)

// FuzzProfileRoundTrip — cache-entry decoding must, for arbitrary file
// bytes, classify the entry as CacheHit or CacheCorrupt without panicking,
// and a hit must never smuggle in another workload's or schema's data. A
// genuine stored entry must still round-trip to an identical profile.
func FuzzProfileRoundTrip(f *testing.F) {
	cfg := gpu.RTX3080()
	cat, err := DefaultCatalog()
	if err != nil {
		f.Fatal(err)
	}
	w, err := cat.Lookup("pb-sgemm")
	if err != nil {
		f.Fatal(err)
	}

	// Seed with a real entry, mutations of it, and classic junk.
	seedDir := f.TempDir()
	seedCache, err := OpenCache(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	p, err := Characterize(w, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if err := seedCache.Store(p, cfg); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedCache.path(w.Abbr(), cfg))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"abbr":"pb-sgemm"}`))
	f.Add([]byte(`{"schema":99,"abbr":"pb-sgemm","device":"RTX 3080"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"schema":1,"abbr":"pb-sgemm","device":"RTX 3080","total_time":-1,"kernels":[{}]}`))

	// One cache directory per worker process: execs within a worker run
	// sequentially, and each one overwrites the entry before probing.
	cache, err := OpenCache(f.TempDir())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(cache.path(w.Abbr(), cfg), data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, outcome := cache.Probe(w, cfg)
		switch outcome {
		case CacheHit:
			if got == nil {
				t.Fatal("CacheHit with nil profile")
			}
			// A hit's identity fields were validated against the probe key;
			// anything else means the guard in Probe regressed.
			var e cachedProfile
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("CacheHit from undecodable bytes: %v", err)
			}
			if e.Schema != CacheSchemaVersion || e.Abbr != w.Abbr() || e.Device != cfg.Name {
				t.Fatalf("CacheHit accepted foreign identity %+v", e)
			}
			if got.TotalTime <= 0 || len(got.Kernels) == 0 {
				t.Fatalf("CacheHit with degenerate profile: time %v, %d kernels",
					got.TotalTime, len(got.Kernels))
			}
			// A loaded profile must survive a second store/probe cycle
			// unchanged — the byte-determinism contract of the cache.
			if err := cache.Store(got, cfg); err != nil {
				t.Fatal(err)
			}
			again, outcome2 := cache.Probe(w, cfg)
			if outcome2 != CacheHit {
				t.Fatalf("re-stored hit probed as %v", outcome2)
			}
			assertProfilesEqual(t, got, again)
		case CacheCorrupt:
			if got != nil {
				t.Fatal("CacheCorrupt returned a profile")
			}
		default:
			t.Fatalf("outcome = %v, want CacheHit or CacheCorrupt", outcome)
		}
	})
}

// assertProfilesEqual requires two profiles to match field-for-field,
// including every kernel's full metric vector.
func assertProfilesEqual(t *testing.T, a, b *Profile) {
	t.Helper()
	if a.TotalTime != b.TotalTime || a.TotalWarpInsts != b.TotalWarpInsts ||
		a.AggII != b.AggII || a.AggGIPS != b.AggGIPS || len(a.Kernels) != len(b.Kernels) {
		t.Fatalf("profiles differ: %+v vs %+v", a, b)
	}
	for i := range a.Kernels {
		ka, kb := a.Kernels[i], b.Kernels[i]
		if ka.Name != kb.Name || ka.Invocations != kb.Invocations ||
			ka.TimeShare != kb.TimeShare || ka.instCount != kb.instCount ||
			ka.Metrics != kb.Metrics {
			t.Fatalf("kernel %d differs: %+v vs %+v", i, ka, kb)
		}
	}
}
