package core

import (
	"fmt"
	"math"

	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ClusterAnalysis is the Fig. 9 pipeline result: FAMD-denoised coordinates
// of the dominant kernels and their hierarchical clustering.
type ClusterAnalysis struct {
	Observations []Observation
	FAMD         *stats.FAMDResult
	Dendrogram   *stats.Dendrogram
	// Assign is the cut into K clusters (ids 0..K-1 per observation).
	Assign []int
	K      int
}

// Cluster runs the paper's Section V-D pipeline over dominant-kernel
// observations: quantitative variables are the Table IV metrics (intensity
// and throughput metrics log-transformed), qualitative variables are the
// two roofline labels; FAMD keeps the most significant dimensions
// (denoising), and Ward-linkage agglomerative clustering is cut into k
// primary clusters (the paper uses six).
func Cluster(obs []Observation, model roofline.Model, famdDims, k int) (*ClusterAnalysis, error) {
	if len(obs) < k {
		return nil, fmt.Errorf("core: %d observations for %d clusters", len(obs), k)
	}
	data := stats.MixedData{
		QualNames: []string{"intensity", "boundedness"},
	}
	for _, m := range profiler.Metrics() {
		data.QuantNames = append(data.QuantNames, m.String())
	}
	for _, o := range obs {
		row := make([]float64, 0, profiler.NumMetrics)
		for _, m := range profiler.Metrics() {
			v := o.Metrics.Get(m)
			if m == profiler.InstIntensity || m == profiler.GIPS || m == profiler.DRAMReadThroughput {
				v = math.Log10(v + 1e-9)
			}
			row = append(row, v)
		}
		data.Quant = append(data.Quant, row)
		data.Qual = append(data.Qual, []string{
			model.Classify(o.II).String(),
			model.BoundOf(o.GIPS).String(),
		})
	}
	famd, err := stats.FAMD(data, famdDims)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(obs))
	for i, o := range obs {
		labels[i] = o.Workload + ":" + o.Kernel
	}
	dend, err := stats.Agglomerative(famd.Coords, labels, stats.WardLinkage)
	if err != nil {
		return nil, err
	}
	assign, err := dend.Cut(k)
	if err != nil {
		return nil, err
	}
	return &ClusterAnalysis{
		Observations: obs, FAMD: famd, Dendrogram: dend, Assign: assign, K: k,
	}, nil
}

// ClustersOfWorkload returns the distinct cluster ids the given workload's
// dominant kernels land in — Observation #11's spread measure.
func (c *ClusterAnalysis) ClustersOfWorkload(abbr string) []int {
	seen := map[int]bool{}
	var out []int
	for i, o := range c.Observations {
		if o.Workload == abbr && !seen[c.Assign[i]] {
			seen[c.Assign[i]] = true
			out = append(out, c.Assign[i])
		}
	}
	return out
}

// SuiteShareByCluster returns, per cluster, the fraction of member kernels
// belonging to the given suite — Observation #12's coverage measure.
func (c *ClusterAnalysis) SuiteShareByCluster(s workloads.Suite) []float64 {
	counts := make([]int, c.K)
	suite := make([]int, c.K)
	for i, o := range c.Observations {
		counts[c.Assign[i]]++
		if o.Suite == s {
			suite[c.Assign[i]]++
		}
	}
	out := make([]float64, c.K)
	for i := range out {
		if counts[i] > 0 {
			out[i] = float64(suite[i]) / float64(counts[i])
		}
	}
	return out
}

// ClustersDominatedBy returns the clusters where the suite holds a strict
// majority of the member kernels.
func (c *ClusterAnalysis) ClustersDominatedBy(s workloads.Suite) []int {
	shares := c.SuiteShareByCluster(s)
	var out []int
	for i, f := range shares {
		if f > 0.5 {
			out = append(out, i)
		}
	}
	return out
}

// ClustersCoveredBy returns how many clusters contain at least one kernel
// of the suite.
func (c *ClusterAnalysis) ClustersCoveredBy(s workloads.Suite) int {
	shares := c.SuiteShareByCluster(s)
	n := 0
	for _, f := range shares {
		if f > 0 {
			n++
		}
	}
	return n
}
