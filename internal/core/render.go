// Shared text renderers. The CLI and the HTTP server must answer the same
// question with byte-identical output — the load test diffs server
// responses against cold CLI runs — so the table renderings both surfaces
// use live here, next to the figures, instead of being rebuilt inline by
// each frontend.
package core

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/profiler"
	"repro/internal/report"
	"repro/internal/workloads"
)

// WriteWorkloadsTable renders the workload catalog listing (`cactus list`,
// GET /api/v1/workloads?format=text).
func WriteWorkloadsTable(w io.Writer, ws []workloads.Workload) error {
	tbl := report.NewTable("Workloads", "abbr", "suite", "domain", "name")
	for _, wl := range ws {
		tbl.AddRow(wl.Abbr(), string(wl.Suite()), string(wl.Domain()), wl.Name())
	}
	return tbl.Render(w)
}

// WriteProfileTable renders one workload's per-kernel characterization
// table (`cactus profile`, GET /api/v1/profile?format=text).
func WriteProfileTable(w io.Writer, p *Profile) error {
	tbl := report.NewTable(
		fmt.Sprintf("%s — %s (%.3f ms GPU time)", p.Abbr(), p.Workload.Name(), p.TotalTime.Millis()),
		"kernel", "share", "inv", "II", "GIPS", "occ", "SM eff", "L1", "L2", "mem stall")
	for _, k := range p.Kernels {
		m := k.Metrics
		tbl.AddRow(k.Name,
			fmt.Sprintf("%.1f%%", 100*k.TimeShare),
			strconv.Itoa(k.Invocations),
			fmt.Sprintf("%.2f", k.II()),
			fmt.Sprintf("%.1f", k.GIPS()),
			fmt.Sprintf("%.1f", m.Get(profiler.WarpOccupancy)),
			fmt.Sprintf("%.2f", m.Get(profiler.SMEfficiency)),
			fmt.Sprintf("%.2f", m.Get(profiler.L1HitRate)),
			fmt.Sprintf("%.2f", m.Get(profiler.L2HitRate)),
			fmt.Sprintf("%.2f", m.Get(profiler.StallMem)),
		)
	}
	return tbl.Render(w)
}

// WriteCompareTable renders the cross-device comparison table (`cactus
// compare`, GET /api/v1/compare?format=text).
func WriteCompareTable(w io.Writer, cmps []DeviceComparison) error {
	tbl := report.NewTable("Cross-device comparison: RTX 3080 vs GTX 1080",
		"workload", "3080 II", "3080 GIPS", "1080 II", "1080 GIPS", "speedup", "side stable")
	for _, c := range cmps {
		tbl.AddRow(c.Abbr,
			fmt.Sprintf("%.2f", c.A.II), fmt.Sprintf("%.1f", c.A.GIPS),
			fmt.Sprintf("%.2f", c.B.II), fmt.Sprintf("%.1f", c.B.GIPS),
			fmt.Sprintf("%.2fx", c.Speedup), fmt.Sprintf("%v", c.SideStable))
	}
	return tbl.Render(w)
}
