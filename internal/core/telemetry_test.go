package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// tinyWorkload launches `launches` kernels of a trivial mix — fast enough
// to run dozens of times in a unit test.
type tinyWorkload struct {
	abbr     string
	launches int
}

func (c tinyWorkload) Name() string             { return c.abbr }
func (c tinyWorkload) Abbr() string             { return c.abbr }
func (c tinyWorkload) Suite() workloads.Suite   { return workloads.Cactus }
func (c tinyWorkload) Domain() workloads.Domain { return workloads.Scientific }

func (c tinyWorkload) Run(s *profiler.Session) error {
	var mix isa.Mix
	mix.Add(isa.FP32, 1<<10)
	mix.Add(isa.INT, 1<<8)
	for i := 0; i < c.launches; i++ {
		if _, err := s.Launch(gpu.KernelSpec{
			Name: fmt.Sprintf("%s_k%d", c.abbr, i%2),
			Grid: gpu.D1(32), Block: gpu.D1(128), Mix: mix,
		}); err != nil {
			return err
		}
	}
	return nil
}

func cheapSet(n int) []workloads.Workload {
	ws := make([]workloads.Workload, n)
	for i := range ws {
		ws[i] = tinyWorkload{abbr: fmt.Sprintf("CW%02d", i), launches: 2 + i%3}
	}
	return ws
}

// TestStudyCounterAccounting — the acceptance criterion: over a cold run
// then a warm run, cache hits plus misses must equal the number of
// workloads characterized, launches must match the sessions' records, and
// per-workload modeled/wall counters must exist.
func TestStudyCounterAccounting(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(8)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantLaunches := 0
	for _, w := range ws {
		wantLaunches += w.(tinyWorkload).launches
	}

	for _, run := range []struct {
		name                string
		wantHits, wantMiss  int64
		wantLaunchesCounted int64
	}{
		{"cold", 0, 8, int64(wantLaunches)},
		{"warm", 8, 0, 0}, // cache hits never touch the device
	} {
		ctr := telemetry.NewCounters()
		st, err := NewStudyWith(cfg, StudyOptions{
			Workers: 4, Cache: cache, Counters: ctr,
		}, ws...)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(st.Profiles) != len(ws) {
			t.Fatalf("%s: %d profiles, want %d", run.name, len(st.Profiles), len(ws))
		}
		hits := ctr.Get(telemetry.CtrCacheHits)
		misses := ctr.Get(telemetry.CtrCacheMisses)
		total := ctr.Get(telemetry.CtrWorkloads)
		if hits != run.wantHits || misses != run.wantMiss {
			t.Errorf("%s: hits=%d misses=%d, want %d/%d", run.name, hits, misses, run.wantHits, run.wantMiss)
		}
		if hits+misses != total {
			t.Errorf("%s: hits(%d)+misses(%d) != workloads characterized (%d)", run.name, hits, misses, total)
		}
		if got := ctr.Get(telemetry.CtrLaunches); got != run.wantLaunchesCounted {
			t.Errorf("%s: launches counter = %d, want %d", run.name, got, run.wantLaunchesCounted)
		}
		if run.name == "cold" {
			for _, w := range ws {
				if ctr.Get(telemetry.WorkloadModeledNs(w.Abbr())) <= 0 {
					t.Errorf("cold: no modeled-time counter for %s", w.Abbr())
				}
				if ctr.Get(telemetry.WorkloadWallNs(w.Abbr())) <= 0 {
					t.Errorf("cold: no wall-time counter for %s", w.Abbr())
				}
			}
		}
		if gauge := ctr.Get(telemetry.CtrWorkersBusy); gauge != 0 {
			t.Errorf("%s: workers-busy gauge = %d after study, want 0", run.name, gauge)
		}
	}
}

// TestStudyProgressAttribution — Progress must fire once per workload with
// the right cache outcome, from cold (miss) to warm (hit) to no-cache
// (disabled).
func TestStudyProgressAttribution(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(5)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	collect := func(opts StudyOptions) map[string]WorkloadProgress {
		var mu sync.Mutex
		got := map[string]WorkloadProgress{}
		opts.Progress = func(p WorkloadProgress) {
			mu.Lock()
			got[p.Abbr] = p
			mu.Unlock()
		}
		if _, err := NewStudyWith(cfg, opts, ws...); err != nil {
			t.Fatal(err)
		}
		return got
	}
	for _, run := range []struct {
		name string
		opts StudyOptions
		want CacheOutcome
	}{
		{"cold", StudyOptions{Workers: 2, Cache: cache}, CacheMiss},
		{"warm", StudyOptions{Workers: 2, Cache: cache}, CacheHit},
		{"no-cache", StudyOptions{Workers: 2}, CacheDisabled},
	} {
		got := collect(run.opts)
		if len(got) != len(ws) {
			t.Fatalf("%s: progress fired for %d workloads, want %d", run.name, len(got), len(ws))
		}
		for _, w := range ws {
			p, ok := got[w.Abbr()]
			if !ok {
				t.Fatalf("%s: no progress for %s", run.name, w.Abbr())
			}
			if p.Cache != run.want {
				t.Errorf("%s: %s cache outcome %v, want %v", run.name, w.Abbr(), p.Cache, run.want)
			}
			if p.Kernels <= 0 || p.ModeledTime <= 0 {
				t.Errorf("%s: %s progress incomplete: %+v", run.name, w.Abbr(), p)
			}
			if p.StoreErr != nil {
				t.Errorf("%s: %s unexpected store error: %v", run.name, w.Abbr(), p.StoreErr)
			}
		}
	}
}

// TestCorruptCacheEntriesAreCountedNotSwallowed — a garbage entry must be
// re-simulated (as before) but now leaves a trail: the corrupt counter and
// a CacheCorrupt progress outcome.
func TestCorruptCacheEntriesAreCountedNotSwallowed(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(3)
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStudyWith(cfg, StudyOptions{Workers: 1, Cache: cache}, ws...); err != nil {
		t.Fatal(err)
	}
	// Corrupt every entry on disk.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != len(ws) {
		t.Fatalf("found %d cache entries (err=%v), want %d", len(entries), err, len(ws))
	}
	for _, e := range entries {
		if err := os.WriteFile(e, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ctr := telemetry.NewCounters()
	var mu sync.Mutex
	outcomes := map[string]CacheOutcome{}
	_, err = NewStudyWith(cfg, StudyOptions{
		Workers: 2, Cache: cache, Counters: ctr,
		Progress: func(p WorkloadProgress) {
			mu.Lock()
			outcomes[p.Abbr] = p.Cache
			mu.Unlock()
		},
	}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr.Get(telemetry.CtrCacheCorrupt); got != int64(len(ws)) {
		t.Errorf("corrupt counter = %d, want %d", got, len(ws))
	}
	// Corrupt entries are still misses for hit/miss accounting.
	if got := ctr.Get(telemetry.CtrCacheMisses); got != int64(len(ws)) {
		t.Errorf("miss counter = %d, want %d", got, len(ws))
	}
	for abbr, o := range outcomes {
		if o != CacheCorrupt {
			t.Errorf("%s outcome = %v, want corrupt", abbr, o)
		}
	}
	// The corrupted entries must have been overwritten with good ones.
	for _, w := range ws {
		if _, outcome := cache.Probe(w, cfg); outcome != CacheHit {
			t.Errorf("%s not repaired: outcome %v", w.Abbr(), outcome)
		}
	}
}

// TestCacheStoreFailureDoesNotFailStudy — store errors used to abort the
// whole study; now the study completes, the error is counted, and Progress
// reports it.
func TestCacheStoreFailureDoesNotFailStudy(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(3)
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the cache: probes miss
	// (ErrNotExist) and every store fails at temp-file creation.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	ctr := telemetry.NewCounters()
	var mu sync.Mutex
	storeErrs := 0
	st, err := NewStudyWith(cfg, StudyOptions{
		Workers: 2, Cache: cache, Counters: ctr,
		Progress: func(p WorkloadProgress) {
			mu.Lock()
			if p.StoreErr != nil {
				storeErrs++
			}
			mu.Unlock()
		},
	}, ws...)
	if err != nil {
		t.Fatalf("study failed on store errors: %v", err)
	}
	if len(st.Profiles) != len(ws) {
		t.Fatalf("got %d profiles, want %d", len(st.Profiles), len(ws))
	}
	if got := ctr.Get(telemetry.CtrCacheStoreErrors); got != int64(len(ws)) {
		t.Errorf("store-error counter = %d, want %d", got, len(ws))
	}
	if storeErrs != len(ws) {
		t.Errorf("progress reported %d store errors, want %d", storeErrs, len(ws))
	}
}

// TestStudyTraceEvents — a traced parallel study must record one modeled
// kernel span per launch on the right lane, worker thread names, cache
// probe instants, and characterize spans; and the modeled track must
// serialize byte-identically between a serial and a parallel run (the
// determinism contract extended to telemetry). Run under -race this also
// exercises concurrent sink writes from pooled workers.
func TestStudyTraceEvents(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(6)
	wantLaunches := 0
	for _, w := range ws {
		wantLaunches += w.(tinyWorkload).launches
	}

	chrome := func(workers int) ([]byte, []telemetry.Event) {
		rec := telemetry.NewRecorder()
		if _, err := NewStudyWith(cfg, StudyOptions{
			Workers: workers, Tracer: rec,
		}, ws...); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteChrome(&buf, rec.Events(), telemetry.TrackModeled); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rec.Events()
	}

	serialBytes, _ := chrome(1)
	parallelBytes, events := chrome(4)
	if !bytes.Equal(serialBytes, parallelBytes) {
		t.Error("modeled-track trace differs between serial and 4-worker runs")
	}

	kernelSpans := 0
	lanes := map[int]bool{}
	characterize := 0
	for _, ev := range events {
		switch {
		case ev.Track == telemetry.TrackModeled && ev.Phase == telemetry.PhaseSpan && ev.Cat == "kernel":
			kernelSpans++
			lanes[ev.TID] = true
		case ev.Track == telemetry.TrackHost && ev.Phase == telemetry.PhaseSpan && ev.Cat == "characterize":
			characterize++
		}
	}
	if kernelSpans != wantLaunches {
		t.Errorf("modeled kernel spans = %d, want %d", kernelSpans, wantLaunches)
	}
	if len(lanes) != len(ws) {
		t.Errorf("modeled lanes = %d, want one per workload (%d)", len(lanes), len(ws))
	}
	if characterize != len(ws) {
		t.Errorf("characterize spans = %d, want %d", characterize, len(ws))
	}
}
