// Profile cache: characterizing a workload on the device model is the one
// expensive step every figure and table derives from, so profiles are
// memoized on disk. Entries are keyed by (workload abbreviation, device
// configuration fingerprint, schema version): changing the device config,
// the metric vector layout, or any workload definition must bump
// CacheSchemaVersion so stale entries miss instead of misread.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/units"
	"repro/internal/workloads"
)

// CacheSchemaVersion identifies the on-disk entry layout and the catalog
// generation that produced it. Bump on any change to Profile, the
// profiler metric set, or workload definitions.
const CacheSchemaVersion = 1

// ProfileCache is an on-disk store of workload profiles. One entry is one
// JSON file; writes go through a temp file plus rename, so concurrent
// studies sharing a cache directory never observe partial entries.
type ProfileCache struct {
	dir string
}

// DefaultCacheDir returns the per-user cactus profile cache directory.
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "cactus", "profiles"), nil
}

// OpenCache opens the profile cache rooted at dir, creating it if needed.
func OpenCache(dir string) (*ProfileCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty profile cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: opening profile cache: %w", err)
	}
	return &ProfileCache{dir: dir}, nil
}

// Dir returns the cache root directory.
func (c *ProfileCache) Dir() string { return c.dir }

// cachedKernel serializes one KernelChar. Metrics round-trips exactly:
// encoding/json emits float64 at full round-trip precision, so reloaded
// vectors are bit-identical and downstream output stays byte-identical.
type cachedKernel struct {
	Name        string          `json:"name"`
	Invocations int             `json:"invocations"`
	TimeShare   float64         `json:"time_share"`
	InstCount   float64         `json:"inst_count"`
	Metrics     profiler.Vector `json:"metrics"`
}

type cachedProfile struct {
	Schema         int            `json:"schema"`
	Abbr           string         `json:"abbr"`
	Device         string         `json:"device"`
	TotalTime      float64        `json:"total_time"`
	TotalWarpInsts uint64         `json:"total_warp_insts"`
	AggII          float64        `json:"agg_ii"`
	AggGIPS        float64        `json:"agg_gips"`
	Kernels        []cachedKernel `json:"kernels"`
}

// Fingerprint returns the profile-cache fingerprint of a device
// configuration: a short hex digest over every model parameter plus the
// cache schema version. Two configurations share a fingerprint only if
// they would produce interchangeable profiles, so the fingerprint is the
// device half of every profile key — the on-disk cache entry name, the
// server's in-memory LRU key, and singleflight deduplication all derive
// from it.
func Fingerprint(cfg gpu.DeviceConfig) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%+v", CacheSchemaVersion, cfg)))
	return hex.EncodeToString(sum[:8])
}

// path returns the entry file for (abbr, cfg). The whole device
// configuration is fingerprinted, not just its name, so tweaking any model
// parameter invalidates the entry.
func (c *ProfileCache) path(abbr string, cfg gpu.DeviceConfig) string {
	name := fmt.Sprintf("%s-%s-v%d.json",
		sanitizeKey(abbr), Fingerprint(cfg), CacheSchemaVersion)
	return filepath.Join(c.dir, name)
}

// sanitizeKey keeps abbreviations filesystem-safe.
func sanitizeKey(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// CacheOutcome classifies one profile-cache probe; telemetry counters and
// the CLI's -v progress lines attribute each workload to one of these.
type CacheOutcome int

const (
	// CacheDisabled means no cache was configured for the probe.
	CacheDisabled CacheOutcome = iota
	// CacheHit means the entry existed and loaded cleanly.
	CacheHit
	// CacheMiss means the entry was absent.
	CacheMiss
	// CacheCorrupt means the entry existed but was unreadable, malformed,
	// or mismatched — functionally a miss (the caller re-simulates and
	// overwrites), but reported distinctly so corruption is visible
	// instead of silently swallowed.
	CacheCorrupt
)

// String returns the outcome label used in progress lines and trace args.
func (o CacheOutcome) String() string {
	switch o {
	case CacheDisabled:
		return "disabled"
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// Load returns w's cached profile for cfg, or ok=false on a miss. Any
// unreadable, corrupt, or mismatched entry is treated as a miss: the
// caller re-simulates and overwrites it. Probe additionally distinguishes
// absent from corrupt entries.
func (c *ProfileCache) Load(w workloads.Workload, cfg gpu.DeviceConfig) (*Profile, bool) {
	p, outcome := c.Probe(w, cfg)
	return p, outcome == CacheHit
}

// Probe returns w's cached profile for cfg together with the probe outcome
// (CacheHit, CacheMiss, or CacheCorrupt — never CacheDisabled).
func (c *ProfileCache) Probe(w workloads.Workload, cfg gpu.DeviceConfig) (*Profile, CacheOutcome) {
	data, err := os.ReadFile(c.path(w.Abbr(), cfg))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, CacheMiss
		}
		return nil, CacheCorrupt
	}
	var e cachedProfile
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, CacheCorrupt
	}
	if e.Schema != CacheSchemaVersion || e.Abbr != w.Abbr() ||
		e.Device != cfg.Name || len(e.Kernels) == 0 || e.TotalTime <= 0 {
		return nil, CacheCorrupt
	}
	p := &Profile{
		Workload:       w,
		TotalTime:      units.Seconds(e.TotalTime),
		TotalWarpInsts: units.WarpInsts(e.TotalWarpInsts),
		AggII:          e.AggII,
		AggGIPS:        e.AggGIPS,
		Kernels:        make([]KernelChar, len(e.Kernels)),
	}
	for i, k := range e.Kernels {
		p.Kernels[i] = KernelChar{
			Name:        k.Name,
			Invocations: k.Invocations,
			TimeShare:   units.Fraction(k.TimeShare),
			Metrics:     k.Metrics,
			instCount:   k.InstCount,
		}
	}
	return p, CacheHit
}

// Store writes p's cache entry for cfg atomically.
func (c *ProfileCache) Store(p *Profile, cfg gpu.DeviceConfig) error {
	e := cachedProfile{
		Schema:         CacheSchemaVersion,
		Abbr:           p.Abbr(),
		Device:         cfg.Name,
		TotalTime:      p.TotalTime.Float(),
		TotalWarpInsts: uint64(p.TotalWarpInsts),
		AggII:          p.AggII,
		AggGIPS:        p.AggGIPS,
		Kernels:        make([]cachedKernel, len(p.Kernels)),
	}
	for i, k := range p.Kernels {
		e.Kernels[i] = cachedKernel{
			Name:        k.Name,
			Invocations: k.Invocations,
			TimeShare:   k.TimeShare.Clamp01(),
			InstCount:   k.instCount,
			Metrics:     k.Metrics,
		}
	}
	data, err := json.MarshalIndent(&e, "", "\t")
	if err != nil {
		return err
	}
	final := c.path(p.Abbr(), cfg)
	tmp, err := os.CreateTemp(c.dir, "."+filepath.Base(final)+".*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
