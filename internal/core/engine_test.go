package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/testutil"
	"repro/internal/workloads"
)

func engineWorkload(t *testing.T, abbr string) workloads.Workload {
	t.Helper()
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	w, err := cat.Lookup(abbr)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEngineLifecycle — construct, use, drain: after Shutdown every entry
// point fails with ErrEngineClosed, and Shutdown stays idempotent.
func TestEngineLifecycle(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	e := NewEngine(EngineOptions{Workers: 2})
	w := engineWorkload(t, "pb-sgemm")
	cfg := gpu.RTX3080()

	p, outcome, err := e.Characterize(context.Background(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(p.Kernels) == 0 {
		t.Fatal("empty profile")
	}
	if outcome != CacheDisabled {
		t.Errorf("outcome = %v, want CacheDisabled (engine has no cache)", outcome)
	}

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if _, _, err := e.Characterize(context.Background(), cfg, w); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Characterize after Shutdown: %v, want ErrEngineClosed", err)
	}
	if _, err := e.Study(context.Background(), cfg, w); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Study after Shutdown: %v, want ErrEngineClosed", err)
	}
}

// TestEngineCacheOutcomes — the engine reports how each profile was
// obtained: miss on the cold run, hit on the warm one.
func TestEngineCacheOutcomes(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Workers: 1, Cache: cache})
	defer func() { _ = e.Shutdown(context.Background()) }()
	w := engineWorkload(t, "pb-sgemm")

	_, outcome, err := e.Characterize(context.Background(), gpu.RTX3080(), w)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != CacheMiss {
		t.Errorf("cold outcome = %v, want CacheMiss", outcome)
	}
	_, outcome, err = e.Characterize(context.Background(), gpu.RTX3080(), w)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != CacheHit {
		t.Errorf("warm outcome = %v, want CacheHit", outcome)
	}
}

// TestEngineContextCancellation — a cancelled context fails slot
// acquisition instead of starting work.
func TestEngineContextCancellation(t *testing.T) {
	e := NewEngine(EngineOptions{Workers: 1})
	defer func() { _ = e.Shutdown(context.Background()) }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.Characterize(ctx, gpu.RTX3080(), engineWorkload(t, "pb-sgemm")); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestEngineConcurrentStudiesDeterministic — many overlapping studies and
// characterizations on both devices, sharing pooled simulators and one
// global slot pool, must each produce output byte-identical to the
// one-shot serial pipeline.
func TestEngineConcurrentStudiesDeterministic(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	ws := []workloads.Workload{
		engineWorkload(t, "pb-sgemm"),
		engineWorkload(t, "pb-spmv"),
		engineWorkload(t, "rd-nn"),
	}
	configs := []gpu.DeviceConfig{gpu.RTX3080(), gpu.GTX1080()}

	// Serial references from the one-shot path.
	want := make(map[string][]byte)
	for _, cfg := range configs {
		st, err := NewStudyWith(cfg, StudyOptions{Workers: 1}, ws...)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range st.Profiles {
			var buf bytes.Buffer
			if err := WriteProfileTable(&buf, p); err != nil {
				t.Fatal(err)
			}
			want[cfg.Name+"/"+p.Abbr()] = buf.Bytes()
		}
	}

	e := NewEngine(EngineOptions{Workers: 4})
	defer func() { _ = e.Shutdown(context.Background()) }()
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, cfg := range configs {
			wg.Add(1)
			go func(cfg gpu.DeviceConfig) {
				defer wg.Done()
				st, err := e.Study(context.Background(), cfg, ws...)
				if err != nil {
					t.Errorf("study on %s: %v", cfg.Name, err)
					return
				}
				for _, p := range st.Profiles {
					var buf bytes.Buffer
					if err := WriteProfileTable(&buf, p); err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(buf.Bytes(), want[cfg.Name+"/"+p.Abbr()]) {
						t.Errorf("%s on %s: concurrent engine output differs from serial one-shot run",
							p.Abbr(), cfg.Name)
					}
				}
			}(cfg)
			wg.Add(1)
			go func(cfg gpu.DeviceConfig, w workloads.Workload) {
				defer wg.Done()
				p, _, err := e.Characterize(context.Background(), cfg, w)
				if err != nil {
					t.Errorf("characterize on %s: %v", cfg.Name, err)
					return
				}
				var buf bytes.Buffer
				if err := WriteProfileTable(&buf, p); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf.Bytes(), want[cfg.Name+"/"+p.Abbr()]) {
					t.Errorf("%s on %s: engine Characterize output differs from serial one-shot run",
						p.Abbr(), cfg.Name)
				}
			}(cfg, ws[round%len(ws)])
		}
	}
	wg.Wait()
}

// TestEngineShutdownDrains — Shutdown must wait for in-flight work: every
// characterization started before Shutdown completes successfully.
func TestEngineShutdownDrains(t *testing.T) {
	defer testutil.CheckLeaks(t)()
	e := NewEngine(EngineOptions{Workers: 2})
	w := engineWorkload(t, "pb-sgemm")
	const calls = 8
	results := make(chan error, calls)
	var started sync.WaitGroup
	for i := 0; i < calls; i++ {
		started.Add(1)
		go func() {
			started.Done() // begin() has not run yet, but Shutdown must tolerate both orders
			_, _, err := e.Characterize(context.Background(), gpu.RTX3080(), w)
			results <- err
		}()
	}
	started.Wait()
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < calls; i++ {
		// Each call either completed its work or was refused at the door —
		// never abandoned half-way.
		if err := <-results; err != nil && !errors.Is(err, ErrEngineClosed) {
			t.Errorf("call %d: %v", i, err)
		}
	}
}
