// Attribution builders: where internal/telemetry defines the attribution
// tree's shape, math, and renderers, this file builds trees from the
// pipeline's own artifacts. Attribute projects a finished Study —
// live-simulated or cache-loaded, identically — into a study → workload →
// phase tree; AttributeSession descends one further level, workload →
// phase → launch, from a live profiling session where the individual
// launches are still in hand.
package core

import (
	"fmt"
	"sort"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Attribute builds the study's top-down attribution tree: one workload
// node per profile, one phase node per kernel (all invocations of one
// kernel), every modeled second split into the four bottleneck categories.
// The tree derives only from Profile fields that round-trip through the
// profile cache bit-for-bit, so a cache-loaded study attributes
// identically to a live-simulated one.
func Attribute(st *Study) *telemetry.AttributionNode {
	children := make([]*telemetry.AttributionNode, 0, len(st.Profiles))
	for _, p := range st.Profiles {
		children = append(children, AttributeProfile(p, st.Device))
	}
	return telemetry.AggregateNode(telemetry.LevelStudy, st.Device.Name, children)
}

// AttributeProfile builds one workload's subtree from its profile. Phase
// time is reconstructed as TimeShare x TotalTime and phase overhead as
// Invocations x the device's fixed launch overhead — both exact functions
// of cached fields, which is what keeps cached and live trees identical.
func AttributeProfile(p *Profile, cfg gpu.DeviceConfig) *telemetry.AttributionNode {
	phases := make([]*telemetry.AttributionNode, 0, len(p.Kernels))
	for _, k := range p.Kernels {
		t := units.Seconds(k.TimeShare.Float() * p.TotalTime.Float())
		oh := units.Seconds(float64(k.Invocations) * cfg.LaunchOverheadNs * 1e-9)
		phases = append(phases, &telemetry.AttributionNode{
			Level:    telemetry.LevelPhase,
			Name:     k.Name,
			Time:     t,
			Launches: k.Invocations,
			Shares: telemetry.AttributeStalls(t, oh,
				units.Clamp01(k.Metrics.Get(profiler.StallMem)),
				units.Clamp01(k.Metrics.Get(profiler.StallPipe)),
				units.Clamp01(k.Metrics.Get(profiler.StallExec)),
				units.Clamp01(k.Metrics.Get(profiler.StallSync))),
		})
	}
	return telemetry.AggregateNode(telemetry.LevelWorkload, p.Abbr(), phases)
}

// AttributeSession builds one workload's subtree with full launch-level
// depth from a live profiling session: each launch becomes a leaf carrying
// its own LaunchResult attribution, each kernel's launches aggregate into
// a phase, and phases order by descending time then name — the same
// dominance rank profiler.Session.Kernels uses.
func AttributeSession(abbr string, sess *profiler.Session) *telemetry.AttributionNode {
	byName := make(map[string][]*telemetry.AttributionNode)
	var order []string
	for _, r := range sess.Launches() {
		if _, ok := byName[r.Name]; !ok {
			order = append(order, r.Name)
		}
		seq := len(byName[r.Name])
		byName[r.Name] = append(byName[r.Name], &telemetry.AttributionNode{
			Level:    telemetry.LevelLaunch,
			Name:     fmt.Sprintf("%s#%d", r.Name, seq),
			Time:     r.Time,
			Launches: 1,
			Shares:   r.Attribution(),
		})
	}
	phases := make([]*telemetry.AttributionNode, 0, len(order))
	for _, name := range order {
		phases = append(phases, telemetry.AggregateNode(telemetry.LevelPhase, name, byName[name]))
	}
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].Time != phases[j].Time {
			return phases[i].Time > phases[j].Time
		}
		return phases[i].Name < phases[j].Name
	})
	return telemetry.AggregateNode(telemetry.LevelWorkload, abbr, phases)
}
