package core

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/roofline"
)

func TestSelectRepresentatives(t *testing.T) {
	st := study(t)
	obs := DominantObservations(st.Profiles, 0.7)
	model := roofline.ForDevice(st.Device)
	k := 4
	reps, err := SelectRepresentatives(obs, model, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != k {
		t.Fatalf("%d representatives, want %d", len(reps), k)
	}
	// Weights are a probability distribution over clusters, sorted desc.
	var sum float64
	for i, r := range reps {
		sum += r.Weight
		if r.Weight <= 0 || r.Weight > 1 {
			t.Errorf("weight %g", r.Weight)
		}
		if i > 0 && r.Weight > reps[i-1].Weight+1e-12 {
			t.Error("representatives not sorted by weight")
		}
		if r.Kernel == "" || r.Workload == "" {
			t.Error("representative identity")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	// Distinct clusters.
	seen := map[int]bool{}
	for _, r := range reps {
		if seen[r.Cluster] {
			t.Errorf("cluster %d represented twice", r.Cluster)
		}
		seen[r.Cluster] = true
	}
	if _, err := SelectRepresentatives(obs[:2], model, 8); err == nil {
		t.Error("too few observations should fail")
	}
}

func TestCompareDevices(t *testing.T) {
	// Characterize two fast workloads on both devices.
	cat, err := DefaultCatalog()
	if err != nil {
		t.Fatal(err)
	}
	// Use workloads far from the elbow: side placement of boundary cases
	// legitimately depends on cache capacities, which differ per device.
	w1, _ := cat.Lookup("pb-cutcp")
	w2, _ := cat.Lookup("pb-spmv")
	a, err := NewStudy(gpu.RTX3080(), w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(gpu.GTX1080(), w1, w2)
	if err != nil {
		t.Fatal(err)
	}
	cmps, err := CompareDevices(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 2 {
		t.Fatalf("%d comparisons", len(cmps))
	}
	for _, c := range cmps {
		// The 3080 has higher roofs: aggregate throughput must not regress.
		if c.Speedup < 1 {
			t.Errorf("%s: RTX 3080 slower than GTX 1080 (%.2fx)", c.Abbr, c.Speedup)
		}
		// Compute- vs memory-intensity is an algorithmic property: it must
		// be stable across devices.
		if !c.SideStable {
			t.Errorf("%s: roofline side flipped across devices", c.Abbr)
		}
	}
	// Missing workload on one side.
	short, err := NewStudy(gpu.GTX1080(), w1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareDevices(a, short); err == nil {
		t.Error("mismatched studies should fail")
	}
}
