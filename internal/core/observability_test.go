package core

import (
	"bytes"
	"log/slog"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/gpu"
	"repro/internal/telemetry"
)

// deterministicMetrics strips the order- and clock-sensitive parts out of
// a registry snapshot: the wall_seconds histogram and every *.wall_ns
// counter vary run to run, and histogram Sums accumulate float64 in
// observation order, so parallel runs drift from serial by association
// error (the Sums are compared separately, with a tolerance). Everything
// kept is a pure function of the modeled study.
func deterministicMetrics(s telemetry.MetricsSnapshot) telemetry.MetricsSnapshot {
	var out telemetry.MetricsSnapshot
	for _, c := range s.Counters {
		if strings.HasSuffix(c.Name, ".wall_ns") || c.Name == telemetry.CtrWorkersBusy {
			continue
		}
		out.Counters = append(out.Counters, c)
	}
	for _, h := range s.Histograms {
		if h.Name == telemetry.HistWorkloadWallSeconds.Name {
			continue
		}
		h.Sum = 0
		out.Histograms = append(out.Histograms, h)
	}
	return out
}

// histogramSums returns name → Sum for the modeled-value histograms.
func histogramSums(s telemetry.MetricsSnapshot) map[string]float64 {
	sums := map[string]float64{}
	for _, h := range s.Histograms {
		if h.Name == telemetry.HistWorkloadWallSeconds.Name {
			continue
		}
		sums[h.Name] = h.Sum
	}
	return sums
}

// TestParallelObservabilityMatchesSerial — the satellite acceptance test,
// exercised under -race in CI: an 8-worker study driving the registry and
// the attribution tree concurrently must produce exactly the serial run's
// attribution tree and the serial run's deterministic metrics.
func TestParallelObservabilityMatchesSerial(t *testing.T) {
	cfg := gpu.RTX3080()
	ws := cheapSet(12)
	study := func(workers int) (*Study, telemetry.MetricsSnapshot) {
		reg := telemetry.NewRegistry()
		st, err := NewStudyWith(cfg, StudyOptions{
			Workers:  workers,
			Counters: reg.Counters(),
			Metrics:  reg,
		}, ws...)
		if err != nil {
			t.Fatal(err)
		}
		return st, reg.Snapshot()
	}
	serialStudy, serialSnap := study(1)
	parallelStudy, parallelSnap := study(8)

	serialTree := Attribute(serialStudy)
	parallelTree := Attribute(parallelStudy)
	if v := telemetry.CheckAttribution(parallelTree, 0); len(v) != 0 {
		t.Fatalf("parallel attribution identity violated: %v", v)
	}
	if !reflect.DeepEqual(serialTree, parallelTree) {
		t.Error("8-worker attribution tree differs from the serial tree")
	}
	if !reflect.DeepEqual(deterministicMetrics(serialSnap), deterministicMetrics(parallelSnap)) {
		t.Errorf("8-worker deterministic metrics differ from serial:\nserial:   %+v\nparallel: %+v",
			deterministicMetrics(serialSnap), deterministicMetrics(parallelSnap))
	}
	parallelSums := histogramSums(parallelSnap)
	for name, want := range histogramSums(serialSnap) {
		got := parallelSums[name]
		if diff := math.Abs(got - want); diff > 1e-9*math.Max(math.Abs(want), 1) {
			t.Errorf("%s sum = %g parallel vs %g serial (beyond association error)", name, got, want)
		}
	}
}

// TestStudyMetricsObservation — a study with a registry attached observes
// one modeled-seconds and one wall-seconds sample per workload and one
// L1/L2 sample per kernel profile.
func TestStudyMetricsObservation(t *testing.T) {
	ws := cheapSet(5)
	reg := telemetry.NewRegistry()
	st, err := NewStudyWith(gpu.RTX3080(), StudyOptions{Workers: 2, Metrics: reg}, ws...)
	if err != nil {
		t.Fatal(err)
	}
	var kernels int64
	for _, p := range st.Profiles {
		kernels += int64(len(p.Kernels))
	}
	byName := map[string]telemetry.HistogramSnapshot{}
	for _, h := range reg.Snapshot().Histograms {
		byName[h.Name] = h
	}
	for name, want := range map[string]int64{
		telemetry.HistWorkloadModeledSeconds.Name: int64(len(ws)),
		telemetry.HistWorkloadWallSeconds.Name:    int64(len(ws)),
		telemetry.HistKernelL1HitRate.Name:        kernels,
		telemetry.HistKernelL2HitRate.Name:        kernels,
	} {
		h, ok := byName[name]
		if !ok {
			t.Errorf("histogram %q never observed", name)
			continue
		}
		if h.Count != want {
			t.Errorf("%s count = %d, want %d", name, h.Count, want)
		}
	}
}

// TestStudyLoggerEvents — a slog logger on StudyOptions receives one
// structured completion event per workload, concurrently safe (the JSON
// handler serializes), and silence when absent.
func TestStudyLoggerEvents(t *testing.T) {
	ws := cheapSet(4)
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	if _, err := NewStudyWith(gpu.RTX3080(), StudyOptions{Workers: 2, Logger: logger}, ws...); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if got := strings.Count(out, "workload characterized"); got != len(ws) {
		t.Errorf("logger saw %d completion events, want %d:\n%s", got, len(ws), out)
	}
	for _, w := range ws {
		if !strings.Contains(out, `"workload":"`+w.Abbr()+`"`) {
			t.Errorf("no log event for %s:\n%s", w.Abbr(), out)
		}
	}
}

// lockedWriter serializes writes from concurrent slog handlers in tests.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
