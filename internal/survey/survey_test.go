package survey

import "testing"

func TestSeriesAlignment(t *testing.T) {
	for _, s := range Suites {
		series, err := Series(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != len(Years) {
			t.Errorf("%s: %d points for %d years", s, len(series), len(Years))
		}
	}
	if _, err := Series("bogus"); err == nil {
		t.Error("unknown suite should fail")
	}
}

func TestCountAndTotal(t *testing.T) {
	c, err := Count("Rodinia", 2018)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Error("Rodinia 2018 usage should be positive")
	}
	if _, err := Count("Rodinia", 1999); err == nil {
		t.Error("out-of-range year should fail")
	}
	if _, err := Count("bogus", 2018); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := Total("bogus"); err == nil {
		t.Error("unknown suite total should fail")
	}
}

func TestRankingMatchesPaper(t *testing.T) {
	r := Ranking()
	if r[0] != "Rodinia" {
		t.Errorf("most-used suite = %s, want Rodinia (Fig. 1)", r[0])
	}
	if r[1] != "Parboil" {
		t.Errorf("second suite = %s, want Parboil (Fig. 1)", r[1])
	}
	// Totals strictly ordered.
	prev := 1 << 30
	for _, s := range r {
		tot, err := Total(s)
		if err != nil {
			t.Fatal(err)
		}
		if tot > prev {
			t.Error("ranking not sorted by total")
		}
		prev = tot
	}
}

func TestRodiniaGrowthTrend(t *testing.T) {
	// Usage grows through the decade (the motivation for the survey).
	early, _ := Count("Rodinia", 2011)
	late, _ := Count("Rodinia", 2019)
	if late <= early {
		t.Errorf("Rodinia usage %d (2011) -> %d (2019): expected growth", early, late)
	}
}
