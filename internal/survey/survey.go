// Package survey reproduces Figure 1: the popularity of GPU-compute
// benchmark suites in GPU-related papers at the top-four architecture
// conferences (ISCA, MICRO, ASPLOS, HPCA) from 2010 through 2020. The
// figure is a literature-survey artifact, not a system measurement, so the
// per-year usage counts are an embedded dataset reconstructed to match the
// figure's reported shape: Rodinia is the most used suite, followed by
// Parboil, with CUDA-SDK, LoneStar, PolyBench and SHOC behind (see
// DESIGN.md, substitutions).
package survey

import (
	"fmt"
	"sort"
)

// Years spans the survey period.
var Years = []int{2010, 2011, 2012, 2013, 2014, 2015, 2016, 2017, 2018, 2019, 2020}

// Suites lists the surveyed benchmark suites in overall-popularity order.
var Suites = []string{"Rodinia", "Parboil", "CUDA-SDK", "LoneStar", "PolyBench", "SHOC"}

// usage[suite][yearIndex] = number of papers using the suite that year.
var usage = map[string][]int{
	"Rodinia":   {1, 3, 5, 8, 11, 13, 15, 16, 17, 18, 16},
	"Parboil":   {1, 2, 4, 6, 8, 9, 10, 9, 8, 7, 6},
	"CUDA-SDK":  {2, 3, 4, 5, 5, 6, 5, 5, 4, 4, 3},
	"LoneStar":  {0, 1, 1, 2, 3, 4, 4, 5, 4, 4, 3},
	"PolyBench": {0, 0, 1, 2, 3, 3, 4, 4, 4, 3, 3},
	"SHOC":      {1, 1, 2, 3, 3, 3, 3, 2, 2, 2, 1},
}

// Count returns the number of papers using suite in year.
func Count(suite string, year int) (int, error) {
	row, ok := usage[suite]
	if !ok {
		return 0, fmt.Errorf("survey: unknown suite %q", suite)
	}
	for i, y := range Years {
		if y == year {
			return row[i], nil
		}
	}
	return 0, fmt.Errorf("survey: year %d outside %d-%d", year, Years[0], Years[len(Years)-1])
}

// Total returns a suite's total usage count over the survey period.
func Total(suite string) (int, error) {
	row, ok := usage[suite]
	if !ok {
		return 0, fmt.Errorf("survey: unknown suite %q", suite)
	}
	t := 0
	for _, v := range row {
		t += v
	}
	return t, nil
}

// Ranking returns the suites ordered by total usage, most used first.
func Ranking() []string {
	out := append([]string(nil), Suites...)
	sort.SliceStable(out, func(i, j int) bool {
		ti, _ := Total(out[i])
		tj, _ := Total(out[j])
		return ti > tj
	})
	return out
}

// Series returns a suite's full per-year series (aligned with Years).
func Series(suite string) ([]int, error) {
	row, ok := usage[suite]
	if !ok {
		return nil, fmt.Errorf("survey: unknown suite %q", suite)
	}
	return append([]int(nil), row...), nil
}
