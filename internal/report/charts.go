package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/roofline"
	"repro/internal/stats"
)

// RooflineChart renders a log-log instruction-roofline scatter chart. Points
// are plotted with single-character glyphs; the memory roof (diagonal) and
// compute roof (horizontal) are drawn as '/' and '-'; the elbow column is
// marked. A legend maps glyphs back to labels.
type RooflineChart struct {
	Title  string
	Model  roofline.Model
	Points []roofline.Point
	// Glyphs assigns a rune per point label prefix; unset labels cycle
	// through a default alphabet.
	Width, Height int
}

// Render writes the chart to w.
func (c *RooflineChart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	// Chart range: II from 1e-2..1e4, GIPS from 1e-2..1e3 (log10), adjusted
	// to cover the data.
	xmin, xmax := -2.0, 4.0
	ymin, ymax := -2.0, 3.0
	for _, p := range c.Points {
		if p.II > 0 && !math.IsInf(p.II, 1) {
			x := math.Log10(p.II)
			xmin, xmax = math.Min(xmin, math.Floor(x)), math.Max(xmax, math.Ceil(x))
		}
		if p.GIPS > 0 {
			y := math.Log10(p.GIPS)
			ymin, ymax = math.Min(ymin, math.Floor(y)), math.Max(ymax, math.Ceil(y))
		}
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		return int((x - xmin) / (xmax - xmin) * float64(width-1))
	}
	toRow := func(y float64) int {
		// Row 0 is the top.
		return height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
	}
	inGrid := func(r, col int) bool { return r >= 0 && r < height && col >= 0 && col < width }

	// Draw roofs.
	for col := 0; col < width; col++ {
		x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
		roof := c.Model.Roof(math.Pow(10, x))
		if roof <= 0 {
			continue
		}
		r := toRow(math.Log10(roof))
		if inGrid(r, col) {
			ch := byte('-')
			if roof < c.Model.PeakGIPS {
				ch = '/'
			}
			if grid[r][col] == ' ' {
				grid[r][col] = ch
			}
		}
	}
	// Mark the elbow.
	elbowCol := toCol(math.Log10(c.Model.ElbowII()))
	for r := 0; r < height; r++ {
		if inGrid(r, elbowCol) && grid[r][elbowCol] == ' ' {
			grid[r][elbowCol] = '|'
		}
	}

	// Plot points with per-label glyphs.
	glyphAlphabet := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	glyphOf := map[string]byte{}
	var legend []string
	next := 0
	for _, p := range c.Points {
		g, ok := glyphOf[p.Label]
		if !ok {
			g = glyphAlphabet[next%len(glyphAlphabet)]
			next++
			glyphOf[p.Label] = g
			legend = append(legend, fmt.Sprintf("%c=%s", g, p.Label))
		}
		if p.II <= 0 || p.GIPS <= 0 {
			continue
		}
		x := math.Log10(p.II)
		if math.IsInf(p.II, 1) {
			x = xmax
		}
		r, col := toRow(math.Log10(p.GIPS)), toCol(x)
		if inGrid(r, col) {
			grid[r][col] = g
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "GIPS (log10 %g..%g) vs warp insts per DRAM txn (log10 %g..%g); elbow II=%.2f\n",
		ymin, ymax, xmin, xmax, c.Model.ElbowII())
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	// Legend, wrapped.
	const perLine = 6
	for i := 0; i < len(legend); i += perLine {
		end := i + perLine
		if end > len(legend) {
			end = len(legend)
		}
		b.WriteString("  " + strings.Join(legend[i:end], "  ") + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderHeatmap renders the Figure 8 style correlation heatmap: rows x cols
// of |PCC| values bucketed into the paper's color code
// (' ' none, '.' weak, '#' strong), plus the numeric values.
func RenderHeatmap(w io.Writer, title string, rowNames, colNames []string, values [][]float64) error {
	var b strings.Builder
	if title != "" {
		b.WriteString(title + "\n")
	}
	rowW := 0
	for _, r := range rowNames {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	// Column header (abbreviated to 6 chars).
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for _, cn := range colNames {
		short := cn
		if len(short) > 7 {
			short = short[:7]
		}
		fmt.Fprintf(&b, " %7s", short)
	}
	b.WriteString("\n")
	for i, rn := range rowNames {
		fmt.Fprintf(&b, "%-*s", rowW, rn)
		for j := range colNames {
			v := math.Abs(values[i][j])
			var mark byte
			switch stats.Strength(v) {
			case stats.NoCorrelation:
				mark = ' '
			case stats.WeakCorrelation:
				mark = '.'
			default:
				mark = '#'
			}
			fmt.Fprintf(&b, " %c%5.2f%c", mark, v, mark)
		}
		b.WriteString("\n")
	}
	b.WriteString("legend: #x.xx# strong (|r|>=0.5), .x.xx. weak (0.2<=|r|<0.5), blank none\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderDendrogram renders the merge tree with heights, annotating each leaf
// with its cluster id under a k-cluster cut (Figure 9's six primary
// clusters).
func RenderDendrogram(w io.Writer, d *stats.Dendrogram, k int) error {
	assign, err := d.Cut(k)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dendrogram (%d leaves, cut into %d clusters)\n", d.N, k)
	var walk func(node int, prefix string, last bool)
	walk = func(node int, prefix string, last bool) {
		connector := "+-- "
		childPrefix := prefix + "|   "
		if last {
			childPrefix = prefix + "    "
		}
		if node < d.N {
			fmt.Fprintf(&b, "%s%s%s  [cluster %d]\n", prefix, connector, d.Labels[node], assign[node]+1)
			return
		}
		m := d.Merges[node-d.N]
		fmt.Fprintf(&b, "%s%s(h=%.3f)\n", prefix, connector, m.Height)
		walk(m.A, childPrefix, false)
		walk(m.B, childPrefix, true)
	}
	if len(d.Merges) == 0 {
		for i, l := range d.Labels {
			fmt.Fprintf(&b, "+-- %s  [cluster %d]\n", l, assign[i]+1)
		}
	} else {
		walk(d.N+len(d.Merges)-1, "", true)
	}
	_, err = io.WriteString(w, b.String())
	return err
}

// RenderClusterSummary prints, per cluster, the member labels — the compact
// companion to the dendrogram used for Observations #10-#12.
func RenderClusterSummary(w io.Writer, d *stats.Dendrogram, k int) error {
	assign, err := d.Cut(k)
	if err != nil {
		return err
	}
	byCluster := make(map[int][]string)
	for leaf, c := range assign {
		byCluster[c] = append(byCluster[c], d.Labels[leaf])
	}
	ids := make([]int, 0, len(byCluster))
	for c := range byCluster {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, c := range ids {
		members := byCluster[c]
		sort.Strings(members)
		fmt.Fprintf(&b, "cluster %d (%d): %s\n", c+1, len(members), strings.Join(members, ", "))
	}
	_, err = io.WriteString(w, b.String())
	return err
}
