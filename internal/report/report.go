// Package report renders the paper's tables and figures as plain text (and
// CSV) so every experiment's output can be regenerated and inspected without
// a plotting stack: aligned tables (Tables I-IV), log-log roofline scatter
// charts (Figs. 4-7), stacked time-distribution bars (Fig. 2), cumulative
// distributions (Fig. 3), correlation heatmaps (Fig. 8), and dendrograms
// (Fig. 9).
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/units"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r[:len(t.Header)])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits header+rows as comma-separated values, quoting cells that
// contain commas or quotes.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	return nil
}

// HBar renders a horizontal bar of the given fraction with width cells,
// using '#' for the filled part.
func HBar(frac units.Fraction, width int) string {
	f := frac.Clamp01()
	n := int(f*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// StackedBar renders segments (fractions summing to <= 1) using a glyph per
// segment, cycling through glyphs if needed.
func StackedBar(fracs []units.Fraction, width int) string {
	glyphs := []byte("#@%*+=-:~o")
	var b strings.Builder
	used := 0
	for i, f := range fracs {
		n := int(f.Clamp01()*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		b.WriteString(strings.Repeat(string(glyphs[i%len(glyphs)]), n))
		used += n
	}
	if used < width {
		b.WriteString(strings.Repeat(".", width-used))
	}
	return b.String()
}
