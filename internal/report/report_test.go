package report

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/units"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b") // short row padded
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Title", "name", "alpha", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Errorf("line count = %d", len(lines))
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"x,y", `q"q`}, {"1", "2"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"q""q"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header: %s", out)
	}
}

func TestHBar(t *testing.T) {
	if got := HBar(0.5, 10); got != "#####....." {
		t.Errorf("HBar = %q", got)
	}
	if got := HBar(-1, 4); got != "...." {
		t.Errorf("HBar clamp low = %q", got)
	}
	if got := HBar(2, 4); got != "####" {
		t.Errorf("HBar clamp high = %q", got)
	}
}

func TestStackedBar(t *testing.T) {
	got := StackedBar([]units.Fraction{0.5, 0.3}, 10)
	if len(got) != 10 {
		t.Errorf("length = %d", len(got))
	}
	if !strings.HasPrefix(got, "#####") {
		t.Errorf("first segment: %q", got)
	}
	if !strings.Contains(got, "@@@") {
		t.Errorf("second segment: %q", got)
	}
	if !strings.HasSuffix(got, "..") {
		t.Errorf("remainder: %q", got)
	}
	// Overfull fractions must not exceed width.
	if got := StackedBar([]units.Fraction{0.9, 0.9}, 10); len(got) != 10 {
		t.Errorf("overfull length = %d", len(got))
	}
}

func TestRooflineChartRender(t *testing.T) {
	m := roofline.ForDevice(gpu.RTX3080())
	c := RooflineChart{
		Title: "test roofline",
		Model: m,
		Points: []roofline.Point{
			{Label: "memk", II: 2, GIPS: 30},
			{Label: "cmpk", II: 200, GIPS: 400},
		},
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"test roofline", "elbow II=21.7", "A=memk", "B=cmpk", "/", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestRenderHeatmap(t *testing.T) {
	var b strings.Builder
	err := RenderHeatmap(&b, "fig8", []string{"GIPS"}, []string{"L1", "L2"},
		[][]float64{{0.7, -0.3}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# 0.70#") {
		t.Errorf("strong cell missing: %s", out)
	}
	if !strings.Contains(out, ". 0.30.") {
		t.Errorf("weak cell missing: %s", out)
	}
}

func TestRenderDendrogram(t *testing.T) {
	d, err := stats.Agglomerative([][]float64{{0}, {0.5}, {10}}, []string{"a", "b", "c"}, stats.WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderDendrogram(&b, d, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"a  [cluster", "c  [cluster", "h="} {
		if !strings.Contains(out, want) {
			t.Errorf("dendrogram missing %q:\n%s", want, out)
		}
	}
	var s strings.Builder
	if err := RenderClusterSummary(&s, d, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "cluster 1 (2): a, b") {
		t.Errorf("summary: %s", s.String())
	}
	if err := RenderDendrogram(&b, d, 99); err == nil {
		t.Error("bad cut should error")
	}
}
