package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// Params returns the managed parameters.
	Params() []*V
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	params   []*V
	lr       float32
	momentum float32
	velocity []*tensor.Tensor
	dev      *Device
}

// NewSGD builds an SGD optimizer over params.
func NewSGD(d *Device, params []*V, lr, momentum float32) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, dev: d}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.T.Shape...)
		}
	}
	return s
}

// Params returns the managed parameters.
func (s *SGD) Params() []*V { return s.params }

// Step applies one SGD update across all parameters. The per-tensor updates
// launch as one fused multi-tensor kernel, like PyTorch's foreach path.
func (s *SGD) Step() {
	total := 0
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		total += p.T.Numel()
		for j := range p.T.Data {
			g := p.Grad.Data[j]
			if s.momentum != 0 {
				v := s.velocity[i]
				v.Data[j] = s.momentum*v.Data[j] + g
				g = v.Data[j]
			}
			p.T.Data[j] -= s.lr * g
		}
		p.Grad.Zero()
	}
	if total > 0 {
		s.dev.emitParamOp("fill_zero_grad", total, 0.5, 0, 0, 1)
		s.dev.emitParamOp("multi_tensor_sgd_step", total, 3, 0, 2, 1)
	}
}

// Adam is the Adam optimizer.
type Adam struct {
	params   []*V
	lr       float32
	beta1    float32
	beta2    float32
	eps      float32
	m, v     []*tensor.Tensor
	step     int
	dev      *Device
	perParam bool
}

// NewAdam builds an Adam optimizer with the usual defaults
// (beta1=0.9 or the DCGAN 0.5, beta2=0.999).
func NewAdam(d *Device, params []*V, lr, beta1 float32) *Adam {
	a := &Adam{
		params: params, lr: lr, beta1: beta1, beta2: 0.999, eps: 1e-8, dev: d,
		m: make([]*tensor.Tensor, len(params)),
		v: make([]*tensor.Tensor, len(params)),
	}
	for i, p := range params {
		a.m[i] = tensor.New(p.T.Shape...)
		a.v[i] = tensor.New(p.T.Shape...)
	}
	return a
}

// SetPerParam switches the update to one kernel launch per parameter tensor
// (size-bucketed names), matching pre-multi-tensor PyTorch releases.
func (a *Adam) SetPerParam(on bool) { a.perParam = on }

// Params returns the managed parameters.
func (a *Adam) Params() []*V { return a.params }

// Step applies one Adam update across all parameters.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.beta2), float64(a.step)))
	total := 0
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		total += p.T.Numel()
		if a.perParam {
			a.dev.emitParamOp(fmt.Sprintf("adam_elementwise_n%d", bucket(p.T.Numel())), p.T.Numel(), 0, 1, 4, 3)
		}
		m, v := a.m[i], a.v[i]
		for j := range p.T.Data {
			g := p.Grad.Data[j]
			m.Data[j] = a.beta1*m.Data[j] + (1-a.beta1)*g
			v.Data[j] = a.beta2*v.Data[j] + (1-a.beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.T.Data[j] -= a.lr * mh / (float32(math.Sqrt(float64(vh))) + a.eps)
		}
		p.Grad.Zero()
	}
	if total > 0 {
		a.dev.emitParamOp("fill_zero_grad", total, 0.5, 0, 0, 1)
		if !a.perParam {
			a.dev.emitParamOp("multi_tensor_adam_step", total, 0, 1, 4, 3)
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, launching the norm-reduce and scale kernels RNN training uses.
func ClipGradNorm(d *Device, params []*V, maxNorm float32) float32 {
	var sum float64
	total := 0
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		total += p.T.Numel()
		for _, g := range p.Grad.Data {
			sum += float64(g) * float64(g)
		}
	}
	if total == 0 {
		return 0
	}
	d.emitParamOp("grad_norm_reduce", total, 1, 0, 1, 0)
	norm := float32(math.Sqrt(sum))
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.Grad == nil {
				continue
			}
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
		d.emitParamOp("grad_clip_scale", total, 1, 0, 1, 1)
	}
	return norm
}

// CollectParams flattens parameter lists of several modules.
func CollectParams(groups ...[]*V) []*V {
	var out []*V
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
