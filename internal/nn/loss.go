package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MSELoss returns mean((pred - target)^2) as a scalar variable. target is a
// plain tensor (no gradient).
func MSELoss(pred *V, target *tensor.Tensor) (*V, error) {
	if pred.T.Numel() != target.Numel() {
		return nil, fmt.Errorf("nn: mse %v vs %v", pred.T.Shape, target.Shape)
	}
	d := pred.dev
	n := float32(pred.T.Numel())
	var sum float32
	for i := range pred.T.Data {
		df := pred.T.Data[i] - target.Data[i]
		sum += df * df
	}
	out := tensor.New(1)
	out.Data[0] = sum / n
	d.emitReduce("mse_loss_fwd", pred.T.Numel())
	return d.newNode(out, func(o *V) {
		d.emitElementwise("mse_loss_bwd", pred.T.Numel(), 2, 2, 1)
		if pred.needGrad {
			g := tensor.New(pred.T.Shape...)
			scale := o.Grad.Data[0] * 2 / n
			for i := range g.Data {
				g.Data[i] = scale * (pred.T.Data[i] - target.Data[i])
			}
			pred.addGrad(g)
		}
	}, pred), nil
}

// BCEWithLogits returns the mean binary cross-entropy between logits and
// targets in [0,1], computed with the numerically stable formulation
// max(z,0) - z*t + log(1+exp(-|z|)).
func BCEWithLogits(logits *V, target *tensor.Tensor) (*V, error) {
	if logits.T.Numel() != target.Numel() {
		return nil, fmt.Errorf("nn: bce %v vs %v", logits.T.Shape, target.Shape)
	}
	d := logits.dev
	n := float32(logits.T.Numel())
	var sum float64
	for i := range logits.T.Data {
		z := float64(logits.T.Data[i])
		t := float64(target.Data[i])
		sum += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
	}
	out := tensor.New(1)
	out.Data[0] = float32(sum) / n
	d.emitSFUElementwise("bce_logits_fwd", logits.T.Numel(), 2, 2, 1)
	return d.newNode(out, func(o *V) {
		d.emitSFUElementwise("bce_logits_bwd", logits.T.Numel(), 2, 2, 1)
		if logits.needGrad {
			g := tensor.New(logits.T.Shape...)
			scale := o.Grad.Data[0] / n
			for i := range g.Data {
				z := float64(logits.T.Data[i])
				sig := float32(1 / (1 + math.Exp(-z)))
				g.Data[i] = scale * (sig - target.Data[i])
			}
			logits.addGrad(g)
		}
	}, logits), nil
}

// CrossEntropy returns the mean softmax cross-entropy between logits
// (batch, classes) and integer labels.
func CrossEntropy(logits *V, labels []int) (*V, error) {
	if len(logits.T.Shape) != 2 || logits.T.Shape[0] != len(labels) {
		return nil, fmt.Errorf("nn: cross-entropy logits %v, %d labels", logits.T.Shape, len(labels))
	}
	d := logits.dev
	probs, err := tensor.Softmax(logits.T)
	if err != nil {
		return nil, err
	}
	b, c := logits.T.Shape[0], logits.T.Shape[1]
	var sum float64
	for i, lab := range labels {
		if lab < 0 || lab >= c {
			return nil, fmt.Errorf("nn: label %d out of %d classes", lab, c)
		}
		p := float64(probs.Data[i*c+lab])
		if p < 1e-12 {
			p = 1e-12
		}
		sum -= math.Log(p)
	}
	out := tensor.New(1)
	out.Data[0] = float32(sum / float64(b))
	d.emitSFUElementwise("softmax_xent_fwd", logits.T.Numel(), 1, 1, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("softmax_xent_bwd", logits.T.Numel(), 2, 2, 1)
		if logits.needGrad {
			g := tensor.New(b, c)
			scale := o.Grad.Data[0] / float32(b)
			for i := 0; i < b; i++ {
				for j := 0; j < c; j++ {
					g.Data[i*c+j] = scale * probs.Data[i*c+j]
				}
				g.Data[i*c+labels[i]] -= scale
			}
			logits.addGrad(g)
		}
	}, logits), nil
}

// LogSoftmaxRows applies a row-wise log-softmax (the PyTorch tutorial's
// decoder output activation).
func LogSoftmaxRows(x *V) (*V, error) {
	if len(x.T.Shape) != 2 {
		return nil, fmt.Errorf("nn: log-softmax on %v", x.T.Shape)
	}
	d := x.dev
	probs, err := tensor.Softmax(x.T)
	if err != nil {
		return nil, err
	}
	out := tensor.New(x.T.Shape...)
	for i, p := range probs.Data {
		if p < 1e-20 {
			p = 1e-20
		}
		out.Data[i] = float32(math.Log(float64(p)))
	}
	d.emitSFUElementwise("log_softmax_fwd", x.T.Numel(), 1, 1, 1)
	m, n := x.T.Shape[0], x.T.Shape[1]
	return d.newNode(out, func(o *V) {
		d.emitElementwise("log_softmax_bwd", x.T.Numel(), 2, 2, 1)
		if x.needGrad {
			g := tensor.New(m, n)
			for i := 0; i < m; i++ {
				var rowSum float32
				for j := 0; j < n; j++ {
					rowSum += o.Grad.Data[i*n+j]
				}
				for j := 0; j < n; j++ {
					g.Data[i*n+j] = o.Grad.Data[i*n+j] - probs.Data[i*n+j]*rowSum
				}
			}
			x.addGrad(g)
		}
	}, x), nil
}

// NLLLoss returns the mean negative log-likelihood of log-probabilities at
// the given labels.
func NLLLoss(logProbs *V, labels []int) (*V, error) {
	if len(logProbs.T.Shape) != 2 || logProbs.T.Shape[0] != len(labels) {
		return nil, fmt.Errorf("nn: nll %v, %d labels", logProbs.T.Shape, len(labels))
	}
	d := logProbs.dev
	b, c := logProbs.T.Shape[0], logProbs.T.Shape[1]
	var sum float64
	for i, lab := range labels {
		if lab < 0 || lab >= c {
			return nil, fmt.Errorf("nn: label %d out of %d classes", lab, c)
		}
		sum -= float64(logProbs.T.Data[i*c+lab])
	}
	out := tensor.New(1)
	out.Data[0] = float32(sum / float64(b))
	d.emitReduce("nll_loss_fwd", b)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("nll_loss_bwd", b, 1, 1, 1)
		if logProbs.needGrad {
			g := tensor.New(b, c)
			scale := o.Grad.Data[0] / float32(b)
			for i, lab := range labels {
				g.Data[i*c+lab] = -scale
			}
			logProbs.addGrad(g)
		}
	}, logProbs), nil
}

// TVLoss returns the total-variation regularizer of a 4-D image: the mean
// squared difference between horizontally and vertically adjacent pixels —
// the smoothness term of neural style transfer.
func TVLoss(x *V) (*V, error) {
	if len(x.T.Shape) != 4 {
		return nil, fmt.Errorf("nn: tv loss on %v", x.T.Shape)
	}
	d := x.dev
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	at := func(ni, ci, y, xx int) int { return ((ni*c+ci)*h+y)*w + xx }
	var sum float64
	count := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					v := x.T.Data[at(ni, ci, y, xx)]
					if xx+1 < w {
						dv := float64(x.T.Data[at(ni, ci, y, xx+1)] - v)
						sum += dv * dv
						count++
					}
					if y+1 < h {
						dv := float64(x.T.Data[at(ni, ci, y+1, xx)] - v)
						sum += dv * dv
						count++
					}
				}
			}
		}
	}
	out := tensor.New(1)
	if count > 0 {
		out.Data[0] = float32(sum / float64(count))
	}
	d.emitElementwise("tv_loss_fwd", x.T.Numel(), 4, 1, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("tv_loss_bwd", x.T.Numel(), 6, 2, 1)
		if x.needGrad && count > 0 {
			g := tensor.New(x.T.Shape...)
			scale := o.Grad.Data[0] * 2 / float32(count)
			for ni := 0; ni < n; ni++ {
				for ci := 0; ci < c; ci++ {
					for y := 0; y < h; y++ {
						for xx := 0; xx < w; xx++ {
							v := x.T.Data[at(ni, ci, y, xx)]
							if xx+1 < w {
								dv := scale * (x.T.Data[at(ni, ci, y, xx+1)] - v)
								g.Data[at(ni, ci, y, xx)] -= dv
								g.Data[at(ni, ci, y, xx+1)] += dv
							}
							if y+1 < h {
								dv := scale * (x.T.Data[at(ni, ci, y+1, xx)] - v)
								g.Data[at(ni, ci, y, xx)] -= dv
								g.Data[at(ni, ci, y+1, xx)] += dv
							}
						}
					}
				}
			}
			x.addGrad(g)
		}
	}, x), nil
}

// Mean returns the scalar mean of x.
func Mean(x *V) *V {
	d := x.dev
	n := float32(x.T.Numel())
	out := tensor.New(1)
	var sum float32
	for _, v := range x.T.Data {
		sum += v
	}
	out.Data[0] = sum / n
	d.emitReduce("reduce_mean", x.T.Numel())
	return d.newNode(out, func(o *V) {
		if x.needGrad {
			g := tensor.Full(o.Grad.Data[0]/n, x.T.Shape...)
			x.addGrad(g)
		}
	}, x)
}
