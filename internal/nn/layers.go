package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Conv2dOp applies a convolution with explicit weight/bias variables,
// emitting the CuDNN-style fprop kernel forward and dgrad/wgrad kernels
// backward.
func Conv2dOp(x, w, b *V, stride, pad int) (*V, error) {
	var bt *tensor.Tensor
	if b != nil {
		bt = b.T
	}
	y, err := tensor.Conv2D(x.T, w.T, bt, stride, pad)
	if err != nil {
		return nil, err
	}
	d := x.dev
	n, c := x.T.Shape[0], x.T.Shape[1]
	f, kh, kw := w.T.Shape[0], w.T.Shape[2], w.T.Shape[3]
	oh, ow := y.Shape[2], y.Shape[3]
	d.emitConv("fprop", n, c, f, oh, ow, kh, kw, x.T.Bytes(), w.T.Bytes(), y.Bytes())

	parents := []*V{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	return d.newNode(y, func(o *V) {
		dx, dw, db, err := tensor.Conv2DGrads(x.T, w.T, o.Grad, stride, pad)
		if err != nil {
			panic(err)
		}
		if x.needGrad {
			d.emitConv("dgrad", n, f, c, x.T.Shape[2], x.T.Shape[3], kh, kw, o.Grad.Bytes(), w.T.Bytes(), x.T.Bytes())
			x.addGrad(dx)
		}
		if w.needGrad {
			d.emitConv("wgrad", n, c, f, kh, kw, oh, ow, x.T.Bytes(), o.Grad.Bytes(), w.T.Bytes())
			w.addGrad(dw)
		}
		if b != nil && b.needGrad {
			d.emitReduce("conv_bias_grad", o.Grad.Numel())
			b.addGrad(db)
		}
	}, parents...), nil
}

// ConvTranspose2dOp applies a transposed convolution (the DCGAN generator's
// upsampling op). CuDNN implements it with dgrad-style kernels.
func ConvTranspose2dOp(x, w, b *V, stride, pad int) (*V, error) {
	var bt *tensor.Tensor
	if b != nil {
		bt = b.T
	}
	y, err := tensor.ConvTranspose2D(x.T, w.T, bt, stride, pad)
	if err != nil {
		return nil, err
	}
	d := x.dev
	n, c := x.T.Shape[0], x.T.Shape[1]
	f, kh, kw := w.T.Shape[1], w.T.Shape[2], w.T.Shape[3]
	oh, ow := y.Shape[2], y.Shape[3]
	d.emitConv("convT_fprop", n, c, f, oh, ow, kh, kw, x.T.Bytes(), w.T.Bytes(), y.Bytes())
	parents := []*V{x, w}
	if b != nil {
		parents = append(parents, b)
	}
	return d.newNode(y, func(o *V) {
		dx, dw, db, err := tensor.ConvTranspose2DGrads(x.T, w.T, o.Grad, stride, pad)
		if err != nil {
			panic(err)
		}
		if x.needGrad {
			d.emitConv("convT_dgrad", n, f, c, x.T.Shape[2], x.T.Shape[3], kh, kw, o.Grad.Bytes(), w.T.Bytes(), x.T.Bytes())
			x.addGrad(dx)
		}
		if w.needGrad {
			d.emitConv("convT_wgrad", n, c, f, kh, kw, oh, ow, x.T.Bytes(), o.Grad.Bytes(), w.T.Bytes())
			w.addGrad(dw)
		}
		if b != nil && b.needGrad {
			d.emitReduce("conv_bias_grad", o.Grad.Numel())
			b.addGrad(db)
		}
	}, parents...), nil
}

// BatchNorm2dOp normalizes each channel over (N, H, W) with batch
// statistics and applies a learned scale and shift — the training-mode
// behavior the Cactus ML workloads exercise.
func BatchNorm2dOp(x, gamma, beta *V, eps float32) (*V, error) {
	if len(x.T.Shape) != 4 {
		return nil, fmt.Errorf("nn: batchnorm on %v", x.T.Shape)
	}
	d := x.dev
	n, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	if gamma.T.Numel() != c || beta.T.Numel() != c {
		return nil, fmt.Errorf("nn: batchnorm params for %d channels", c)
	}
	m := float32(n * h * w)
	mean := make([]float32, c)
	variance := make([]float32, c)
	forEach := func(fn func(ci, idx int)) {
		for ni := 0; ni < n; ni++ {
			for ci := 0; ci < c; ci++ {
				base := (ni*c + ci) * h * w
				for i := 0; i < h*w; i++ {
					fn(ci, base+i)
				}
			}
		}
	}
	forEach(func(ci, idx int) { mean[ci] += x.T.Data[idx] })
	for ci := range mean {
		mean[ci] /= m
	}
	forEach(func(ci, idx int) {
		dv := x.T.Data[idx] - mean[ci]
		variance[ci] += dv * dv
	})
	invStd := make([]float32, c)
	for ci := range variance {
		variance[ci] /= m
		invStd[ci] = 1 / float32(math.Sqrt(float64(variance[ci]+eps)))
	}
	out := tensor.New(x.T.Shape...)
	xhat := tensor.New(x.T.Shape...)
	forEach(func(ci, idx int) {
		xh := (x.T.Data[idx] - mean[ci]) * invStd[ci]
		xhat.Data[idx] = xh
		out.Data[idx] = gamma.T.Data[ci]*xh + beta.T.Data[ci]
	})
	d.emitElementwise(fmt.Sprintf("bn_fw_tr_c%d", c), out.Numel(), 4, 2, 1)

	return d.newNode(out, func(o *V) {
		d.emitElementwise(fmt.Sprintf("bn_bw_c%d", c), out.Numel(), 8, 4, 2)
		dy := o.Grad
		sumDy := make([]float32, c)
		sumDyXhat := make([]float32, c)
		forEach(func(ci, idx int) {
			sumDy[ci] += dy.Data[idx]
			sumDyXhat[ci] += dy.Data[idx] * xhat.Data[idx]
		})
		if gamma.needGrad {
			g := tensor.New(gamma.T.Shape...)
			copy(g.Data, sumDyXhat)
			gamma.addGrad(g)
		}
		if beta.needGrad {
			g := tensor.New(beta.T.Shape...)
			copy(g.Data, sumDy)
			beta.addGrad(g)
		}
		if x.needGrad {
			g := tensor.New(x.T.Shape...)
			forEach(func(ci, idx int) {
				g.Data[idx] = gamma.T.Data[ci] * invStd[ci] / m *
					(m*dy.Data[idx] - sumDy[ci] - xhat.Data[idx]*sumDyXhat[ci])
			})
			x.addGrad(g)
		}
	}, x, gamma, beta), nil
}

// --- Layer modules -----------------------------------------------------------

// Conv2d is a convolution layer with parameters.
type Conv2d struct {
	W, B        *V
	Stride, Pad int
}

// NewConv2d builds a conv layer with Kaiming-style init.
func NewConv2d(d *Device, inC, outC, kernel, stride, pad int) *Conv2d {
	std := math.Sqrt(2 / float64(inC*kernel*kernel))
	return &Conv2d{
		W:      d.Param(tensor.Randn(d.RNG, std, outC, inC, kernel, kernel)),
		B:      d.Param(tensor.New(outC)),
		Stride: stride, Pad: pad,
	}
}

// Forward applies the layer.
func (l *Conv2d) Forward(x *V) (*V, error) { return Conv2dOp(x, l.W, l.B, l.Stride, l.Pad) }

// Params returns the trainable variables.
func (l *Conv2d) Params() []*V { return []*V{l.W, l.B} }

// ConvTranspose2d is a transposed-convolution layer.
type ConvTranspose2d struct {
	W, B        *V
	Stride, Pad int
}

// NewConvTranspose2d builds a deconv layer.
func NewConvTranspose2d(d *Device, inC, outC, kernel, stride, pad int) *ConvTranspose2d {
	std := math.Sqrt(2 / float64(inC*kernel*kernel))
	return &ConvTranspose2d{
		W:      d.Param(tensor.Randn(d.RNG, std, inC, outC, kernel, kernel)),
		B:      d.Param(tensor.New(outC)),
		Stride: stride, Pad: pad,
	}
}

// Forward applies the layer.
func (l *ConvTranspose2d) Forward(x *V) (*V, error) {
	return ConvTranspose2dOp(x, l.W, l.B, l.Stride, l.Pad)
}

// Params returns the trainable variables.
func (l *ConvTranspose2d) Params() []*V { return []*V{l.W, l.B} }

// Linear is a fully connected layer.
type Linear struct {
	W, B *V
}

// NewLinear builds a linear layer (in x out weight).
func NewLinear(d *Device, in, out int) *Linear {
	std := math.Sqrt(2 / float64(in))
	return &Linear{
		W: d.Param(tensor.Randn(d.RNG, std, in, out)),
		B: d.Param(tensor.New(out)),
	}
}

// Forward computes x W + b for x (batch, in).
func (l *Linear) Forward(x *V) (*V, error) {
	y, err := MatMul(x, l.W, false, false)
	if err != nil {
		return nil, err
	}
	return AddBias(y, l.B)
}

// Params returns the trainable variables.
func (l *Linear) Params() []*V { return []*V{l.W, l.B} }

// BatchNorm2d is a batch-normalization layer.
type BatchNorm2d struct {
	Gamma, Beta *V
	Eps         float32
}

// NewBatchNorm2d builds a BN layer for c channels.
func NewBatchNorm2d(d *Device, c int) *BatchNorm2d {
	return &BatchNorm2d{
		Gamma: d.Param(tensor.Full(1, c)),
		Beta:  d.Param(tensor.New(c)),
		Eps:   1e-5,
	}
}

// Forward applies training-mode batch normalization.
func (l *BatchNorm2d) Forward(x *V) (*V, error) {
	return BatchNorm2dOp(x, l.Gamma, l.Beta, l.Eps)
}

// Params returns the trainable variables.
func (l *BatchNorm2d) Params() []*V { return []*V{l.Gamma, l.Beta} }

// GRUCell is a gated recurrent unit cell: Wx (in x 3H), Wh (H x 3H), biases.
type GRUCell struct {
	Wx, Wh, Bx, Bh *V
	Hidden         int
}

// NewGRUCell builds a GRU cell.
func NewGRUCell(d *Device, in, hidden int) *GRUCell {
	std := math.Sqrt(1 / float64(hidden))
	return &GRUCell{
		Wx:     d.Param(tensor.Randn(d.RNG, std, in, 3*hidden)),
		Wh:     d.Param(tensor.Randn(d.RNG, std, hidden, 3*hidden)),
		Bx:     d.Param(tensor.New(3 * hidden)),
		Bh:     d.Param(tensor.New(3 * hidden)),
		Hidden: hidden,
	}
}

// Params returns the trainable variables.
func (c *GRUCell) Params() []*V { return []*V{c.Wx, c.Wh, c.Bx, c.Bh} }

// Step advances the cell one timestep: x (B, in), h (B, H) -> h' (B, H).
// The gate GEMMs launch as sgemm kernels; the gate nonlinearities launch as
// one fused pointwise kernel (as in CuDNN's RNN implementation).
func (c *GRUCell) Step(x, h *V) (*V, error) {
	gx, err := MatMul(x, c.Wx, false, false)
	if err != nil {
		return nil, err
	}
	gx, err = AddBias(gx, c.Bx)
	if err != nil {
		return nil, err
	}
	gh, err := MatMul(h, c.Wh, false, false)
	if err != nil {
		return nil, err
	}
	gh, err = AddBias(gh, c.Bh)
	if err != nil {
		return nil, err
	}
	return gruPointwise(gx, gh, h, c.Hidden)
}

// gruPointwise fuses the GRU gate nonlinearities:
//
//	r = sigmoid(gx_r + gh_r); z = sigmoid(gx_z + gh_z)
//	n = tanh(gx_n + r*gh_n);  h' = (1-z)*n + z*h
func gruPointwise(gx, gh, h *V, hidden int) (*V, error) {
	b := h.T.Shape[0]
	if gx.T.Shape[0] != b || gx.T.Shape[1] != 3*hidden || gh.T.Shape[1] != 3*hidden {
		return nil, fmt.Errorf("nn: gru gates %v %v h %v", gx.T.Shape, gh.T.Shape, h.T.Shape)
	}
	d := h.dev
	sig := func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) }
	r := tensor.New(b, hidden)
	z := tensor.New(b, hidden)
	nq := tensor.New(b, hidden)
	out := tensor.New(b, hidden)
	for i := 0; i < b; i++ {
		for j := 0; j < hidden; j++ {
			gxr := gx.T.Data[i*3*hidden+j]
			gxz := gx.T.Data[i*3*hidden+hidden+j]
			gxn := gx.T.Data[i*3*hidden+2*hidden+j]
			ghr := gh.T.Data[i*3*hidden+j]
			ghz := gh.T.Data[i*3*hidden+hidden+j]
			ghn := gh.T.Data[i*3*hidden+2*hidden+j]
			rv := sig(gxr + ghr)
			zv := sig(gxz + ghz)
			nv := float32(math.Tanh(float64(gxn + rv*ghn)))
			r.Data[i*hidden+j] = rv
			z.Data[i*hidden+j] = zv
			nq.Data[i*hidden+j] = nv
			out.Data[i*hidden+j] = (1-zv)*nv + zv*h.T.Data[i*hidden+j]
		}
	}
	d.emitSFUElementwise("gru_cell_pointwise_fwd", b*hidden, 3, 3, 1)
	return d.newNode(out, func(o *V) {
		d.emitSFUElementwise("gru_cell_pointwise_bwd", b*hidden, 4, 4, 3)
		dgx := tensor.New(b, 3*hidden)
		dgh := tensor.New(b, 3*hidden)
		dh := tensor.New(b, hidden)
		for i := 0; i < b; i++ {
			for j := 0; j < hidden; j++ {
				doh := o.Grad.Data[i*hidden+j]
				rv := r.Data[i*hidden+j]
				zv := z.Data[i*hidden+j]
				nv := nq.Data[i*hidden+j]
				hv := h.T.Data[i*hidden+j]
				ghn := gh.T.Data[i*3*hidden+2*hidden+j]

				dn := doh * (1 - zv)
				dz := doh * (hv - nv)
				dh.Data[i*hidden+j] = doh * zv

				dtanh := dn * (1 - nv*nv)
				dgx.Data[i*3*hidden+2*hidden+j] = dtanh
				dgh.Data[i*3*hidden+2*hidden+j] = dtanh * rv
				dr := dtanh * ghn

				dsr := dr * rv * (1 - rv)
				dgx.Data[i*3*hidden+j] = dsr
				dgh.Data[i*3*hidden+j] = dsr

				dsz := dz * zv * (1 - zv)
				dgx.Data[i*3*hidden+hidden+j] = dsz
				dgh.Data[i*3*hidden+hidden+j] = dsz
			}
		}
		if gx.needGrad {
			gx.addGrad(dgx)
		}
		if gh.needGrad {
			gh.addGrad(dgh)
		}
		if h.needGrad {
			h.addGrad(dh)
		}
	}, gx, gh, h), nil
}
