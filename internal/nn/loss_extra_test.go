package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestLogSoftmaxNLLMatchesCrossEntropy(t *testing.T) {
	d := device(t)
	logits := tensor.Randn(d.RNG, 1, 4, 6)
	labels := []int{2, 0, 5, 3}

	a := d.Param(logits.Clone())
	ce, err := CrossEntropy(a, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := ce.Backward(); err != nil {
		t.Fatal(err)
	}

	b := d.Param(logits.Clone())
	ls, err := LogSoftmaxRows(b)
	if err != nil {
		t.Fatal(err)
	}
	nll, err := NLLLoss(ls, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := nll.Backward(); err != nil {
		t.Fatal(err)
	}

	// The two formulations are mathematically identical: same loss, same
	// gradient.
	if math.Abs(float64(ce.T.Data[0]-nll.T.Data[0])) > 1e-5 {
		t.Errorf("loss %g vs %g", ce.T.Data[0], nll.T.Data[0])
	}
	for i := range a.Grad.Data {
		if math.Abs(float64(a.Grad.Data[i]-b.Grad.Data[i])) > 1e-5 {
			t.Fatalf("grad[%d]: %g vs %g", i, a.Grad.Data[i], b.Grad.Data[i])
		}
	}
}

func TestLogSoftmaxGradient(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 2, 5))
	weights := tensor.Randn(d.RNG, 1, 2, 5)
	forward := func() float64 {
		var s float64
		probs, _ := tensor.Softmax(x.T)
		for i := range probs.Data {
			s += math.Log(float64(probs.Data[i])) * float64(weights.Data[i]) / 10
		}
		return s
	}
	ls, err := LogSoftmaxRows(x)
	if err != nil {
		t.Fatal(err)
	}
	wv, err := MulElem(ls, d.Const(weights))
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(wv).Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "log-softmax", x.T, x.Grad, forward, []int{0, 4, 9})
}

func TestNLLLossErrors(t *testing.T) {
	d := device(t)
	lp := d.Param(tensor.New(2, 3))
	if _, err := NLLLoss(lp, []int{0}); err == nil {
		t.Error("label-count mismatch should fail")
	}
	if _, err := NLLLoss(lp, []int{0, 7}); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestTVLossGradientAndValue(t *testing.T) {
	d := device(t)
	// A constant image has zero total variation.
	flat := d.Param(tensor.Full(0.5, 1, 1, 4, 4))
	tv, err := TVLoss(flat)
	if err != nil {
		t.Fatal(err)
	}
	if tv.T.Data[0] != 0 {
		t.Errorf("constant-image TV = %g", tv.T.Data[0])
	}
	// Gradient check on a random image.
	x := d.Param(tensor.Randn(d.RNG, 1, 1, 2, 4, 4))
	forward := func() float64 {
		xx := d.Const(x.T)
		l, err := TVLoss(xx)
		if err != nil {
			t.Fatal(err)
		}
		return float64(l.T.Data[0])
	}
	l, err := TVLoss(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "tv", x.T, x.Grad, forward, []int{0, 9, 31})
	if _, err := TVLoss(d.Param(tensor.New(3, 3))); err == nil {
		t.Error("2-D input should fail")
	}
}

func TestClipGradNorm(t *testing.T) {
	d := device(t)
	p := d.Param(tensor.New(4))
	p.Grad = tensor.Full(3, 4) // norm = 6
	norm := ClipGradNorm(d, []*V{p}, 1.5)
	if math.Abs(float64(norm)-6) > 1e-5 {
		t.Errorf("norm = %g, want 6", norm)
	}
	var after float64
	for _, g := range p.Grad.Data {
		after += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(after)-1.5) > 1e-5 {
		t.Errorf("clipped norm = %g, want 1.5", math.Sqrt(after))
	}
	// Below the threshold: untouched.
	p.Grad = tensor.Full(0.1, 4)
	ClipGradNorm(d, []*V{p}, 1.5)
	if p.Grad.Data[0] != 0.1 {
		t.Error("in-range gradients must not be rescaled")
	}
	// No gradients at all.
	q := d.Param(tensor.New(4))
	if got := ClipGradNorm(d, []*V{q}, 1); got != 0 {
		t.Errorf("no-grad norm = %g", got)
	}
}

func TestAdamPerParamKernels(t *testing.T) {
	d := device(t)
	p1 := d.Param(tensor.Full(1, 100))
	p2 := d.Param(tensor.Full(1, 3000))
	opt := NewAdam(d, []*V{p1, p2}, 0.1, 0.9)
	opt.SetPerParam(true)
	p1.Grad = tensor.Full(1, 100)
	p2.Grad = tensor.Full(1, 3000)
	opt.Step()
	names := map[string]bool{}
	for _, l := range d.Session().Launches() {
		names[l.Name] = true
	}
	if !names["adam_elementwise_n64"] || !names["adam_elementwise_n2048"] {
		t.Errorf("per-param adam kernels missing: %v", names)
	}
	if names["multi_tensor_adam_step"] {
		t.Error("multi-tensor kernel must not launch in per-param mode")
	}
}

func TestSliceColsGradient(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 3, 6))
	sl, err := SliceCols(x, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sl.T.Shape[1] != 3 {
		t.Fatalf("slice shape %v", sl.T.Shape)
	}
	if err := Mean(sl).Backward(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			g := x.Grad.Data[i*6+j]
			if j >= 2 && j < 5 {
				if math.Abs(float64(g)-1.0/9) > 1e-6 {
					t.Errorf("grad[%d,%d] = %g", i, j, g)
				}
			} else if g != 0 {
				t.Errorf("grad outside slice at [%d,%d] = %g", i, j, g)
			}
		}
	}
	if _, err := SliceCols(x, 4, 2); err == nil {
		t.Error("inverted range should fail")
	}
}

func TestAttentionContextGradients(t *testing.T) {
	d := device(t)
	const b, tl, h = 2, 3, 4
	w := d.Param(tensor.Randn(d.RNG, 0.5, b, tl))
	enc := make([]*V, tl)
	for i := range enc {
		enc[i] = d.Param(tensor.Randn(d.RNG, 1, b, h))
	}
	ctx, err := AttentionContext(w, enc)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.T.Shape[0] != b || ctx.T.Shape[1] != h {
		t.Fatalf("context shape %v", ctx.T.Shape)
	}
	sq, err := MulElem(ctx, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	forward := func() float64 {
		out := tensor.New(b, h)
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < tl; ti++ {
				for hi := 0; hi < h; hi++ {
					out.Data[bi*h+hi] += w.T.Data[bi*tl+ti] * enc[ti].T.Data[bi*h+hi]
				}
			}
		}
		var s float64
		for _, v := range out.Data {
			s += float64(v*v) / float64(out.Numel())
		}
		return s
	}
	gradCheck(t, "attn-w", w.T, w.Grad, forward, []int{0, 3, 5})
	gradCheck(t, "attn-enc0", enc[0].T, enc[0].Grad, forward, []int{0, 7})
	gradCheck(t, "attn-enc2", enc[2].T, enc[2].Grad, forward, []int{1, 6})

	if _, err := AttentionContext(w, nil); err == nil {
		t.Error("no states should fail")
	}
	if _, err := AttentionContext(w, enc[:2]); err == nil {
		t.Error("state-count mismatch should fail")
	}
}
