package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// AffineGrid generates a (B, H, W, 2) sampling grid from affine parameters
// theta (B, 2, 3) over normalized coordinates in [-1, 1] — the first half of
// a spatial transformer.
func AffineGrid(theta *V, h, w int) (*V, error) {
	if len(theta.T.Shape) != 3 || theta.T.Shape[1] != 2 || theta.T.Shape[2] != 3 {
		return nil, fmt.Errorf("nn: affine grid theta %v", theta.T.Shape)
	}
	d := theta.dev
	b := theta.T.Shape[0]
	grid := tensor.New(b, h, w, 2)
	norm := func(i, n int) float32 {
		if n == 1 {
			return 0
		}
		return 2*float32(i)/float32(n-1) - 1
	}
	for bi := 0; bi < b; bi++ {
		th := theta.T.Data[bi*6 : (bi+1)*6]
		for y := 0; y < h; y++ {
			yn := norm(y, h)
			for x := 0; x < w; x++ {
				xn := norm(x, w)
				idx := ((bi*h+y)*w + x) * 2
				grid.Data[idx] = th[0]*xn + th[1]*yn + th[2]
				grid.Data[idx+1] = th[3]*xn + th[4]*yn + th[5]
			}
		}
	}
	d.emitElementwise("affine_grid_generator", b*h*w, 6, 1, 1)
	return d.newNode(grid, func(o *V) {
		d.emitReduce("affine_grid_generator_bwd", b*h*w*2)
		if theta.needGrad {
			g := tensor.New(b, 2, 3)
			for bi := 0; bi < b; bi++ {
				for y := 0; y < h; y++ {
					yn := norm(y, h)
					for x := 0; x < w; x++ {
						xn := norm(x, w)
						idx := ((bi*h+y)*w + x) * 2
						gx, gy := o.Grad.Data[idx], o.Grad.Data[idx+1]
						g.Data[bi*6+0] += gx * xn
						g.Data[bi*6+1] += gx * yn
						g.Data[bi*6+2] += gx
						g.Data[bi*6+3] += gy * xn
						g.Data[bi*6+4] += gy * yn
						g.Data[bi*6+5] += gy
					}
				}
			}
			theta.addGrad(g)
		}
	}, theta), nil
}

// GridSample bilinearly samples x (B, C, H, W) at the normalized grid
// locations (B, OH, OW, 2), with zero padding outside — the second half of a
// spatial transformer.
func GridSample(x, grid *V) (*V, error) {
	if len(x.T.Shape) != 4 || len(grid.T.Shape) != 4 || grid.T.Shape[3] != 2 {
		return nil, fmt.Errorf("nn: grid sample x %v grid %v", x.T.Shape, grid.T.Shape)
	}
	if x.T.Shape[0] != grid.T.Shape[0] {
		return nil, fmt.Errorf("nn: grid sample batch %d vs %d", x.T.Shape[0], grid.T.Shape[0])
	}
	d := x.dev
	b, c, h, w := x.T.Shape[0], x.T.Shape[1], x.T.Shape[2], x.T.Shape[3]
	oh, ow := grid.T.Shape[1], grid.T.Shape[2]
	out := tensor.New(b, c, oh, ow)

	// unnormalize maps [-1,1] to pixel coordinates.
	ux := func(v float32) float64 { return (float64(v) + 1) / 2 * float64(w-1) }
	uy := func(v float32) float64 { return (float64(v) + 1) / 2 * float64(h-1) }
	pix := func(bi, ci, yy, xx int) float32 {
		if yy < 0 || yy >= h || xx < 0 || xx >= w {
			return 0
		}
		return x.T.Data[((bi*c+ci)*h+yy)*w+xx]
	}
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gidx := ((bi*oh+oy)*ow + ox) * 2
				sx, sy := ux(grid.T.Data[gidx]), uy(grid.T.Data[gidx+1])
				x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
				fx, fy := float32(sx-float64(x0)), float32(sy-float64(y0))
				for ci := 0; ci < c; ci++ {
					v := (1-fy)*((1-fx)*pix(bi, ci, y0, x0)+fx*pix(bi, ci, y0, x0+1)) +
						fy*((1-fx)*pix(bi, ci, y0+1, x0)+fx*pix(bi, ci, y0+1, x0+1))
					out.Data[((bi*c+ci)*oh+oy)*ow+ox] = v
				}
			}
		}
	}
	d.emitElementwise("grid_sampler_2d_fwd", b*c*oh*ow, 8, 2, 1)

	return d.newNode(out, func(o *V) {
		d.emitElementwise("grid_sampler_2d_bwd", b*c*oh*ow, 12, 3, 2)
		var dx *tensor.Tensor
		var dgrid *tensor.Tensor
		if x.needGrad {
			dx = tensor.New(x.T.Shape...)
		}
		if grid.needGrad {
			dgrid = tensor.New(grid.T.Shape...)
		}
		scatter := func(bi, ci, yy, xx int, g float32) {
			if dx == nil || yy < 0 || yy >= h || xx < 0 || xx >= w {
				return
			}
			dx.Data[((bi*c+ci)*h+yy)*w+xx] += g
		}
		for bi := 0; bi < b; bi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gidx := ((bi*oh+oy)*ow + ox) * 2
					sx, sy := ux(grid.T.Data[gidx]), uy(grid.T.Data[gidx+1])
					x0, y0 := int(math.Floor(sx)), int(math.Floor(sy))
					fx, fy := float32(sx-float64(x0)), float32(sy-float64(y0))
					var dsx, dsy float32
					for ci := 0; ci < c; ci++ {
						g := o.Grad.Data[((bi*c+ci)*oh+oy)*ow+ox]
						scatter(bi, ci, y0, x0, g*(1-fy)*(1-fx))
						scatter(bi, ci, y0, x0+1, g*(1-fy)*fx)
						scatter(bi, ci, y0+1, x0, g*fy*(1-fx))
						scatter(bi, ci, y0+1, x0+1, g*fy*fx)
						// Spatial gradients for the grid.
						p00, p01 := pix(bi, ci, y0, x0), pix(bi, ci, y0, x0+1)
						p10, p11 := pix(bi, ci, y0+1, x0), pix(bi, ci, y0+1, x0+1)
						dsx += g * ((1-fy)*(p01-p00) + fy*(p11-p10))
						dsy += g * ((1-fx)*(p10-p00) + fx*(p11-p01))
					}
					if dgrid != nil {
						dgrid.Data[gidx] += dsx * float32(w-1) / 2
						dgrid.Data[gidx+1] += dsy * float32(h-1) / 2
					}
				}
			}
		}
		if x.needGrad {
			x.addGrad(dx)
		}
		if grid.needGrad {
			grid.addGrad(dgrid)
		}
	}, x, grid), nil
}
