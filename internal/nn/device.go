// Package nn is the neural-network framework behind the five Cactus machine-
// learning workloads (and the Tango baselines). It provides a tape-based
// autograd over internal/tensor, CuDNN-style layers (Conv2d,
// ConvTranspose2d, Linear, BatchNorm2d, Embedding, GRUCell, the spatial-
// transformer ops), losses, and optimizers. Every operation computes its
// result functionally AND launches the corresponding device kernels —
// forward ops at forward time, gradient kernels (dgrad/wgrad/...) during the
// backward pass — with names parameterized by shape class the way CuDNN
// template instantiations are, so distinct layer shapes appear as distinct
// kernels in the profile, exactly as in the paper's PyTorch workloads.
package nn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/profiler"
)

// Device couples the framework to a profiling session.
type Device struct {
	sess *profiler.Session
	// Replication extrapolates reduced model/batch sizes to paper scale:
	// instruction mixes and memory streams scale by this factor (the
	// simulated tensors are a tile of the full-size ones).
	Replication float64
	// RNG drives weight init and samplers; seeded per workload.
	RNG *rand.Rand
}

// NewDevice builds a device context. replication < 1 is clamped to 1.
func NewDevice(sess *profiler.Session, replication float64, seed int64) *Device {
	if replication < 1 {
		replication = 1
	}
	return &Device{sess: sess, Replication: replication, RNG: rand.New(rand.NewSource(seed))}
}

// Session returns the underlying profiling session.
func (d *Device) Session() *profiler.Session { return d.sess }

// weightPrefix marks parameter streams: replication models larger
// activations/batches at paper scale, but model weights only grow with the
// (much smaller) channel-count increase, so weight streams scale by sqrt(R)
// rather than R.
const weightPrefix = "w:"

// emit launches one kernel scaled by the replication factor.
func (d *Device) emit(name string, threads int, mix isa.Mix, streams []memsim.Stream, div float64) {
	r := d.Replication
	scaled := make([]memsim.Stream, len(streams))
	for i, s := range streams {
		sr := r
		if strings.HasPrefix(s.Name, weightPrefix) {
			sr = math.Sqrt(r)
		}
		s.FootprintBytes = uint64(float64(s.FootprintBytes) * sr)
		s.AccessBytes = uint64(float64(s.AccessBytes) * sr)
		if s.FootprintBytes == 0 {
			s.FootprintBytes = 1
		}
		if s.AccessBytes == 0 {
			s.AccessBytes = 1
		}
		scaled[i] = s
	}
	block := 256
	grid := (int(float64(threads)*r) + block - 1) / block
	if grid < 1 {
		grid = 1
	}
	d.sess.MustLaunch(gpu.KernelSpec{
		Name:               name,
		Grid:               gpu.D1(grid),
		Block:              gpu.D1(block),
		Mix:                mix.Scale(r),
		Streams:            scaled,
		DivergenceFraction: div,
	})
}

func w32(threadInsts float64) uint64 {
	w := threadInsts / 32
	if w < 1 {
		w = 1
	}
	return uint64(w)
}

// bucket rounds n to the nearest power of two for kernel-name shape classes
// (CuDNN tiles come in power-of-two template sizes).
func bucket(n int) int {
	b := 1
	for b*2 <= n {
		b *= 2
	}
	return b
}

// readStream describes a dense coalesced read of bytes total.
func readStream(name string, bytes uint64, reuse float64) memsim.Stream {
	if reuse < 1 {
		reuse = 1
	}
	return memsim.Stream{
		Name: name, FootprintBytes: bytes, AccessBytes: uint64(float64(bytes) * reuse),
		ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true,
	}
}

// writeStream describes a dense coalesced write of bytes total.
func writeStream(name string, bytes uint64) memsim.Stream {
	return memsim.Stream{
		Name: name, FootprintBytes: bytes, AccessBytes: bytes,
		ElemBytes: 4, Pattern: memsim.Coalesced, Store: true, Partitioned: true,
	}
}

// emitGEMM launches a cuBLAS-style SGEMM kernel for C(MxN) = A(MxK) B(KxN).
// The kernel name encodes layout and tile bucket, so each distinct GEMM
// shape class in a model is a distinct kernel.
func (d *Device) emitGEMM(m, n, k int, transA, transB bool) {
	layout := "nn"
	switch {
	case transA && transB:
		layout = "tt"
	case transA:
		layout = "tn"
	case transB:
		layout = "nt"
	}
	name := fmt.Sprintf("ampere_sgemm_%dx%dx%d_%s", bucket(min(m, 128)), bucket(min(n, 128)), bucket(min(k, 128)), layout)
	flops := 2 * float64(m) * float64(n) * float64(k)
	var mix isa.Mix
	mix.Add(isa.FP32, w32(flops/2)) // FFMA counts as one warp instruction
	mix.Add(isa.INT, w32(flops/16))
	mix.Add(isa.LoadShared, w32(flops/8))
	mix.Add(isa.StoreShared, w32(flops/32))
	mix.Add(isa.LoadGlobal, w32(float64(m*k+k*n)/4))
	mix.Add(isa.StoreGlobal, w32(float64(m*n)/4))
	mix.Add(isa.Sync, w32(float64(m*n)/256+1))
	mix.Add(isa.Misc, w32(flops/32))
	// Tiled GEMM re-reads A and B ~sqrt(tile) times through the caches.
	// B is usually the parameter side of a layer GEMM, so it scales as a
	// weight stream under replication.
	reuse := 8.0
	streams := []memsim.Stream{
		readStream("A", uint64(m*k*4), reuse),
		readStream(weightPrefix+"B", uint64(k*n*4), reuse),
		writeStream("C", uint64(m*n*4)),
	}
	d.emit(name, m*n/4+1, mix, streams, 0)
}

// emitConv launches an implicit-GEMM convolution kernel (fprop, dgrad or
// wgrad), with cost derived from the MAC count.
func (d *Device) emitConv(kind string, n, c, f, oh, ow, kh, kw int, xBytes, wBytes, yBytes uint64) {
	// The batch bucket mirrors CuDNN algorithm selection: batch-1 inference
	// and batched training pick different kernels.
	name := fmt.Sprintf("implicit_gemm_%s_c%d_f%d_k%d_b%d", kind, c, f, kh, bucket(n))
	macs := float64(n*f*oh*ow) * float64(c*kh*kw)
	var mix isa.Mix
	mix.Add(isa.FP32, w32(macs))
	mix.Add(isa.INT, w32(macs/4))
	mix.Add(isa.LoadShared, w32(macs/4))
	mix.Add(isa.StoreShared, w32(macs/16))
	mix.Add(isa.LoadGlobal, w32(float64(xBytes+wBytes)/16))
	mix.Add(isa.StoreGlobal, w32(float64(yBytes)/16))
	mix.Add(isa.Sync, w32(macs/2048+1))
	mix.Add(isa.Misc, w32(macs/16))
	streams := []memsim.Stream{
		readStream("x", xBytes, 4),
		readStream(weightPrefix+"w", wBytes, 8),
		writeStream("y", yBytes),
	}
	d.emit(name, n*f*oh*ow, mix, streams, 0)
}

// emitElementwise launches a pointwise kernel over elems elements with
// opCost arithmetic instructions per element. inputs/outputs give the tensor
// traffic multiplicity.
func (d *Device) emitElementwise(name string, elems int, opCost float64, inputs, outputs int) {
	e := float64(elems)
	var mix isa.Mix
	mix.Add(isa.FP32, w32(e*opCost))
	mix.Add(isa.INT, w32(e))
	mix.Add(isa.LoadGlobal, w32(e*float64(inputs)))
	mix.Add(isa.StoreGlobal, w32(e*float64(outputs)))
	mix.Add(isa.Misc, w32(e))
	bytes := uint64(elems * 4)
	var streams []memsim.Stream
	for i := 0; i < inputs; i++ {
		streams = append(streams, readStream(fmt.Sprintf("in%d", i), bytes, 1))
	}
	for i := 0; i < outputs; i++ {
		streams = append(streams, writeStream(fmt.Sprintf("out%d", i), bytes))
	}
	d.emit(name, elems, mix, streams, 0)
}

// emitSFUElementwise is emitElementwise with transcendental work (tanh,
// sigmoid, exp) on the SFU pipe.
func (d *Device) emitSFUElementwise(name string, elems int, sfuPerElem float64, inputs, outputs int) {
	e := float64(elems)
	var mix isa.Mix
	mix.Add(isa.FP32, w32(e*3))
	mix.Add(isa.SFU, w32(e*sfuPerElem))
	mix.Add(isa.INT, w32(e))
	mix.Add(isa.LoadGlobal, w32(e*float64(inputs)))
	mix.Add(isa.StoreGlobal, w32(e*float64(outputs)))
	mix.Add(isa.Misc, w32(e))
	bytes := uint64(elems * 4)
	var streams []memsim.Stream
	for i := 0; i < inputs; i++ {
		streams = append(streams, readStream(fmt.Sprintf("in%d", i), bytes, 1))
	}
	for i := 0; i < outputs; i++ {
		streams = append(streams, writeStream(fmt.Sprintf("out%d", i), bytes))
	}
	d.emit(name, elems, mix, streams, 0)
}

// EmitNamed launches a named auxiliary pointwise kernel — data loading,
// sampling, preprocessing and similar pipeline stages that workloads perform
// outside the layer graph.
func (d *Device) EmitNamed(name string, elems int, opCost float64, inputs, outputs int) {
	d.emitElementwise(name, elems, opCost, inputs, outputs)
}

// EmitParamOp is the exported form of emitParamOp for workload code.
func (d *Device) EmitParamOp(name string, elems int, opCost float64, inputs, outputs int) {
	d.emitParamOp(name, elems, opCost, 0, inputs, outputs)
}

// emitParamOp launches a pointwise kernel whose size tracks the parameter
// count (optimizer steps, gradient zeroing, target-network copies).
// Parameters grow ~sqrt(R) under replication, so the element count is
// pre-compensated to net out at sqrt(R) after the emit-time scaling.
func (d *Device) emitParamOp(name string, elems int, opCost, sfu float64, inputs, outputs int) {
	eff := int(float64(elems) / math.Sqrt(d.Replication))
	if eff < 1 {
		eff = 1
	}
	if sfu > 0 {
		d.emitSFUElementwise(name, eff, sfu, inputs, outputs)
	} else {
		d.emitElementwise(name, eff, opCost, inputs, outputs)
	}
}

// emitReduce launches a reduction kernel over elems inputs.
func (d *Device) emitReduce(name string, elems int) {
	e := float64(elems)
	var mix isa.Mix
	mix.Add(isa.FP32, w32(e))
	mix.Add(isa.INT, w32(e))
	mix.Add(isa.LoadGlobal, w32(e))
	mix.Add(isa.LoadShared, w32(e/2+1))
	mix.Add(isa.StoreShared, w32(e/2+1))
	mix.Add(isa.Sync, w32(e/64+1))
	mix.Add(isa.StoreGlobal, w32(e/256+1))
	mix.Add(isa.Misc, w32(e))
	d.emit(name, elems, mix, []memsim.Stream{readStream("in", uint64(elems*4), 1)}, 0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
