package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// V is a node in the autograd tape: a tensor, its gradient accumulator, and
// the closure that propagates gradients (and launches the backward kernels).
type V struct {
	T    *tensor.Tensor
	Grad *tensor.Tensor

	dev      *Device
	needGrad bool
	back     func()
	parents  []*V
}

// Const wraps a tensor that requires no gradient.
func (d *Device) Const(t *tensor.Tensor) *V {
	return &V{T: t, dev: d}
}

// Param wraps a trainable tensor.
func (d *Device) Param(t *tensor.Tensor) *V {
	return &V{T: t, dev: d, needGrad: true}
}

// NeedsGrad reports whether gradients flow into v.
func (v *V) NeedsGrad() bool { return v.needGrad }

// ensureGrad lazily allocates the gradient accumulator.
func (v *V) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.T.Shape...)
	}
	return v.Grad
}

// addGrad accumulates g into v's gradient (if it participates).
func (v *V) addGrad(g *tensor.Tensor) {
	if !v.needGrad {
		return
	}
	if err := v.ensureGrad().AddScaled(g, 1); err != nil {
		panic(fmt.Sprintf("nn: gradient shape mismatch: %v", err))
	}
}

// newNode builds a result node; it requires grad if any parent does.
func (d *Device) newNode(t *tensor.Tensor, back func(out *V), parents ...*V) *V {
	out := &V{T: t, dev: d, parents: parents}
	for _, p := range parents {
		if p.needGrad {
			out.needGrad = true
			break
		}
	}
	if out.needGrad && back != nil {
		out.back = func() { back(out) }
	}
	return out
}

// Backward runs reverse-mode differentiation from v, which must be a scalar
// (one element); its gradient is seeded with 1.
func (v *V) Backward() error {
	if v.T.Numel() != 1 {
		return fmt.Errorf("nn: Backward on non-scalar of shape %v", v.T.Shape)
	}
	v.ensureGrad().Data[0] = 1
	// Topological order via iterative post-order DFS.
	var order []*V
	seen := map[*V]bool{}
	type frame struct {
		n   *V
		idx int
	}
	stack := []frame{{v, 0}}
	seen[v] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.n.parents) {
			p := f.n.parents[f.idx]
			f.idx++
			if !seen[p] {
				seen[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.n)
		stack = stack[:len(stack)-1]
	}
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
	return nil
}

// ZeroGrad clears v's gradient.
func (v *V) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Detach returns a constant view of v's value (gradient flow stops).
func (v *V) Detach() *V { return v.dev.Const(v.T) }

// --- Core ops ---------------------------------------------------------------

// MatMul multiplies (optionally transposed) matrices, emitting SGEMM kernels
// forward and backward.
func MatMul(a, b *V, transA, transB bool) (*V, error) {
	c, err := tensor.MatMul(a.T, b.T, transA, transB)
	if err != nil {
		return nil, err
	}
	d := a.dev
	m, n := c.Shape[0], c.Shape[1]
	k := a.T.Shape[1]
	if transA {
		k = a.T.Shape[0]
	}
	d.emitGEMM(m, n, k, transA, transB)
	out := d.newNode(c, func(out *V) {
		dc := out.Grad
		if a.needGrad {
			var da *tensor.Tensor
			var err error
			if !transA {
				da, err = tensor.MatMul(dc, b.T, false, !transB)
			} else {
				da, err = tensor.MatMul(b.T, dc, transB, true)
			}
			if err != nil {
				panic(err)
			}
			d.emitGEMM(da.Shape[0], da.Shape[1], n, false, !transB)
			a.addGrad(da)
		}
		if b.needGrad {
			var db *tensor.Tensor
			var err error
			if !transB {
				db, err = tensor.MatMul(a.T, dc, !transA, false)
			} else {
				db, err = tensor.MatMul(dc, a.T, true, transA)
			}
			if err != nil {
				panic(err)
			}
			d.emitGEMM(db.Shape[0], db.Shape[1], m, true, transA)
			b.addGrad(db)
		}
	}, a, b)
	return out, nil
}

// Add returns alpha*a + beta*b elementwise (same shapes).
func Add(a, b *V, alpha, beta float32) (*V, error) {
	if !tensor.SameShape(a.T, b.T) {
		return nil, fmt.Errorf("nn: add shapes %v vs %v", a.T.Shape, b.T.Shape)
	}
	d := a.dev
	out := tensor.New(a.T.Shape...)
	for i := range out.Data {
		out.Data[i] = alpha*a.T.Data[i] + beta*b.T.Data[i]
	}
	d.emitElementwise("elementwise_add", out.Numel(), 2, 2, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("elementwise_add_bwd", out.Numel(), 2, 1, 2)
		if a.needGrad {
			g := o.Grad.Clone()
			for i := range g.Data {
				g.Data[i] *= alpha
			}
			a.addGrad(g)
		}
		if b.needGrad {
			g := o.Grad.Clone()
			for i := range g.Data {
				g.Data[i] *= beta
			}
			b.addGrad(g)
		}
	}, a, b), nil
}

// MulElem returns the Hadamard product.
func MulElem(a, b *V) (*V, error) {
	if !tensor.SameShape(a.T, b.T) {
		return nil, fmt.Errorf("nn: mul shapes %v vs %v", a.T.Shape, b.T.Shape)
	}
	d := a.dev
	out := tensor.New(a.T.Shape...)
	for i := range out.Data {
		out.Data[i] = a.T.Data[i] * b.T.Data[i]
	}
	d.emitElementwise("elementwise_mul", out.Numel(), 1, 2, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("elementwise_mul_bwd", out.Numel(), 2, 3, 2)
		if a.needGrad {
			g := tensor.New(a.T.Shape...)
			for i := range g.Data {
				g.Data[i] = o.Grad.Data[i] * b.T.Data[i]
			}
			a.addGrad(g)
		}
		if b.needGrad {
			g := tensor.New(b.T.Shape...)
			for i := range g.Data {
				g.Data[i] = o.Grad.Data[i] * a.T.Data[i]
			}
			b.addGrad(g)
		}
	}, a, b), nil
}

// AddBias adds a bias vector to the last dimension (rows of a 2-D tensor or
// channels of a 4-D NCHW tensor).
func AddBias(x, b *V) (*V, error) {
	d := x.dev
	out := x.T.Clone()
	switch len(x.T.Shape) {
	case 2:
		n := x.T.Shape[1]
		if b.T.Numel() != n {
			return nil, fmt.Errorf("nn: bias %v on %v", b.T.Shape, x.T.Shape)
		}
		for i := 0; i < x.T.Shape[0]; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += b.T.Data[j]
			}
		}
	case 4:
		c := x.T.Shape[1]
		if b.T.Numel() != c {
			return nil, fmt.Errorf("nn: channel bias %v on %v", b.T.Shape, x.T.Shape)
		}
		hw := x.T.Shape[2] * x.T.Shape[3]
		for ni := 0; ni < x.T.Shape[0]; ni++ {
			for ci := 0; ci < c; ci++ {
				base := (ni*c + ci) * hw
				for i := 0; i < hw; i++ {
					out.Data[base+i] += b.T.Data[ci]
				}
			}
		}
	default:
		return nil, fmt.Errorf("nn: bias on %v", x.T.Shape)
	}
	d.emitElementwise("bias_add", out.Numel(), 1, 2, 1)
	return d.newNode(out, func(o *V) {
		if x.needGrad {
			x.addGrad(o.Grad)
		}
		if b.needGrad {
			d.emitReduce("bias_grad_reduce", o.Grad.Numel())
			g := tensor.New(b.T.Shape...)
			switch len(x.T.Shape) {
			case 2:
				n := x.T.Shape[1]
				for i := 0; i < x.T.Shape[0]; i++ {
					for j := 0; j < n; j++ {
						g.Data[j] += o.Grad.Data[i*n+j]
					}
				}
			case 4:
				c := x.T.Shape[1]
				hw := x.T.Shape[2] * x.T.Shape[3]
				for ni := 0; ni < x.T.Shape[0]; ni++ {
					for ci := 0; ci < c; ci++ {
						base := (ni*c + ci) * hw
						for i := 0; i < hw; i++ {
							g.Data[ci] += o.Grad.Data[base+i]
						}
					}
				}
			}
			b.addGrad(g)
		}
	}, x, b), nil
}

// Reshape returns a view with a new shape.
func Reshape(x *V, shape ...int) (*V, error) {
	t, err := x.T.Reshape(shape...)
	if err != nil {
		return nil, err
	}
	d := x.dev
	return d.newNode(t, func(o *V) {
		if x.needGrad {
			g, err := o.Grad.Reshape(x.T.Shape...)
			if err != nil {
				panic(err)
			}
			x.addGrad(g)
		}
	}, x), nil
}

// Concat2D concatenates two 2-D tensors along columns.
func Concat2D(a, b *V) (*V, error) {
	if len(a.T.Shape) != 2 || len(b.T.Shape) != 2 || a.T.Shape[0] != b.T.Shape[0] {
		return nil, fmt.Errorf("nn: concat %v | %v", a.T.Shape, b.T.Shape)
	}
	d := a.dev
	m, na, nb := a.T.Shape[0], a.T.Shape[1], b.T.Shape[1]
	out := tensor.New(m, na+nb)
	for i := 0; i < m; i++ {
		copy(out.Data[i*(na+nb):i*(na+nb)+na], a.T.Data[i*na:(i+1)*na])
		copy(out.Data[i*(na+nb)+na:(i+1)*(na+nb)], b.T.Data[i*nb:(i+1)*nb])
	}
	d.emitElementwise("cat_copy", out.Numel(), 0.5, 1, 1)
	return d.newNode(out, func(o *V) {
		if a.needGrad {
			g := tensor.New(m, na)
			for i := 0; i < m; i++ {
				copy(g.Data[i*na:(i+1)*na], o.Grad.Data[i*(na+nb):i*(na+nb)+na])
			}
			a.addGrad(g)
		}
		if b.needGrad {
			g := tensor.New(m, nb)
			for i := 0; i < m; i++ {
				copy(g.Data[i*nb:(i+1)*nb], o.Grad.Data[i*(na+nb)+na:(i+1)*(na+nb)])
			}
			b.addGrad(g)
		}
	}, a, b), nil
}

// SliceCols returns columns [lo, hi) of a 2-D tensor.
func SliceCols(x *V, lo, hi int) (*V, error) {
	if len(x.T.Shape) != 2 || lo < 0 || hi > x.T.Shape[1] || lo >= hi {
		return nil, fmt.Errorf("nn: slice cols [%d,%d) of %v", lo, hi, x.T.Shape)
	}
	d := x.dev
	m, n := x.T.Shape[0], x.T.Shape[1]
	w := hi - lo
	out := tensor.New(m, w)
	for i := 0; i < m; i++ {
		copy(out.Data[i*w:(i+1)*w], x.T.Data[i*n+lo:i*n+hi])
	}
	d.emitElementwise("slice_copy", out.Numel(), 0.5, 1, 1)
	return d.newNode(out, func(o *V) {
		if x.needGrad {
			g := tensor.New(m, n)
			for i := 0; i < m; i++ {
				copy(g.Data[i*n+lo:i*n+hi], o.Grad.Data[i*w:(i+1)*w])
			}
			x.addGrad(g)
		}
	}, x), nil
}

// AttentionContext computes ctx[b,h] = sum_t weights[b,t] * enc[t][b,h] —
// the batched weighted sum over encoder states used by attention decoders
// (PyTorch's bmm over attention weights and encoder outputs).
func AttentionContext(weights *V, enc []*V) (*V, error) {
	if len(weights.T.Shape) != 2 || weights.T.Shape[1] != len(enc) {
		return nil, fmt.Errorf("nn: attention weights %v over %d states", weights.T.Shape, len(enc))
	}
	if len(enc) == 0 {
		return nil, fmt.Errorf("nn: attention over no states")
	}
	d := weights.dev
	b, h := weights.T.Shape[0], enc[0].T.Shape[1]
	for ti, e := range enc {
		if e.T.Shape[0] != b || e.T.Shape[1] != h {
			return nil, fmt.Errorf("nn: attention state %d shape %v", ti, e.T.Shape)
		}
	}
	tl := len(enc)
	out := tensor.New(b, h)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < tl; ti++ {
			w := weights.T.Data[bi*tl+ti]
			if w == 0 {
				continue
			}
			for hi := 0; hi < h; hi++ {
				out.Data[bi*h+hi] += w * enc[ti].T.Data[bi*h+hi]
			}
		}
	}
	d.emitElementwise("bmm_attention_context", b*tl*h, 2, 2, 1)
	parents := append([]*V{weights}, enc...)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("bmm_attention_context_bwd", b*tl*h, 3, 3, 2)
		if weights.needGrad {
			g := tensor.New(b, tl)
			for bi := 0; bi < b; bi++ {
				for ti := 0; ti < tl; ti++ {
					var s float32
					for hi := 0; hi < h; hi++ {
						s += o.Grad.Data[bi*h+hi] * enc[ti].T.Data[bi*h+hi]
					}
					g.Data[bi*tl+ti] = s
				}
			}
			weights.addGrad(g)
		}
		for ti, e := range enc {
			if !e.needGrad {
				continue
			}
			g := tensor.New(b, h)
			for bi := 0; bi < b; bi++ {
				w := weights.T.Data[bi*tl+ti]
				for hi := 0; hi < h; hi++ {
					g.Data[bi*h+hi] = w * o.Grad.Data[bi*h+hi]
				}
			}
			e.addGrad(g)
		}
	}, parents...), nil
}

// --- Activations ------------------------------------------------------------

func activation(x *V, fwdName, bwdName string, sfu float64, f func(float32) float32, df func(y, x float32) float32) *V {
	d := x.dev
	out := tensor.New(x.T.Shape...)
	for i, v := range x.T.Data {
		out.Data[i] = f(v)
	}
	if sfu > 0 {
		d.emitSFUElementwise(fwdName, out.Numel(), sfu, 1, 1)
	} else {
		d.emitElementwise(fwdName, out.Numel(), 2, 1, 1)
	}
	return d.newNode(out, func(o *V) {
		d.emitElementwise(bwdName, out.Numel(), 3, 2, 1)
		if x.needGrad {
			g := tensor.New(x.T.Shape...)
			for i := range g.Data {
				g.Data[i] = o.Grad.Data[i] * df(out.Data[i], x.T.Data[i])
			}
			x.addGrad(g)
		}
	}, x)
}

// ReLU applies max(0, x).
func ReLU(x *V) *V {
	return activation(x, "relu_fwd", "relu_bwd", 0,
		func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		},
		func(y, v float32) float32 {
			if v > 0 {
				return 1
			}
			return 0
		})
}

// LeakyReLU applies x for x>0 and alpha*x otherwise (the DCGAN
// discriminator's activation).
func LeakyReLU(x *V, alpha float32) *V {
	return activation(x, "leaky_relu_fwd", "leaky_relu_bwd", 0,
		func(v float32) float32 {
			if v > 0 {
				return v
			}
			return alpha * v
		},
		func(y, v float32) float32 {
			if v > 0 {
				return 1
			}
			return alpha
		})
}

// Tanh applies the hyperbolic tangent.
func Tanh(x *V) *V {
	return activation(x, "tanh_fwd", "tanh_bwd", 2,
		func(v float32) float32 { return float32(math.Tanh(float64(v))) },
		func(y, v float32) float32 { return 1 - y*y })
}

// Sigmoid applies the logistic function.
func Sigmoid(x *V) *V {
	return activation(x, "sigmoid_fwd", "sigmoid_bwd", 2,
		func(v float32) float32 { return float32(1 / (1 + math.Exp(-float64(v)))) },
		func(y, v float32) float32 { return y * (1 - y) })
}

// --- Structured ops ----------------------------------------------------------

// MaxPool applies window x window max pooling with the given stride.
func MaxPool(x *V, window, stride int) (*V, error) {
	out, arg, err := tensor.MaxPool2D(x.T, window, stride)
	if err != nil {
		return nil, err
	}
	d := x.dev
	d.emitElementwise(fmt.Sprintf("maxpool%d_fwd", window), x.T.Numel(), 1, 1, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise(fmt.Sprintf("maxpool%d_bwd", window), x.T.Numel(), 1, 1, 1)
		if x.needGrad {
			g := tensor.New(x.T.Shape...)
			for i, src := range arg {
				g.Data[src] += o.Grad.Data[i]
			}
			x.addGrad(g)
		}
	}, x), nil
}

// SoftmaxRows applies a row-wise softmax to a 2-D tensor.
func SoftmaxRows(x *V) (*V, error) {
	s, err := tensor.Softmax(x.T)
	if err != nil {
		return nil, err
	}
	d := x.dev
	d.emitSFUElementwise("softmax_fwd", x.T.Numel(), 1, 1, 1)
	return d.newNode(s, func(o *V) {
		d.emitElementwise("softmax_bwd", x.T.Numel(), 3, 2, 1)
		if x.needGrad {
			m, n := x.T.Shape[0], x.T.Shape[1]
			g := tensor.New(m, n)
			for i := 0; i < m; i++ {
				var dot float32
				for j := 0; j < n; j++ {
					dot += o.Grad.Data[i*n+j] * s.Data[i*n+j]
				}
				for j := 0; j < n; j++ {
					g.Data[i*n+j] = s.Data[i*n+j] * (o.Grad.Data[i*n+j] - dot)
				}
			}
			x.addGrad(g)
		}
	}, x), nil
}

// Dropout zeroes elements with probability p at train time and scales the
// survivors by 1/(1-p).
func Dropout(x *V, p float64, train bool) *V {
	d := x.dev
	if !train || p <= 0 {
		return x
	}
	mask := make([]bool, x.T.Numel())
	scale := float32(1 / (1 - p))
	out := tensor.New(x.T.Shape...)
	for i, v := range x.T.Data {
		if d.RNG.Float64() >= p {
			mask[i] = true
			out.Data[i] = v * scale
		}
	}
	d.emitElementwise("dropout_fwd", out.Numel(), 2, 1, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("dropout_bwd", out.Numel(), 2, 2, 1)
		if x.needGrad {
			g := tensor.New(x.T.Shape...)
			for i := range g.Data {
				if mask[i] {
					g.Data[i] = o.Grad.Data[i] * scale
				}
			}
			x.addGrad(g)
		}
	}, x)
}

// Embedding gathers rows of table for the given ids.
func Embedding(table *V, ids []int) (*V, error) {
	if len(table.T.Shape) != 2 {
		return nil, fmt.Errorf("nn: embedding table %v", table.T.Shape)
	}
	vocab, dim := table.T.Shape[0], table.T.Shape[1]
	out := tensor.New(len(ids), dim)
	for i, id := range ids {
		if id < 0 || id >= vocab {
			return nil, fmt.Errorf("nn: embedding id %d out of vocab %d", id, vocab)
		}
		copy(out.Data[i*dim:(i+1)*dim], table.T.Data[id*dim:(id+1)*dim])
	}
	d := table.dev
	d.emitElementwise("embedding_fwd_gather", out.Numel(), 0.5, 1, 1)
	return d.newNode(out, func(o *V) {
		d.emitElementwise("embedding_bwd_scatter", out.Numel(), 1, 1, 1)
		if table.needGrad {
			g := tensor.New(vocab, dim)
			for i, id := range ids {
				for j := 0; j < dim; j++ {
					g.Data[id*dim+j] += o.Grad.Data[i*dim+j]
				}
			}
			table.addGrad(g)
		}
	}, table), nil
}
