package nn

import (
	"math"
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/tensor"
)

func device(t *testing.T) *Device {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return NewDevice(profiler.NewSession(d), 1, 42)
}

// gradCheck verifies d(loss)/d(param) for selected indices via central
// differences, where buildLoss recomputes the scalar loss from scratch.
func gradCheck(t *testing.T, name string, param *tensor.Tensor, analytic *tensor.Tensor,
	buildLoss func() float64, indices []int) {
	t.Helper()
	const eps = 1e-2
	for _, idx := range indices {
		orig := param.Data[idx]
		param.Data[idx] = orig + eps
		up := buildLoss()
		param.Data[idx] = orig - eps
		dn := buildLoss()
		param.Data[idx] = orig
		num := (up - dn) / (2 * eps)
		got := float64(analytic.Data[idx])
		tol := 2e-2 * math.Max(1, math.Abs(num))
		if math.Abs(num-got) > tol {
			t.Errorf("%s: grad[%d] numeric %g vs analytic %g", name, idx, num, got)
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	d := device(t)
	v := d.Param(tensor.New(2, 2))
	if err := v.Backward(); err == nil {
		t.Error("non-scalar backward should fail")
	}
}

func TestMatMulGradients(t *testing.T) {
	d := device(t)
	a := d.Param(tensor.Randn(d.RNG, 1, 3, 4))
	b := d.Param(tensor.Randn(d.RNG, 1, 4, 2))
	loss := func() float64 {
		c, err := tensor.MatMul(a.T, b.T, false, false)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range c.Data {
			s += float64(v) / float64(c.Numel())
		}
		return s
	}
	c, err := MatMul(a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := Mean(c)
	if err := out.Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "matmul-a", a.T, a.Grad, loss, []int{0, 5, 11})
	gradCheck(t, "matmul-b", b.T, b.Grad, loss, []int{0, 3, 7})
}

func TestMatMulTransposedGradients(t *testing.T) {
	d := device(t)
	for _, tc := range []struct{ tA, tB bool }{{true, false}, {false, true}} {
		a := d.Param(tensor.Randn(d.RNG, 1, 4, 3))
		b := d.Param(tensor.Randn(d.RNG, 1, 4, 3))
		loss := func() float64 {
			c, err := tensor.MatMul(a.T, b.T, tc.tA, tc.tB)
			if err != nil {
				t.Fatal(err)
			}
			var s float64
			for _, v := range c.Data {
				s += float64(v) / float64(c.Numel())
			}
			return s
		}
		c, err := MatMul(a, b, tc.tA, tc.tB)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mean(c).Backward(); err != nil {
			t.Fatal(err)
		}
		gradCheck(t, "matmulT-a", a.T, a.Grad, loss, []int{0, 7})
		gradCheck(t, "matmulT-b", b.T, b.Grad, loss, []int{1, 10})
	}
}

func TestActivationGradients(t *testing.T) {
	d := device(t)
	cases := []struct {
		name  string
		apply func(*V) *V
	}{
		{"relu", ReLU},
		{"lrelu", func(v *V) *V { return LeakyReLU(v, 0.2) }},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
	}
	for _, tc := range cases {
		x := d.Param(tensor.Randn(d.RNG, 1, 4, 5))
		y := tc.apply(x)
		if err := Mean(y).Backward(); err != nil {
			t.Fatal(err)
		}
		loss := func() float64 {
			xx := d.Const(x.T)
			yy := tc.apply(xx)
			var s float64
			for _, v := range yy.T.Data {
				s += float64(v) / float64(yy.T.Numel())
			}
			return s
		}
		gradCheck(t, tc.name, x.T, x.Grad, loss, []int{0, 9, 19})
	}
}

func TestConvLayerGradients(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 2, 2, 6, 6))
	conv := NewConv2d(d, 2, 3, 3, 1, 1)
	forward := func() float64 {
		y, err := tensor.Conv2D(x.T, conv.W.T, conv.B.T, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range y.Data {
			s += float64(v*v) / float64(y.Numel())
		}
		return s
	}
	y, err := conv.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := MulElem(y, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "conv-x", x.T, x.Grad, forward, []int{0, 31, 71})
	gradCheck(t, "conv-w", conv.W.T, conv.W.Grad, forward, []int{0, 25, 53})
	gradCheck(t, "conv-b", conv.B.T, conv.B.Grad, forward, []int{0, 2})
}

func TestConvTransposeLayerGradients(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 1, 3, 3, 3))
	deconv := NewConvTranspose2d(d, 3, 2, 4, 2, 1)
	forward := func() float64 {
		y, err := tensor.ConvTranspose2D(x.T, deconv.W.T, deconv.B.T, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range y.Data {
			s += float64(v*v) / float64(y.Numel())
		}
		return s
	}
	y, err := deconv.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := MulElem(y, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "convT-x", x.T, x.Grad, forward, []int{0, 13, 26})
	gradCheck(t, "convT-w", deconv.W.T, deconv.W.Grad, forward, []int{0, 47, 95})
}

func TestBatchNormGradientsAndStats(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 2, 2, 3, 4, 4))
	bn := NewBatchNorm2d(d, 3)
	y, err := bn.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// Output channels are normalized: mean ~0, var ~1 (gamma=1, beta=0).
	n, c, hw := 2, 3, 16
	for ci := 0; ci < c; ci++ {
		var mean, varr float64
		for ni := 0; ni < n; ni++ {
			for i := 0; i < hw; i++ {
				mean += float64(y.T.Data[(ni*c+ci)*hw+i])
			}
		}
		mean /= float64(n * hw)
		for ni := 0; ni < n; ni++ {
			for i := 0; i < hw; i++ {
				dv := float64(y.T.Data[(ni*c+ci)*hw+i]) - mean
				varr += dv * dv
			}
		}
		varr /= float64(n * hw)
		if math.Abs(mean) > 1e-5 || math.Abs(varr-1) > 1e-3 {
			t.Errorf("channel %d: mean %g var %g", ci, mean, varr)
		}
	}
	sq, err := MulElem(y, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	forward := func() float64 {
		xx := d.Const(x.T)
		yy, err := BatchNorm2dOp(xx, d.Const(bn.Gamma.T), d.Const(bn.Beta.T), bn.Eps)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range yy.T.Data {
			s += float64(v*v) / float64(yy.T.Numel())
		}
		return s
	}
	gradCheck(t, "bn-x", x.T, x.Grad, forward, []int{0, 17, 95})
	gradCheck(t, "bn-gamma", bn.Gamma.T, bn.Gamma.Grad, forward, []int{0, 2})
	gradCheck(t, "bn-beta", bn.Beta.T, bn.Beta.Grad, forward, []int{1})
}

func TestMaxPoolGradient(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 1, 1, 4, 4))
	y, err := MaxPool(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(y).Backward(); err != nil {
		t.Fatal(err)
	}
	// Gradient flows only to argmax positions; each gets 1/4.
	var nonzero int
	for _, g := range x.Grad.Data {
		if g != 0 {
			nonzero++
			if math.Abs(float64(g)-0.25) > 1e-6 {
				t.Errorf("pool grad = %g, want 0.25", g)
			}
		}
	}
	if nonzero != 4 {
		t.Errorf("%d nonzero grads, want 4", nonzero)
	}
}

func TestLossGradients(t *testing.T) {
	d := device(t)
	// MSE
	pred := d.Param(tensor.Randn(d.RNG, 1, 3, 3))
	target := tensor.Randn(d.RNG, 1, 3, 3)
	l, err := MSELoss(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Backward(); err != nil {
		t.Fatal(err)
	}
	mse := func() float64 {
		var s float64
		for i := range pred.T.Data {
			df := float64(pred.T.Data[i] - target.Data[i])
			s += df * df / float64(pred.T.Numel())
		}
		return s
	}
	gradCheck(t, "mse", pred.T, pred.Grad, mse, []int{0, 4, 8})

	// BCE with logits
	logits := d.Param(tensor.Randn(d.RNG, 1, 4))
	labels := tensor.Full(1, 4)
	labels.Data[1] = 0
	bl, err := BCEWithLogits(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.Backward(); err != nil {
		t.Fatal(err)
	}
	bce := func() float64 {
		var s float64
		for i := range logits.T.Data {
			z := float64(logits.T.Data[i])
			tt := float64(labels.Data[i])
			s += math.Max(z, 0) - z*tt + math.Log1p(math.Exp(-math.Abs(z)))
		}
		return s / 4
	}
	gradCheck(t, "bce", logits.T, logits.Grad, bce, []int{0, 1, 3})

	// Cross entropy
	lg := d.Param(tensor.Randn(d.RNG, 1, 3, 5))
	lab := []int{1, 4, 0}
	cl, err := CrossEntropy(lg, lab)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Backward(); err != nil {
		t.Fatal(err)
	}
	ce := func() float64 {
		sm, _ := tensor.Softmax(lg.T)
		var s float64
		for i, l := range lab {
			s -= math.Log(float64(sm.Data[i*5+l]))
		}
		return s / 3
	}
	gradCheck(t, "xent", lg.T, lg.Grad, ce, []int{0, 6, 14})
}

func TestCrossEntropyDecreasesWithTraining(t *testing.T) {
	d := device(t)
	lin := NewLinear(d, 4, 3)
	x := tensor.Randn(d.RNG, 1, 8, 4)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 3
	}
	opt := NewSGD(d, lin.Params(), 0.5, 0.9)
	var first, last float64
	for iter := 0; iter < 60; iter++ {
		logits, err := lin.Forward(d.Const(x))
		if err != nil {
			t.Fatal(err)
		}
		loss, err := CrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if iter == 0 {
			first = float64(loss.T.Data[0])
		}
		last = float64(loss.T.Data[0])
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	if last >= first/2 {
		t.Errorf("loss did not train down: %g -> %g", first, last)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	d := device(t)
	p := d.Param(tensor.Full(5, 4))
	target := tensor.New(4)
	opt := NewAdam(d, []*V{p}, 0.2, 0.9)
	for iter := 0; iter < 200; iter++ {
		l, err := MSELoss(p, target)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	for _, v := range p.T.Data {
		if math.Abs(float64(v)) > 0.05 {
			t.Errorf("adam did not converge: %g", v)
		}
	}
}

func TestEmbeddingGradScatter(t *testing.T) {
	d := device(t)
	table := d.Param(tensor.Randn(d.RNG, 1, 6, 3))
	e, err := Embedding(table, []int{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(e).Backward(); err != nil {
		t.Fatal(err)
	}
	// Row 2 used twice: grad 2/9 per element; row 5 once: 1/9; others 0.
	for j := 0; j < 3; j++ {
		if math.Abs(float64(table.Grad.Data[2*3+j])-2.0/9) > 1e-6 {
			t.Errorf("row2 grad %g", table.Grad.Data[2*3+j])
		}
		if math.Abs(float64(table.Grad.Data[5*3+j])-1.0/9) > 1e-6 {
			t.Errorf("row5 grad %g", table.Grad.Data[5*3+j])
		}
		if table.Grad.Data[0*3+j] != 0 {
			t.Error("unused row has gradient")
		}
	}
	if _, err := Embedding(table, []int{9}); err == nil {
		t.Error("out-of-vocab id should fail")
	}
}

func TestGRUCellGradientsAndShapes(t *testing.T) {
	d := device(t)
	cell := NewGRUCell(d, 3, 4)
	x := d.Param(tensor.Randn(d.RNG, 1, 2, 3))
	h := d.Param(tensor.Randn(d.RNG, 1, 2, 4))
	h2, err := cell.Step(x, h)
	if err != nil {
		t.Fatal(err)
	}
	if h2.T.Shape[0] != 2 || h2.T.Shape[1] != 4 {
		t.Fatalf("gru output %v", h2.T.Shape)
	}
	sq, err := MulElem(h2, h2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	forward := func() float64 {
		xx, hh := d.Const(x.T), d.Const(h.T)
		c2 := &GRUCell{Wx: d.Const(cell.Wx.T), Wh: d.Const(cell.Wh.T),
			Bx: d.Const(cell.Bx.T), Bh: d.Const(cell.Bh.T), Hidden: 4}
		y, err := c2.Step(xx, hh)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range y.T.Data {
			s += float64(v*v) / float64(y.T.Numel())
		}
		return s
	}
	gradCheck(t, "gru-x", x.T, x.Grad, forward, []int{0, 5})
	gradCheck(t, "gru-h", h.T, h.Grad, forward, []int{0, 7})
	gradCheck(t, "gru-wx", cell.Wx.T, cell.Wx.Grad, forward, []int{0, 17, 35})
	gradCheck(t, "gru-wh", cell.Wh.T, cell.Wh.Grad, forward, []int{0, 23, 47})
}

func TestAffineGridIdentity(t *testing.T) {
	d := device(t)
	theta := d.Param(tensor.New(1, 2, 3))
	theta.T.Data[0], theta.T.Data[4] = 1, 1 // identity transform
	grid, err := AffineGrid(theta, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corners map to themselves in normalized coords.
	if grid.T.Data[0] != -1 || grid.T.Data[1] != -1 {
		t.Errorf("top-left = (%g,%g)", grid.T.Data[0], grid.T.Data[1])
	}
	last := grid.T.Numel() - 2
	if grid.T.Data[last] != 1 || grid.T.Data[last+1] != 1 {
		t.Errorf("bottom-right = (%g,%g)", grid.T.Data[last], grid.T.Data[last+1])
	}
}

func TestGridSampleIdentityReproducesInput(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 1, 2, 5, 5))
	theta := d.Param(tensor.New(1, 2, 3))
	theta.T.Data[0], theta.T.Data[4] = 1, 1
	grid, err := AffineGrid(theta, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	y, err := GridSample(x, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.T.Data {
		if math.Abs(float64(y.T.Data[i]-x.T.Data[i])) > 1e-5 {
			t.Fatalf("identity sample differs at %d: %g vs %g", i, y.T.Data[i], x.T.Data[i])
		}
	}
}

func TestSpatialTransformerGradients(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 1, 1, 4, 4))
	theta := d.Param(tensor.New(1, 2, 3))
	// Chosen so no sample lands exactly on an integer pixel coordinate,
	// where bilinear interpolation has a kink and numeric gradients are
	// undefined (0.9 scale + 0.1 shift puts the right edge exactly on 3.0).
	theta.T.Data[0], theta.T.Data[4] = 0.85, 0.9
	theta.T.Data[2] = 0.07
	forward := func() float64 {
		tt := d.Const(theta.T)
		g, err := AffineGrid(tt, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		y, err := GridSample(d.Const(x.T), g)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range y.T.Data {
			s += float64(v*v) / float64(y.T.Numel())
		}
		return s
	}
	g, err := AffineGrid(theta, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	y, err := GridSample(x, g)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := MulElem(y, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mean(sq).Backward(); err != nil {
		t.Fatal(err)
	}
	gradCheck(t, "stn-theta", theta.T, theta.Grad, forward, []int{0, 2, 4, 5})
	gradCheck(t, "stn-x", x.T, x.Grad, forward, []int{5, 10})
}

func TestOpsEmitKernels(t *testing.T) {
	d := device(t)
	before := d.Session().LaunchCount()
	a := d.Param(tensor.Randn(d.RNG, 1, 8, 8))
	b := d.Param(tensor.Randn(d.RNG, 1, 8, 8))
	c, err := MatMul(a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = ReLU(c)
	if d.Session().LaunchCount() != before+2 {
		t.Errorf("expected 2 kernels, got %d", d.Session().LaunchCount()-before)
	}
	// Backward emits gradient kernels too.
	mid := d.Session().LaunchCount()
	y := Mean(ReLU(c))
	if err := y.Backward(); err != nil {
		t.Fatal(err)
	}
	if d.Session().LaunchCount() <= mid+2 {
		t.Error("backward pass should launch gradient kernels")
	}
	// Kernel names carry shape classes.
	found := false
	for _, l := range d.Session().Launches() {
		if l.Name == "ampere_sgemm_8x8x8_nn" {
			found = true
		}
	}
	if !found {
		t.Error("sgemm kernel name with shape bucket not found")
	}
}

func TestConcatAndSplitGradients(t *testing.T) {
	d := device(t)
	a := d.Param(tensor.Randn(d.RNG, 1, 2, 3))
	b := d.Param(tensor.Randn(d.RNG, 1, 2, 2))
	c, err := Concat2D(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.T.Shape[1] != 5 {
		t.Fatalf("concat shape %v", c.T.Shape)
	}
	if err := Mean(c).Backward(); err != nil {
		t.Fatal(err)
	}
	for _, g := range a.Grad.Data {
		if math.Abs(float64(g)-0.1) > 1e-6 {
			t.Errorf("concat grad a = %g, want 0.1", g)
		}
	}
	for _, g := range b.Grad.Data {
		if math.Abs(float64(g)-0.1) > 1e-6 {
			t.Errorf("concat grad b = %g, want 0.1", g)
		}
	}
}

func TestDropout(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Full(1, 1000))
	// Eval mode: identity.
	if Dropout(x, 0.5, false) != x {
		t.Error("eval-mode dropout should be identity")
	}
	y := Dropout(x, 0.5, true)
	zeros := 0
	for _, v := range y.T.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v)-2) > 1e-6 {
			t.Fatalf("survivor not scaled: %g", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at p=0.5", zeros)
	}
	if err := Mean(y).Backward(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsGradient(t *testing.T) {
	d := device(t)
	x := d.Param(tensor.Randn(d.RNG, 1, 3, 4))
	weights := tensor.Randn(d.RNG, 1, 3, 4)
	forward := func() float64 {
		s, _ := tensor.Softmax(x.T)
		var sum float64
		for i := range s.Data {
			sum += float64(s.Data[i] * weights.Data[i])
		}
		return sum
	}
	s, err := SoftmaxRows(x)
	if err != nil {
		t.Fatal(err)
	}
	w, err := MulElem(s, d.Const(weights))
	if err != nil {
		t.Fatal(err)
	}
	total := Mean(w)
	// Scale up by numel to make Mean a plain sum for the check.
	if err := total.Backward(); err != nil {
		t.Fatal(err)
	}
	scaled := tensor.New(x.T.Shape...)
	for i := range scaled.Data {
		scaled.Data[i] = x.Grad.Data[i] * 12
	}
	gradCheck(t, "softmax", x.T, scaled, forward, []int{0, 5, 11})
}
