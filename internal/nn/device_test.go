package nn

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/tensor"
)

func TestBucket(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 7: 4, 8: 8, 100: 64, 128: 128}
	for in, want := range cases {
		if got := bucket(in); got != want {
			t.Errorf("bucket(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestReplicationScalesInstructionsLinearly(t *testing.T) {
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	run := func(repl float64) uint64 {
		dev := NewDevice(profiler.NewSession(d), repl, 1)
		dev.EmitNamed("probe", 1<<16, 2, 1, 1)
		return uint64(dev.Session().TotalWarpInstructions())
	}
	one := run(1)
	four := run(4)
	ratio := float64(four) / float64(one)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("replication 4 scaled instructions by %gx, want 4x", ratio)
	}
}

func TestParamOpScalesBySqrt(t *testing.T) {
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	run := func(repl float64) uint64 {
		dev := NewDevice(profiler.NewSession(d), repl, 1)
		dev.EmitParamOp("probe", 1<<16, 2, 1, 1)
		return uint64(dev.Session().TotalWarpInstructions())
	}
	one := run(1)
	sixteen := run(16)
	// sqrt(16) = 4x expected.
	ratio := float64(sixteen) / float64(one)
	if ratio < 3.8 || ratio > 4.2 {
		t.Errorf("param op under replication 16 scaled by %gx, want ~4x", ratio)
	}
}

func TestWeightStreamsScaleBySqrt(t *testing.T) {
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	// Replicated GEMM: activation traffic scales by R, weight traffic by
	// sqrt(R), so total sectors grow sublinearly in R.
	sectors := func(repl float64) uint64 {
		dev := NewDevice(profiler.NewSession(d), repl, 1)
		a := dev.Const(tensor.Full(1, 64, 256))
		w := dev.Const(tensor.Full(1, 256, 64))
		if _, err := MatMul(a, w, false, false); err != nil {
			t.Fatal(err)
		}
		return uint64(dev.Session().Launches()[0].Traffic.Sectors)
	}
	one := sectors(1)
	sixteen := sectors(16)
	ratio := float64(sixteen) / float64(one)
	if ratio >= 16 || ratio <= 4 {
		t.Errorf("replication 16 scaled GEMM sectors by %gx, want between 4x and 16x", ratio)
	}
	// Kernel names stay bucketed regardless of replication.
	dev := NewDevice(profiler.NewSession(d), 1, 1)
	a := dev.Const(tensor.Full(1, 64, 256))
	w := dev.Const(tensor.Full(1, 256, 64))
	if _, err := MatMul(a, w, false, false); err != nil {
		t.Fatal(err)
	}
	name := dev.Session().Launches()[0].Name
	if !strings.HasPrefix(name, "ampere_sgemm_64x64x128_") {
		t.Errorf("gemm kernel name = %q", name)
	}
}

func TestGEMMKernelNamesDistinguishLayouts(t *testing.T) {
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(profiler.NewSession(d), 1, 1)
	a := dev.Const(tensor.Full(1, 16, 16))
	if _, err := MatMul(a, a, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := MatMul(a, a, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := MatMul(a, a, false, true); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, l := range dev.Session().Launches() {
		names[l.Name] = true
	}
	for _, want := range []string{"ampere_sgemm_16x16x16_nn", "ampere_sgemm_16x16x16_tn", "ampere_sgemm_16x16x16_nt"} {
		if !names[want] {
			t.Errorf("missing %s in %v", want, names)
		}
	}
}
