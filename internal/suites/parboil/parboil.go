// Package parboil implements the Parboil subset of Table III: bfs (1M),
// cutcp, histo, lbm, mri-gridding, mri-q, sad, sgemm, spmv, stencil, tpacf.
// Every benchmark performs its computation for real at reduced scale and
// launches the suite's characteristic one-or-two kernels with derived
// counts; replication factors extrapolate to the reference inputs.
package parboil

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/suites"
	"repro/internal/tensor"
	"repro/internal/workloads"
)

// All returns the Parboil benchmarks in Table III order.
func All() []workloads.Workload {
	bs := []*suites.Bench{
		bfs(), cutcp(), histo(), lbm(), mriGridding(), mriQ(),
		sad(), sgemm(), spmv(), stencil(), tpacf(),
	}
	out := make([]workloads.Workload, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}

func bench(name, abbr string, repl float64, body func(e *suites.Emitter) error) *suites.Bench {
	return &suites.Bench{
		BenchName: name, BenchAbbr: abbr,
		BenchSuite: workloads.Parboil, BenchDomain: workloads.Scientific,
		Replication: repl, Body: body,
	}
}

// bfs: level-synchronous breadth-first search over a random graph — the
// bottom-up single-kernel-per-level formulation (all memory-intensive).
func bfs() *suites.Bench {
	return bench("Parboil BFS (1M nodes)", "pb-bfs", 24, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(9))
		n := 1 << 14
		deg := 8
		adj := make([][]int32, n)
		for v := range adj {
			for k := 0; k < deg; k++ {
				adj[v] = append(adj[v], int32(r.Intn(n)))
			}
		}
		depth := make([]int32, n)
		for i := range depth {
			depth[i] = -1
		}
		depth[0] = 0
		frontier := []int32{0}
		for level := int32(1); len(frontier) > 0; level++ {
			var next []int32
			edges := 0
			for _, u := range frontier {
				for _, v := range adj[u] {
					edges++
					if depth[v] == -1 {
						depth[v] = level
						next = append(next, v)
					}
				}
			}
			var m suites.Mix
			m.Add(isa.INT, float64(edges*6)).
				Add(isa.LoadGlobal, float64(edges*2)).
				Add(isa.StoreGlobal, float64(len(next)+1)).
				Add(isa.Branch, float64(edges))
			e.Launch("bfs_levelsync_kernel", len(frontier)+32, &m,
				[]suites.Stream{
					suites.Gather("graph", uint64(n*deg*4), uint64(edges*4)),
					suites.Gather("colors", uint64(n*4), uint64(edges*4)),
				}, 0.35)
			frontier = next
		}
		return nil
	})
}

// cutcp: cutoff Coulomb potential on a lattice — the classic
// compute-intensive Parboil kernel.
func cutcp() *suites.Bench {
	return bench("Parboil cutoff Coulomb potential", "pb-cutcp", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(10))
		const atoms, grid = 256, 24
		const cutoff = 6.0
		type atom struct{ x, y, z, q float64 }
		as := make([]atom, atoms)
		for i := range as {
			as[i] = atom{r.Float64() * grid, r.Float64() * grid, r.Float64() * grid, r.Float64() - 0.5}
		}
		var pot float64
		pairs := 0
		for gz := 0; gz < grid; gz += 2 {
			for gy := 0; gy < grid; gy += 2 {
				for gx := 0; gx < grid; gx += 2 {
					for _, a := range as {
						dx, dy, dz := a.x-float64(gx), a.y-float64(gy), a.z-float64(gz)
						d2 := dx*dx + dy*dy + dz*dz
						if d2 < cutoff*cutoff && d2 > 0 {
							pot += a.q / math.Sqrt(d2)
							pairs++
						}
					}
				}
			}
		}
		if math.IsNaN(pot) {
			return fmt.Errorf("cutcp: NaN potential")
		}
		cells := grid * grid * grid / 8
		var m suites.Mix
		m.Add(isa.FP32, float64(cells*atoms*9)).
			Add(isa.SFU, float64(pairs)).
			Add(isa.INT, float64(cells*atoms*2)).
			Add(isa.LoadGlobal, float64(cells*2)).
			Add(isa.LoadConst, float64(cells*atoms/4)).
			Add(isa.StoreGlobal, float64(cells)).
			Add(isa.Branch, float64(cells*atoms))
		e.Launch("cutcp_cuda_kernel", cells, &m, []suites.Stream{
			suites.Broadcast("atoms", uint64(atoms*16), uint64(cells*atoms/8)),
			suites.Write("lattice", uint64(cells*4)),
		}, 0.2)
		return nil
	})
}

// histo: a saturating histogram over an image — memory/atomic bound.
func histo() *suites.Bench {
	return bench("Parboil histogramming", "pb-histo", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(11))
		const n = 1 << 16
		const bins = 4096
		h := make([]uint32, bins)
		for i := 0; i < n; i++ {
			// Gaussian-ish histogram like the Parboil silicon-wafer input.
			b := int(math.Abs(r.NormFloat64()) * bins / 4)
			if b >= bins {
				b = bins - 1
			}
			if h[b] < 255 {
				h[b]++
			}
		}
		var m suites.Mix
		m.Add(isa.INT, n*5).Add(isa.LoadGlobal, n).
			Add(isa.StoreGlobal, n).Add(isa.Branch, n)
		e.Launch("histo_main_kernel", n, &m, []suites.Stream{
			suites.Read("img", n*4, 1),
			suites.Scatter("bins", bins*4, n*4),
		}, 0.25)
		var f suites.Mix
		f.Add(isa.INT, bins*3).Add(isa.LoadGlobal, bins).Add(isa.StoreGlobal, bins)
		e.Launch("histo_final_kernel", bins, &f, []suites.Stream{
			suites.Read("partial", bins*4, 1), suites.Write("out", bins*4),
		}, 0)
		_ = h
		return nil
	})
}

// lbm: a lattice-Boltzmann stream-and-collide step — strongly
// memory-intensive.
func lbm() *suites.Bench {
	return bench("Parboil lattice-Boltzmann", "pb-lbm", 48, func(e *suites.Emitter) error {
		const n = 20 // n^3 cells, 19 distributions
		const q = 19
		cells := n * n * n
		src := make([]float64, cells*q)
		dst := make([]float64, cells*q)
		for i := range src {
			src[i] = 1.0 / q
		}
		for step := 0; step < 4; step++ {
			for c := 0; c < cells; c++ {
				var rho float64
				for k := 0; k < q; k++ {
					rho += src[c*q+k]
				}
				for k := 0; k < q; k++ {
					eq := rho / q
					dst[c*q+k] = src[c*q+k] + 0.6*(eq-src[c*q+k])
				}
			}
			src, dst = dst, src
			bytes := uint64(cells * q * 8)
			var m suites.Mix
			m.Add(isa.FP32, float64(cells*q*6)).
				Add(isa.INT, float64(cells*q)).
				Add(isa.LoadGlobal, float64(cells*q)).
				Add(isa.StoreGlobal, float64(cells*q))
			e.Launch("performStreamCollide_kernel", cells, &m, []suites.Stream{
				suites.Read("srcGrid", bytes, 1),
				suites.Write("dstGrid", bytes),
			}, 0.05)
		}
		return nil
	})
}

// mriGridding: scattering k-space samples onto a Cartesian grid.
func mriGridding() *suites.Bench {
	return bench("Parboil MRI gridding", "pb-mri-gridding", 32, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(12))
		const samples = 1 << 14
		const grid = 32
		g := make([]float64, grid*grid*grid)
		writes := 0
		for i := 0; i < samples; i++ {
			x, y, z := r.Intn(grid), r.Intn(grid), r.Intn(grid)
			// Kaiser-Bessel window over a 2^3 neighborhood.
			for dx := 0; dx < 2; dx++ {
				for dy := 0; dy < 2; dy++ {
					for dz := 0; dz < 2; dz++ {
						gx, gy, gz := (x+dx)%grid, (y+dy)%grid, (z+dz)%grid
						g[(gx*grid+gy)*grid+gz] += 0.125
						writes++
					}
				}
			}
		}
		var m suites.Mix
		m.Add(isa.FP32, float64(writes*8)).Add(isa.SFU, float64(samples*2)).
			Add(isa.INT, float64(writes*3)).
			Add(isa.LoadGlobal, float64(samples*2)).
			Add(isa.StoreGlobal, float64(writes))
		e.Launch("gridding_GPU_kernel", samples, &m, []suites.Stream{
			suites.Read("samples", samples*16, 1),
			suites.Scatter("grid", uint64(grid*grid*grid*8), uint64(writes*8)),
		}, 0.15)
		return nil
	})
}

// mriQ: computing the Q matrix for non-Cartesian MRI — famously
// compute-intensive (sin/cos heavy).
func mriQ() *suites.Bench {
	return bench("Parboil MRI Q", "pb-mri-q", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(13))
		const voxels, ksp = 2048, 512
		kx := make([]float64, ksp)
		for i := range kx {
			kx[i] = r.Float64()
		}
		var acc float64
		for v := 0; v < voxels; v++ {
			x := float64(v) / voxels
			for k := 0; k < ksp; k++ {
				acc += math.Cos(2 * math.Pi * kx[k] * x)
			}
		}
		_ = acc
		var m suites.Mix
		m.Add(isa.FP32, float64(voxels*ksp*5)).
			Add(isa.SFU, float64(voxels*ksp*2)).
			Add(isa.INT, float64(voxels*ksp)).
			Add(isa.LoadConst, float64(voxels*ksp/8)).
			Add(isa.StoreGlobal, float64(voxels))
		e.Launch("ComputeQ_GPU", voxels, &m, []suites.Stream{
			suites.Broadcast("kvalues", ksp*12, uint64(voxels*ksp/8)),
			suites.Write("Q", voxels*8),
		}, 0)
		return nil
	})
}

// sad: sums of absolute differences for motion estimation.
func sad() *suites.Bench {
	return bench("Parboil SAD", "pb-sad", 36, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(14))
		const w, h = 64, 64
		cur := make([]uint8, w*h)
		ref := make([]uint8, w*h)
		for i := range cur {
			cur[i], ref[i] = uint8(r.Intn(256)), uint8(r.Intn(256))
		}
		blocks := (w / 16) * (h / 16)
		const searches = 33 * 33
		var total uint64
		for b := 0; b < blocks; b++ {
			for s := 0; s < 8; s++ { // sampled search positions
				var sad uint64
				for i := 0; i < 256; i++ {
					d := int(cur[i]) - int(ref[(i+s)%len(ref)])
					if d < 0 {
						d = -d
					}
					sad += uint64(d)
				}
				total += sad
			}
		}
		_ = total
		work := float64(blocks * searches * 256)
		var m suites.Mix
		m.Add(isa.INT, work*3).
			Add(isa.LoadGlobal, work/4).
			Add(isa.LoadShared, work).
			Add(isa.StoreGlobal, float64(blocks*searches)).
			Add(isa.Sync, float64(blocks*8))
		e.Launch("mb_sad_calc", blocks*searches, &m, []suites.Stream{
			suites.Read("cur_frame", w*h, 16),
			suites.Read("ref_frame", w*h, 16),
			suites.Write("sad_out", uint64(blocks*searches*2)),
		}, 0.1)
		var m2 suites.Mix
		m2.Add(isa.INT, float64(blocks*searches*2)).
			Add(isa.LoadGlobal, float64(blocks*searches)).
			Add(isa.StoreGlobal, float64(blocks*searches/4))
		e.Launch("larger_sad_calc_8", blocks*searches/4, &m2, []suites.Stream{
			suites.Read("sad_in", uint64(blocks*searches*2), 1),
			suites.Write("sad8", uint64(blocks*searches/2)),
		}, 0)
		return nil
	})
}

// sgemm: dense matrix multiply — the canonical compute kernel.
func sgemm() *suites.Bench {
	return bench("Parboil SGEMM", "pb-sgemm", 64, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(15))
		const n = 96
		a := tensor.Randn(r, 1, n, n)
		b := tensor.Randn(r, 1, n, n)
		c, err := tensor.MatMul(a, b, false, false)
		if err != nil {
			return err
		}
		if len(c.Data) != n*n {
			return fmt.Errorf("sgemm: bad result")
		}
		flops := float64(2 * n * n * n)
		var m suites.Mix
		m.Add(isa.FP32, flops/2).
			Add(isa.INT, flops/16).
			Add(isa.LoadShared, flops/8).
			Add(isa.StoreShared, flops/32).
			Add(isa.LoadGlobal, float64(2*n*n)/4).
			Add(isa.StoreGlobal, float64(n*n)/4).
			Add(isa.Sync, float64(n*n)/256)
		e.Launch("mysgemmNT", n*n, &m, []suites.Stream{
			suites.Read("A", uint64(n*n*4), 8),
			suites.Read("B", uint64(n*n*4), 8),
			suites.Write("C", uint64(n*n*4)),
		}, 0)
		return nil
	})
}

// spmv: sparse matrix-vector multiply in JDS format — memory-bound gathers.
func spmv() *suites.Bench {
	return bench("Parboil SpMV", "pb-spmv", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(16))
		const rows, nnzPerRow = 1 << 13, 16
		x := make([]float64, rows)
		y := make([]float64, rows)
		for i := range x {
			x[i] = r.Float64()
		}
		nnz := 0
		for i := 0; i < rows; i++ {
			for k := 0; k < nnzPerRow; k++ {
				j := r.Intn(rows)
				y[i] += 0.5 * x[j]
				nnz++
			}
		}
		var m suites.Mix
		m.Add(isa.FP32, float64(nnz*2)).
			Add(isa.INT, float64(nnz*3)).
			Add(isa.LoadGlobal, float64(nnz*3)).
			Add(isa.StoreGlobal, rows)
		e.Launch("spmv_jds_naive", rows, &m, []suites.Stream{
			suites.Read("vals", uint64(nnz*4), 1),
			suites.Read("cols", uint64(nnz*4), 1),
			suites.Gather("x", rows*4, uint64(nnz*4)),
			suites.Write("y", rows*4),
		}, 0.15)
		return nil
	})
}

// stencil: a 7-point 3-D Jacobi stencil — memory streaming.
func stencil() *suites.Bench {
	return bench("Parboil 7-point stencil", "pb-stencil", 48, func(e *suites.Emitter) error {
		const n = 32
		a := make([]float64, n*n*n)
		b := make([]float64, n*n*n)
		for i := range a {
			a[i] = float64(i % 7)
		}
		at := func(g []float64, x, y, z int) float64 { return g[(x*n+y)*n+z] }
		for step := 0; step < 3; step++ {
			for x := 1; x < n-1; x++ {
				for y := 1; y < n-1; y++ {
					for z := 1; z < n-1; z++ {
						b[(x*n+y)*n+z] = (at(a, x-1, y, z) + at(a, x+1, y, z) +
							at(a, x, y-1, z) + at(a, x, y+1, z) +
							at(a, x, y, z-1) + at(a, x, y, z+1) -
							6*at(a, x, y, z)) * 0.1
					}
				}
			}
			a, b = b, a
			cells := float64((n - 2) * (n - 2) * (n - 2))
			var m suites.Mix
			m.Add(isa.FP32, cells*8).
				Add(isa.INT, cells*4).
				Add(isa.LoadGlobal, cells*7).
				Add(isa.StoreGlobal, cells)
			e.Launch("block2D_hybrid_coarsen_x", int(cells), &m, []suites.Stream{
				suites.Read("Anext", uint64(n*n*n*4), 3),
				suites.Write("A0", uint64(n*n*n*4)),
			}, 0)
		}
		return nil
	})
}

// tpacf: two-point angular correlation — compute-heavy with transcendental
// work and histogram updates.
func tpacf() *suites.Bench {
	return bench("Parboil TPACF", "pb-tpacf", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(17))
		const pts = 1024
		type pt struct{ x, y, z float64 }
		ps := make([]pt, pts)
		for i := range ps {
			theta := r.Float64() * math.Pi
			phi := r.Float64() * 2 * math.Pi
			ps[i] = pt{math.Sin(theta) * math.Cos(phi), math.Sin(theta) * math.Sin(phi), math.Cos(theta)}
		}
		hist := make([]int, 32)
		for i := 0; i < pts; i++ {
			for j := i + 1; j < pts; j++ {
				dot := ps[i].x*ps[j].x + ps[i].y*ps[j].y + ps[i].z*ps[j].z
				if dot > 1 {
					dot = 1
				} else if dot < -1 {
					dot = -1
				}
				bin := int(math.Acos(dot) / math.Pi * 31)
				hist[bin]++
			}
		}
		pairs := float64(pts * (pts - 1) / 2)
		var m suites.Mix
		m.Add(isa.FP32, pairs*8).
			Add(isa.SFU, pairs).
			Add(isa.INT, pairs*4).
			Add(isa.LoadShared, pairs*2).
			Add(isa.StoreShared, pairs/8).
			Add(isa.LoadGlobal, pts*3).
			Add(isa.Sync, pts/4).
			Add(isa.Branch, pairs)
		e.Launch("gen_hists", pts, &m, []suites.Stream{
			suites.Read("points", pts*24, 4),
			suites.Scatter("histograms", 32*8, uint64(pairs/64)),
		}, 0.1)
		return nil
	})
}
