// Package suites provides the shared scaffolding for the baseline benchmark
// suites the paper compares Cactus against (Table III): Parboil, Rodinia,
// and Tango. Each benchmark is a real (reduced-scale) computation whose one
// or few kernels are launched with counts derived from the work performed —
// reproducing the bottom-up, kernel-centric structure the paper's Figure 2
// and Figure 4 characterize.
package suites

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/profiler"
	"repro/internal/workloads"
)

// Bench is one baseline benchmark.
type Bench struct {
	BenchName   string
	BenchAbbr   string
	BenchSuite  workloads.Suite
	BenchDomain workloads.Domain
	// Replication extrapolates the reduced computation to the suite's
	// reference input scale. Zero means 1.
	Replication float64
	// Body executes the benchmark against an emitter.
	Body func(e *Emitter) error
}

var _ workloads.Workload = (*Bench)(nil)

// Name returns the benchmark name.
func (b *Bench) Name() string { return b.BenchName }

// Abbr returns the lookup abbreviation.
func (b *Bench) Abbr() string { return b.BenchAbbr }

// Suite returns the owning suite.
func (b *Bench) Suite() workloads.Suite { return b.BenchSuite }

// Domain returns the benchmark domain.
func (b *Bench) Domain() workloads.Domain { return b.BenchDomain }

// Run executes the benchmark.
func (b *Bench) Run(s *profiler.Session) error {
	r := b.Replication
	if r < 1 {
		r = 1
	}
	if b.Body == nil {
		return fmt.Errorf("suites: %s has no body", b.BenchAbbr)
	}
	if err := b.Body(&Emitter{sess: s, repl: r}); err != nil {
		return fmt.Errorf("suites: %s: %w", b.BenchAbbr, err)
	}
	return nil
}

// Emitter launches kernels scaled by the benchmark's replication factor.
type Emitter struct {
	sess *profiler.Session
	repl float64
}

// Mix is a builder for warp-instruction mixes from thread-instruction
// estimates.
type Mix struct{ m isa.Mix }

// Add accumulates threadInsts thread instructions of class c.
func (x *Mix) Add(c isa.Class, threadInsts float64) *Mix {
	w := threadInsts / 32
	if w < 1 {
		w = 1
	}
	x.m.Add(c, uint64(w))
	return x
}

// Stream describes one memory stream (thin wrapper so suite code does not
// import memsim directly).
type Stream = memsim.Stream

// Read builds a coalesced read stream.
func Read(name string, bytes uint64, reuse float64) Stream {
	if reuse < 1 {
		reuse = 1
	}
	return Stream{Name: name, FootprintBytes: max1(bytes), AccessBytes: max1(uint64(float64(bytes) * reuse)),
		ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true}
}

// Write builds a coalesced write stream.
func Write(name string, bytes uint64) Stream {
	return Stream{Name: name, FootprintBytes: max1(bytes), AccessBytes: max1(bytes),
		ElemBytes: 4, Pattern: memsim.Coalesced, Store: true, Partitioned: true}
}

// Gather builds a random-access read stream over footprint bytes.
func Gather(name string, footprint, access uint64) Stream {
	return Stream{Name: name, FootprintBytes: max1(footprint), AccessBytes: max1(access),
		ElemBytes: 4, Pattern: memsim.Random, Partitioned: true}
}

// Scatter builds a random-access write stream.
func Scatter(name string, footprint, access uint64) Stream {
	return Stream{Name: name, FootprintBytes: max1(footprint), AccessBytes: max1(access),
		ElemBytes: 4, Pattern: memsim.Random, Store: true, Partitioned: true}
}

// Broadcast builds a broadcast read stream (lookup tables).
func Broadcast(name string, footprint, access uint64) Stream {
	return Stream{Name: name, FootprintBytes: max1(footprint), AccessBytes: max1(access),
		ElemBytes: 4, Pattern: memsim.Broadcast, Partitioned: false}
}

func max1(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// FixedPrefix marks streams over fixed-size structures (model weights,
// lookup trees): under replication they grow ~sqrt(R) rather than R.
const FixedPrefix = "w:"

// Launch issues one kernel with the given thread count, mix and streams.
func (e *Emitter) Launch(name string, threads int, mix *Mix, streams []Stream, div float64) {
	r := e.repl
	scaled := make([]memsim.Stream, len(streams))
	for i, s := range streams {
		sr := r
		if strings.HasPrefix(s.Name, FixedPrefix) {
			sr = math.Sqrt(r)
		}
		s.FootprintBytes = uint64(float64(s.FootprintBytes) * sr)
		s.AccessBytes = uint64(float64(s.AccessBytes) * sr)
		scaled[i] = s
	}
	block := 256
	grid := (int(float64(threads)*r) + block - 1) / block
	if grid < 1 {
		grid = 1
	}
	e.sess.MustLaunch(gpu.KernelSpec{
		Name:               name,
		Grid:               gpu.D1(grid),
		Block:              gpu.D1(block),
		Mix:                mix.m.Scale(r),
		Streams:            scaled,
		DivergenceFraction: div,
	})
}
