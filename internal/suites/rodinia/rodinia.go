// Package rodinia implements the Rodinia subset of Table III: b+tree,
// backprop, bfs, cfd, dwt2d, gaussian (4K), heartwall, hotspot3d, huffman,
// kmeans, lavamd, leukocyte, lud, nn, nw, pathfinder, srad_v1,
// streamcluster. Each benchmark performs its reduced computation for real
// and launches its characteristic kernels with derived counts.
package rodinia

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/isa"
	"repro/internal/suites"
	"repro/internal/workloads"
)

// All returns the Rodinia benchmarks in Table III order.
func All() []workloads.Workload {
	bs := []*suites.Bench{
		bplustree(), backprop(), bfs(), cfd(), dwt2d(), gaussian(),
		heartwall(), hotspot3d(), huffman(), kmeans(), lavamd(),
		leukocyte(), lud(), nearestNeighbor(), nw(), pathfinder(),
		sradV1(), streamcluster(),
	}
	out := make([]workloads.Workload, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}

func bench(name, abbr string, repl float64, body func(e *suites.Emitter) error) *suites.Bench {
	return &suites.Bench{
		BenchName: name, BenchAbbr: abbr,
		BenchSuite: workloads.Rodinia, BenchDomain: workloads.Scientific,
		Replication: repl, Body: body,
	}
}

// bplustree: bulk B+-tree point and range queries (findK, findRangeK).
// Paper classification: compute-intensive kernels in one cluster.
func bplustree() *suites.Bench {
	return bench("Rodinia B+Tree", "rd-b+tree", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(21))
		const n, queries = 1 << 14, 4096
		keys := make([]int, n)
		for i := range keys {
			keys[i] = r.Intn(1 << 20)
		}
		sort.Ints(keys)
		found := 0
		for q := 0; q < queries; q++ {
			target := r.Intn(1 << 20)
			i := sort.SearchInts(keys, target)
			if i < n && keys[i] == target {
				found++
			}
		}
		depth := math.Log2(float64(n)) / math.Log2(256) * 2 // ~tree levels
		work := float64(queries) * (depth + 1) * 256        // keys scanned per level node
		var m suites.Mix
		m.Add(isa.INT, work*3).
			Add(isa.LoadGlobal, work/4).
			Add(isa.LoadShared, work).
			Add(isa.Branch, work/2).
			Add(isa.StoreGlobal, queries)
		e.Launch("findK", queries, &m, []suites.Stream{
			suites.Gather(suites.FixedPrefix+"knodes", uint64(n*8), uint64(work/8)),
			suites.Write("ans", queries*4),
		}, 0.2)
		var m2 suites.Mix
		m2.Add(isa.INT, work*4).
			Add(isa.LoadGlobal, work/3).
			Add(isa.LoadShared, work).
			Add(isa.Branch, work/2).
			Add(isa.StoreGlobal, queries*2)
		e.Launch("findRangeK", queries, &m2, []suites.Stream{
			suites.Gather(suites.FixedPrefix+"knodes", uint64(n*8), uint64(work/8)),
			suites.Write("recstart", queries*8),
		}, 0.2)
		_ = found
		return nil
	})
}

// backprop: a two-layer perceptron forward + weight adjustment.
func backprop() *suites.Bench {
	return bench("Rodinia Backprop", "rd-backprop", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(22))
		const in, hid = 4096, 16
		w := make([]float64, in*hid)
		x := make([]float64, in)
		for i := range w {
			w[i] = r.NormFloat64() * 0.01
		}
		for i := range x {
			x[i] = r.Float64()
		}
		h := make([]float64, hid)
		for j := 0; j < hid; j++ {
			for i := 0; i < in; i++ {
				h[j] += x[i] * w[i*hid+j]
			}
			h[j] = 1 / (1 + math.Exp(-h[j]))
		}
		work := float64(in * hid)
		var m suites.Mix
		m.Add(isa.FP32, work*2).Add(isa.SFU, hid).
			Add(isa.INT, work/2).
			Add(isa.LoadGlobal, work).
			Add(isa.LoadShared, work).
			Add(isa.Sync, in/16).
			Add(isa.StoreGlobal, hid)
		e.Launch("bpnn_layerforward_CUDA", in, &m, []suites.Stream{
			suites.Read("input", in*4, 1),
			suites.Read("weights", uint64(in*hid*4), 1),
			suites.Write("hidden", hid*4),
		}, 0)
		var m2 suites.Mix
		m2.Add(isa.FP32, work*3).
			Add(isa.INT, work/2).
			Add(isa.LoadGlobal, work*2).
			Add(isa.StoreGlobal, work)
		e.Launch("bpnn_adjust_weights_cuda", in, &m2, []suites.Stream{
			suites.Read("delta", uint64(in*hid*4), 1),
			suites.Read("w_in", uint64(in*hid*4), 1),
			suites.Write("w_out", uint64(in*hid*4)),
		}, 0)
		return nil
	})
}

// bfs: the Rodinia two-kernel level-sync BFS (Kernel, Kernel2).
func bfs() *suites.Bench {
	return bench("Rodinia BFS", "rd-bfs", 24, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(23))
		n := 1 << 14
		deg := 6
		adj := make([][]int32, n)
		for v := range adj {
			for k := 0; k < deg; k++ {
				adj[v] = append(adj[v], int32(r.Intn(n)))
			}
		}
		visited := make([]bool, n)
		visited[0] = true
		frontier := []int32{0}
		for len(frontier) > 0 {
			var next []int32
			edges := 0
			for _, u := range frontier {
				for _, v := range adj[u] {
					edges++
					if !visited[v] {
						visited[v] = true
						next = append(next, v)
					}
				}
			}
			// Rodinia's formulation runs both kernels over ALL n vertices
			// each level, masking inactive ones — the inefficiency newer
			// libraries fix.
			var m suites.Mix
			m.Add(isa.INT, float64(n*2+edges*5)).
				Add(isa.LoadGlobal, float64(n+edges*2)).
				Add(isa.StoreGlobal, float64(len(next)+1)).
				Add(isa.Branch, float64(n+edges))
			e.Launch("Kernel", n, &m, []suites.Stream{
				suites.Read("g_graph_mask", uint64(n), 1),
				suites.Gather("g_graph_nodes", uint64(n*8), uint64(edges*8)),
				suites.Scatter("g_cost", uint64(n*4), uint64(edges*4)),
			}, 0.45)
			var m2 suites.Mix
			m2.Add(isa.INT, float64(n*3)).
				Add(isa.LoadGlobal, float64(n)).
				Add(isa.StoreGlobal, float64(n/8)).
				Add(isa.Branch, float64(n))
			e.Launch("Kernel2", n, &m2, []suites.Stream{
				suites.Read("g_updating_mask", uint64(n), 1),
				suites.Write("g_graph_mask_out", uint64(n)),
			}, 0.3)
			frontier = next
		}
		return nil
	})
}

// cfd: the euler3d unstructured-mesh flux solver.
func cfd() *suites.Bench {
	return bench("Rodinia CFD (euler3d)", "rd-cfd", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(24))
		const cells, nbrs = 1 << 13, 4
		density := make([]float64, cells)
		for i := range density {
			density[i] = 1 + 0.1*r.NormFloat64()
		}
		neighbors := make([]int32, cells*nbrs)
		for i := range neighbors {
			neighbors[i] = int32(r.Intn(cells))
		}
		for iter := 0; iter < 3; iter++ {
			var sf suites.Mix
			sf.Add(isa.FP32, cells*8).Add(isa.SFU, cells).
				Add(isa.LoadGlobal, cells*5).Add(isa.StoreGlobal, cells)
			e.Launch("compute_step_factor", cells, &sf, []suites.Stream{
				suites.Read("variables", cells*20, 1),
				suites.Write("step_factors", cells*4),
			}, 0)
			// Flux: gather neighbor states.
			flux := 0.0
			for c := 0; c < cells; c++ {
				for k := 0; k < nbrs; k++ {
					flux += density[neighbors[c*nbrs+k]] - density[c]
				}
			}
			_ = flux
			work := float64(cells * nbrs)
			var fm suites.Mix
			fm.Add(isa.FP32, work*30).Add(isa.SFU, work*2).
				Add(isa.INT, work*4).
				Add(isa.LoadGlobal, work*6).
				Add(isa.StoreGlobal, cells*5).
				Add(isa.Branch, work)
			e.Launch("compute_flux", cells, &fm, []suites.Stream{
				suites.Gather("variables", cells*20, uint64(work*20)),
				suites.Read("normals", uint64(work*12), 1),
				suites.Write("fluxes", cells*20),
			}, 0.15)
			var ts suites.Mix
			ts.Add(isa.FP32, cells*6).
				Add(isa.LoadGlobal, cells*3).Add(isa.StoreGlobal, cells*2)
			e.Launch("time_step", cells, &ts, []suites.Stream{
				suites.Read("fluxes", cells*20, 1),
				suites.Write("variables", cells*20),
			}, 0)
		}
		return nil
	})
}

// dwt2d: a 2-D Haar discrete wavelet transform.
func dwt2d() *suites.Bench {
	return bench("Rodinia DWT2D", "rd-dwt2d", 40, func(e *suites.Emitter) error {
		const n = 128
		img := make([]float64, n*n)
		for i := range img {
			img[i] = float64(i % 251)
		}
		// One Haar level: rows then columns.
		tmp := make([]float64, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n/2; x++ {
				a, b := img[y*n+2*x], img[y*n+2*x+1]
				tmp[y*n+x] = (a + b) / 2
				tmp[y*n+n/2+x] = (a - b) / 2
			}
		}
		work := float64(n * n)
		var m suites.Mix
		m.Add(isa.FP32, work*3).Add(isa.INT, work*2).
			Add(isa.LoadGlobal, work).Add(isa.StoreGlobal, work).
			Add(isa.LoadShared, work*2).Add(isa.Sync, work/64)
		e.Launch("fdwt53Kernel", n*n, &m, []suites.Stream{
			suites.Read("in", uint64(n*n*4), 1),
			suites.Write("out", uint64(n*n*4)),
		}, 0.05)
		var m2 suites.Mix
		m2.Add(isa.INT, work*2).
			Add(isa.LoadGlobal, work).Add(isa.StoreGlobal, work)
		e.Launch("c_CopySrcToComponents", n*n, &m2, []suites.Stream{
			suites.Read("src", uint64(n*n*4), 1),
			suites.Write("components", uint64(n*n*4)),
		}, 0)
		return nil
	})
}

// gaussian: Gaussian elimination (Fan1/Fan2) on a 4K-extrapolated matrix.
func gaussian() *suites.Bench {
	return bench("Rodinia Gaussian (4K)", "rd-gaussian", 64, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(25))
		const n = 96
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.Float64() + 0.1
		}
		for k := 0; k < n-1; k++ {
			var f1 suites.Mix
			rows := float64(n - k - 1)
			f1.Add(isa.FP32, rows*2).Add(isa.INT, rows*2).
				Add(isa.LoadGlobal, rows*2).Add(isa.StoreGlobal, rows)
			e.Launch("Fan1", n-k-1, &f1, []suites.Stream{
				suites.Read("a_col", uint64((n-k)*4), 1),
				suites.Write("m_col", uint64((n-k)*4)),
			}, 0)
			elems := rows * float64(n-k)
			for i := k + 1; i < n; i++ {
				f := a[i*n+k] / a[k*n+k]
				for j := k; j < n; j++ {
					a[i*n+j] -= f * a[k*n+j]
				}
			}
			var f2 suites.Mix
			f2.Add(isa.FP32, elems*2).Add(isa.INT, elems*2).
				Add(isa.LoadGlobal, elems*2).Add(isa.StoreGlobal, elems)
			e.Launch("Fan2", int(elems), &f2, []suites.Stream{
				suites.Read("m", uint64(elems*4), 1),
				suites.Read("a_in", uint64(elems*4), 1),
				suites.Write("a_out", uint64(elems*4)),
			}, 0.05)
		}
		return nil
	})
}

// heartwall: ultrasound-image tracking via template correlation.
func heartwall() *suites.Bench {
	return bench("Rodinia Heartwall", "rd-heartwall", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(26))
		const points, tmplSize = 50, 25 * 25
		img := make([]float64, 128*128)
		for i := range img {
			img[i] = r.Float64()
		}
		var corr float64
		for p := 0; p < points; p++ {
			for t := 0; t < tmplSize; t++ {
				corr += img[(p*37+t)%len(img)] * 0.5
			}
		}
		_ = corr
		work := float64(points * tmplSize * 49) // 7x7 search window
		var m suites.Mix
		m.Add(isa.FP32, work*3).Add(isa.SFU, work/32).
			Add(isa.INT, work).
			Add(isa.LoadGlobal, work/2).
			Add(isa.LoadShared, work).
			Add(isa.Sync, float64(points*16)).
			Add(isa.StoreGlobal, points*4)
		e.Launch("heartwall_kernel", points*512, &m, []suites.Stream{
			suites.Read("frame", 128*128*4, 8),
			suites.Read("templates", uint64(points*tmplSize*4), 4),
			suites.Write("tracking", points*16),
		}, 0.15)
		return nil
	})
}

// hotspot3d: thermal simulation stencil.
func hotspot3d() *suites.Bench {
	return bench("Rodinia Hotspot3D", "rd-hotspot3d", 48, func(e *suites.Emitter) error {
		const n, layers = 64, 4
		temp := make([]float64, n*n*layers)
		power := make([]float64, n*n*layers)
		for i := range temp {
			temp[i] = 330 + float64(i%7)
			power[i] = 0.01
		}
		out := make([]float64, n*n*layers)
		for step := 0; step < 3; step++ {
			for z := 0; z < layers; z++ {
				for y := 1; y < n-1; y++ {
					for x := 1; x < n-1; x++ {
						c := (z*n+y)*n + x
						out[c] = temp[c] + 0.1*(temp[c-1]+temp[c+1]+temp[c-n]+temp[c+n]-4*temp[c]) + power[c]
					}
				}
			}
			temp, out = out, temp
			cells := float64(n * n * layers)
			var m suites.Mix
			m.Add(isa.FP32, cells*10).Add(isa.INT, cells*4).
				Add(isa.LoadGlobal, cells*8).Add(isa.StoreGlobal, cells)
			e.Launch("hotspotOpt1", int(cells), &m, []suites.Stream{
				suites.Read("tIn", uint64(cells*4), 3),
				suites.Read("pIn", uint64(cells*4), 1),
				suites.Write("tOut", uint64(cells*4)),
			}, 0)
		}
		return nil
	})
}

// huffman: histogram + variable-length encoding.
func huffman() *suites.Bench {
	return bench("Rodinia Huffman", "rd-huffman", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(27))
		const n = 1 << 16
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Intn(64))
		}
		hist := make([]int, 256)
		for _, b := range data {
			hist[b]++
		}
		var m suites.Mix
		m.Add(isa.INT, n*3).Add(isa.LoadGlobal, n).
			Add(isa.StoreShared, n).Add(isa.StoreGlobal, 256)
		e.Launch("histo_kernel", n, &m, []suites.Stream{
			suites.Read("data", n, 1),
			suites.Scatter("hist", 256*4, n/8),
		}, 0.1)
		// Encode with a mock canonical code (length ~ log2(rank)).
		bits := 0
		for _, b := range data {
			bits += 2 + int(b)%6
		}
		var m2 suites.Mix
		m2.Add(isa.INT, n*8).
			Add(isa.LoadGlobal, n*2).
			Add(isa.StoreGlobal, float64(bits/32)).
			Add(isa.Branch, n*2)
		e.Launch("vlc_encode_kernel_sm64huff", n, &m2, []suites.Stream{
			suites.Read("data", n, 1),
			suites.Broadcast("codewords", 256*8, n/4),
			suites.Write("out", uint64(bits/8)),
		}, 0.3)
		return nil
	})
}

// kmeans: iterative clustering — Rodinia's all-memory-intensive benchmark.
func kmeans() *suites.Bench {
	return bench("Rodinia Kmeans", "rd-kmeans", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(28))
		const n, dims, k = 1 << 13, 16, 5
		pts := make([]float64, n*dims)
		for i := range pts {
			pts[i] = r.Float64()
		}
		centers := make([]float64, k*dims)
		copy(centers, pts[:k*dims])
		assign := make([]int, n)
		for iter := 0; iter < 3; iter++ {
			// invert_mapping transposes the feature layout first.
			var im suites.Mix
			im.Add(isa.INT, float64(n*dims)).
				Add(isa.LoadGlobal, float64(n*dims)).
				Add(isa.StoreGlobal, float64(n*dims))
			e.Launch("invert_mapping", n, &im, []suites.Stream{
				suites.Read("input", uint64(n*dims*4), 1),
				suites.Write("input_t", uint64(n*dims*4)),
			}, 0)
			for i := 0; i < n; i++ {
				best, bestD := 0, math.Inf(1)
				for c := 0; c < k; c++ {
					var d float64
					for f := 0; f < dims; f++ {
						dv := pts[i*dims+f] - centers[c*dims+f]
						d += dv * dv
					}
					if d < bestD {
						best, bestD = c, d
					}
				}
				assign[i] = best
			}
			work := float64(n * k * dims)
			var m suites.Mix
			m.Add(isa.FP32, work*3).Add(isa.INT, work/2).
				Add(isa.LoadGlobal, work).
				Add(isa.StoreGlobal, n).
				Add(isa.Branch, float64(n*k))
			e.Launch("kmeansPoint", n, &m, []suites.Stream{
				suites.Read("features", uint64(n*dims*4), 1),
				suites.Broadcast("clusters", uint64(k*dims*4), uint64(work/8)),
				suites.Write("membership", n*4),
			}, 0.05)
		}
		return nil
	})
}

// lavamd: particle interactions inside neighboring boxes — compute-heavy.
func lavamd() *suites.Bench {
	return bench("Rodinia LavaMD", "rd-lavamd", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(29))
		const boxes, perBox = 64, 32
		pos := make([][4]float64, boxes*perBox)
		for i := range pos {
			pos[i] = [4]float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		}
		var energy float64
		interactions := 0
		for b := 0; b < boxes; b++ {
			for nb := 0; nb < 8; nb++ { // self + 7 sampled neighbor boxes
				for i := 0; i < perBox; i++ {
					for j := 0; j < perBox; j++ {
						p, q := pos[b*perBox+i], pos[((b+nb)%boxes)*perBox+j]
						dx, dy, dz := p[0]-q[0], p[1]-q[1], p[2]-q[2]
						d2 := dx*dx + dy*dy + dz*dz + 0.01
						energy += math.Exp(-d2) * p[3] * q[3]
						interactions++
					}
				}
			}
		}
		_ = energy
		work := float64(interactions)
		var m suites.Mix
		m.Add(isa.FP32, work*15).Add(isa.SFU, work).
			Add(isa.INT, work*2).
			Add(isa.LoadShared, work*2).
			Add(isa.LoadGlobal, work/8).
			Add(isa.Sync, float64(boxes*8)).
			Add(isa.StoreGlobal, float64(boxes*perBox*4))
		e.Launch("kernel_gpu_cuda", boxes*perBox, &m, []suites.Stream{
			suites.Read("rv_gpu", uint64(boxes*perBox*16), 8),
			suites.Write("fv_gpu", uint64(boxes*perBox*16)),
		}, 0.1)
		return nil
	})
}

// leukocyte: cell detection (GICOV) and tracking (dilate).
func leukocyte() *suites.Bench {
	return bench("Rodinia Leukocyte", "rd-leukocyte", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(30))
		const w, h = 160, 120
		img := make([]float64, w*h)
		for i := range img {
			img[i] = r.Float64()
		}
		var sum float64
		for i := 0; i < w*h; i++ {
			sum += img[i] * img[(i*7)%len(img)]
		}
		_ = sum
		work := float64(w * h * 150) // 150 sample points per pixel circle
		var m suites.Mix
		m.Add(isa.FP32, work*4).Add(isa.SFU, work/8).
			Add(isa.INT, work).
			Add(isa.LoadGlobal, work/4).
			Add(isa.LoadConst, work/2).
			Add(isa.StoreGlobal, float64(w*h))
		e.Launch("GICOV_kernel", w*h, &m, []suites.Stream{
			suites.Read("grad_x", uint64(w*h*4), 6),
			suites.Read("grad_y", uint64(w*h*4), 6),
			suites.Write("gicov", uint64(w*h*4)),
		}, 0.1)
		var m2 suites.Mix
		dwork := float64(w * h * 81)
		m2.Add(isa.FP32, dwork).Add(isa.INT, dwork*2).
			Add(isa.LoadGlobal, dwork/4).
			Add(isa.StoreGlobal, float64(w*h)).
			Add(isa.Branch, dwork/2)
		e.Launch("dilate_kernel", w*h, &m2, []suites.Stream{
			suites.Read("img_in", uint64(w*h*4), 9),
			suites.Write("img_dilated", uint64(w*h*4)),
		}, 0.2)
		return nil
	})
}

// lud: blocked LU decomposition — the paper's noted exception with one
// compute-intensive and one memory-intensive kernel.
func lud() *suites.Bench {
	return bench("Rodinia LUD", "rd-lud", 56, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(31))
		const n, blk = 128, 16
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.Float64()
			if i%n == i/n {
				a[i] += 10 // diagonally dominant
			}
		}
		for k := 0; k < n; k += blk {
			// Diagonal block factorization: small, latency/compute bound.
			for kk := k; kk < k+blk && kk < n-1; kk++ {
				piv := a[kk*n+kk]
				if piv == 0 {
					return fmt.Errorf("lud: zero pivot")
				}
				for i := kk + 1; i < k+blk && i < n; i++ {
					f := a[i*n+kk] / piv
					for j := kk; j < k+blk && j < n; j++ {
						a[i*n+j] -= f * a[kk*n+j]
					}
				}
			}
			// All blk^2 threads iterate the blk elimination steps with
			// barriers: the block is L1-resident, so the kernel is compute-
			// intensive — the paper's noted LUD exception.
			dwork := float64(blk * blk * blk)
			var dm suites.Mix
			dm.Add(isa.FP32, dwork*2).Add(isa.INT, dwork*2).
				Add(isa.LoadShared, dwork*2).Add(isa.StoreShared, dwork).
				Add(isa.LoadGlobal, blk*blk).Add(isa.StoreGlobal, blk*blk).
				Add(isa.Sync, blk*blk).Add(isa.Branch, dwork/2)
			e.Launch("lud_diagonal", blk*blk, &dm, []suites.Stream{
				suites.Read("m_diag", blk*blk*4, 2),
				suites.Write("m_diag_out", blk*blk*4),
			}, 0.1)
			trail := n - k - blk
			if trail <= 0 {
				continue
			}
			// Perimeter update: triangular solves along the block row and
			// column — streaming, memory-intensive.
			pwork := float64(trail) * blk * blk
			var pm suites.Mix
			pm.Add(isa.FP32, pwork/2).Add(isa.INT, pwork/2).
				Add(isa.LoadGlobal, pwork).
				Add(isa.StoreGlobal, pwork/2).
				Add(isa.Sync, float64(trail)/8)
			e.Launch("lud_perimeter", trail*blk, &pm, []suites.Stream{
				suites.Read("m_row_in", uint64(trail*blk*8), 1),
				suites.Read("m_col_in", uint64(trail*blk*8), 1),
				suites.Write("m_peri_out", uint64(trail*blk*8)),
			}, 0.1)
			// Internal update: GEMM-like over the trailing matrix — tiled
			// and compute-intensive.
			iwork := float64(trail) * float64(trail) * blk
			var im suites.Mix
			im.Add(isa.FP32, iwork).Add(isa.INT, iwork/4).
				Add(isa.LoadGlobal, iwork/16).
				Add(isa.LoadShared, iwork/2).
				Add(isa.StoreGlobal, float64(trail*trail)/4).
				Add(isa.Sync, float64(trail*trail)/256)
			e.Launch("lud_internal", trail*trail, &im, []suites.Stream{
				suites.Read("m_peri_row", uint64(trail*blk*4), 4),
				suites.Read("m_peri_col", uint64(trail*blk*4), 4),
				suites.Read("m_sub", uint64(trail*trail*4), 1),
				suites.Write("m_sub_out", uint64(trail*trail*4)),
			}, 0)
		}
		return nil
	})
}

// nearestNeighbor: distance scan over location records.
func nearestNeighbor() *suites.Bench {
	return bench("Rodinia NN", "rd-nn", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(32))
		const n = 1 << 15
		lat := make([]float64, n)
		lng := make([]float64, n)
		for i := range lat {
			lat[i], lng[i] = r.Float64()*180-90, r.Float64()*360-180
		}
		best, bestD := 0, math.Inf(1)
		for i := 0; i < n; i++ {
			d := (lat[i]-30)*(lat[i]-30) + (lng[i]-50)*(lng[i]-50)
			if d < bestD {
				best, bestD = i, d
			}
		}
		_ = best
		var m suites.Mix
		m.Add(isa.FP32, n*6).Add(isa.SFU, n).
			Add(isa.INT, n*2).
			Add(isa.LoadGlobal, n*2).Add(isa.StoreGlobal, n)
		e.Launch("euclid", n, &m, []suites.Stream{
			suites.Read("locations", n*8, 1),
			suites.Write("distances", n*4),
		}, 0)
		return nil
	})
}

// nw: Needleman-Wunsch sequence alignment (anti-diagonal wavefront).
func nw() *suites.Bench {
	return bench("Rodinia Needleman-Wunsch", "rd-nw", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(33))
		const n = 256
		score := make([]int, (n+1)*(n+1))
		seqA := make([]byte, n)
		seqB := make([]byte, n)
		for i := range seqA {
			seqA[i], seqB[i] = byte(r.Intn(4)), byte(r.Intn(4))
		}
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				match := -1
				if seqA[i-1] == seqB[j-1] {
					match = 1
				}
				d := score[(i-1)*(n+1)+j-1] + match
				u := score[(i-1)*(n+1)+j] - 1
				l := score[i*(n+1)+j-1] - 1
				best := d
				if u > best {
					best = u
				}
				if l > best {
					best = l
				}
				score[i*(n+1)+j] = best
			}
		}
		cells := float64(n * n)
		half := cells / 2
		mk := func() *suites.Mix {
			var m suites.Mix
			m.Add(isa.INT, half*8).
				Add(isa.LoadGlobal, half*3).
				Add(isa.LoadShared, half*3).
				Add(isa.StoreGlobal, half).
				Add(isa.Sync, half/32).
				Add(isa.Branch, half*2)
			return &m
		}
		streams := func() []suites.Stream {
			return []suites.Stream{
				suites.Read("reference", uint64(half*4), 1),
				suites.Read("matrix_in", uint64(half*4), 2),
				suites.Write("matrix_out", uint64(half*4)),
			}
		}
		e.Launch("needle_cuda_shared_1", int(half), mk(), streams(), 0.2)
		e.Launch("needle_cuda_shared_2", int(half), mk(), streams(), 0.2)
		return nil
	})
}

// pathfinder: dynamic programming over a grid, one row at a time.
func pathfinder() *suites.Bench {
	return bench("Rodinia Pathfinder", "rd-pathfinder", 48, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(34))
		const cols, rows = 1 << 13, 8
		prev := make([]int, cols)
		cur := make([]int, cols)
		for i := range prev {
			prev[i] = r.Intn(10)
		}
		for row := 1; row < rows; row++ {
			for c := 0; c < cols; c++ {
				best := prev[c]
				if c > 0 && prev[c-1] < best {
					best = prev[c-1]
				}
				if c+1 < cols && prev[c+1] < best {
					best = prev[c+1]
				}
				cur[c] = best + r.Intn(10)
			}
			prev, cur = cur, prev
		}
		work := float64(cols * (rows - 1))
		var m suites.Mix
		m.Add(isa.INT, work*6).
			Add(isa.LoadGlobal, work).
			Add(isa.LoadShared, work*3).
			Add(isa.StoreGlobal, work).
			Add(isa.Sync, work/64).
			Add(isa.Branch, work*2)
		e.Launch("dynproc_kernel", cols, &m, []suites.Stream{
			suites.Read("gpuWall", uint64(work*4), 1),
			suites.Write("gpuResults", cols*4),
		}, 0.1)
		return nil
	})
}

// sradV1: speckle-reducing anisotropic diffusion — two memory-intensive
// kernels, per the paper's classification.
func sradV1() *suites.Bench {
	return bench("Rodinia SRAD v1", "rd-srad", 48, func(e *suites.Emitter) error {
		const n = 128
		img := make([]float64, n*n)
		for i := range img {
			img[i] = 1 + 0.1*float64(i%13)
		}
		dN := make([]float64, n*n)
		for iter := 0; iter < 2; iter++ {
			for y := 1; y < n-1; y++ {
				for x := 1; x < n-1; x++ {
					c := y*n + x
					dN[c] = img[c-n] - img[c]
				}
			}
			cells := float64(n * n)
			var m1 suites.Mix
			m1.Add(isa.FP32, cells*12).Add(isa.SFU, cells).
				Add(isa.INT, cells*4).
				Add(isa.LoadGlobal, cells*5).
				Add(isa.StoreGlobal, cells*5)
			e.Launch("srad_kernel_1", int(cells), &m1, []suites.Stream{
				suites.Read("I", uint64(cells*4), 5),
				suites.Write("dN_dS_dE_dW", uint64(cells*16)),
			}, 0.05)
			var m2 suites.Mix
			m2.Add(isa.FP32, cells*8).
				Add(isa.INT, cells*3).
				Add(isa.LoadGlobal, cells*5).
				Add(isa.StoreGlobal, cells)
			e.Launch("srad_kernel_2", int(cells), &m2, []suites.Stream{
				suites.Read("dN_dS_dE_dW", uint64(cells*16), 1),
				suites.Read("c", uint64(cells*4), 2),
				suites.Write("I_out", uint64(cells*4)),
			}, 0.05)
		}
		return nil
	})
}

// streamcluster: online clustering gain computation.
func streamcluster() *suites.Bench {
	return bench("Rodinia Streamcluster", "rd-streamcluster", 40, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(35))
		const n, dims, centers = 1 << 12, 32, 16
		pts := make([]float64, n*dims)
		for i := range pts {
			pts[i] = r.Float64()
		}
		var gain float64
		for i := 0; i < n; i++ {
			for c := 0; c < centers; c++ {
				var d float64
				for f := 0; f < dims; f++ {
					dv := pts[i*dims+f] - pts[c*dims+f]
					d += dv * dv
				}
				gain += d
			}
		}
		_ = gain
		work := float64(n * centers * dims)
		var m suites.Mix
		m.Add(isa.FP32, work*3).
			Add(isa.INT, work/2).
			Add(isa.LoadGlobal, work).
			Add(isa.StoreGlobal, float64(n*centers)).
			Add(isa.Branch, float64(n*centers))
		e.Launch("kernel_compute_cost", n, &m, []suites.Stream{
			suites.Read("points", uint64(n*dims*4), 1),
			suites.Broadcast("centers", centers*dims*4, uint64(work/8)),
			suites.Write("cost", uint64(n*centers*4)),
		}, 0.05)
		return nil
	})
}
