// Package tango implements the Tango subset of Table III: AlexNet (AN),
// ResNet (RN), SqueezeNet (SN). Tango's benchmarks use custom monolithic
// CUDA kernels rather than CuDNN — one generic kernel per operation type —
// so each network's profile concentrates in a handful of kernels, unlike
// the Cactus PyTorch workloads. Inference forward passes are computed for
// real at reduced scale through internal/tensor.
package tango

import (
	"math/rand"

	"repro/internal/isa"
	"repro/internal/suites"
	"repro/internal/tensor"
	"repro/internal/workloads"
)

// All returns the Tango benchmarks.
func All() []workloads.Workload {
	return []workloads.Workload{AlexNet(), ResNet(), SqueezeNet()}
}

func bench(name, abbr string, repl float64, body func(e *suites.Emitter) error) *suites.Bench {
	return &suites.Bench{
		BenchName: name, BenchAbbr: abbr,
		BenchSuite: workloads.Tango, BenchDomain: workloads.MachineL,
		Replication: repl, Body: body,
	}
}

// layerSpec describes one layer of a Tango network.
type layerSpec struct {
	kind              string // conv, fc, pool, norm
	inC, outC, kernel int
	size              int // input spatial size
}

// runNet executes the forward pass for real (reduced channel counts) and
// launches Tango's generic per-op kernels with aggregated counts — the
// custom-kernel structure that concentrates GPU time in few kernels.
func runNet(e *suites.Emitter, r *rand.Rand, layers []layerSpec) error {
	var convWork, convX, convW, convY float64
	var fcWork, fcX, fcW float64
	var poolWork, poolBytes float64
	var normWork, normBytes float64
	var x *tensor.Tensor

	for _, l := range layers {
		switch l.kind {
		case "conv":
			// Compute a real (sampled) convolution for this shape.
			in := tensor.Randn(r, 1, 1, l.inC, l.size, l.size)
			w := tensor.Randn(r, 0.1, l.outC, l.inC, l.kernel, l.kernel)
			y, err := tensor.Conv2D(in, w, nil, 1, l.kernel/2)
			if err != nil {
				return err
			}
			x = y
			macs := float64(l.outC*l.size*l.size) * float64(l.inC*l.kernel*l.kernel)
			convWork += macs
			convX += float64(in.Numel() * 4)
			convW += float64(w.Numel() * 4)
			convY += float64(y.Numel() * 4)
		case "fc":
			in := tensor.Randn(r, 1, 1, l.inC)
			w := tensor.Randn(r, 0.1, l.inC, l.outC)
			y, err := tensor.MatMul(in, w, false, false)
			if err != nil {
				return err
			}
			_ = y
			fcWork += float64(l.inC * l.outC)
			fcX += float64(l.inC * 4)
			fcW += float64(l.inC * l.outC * 4)
		case "pool":
			elems := float64(l.inC * l.size * l.size)
			poolWork += elems * 4
			poolBytes += elems * 4
		case "norm":
			elems := float64(l.inC * l.size * l.size)
			normWork += elems * 6
			normBytes += elems * 4
		}
	}
	_ = x

	var cm suites.Mix
	cm.Add(isa.FP32, convWork).
		Add(isa.INT, convWork/2). // naive per-thread index arithmetic
		Add(isa.LoadShared, convWork/4).
		Add(isa.LoadGlobal, (convX+convW)/16).
		Add(isa.StoreGlobal, convY/16).
		Add(isa.Sync, convWork/2048)
	e.Launch("conv2d_gpu", int(convWork/256), &cm, []suites.Stream{
		suites.Read("act", uint64(convX), 2),
		suites.Read(suites.FixedPrefix+"filters", uint64(convW), 8),
		suites.Write("out", uint64(convY)),
	}, 0.05)

	if fcWork > 0 {
		// Tango's fully connected layers stream enormous weight matrices at
		// batch 1: the memory-intensive kernel of AlexNet.
		var fm suites.Mix
		fm.Add(isa.FP32, fcWork).
			Add(isa.INT, fcWork/8).
			Add(isa.LoadGlobal, fcWork/2).
			Add(isa.StoreGlobal, fcX/4)
		e.Launch("fc_gpu", int(fcWork/512), &fm, []suites.Stream{
			suites.Read(suites.FixedPrefix+"weights", uint64(fcW), 1),
			suites.Read("act", uint64(fcX), 4),
			suites.Write("out", uint64(fcX)),
		}, 0)
	}
	if poolWork > 0 {
		var pm suites.Mix
		pm.Add(isa.FP32, poolWork).
			Add(isa.INT, poolWork).
			Add(isa.LoadGlobal, poolBytes/4).
			Add(isa.StoreGlobal, poolBytes/16)
		e.Launch("maxpool_gpu", int(poolBytes/4), &pm, []suites.Stream{
			suites.Read("act", uint64(poolBytes), 1),
			suites.Write("out", uint64(poolBytes/4)),
		}, 0.1)
	}
	if normWork > 0 {
		var nm suites.Mix
		nm.Add(isa.FP32, normWork).
			Add(isa.SFU, normWork/8).
			Add(isa.LoadGlobal, normBytes/4).
			Add(isa.StoreGlobal, normBytes/4)
		e.Launch("norm_gpu", int(normBytes/4), &nm, []suites.Stream{
			suites.Read("act", uint64(normBytes), 2),
			suites.Write("out", uint64(normBytes)),
		}, 0)
	}
	return nil
}

// AlexNet returns AN: 5 conv + 3 fc + pooling + LRN. Per the paper, AN has
// three notable kernels, two compute-intensive and one memory-intensive
// (the fc weight streaming).
func AlexNet() *suites.Bench {
	return bench("Tango AlexNet", "AN", 96, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(41))
		layers := []layerSpec{
			{"conv", 3, 24, 11, 56}, {"norm", 24, 0, 0, 28}, {"pool", 24, 0, 0, 28},
			{"conv", 24, 64, 5, 28}, {"norm", 64, 0, 0, 14}, {"pool", 64, 0, 0, 14},
			{"conv", 64, 96, 3, 14}, {"conv", 96, 96, 3, 14}, {"conv", 96, 64, 3, 14},
			{"pool", 64, 0, 0, 7},
			{"fc", 64 * 49, 1024, 0, 0}, {"fc", 1024, 1024, 0, 0}, {"fc", 1024, 100, 0, 0},
		}
		return runNet(e, r, layers)
	})
}

// ResNet returns RN: deep stacks of 3x3 convolutions with batch norm — all
// compute-intensive per the paper.
func ResNet() *suites.Bench {
	return bench("Tango ResNet", "RN", 96, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(42))
		var layers []layerSpec
		layers = append(layers, layerSpec{"conv", 3, 16, 7, 56})
		widths := []int{16, 16, 32, 32, 64, 64}
		size := 28
		for i, w := range widths {
			in := w
			if i > 0 {
				in = widths[i-1]
			}
			layers = append(layers,
				layerSpec{"conv", in, w, 3, size},
				layerSpec{"conv", w, w, 3, size},
				layerSpec{"norm", w, 0, 0, size})
			if i%2 == 1 && size > 7 {
				size /= 2
			}
		}
		layers = append(layers, layerSpec{"fc", 64 * 49, 100, 0, 0})
		return runNet(e, r, layers)
	})
}

// SqueezeNet returns SN: fire modules (squeeze 1x1 + expand 1x1/3x3) — all
// compute-intensive per the paper.
func SqueezeNet() *suites.Bench {
	return bench("Tango SqueezeNet", "SN", 96, func(e *suites.Emitter) error {
		r := rand.New(rand.NewSource(43))
		var layers []layerSpec
		layers = append(layers, layerSpec{"conv", 3, 24, 7, 56}, layerSpec{"pool", 24, 0, 0, 28})
		squeeze := []int{16, 24, 32, 32, 48}
		size := 28
		for i, s := range squeeze {
			in := 24
			if i > 0 {
				in = squeeze[i-1] * 8
			}
			layers = append(layers,
				layerSpec{"conv", in, s, 1, size},    // squeeze
				layerSpec{"conv", s, s * 4, 1, size}, // expand 1x1
				layerSpec{"conv", s, s * 4, 3, size}) // expand 3x3
			if i == 2 && size > 7 {
				size /= 2
			}
		}
		layers = append(layers, layerSpec{"conv", squeeze[len(squeeze)-1] * 8, 100, 1, size})
		return runNet(e, r, layers)
	})
}
