package suites_test

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/roofline"
	"repro/internal/suites/parboil"
	"repro/internal/suites/rodinia"
	"repro/internal/suites/tango"
	"repro/internal/units"
	"repro/internal/workloads"
)

func session(t *testing.T) *profiler.Session {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return profiler.NewSession(d)
}

func allBaselines() []workloads.Workload {
	var out []workloads.Workload
	out = append(out, parboil.All()...)
	out = append(out, rodinia.All()...)
	out = append(out, tango.All()...)
	return out
}

func TestTableIIIBenchmarkCounts(t *testing.T) {
	if got := len(parboil.All()); got != 11 {
		t.Errorf("parboil has %d benchmarks, Table III lists 11", got)
	}
	if got := len(rodinia.All()); got != 18 {
		t.Errorf("rodinia has %d benchmarks, Table III lists 18", got)
	}
	if got := len(tango.All()); got != 3 {
		t.Errorf("tango has %d benchmarks, Table III lists 3", got)
	}
}

func TestAllBaselinesRun(t *testing.T) {
	for _, w := range allBaselines() {
		s := session(t)
		if err := w.Run(s); err != nil {
			t.Errorf("%s: %v", w.Abbr(), err)
			continue
		}
		if s.LaunchCount() == 0 {
			t.Errorf("%s: launched no kernels", w.Abbr())
		}
		if s.TotalWarpInstructions() == 0 {
			t.Errorf("%s: executed no instructions", w.Abbr())
		}
	}
}

// TestFewKernelsDominate verifies the Figure 2 property: baseline
// benchmarks spend >= 70% of GPU time in at most 3 kernels, and the large
// majority concentrate in 1-2.
func TestFewKernelsDominate(t *testing.T) {
	oneOrTwo := 0
	total := 0
	for _, w := range allBaselines() {
		s := session(t)
		if err := w.Run(s); err != nil {
			t.Fatalf("%s: %v", w.Abbr(), err)
		}
		tt := s.TotalTime()
		cum, k := 0.0, 0
		for _, kp := range s.Kernels() {
			cum += (kp.TotalTime / tt).Float()
			k++
			if cum >= 0.7 {
				break
			}
		}
		total++
		if k <= 2 {
			oneOrTwo++
		}
		if k > 3 {
			t.Errorf("%s: needs %d kernels for 70%% — baseline benchmarks are kernel-centric", w.Abbr(), k)
		}
	}
	// Paper: ~95% of the 31 workloads need at most 2 kernels for 70%.
	if frac := float64(oneOrTwo) / float64(total); frac < 0.8 {
		t.Errorf("only %.0f%% of baselines concentrate 70%% of time in <= 2 kernels, want >= 80%%", frac*100)
	}
}

// TestUnambiguousRooflineBehavior verifies Observation #4: per workload,
// baseline kernels (weighted by time) fall overwhelmingly on one side of
// the elbow — with LUD and AN as the paper's two known mixed exceptions.
func TestUnambiguousRooflineBehavior(t *testing.T) {
	model := roofline.ForDevice(gpu.RTX3080())
	mixed := map[string]bool{}
	for _, w := range allBaselines() {
		s := session(t)
		if err := w.Run(s); err != nil {
			t.Fatalf("%s: %v", w.Abbr(), err)
		}
		tt := s.TotalTime()
		var memShare, cmpShare units.Fraction
		for _, kp := range s.Kernels() {
			share := units.Share(kp.TotalTime, tt)
			if share < 0.1 {
				continue // only significant kernels matter for ambiguity
			}
			ii := kp.Metrics().Get(profiler.InstIntensity)
			if model.Classify(ii) == roofline.MemoryIntensive {
				memShare += share
			} else {
				cmpShare += share
			}
		}
		if memShare > 0.1 && cmpShare > 0.1 {
			mixed[w.Abbr()] = true
		}
	}
	// A couple of mixed workloads are expected (the paper names LUD and
	// AN); pervasive mixing would contradict Observation #4.
	if len(mixed) > 5 {
		t.Errorf("%d baselines show mixed behavior (%v), want <= 5", len(mixed), mixed)
	}
}

// TestLUDHasKernelsOnBothSides pins the paper's named exception: LUD
// consists of a memory-intensive kernel and a compute-intensive kernel.
func TestLUDHasKernelsOnBothSides(t *testing.T) {
	model := roofline.ForDevice(gpu.RTX3080())
	s := session(t)
	var lud workloads.Workload
	for _, w := range rodinia.All() {
		if w.Abbr() == "rd-lud" {
			lud = w
		}
	}
	if err := lud.Run(s); err != nil {
		t.Fatal(err)
	}
	var mem, cmp bool
	for _, k := range s.Kernels() {
		ii := k.Metrics().Get(profiler.InstIntensity)
		if model.Classify(ii) == roofline.MemoryIntensive {
			mem = true
		} else {
			cmp = true
		}
	}
	if !mem || !cmp {
		t.Errorf("LUD kernels not mixed (mem=%v cmp=%v)", mem, cmp)
	}
}

// TestKnownKernelCharacters pins the paper's named classifications.
func TestKnownKernelCharacters(t *testing.T) {
	model := roofline.ForDevice(gpu.RTX3080())
	check := func(w workloads.Workload, wantSide roofline.Side) {
		t.Helper()
		s := session(t)
		if err := w.Run(s); err != nil {
			t.Fatal(err)
		}
		dom := s.Kernels()[0]
		ii := dom.Metrics().Get(profiler.InstIntensity)
		if got := model.Classify(ii); got != wantSide {
			t.Errorf("%s dominant kernel %s: II=%.2f -> %v, want %v", w.Abbr(), dom.Name, ii, got, wantSide)
		}
	}
	// Memory-intensive per Fig. 4: Parboil bfs, spmv, stencil, lbm; Rodinia
	// kmeans, srad, bfs.
	for _, w := range parboil.All() {
		switch w.Abbr() {
		case "pb-bfs", "pb-spmv", "pb-stencil", "pb-lbm":
			check(w, roofline.MemoryIntensive)
		case "pb-sgemm", "pb-mri-q", "pb-cutcp":
			check(w, roofline.ComputeIntensive)
		}
	}
	for _, w := range rodinia.All() {
		switch w.Abbr() {
		case "rd-kmeans", "rd-srad", "rd-bfs":
			check(w, roofline.MemoryIntensive)
		case "rd-lavamd", "rd-b+tree":
			check(w, roofline.ComputeIntensive)
		}
	}
	// Tango: SN and RN all compute-intensive.
	for _, w := range tango.All() {
		if w.Abbr() == "SN" || w.Abbr() == "RN" {
			check(w, roofline.ComputeIntensive)
		}
	}
}

// TestTangoAlexNetMixed verifies AN's paper classification: two compute
// kernels and one memory kernel (the fc weight streaming).
func TestTangoAlexNetMixed(t *testing.T) {
	model := roofline.ForDevice(gpu.RTX3080())
	s := session(t)
	if err := tango.AlexNet().Run(s); err != nil {
		t.Fatal(err)
	}
	sides := map[string]roofline.Side{}
	for _, k := range s.Kernels() {
		sides[k.Name] = model.Classify(k.Metrics().Get(profiler.InstIntensity))
	}
	if sides["conv2d_gpu"] != roofline.ComputeIntensive {
		t.Error("AN conv kernel should be compute-intensive")
	}
	if sides["fc_gpu"] != roofline.MemoryIntensive {
		t.Error("AN fc kernel should be memory-intensive")
	}
}

func TestBenchIdentity(t *testing.T) {
	w := parboil.All()[0]
	if w.Suite() != workloads.Parboil {
		t.Error("suite")
	}
	if w.Name() == "" || w.Abbr() == "" {
		t.Error("identity")
	}
}
