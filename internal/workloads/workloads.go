// Package workloads defines the common interface every benchmark in this
// repository implements — the ten Cactus applications as well as the
// Parboil, Rodinia, and Tango baselines — plus a catalog type for grouping
// and lookup. A workload's Run method executes the application functionally
// and issues its kernel launches into a profiling session; everything the
// characterization library consumes derives from the recorded launches.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/profiler"
)

// Suite identifies the benchmark suite a workload belongs to.
type Suite string

// The suites studied in the paper.
const (
	Cactus  Suite = "cactus"
	Parboil Suite = "parboil"
	Rodinia Suite = "rodinia"
	Tango   Suite = "tango"
)

// Domain identifies the application domain (Table I's left column for
// Cactus; the baseline suites use their own domains).
type Domain string

// Domains used across the catalog.
const (
	Molecular  Domain = "molecular"
	Graph      Domain = "graph"
	MachineL   Domain = "machine-learning"
	Scientific Domain = "scientific"
)

// Workload is one runnable benchmark.
type Workload interface {
	// Name returns the full workload name ("Gromacs NPT equilibration").
	Name() string
	// Abbr returns the paper's abbreviation ("GMS").
	Abbr() string
	// Suite returns the owning benchmark suite.
	Suite() Suite
	// Domain returns the application domain.
	Domain() Domain
	// Run executes the workload, issuing every kernel launch into s.
	Run(s *profiler.Session) error
}

// Catalog is an ordered collection of workloads with lookup by abbreviation.
type Catalog struct {
	byAbbr map[string]Workload
	order  []Workload
}

// NewCatalog builds a catalog from the given workloads. Duplicate
// abbreviations are an error: the abbreviation is the lookup key everywhere.
func NewCatalog(ws ...Workload) (*Catalog, error) {
	c := &Catalog{byAbbr: make(map[string]Workload, len(ws))}
	for _, w := range ws {
		if err := c.Add(w); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Add appends a workload to the catalog.
func (c *Catalog) Add(w Workload) error {
	abbr := w.Abbr()
	if abbr == "" {
		return fmt.Errorf("workloads: %q has empty abbreviation", w.Name())
	}
	if _, dup := c.byAbbr[abbr]; dup {
		return fmt.Errorf("workloads: duplicate abbreviation %q", abbr)
	}
	c.byAbbr[abbr] = w
	c.order = append(c.order, w)
	return nil
}

// All returns the workloads in insertion order.
func (c *Catalog) All() []Workload {
	return append([]Workload(nil), c.order...)
}

// BySuite returns the workloads of one suite, in insertion order.
func (c *Catalog) BySuite(s Suite) []Workload {
	var out []Workload
	for _, w := range c.order {
		if w.Suite() == s {
			out = append(out, w)
		}
	}
	return out
}

// ByDomain returns the workloads of one domain, in insertion order.
func (c *Catalog) ByDomain(d Domain) []Workload {
	var out []Workload
	for _, w := range c.order {
		if w.Domain() == d {
			out = append(out, w)
		}
	}
	return out
}

// Lookup finds a workload by abbreviation.
func (c *Catalog) Lookup(abbr string) (Workload, error) {
	w, ok := c.byAbbr[abbr]
	if !ok {
		avail := make([]string, 0, len(c.byAbbr))
		for a := range c.byAbbr {
			avail = append(avail, a)
		}
		sort.Strings(avail)
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", abbr, avail)
	}
	return w, nil
}

// Len returns the number of workloads.
func (c *Catalog) Len() int { return len(c.order) }
