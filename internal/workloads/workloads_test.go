package workloads

import (
	"testing"

	"repro/internal/profiler"
)

type fake struct {
	abbr   string
	suite  Suite
	domain Domain
}

func (f fake) Name() string                { return "fake " + f.abbr }
func (f fake) Abbr() string                { return f.abbr }
func (f fake) Suite() Suite                { return f.suite }
func (f fake) Domain() Domain              { return f.domain }
func (f fake) Run(*profiler.Session) error { return nil }

func TestCatalogOrderAndLookup(t *testing.T) {
	c, err := NewCatalog(
		fake{"A", Cactus, Molecular},
		fake{"B", Parboil, Scientific},
		fake{"C", Cactus, Graph},
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	all := c.All()
	if all[0].Abbr() != "A" || all[2].Abbr() != "C" {
		t.Error("insertion order not preserved")
	}
	// Returned slice is a copy.
	all[0] = fake{"Z", Tango, MachineL}
	if c.All()[0].Abbr() != "A" {
		t.Error("All() must return a copy")
	}
	w, err := c.Lookup("B")
	if err != nil || w.Abbr() != "B" {
		t.Errorf("lookup: %v", err)
	}
	if _, err := c.Lookup("missing"); err == nil {
		t.Error("missing lookup should fail")
	}
	if got := c.BySuite(Cactus); len(got) != 2 {
		t.Errorf("BySuite = %d", len(got))
	}
	if got := c.ByDomain(Graph); len(got) != 1 || got[0].Abbr() != "C" {
		t.Errorf("ByDomain = %v", got)
	}
}

func TestCatalogRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewCatalog(fake{"A", Cactus, Molecular}, fake{"A", Parboil, Scientific}); err == nil {
		t.Error("duplicate abbr should fail")
	}
	if _, err := NewCatalog(fake{"", Cactus, Molecular}); err == nil {
		t.Error("empty abbr should fail")
	}
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(fake{"X", Tango, MachineL}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Error("Add")
	}
}
