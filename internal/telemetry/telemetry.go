// Package telemetry is the pipeline's Nsight-Systems analogue. Where
// internal/profiler reproduces Nsight Compute's per-kernel metrics, this
// package makes the pipeline itself observable: a pluggable, concurrency-safe
// event sink records spans and instants — kernel launches with their modeled
// durations, workload characterization begin/end, cache probe outcomes,
// worker-pool task lifecycle — on two clocks (modeled GPU time and host wall
// time), exportable as Chrome trace-event JSON loadable in chrome://tracing
// or Perfetto. A counters registry accumulates pipeline totals (launches,
// warp instructions, cache hits/misses, worker occupancy) snapshotable as a
// sorted, deterministic report and publishable through expvar.
//
// Instrumented code pays near-zero cost when tracing is disabled: the
// default Tracer is Nop, whose Enabled method reports false so callers skip
// building events entirely, and a nil *Counters receiver is a no-op.
package telemetry

import (
	"sync"
	"time"
)

// Track selects which clock an event's timestamps are recorded against.
type Track int

const (
	// TrackModeled is modeled GPU time: each profiling session lays its
	// kernel launches end to end from t=0 using modeled durations, so the
	// track is deterministic — identical runs produce identical timelines.
	TrackModeled Track = iota
	// TrackHost is host wall-clock time measured from the process telemetry
	// epoch; it shows what the pipeline (workers, cache, simulation) did.
	TrackHost
)

// String returns the track's display name.
func (t Track) String() string {
	switch t {
	case TrackModeled:
		return "modeled GPU time"
	case TrackHost:
		return "host wall time"
	}
	return "unknown track"
}

// Phase mirrors the Chrome trace-event phase of an event.
type Phase byte

const (
	// PhaseSpan is a complete event with a start and a duration ("X").
	PhaseSpan Phase = 'X'
	// PhaseInstant is a point-in-time event ("i").
	PhaseInstant Phase = 'i'
	// PhaseMeta carries track metadata such as thread names ("M").
	PhaseMeta Phase = 'M'
)

// Event is one recorded telemetry event. Start and Dur are in seconds on
// the event's track clock. TID is the lane within the track: the workload
// index on the modeled track, the worker index on the host track.
type Event struct {
	Track Track
	Phase Phase
	Name  string
	Cat   string
	TID   int
	Start float64
	Dur   float64
	Args  map[string]any
}

// Tracer is a concurrency-safe event sink. Emit may be called from any
// goroutine. Enabled lets instrumented code skip event construction when
// nothing is listening; implementations must return a constant.
type Tracer interface {
	Emit(Event)
	Enabled() bool
}

// nopTracer drops everything and reports disabled.
type nopTracer struct{}

func (nopTracer) Emit(Event)    {}
func (nopTracer) Enabled() bool { return false }

// Nop is the disabled tracer: Emit discards and Enabled reports false.
var Nop Tracer = nopTracer{}

// Or returns t, or Nop when t is nil, so instrumented structs can hold a
// never-nil tracer without burdening callers.
func Or(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// ThreadName builds the metadata event naming a track lane (Chrome's
// thread_name), e.g. the workload abbreviation on the modeled track.
func ThreadName(track Track, tid int, name string) Event {
	return Event{
		Track: track, Phase: PhaseMeta, Name: "thread_name", TID: tid,
		Args: map[string]any{"name": name},
	}
}

// epoch anchors the host-track clock at process start.
//
//lint:ignore nodeterminism the host track is wall time by definition; the modeled track stays deterministic
var epoch = time.Now()

// Now returns seconds since the process telemetry epoch — the timestamp
// base for TrackHost events.
//
//lint:ignore nodeterminism the host track is wall time by definition; the modeled track stays deterministic
func Now() float64 { return time.Since(epoch).Seconds() }

// Recorder is an in-memory Tracer: it buffers events under a mutex for
// later export. Safe for concurrent use by pooled workers.
type Recorder struct {
	mu     sync.Mutex
	events []Event // guarded by mu
}

// NewRecorder returns an empty recording sink.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit appends ev to the buffer.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Enabled reports true: a Recorder always listens.
func (r *Recorder) Enabled() bool { return true }

// Events returns a copy of the recorded events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
