package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/profiler"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedWorkloadTrace runs a fixed synthetic workload — three launches of
// two kernels with declarative memory streams — and returns the
// modeled-GPU-time track serialized as a Chrome trace. The modeled track
// depends only on the device model and the specs, so its bytes are a
// stable fingerprint of both.
func fixedWorkloadTrace(t *testing.T) []byte {
	t.Helper()
	dev, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	dev.SetTelemetry(rec, nil)
	sess := profiler.NewSessionWith(dev, profiler.SessionOptions{
		Tracer: rec, Label: "FIX",
	})

	var compute isa.Mix
	compute.Add(isa.FP32, 1<<16)
	compute.Add(isa.LoadGlobal, 1<<12)
	var mem isa.Mix
	mem.Add(isa.LoadGlobal, 1<<14)
	mem.Add(isa.StoreGlobal, 1<<13)
	mem.Add(isa.INT, 1<<12)

	const footprint = 1 << 22
	stream := memsim.Stream{
		Name: "s", FootprintBytes: footprint, AccessBytes: footprint,
		ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true,
	}
	for i := 0; i < 2; i++ {
		sess.MustLaunch(gpu.KernelSpec{
			Name: "fixed_compute", Grid: gpu.D1(512), Block: gpu.D1(256),
			Mix: compute, Streams: []memsim.Stream{stream},
		})
	}
	sess.MustLaunch(gpu.KernelSpec{
		Name: "fixed_memory", Grid: gpu.D1(1024), Block: gpu.D1(128),
		Mix: mem, Streams: []memsim.Stream{stream},
	})

	var buf bytes.Buffer
	if err := telemetry.WriteChrome(&buf, rec.Events(), telemetry.TrackModeled); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenModeledTrace — a fixed workload must produce a byte-identical
// Chrome trace on the modeled-time track, both across runs in this process
// and against the checked-in golden file. Regenerate with:
//
//	go test ./internal/telemetry -run TestGoldenModeledTrace -update
func TestGoldenModeledTrace(t *testing.T) {
	got := fixedWorkloadTrace(t)
	if again := fixedWorkloadTrace(t); !bytes.Equal(got, again) {
		t.Fatal("two identical runs produced different modeled-track traces")
	}

	golden := filepath.Join("testdata", "modeled_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("modeled-track trace differs from %s (device model change? regenerate with -update)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// The trace must parse and contain one complete event per launch.
	tr, err := telemetry.ReadChrome(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "kernel" {
			spans++
		}
	}
	if spans != 3 {
		t.Errorf("trace has %d kernel spans, want 3", spans)
	}
}
