package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Finite clamps non-finite values so encoding/json — which rejects NaN and
// ±Inf with an error — can always marshal them: NaN becomes 0 and ±Inf
// becomes the largest finite float64 of the same sign. Every float that
// crosses a JSON export boundary in this repository goes through this clamp
// (or a domain-specific one like the profiler's one-transaction floor for
// instruction intensity).
func Finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

// chromeEvent is one entry of the Chrome trace-event "JSON object format".
// Field order is fixed by the struct, and map args marshal with sorted keys,
// so a deterministic event stream serializes byte-identically.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// pid maps a track to its Chrome process id; each track renders as its own
// process group in chrome://tracing / Perfetto.
func pid(t Track) int { return int(t) + 1 }

// WriteChrome writes events as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. When tracks are given, only
// events on those tracks are written (the modeled track alone is the
// deterministic subset golden tests compare). Events are ordered
// deterministically — metadata first, then by (track, lane, start, duration,
// name, category) — timestamps convert to microseconds, and all float
// arguments are forced finite, so output bytes depend only on the recorded
// events, not on emission interleaving.
func WriteChrome(w io.Writer, events []Event, tracks ...Track) error {
	keep := func(t Track) bool {
		if len(tracks) == 0 {
			return true
		}
		for _, want := range tracks {
			if t == want {
				return true
			}
		}
		return false
	}
	var evs []Event
	present := map[Track]bool{}
	for _, ev := range events {
		if keep(ev.Track) {
			evs = append(evs, ev)
			present[ev.Track] = true
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if am, bm := a.Phase == PhaseMeta, b.Phase == PhaseMeta; am != bm {
			return am
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Cat < b.Cat
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		data, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(data)
		return err
	}

	// Name each present track's process so the viewer labels the groups.
	for _, t := range []Track{TrackModeled, TrackHost} {
		if !present[t] {
			continue
		}
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", PID: pid(t),
			Args: map[string]any{"name": t.String()},
		}); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(rune(ev.Phase)),
			TS:   Finite(ev.Start * 1e6),
			PID:  pid(ev.Track),
			TID:  ev.TID,
			Args: finiteArgs(ev.Args),
		}
		switch ev.Phase {
		case PhaseSpan:
			dur := Finite(ev.Dur * 1e6)
			ce.Dur = &dur
		case PhaseInstant:
			ce.S = "t" // thread-scoped instant
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// finiteArgs returns args with every float64 value clamped finite. Other
// value types pass through; nested maps are not used by this repository's
// instrumentation and are rejected at marshal time if introduced.
func finiteArgs(args map[string]any) map[string]any {
	if len(args) == 0 {
		return nil
	}
	out := make(map[string]any, len(args))
	for k, v := range args {
		if f, ok := v.(float64); ok {
			out[k] = Finite(f)
		} else {
			out[k] = v
		}
	}
	return out
}

// ChromeTrace is the subset of the Chrome trace-event object format that
// ReadChrome parses back — enough for tests and tools to verify traces.
type ChromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one parsed trace event.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// ReadChrome parses a trace written by WriteChrome.
func ReadChrome(r io.Reader) (*ChromeTrace, error) {
	var t ChromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("telemetry: parsing chrome trace: %w", err)
	}
	return &t, nil
}
