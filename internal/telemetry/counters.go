package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter names used across the pipeline. Keeping them in one place makes
// the -v snapshot and the expvar export self-describing.
const (
	// CtrLaunches counts kernel launches modeled by gpu.Device.Launch.
	CtrLaunches = "gpu.launches"
	// CtrWarpInstructions totals executed warp instructions across launches.
	CtrWarpInstructions = "gpu.warp_instructions"
	// CtrCacheHits counts profile-cache probes served from disk.
	CtrCacheHits = "cache.hits"
	// CtrCacheMisses counts probes that had to re-simulate (absent or
	// corrupt entries both count; corrupt ones additionally bump
	// CtrCacheCorrupt).
	CtrCacheMisses = "cache.misses"
	// CtrCacheCorrupt counts cache entries that existed but were unreadable
	// or mismatched — previously dropped silently, now visible.
	CtrCacheCorrupt = "cache.corrupt_entries"
	// CtrCacheStoreErrors counts failed cache writes. A store failure does
	// not fail the study; it is counted and reported instead.
	CtrCacheStoreErrors = "cache.store_errors"
	// CtrWorkersBusy is the number of pool workers currently characterizing
	// a workload (a gauge: incremented on task start, decremented on end).
	CtrWorkersBusy = "study.workers_busy"
	// CtrWorkloads counts workloads characterized (cache hits included).
	CtrWorkloads = "study.workloads_characterized"

	// Serve-layer counters: the characterization server's request funnel.
	// Requests either hit the in-memory LRU, join an in-flight singleflight
	// study, or lead one; the funnel invariant the load test pins is
	// leaders + shared == lru_misses, with mismatches and corruption at 0.

	// CtrServeRequests counts HTTP requests accepted by the API handlers
	// (rejected ones are counted under their rejection counter instead).
	CtrServeRequests = "serve.requests"
	// CtrServeRejectedQueue counts requests rejected with 429 because the
	// bounded work queue was full.
	CtrServeRejectedQueue = "serve.rejected_queue_full"
	// CtrServeRejectedShutdown counts requests rejected with 503 during
	// shutdown drain.
	CtrServeRejectedShutdown = "serve.rejected_shutdown"
	// CtrServeDeadlineExceeded counts requests that hit their per-request
	// deadline (504); the underlying study keeps running and lands in the
	// LRU for the next asker.
	CtrServeDeadlineExceeded = "serve.deadline_exceeded"
	// CtrServeLRUHits counts profile lookups served from the in-memory LRU.
	CtrServeLRUHits = "serve.lru_hits"
	// CtrServeLRUMisses counts lookups that fell through to singleflight.
	CtrServeLRUMisses = "serve.lru_misses"
	// CtrServeLRUEvictions counts LRU entries evicted to make room.
	CtrServeLRUEvictions = "serve.lru_evictions"
	// CtrServeLRUMismatches counts LRU entries whose recorded workload or
	// device fingerprint disagreed with the key that found them — cache
	// corruption that must never happen (the load test asserts zero).
	CtrServeLRUMismatches = "serve.lru_mismatches"
	// CtrServeFlightLeaders counts singleflight calls that ran the study.
	CtrServeFlightLeaders = "serve.singleflight_leaders"
	// CtrServeFlightShared counts singleflight calls that joined a study
	// another request already had in flight — the deduplication win.
	CtrServeFlightShared = "serve.singleflight_shared"
	// CtrServeWriteErrors counts response bodies that failed to reach the
	// client (connection reset mid-write, client hang-up). The response
	// cannot be retried — the client is gone — but a spike here is an
	// operational symptom worth alerting on, so it is counted, not dropped.
	CtrServeWriteErrors = "serve.write_errors"
)

// WorkloadModeledNs returns the counter name holding a workload's modeled
// GPU time in nanoseconds.
func WorkloadModeledNs(abbr string) string { return "workload." + abbr + ".modeled_ns" }

// WorkloadWallNs returns the counter name holding the host wall time spent
// characterizing (or cache-loading) a workload, in nanoseconds.
func WorkloadWallNs(abbr string) string { return "workload." + abbr + ".wall_ns" }

// Counters is a concurrency-safe registry of named int64 counters. The zero
// of a name springs into existence on first Add. A nil *Counters is a valid
// no-op receiver, so instrumented code never needs nil checks.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64 // guarded by mu; the values are atomic
}

// NewCounters returns an empty registry.
func NewCounters() *Counters { return &Counters{m: make(map[string]*atomic.Int64)} }

// Add increments (or with a negative delta, decrements) the named counter.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.RLock()
	v, ok := c.m[name]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		if v, ok = c.m[name]; !ok {
			v = new(atomic.Int64)
			c.m[name] = v
		}
		c.mu.Unlock()
	}
	v.Add(delta)
}

// Get returns the named counter's value (0 if never touched).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v, ok := c.m[name]; ok {
		return v.Load()
	}
	return 0
}

// CounterValue is one snapshotted counter.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot returns all counters sorted by name — a deterministic report for
// a deterministic run.
func (c *Counters) Snapshot() []CounterValue {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]CounterValue, 0, len(c.m))
	for name, v := range c.m {
		out = append(out, CounterValue{Name: name, Value: v.Load()})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText writes the snapshot as aligned "name value" lines.
func (c *Counters) WriteText(w io.Writer) error {
	snap := c.Snapshot()
	width := 0
	for _, cv := range snap {
		if len(cv.Name) > width {
			width = len(cv.Name)
		}
	}
	bw := bufio.NewWriter(w)
	for _, cv := range snap {
		if _, err := fmt.Fprintf(bw, "%-*s %d\n", width, cv.Name, cv.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSON writes the snapshot as one sorted JSON object (encoding/json
// marshals map keys in sorted order, so output is deterministic).
func (c *Counters) WriteJSON(w io.Writer) error {
	m := make(map[string]int64, len(c.Snapshot()))
	for _, cv := range c.Snapshot() {
		m[cv.Name] = cv.Value
	}
	data, err := json.MarshalIndent(m, "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// PublishExpvar exposes the registry under the given expvar name (served at
// /debug/vars by any net/http server on the default mux, e.g. the CLI's
// -pprof listener). Publishing the same name twice is a no-op rather than
// the panic expvar.Publish would raise. The published value is a
// MetricsSnapshot rendered through the same snapshot path as every other
// output format (text, JSON, Prometheus) — a counters-only registry view,
// so expvar cannot drift from the other emitters.
func (c *Counters) PublishExpvar(name string) {
	if c == nil {
		return
	}
	NewRegistryWith(c).PublishExpvar(name)
}
