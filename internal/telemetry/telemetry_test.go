package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNopTracer(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop.Enabled() = true, want false")
	}
	Nop.Emit(Event{Name: "dropped"}) // must not panic
	if got := Or(nil); got != Nop {
		t.Errorf("Or(nil) = %v, want Nop", got)
	}
	rec := NewRecorder()
	if got := Or(rec); got != Tracer(rec) {
		t.Errorf("Or(rec) = %v, want rec", got)
	}
}

func TestRecorder(t *testing.T) {
	rec := NewRecorder()
	if !rec.Enabled() {
		t.Fatal("Recorder.Enabled() = false")
	}
	rec.Emit(Event{Name: "a"})
	rec.Emit(Event{Name: "b"})
	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	evs := rec.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Errorf("events out of order: %v", evs)
	}
	// Events must be a copy, not an alias.
	evs[0].Name = "mutated"
	if rec.Events()[0].Name != "a" {
		t.Error("Events() aliases the internal buffer")
	}
}

// TestConcurrentSinkWrites hammers a shared Recorder and Counters from many
// goroutines — the pooled-worker pattern — and is the -race regression for
// concurrent sink writes.
func TestConcurrentSinkWrites(t *testing.T) {
	rec := NewRecorder()
	ctr := NewCounters()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Emit(Event{
					Track: TrackHost, Phase: PhaseSpan, TID: w,
					Name: fmt.Sprintf("task-%d", i), Start: float64(i), Dur: 1,
				})
				ctr.Add(CtrLaunches, 1)
				ctr.Add(WorkloadWallNs(fmt.Sprintf("W%d", w)), int64(i))
				if i%100 == 0 {
					_ = rec.Events()
					_ = ctr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if rec.Len() != workers*per {
		t.Errorf("recorded %d events, want %d", rec.Len(), workers*per)
	}
	if got := ctr.Get(CtrLaunches); got != workers*per {
		t.Errorf("%s = %d, want %d", CtrLaunches, got, workers*per)
	}
}

func TestCountersSnapshotSortedAndDeterministic(t *testing.T) {
	ctr := NewCounters()
	ctr.Add("z.last", 3)
	ctr.Add("a.first", 1)
	ctr.Add("m.middle", -2)
	snap := ctr.Snapshot()
	want := []CounterValue{{"a.first", 1}, {"m.middle", -2}, {"z.last", 3}}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(snap), len(want))
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
	var a, b bytes.Buffer
	if err := ctr.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := ctr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteText is not deterministic")
	}
	if !strings.Contains(a.String(), "a.first") {
		t.Errorf("text report missing counter: %q", a.String())
	}
	var js bytes.Buffer
	if err := ctr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal(js.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if m["m.middle"] != -2 {
		t.Errorf("JSON report m.middle = %d, want -2", m["m.middle"])
	}
}

func TestNilCountersAreNoOps(t *testing.T) {
	var c *Counters
	c.Add("x", 1) // must not panic
	if c.Get("x") != 0 {
		t.Error("nil Counters.Get != 0")
	}
	if c.Snapshot() != nil {
		t.Error("nil Counters.Snapshot != nil")
	}
	c.PublishExpvar("never")
}

func TestFinite(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.5, 1.5},
		{0, 0},
		{math.Inf(1), math.MaxFloat64},
		{math.Inf(-1), -math.MaxFloat64},
	}
	for _, c := range cases {
		if got := Finite(c.in); got != c.want {
			t.Errorf("Finite(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if got := Finite(math.NaN()); got != 0 {
		t.Errorf("Finite(NaN) = %v, want 0", got)
	}
}

func TestWriteChromeValidSortedFinite(t *testing.T) {
	events := []Event{
		// Emitted deliberately out of order and with non-finite args.
		{Track: TrackHost, Phase: PhaseSpan, Name: "late", Start: 5, Dur: 1},
		{Track: TrackModeled, Phase: PhaseSpan, Name: "k2", Cat: "kernel",
			Start: 2, Dur: 1, Args: map[string]any{"ii": math.Inf(1)}},
		{Track: TrackModeled, Phase: PhaseSpan, Name: "k1", Cat: "kernel",
			Start: 0, Dur: 2, Args: map[string]any{"nan": math.NaN()}},
		ThreadName(TrackModeled, 0, "WL"),
		{Track: TrackHost, Phase: PhaseInstant, Name: "probe", Start: 1},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// 5 events + 2 process_name metadata.
	if len(tr.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(tr.TraceEvents))
	}
	// Metadata first, then modeled track in start order.
	var names []string
	for _, ev := range tr.TraceEvents {
		names = append(names, ev.Name)
	}
	want := []string{"process_name", "process_name", "thread_name", "k1", "k2", "probe", "late"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("event order %v, want %v", names, want)
		}
	}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "k2" {
			if ev.Args["ii"].(float64) != math.MaxFloat64 {
				t.Errorf("+Inf arg not clamped: %v", ev.Args["ii"])
			}
			if ev.TS != 2e6 || ev.Dur != 1e6 {
				t.Errorf("k2 ts/dur = %v/%v, want 2e6/1e6 us", ev.TS, ev.Dur)
			}
		}
		if ev.Name == "k1" && ev.Args["nan"].(float64) != 0 {
			t.Errorf("NaN arg not clamped: %v", ev.Args["nan"])
		}
	}

	// Track filtering: the modeled track alone drops host events.
	var modeled bytes.Buffer
	if err := WriteChrome(&modeled, events, TrackModeled); err != nil {
		t.Fatal(err)
	}
	tm, err := ReadChrome(bytes.NewReader(modeled.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tm.TraceEvents {
		if ev.PID != 1 {
			t.Errorf("filtered trace contains pid %d event %q", ev.PID, ev.Name)
		}
	}
}

// TestWriteChromeDeterministic — identical event sets serialize to
// identical bytes regardless of emission interleaving.
func TestWriteChromeDeterministic(t *testing.T) {
	mk := func(perm []int) []byte {
		events := []Event{
			{Track: TrackModeled, Phase: PhaseSpan, Name: "a", Start: 0, Dur: 1},
			{Track: TrackModeled, Phase: PhaseSpan, Name: "b", Start: 1, Dur: 2},
			{Track: TrackHost, Phase: PhaseInstant, Name: "c", Start: 0.5},
		}
		shuffled := make([]Event, len(events))
		for i, j := range perm {
			shuffled[i] = events[j]
		}
		var buf bytes.Buffer
		if err := WriteChrome(&buf, shuffled); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := mk([]int{0, 1, 2})
	for _, perm := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if !bytes.Equal(base, mk(perm)) {
			t.Errorf("permutation %v serialized differently", perm)
		}
	}
}
