package telemetry

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketsAreCumulative — observations land in the first
// bucket whose bound covers them, snapshots report Prometheus-style
// cumulative counts, and values above the last bound appear only in the
// total count.
func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(HistogramSpec{Name: "t.h", Buckets: []float64{1, 10, 100}})
	for _, v := range []float64{0.5, 1, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 5 {
		t.Errorf("count = %d, want 5 (NaN dropped)", hs.Count)
	}
	wantCum := []int64{2, 3, 4} // <=1: {0.5, 1}; <=10: +5; <=100: +50
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g count = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if want := 0.5 + 1 + 5 + 50 + 500; hs.Sum != want {
		t.Errorf("sum = %g, want %g", hs.Sum, want)
	}
}

// TestRegistryHistogramIdempotent — respecifying a name returns the same
// histogram (first spec wins), and a nil registry hands out no-op
// histograms.
func TestRegistryHistogramIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram(HistWorkloadModeledSeconds)
	b := r.Histogram(HistogramSpec{Name: HistWorkloadModeledSeconds.Name, Buckets: []float64{1}})
	if a != b {
		t.Error("respecifying a histogram name created a second histogram")
	}
	var nilReg *Registry
	nilReg.Histogram(HistWorkloadModeledSeconds).Observe(1) // must not panic
	if s := nilReg.Snapshot(); len(s.Counters)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot non-empty: %+v", s)
	}
	var nilHist *Histogram
	nilHist.Observe(1) // must not panic
}

// TestRegistrySharesCountersState — a registry wrapping an existing
// Counters sees every counter written through either handle, the contract
// that keeps Counters.PublishExpvar and the /metrics endpoint one state.
func TestRegistrySharesCountersState(t *testing.T) {
	ctr := NewCounters()
	r := NewRegistryWith(ctr)
	ctr.Add(CtrLaunches, 3)
	r.Counters().Add(CtrLaunches, 2)
	if got := ctr.Get(CtrLaunches); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 5 {
		t.Errorf("snapshot counters = %+v", s.Counters)
	}
}

// TestWritePrometheusFormat — the exposition output carries TYPE lines,
// cumulative buckets with a +Inf terminal, _sum/_count, and sanitized
// cactus_-prefixed names.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counters().Add(CtrLaunches, 7)
	h := r.Histogram(HistogramSpec{Name: "workload.modeled_seconds", Help: "modeled seconds", Buckets: []float64{0.01, 0.1}})
	h.Observe(0.005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cactus_gpu_launches gauge\ncactus_gpu_launches 7\n",
		"# HELP cactus_workload_modeled_seconds modeled seconds",
		"# TYPE cactus_workload_modeled_seconds histogram",
		`cactus_workload_modeled_seconds_bucket{le="0.01"} 1`,
		`cactus_workload_modeled_seconds_bucket{le="0.1"} 1`,
		`cactus_workload_modeled_seconds_bucket{le="+Inf"} 2`,
		"cactus_workload_modeled_seconds_sum 0.505",
		"cactus_workload_modeled_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition output missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotFormatsAgree — text, JSON, and Prometheus renderings of one
// registry must describe the same frozen snapshot (the one-snapshot-path
// contract).
func TestSnapshotFormatsAgree(t *testing.T) {
	r := NewRegistry()
	r.Counters().Add(CtrWorkloads, 42)
	r.Histogram(HistWorkloadModeledSeconds).Observe(0.25)
	var txt, js, prom bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 {
		t.Errorf("JSON counters = %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Errorf("JSON histograms = %+v", snap.Histograms)
	}
	for name, out := range map[string]string{"text": txt.String(), "prometheus": prom.String()} {
		if !strings.Contains(out, "42") || !strings.Contains(out, "workload") {
			t.Errorf("%s rendering lost the snapshot:\n%s", name, out)
		}
	}
}

// TestRegistryPublishExpvar — publishing exposes the full MetricsSnapshot
// (counters and histograms) and republishing is a no-op instead of the
// expvar panic.
func TestRegistryPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counters().Add(CtrLaunches, 9)
	r.Histogram(HistKernelL1HitRate).Observe(0.8)
	r.PublishExpvar("metrics_test_registry")
	r.PublishExpvar("metrics_test_registry") // second publish must not panic
	v := expvar.Get("metrics_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a MetricsSnapshot: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Errorf("expvar counters = %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Name != HistKernelL1HitRate.Name {
		t.Errorf("expvar histograms = %+v", snap.Histograms)
	}
}

// TestCountersPublishExpvarDelegates — the legacy Counters entry point now
// renders through the registry snapshot: same shape, counters included.
func TestCountersPublishExpvarDelegates(t *testing.T) {
	ctr := NewCounters()
	ctr.Add(CtrCacheHits, 4)
	ctr.PublishExpvar("metrics_test_counters")
	v := expvar.Get("metrics_test_counters")
	if v == nil {
		t.Fatal("counters not published")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a MetricsSnapshot: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != CtrCacheHits {
		t.Errorf("expvar counters = %+v", snap.Counters)
	}
}

// TestRegistryConcurrentObserve — concurrent histogram observations and
// counter adds from many goroutines must account exactly (run under -race
// in CI).
func TestRegistryConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram(HistWorkloadModeledSeconds)
			for i := 0; i < perWorker; i++ {
				h.Observe(0.01)
				r.Counters().Add(CtrLaunches, 1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[0].Value != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters[0].Value, workers*perWorker)
	}
	if s.Histograms[0].Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Histograms[0].Count, workers*perWorker)
	}
}

// TestPromName — metric-name sanitization into the Prometheus identifier
// space.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"gpu.launches":             "cactus_gpu_launches",
		"workload.GMS.modeled_ns":  "cactus_workload_GMS_modeled_ns",
		"weird-name with spaces!?": "cactus_weird_name_with_spaces__",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
