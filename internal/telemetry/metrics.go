// Metrics registry: the counters registry's second generation. One
// Registry unifies the pipeline's counters with fixed-bucket histograms
// (per-workload modeled time, host wall latency, cache hit-rate
// distributions) behind a single Snapshot, and every output format — the
// aligned text report, JSON, the Prometheus text exposition served at
// /metrics, and the expvar publication at /debug/vars — renders from that
// one snapshot path, so the formats cannot drift apart.
package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// HistogramSpec declares a fixed-bucket histogram: Buckets are the
// inclusive upper bounds of the finite buckets, in increasing order; an
// implicit +Inf bucket catches the rest. Observations are assigned to the
// first bucket whose bound is >= the value, Prometheus-style.
type HistogramSpec struct {
	// Name is the histogram's registry key (dot-separated like counters).
	Name string
	// Help is the one-line description carried into # HELP output.
	Help string
	// Buckets are the finite upper bounds, increasing.
	Buckets []float64
}

// Canonical pipeline histograms. Bounds are decades (and half-decades for
// fractions): the quantities span orders of magnitude, so geometric
// buckets keep every regime visible.
var (
	// HistWorkloadModeledSeconds distributes per-workload modeled GPU time.
	HistWorkloadModeledSeconds = HistogramSpec{
		Name:    "workload.modeled_seconds",
		Help:    "modeled GPU seconds per characterized workload",
		Buckets: []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10},
	}
	// HistWorkloadWallSeconds distributes the host wall time spent
	// characterizing (or cache-loading) each workload.
	HistWorkloadWallSeconds = HistogramSpec{
		Name:    "workload.wall_seconds",
		Help:    "host wall seconds per workload characterization or cache load",
		Buckets: []float64{1e-3, 1e-2, 0.1, 0.5, 1, 5, 30},
	}
	// HistKernelL1HitRate distributes per-kernel L1 hit rates.
	HistKernelL1HitRate = HistogramSpec{
		Name:    "kernel.l1_hit_rate",
		Help:    "L1 cache hit rate per kernel profile",
		Buckets: []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99},
	}
	// HistKernelL2HitRate distributes per-kernel L2 hit rates.
	HistKernelL2HitRate = HistogramSpec{
		Name:    "kernel.l2_hit_rate",
		Help:    "L2 cache hit rate per kernel profile",
		Buckets: []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99},
	}
	// HistServeRequestSeconds distributes end-to-end request latency in the
	// characterization server, LRU hits and cold studies alike.
	HistServeRequestSeconds = HistogramSpec{
		Name:    "serve.request_seconds",
		Help:    "end-to-end latency per served API request",
		Buckets: []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30},
	}
)

// Histogram is one concurrency-safe fixed-bucket histogram. A nil
// *Histogram is a valid no-op receiver, mirroring Counters.
type Histogram struct {
	spec HistogramSpec

	mu     sync.Mutex
	counts []int64 // guarded by mu; per finite bucket; +Inf remainder is count - Σ counts
	sum    float64 // guarded by mu
	count  int64   // guarded by mu
}

// Observe records one value. NaN observations are dropped — a NaN would
// poison the sum without being assignable to any bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	for i, le := range h.spec.Buckets {
		if v <= le {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// BucketCount is one finite histogram bucket in a snapshot: Count is
// cumulative (observations <= LE), Prometheus-style.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is one histogram's frozen state. Count covers every
// observation including those above the last finite bucket.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Help    string        `json:"help,omitempty"`
	Buckets []BucketCount `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   int64         `json:"count"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Name: h.spec.Name, Help: h.spec.Help, Sum: h.sum, Count: h.count}
	var cum int64
	for i, le := range h.spec.Buckets {
		cum += h.counts[i]
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: cum})
	}
	return s
}

// MetricsSnapshot is a Registry frozen at one instant: sorted counters and
// sorted histograms. Every output format renders from this one shape.
type MetricsSnapshot struct {
	Counters   []CounterValue      `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry unifies a Counters registry with named histograms behind one
// snapshot path. A nil *Registry is a valid no-op receiver.
type Registry struct {
	ctr *Counters

	mu    sync.RWMutex
	hists map[string]*Histogram // guarded by mu; the histograms self-lock
}

// NewRegistry returns a registry with a fresh counters set.
func NewRegistry() *Registry { return NewRegistryWith(NewCounters()) }

// NewRegistryWith wraps an existing counters registry, so code holding a
// *Counters and code holding the *Registry observe into the same state.
func NewRegistryWith(ctr *Counters) *Registry {
	return &Registry{ctr: ctr, hists: make(map[string]*Histogram)}
}

// Counters returns the underlying counters registry (nil-safe).
func (r *Registry) Counters() *Counters {
	if r == nil {
		return nil
	}
	return r.ctr
}

// Histogram returns the registered histogram for spec, creating it on
// first use. Respecifying an existing name returns the original histogram
// (the first spec wins). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(spec HistogramSpec) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[spec.Name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[spec.Name]; ok {
		return h
	}
	h = &Histogram{spec: spec, counts: make([]int64, len(spec.Buckets))}
	r.hists[spec.Name] = h
	return h
}

// Snapshot freezes the whole registry: counters sorted by name (from
// Counters.Snapshot) and histograms sorted by name — a deterministic
// report for a deterministic run.
func (r *Registry) Snapshot() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	s := MetricsSnapshot{Counters: r.ctr.Snapshot()}
	r.mu.RLock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.RUnlock()
	for _, h := range hs {
		s.Histograms = append(s.Histograms, h.snapshot())
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteText renders the snapshot as aligned text: counters as "name value"
// lines, then one block per histogram with cumulative bucket counts.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Snapshot().WriteText(w)
}

// WriteText renders the frozen snapshot as aligned text.
func (s MetricsSnapshot) WriteText(w io.Writer) error {
	width := 0
	for _, cv := range s.Counters {
		if len(cv.Name) > width {
			width = len(cv.Name)
		}
	}
	bw := bufio.NewWriter(w)
	for _, cv := range s.Counters {
		if _, err := fmt.Fprintf(bw, "%-*s %d\n", width, cv.Name, cv.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(bw, "%s  count %d  sum %g\n", h.Name, h.Count, h.Sum); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(bw, "  le %-12g %d\n", b.LE, b.Count); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as gauges (some, like
// study.workers_busy, can decrease), histograms with cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. Metric names are the
// registry names with non-identifier runes mapped to '_' under a `cactus_`
// namespace prefix.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the frozen snapshot in text exposition format.
func (s MetricsSnapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, cv := range s.Counters {
		name := promName(cv.Name)
		if _, err := fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, cv.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if h.Help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", name, h.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, promFloat(b.LE), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, h.Count, name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// promName maps a dotted registry name into the Prometheus identifier
// space under the cactus_ namespace.
func promName(name string) string {
	out := make([]byte, 0, len(name)+7)
	out = append(out, "cactus_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat formats a float for exposition output (shortest round-trip).
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PublishExpvar exposes the registry's snapshot under the given expvar
// name (served at /debug/vars by any net/http server on the default mux).
// Publishing the same name twice is a no-op rather than the panic
// expvar.Publish would raise. The published value is the same
// MetricsSnapshot every other format renders from.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
