// Attribution tree: the runtime realization of the paper's top-down
// methodology. Where the figures explain a finished study offline, the
// attribution tree explains it live — every modeled second descends from
// the whole study through workloads and phases (all invocations of one
// kernel) down to individual launches, and at every node the time is split
// into four bottleneck categories whose shares provably sum to 1. The
// category shares derive from the typed stall/utilization fields the device
// model already produces; CheckAttribution is the audit-style identity
// check `cactus explain` and `cactus audit` enforce.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/units"
)

// Bottleneck is one top-down attribution category: every modeled second of
// a node belongs to exactly one.
type Bottleneck int

const (
	// BottleneckDRAM is time attributed to DRAM bandwidth and memory-access
	// stalls (the memory-intensive side of the roofline).
	BottleneckDRAM Bottleneck = iota
	// BottleneckCompute is time attributed to issue and functional-unit
	// throughput — the pipeline actually retiring work.
	BottleneckCompute
	// BottleneckLatency is time attributed to latency the warp scheduler
	// could not hide: execution dependencies and synchronization stalls.
	BottleneckLatency
	// BottleneckOverhead is fixed kernel-launch overhead.
	BottleneckOverhead

	// NumBottlenecks is the number of attribution categories.
	NumBottlenecks
)

var bottleneckNames = [NumBottlenecks]string{"dram", "compute", "latency", "overhead"}

// String returns the category's stable identifier ("dram", "compute",
// "latency", "overhead") used in text, JSON, and metric output.
func (b Bottleneck) String() string {
	if b >= 0 && b < NumBottlenecks {
		return bottleneckNames[b]
	}
	return fmt.Sprintf("bottleneck(%d)", int(b))
}

// Bottlenecks returns all categories in declaration order.
func Bottlenecks() []Bottleneck {
	return []Bottleneck{BottleneckDRAM, BottleneckCompute, BottleneckLatency, BottleneckOverhead}
}

// BottleneckShares splits a node's modeled time across the categories.
// A well-formed value sums to 1 within AttributionTol.
type BottleneckShares [NumBottlenecks]units.Fraction

// Get returns the share of category b.
func (s BottleneckShares) Get(b Bottleneck) units.Fraction { return s[b] }

// Sum returns the total of all category shares; 1 within AttributionTol
// for every share vector produced by AttributeStalls or aggregation.
func (s BottleneckShares) Sum() float64 {
	var t float64
	for _, v := range s {
		t += v.Float()
	}
	return t
}

// Dominant returns the category with the largest share (ties resolve to
// the earlier category, keeping output deterministic).
func (s BottleneckShares) Dominant() Bottleneck {
	best := BottleneckDRAM
	for _, b := range Bottlenecks() {
		if s[b] > s[best] {
			best = b
		}
	}
	return best
}

// AttributionTol is the identity tolerance: at every tree level the four
// shares must sum to 1 within this bound. It matches the model's relTol —
// only floating-point association error is forgiven.
const AttributionTol = 1e-9

// AttributeStalls derives bottleneck shares for a span of modeled time
// from the stall ratios the device model reports. The launch overhead is
// carved out first; the remainder is split proportionally to the stall
// attribution: memory stalls feed the DRAM category, execution-dependency
// and synchronization stalls feed latency, and pipe stalls plus all
// non-stalled issue slots feed compute. The compute share is computed as
// the remainder to 1, so the identity Σ shares = 1 holds to within
// floating-point association error regardless of the inputs.
func AttributeStalls(time, overhead units.Seconds, stallMem, stallPipe, stallExec, stallSync units.Fraction) BottleneckShares {
	var s BottleneckShares
	if time <= 0 {
		// A span with no modeled time is pure overhead by convention; the
		// identity still holds.
		s[BottleneckOverhead] = 1
		return s
	}
	oh := units.Share(overhead, time)
	rem := 1 - oh.Float()
	wMem := stallMem.Clamp01()
	wLat := stallExec.Clamp01() + stallSync.Clamp01()
	wPipe := stallPipe.Clamp01()
	idle := 1 - (wMem + wLat + wPipe)
	if idle < 0 {
		idle = 0
	}
	wComp := wPipe + idle
	wSum := wMem + wLat + wComp // >= 1 when stalls sum below 1, always > 0
	dram := units.Clamp01(rem * wMem / wSum)
	lat := units.Clamp01(rem * wLat / wSum)
	comp := units.Clamp01(1 - oh.Float() - dram.Float() - lat.Float())
	s[BottleneckDRAM] = dram
	s[BottleneckLatency] = lat
	s[BottleneckCompute] = comp
	s[BottleneckOverhead] = oh
	return s
}

// Attribution tree levels, root to leaf.
const (
	LevelStudy    = "study"
	LevelWorkload = "workload"
	LevelPhase    = "phase" // all invocations of one kernel within a workload
	LevelLaunch   = "launch"
)

// AttributionNode is one span of the attribution tree. Its modeled time is
// the sum of its children's (leaves carry their own), and its shares sum
// to 1 within AttributionTol at every level.
type AttributionNode struct {
	// Level is the node's tree level (LevelStudy .. LevelLaunch).
	Level string
	// Name identifies the span: the workload abbreviation, the kernel name,
	// or the launch sequence label.
	Name string
	// Time is the node's modeled GPU time.
	Time units.Seconds
	// Launches is the number of kernel launches under this node.
	Launches int
	// Shares is the node's bottleneck split.
	Shares BottleneckShares
	// Children are the next level down, in dominance (or issue) order.
	Children []*AttributionNode
}

// AggregateNode rolls children up into one parent node: time and launch
// counts sum, and each category share is the duration-weighted mean of the
// children's — so a parent's DRAM seconds equal the sum of its children's
// DRAM seconds up to floating-point association, and the Σ shares = 1
// identity is inherited from the children.
func AggregateNode(level, name string, children []*AttributionNode) *AttributionNode {
	n := &AttributionNode{Level: level, Name: name, Children: children}
	weights := make([]units.Seconds, len(children))
	vals := make([]units.Fraction, len(children))
	for i, c := range children {
		n.Time += c.Time
		n.Launches += c.Launches
		weights[i] = c.Time
	}
	for _, b := range Bottlenecks() {
		for i, c := range children {
			vals[i] = c.Shares[b]
		}
		n.Shares[b] = units.WeightedMean(vals, weights)
	}
	return n
}

// AttributionViolation is one node whose shares fail the sum-to-1 identity.
type AttributionViolation struct {
	// Path is the slash-joined node path from the root.
	Path string
	// Sum is the offending share total.
	Sum float64
}

func (v AttributionViolation) String() string {
	return fmt.Sprintf("%s: shares sum to %.12g, want 1", v.Path, v.Sum)
}

// CheckAttribution walks the tree and returns every node whose bottleneck
// shares do not sum to 1 within tol (non-positive tol selects
// AttributionTol) — the `cactus audit`-style identity check behind
// `cactus explain`.
func CheckAttribution(root *AttributionNode, tol float64) []AttributionViolation {
	if tol <= 0 {
		tol = AttributionTol
	}
	var out []AttributionViolation
	var walk func(n *AttributionNode, path string)
	walk = func(n *AttributionNode, path string) {
		if sum := n.Shares.Sum(); sum < 1-tol || sum > 1+tol {
			out = append(out, AttributionViolation{Path: path, Sum: sum})
		}
		for _, c := range n.Children {
			walk(c, path+"/"+c.Name)
		}
	}
	if root != nil {
		walk(root, root.Name)
	}
	return out
}

// WriteAttributionText renders the tree as aligned, indented text: one line
// per node with its modeled time, launch count, and percentage split.
// maxDepth limits descent (0 = all levels).
func WriteAttributionText(w io.Writer, root *AttributionNode, maxDepth int) error {
	if root == nil {
		return nil
	}
	// First pass: the widest indented name, so the share columns align.
	width := 0
	var measure func(n *AttributionNode, depth int)
	measure = func(n *AttributionNode, depth int) {
		if l := 2*depth + len(n.Name); l > width {
			width = l
		}
		if maxDepth > 0 && depth+1 >= maxDepth {
			return
		}
		for _, c := range n.Children {
			measure(c, depth+1)
		}
	}
	measure(root, 0)

	bw := bufio.NewWriter(w)
	var render func(n *AttributionNode, depth int) error
	render = func(n *AttributionNode, depth int) error {
		name := strings.Repeat("  ", depth) + n.Name
		if _, err := fmt.Fprintf(bw, "%-*s  %12.4f ms  %6d launches ", width, name, n.Time.Millis(), n.Launches); err != nil {
			return err
		}
		for _, b := range Bottlenecks() {
			if _, err := fmt.Fprintf(bw, " %s %5.1f%%", b, 100*n.Shares[b].Clamp01()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
		if maxDepth > 0 && depth+1 >= maxDepth {
			return nil
		}
		for _, c := range n.Children {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := render(root, 0); err != nil {
		return err
	}
	return bw.Flush()
}

// attributionJSON is the serialized shape of one attribution node. Shares
// cross this JSON boundary through Fraction.Clamp01, so NaN or
// out-of-range values cannot reach the encoder.
type attributionJSON struct {
	Level     string             `json:"level"`
	Name      string             `json:"name"`
	ModeledMs float64            `json:"modeled_ms"`
	Launches  int                `json:"launches"`
	Shares    map[string]float64 `json:"shares"`
	Children  []attributionJSON  `json:"children,omitempty"`
}

func attributionDTO(n *AttributionNode) attributionJSON {
	out := attributionJSON{
		Level:     n.Level,
		Name:      n.Name,
		ModeledMs: n.Time.Millis(),
		Launches:  n.Launches,
		Shares:    make(map[string]float64, NumBottlenecks),
	}
	for _, b := range Bottlenecks() {
		out.Shares[b.String()] = n.Shares[b].Clamp01()
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, attributionDTO(c))
	}
	return out
}

// WriteAttributionJSON writes the tree as indented JSON (map keys marshal
// sorted, so output is deterministic).
func WriteAttributionJSON(w io.Writer, root *AttributionNode) error {
	if root == nil {
		_, err := io.WriteString(w, "null\n")
		return err
	}
	data, err := json.MarshalIndent(attributionDTO(root), "", "\t")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
