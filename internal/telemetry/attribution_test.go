package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestAttributeStallsIdentity — the tentpole invariant: for any input, the
// four shares sum to exactly 1 up to floating-point association error.
func TestAttributeStallsIdentity(t *testing.T) {
	cases := []struct {
		name                   string
		time, overhead         units.Seconds
		mem, pipe, exec, syncS units.Fraction
	}{
		{"balanced", 1e-3, 1e-5, 0.3, 0.1, 0.2, 0.1},
		{"no-stalls", 1e-3, 1e-5, 0, 0, 0, 0},
		{"all-memory", 1e-3, 0, 1, 0, 0, 0},
		{"stalls-over-one", 1e-3, 1e-5, 0.6, 0.4, 0.4, 0.3},
		{"overhead-dominated", 3e-6, 2.5e-6, 0.2, 0.1, 0.1, 0.1},
		{"pure-overhead", 2.5e-6, 2.5e-6, 0, 0, 0, 0},
		{"nan-stall", 1e-3, 1e-5, units.Fraction(math.NaN()), 0.1, 0.1, 0.1},
		{"negative-stall", 1e-3, 1e-5, -0.5, 0.1, 0.1, 0.1},
		{"zero-time", 0, 0, 0.2, 0.1, 0.1, 0.1},
	}
	for _, tc := range cases {
		s := AttributeStalls(tc.time, tc.overhead, tc.mem, tc.pipe, tc.exec, tc.syncS)
		if sum := s.Sum(); math.Abs(sum-1) > AttributionTol {
			t.Errorf("%s: shares sum to %.15g, want 1", tc.name, sum)
		}
		for _, b := range Bottlenecks() {
			if v := s.Get(b).Float(); v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: share %s = %g is outside [0,1]", tc.name, b, v)
			}
		}
	}
}

// TestAttributeStallsSemantics spot-checks that the categories mean what
// they claim: overhead is carved out first, memory stalls feed DRAM,
// exec+sync feed latency, and a stall-free kernel is pure compute plus
// overhead.
func TestAttributeStallsSemantics(t *testing.T) {
	// 10% overhead, all remaining stall weight on memory.
	s := AttributeStalls(1e-3, 1e-4, 1, 0, 0, 0)
	if oh := s.Get(BottleneckOverhead).Float(); math.Abs(oh-0.1) > 1e-12 {
		t.Errorf("overhead share = %g, want 0.1", oh)
	}
	if dram := s.Get(BottleneckDRAM).Float(); math.Abs(dram-0.9) > 1e-12 {
		t.Errorf("dram share = %g, want 0.9", dram)
	}
	if s.Dominant() != BottleneckDRAM {
		t.Errorf("dominant = %s, want dram", s.Dominant())
	}
	// No stalls at all: everything but overhead is compute.
	s = AttributeStalls(1e-3, 1e-4, 0, 0, 0, 0)
	if comp := s.Get(BottleneckCompute).Float(); math.Abs(comp-0.9) > 1e-12 {
		t.Errorf("compute share = %g, want 0.9", comp)
	}
	// Latency pools exec and sync stalls.
	s = AttributeStalls(1e-3, 0, 0, 0, 0.25, 0.25)
	if lat := s.Get(BottleneckLatency).Float(); math.Abs(lat-0.5) > 1e-12 {
		t.Errorf("latency share = %g, want 0.5", lat)
	}
}

// TestAggregateNodePreservesIdentityAndSeconds — rolling children into a
// parent must keep Σ shares = 1 and conserve per-category seconds.
func TestAggregateNodePreservesIdentityAndSeconds(t *testing.T) {
	children := []*AttributionNode{
		{Level: LevelLaunch, Name: "a#0", Time: 2e-3, Launches: 1,
			Shares: AttributeStalls(2e-3, 1e-5, 0.6, 0.1, 0.1, 0.05)},
		{Level: LevelLaunch, Name: "a#1", Time: 5e-4, Launches: 1,
			Shares: AttributeStalls(5e-4, 1e-5, 0.1, 0.5, 0.2, 0.1)},
		{Level: LevelLaunch, Name: "a#2", Time: 1e-6, Launches: 1,
			Shares: AttributeStalls(1e-6, 1e-6, 0, 0, 0, 0)},
	}
	n := AggregateNode(LevelPhase, "a", children)
	if n.Launches != 3 {
		t.Errorf("launches = %d, want 3", n.Launches)
	}
	wantTime := units.Seconds(2e-3 + 5e-4 + 1e-6)
	if math.Abs(n.Time.Float()-wantTime.Float()) > 1e-15 {
		t.Errorf("time = %g, want %g", n.Time.Float(), wantTime.Float())
	}
	if sum := n.Shares.Sum(); math.Abs(sum-1) > AttributionTol {
		t.Errorf("aggregated shares sum to %.15g, want 1", sum)
	}
	for _, b := range Bottlenecks() {
		var childSeconds float64
		for _, c := range children {
			childSeconds += c.Time.Float() * c.Shares.Get(b).Float()
		}
		parentSeconds := n.Time.Float() * n.Shares.Get(b).Float()
		if math.Abs(parentSeconds-childSeconds) > 1e-12 {
			t.Errorf("%s: parent %g s != sum of children %g s", b, parentSeconds, childSeconds)
		}
	}
	if violations := CheckAttribution(n, 0); len(violations) != 0 {
		t.Errorf("CheckAttribution: %v", violations)
	}
}

// TestCheckAttributionFindsViolations — a corrupted node is reported with
// its path; clean trees report nothing.
func TestCheckAttributionFindsViolations(t *testing.T) {
	leaf := &AttributionNode{Level: LevelLaunch, Name: "k#0", Time: 1e-3, Launches: 1,
		Shares: AttributeStalls(1e-3, 1e-5, 0.3, 0.1, 0.1, 0.1)}
	root := AggregateNode(LevelStudy, "dev", []*AttributionNode{
		AggregateNode(LevelWorkload, "w", []*AttributionNode{leaf}),
	})
	if v := CheckAttribution(root, 0); len(v) != 0 {
		t.Fatalf("clean tree reported violations: %v", v)
	}
	leaf.Shares[BottleneckDRAM] += 0.5
	v := CheckAttribution(root, 0)
	if len(v) != 1 {
		t.Fatalf("got %d violations, want 1 (the corrupted leaf): %v", len(v), v)
	}
	if v[0].Path != "dev/w/k#0" {
		t.Errorf("violation path = %q, want dev/w/k#0", v[0].Path)
	}
	if !strings.Contains(v[0].String(), "want 1") {
		t.Errorf("violation string = %q", v[0].String())
	}
	if v := CheckAttribution(nil, 0); v != nil {
		t.Errorf("nil tree reported violations: %v", v)
	}
}

// TestWriteAttributionText — alignment, depth limiting, and category
// labels in the rendering.
func TestWriteAttributionText(t *testing.T) {
	leafA := &AttributionNode{Level: LevelLaunch, Name: "kern#0", Time: 1e-3, Launches: 1,
		Shares: AttributeStalls(1e-3, 1e-5, 0.5, 0.1, 0.1, 0.1)}
	root := AggregateNode(LevelStudy, "dev", []*AttributionNode{
		AggregateNode(LevelWorkload, "wl", []*AttributionNode{leafA}),
	})
	var full bytes.Buffer
	if err := WriteAttributionText(&full, root, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("full rendering has %d lines, want 3:\n%s", len(lines), full.String())
	}
	for _, want := range []string{"dev", "  wl", "    kern#0", "dram", "overhead", "launches"} {
		if !strings.Contains(full.String(), want) {
			t.Errorf("rendering missing %q:\n%s", want, full.String())
		}
	}
	var shallow bytes.Buffer
	if err := WriteAttributionText(&shallow, root, 2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(shallow.String(), "\n"); got != 2 {
		t.Errorf("depth-2 rendering has %d lines, want 2:\n%s", got, shallow.String())
	}
	if err := WriteAttributionText(&bytes.Buffer{}, nil, 0); err != nil {
		t.Errorf("nil tree: %v", err)
	}
}

// TestWriteAttributionJSON — the JSON shape is stable, shares are guarded,
// and a nil tree marshals as null.
func TestWriteAttributionJSON(t *testing.T) {
	leaf := &AttributionNode{Level: LevelLaunch, Name: "k#0", Time: 1e-3, Launches: 1,
		Shares: AttributeStalls(1e-3, 1e-5, 0.5, 0.1, 0.1, 0.1)}
	root := AggregateNode(LevelStudy, "dev", []*AttributionNode{
		AggregateNode(LevelWorkload, "wl", []*AttributionNode{leaf}),
	})
	var buf bytes.Buffer
	if err := WriteAttributionJSON(&buf, root); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Level    string             `json:"level"`
		Name     string             `json:"name"`
		Shares   map[string]float64 `json:"shares"`
		Children []json.RawMessage  `json:"children"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Level != LevelStudy || got.Name != "dev" || len(got.Children) != 1 {
		t.Errorf("root = %+v", got)
	}
	var sum float64
	for _, b := range Bottlenecks() {
		v, ok := got.Shares[b.String()]
		if !ok {
			t.Fatalf("shares missing category %q: %v", b, got.Shares)
		}
		sum += v
	}
	if math.Abs(sum-1) > AttributionTol {
		t.Errorf("serialized shares sum to %g, want 1", sum)
	}
	buf.Reset()
	if err := WriteAttributionJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "null" {
		t.Errorf("nil tree serialized as %q, want null", buf.String())
	}
}

// TestBottleneckString covers the enum's stable names and the
// out-of-range fallback.
func TestBottleneckString(t *testing.T) {
	want := map[Bottleneck]string{
		BottleneckDRAM: "dram", BottleneckCompute: "compute",
		BottleneckLatency: "latency", BottleneckOverhead: "overhead",
	}
	for b, name := range want {
		if b.String() != name {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), name)
		}
	}
	if s := Bottleneck(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range String() = %q", s)
	}
}
