package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errBuf.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiler export data produced by
// `go list -export`. It lazily shells out for paths it has not seen, so one
// instance serves both the production loader (pre-seeded with the target
// patterns' dependency closure) and the fixture loader (stdlib imports on
// demand).
type exportImporter struct {
	dir     string
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newExportImporter(dir string, fset *token.FileSet) *exportImporter {
	e := &exportImporter{dir: dir, exports: make(map[string]string)}
	e.gc = importer.ForCompiler(fset, "gc", e.lookup)
	return e
}

// seed loads export data for the patterns' dependency closures.
func (e *exportImporter) seed(patterns ...string) error {
	pkgs, err := goList(e.dir, append([]string{"-deps", "-export",
		"-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			e.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func (e *exportImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := e.exports[path]
	if !ok {
		if err := e.seed(path); err != nil {
			return nil, err
		}
		if f, ok = e.exports[path]; !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(f)
}

// Import implements types.Importer.
func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.gc.Import(path)
}

// newInfo returns a types.Info with every map analyzers consult populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load resolves the package patterns (e.g. "./...") relative to dir, parses
// and type-checks every non-test file of the module's matching packages, and
// returns them ready for analysis. Test files and testdata are excluded —
// fixtures under testdata carry deliberate violations.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,Name,GoFiles,Standard,Module"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(dir, fset)
	if err := imp.seed(patterns...); err != nil {
		return nil, err
	}

	var out []*Package
	for _, t := range targets {
		if t.Standard || t.Module == nil || len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// fixtureLoader type-checks GOPATH-style fixture trees under a src root:
// imports resolve first against sibling fixture packages, then against the
// standard library via export data. The analyzer test harness uses it to
// compile testdata fixtures that deliberately violate invariants.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     *exportImporter
	cache   map[string]*Package
}

func newFixtureLoader(srcRoot string) *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     newExportImporter(srcRoot, fset),
		cache:   make(map[string]*Package),
	}
}

// Import implements types.Importer for fixture-internal imports.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, path); isDir(dir) {
		p, err := l.load(path, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and checks the fixture package in srcRoot/dirRel, giving it
// asPath as its import path (so analyzer scopes can be exercised).
func (l *fixtureLoader) load(dirRel, asPath string) (*Package, error) {
	if p, ok := l.cache[dirRel]; ok {
		return p, nil
	}
	dir := filepath.Join(l.srcRoot, dirRel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in fixture %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(asPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %w", dirRel, err)
	}
	p := &Package{Path: asPath, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[dirRel] = p
	return p, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
