package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoDeterminism flags nondeterminism sources in the deterministic model
// packages: wall-clock reads (time.Now/Since/Until), uses of math/rand's
// global source (package-level calls; seeded *rand.Rand values are fine),
// and range loops over maps that emit output from inside the loop body —
// Go's map iteration order would leak into figures, tables, and traces.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid wall-clock time, the global math/rand source, and " +
		"map-iteration order reaching emitted output in model packages",
	ScopeDoc: "model packages (gpu, trace, report, telemetry, stats, roofline, core, units)",
	Scope:    modelScope,
	Run:      runNoDeterminism,
}

// allowedRand are math/rand constructors: they build seeded generators and
// are deterministic by themselves.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoDeterminism(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				switch path, name := fn.Pkg().Path(), fn.Name(); {
				case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					p.Reportf(n.Pos(), "call to time.%s reads the wall clock in deterministic model code", name)
				case (path == "math/rand" || path == "math/rand/v2") && !allowedRand[name]:
					p.Reportf(n.Pos(), "call to %s.%s uses the global random source; use a seeded *rand.Rand", fn.Pkg().Name(), name)
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				if pos, emit := findEmit(p.Info, n.Body); emit != "" {
					p.Reportf(n.Pos(), "map iteration order is random but %s (line %d) emits output inside this range; collect the keys, sort, then emit",
						emit, p.Fset.Position(pos).Line)
				}
			}
			return true
		})
	}
}

// emitMethods are method names that write to an output sink; calling one
// inside a map range makes the output order nondeterministic.
var emitMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteText": true, "Encode": true, "Emit": true, "AddRow": true,
	"Render": true,
}

// findEmit returns the position and description of the first output-emitting
// call inside body, or "" when there is none.
func findEmit(info *types.Info, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var desc string
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Recv() == nil {
			if fn.Pkg() == nil {
				return true
			}
			name := fn.Name()
			switch fn.Pkg().Path() {
			case "fmt":
				if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
					pos, desc = call.Pos(), "fmt."+name
				}
			case "io":
				if name == "WriteString" || name == "Copy" {
					pos, desc = call.Pos(), "io."+name
				}
			}
			return true
		}
		if emitMethods[fn.Name()] {
			pos, desc = call.Pos(), recvString(fn)+"."+fn.Name()
		}
		return true
	})
	return pos, desc
}
