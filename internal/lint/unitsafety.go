package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafety enforces the internal/units conventions in the packages that
// produce and serialize metrics. Go's defined types already reject mixed
// ADD/SUB and implicit assignment across units; this analyzer closes the
// holes the type system leaves open:
//
//   - a direct conversion from one unit type to another (units.Seconds(c)
//     where c is units.Cycles) silently changes dimension — it must go
//     through a units constructor or method (Cycles.AtRate, Txns.Bytes,
//     units.Share, ...);
//   - multiplying or dividing two values of the same unit type produces a
//     result that is dimensionally NOT that unit (Seconds² or a plain
//     ratio) yet keeps the type — the operands must be converted out
//     explicitly first (.Float(), float64(...)) unless the whole
//     expression is itself converted to a non-unit type. Fraction is
//     dimensionless and exempt;
//   - a bare numeric literal other than 0 or 1 written into a unit-typed
//     field or variable bypasses the constructors that establish the
//     value's provenance;
//   - a Fraction reaching a JSON/trace serialization boundary without a
//     Finite/clamp guard or a units constructor in between can smuggle
//     NaN or an out-of-range share into emitted output.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "enforce explicit conversions, constructor provenance, and guarded " +
		"boundaries for internal/units types",
	ScopeDoc: "model packages plus profiler and memsim, excluding internal/units itself",
	Scope:    unitSafetyScope,
	Run:      runUnitSafety,
}

// unitSafetyScope covers the metric-producing packages — the model scope
// plus profiler and memsim — but not internal/units itself, whose
// constructors are the sanctioned place for raw conversions.
func unitSafetyScope(path string) bool {
	if unitsPackage(path) {
		return false
	}
	return modelScope(path) ||
		strings.HasSuffix(path, "/profiler") || strings.HasSuffix(path, "/memsim")
}

// unitsPackage reports whether path is a units package (the real
// repro/internal/units or a fixture stand-in).
func unitsPackage(path string) bool {
	return path == "units" || strings.HasSuffix(path, "/units")
}

// unitName returns the name of the unit type t ("Seconds", "Txns",
// "Fraction", ...) if t is a defined numeric type from a units package,
// else "".
func unitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !unitsPackage(obj.Pkg().Path()) {
		return ""
	}
	if _, ok := named.Underlying().(*types.Basic); !ok {
		return ""
	}
	return obj.Name()
}

// conversionTarget returns the type a call expression converts to, or nil
// when the call is a regular function/method call.
func conversionTarget(info *types.Info, call *ast.CallExpr) types.Type {
	if len(call.Args) != 1 {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	tn, ok := info.Uses[id].(*types.TypeName)
	if !ok {
		return nil
	}
	return tn.Type()
}

// unitsCall reports whether call invokes a function or method defined in a
// units package: its constructors and accessors are the sanctioned
// producers and escapes for unit values.
func unitsCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && unitsPackage(fn.Pkg().Path())
}

func runUnitSafety(p *Pass) {
	for _, file := range p.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCrossUnitConversion(p, n)
			case *ast.BinaryExpr:
				checkSameUnitMulQuo(p, n, stack)
			case *ast.AssignStmt:
				checkUnitAssign(p, n)
			case *ast.CompositeLit:
				checkUnitCompositeLit(p, n)
				checkBoundaryLit(p, n)
			}
			return true
		})
	}
}

// checkCrossUnitConversion flags U1(x) where x already has a different unit
// type U2: the dimension change is implicit. Converting a plain numeric
// into a unit, or a unit out to a plain numeric, stays legal.
func checkCrossUnitConversion(p *Pass, call *ast.CallExpr) {
	tgt := conversionTarget(p.Info, call)
	if tgt == nil {
		return
	}
	tgtUnit := unitName(tgt)
	if tgtUnit == "" {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if tv, ok := p.Info.Types[arg]; !ok || tv.Value != nil {
		return // constants adopt the target type; that is the point of them
	}
	argUnit := unitName(p.Info.TypeOf(arg))
	if argUnit == "" || argUnit == tgtUnit {
		return
	}
	p.Reportf(call.Pos(),
		"conversion units.%s(units.%s) changes dimension implicitly; use a units constructor or method (e.g. Cycles.AtRate, Txns.Bytes, units.Share)",
		tgtUnit, argUnit)
}

// checkSameUnitMulQuo flags x*y and x/y where both operands share a
// non-Fraction unit type: the product or ratio is dimensionally not that
// unit. The expression is sanctioned when an enclosing node converts it to
// a non-unit type, wraps it in a Finite/clamp guard, or hands it to a
// units-package helper.
func checkSameUnitMulQuo(p *Pass, e *ast.BinaryExpr, stack []ast.Node) {
	if e.Op != token.MUL && e.Op != token.QUO {
		return
	}
	xu, yu := operandUnit(p.Info, e.X), operandUnit(p.Info, e.Y)
	if xu == "" || yu == "" || xu == "Fraction" {
		return
	}
	if sanctioned(p.Info, stack) {
		return
	}
	p.Reportf(e.Pos(),
		"%q mixes unit-typed operands: the result of units.%s %s units.%s is dimensionally not a %s — convert explicitly (.Float()) or use a units helper",
		e.Op, xu, e.Op, yu, xu)
}

// operandUnit returns the operand's unit name, treating constants as
// unit-free: an untyped constant adopts the other operand's type, which is
// exactly how scale factors are meant to be written.
func operandUnit(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return ""
	}
	return unitName(info.TypeOf(e))
}

// sanctioned reports whether any enclosing expression (excluding the node
// itself, which sits at the top of the stack) explicitly leaves unit space:
// a conversion to a non-unit type, a Finite/clamp guard, or a call into the
// units package.
func sanctioned(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if tgt := conversionTarget(info, call); tgt != nil && unitName(tgt) == "" {
			return true
		}
		if guardCall(info, call) || unitsCall(info, call) {
			return true
		}
	}
	return false
}

// checkUnitAssign flags bare numeric literals assigned into unit-typed
// locations, plus *= and /= between same-unit values (the assignment form
// of the MUL/QUO rule).
func checkUnitAssign(p *Pass, as *ast.AssignStmt) {
	if as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			lu := unitName(p.Info.TypeOf(as.Lhs[0]))
			ru := operandUnit(p.Info, as.Rhs[0])
			if lu != "" && lu != "Fraction" && ru == lu {
				p.Reportf(as.Pos(),
					"%q mixes unit-typed operands: the result is dimensionally not a %s — convert explicitly (.Float()) or use a units helper",
					as.Tok, lu)
			}
		}
		return
	}
	if as.Tok != token.ASSIGN {
		return // := infers plain numeric types from literals
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if lit := bareLiteral(rhs); lit != nil {
			if u := unitName(p.Info.TypeOf(as.Lhs[i])); u != "" {
				p.Reportf(lit.Pos(),
					"bare numeric literal %s assigned into units.%s; construct the value through internal/units or name it as a typed constant",
					lit.Value, u)
			}
		}
	}
}

// checkUnitCompositeLit flags bare numeric literals used as unit-typed
// composite-literal elements (struct fields, map values, slice elements).
func checkUnitCompositeLit(p *Pass, lit *ast.CompositeLit) {
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		bl := bareLiteral(v)
		if bl == nil {
			continue
		}
		if u := unitName(p.Info.TypeOf(v)); u != "" {
			p.Reportf(bl.Pos(),
				"bare numeric literal %s used as units.%s; construct the value through internal/units or name it as a typed constant",
				bl.Value, u)
		}
	}
}

// bareLiteral returns the numeric literal e unwraps to, or nil. The
// identities 0 and 1 are exempt: zero values and whole shares carry no
// hidden scale.
func bareLiteral(e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && (un.Op == token.SUB || un.Op == token.ADD) {
		e = ast.Unparen(un.X)
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok || (bl.Kind != token.INT && bl.Kind != token.FLOAT) {
		return nil
	}
	if v := constant.MakeFromLiteral(bl.Value, bl.Kind, 0); v != nil {
		if f, _ := constant.Float64Val(constant.ToFloat(v)); f == 0 || f == 1 {
			return nil
		}
	}
	return bl
}

// checkBoundaryLit flags a Fraction that reaches a serialization boundary
// (the same boundary shapes finiteflow recognizes) without passing through
// a Finite/clamp guard or a units constructor.
func checkBoundaryLit(p *Pass, lit *ast.CompositeLit) {
	t := p.Info.TypeOf(lit)
	if t == nil || !jsonBoundary(t) {
		return
	}
	for _, el := range lit.Elts {
		v := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if bad := unguardedFraction(p.Info, v); bad != nil {
			p.Reportf(bad.Pos(),
				"units.Fraction value reaches the %s serialization boundary without a Finite/clamp guard",
				boundaryName(t))
		}
	}
}

// unguardedFraction returns the first non-constant Fraction-typed
// expression in e that no guard or units call sanctions, or nil. Guards are
// checked before types so that f.Clamp01() and f.Clamped() count as guarded
// even though the receiver (and, for Clamped, the result) is a Fraction.
func unguardedFraction(info *types.Info, e ast.Expr) ast.Expr {
	var bad ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if guardCall(info, call) || unitsCall(info, call) {
				return false // everything inside is sanctioned
			}
		}
		if ex, ok := n.(ast.Expr); ok {
			if tv, found := info.Types[ex]; found && tv.Value == nil &&
				unitName(info.TypeOf(ex)) == "Fraction" {
				bad = ex
				return false
			}
		}
		return true
	})
	return bad
}
