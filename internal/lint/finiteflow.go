package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FiniteFlow flags float divisions whose results are placed directly into a
// serialization boundary — a struct literal with json tags, or a
// map[string]any / map[string]float64 literal (trace args) — without passing
// through a clamp. encoding/json rejects NaN and ±Inf with an error, so an
// unguarded ratio (zero DRAM transactions, zero elapsed time) would abort an
// export at runtime. Recognized guards: wrapping the expression in
// telemetry.Finite (any function named Finite) or a clamp* helper, or
// flooring the denominator with math.Max / the max built-in / a positive
// constant.
var FiniteFlow = &Analyzer{
	Name: "finiteflow",
	Doc: "forbid unclamped float divisions inside JSON/trace boundary " +
		"literals in model packages",
	ScopeDoc: "model packages (gpu, trace, report, telemetry, stats, roofline, core, units)",
	Scope:    modelScope,
	Run:      runFiniteFlow,
}

func runFiniteFlow(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(lit)
			if t == nil || !jsonBoundary(t) {
				return true
			}
			for _, el := range lit.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if div := unguardedDivision(p.Info, v); div != nil {
					p.Reportf(div.Pos(), "float division reaches the %s serialization boundary without a Finite/clamp guard; NaN or ±Inf would make encoding/json fail",
						boundaryName(t))
				}
			}
			return true
		})
	}
}

// jsonBoundary reports whether a composite literal of type t feeds
// serialization: a struct with json-tagged fields, or a string-keyed map of
// any/float values (the shape of telemetry args).
func jsonBoundary(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if strings.Contains(u.Tag(i), `json:"`) {
				return true
			}
		}
	case *types.Map:
		key, ok := u.Key().Underlying().(*types.Basic)
		if !ok || key.Kind() != types.String {
			return false
		}
		if iface, ok := u.Elem().Underlying().(*types.Interface); ok {
			return iface.Empty()
		}
		return isFloat(u.Elem())
	}
	return false
}

func boundaryName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// unguardedDivision returns the first floating-point division in e that is
// not protected by a clamp, or nil.
func unguardedDivision(info *types.Info, e ast.Expr) ast.Expr {
	var bad ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if guardCall(info, n) {
				return false // everything inside a clamp is sanctioned
			}
		case *ast.BinaryExpr:
			if n.Op == token.QUO && isFloat(info.TypeOf(n)) && !safeDenominator(info, n.Y) {
				bad = n
				return false
			}
		}
		return true
	})
	return bad
}

// guardCall reports whether call invokes a clamp helper: any function named
// Finite (telemetry.Finite and friends) or whose name starts with "clamp".
func guardCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	return fn.Name() == "Finite" || strings.HasPrefix(fn.Name(), "clamp") ||
		strings.HasPrefix(fn.Name(), "Clamp")
}

// safeDenominator reports whether the divisor cannot be zero or NaN: a
// positive constant, or a floor through math.Max / the max built-in.
func safeDenominator(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if f, _ := constant.Float64Val(constant.ToFloat(tv.Value)); f > 0 {
			return true
		}
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "max" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Max"
}
