// Package lint implements cactuslint, the repository's custom static
// analysis. The value of this reproduction is that every figure and table is
// regenerated bit-for-bit from a deterministic device model; the analyzers
// here turn the invariants that make that true — no wall-clock or global
// randomness in model code, no map-iteration order leaking into emitted
// output, no non-finite float reaching a JSON boundary unclamped, all
// modeled GPU work routed through gpu.Device.Launch, no silently dropped
// errors on stores/sinks/closers — into machine-checked rules instead of
// reviewer vigilance.
//
// The driver is dependency-free: packages are parsed with go/parser and
// type-checked with go/types against export data produced by `go list
// -export` (see load.go). Findings print as "file:line: analyzer: message";
// a finding can be suppressed with a comment on the same line or the line
// above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line: analyzer: message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path; analyzer scopes match against it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one invariant checker. An analyzer is either per-package
// (Run) or whole-program (RunProgram): per-package analyzers see one
// package at a time, whole-program analyzers see every in-scope package at
// once and can follow the call graph across package boundaries.
type Analyzer struct {
	Name string
	Doc  string
	// ScopeDoc is the human-readable scope for `cactuslint -list`; empty
	// means "all packages".
	ScopeDoc string
	// Scope restricts the analyzer to packages for which it returns true.
	// A nil Scope means every package.
	Scope func(pkgPath string) bool
	// NeedsCallGraph requests the whole-program call graph; Run builds it
	// once per invocation and shares it across every analyzer that asks.
	NeedsCallGraph bool
	// Run is the per-package entry point; nil for whole-program analyzers.
	Run func(*Pass)
	// RunProgram is the whole-program entry point, called once with every
	// in-scope package; nil for per-package analyzers.
	RunProgram func(*ProgramPass)
}

// Pass couples an analyzer with one package for a single run.
type Pass struct {
	*Package
	// Graph is the whole-program call graph, non-nil iff the analyzer
	// declared NeedsCallGraph. It spans every analyzed package, not just
	// this one.
	Graph    *callgraph.Graph
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass couples a whole-program analyzer with every in-scope package
// for a single run.
type ProgramPass struct {
	// Pkgs are the packages the analyzer's Scope admits, in path order.
	Pkgs []*Package
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Graph is the whole-program call graph (covering all packages, even
	// out-of-scope ones), non-nil iff the analyzer declared
	// NeedsCallGraph.
	Graph    *callgraph.Graph
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns every cactuslint analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism, FiniteFlow, LaunchPath, ErrCheckStrict, UnitSafety,
		MutexGuard, CtxFlow, AtomicSafe, LockOrder, GoLife,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// modelPackages are the packages whose outputs feed the paper's figures and
// tables and therefore must be bit-for-bit deterministic. nodeterminism and
// finiteflow apply here (and to subpackages).
var modelPackages = []string{
	"repro/internal/gpu",
	"repro/internal/trace",
	"repro/internal/report",
	"repro/internal/telemetry",
	"repro/internal/stats",
	"repro/internal/roofline",
	"repro/internal/core",
	"repro/internal/units",
}

func modelScope(path string) bool {
	for _, p := range modelPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// gpuPackage reports whether path is the device-model package (the one
// place allowed to construct launch results and compute occupancy).
func gpuPackage(path string) bool {
	return path == "gpu" || strings.HasSuffix(path, "/gpu")
}

// Run applies the analyzers to the packages, filters suppressed findings,
// and returns the rest sorted by position. When any requested analyzer
// declares NeedsCallGraph the whole-program call graph is built exactly
// once, over every package, and shared.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	graph := sharedGraph(pkgs, analyzers)
	// Suppressions are collected globally so whole-program findings filter
	// the same way per-package ones do.
	supAll := make(map[string]map[int][]directive)
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		all = append(all, malformed...)
		for file, lines := range sup {
			supAll[file] = lines
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			var fs []Finding
			pass := &Pass{Package: pkg, analyzer: a, findings: &fs}
			if a.NeedsCallGraph {
				pass.Graph = graph
			}
			a.Run(pass)
			for _, f := range fs {
				if !suppressed(supAll, f) {
					all = append(all, f)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		var scoped []*Package
		for _, pkg := range pkgs {
			if a.Scope == nil || a.Scope(pkg.Path) {
				scoped = append(scoped, pkg)
			}
		}
		if len(scoped) == 0 {
			continue
		}
		var fs []Finding
		pass := &ProgramPass{Pkgs: scoped, Fset: scoped[0].Fset, analyzer: a, findings: &fs}
		if a.NeedsCallGraph {
			pass.Graph = graph
		}
		a.RunProgram(pass)
		for _, f := range fs {
			if !suppressed(supAll, f) {
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

// sharedGraph builds the whole-program call graph once per Run when any
// requested analyzer asks for it, or returns nil.
func sharedGraph(pkgs []*Package, analyzers []*Analyzer) *callgraph.Graph {
	needed := false
	for _, a := range analyzers {
		if a.NeedsCallGraph {
			needed = true
			break
		}
	}
	if !needed || len(pkgs) == 0 {
		return nil
	}
	srcs := make([]callgraph.Source, len(pkgs))
	for i, p := range pkgs {
		srcs[i] = callgraph.Source{Path: p.Path, Files: p.Files, Info: p.Info, Pkg: p.Types}
	}
	return callgraph.Build(pkgs[0].Fset, srcs)
}

// ignorePrefix opens a suppression directive.
const ignorePrefix = "lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string
	reason   string
}

// suppressions collects the //lint:ignore directives of a package, indexed
// by file and line, and reports malformed ones as findings.
func suppressions(pkg *Package) (map[string]map[int][]directive, []Finding) {
	sup := make(map[string]map[int][]directive)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos: pos, Analyzer: "lint",
						Message: `malformed suppression: want "//lint:ignore <analyzer> <reason>"`,
					})
					continue
				}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = make(map[int][]directive)
				}
				sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line],
					directive{analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}
	return sup, malformed
}

// Suppression is one well-formed //lint:ignore directive, for the
// cactuslint -suppressions inventory.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// String renders the suppression as "file:line: analyzer: reason".
func (s Suppression) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", s.Pos.Filename, s.Pos.Line, s.Analyzer, s.Reason)
}

// CollectSuppressions inventories every well-formed //lint:ignore directive
// of the packages, sorted by file, line, and analyzer. Malformed directives
// are excluded — Run already reports those as findings. The list is the
// input to the suppression budget: CI pins its length so the escape hatch
// cannot widen silently.
func CollectSuppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		sup, _ := suppressions(pkg)
		for file, lines := range sup {
			for line, ds := range lines {
				for _, d := range ds {
					out = append(out, Suppression{
						Pos:      token.Position{Filename: file, Line: line},
						Analyzer: d.analyzer,
						Reason:   d.reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressed reports whether a directive on the finding's line or the line
// above names the finding's analyzer.
func suppressed(sup map[string]map[int][]directive, f Finding) bool {
	lines := sup[f.Pos.Filename]
	for _, d := range append(lines[f.Pos.Line], lines[f.Pos.Line-1]...) {
		if d.analyzer == f.Analyzer {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

var errorType = types.Universe.Lookup("error").Type()

// recvString renders a method's receiver type for messages ("*os.File").
func recvString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name()
		}
		return ""
	}
	return types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
}
