// Package lint implements cactuslint, the repository's custom static
// analysis. The value of this reproduction is that every figure and table is
// regenerated bit-for-bit from a deterministic device model; the analyzers
// here turn the invariants that make that true — no wall-clock or global
// randomness in model code, no map-iteration order leaking into emitted
// output, no non-finite float reaching a JSON boundary unclamped, all
// modeled GPU work routed through gpu.Device.Launch, no silently dropped
// errors on stores/sinks/closers — into machine-checked rules instead of
// reviewer vigilance.
//
// The driver is dependency-free: packages are parsed with go/parser and
// type-checked with go/types against export data produced by `go list
// -export` (see load.go). Findings print as "file:line: analyzer: message";
// a finding can be suppressed with a comment on the same line or the line
// above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical "file:line: analyzer: message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path; analyzer scopes match against it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	// Scope restricts the analyzer to packages for which it returns true.
	// A nil Scope means every package.
	Scope func(pkgPath string) bool
	Run   func(*Pass)
}

// Pass couples an analyzer with one package for a single run.
type Pass struct {
	*Package
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns every cactuslint analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism, FiniteFlow, LaunchPath, ErrCheckStrict, UnitSafety,
		MutexGuard, CtxFlow, AtomicSafe,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// modelPackages are the packages whose outputs feed the paper's figures and
// tables and therefore must be bit-for-bit deterministic. nodeterminism and
// finiteflow apply here (and to subpackages).
var modelPackages = []string{
	"repro/internal/gpu",
	"repro/internal/trace",
	"repro/internal/report",
	"repro/internal/telemetry",
	"repro/internal/stats",
	"repro/internal/roofline",
	"repro/internal/core",
	"repro/internal/units",
}

func modelScope(path string) bool {
	for _, p := range modelPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// gpuPackage reports whether path is the device-model package (the one
// place allowed to construct launch results and compute occupancy).
func gpuPackage(path string) bool {
	return path == "gpu" || strings.HasSuffix(path, "/gpu")
}

// Run applies the analyzers to the packages, filters suppressed findings,
// and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		sup, malformed := suppressions(pkg)
		all = append(all, malformed...)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			var fs []Finding
			a.Run(&Pass{Package: pkg, analyzer: a, findings: &fs})
			for _, f := range fs {
				if !suppressed(sup, f) {
					all = append(all, f)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return all
}

// ignorePrefix opens a suppression directive.
const ignorePrefix = "lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzer string
	reason   string
}

// suppressions collects the //lint:ignore directives of a package, indexed
// by file and line, and reports malformed ones as findings.
func suppressions(pkg *Package) (map[string]map[int][]directive, []Finding) {
	sup := make(map[string]map[int][]directive)
	var malformed []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						Pos: pos, Analyzer: "lint",
						Message: `malformed suppression: want "//lint:ignore <analyzer> <reason>"`,
					})
					continue
				}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = make(map[int][]directive)
				}
				sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line],
					directive{analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}
	return sup, malformed
}

// Suppression is one well-formed //lint:ignore directive, for the
// cactuslint -suppressions inventory.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// String renders the suppression as "file:line: analyzer: reason".
func (s Suppression) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", s.Pos.Filename, s.Pos.Line, s.Analyzer, s.Reason)
}

// CollectSuppressions inventories every well-formed //lint:ignore directive
// of the packages, sorted by file, line, and analyzer. Malformed directives
// are excluded — Run already reports those as findings. The list is the
// input to the suppression budget: CI pins its length so the escape hatch
// cannot widen silently.
func CollectSuppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		sup, _ := suppressions(pkg)
		for file, lines := range sup {
			for line, ds := range lines {
				for _, d := range ds {
					out = append(out, Suppression{
						Pos:      token.Position{Filename: file, Line: line},
						Analyzer: d.analyzer,
						Reason:   d.reason,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressed reports whether a directive on the finding's line or the line
// above names the finding's analyzer.
func suppressed(sup map[string]map[int][]directive, f Finding) bool {
	lines := sup[f.Pos.Filename]
	for _, d := range append(lines[f.Pos.Line], lines[f.Pos.Line-1]...) {
		if d.analyzer == f.Analyzer {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function values, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

var errorType = types.Universe.Lookup("error").Type()

// recvString renders a method's receiver type for messages ("*os.File").
func recvString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name()
		}
		return ""
	}
	return types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
}
