package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckStrict flags statements that silently drop the error result of
// calls whose failure loses data: io.Closer Close (an os.File close is when
// buffered writes actually hit the disk), Flush, cache Store, encoder
// Encode, report Render/Export, and Write* sink methods. An explicit
// `_ = f.Close()` is an acknowledged drop and is not flagged; writers that
// cannot fail (strings.Builder, bytes.Buffer) are exempt.
var ErrCheckStrict = &Analyzer{
	Name: "errcheckstrict",
	Doc: "forbid silently dropped errors on closers, flushes, cache " +
		"stores, and sink writes",
	Run: runErrCheckStrict,
}

// strictNames are the exact callee names checked; names starting with
// "Write" are checked too.
var strictNames = map[string]bool{
	"Close": true, "Flush": true, "Store": true, "Encode": true,
	"Render": true, "Export": true,
}

func strictName(name string) bool {
	return strictNames[name] || strings.HasPrefix(name, "Write")
}

// neverFailingRecv reports receivers whose Write/WriteString error results
// are documented to always be nil.
func neverFailingRecv(sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

func runErrCheckStrict(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var deferred bool
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = n.Call, true
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !strictName(fn.Name()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !types.Identical(last, errorType) || neverFailingRecv(sig) {
				return true
			}
			what := recvString(fn) + "." + fn.Name()
			if deferred {
				p.Reportf(call.Pos(), "deferred %s drops its error; close in a named helper or wrap: defer func() { _ = x.%s() }() with a reason", what, fn.Name())
			} else {
				p.Reportf(call.Pos(), "%s's error result is silently dropped; handle it or assign to _ explicitly", what)
			}
			return true
		})
	}
}
