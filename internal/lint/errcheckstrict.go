package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheckStrict flags statements that silently drop the error result of
// calls whose failure loses data: io.Closer Close (an os.File close is when
// buffered writes actually hit the disk), Flush, cache Store, encoder
// Encode, report Render/Export, and Write* sink methods. An explicit
// `_ = f.Close()` is an acknowledged drop and is not flagged; writers that
// cannot fail (strings.Builder, bytes.Buffer) are exempt.
//
// On http.ResponseWriter paths the blank-assign escape hatch is closed:
// `_, _ = w.Write(body)` (or a blank-assigned encoder/flusher call whose
// argument chain mentions a ResponseWriter) discards the one signal that a
// client never received its response. A serving process must count those —
// a spike in failed response writes is an operational symptom, not noise —
// so the drop is flagged even when explicit.
var ErrCheckStrict = &Analyzer{
	Name: "errcheckstrict",
	Doc: "forbid silently dropped errors on closers, flushes, cache " +
		"stores, and sink writes (including blank-assigned ResponseWriter writes)",
	ScopeDoc: "all packages",
	Run:      runErrCheckStrict,
}

// strictNames are the exact callee names checked; names starting with
// "Write" are checked too.
var strictNames = map[string]bool{
	"Close": true, "Flush": true, "Store": true, "Encode": true,
	"Render": true, "Export": true,
}

func strictName(name string) bool {
	return strictNames[name] || strings.HasPrefix(name, "Write")
}

// neverFailingRecv reports receivers whose Write/WriteString error results
// are documented to always be nil.
func neverFailingRecv(sig *types.Signature) bool {
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// isResponseWriter reports whether t is the net/http.ResponseWriter
// interface.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}

// mentionsResponseWriter reports whether any expression inside the call
// (receiver chain included) is typed http.ResponseWriter — w.Write(b),
// json.NewEncoder(w).Encode(v), s.reg.WritePrometheus(w).
func mentionsResponseWriter(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if t := info.TypeOf(e); t != nil && isResponseWriter(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// blankAssignedCall returns the call whose results stmt drops entirely into
// blank identifiers (`_ = c()`, `_, _ = c()`), or nil.
func blankAssignedCall(as *ast.AssignStmt) *ast.CallExpr {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil
		}
	}
	return call
}

func runErrCheckStrict(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var deferred, blankRW bool
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = n.Call, true
			case *ast.GoStmt:
				call = n.Call
			case *ast.AssignStmt:
				// Blank assignment is the sanctioned acknowledgment —
				// except on ResponseWriter paths, where the failed write
				// must be counted.
				if c := blankAssignedCall(n); c != nil && mentionsResponseWriter(p.Info, c) {
					call, blankRW = c, true
				}
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !strictName(fn.Name()) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !types.Identical(last, errorType) || neverFailingRecv(sig) {
				return true
			}
			what := recvString(fn) + "." + fn.Name()
			switch {
			case deferred:
				p.Reportf(call.Pos(), "deferred %s drops its error; close in a named helper or wrap: defer func() { _ = x.%s() }() with a reason", what, fn.Name())
			case blankRW:
				p.Reportf(call.Pos(), "%s's error result is blank-assigned on a ResponseWriter path; a failed response write is an operational signal — count it", what)
			default:
				p.Reportf(call.Pos(), "%s's error result is silently dropped; handle it or assign to _ explicitly", what)
			}
			return true
		})
	}
}
