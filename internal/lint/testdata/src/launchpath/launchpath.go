// Package fixture exercises the launchpath analyzer: fabricating the
// model's result types outside internal/gpu — composite literals, field
// writes, zero-value escapes, and laundering through helpers or
// interface dispatch — carries // want comments; results genuinely
// derived from Device.Launch are false-positive coverage.
package fixture

import "gpu"

// fabricate builds a modeled result by hand, bypassing the timing model.
func fabricate() gpu.LaunchResult {
	return gpu.LaunchResult{Name: "fake", Time: 1} // want "Device.Launch"
}

// handOcc computes occupancy outside the device model.
func handOcc() gpu.Occupancy {
	return gpu.Occupancy{BlocksPerSM: 16, WarpsPerSM: 32} // want "occupancy is computed by Device.Launch"
}

// launch obtains results the sanctioned way.
func launch(d *gpu.Device) (gpu.LaunchResult, error) {
	return d.Launch("k")
}

// LaunchResult is a like-named local type: not the model's, not flagged.
type LaunchResult struct{ Name string }

func local() LaunchResult { return LaunchResult{Name: "mine"} }

// suppressed shows a suppressed, reasoned exception.
func suppressed() gpu.LaunchResult {
	//lint:ignore launchpath fixture exercising suppression
	return gpu.LaunchResult{Name: "golden"}
}

// helperFab launders a result without a composite literal — the hole
// the old package-position check left open.
func helperFab() gpu.LaunchResult {
	var r gpu.LaunchResult
	r.Time = 2 // want "field write to gpu.LaunchResult"
	return r
}

// escape re-exports helperFab's fabrication through a plain call.
func escape() gpu.LaunchResult {
	return helperFab() // want "fabricated outside internal/gpu by helperFab"
}

// zeroOnly lets an untouched zero value escape as if it were modeled.
func zeroOnly() gpu.Occupancy {
	var o gpu.Occupancy
	return o // want "zero-value gpu.Occupancy escapes"
}

// bump mutates a modeled result in place.
func bump(r *gpu.LaunchResult) {
	r.Time++ // want "field write to gpu.LaunchResult"
}

// passthrough derives its result from the device: clean.
func passthrough(d *gpu.Device) gpu.LaunchResult {
	r, _ := d.Launch("k")
	return r
}

// maxTime selects among modeled results; best is wholly reassigned from
// modeled values, so its zero declaration is not an escape.
func maxTime(rs []gpu.LaunchResult) gpu.LaunchResult {
	var best gpu.LaunchResult
	for _, r := range rs {
		if r.Time > best.Time {
			best = r
		}
	}
	return best
}

// copyOut copies modeled results into a fresh slice: make+copy is clean.
func copyOut(rs []gpu.LaunchResult) []gpu.LaunchResult {
	out := make([]gpu.LaunchResult, len(rs))
	copy(out, rs)
	return out
}

// provider dispatch: the cascade resolves interface calls through the
// call graph, so a fabricating implementation taints viaIface.
type provider interface{ result() gpu.LaunchResult }

type forger struct{}

func (forger) result() gpu.LaunchResult {
	var r gpu.LaunchResult
	r.Name = "forged" // want "field write to gpu.LaunchResult"
	return r
}

func viaIface(p provider) gpu.LaunchResult {
	return p.result() // want "fabricated outside internal/gpu by"
}

var _ = []any{fabricate, handOcc, launch, local, suppressed, helperFab,
	escape, zeroOnly, bump, passthrough, maxTime, copyOut, viaIface}
