// Package fixture exercises the launchpath analyzer: constructing the
// model's result types outside internal/gpu carries // want comments.
package fixture

import "gpu"

// fabricate builds a modeled result by hand, bypassing the timing model.
func fabricate() gpu.LaunchResult {
	return gpu.LaunchResult{Name: "fake", Time: 1} // want "Device.Launch"
}

// handOcc computes occupancy outside the device model.
func handOcc() gpu.Occupancy {
	return gpu.Occupancy{BlocksPerSM: 16, WarpsPerSM: 32} // want "occupancy is computed by Device.Launch"
}

// launch obtains results the sanctioned way.
func launch(d *gpu.Device) (gpu.LaunchResult, error) {
	return d.Launch("k")
}

// LaunchResult is a like-named local type: not the model's, not flagged.
type LaunchResult struct{ Name string }

func local() LaunchResult { return LaunchResult{Name: "mine"} }

// suppressed shows a suppressed, reasoned exception.
func suppressed() gpu.LaunchResult {
	//lint:ignore launchpath fixture exercising suppression
	return gpu.LaunchResult{Name: "golden"}
}

var _ = []any{fabricate, handOcc, launch, local, suppressed}
