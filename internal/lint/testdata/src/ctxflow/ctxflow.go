// Package fixture exercises the ctxflow analyzer: fresh, nil, and dropped
// contexts in handler paths carry // want comments, the rest are
// false-positive coverage.
package fixture

import (
	"context"
	"net/http"
	"time"
)

// engine mirrors core.Engine's blocking surface.
type engine struct{}

func (e *engine) Characterize(ctx context.Context, name string) error { return ctx.Err() }

var eng engine

// freshInHandler constructs a fresh context on a blocking path.
func freshInHandler(w http.ResponseWriter, r *http.Request) {
	_ = eng.Characterize(context.Background(), "sgemm") // want "context.Background"
}

// todoInHandler is the same failure wearing its placeholder name.
func todoInHandler() {
	_ = eng.Characterize(context.TODO(), "sgemm") // want "context.TODO"
}

// nilCtx passes nil where a context is required: a latent panic.
func nilCtx(ctx context.Context) {
	_ = eng.Characterize(nil, "sgemm") // want "nil passed as the context.Context argument"
}

// threaded passes the request context straight through: the correct shape.
func threaded(w http.ResponseWriter, r *http.Request) {
	_ = eng.Characterize(r.Context(), "sgemm")
}

// derived threads a deadline-wrapped request context: still derived, still
// correct.
func derived(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = eng.Characterize(ctx, "sgemm")
}

// rethreaded derives in two hops through locals, exercising the fixpoint.
func rethreaded(ctx context.Context) {
	inner := ctx
	scoped, cancel := context.WithCancel(inner)
	defer cancel()
	_ = eng.Characterize(scoped, "sgemm")
}

// foreign is a package-level context no request owns.
var foreign = func() context.Context {
	//lint:ignore ctxflow fixture plumbing: build one foreign context to drop
	return context.Background()
}()

// dropped has a context parameter but sends an unrelated context
// downstream: the in-scope deadline is silently discarded.
func dropped(ctx context.Context) {
	_ = eng.Characterize(foreign, "sgemm") // want "request context is dropped"
}

// detachedClosure detaches inside a closure with no context parameter of
// its own — the singleflight-leader pattern. The closure is exempt from the
// derivation rule, and the deliberate Background carries a reasoned
// suppression.
func detachedClosure(ctx context.Context) {
	go func() {
		//lint:ignore ctxflow the study belongs to every future asker, not to this requester
		_ = eng.Characterize(context.Background(), "sgemm")
	}()
}

// noSources has no context of its own: only rules 1 and 2 apply, so passing
// a stored context through is fine.
func noSources() {
	_ = eng.Characterize(foreign, "sgemm")
}

var _ = []any{freshInHandler, todoInHandler, nilCtx, threaded, derived,
	rethreaded, dropped, detachedClosure, noSources}
