// Package fixture exercises the golife analyzer: go statements with no
// statically visible join or cancellation path carry // want comments;
// WaitGroup joins, spawner-received channels (captured and through
// parameters), ctx-derived exits, channel ranges, and unresolved targets
// are false-positive coverage, and one deliberate detachment carries a
// //lint:ignore suppression.
package fixture

import (
	"context"
	"sync"
)

// detach spawns a worker nothing ever joins or cancels.
func detach() {
	go logForever() // want "no statically visible join or cancellation path"
}

func logForever() {
	for {
	}
}

// fireAndForget sends on a channel the spawner never receives on: the
// send is not join evidence for THIS spawner.
func fireAndForget(ch chan int) {
	go func() { // want "no statically visible join or cancellation path"
		ch <- 1
	}()
}

// joinWithWG is the canonical join: Add before, Done inside, Wait after.
func joinWithWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// joinWithChan closes a captured channel the spawner receives on.
func joinWithChan() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// sendToSpawner signals completion by sending, not closing.
func sendToSpawner() {
	res := make(chan int, 1)
	go func() {
		res <- 42
	}()
	<-res
}

// cancelWithCtx exits when the spawner's context is cancelled.
func cancelWithCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// rangeWorker drains a channel: the feeder's close is the exit path.
func rangeWorker(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// spawnNamed joins a named callee through parameter translation: signal
// closes its parameter, which is the argument the spawner receives on.
func spawnNamed() {
	done := make(chan struct{})
	go signal(done)
	<-done
}

func signal(d chan struct{}) {
	close(d)
}

// spawnWorker finds its cancellation path interprocedurally: runLoop
// shows nothing, but pump — reachable from it — selects on ctx.Done().
func spawnWorker(ctx context.Context) {
	go runLoop(ctx)
}

func runLoop(ctx context.Context) {
	pump(ctx)
}

func pump(ctx context.Context) {
	select {
	case <-ctx.Done():
	}
}

// spawnCallback's target is a function value with no visible binding:
// unknown is not evidence of a leak, so it is accepted.
func spawnCallback(fn func()) {
	go fn()
}

// detachedOnPurpose documents a goroutine that must outlive its spawner.
func detachedOnPurpose() {
	//lint:ignore golife fixture coverage: the janitor deliberately outlives its spawner and exits with the process
	go logForever()
}

var _ = []any{detach, fireAndForget, joinWithWG, joinWithChan, sendToSpawner,
	cancelWithCtx, rangeWorker, spawnNamed, spawnWorker, spawnCallback,
	detachedOnPurpose}
