// Package fixture exercises the nodeterminism analyzer: true positives
// carry // want comments, the rest are false-positive coverage.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// wallClock reads the wall clock in model code.
func wallClock() float64 {
	start := time.Now()                // want "time.Now"
	return time.Since(start).Seconds() // want "time.Since"
}

// suppressedWallClock shows a suppressed, reasoned exception.
func suppressedWallClock() time.Time {
	//lint:ignore nodeterminism fixture exercising suppression
	return time.Now()
}

// globalRand draws from the process-global random source.
func globalRand() int {
	return rand.Intn(10) // want "global random source"
}

// seededRand uses a seeded generator: deterministic, allowed.
func seededRand() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// emitUnsorted lets map iteration order reach the output stream.
func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// emitSorted collects and sorts keys first: the deterministic idiom.
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

var _ = []any{wallClock, suppressedWallClock, globalRand, seededRand, emitUnsorted, emitSorted}
