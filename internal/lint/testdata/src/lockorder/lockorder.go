// Package fixture exercises the lockorder analyzer: lock-order cycles —
// direct ABBA pairs and same-class self-deadlocks through calls — carry
// // want comments; consistent orders, sibling-instance nesting, early
// unlocks, and goroutine spawns are false-positive coverage, and one
// reviewed cycle carries a //lint:ignore suppression.
package fixture

import "sync"

// accounts and ledger deadlock: transferAB takes accounts.mu then
// ledger.mu, transferBA takes them in the opposite order.
type accounts struct {
	mu  sync.Mutex
	bal map[string]int
}

type ledger struct {
	mu      sync.Mutex
	entries []string
}

func transferAB(a *accounts, l *ledger) {
	a.mu.Lock()
	defer a.mu.Unlock()
	l.mu.Lock() // want "potential deadlock: lock-order cycle fixture.accounts.mu -> fixture.ledger.mu -> fixture.accounts.mu"
	defer l.mu.Unlock()
	l.entries = append(l.entries, "ab")
}

func transferBA(a *accounts, l *ledger) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bal["x"]++
}

// counter self-deadlocks: incr calls total while holding the same
// class of lock total acquires — guaranteed, not just potential, for a
// plain Mutex.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += c.total() // want "potential deadlock: lock-order cycle fixture.counter.mu -> fixture.counter.mu"
}

func (c *counter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ordered and inner are always taken in the same order: no cycle.
type ordered struct{ mu sync.Mutex }
type inner struct{ mu sync.Mutex }

func consistent1(o *ordered, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	defer i.mu.Unlock()
}

func consistent2(o *ordered, i *inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	defer i.mu.Unlock()
}

// shard siblings: two instances of the same class locked in sequence in
// one body is the shard pattern, not recursion — no finding.
type shard struct {
	mu sync.Mutex
	m  map[string]int
}

func mergeShards(a, b *shard) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, v := range b.m {
		a.m[k] += v
	}
}

// q1/q2 are only ever held one at a time — the early unlock ends the
// held interval, so the opposite textual orders never form an edge.
type q1 struct{ mu sync.Mutex }
type q2 struct{ mu sync.Mutex }

func seqAB(x *q1, y *q2) {
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}

func seqBA(x *q1, y *q2) {
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

// spawnOpposite holds q1.mu while spawning a goroutine that takes
// q2.mu then q1.mu — the goroutine acquires on its own schedule, so the
// spawn is not "while holding" and no cycle forms.
func spawnOpposite(x *q1, y *q2) {
	x.mu.Lock()
	defer x.mu.Unlock()
	go lockQ2ThenQ1(x, y)
}

func lockQ2ThenQ1(x *q1, y *q2) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}

// mcache/mstore form a real cycle that has been reviewed and accepted:
// the suppression documents why and is counted by the budget test.
type mcache struct{ mu sync.Mutex }
type mstore struct{ mu sync.Mutex }

func fillCache(c *mcache, s *mstore) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockorder fixture coverage for suppressing a reviewed cycle; both paths are guarded by a single caller in this fixture's pretend world
	s.mu.Lock()
	s.mu.Unlock()
}

func invalidate(c *mcache, s *mstore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

var _ = []any{transferAB, transferBA, (*counter).incr, consistent1, consistent2,
	mergeShards, seqAB, seqBA, spawnOpposite, fillCache, invalidate}
