// Package fixture exercises the mutexguard analyzer: accesses to
// `guarded by <mu>`-annotated fields outside the named lock carry // want
// comments, the rest are false-positive coverage.
package fixture

import "sync"

// pool mirrors the repo's annotated concurrent structs.
type pool struct {
	mu      sync.Mutex
	entries map[string]int // guarded by mu
	closed  bool           // guarded by mu
	// capacity is immutable after construction; unannotated fields are
	// never checked.
	capacity int
}

// registry exercises RWMutex and doc-comment annotations.
type registry struct {
	mu sync.RWMutex
	// values holds the live counters.
	//
	// guarded by mu
	values map[string]int64
}

// badAnnotation carries malformed annotations, each reported at its field.
type badAnnotation struct {
	gate    chan struct{}
	state   int // guarded by gate -- want "not a sync.Mutex"
	absent  int // guarded by nobody -- want "not a field"
	regular int
}

// locked accesses under the named mutex: the canonical pattern.
func (p *pool) get(key string) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.entries[key]
	return v, ok
}

// rlocked accesses under an RLock, which also counts as acquisition.
func (r *registry) snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.values))
	for k, v := range r.values {
		out[k] = v
	}
	return out
}

// unlocked reads an annotated field with no acquisition in sight.
func (p *pool) unlocked() bool {
	return p.closed // want "never acquires p.mu"
}

// wrongInstance locks one pool but touches another: the receiver
// expressions differ, so the acquisition does not sanction the access.
func wrongInstance(a, b *pool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(b.entries) // want "never acquires b.mu"
}

// addLocked follows the *locked naming convention: the caller holds the
// lock, so accesses inside are sanctioned.
func (p *pool) addLocked(key string, v int) {
	p.entries[key] = v
}

// add is the caller that takes the lock and delegates.
func (p *pool) add(key string, v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addLocked(key, v)
}

// closureDetached accesses a guarded field inside a goroutine closure that
// never locks: closures are their own scope, so the enclosing function's
// Lock does not sanction them.
func (p *pool) closureDetached() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.closed = true // want "never acquires p.mu"
	}()
}

// closureLocking locks inside the closure itself: sanctioned.
func (p *pool) closureLocking() {
	go func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
	}()
}

// rangeReceiver exercises acquisition through a non-trivial base
// expression (the range variable), mirroring shardedLRU.len.
func sum(pools []*pool) int {
	n := 0
	for _, p := range pools {
		p.mu.Lock()
		n += len(p.entries)
		p.mu.Unlock()
	}
	return n
}

// suppressed shows a suppressed, reasoned exception: an init-before-share
// write during construction.
func newPool() *pool {
	p := &pool{capacity: 8}
	//lint:ignore mutexguard construction precedes sharing; no other goroutine can hold the lock yet
	p.entries = make(map[string]int)
	return p
}

var _ = []any{(*pool).get, (*registry).snapshot, (*pool).unlocked, wrongInstance,
	(*pool).add, (*pool).closureDetached, (*pool).closureLocking, sum, newPool,
	badAnnotation{}}
