// Package fixture exercises the unitsafety analyzer: implicit dimension
// changes, same-unit products, magic literals, and unguarded Fractions at
// serialization boundaries carry // want comments; the surrounding good
// code pins the analyzer's false-positive behavior.
package fixture

import "units"

// result mirrors a model result struct with unit-typed fields.
type result struct {
	Time  units.Seconds
	Share units.Fraction
}

// rec mirrors a trace record: json tags make it a serialization boundary.
type rec struct {
	Share float64 `json:"share"`
}

// badConv converts cycles to seconds by fiat, skipping the clock rate.
func badConv(c units.Cycles) units.Seconds {
	return units.Seconds(c) // want "changes dimension implicitly"
}

// badMul multiplies two durations; the result is not a duration.
func badMul(a, b units.Seconds) units.Seconds {
	return a * b // want "mixes unit-typed operands"
}

// badQuoAssign divides a duration by a duration in assignment form.
func badQuoAssign(a, b units.Seconds) units.Seconds {
	a /= b // want "mixes unit-typed operands"
	return a
}

// badLit plants a magic number into a unit-typed field and variable.
func badLit() result {
	r := result{Time: 2.5} // want "bare numeric literal 2.5"
	r.Share = 0.7          // want "bare numeric literal 0.7"
	return r
}

// badBoundary sends an unguarded fraction to a json boundary.
func badBoundary(f units.Fraction) rec {
	return rec{Share: float64(f)} // want "without a Finite/clamp guard"
}

// goodConv changes dimension through the sanctioned method.
func goodConv(c units.Cycles, hz float64) units.Seconds { return c.AtRate(hz) }

// goodRatio leaves unit space explicitly before dividing.
func goodRatio(a, b units.Seconds) float64 { return a.Float() / b.Float() }

// goodShare hands the same-unit ratio to a units helper.
func goodShare(a, b units.Seconds) units.Fraction { return units.Share(a, b) }

// goodScaled is a sanctioned same-unit quotient: the conversion out of unit
// space is explicit.
func goodScaled(a, b units.Seconds) float64 { return float64(a / b) }

// goodScale multiplies by an untyped constant: constants are how scale
// factors are meant to be written.
func goodScale(t units.Seconds) units.Seconds { return t * 2 }

// goodFrac multiplies fractions: Fraction is dimensionless and exempt.
func goodFrac(a, b units.Fraction) units.Fraction { return a * b }

// goodIdentity uses the unit-free identities 0 and 1.
func goodIdentity() result { return result{Time: 0, Share: 1} }

// goodBoundary guards the fraction before it is serialized.
func goodBoundary(f units.Fraction) rec { return rec{Share: f.Clamp01()} }

// goodConstructed serializes a constructor-produced fraction.
func goodConstructed(v float64) rec {
	return rec{Share: units.Clamp01Of(v).Clamp01()}
}

// promRow mirrors the metrics registry's snapshot DTO: the row every
// counter and histogram sample passes through on its way to the
// Prometheus text exposition (and the JSON snapshot — the json tags are
// what mark it as a serialization boundary).
type promRow struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// badProm sends an unguarded hit-rate fraction into the exposition row.
func badProm(hitRate units.Fraction) promRow {
	return promRow{Name: "l1_hit_rate", Value: float64(hitRate)} // want "without a Finite/clamp guard"
}

// goodProm guards the fraction before it reaches the exposition row.
func goodProm(hitRate units.Fraction) promRow {
	return promRow{Name: "l1_hit_rate", Value: hitRate.Clamp01()}
}

// suppressedConv shows a suppressed, reasoned exception.
func suppressedConv(c units.Cycles) units.Seconds {
	//lint:ignore unitsafety fixture exercising suppression
	return units.Seconds(c)
}

var _ = []any{badConv, badMul, badQuoAssign, badLit, badBoundary, goodConv,
	goodRatio, goodShare, goodScaled, goodScale, goodFrac, goodIdentity,
	goodBoundary, goodConstructed, badProm, goodProm, suppressedConv}
