// Package fixture exercises the errcheckstrict analyzer: silently dropped
// error results carry // want comments.
package fixture

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
)

type cache struct{}

// Store mirrors the profile cache's store.
func (c *cache) Store(key string) error { return nil }

// drops discards error results implicitly.
func drops(f *os.File, c *cache) {
	f.Close()          // want "silently dropped"
	c.Store("profile") // want "silently dropped"
}

// deferredClose drops the close error of a written file — the classic lost
// ENOSPC.
func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred"
	_, err = f.WriteString("data")
	return err
}

// handled checks the error.
func handled(f *os.File) error {
	return f.Close()
}

// acknowledged drops it explicitly: an audited decision, not flagged.
func acknowledged(f *os.File) {
	_ = f.Close()
}

// builder writes cannot fail; strings.Builder is exempt.
func builder() string {
	var b strings.Builder
	b.WriteString("deterministic")
	return b.String()
}

// suppressed shows a suppressed, reasoned exception.
func suppressed(f *os.File) {
	//lint:ignore errcheckstrict fixture exercising suppression
	f.Close()
}

// blankResponseWrite drops the one signal that the client never received
// its response: on ResponseWriter paths, even the explicit blank assign is
// flagged.
func blankResponseWrite(w http.ResponseWriter, body []byte) {
	_, _ = w.Write(body) // want "blank-assigned on a ResponseWriter path"
}

// blankEncoderToResponse reaches the ResponseWriter through an encoder
// chain; the mention is in the receiver, not the arguments.
func blankEncoderToResponse(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v) // want "blank-assigned on a ResponseWriter path"
}

// countedResponseWrite handles the error — the expected shape.
func countedResponseWrite(w http.ResponseWriter, body []byte, errs *int) {
	if _, err := w.Write(body); err != nil {
		*errs++
	}
}

// blankFileWrite is NOT on a ResponseWriter path: the explicit blank assign
// stays an acknowledged drop.
func blankFileWrite(f *os.File, body []byte) {
	_, _ = f.Write(body)
}

var _ = []any{drops, deferredClose, handled, acknowledged, builder, suppressed,
	blankResponseWrite, blankEncoderToResponse, countedResponseWrite, blankFileWrite}
