// Package fixture exercises the errcheckstrict analyzer: silently dropped
// error results carry // want comments.
package fixture

import (
	"os"
	"strings"
)

type cache struct{}

// Store mirrors the profile cache's store.
func (c *cache) Store(key string) error { return nil }

// drops discards error results implicitly.
func drops(f *os.File, c *cache) {
	f.Close()          // want "silently dropped"
	c.Store("profile") // want "silently dropped"
}

// deferredClose drops the close error of a written file — the classic lost
// ENOSPC.
func deferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred"
	_, err = f.WriteString("data")
	return err
}

// handled checks the error.
func handled(f *os.File) error {
	return f.Close()
}

// acknowledged drops it explicitly: an audited decision, not flagged.
func acknowledged(f *os.File) {
	_ = f.Close()
}

// builder writes cannot fail; strings.Builder is exempt.
func builder() string {
	var b strings.Builder
	b.WriteString("deterministic")
	return b.String()
}

// suppressed shows a suppressed, reasoned exception.
func suppressed(f *os.File) {
	//lint:ignore errcheckstrict fixture exercising suppression
	f.Close()
}

var _ = []any{drops, deferredClose, handled, acknowledged, builder, suppressed}
