// Package fixture exercises the finiteflow analyzer: unguarded float
// divisions placed into serialization boundaries carry // want comments.
package fixture

import "math"

type metrics struct {
	Ratio float64 `json:"ratio"`
	Safe  float64 `json:"safe"`
}

// Finite mirrors telemetry.Finite, the canonical clamp.
func Finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// bad puts a raw ratio into a json-tagged struct: txns may be zero.
func bad(insts, txns float64) metrics {
	return metrics{
		Ratio: insts / txns, // want "Finite/clamp guard"
	}
}

// badArgs puts a raw ratio into a trace-args map.
func badArgs(insts, txns float64) map[string]any {
	return map[string]any{
		"inst_intensity": insts / txns, // want "Finite/clamp guard"
	}
}

// good guards every ratio: a Finite wrap, a clamp wrap, a floored
// denominator, and a positive constant denominator.
func good(insts, txns, ns float64) metrics {
	return metrics{
		Ratio: Finite(insts / txns),
		Safe:  clamp01(insts / math.Max(txns, 1)),
	}
}

func goodConst(ns float64) metrics {
	return metrics{Ratio: ns / 1e9}
}

// suppressedRatio shows a suppressed, reasoned exception.
func suppressedRatio(insts, txns float64) metrics {
	//lint:ignore finiteflow fixture exercising suppression
	return metrics{Ratio: insts / txns}
}

// point has no json tags: not a serialization boundary.
type point struct{ X, Y float64 }

func notBoundary(a, b float64) point { return point{X: a / b} }

var _ = []any{bad, badArgs, good, goodConst, suppressedRatio, notBoundary}
