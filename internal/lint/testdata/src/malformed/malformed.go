// Package malformed holds a reasonless suppression directive: the directive
// itself is reported and does not suppress the finding below it.
package malformed

import "os"

func drop(f *os.File) {
	//lint:ignore errcheckstrict
	f.Close()
}

var _ = drop
