// Package fixture exercises the atomicsafe analyzer: plain accesses to
// locations that are elsewhere touched via sync/atomic carry // want
// comments, the rest are false-positive coverage.
package fixture

import (
	"sync"
	"sync/atomic"
)

// hits is a package-level raw atomic counter.
var hits int64

// misses is a plain counter never touched atomically: out of scope.
var misses int64

// recordHit is the sanctioned atomic write.
func recordHit() {
	atomic.AddInt64(&hits, 1)
}

// loadHits is the sanctioned atomic read.
func loadHits() int64 {
	return atomic.LoadInt64(&hits)
}

// plainRead races recordHit: the load must go through sync/atomic too.
func plainRead() int64 {
	return hits // want "plain access races"
}

// plainWrite races recordHit from the writing side.
func plainWrite() {
	hits = 0 // want "plain access races"
}

// plainMisses is fine: misses is never accessed atomically.
func plainMisses() int64 {
	misses++
	return misses
}

// gauge mixes a raw atomic field with typed atomics and a mutex-guarded
// map; only the raw field is in scope.
type gauge struct {
	n     uint32 // touched via atomic.AddUint32
	typed atomic.Int64
	mu    sync.Mutex
	m     map[string]int
}

// bump is the sanctioned atomic access to the field.
func (g *gauge) bump() {
	atomic.AddUint32(&g.n, 1)
}

// read races bump through the selector path.
func (g *gauge) read() uint32 {
	return g.n // want "plain access races"
}

// typedOK uses a typed atomic: immune by construction, never flagged.
func (g *gauge) typedOK() int64 {
	g.typed.Add(1)
	return g.typed.Load()
}

// lockedOK uses the mutex-guarded map: a different discipline, out of
// scope for atomicsafe.
func (g *gauge) lockedOK() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// newGauge shows the one sanctioned plain write: initialization before the
// value is shared, with its reason on record.
func newGauge() *gauge {
	g := &gauge{m: make(map[string]int)}
	//lint:ignore atomicsafe construction precedes sharing; no concurrent accessor exists yet
	g.n = 0
	return g
}

var _ = []any{recordHit, loadHits, plainRead, plainWrite, plainMisses,
	(*gauge).bump, (*gauge).read, (*gauge).typedOK, (*gauge).lockedOK, newGauge}
