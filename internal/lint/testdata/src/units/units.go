// Package units is a stand-in for repro/internal/units in unitsafety
// fixtures: the analyzer matches any package whose import path ends in
// "/units" (or is "units"), so fixtures can exercise it without importing
// the real module.
package units

type (
	// Seconds mirrors units.Seconds.
	Seconds float64
	// Cycles mirrors units.Cycles.
	Cycles float64
	// Txns mirrors units.Txns.
	Txns uint64
	// Fraction mirrors units.Fraction.
	Fraction float64
)

// Float is the sanctioned escape to plain numeric space.
func (s Seconds) Float() float64 { return float64(s) }

// AtRate is the sanctioned Cycles -> Seconds conversion.
func (c Cycles) AtRate(hz float64) Seconds {
	if hz <= 0 {
		return 0
	}
	return Seconds(float64(c) / hz)
}

// Clamp01 mirrors the Fraction boundary guard.
func (f Fraction) Clamp01() float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return float64(f)
}

// Clamped mirrors the typed Fraction guard.
func (f Fraction) Clamped() Fraction { return Fraction(f.Clamp01()) }

// Clamp01Of mirrors units.Clamp01, the Fraction constructor.
func Clamp01Of(v float64) Fraction {
	if v < 0 || v != v {
		return 0
	}
	if v > 1 {
		return 1
	}
	return Fraction(v)
}

// Share mirrors units.Share, the sanctioned Seconds ratio.
func Share(part, whole Seconds) Fraction {
	if whole <= 0 {
		return 0
	}
	return Clamp01Of(float64(part) / float64(whole))
}
