// Package gpu is a stand-in for repro/internal/gpu in launchpath fixtures:
// the analyzer matches any package whose import path ends in "/gpu" (or is
// "gpu"), so fixtures can exercise it without importing the real model.
package gpu

// Occupancy mirrors the model's occupancy outcome.
type Occupancy struct {
	BlocksPerSM int
	WarpsPerSM  int
}

// LaunchResult mirrors the model's launch result.
type LaunchResult struct {
	Name string
	Time float64
	Occ  Occupancy
}

// Device mirrors the model device.
type Device struct{}

// Launch is the one sanctioned producer of LaunchResult values.
func (d *Device) Launch(name string) (LaunchResult, error) {
	return LaunchResult{Name: name, Occ: Occupancy{BlocksPerSM: 1, WarpsPerSM: 1}}, nil
}
