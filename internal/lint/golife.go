package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/callgraph"
)

// GoLife requires every goroutine spawned in the serving layer to have a
// statically visible join or cancellation path. PR 9's runtime leak
// checker catches goroutines that outlive a test; this is the compile-time
// complement: a `go` statement with no structural way to stop is either a
// leak or an undocumented detachment, and in a drained server both are
// bugs.
//
// A go statement is accepted when the spawned function — its literal body,
// or for a named callee every function reachable from it over non-go call
// edges — shows any of:
//
//   - a sync.WaitGroup Done call (by the repo's convention the spawner
//     holds the matching Add and someone Waits);
//   - a receive from a context's Done() channel (ctx-derived loop exit);
//   - a range over a channel (the feeder's close is the exit);
//   - a close of, or send on, a channel the spawning function receives on,
//     matched syntactically by expression — close(done) in the goroutine
//     against <-done in the spawner — with one level of
//     parameter-to-argument translation for named callees, so
//     `go s.notify(done)` closing its parameter matches too.
//
// A go call whose targets are all outside the analyzed program (say,
// spawning a stdlib function) produces no call-graph edge and is accepted:
// unknown is not evidence of a leak. Everything else is a finding. A
// goroutine that must outlive its spawner (a detached singleflight
// leader) carries a reasoned //lint:ignore suppression, making the
// detachment a documented, counted decision. The check proves a join
// edifice exists, not that it is correct — -race and the runtime leak
// checker remain the schedule-sensitive backstop.
var GoLife = &Analyzer{
	Name: "golife",
	Doc: "require every go statement to have a statically visible join or " +
		"cancellation path (WaitGroup, spawner-received channel, or ctx exit)",
	ScopeDoc:       "internal/server, internal/core, internal/telemetry",
	Scope:          goLifeScope,
	NeedsCallGraph: true,
	Run:            runGoLife,
}

// goLifeScope covers the long-running serving layer, where an unjoined
// goroutine accumulates instead of exiting with the process.
func goLifeScope(path string) bool {
	for _, p := range []string{
		"repro/internal/server", "repro/internal/core", "repro/internal/telemetry",
	} {
		if path == p || len(path) > len(p) && path[:len(p)+1] == p+"/" {
			return true
		}
	}
	return false
}

func runGoLife(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				if tf, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					if node := p.Graph.NodeOf(tf); node != nil {
						checkGoStmts(p, node, fn.Body)
					}
				}
			case *ast.FuncLit:
				if node := p.Graph.NodeOfLit(fn); node != nil {
					checkGoStmts(p, node, fn.Body)
				}
			}
			return true
		})
	}
}

// checkGoStmts checks the go statements lexically in body — nested
// literals are their own spawning scopes, visited by runGoLife.
func checkGoStmts(p *Pass, node *callgraph.Node, body *ast.BlockStmt) {
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	recvKeys := spawnerReceiveKeys(p, body)
	for _, g := range spawns {
		if !goJoinEvidence(p, node, g, recvKeys) {
			p.Reportf(g.Pos(),
				"goroutine has no statically visible join or cancellation path "+
					"(no WaitGroup.Done, no channel the spawner receives on, no ctx-derived exit); "+
					"join it or suppress with the reason it must outlive its spawner")
		}
	}
}

// spawnerReceiveKeys collects the canonical keys of every channel
// expression the spawning body receives from or ranges over, outside
// nested literals.
func spawnerReceiveKeys(p *Pass, body *ast.BlockStmt) map[string]bool {
	keys := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if st.Op == token.ARROW {
				keys[exprKey(p.Fset, ast.Unparen(st.X))] = true
			}
		case *ast.RangeStmt:
			if isChanType(p.Info.TypeOf(st.X)) {
				keys[exprKey(p.Fset, ast.Unparen(st.X))] = true
			}
		}
		return true
	})
	return keys
}

// goJoinEvidence reports whether the go statement's spawned function shows
// a join or cancellation path. Targets come from the call graph (so
// interface dispatch and function values resolve like everywhere else);
// with no in-program target the spawn is accepted as unknown-benign.
func goJoinEvidence(p *Pass, node *callgraph.Node, g *ast.GoStmt, recvKeys map[string]bool) bool {
	var targets []*callgraph.Edge
	for _, e := range node.Out {
		if e.Go && e.Pos == g.Call.Pos() && e.Kind != callgraph.Closure {
			targets = append(targets, e)
		}
	}
	if len(targets) == 0 {
		return true
	}
	for _, e := range targets {
		// The directly spawned function gets channel-key matching with
		// parameter translation; deeper reachable bodies contribute the
		// positional-independent evidence (Done, ctx, range).
		if bodyJoinEvidence(p, e.Callee, g.Call, recvKeys, true) {
			return true
		}
		reach := p.Graph.Reachable([]*callgraph.Node{e.Callee}, func(e *callgraph.Edge) bool {
			return !e.Go
		})
		for _, m := range reach {
			if m != e.Callee && bodyJoinEvidence(p, m, nil, nil, false) {
				return true
			}
		}
	}
	return false
}

// bodyJoinEvidence scans one function node's body for join or cancellation
// evidence. When direct is true, channel close/send sites are matched
// against the spawner's receive keys — literally for captured channels,
// and through call-argument translation for parameters of a named callee
// (call is the go statement's call in that case).
func bodyJoinEvidence(p *Pass, node *callgraph.Node, call *ast.CallExpr, recvKeys map[string]bool, direct bool) bool {
	info := node.Info
	paramArg := paramArgKeys(p, node, call)
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, st); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				found = true // WaitGroup.Done: the spawner-side Add/Wait joins it
				return false
			}
			if direct && len(st.Args) == 1 {
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "close" && info.Uses[id] == types.Universe.Lookup("close") {
					if chanKeyMatches(p, info, st.Args[0], recvKeys, paramArg) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if st.Op == token.ARROW && isCtxDoneCall(info, st.X) {
				found = true // select/receive on ctx.Done(): cancellation path
				return false
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(st.X)) {
				found = true // ranges over a channel: exits when the feeder closes it
				return false
			}
		case *ast.SendStmt:
			if direct && chanKeyMatches(p, info, st.Chan, recvKeys, paramArg) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// paramArgKeys maps a named callee's channel-typed parameter names to the
// spawner-side keys of the go call's corresponding arguments, so a close
// of a parameter matches a receive on the argument. Nil when there is no
// call to translate through (the spawned literal captures instead).
func paramArgKeys(p *Pass, node *callgraph.Node, call *ast.CallExpr) map[string]string {
	if call == nil || node.FType == nil || node.FType.Params == nil {
		return nil
	}
	out := make(map[string]string)
	i := 0
	for _, field := range node.FType.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if i < len(call.Args) && isChanType(node.Info.TypeOf(field.Type)) {
				out[name.Name] = exprKey(p.Fset, ast.Unparen(call.Args[i]))
			}
			i++
		}
	}
	return out
}

// chanKeyMatches reports whether the closed/sent channel expression
// corresponds to one the spawner receives on: by literal key for captured
// channels, or through the parameter-to-argument map.
func chanKeyMatches(p *Pass, info *types.Info, ch ast.Expr, recvKeys map[string]bool, paramArg map[string]string) bool {
	if !isChanType(info.TypeOf(ch)) {
		return false
	}
	ch = ast.Unparen(ch)
	key := exprKey(p.Fset, ch)
	if recvKeys[key] {
		return true
	}
	if id, ok := ch.(*ast.Ident); ok {
		if argKey, ok := paramArg[id.Name]; ok && recvKeys[argKey] {
			return true
		}
	}
	return false
}

// isCtxDoneCall reports whether e is a call to Done() on a
// context.Context.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(info.TypeOf(sel.X))
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
