package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixtureCases pairs each analyzer with its fixture package. The asPath puts
// the fixture inside (or outside) the analyzer's scope without moving files.
var fixtureCases = []struct {
	dir      string
	asPath   string
	analyzer *Analyzer
}{
	{"nodeterminism", "repro/internal/core/fixture", NoDeterminism},
	{"finiteflow", "repro/internal/telemetry/fixture", FiniteFlow},
	{"launchpath", "repro/internal/profiler/fixture", LaunchPath},
	{"errcheckstrict", "repro/cmd/fixture", ErrCheckStrict},
	{"unitsafety", "repro/internal/gpu/fixture", UnitSafety},
	{"mutexguard", "repro/internal/server/fixture", MutexGuard},
	{"ctxflow", "repro/internal/server/fixture", CtxFlow},
	{"atomicsafe", "repro/internal/telemetry/fixture", AtomicSafe},
	{"lockorder", "repro/internal/server/fixture", LockOrder},
	{"golife", "repro/internal/server/fixture", GoLife},
}

// wantRe extracts the quoted substrings of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

// collectWants parses `// want "substr"` comments out of a fixture package.
func collectWants(t *testing.T, pkg *Package) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := wantKey{file: filepath.Base(pos.Filename), line: pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", pkg.Path)
	}
	return wants
}

// TestAnalyzerFixtures checks every analyzer against its fixture: each
// `// want` comment must produce a finding on that line, and no finding may
// appear without one. The unguarded fixture lines double as false-positive
// coverage, and each fixture carries a //lint:ignore suppression that must
// hold.
func TestAnalyzerFixtures(t *testing.T) {
	loader := newFixtureLoader(filepath.Join("testdata", "src"))
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader.load(tc.dir, tc.asPath)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			findings := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			wants := collectWants(t, pkg)
			for _, f := range findings {
				key := wantKey{file: filepath.Base(f.Pos.Filename), line: f.Pos.Line}
				matched := -1
				for i, w := range wants[key] {
					if strings.Contains(f.Message, w) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
			}
			for key, rest := range wants {
				for _, w := range rest {
					t.Errorf("missing finding at %s:%d matching %q", key.file, key.line, w)
				}
			}
		})
	}
}

// TestScopePredicates verifies the analyzers' scoping: loading the same
// nodeterminism fixture under a path outside the model packages must produce
// zero findings, and loading the launchpath fixture AS a gpu package must
// silence launchpath.
func TestScopePredicates(t *testing.T) {
	t.Run("nodeterminism-out-of-scope", func(t *testing.T) {
		loader := newFixtureLoader(filepath.Join("testdata", "src"))
		pkg, err := loader.load("nodeterminism", "example.com/outside/model")
		if err != nil {
			t.Fatalf("load fixture: %v", err)
		}
		if findings := Run([]*Package{pkg}, []*Analyzer{NoDeterminism}); len(findings) != 0 {
			t.Errorf("out-of-scope package produced findings: %v", findings)
		}
	})
	t.Run("launchpath-inside-gpu", func(t *testing.T) {
		loader := newFixtureLoader(filepath.Join("testdata", "src"))
		pkg, err := loader.load("launchpath", "repro/internal/gpu")
		if err != nil {
			t.Fatalf("load fixture: %v", err)
		}
		if findings := Run([]*Package{pkg}, []*Analyzer{LaunchPath}); len(findings) != 0 {
			t.Errorf("gpu-scoped package produced launchpath findings: %v", findings)
		}
	})
	t.Run("ctxflow-out-of-scope", func(t *testing.T) {
		loader := newFixtureLoader(filepath.Join("testdata", "src"))
		pkg, err := loader.load("ctxflow", "example.com/outside/serving")
		if err != nil {
			t.Fatalf("load fixture: %v", err)
		}
		if findings := Run([]*Package{pkg}, []*Analyzer{CtxFlow}); len(findings) != 0 {
			t.Errorf("out-of-scope package produced ctxflow findings: %v", findings)
		}
	})
	t.Run("golife-out-of-scope", func(t *testing.T) {
		loader := newFixtureLoader(filepath.Join("testdata", "src"))
		pkg, err := loader.load("golife", "example.com/outside/serving")
		if err != nil {
			t.Fatalf("load fixture: %v", err)
		}
		if findings := Run([]*Package{pkg}, []*Analyzer{GoLife}); len(findings) != 0 {
			t.Errorf("out-of-scope package produced golife findings: %v", findings)
		}
	})
}

// TestMalformedSuppression checks that a reasonless //lint:ignore directive
// is itself reported and does not suppress the finding under it.
func TestMalformedSuppression(t *testing.T) {
	loader := newFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.load("malformed", "repro/cmd/malformed")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{ErrCheckStrict})
	var sawMalformed, sawDrop bool
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "malformed suppression"):
			sawMalformed = true
		case f.Analyzer == "errcheckstrict":
			sawDrop = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing malformed-suppression finding; got %v", findings)
	}
	if !sawDrop {
		t.Errorf("reasonless directive must not suppress the finding below it; got %v", findings)
	}
}

// TestFindingString pins the file:line: analyzer: message output format.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "nodeterminism", Message: "call to time.Now"}
	f.Pos.Filename = "internal/core/core.go"
	f.Pos.Line = 42
	const want = "internal/core/core.go:42: nodeterminism: call to time.Now"
	if got := f.String(); got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestSuppressionBudget pins the repository's //lint:ignore inventory: the
// CI gate that makes adding an exception a reviewed, counted act. When this
// fails after adding a deliberate suppression, list the inventory with
// `go run ./cmd/cactuslint -suppressions ./...`, confirm each reason still
// holds, and bump the budget in the same commit. Skipped in -short mode
// because it type-checks the full repository.
func TestSuppressionBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo suppression inventory is not short")
	}
	pkgs := repoPackages(t)
	sups := CollectSuppressions(pkgs)
	const budget = 10 // 6 nodeterminism (telemetry wall time) + 3 ctxflow (deliberate detachments) + 1 golife (detached singleflight leader, joined via c.done by every caller)
	if len(sups) != budget {
		for _, s := range sups {
			t.Logf("suppression: %s", s)
		}
		t.Errorf("repository has %d //lint:ignore suppressions, budget pins %d; review the inventory above and adjust the budget deliberately", len(sups), budget)
	}
	for _, s := range sups {
		if s.Reason == "" {
			t.Errorf("suppression without a reason at %s:%d", s.Pos.Filename, s.Pos.Line)
		}
	}
}

// TestRepoIsClean runs every analyzer over the whole module and requires
// zero findings: the invariants hold at HEAD. Skipped in -short mode because
// it type-checks the full repository.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint is not short")
	}
	if findings := Run(repoPackages(t), Analyzers()); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("finding at HEAD: %s", f)
		}
	}
}

// repoOnce caches the full-repo load: type-checking the module against
// export data is by far the most expensive step, and every full-repo test
// and benchmark shares one immutable package set.
var repoOnce struct {
	sync.Once
	pkgs []*Package
	err  error
}

func repoPackages(tb testing.TB) []*Package {
	tb.Helper()
	repoOnce.Do(func() {
		repoOnce.pkgs, repoOnce.err = Load(filepath.Join("..", ".."), "./...")
	})
	if repoOnce.err != nil {
		tb.Fatalf("load repo: %v", repoOnce.err)
	}
	return repoOnce.pkgs
}

// BenchmarkLintRepo measures one full analyzer run (all ten analyzers,
// shared call graph) over the already-loaded repository: the marginal
// cost of linting once packages are type-checked.
//
// Reference on the development machine (go test -bench LintRepo -benchtime 5x):
//
//	before the interprocedural layer (the 7 per-package analyzers, no call graph): ~16ms/op
//	after (10 analyzers + shared call graph + interprocedural launchpath): ~71ms/op
//
// The call graph is built once per Run and shared by lockorder, golife,
// and launchpath; building it dominates the delta.
func BenchmarkLintRepo(b *testing.B) {
	pkgs := repoPackages(b)
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := Run(pkgs, analyzers); len(findings) != 0 {
			b.Fatalf("repo not clean: %v", findings[0])
		}
	}
}
