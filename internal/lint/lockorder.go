package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
)

// LockOrder detects potential deadlocks from inconsistent mutex
// acquisition order. It is whole-program: every function's syntactic
// Lock/RLock…Unlock/RUnlock intervals are computed, the locks acquired by
// its callees (transitively, over the call graph) are folded in, and every
// "B acquired while A is held" pair becomes an edge A → B in a global
// lock-acquisition graph. A cycle in that graph means two call chains can
// acquire the same locks in opposite orders — the classic ABBA deadlock —
// and is reported once, with the full witness chain (one file:line per
// edge).
//
// Locks are identified by class, not instance: every sync.Mutex/RWMutex
// field of a named type is one class (telemetry.Histogram.mu), as is every
// package-level or local mutex variable. Class-level tracking cannot
// distinguish two instances of the same type locked in sequence (shard A
// then shard B), which would self-cycle; the analyzer therefore reports a
// same-class edge only when it arises through a call (a function that
// locks m and then calls, while holding it, something that locks m again —
// a guaranteed self-deadlock for a plain Mutex), not when one body locks
// two sibling instances directly. Goroutine spawns are not "while
// holding": a `go` statement's callee acquires its locks on another
// schedule, so go edges are excluded from propagation.
//
// The held interval is syntactic and flow-insensitive: a lock is held from
// its Lock call to the first following non-deferred Unlock of the same
// class in the same body, or to the end of the body (deferred Unlock, or
// none). That over-approximates branchy early-unlock code toward more held
// time, which can only add edges — the right bias for a potential-deadlock
// reporter whose cycles are then human-reviewed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "report cycles in the interprocedural lock-acquisition order " +
		"(potential ABBA deadlocks) with a witness chain",
	ScopeDoc:       "all packages (whole-program)",
	NeedsCallGraph: true,
	RunProgram:     runLockOrder,
}

// lockClass identifies one lock by declaration, not instance.
type lockClass struct {
	// key is the deterministic identity: pkgpath.Type.field or
	// pkgpath.var (or pkgpath.func.var for a local mutex).
	key string
	// name renders the class in messages, with the short package name.
	name string
}

// lockEvent is one Lock/Unlock call in a function body.
type lockEvent struct {
	class    lockClass
	pos      token.Pos
	acquire  bool // Lock/RLock
	deferred bool // inside a defer statement
}

// lockEdge is one "to acquired while from is held" observation.
type lockEdge struct {
	from, to lockClass
	pos      token.Pos // the acquisition (or mediating call) site
	via      string    // "" for direct nesting, else the callee's name
}

// runLockOrder builds the lock-acquisition graph and reports its cycles.
func runLockOrder(p *ProgramPass) {
	// events and direct acquisition classes per call-graph node, for the
	// packages in scope; the call graph itself spans everything analyzed.
	events := make(map[*callgraph.Node][]lockEvent)
	for _, pkg := range p.Pkgs {
		collectLockEvents(pkg, p.Graph, events)
	}

	trans := &transAcquires{events: events, memo: make(map[*callgraph.Node][]lockClass)}
	edges := make(map[[2]string]*lockEdge)
	addEdge := func(e lockEdge) {
		k := [2]string{e.from.key, e.to.key}
		if _, ok := edges[k]; !ok {
			edges[k] = &e
		}
	}

	for _, node := range p.Graph.Nodes {
		evs := events[node]
		if len(evs) == 0 {
			continue
		}
		for i, a := range evs {
			if !a.acquire {
				continue
			}
			end := heldEnd(evs, i, node.Body.End())
			// Direct nesting: a different class acquired inside the
			// interval. Same-class direct nesting is skipped — it is
			// usually two sibling instances (shards), not recursion.
			for j, b := range evs {
				if j == i || !b.acquire || b.pos <= a.pos || b.pos >= end {
					continue
				}
				if b.class.key != a.class.key {
					addEdge(lockEdge{from: a.class, to: b.class, pos: b.pos})
				}
			}
			// Call-mediated: everything a callee (transitively) acquires
			// is acquired while a is held. go-spawned callees run on
			// their own schedule; lexical containment is not a call.
			for _, ce := range node.Out {
				if ce.Pos <= a.pos || ce.Pos >= end || ce.Go || ce.Kind == callgraph.Closure {
					continue
				}
				for _, c := range trans.of(ce.Callee) {
					addEdge(lockEdge{from: a.class, to: c, pos: ce.Pos, via: ce.Callee.Name})
				}
			}
		}
	}

	reportLockCycles(p, edges)
}

// heldEnd returns the end of the held interval opened by evs[i]: the first
// following non-deferred release of the same class, or bodyEnd.
func heldEnd(evs []lockEvent, i int, bodyEnd token.Pos) token.Pos {
	a := evs[i]
	for _, e := range evs[i+1:] {
		if !e.acquire && !e.deferred && e.class.key == a.class.key && e.pos > a.pos {
			return e.pos
		}
	}
	return bodyEnd
}

// transAcquires memoizes the union of lock classes acquired by a node and
// everything reachable from it over call edges (no go spawns, no bare
// lexical containment).
type transAcquires struct {
	events map[*callgraph.Node][]lockEvent
	memo   map[*callgraph.Node][]lockClass
}

func (t *transAcquires) of(n *callgraph.Node) []lockClass {
	if got, ok := t.memo[n]; ok {
		return got
	}
	// Mark before walking so call cycles terminate; the final value is
	// computed over the full reachable set, so the placeholder is only
	// visible to re-entrant lookups of this same node.
	t.memo[n] = nil
	seen := make(map[string]lockClass)
	var walk func(m *callgraph.Node, visited map[*callgraph.Node]bool)
	walk = func(m *callgraph.Node, visited map[*callgraph.Node]bool) {
		if visited[m] {
			return
		}
		visited[m] = true
		for _, e := range t.events[m] {
			if e.acquire {
				seen[e.class.key] = e.class
			}
		}
		for _, e := range m.Out {
			if e.Go || e.Kind == callgraph.Closure {
				continue
			}
			walk(e.Callee, visited)
		}
	}
	walk(n, make(map[*callgraph.Node]bool))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockClass, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	t.memo[n] = out
	return out
}

// collectLockEvents walks every function node of pkg and records its
// Lock/Unlock calls in source order, excluding nested literals (their
// events belong to their own nodes).
func collectLockEvents(pkg *Package, g *callgraph.Graph, events map[*callgraph.Node][]lockEvent) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			node := g.NodeOf(fn)
			if node == nil {
				continue
			}
			collectBodyLockEvents(pkg, g, node, fd.Body, fd.Name.Name, events)
		}
	}
}

// collectBodyLockEvents records one body's events and recurses into its
// literals as separate nodes.
func collectBodyLockEvents(pkg *Package, g *callgraph.Graph, node *callgraph.Node, body *ast.BlockStmt, funcName string, events map[*callgraph.Node][]lockEvent) {
	inDefer := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if child := g.NodeOfLit(st); child != nil {
				collectBodyLockEvents(pkg, g, child, st.Body, funcName, events)
			}
			return false
		case *ast.DeferStmt:
			inDefer[st.Call] = true
			return true
		case *ast.CallExpr:
			ev, ok := lockEventOf(pkg, st, funcName)
			if !ok {
				return true
			}
			ev.deferred = inDefer[st]
			events[node] = append(events[node], ev)
			return true
		}
		return true
	})
	sort.SliceStable(events[node], func(i, j int) bool {
		return events[node][i].pos < events[node][j].pos
	})
}

// syncLockMethod reports whether call invokes (R)Lock/(R)Unlock on a
// sync.Mutex or sync.RWMutex, and whether it acquires.
func syncLockMethod(info *types.Info, call *ast.CallExpr) (sel *ast.SelectorExpr, acquire, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return nil, false, false
	}
	fn, fnOK := info.Uses[sel.Sel].(*types.Func)
	if !fnOK || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return sel, true, true
	case "Unlock", "RUnlock":
		return sel, false, true
	}
	return nil, false, false
}

// lockEventOf classifies one call as a lock event and derives its class.
func lockEventOf(pkg *Package, call *ast.CallExpr, funcName string) (lockEvent, bool) {
	sel, acquire, ok := syncLockMethod(pkg.Info, call)
	if !ok {
		return lockEvent{}, false
	}
	class, ok := classOf(pkg, sel, funcName)
	if !ok {
		return lockEvent{}, false
	}
	return lockEvent{class: class, pos: call.Pos(), acquire: acquire}, true
}

// classOf derives the lock class of a (R)Lock/(R)Unlock call's receiver:
// the owning named type plus field name for struct fields (including a
// promoted embedded mutex), the package plus variable name otherwise.
func classOf(pkg *Package, fun *ast.SelectorExpr, funcName string) (lockClass, bool) {
	switch recv := ast.Unparen(fun.X).(type) {
	case *ast.SelectorExpr:
		// s.mu.Lock(): identify the field via its selection.
		if s, ok := pkg.Info.Selections[recv]; ok {
			if named := namedOf(s.Recv()); named != nil {
				return fieldClass(named, recv.Sel.Name), true
			}
		}
		// pkgname.mu.Lock(): a package-level mutex accessed qualified.
		if v, ok := pkg.Info.Uses[recv.Sel].(*types.Var); ok {
			return varClass(v, funcName), true
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[recv]
		if obj == nil {
			obj = pkg.Info.Defs[recv]
		}
		if v, ok := obj.(*types.Var); ok {
			return varClass(v, funcName), true
		}
	default:
		// s.Lock() with an embedded mutex surfaces as a selection on fun
		// itself; handled below.
	}
	// Promoted method on an embedded mutex: s.Lock().
	if s, ok := pkg.Info.Selections[fun]; ok {
		if named := namedOf(s.Recv()); named != nil {
			muName := "Mutex"
			if strings.Contains(s.Obj().Type().String(), "RWMutex") {
				muName = "RWMutex"
			}
			return fieldClass(named, muName), true
		}
	}
	return lockClass{}, false
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldClass renders a struct-field lock class.
func fieldClass(named *types.Named, field string) lockClass {
	obj := named.Obj()
	pkgPath, pkgName := "", ""
	if obj.Pkg() != nil {
		pkgPath, pkgName = obj.Pkg().Path(), obj.Pkg().Name()
	}
	return lockClass{
		key:  pkgPath + "." + obj.Name() + "." + field,
		name: pkgName + "." + obj.Name() + "." + field,
	}
}

// varClass renders a variable lock class; local mutexes are qualified by
// their function so two functions' locals never alias.
func varClass(v *types.Var, funcName string) lockClass {
	pkgPath, pkgName := "", ""
	if v.Pkg() != nil {
		pkgPath, pkgName = v.Pkg().Path(), v.Pkg().Name()
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return lockClass{key: pkgPath + "." + v.Name(), name: pkgName + "." + v.Name()}
	}
	return lockClass{
		key:  pkgPath + "." + funcName + "." + v.Name(),
		name: pkgName + "." + funcName + "." + v.Name(),
	}
}

// reportLockCycles finds the strongly connected components of the lock
// graph and reports each cycle once, deterministically, with one witness
// per edge.
func reportLockCycles(p *ProgramPass, edges map[[2]string]*lockEdge) {
	succ := make(map[string][]string)
	classes := make(map[string]bool)
	for k := range edges {
		succ[k[0]] = append(succ[k[0]], k[1])
		classes[k[0]] = true
		classes[k[1]] = true
	}
	for _, s := range succ {
		sort.Strings(s)
	}
	var order []string
	for c := range classes {
		order = append(order, c)
	}
	sort.Strings(order)

	for _, comp := range lockSCCs(order, succ) {
		selfLoop := len(comp) == 1 && edges[[2]string{comp[0], comp[0]}] != nil
		if len(comp) < 2 && !selfLoop {
			continue
		}
		reportOneCycle(p, comp, edges, succ)
	}
}

// lockSCCs is Tarjan over the (tiny) lock graph, deterministic via the
// pre-sorted vertex and successor orders; each component's members are
// sorted.
func lockSCCs(order []string, succ map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range order {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comps
}

// reportOneCycle walks one cycle through the component, starting from its
// smallest class, and emits a single finding whose message carries every
// edge's witness.
func reportOneCycle(p *ProgramPass, comp []string, edges map[[2]string]*lockEdge, succ map[string][]string) {
	inComp := make(map[string]bool, len(comp))
	for _, c := range comp {
		inComp[c] = true
	}
	start := comp[0]
	path := []string{start}
	cur := start
	visited := map[string]bool{start: true}
	for {
		next := ""
		for _, w := range succ[cur] {
			if w == start && len(path) > 1 || inComp[w] && !visited[w] {
				next = w
				break
			}
		}
		if next == "" {
			// Self-loop component.
			next = start
		}
		path = append(path, next)
		if next == start {
			break
		}
		visited[next] = true
		cur = next
	}

	var names []string
	var witnesses []string
	var firstPos token.Pos
	for i := 0; i+1 < len(path); i++ {
		e := edges[[2]string{path[i], path[i+1]}]
		if e == nil {
			continue
		}
		if firstPos == token.NoPos {
			firstPos = e.pos
		}
		names = append(names, e.from.name)
		pos := p.Fset.Position(e.pos)
		w := fmt.Sprintf("%s before %s at %s:%d", e.from.name, e.to.name,
			pos.Filename, pos.Line)
		if e.via != "" {
			w += fmt.Sprintf(" (via call to %s)", e.via)
		}
		witnesses = append(witnesses, w)
	}
	if len(witnesses) == 0 {
		return
	}
	names = append(names, names[0])
	p.Reportf(firstPos,
		"potential deadlock: lock-order cycle %s; %s",
		strings.Join(names, " -> "), strings.Join(witnesses, "; "))
}
