package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces request-context propagation through the serving layer.
// Since the repo became a long-running HTTP service, every blocking call
// chain from a handler into core.Engine must carry the request's
// context.Context: a fresh context.Background()/TODO() in a handler path
// silently discards the caller's deadline and cancellation, which is
// exactly how a drained server ends up owning orphaned studies.
//
// In scope (internal/server and internal/core), the analyzer flags:
//
//   - any call to context.Background() or context.TODO(). The two
//     legitimate detachments — the singleflight leader whose study belongs
//     to every future asker, and the one-shot CLI entry points that have no
//     inbound context — carry reasoned //lint:ignore suppressions, turning
//     each detachment into a documented decision;
//   - nil passed as a context.Context argument (a latent panic in any
//     callee that derives from it);
//   - a context-typed argument inside a function that has its own
//     context.Context (or *http.Request) parameter, where the argument is
//     not derived from that parameter — the in-scope context is dropped on
//     the floor while an unrelated one flows downstream.
//
// Derivation is computed per function literal/declaration to a fixpoint:
// the function's own context parameters and r.Context() calls on request
// parameters seed the good set, and any local assigned from an expression
// that mentions a good source (context.WithTimeout(ctx, d), r.Context(),
// ...) joins it. Closures are separate scopes: a closure with no context
// parameter of its own is exempt from the derivation rule (capturing the
// enclosing context is fine, and intentionally detaching inside one is
// where the suppression goes).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "forbid fresh or dropped contexts on blocking call chains in the " +
		"serving layer",
	ScopeDoc: "internal/server and internal/core",
	Scope:    ctxFlowScope,
	Run:      runCtxFlow,
}

// ctxFlowScope covers the serving layer: the HTTP server and the engine
// library it blocks on.
func ctxFlowScope(path string) bool {
	for _, p := range []string{"repro/internal/server", "repro/internal/core"} {
		if path == p || len(path) > len(p) && path[:len(p)+1] == p+"/" {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// isRequestType reports whether t is *net/http.Request.
func isRequestType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}

// freshContextCall reports a direct context.Background()/context.TODO()
// call and returns which.
func freshContextCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

func runCtxFlow(p *Pass) {
	for _, file := range p.Files {
		// Rule 1: fresh contexts, anywhere in scope.
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name := freshContextCall(p.Info, call); name != "" {
					p.Reportf(call.Pos(),
						"context.%s() discards the caller's deadline and cancellation; thread the request context (or suppress with the reason the work must outlive its requester)",
						name)
				}
			}
			return true
		})
		// Rules 2 and 3: per-function argument checks.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCtxArgs(p, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkCtxArgs(p, fn.Type, fn.Body)
			}
			return true
		})
	}
}

// ctxSources returns the function's context provenance roots: its own
// context.Context parameters and its *http.Request parameters.
func ctxSources(p *Pass, ft *ast.FuncType) (ctxParams, reqParams map[types.Object]bool) {
	ctxParams = make(map[types.Object]bool)
	reqParams = make(map[types.Object]bool)
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case isContextType(obj.Type()):
				ctxParams[obj] = true
			case isRequestType(obj.Type()):
				reqParams[obj] = true
			}
		}
	}
	return
}

// checkCtxArgs applies the nil rule and, when the function has its own
// context source, the derivation rule to every context-typed argument in
// body. Nested function literals are separate scopes and skipped.
func checkCtxArgs(p *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxParams, reqParams := ctxSources(p, ft)
	good := deriveGood(p, body, ctxParams, reqParams)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own scope; visited by runCtxFlow
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			if !isContextType(sig.Params().At(i).Type()) {
				continue
			}
			arg := ast.Unparen(call.Args[i])
			if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" && p.Info.Uses[id] == types.Universe.Lookup("nil") {
				p.Reportf(arg.Pos(),
					"nil passed as the context.Context argument of %s; pass the request context (or context.Background with a reason)",
					fn.Name())
				continue
			}
			// The derivation rule only applies when this function has a
			// context of its own to thread, and is silent on the fresh
			// Background/TODO calls rule 1 already reports.
			if len(ctxParams) == 0 && len(reqParams) == 0 {
				continue
			}
			if c, ok := arg.(*ast.CallExpr); ok && freshContextCall(p.Info, c) != "" {
				continue
			}
			if !mentionsGood(p, arg, good, reqParams) {
				p.Reportf(arg.Pos(),
					"context argument of %s is not derived from this function's context parameter; the in-scope request context is dropped",
					fn.Name())
			}
		}
		return true
	})
}

// deriveGood computes, to a fixpoint, the set of local variables holding a
// context derived from the function's own sources: assignments whose
// right-hand side mentions a good source mark every context-typed
// left-hand variable good.
func deriveGood(p *Pass, body *ast.BlockStmt, ctxParams, reqParams map[types.Object]bool) map[types.Object]bool {
	good := make(map[types.Object]bool, len(ctxParams))
	for obj := range ctxParams {
		good[obj] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsGood := false
			for _, rhs := range as.Rhs {
				if mentionsGood(p, rhs, good, reqParams) {
					rhsGood = true
					break
				}
			}
			if !rhsGood {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil || !isContextType(obj.Type()) || good[obj] {
					continue
				}
				good[obj] = true
				changed = true
			}
			return true
		})
	}
	return good
}

// mentionsGood reports whether expr mentions a good context variable or a
// request-derived context: an identifier in the good set, a request
// parameter (r.Context(), r.WithContext(...)), or any *http.Request-typed
// expression.
func mentionsGood(p *Pass, expr ast.Expr, good, reqParams map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj != nil && (good[obj] || reqParams[obj] || isRequestType(obj.Type())) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
