package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MutexGuard enforces the repository's lock-annotation convention. A struct
// field whose doc or line comment contains
//
//	guarded by <mu>
//
// names the sibling sync.Mutex/sync.RWMutex field that protects it. Every
// access to an annotated field must then happen inside a function that
// visibly acquires that mutex on the same receiver expression
// (base.mu.Lock() or base.mu.RLock() anywhere in the body), or inside a
// helper whose name ends in "locked"/"Locked" — the convention for "caller
// holds the lock". An annotation naming a missing or non-mutex sibling is
// itself a finding, so the convention cannot rot.
//
// The check is flow-insensitive by design: it asks "does this function ever
// acquire the right lock", not "is the lock held at this statement". That
// misses an access after an early Unlock but never fires on correct code,
// which is the right trade for a repo-clean-at-HEAD gate; the -race load
// tests remain the schedule-sensitive backstop.
var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc: "require accesses to `guarded by <mu>`-annotated struct fields to " +
		"happen under the named mutex or in a *locked helper",
	ScopeDoc: "all packages",
	Run:      runMutexGuard,
}

// guardedRe extracts the mutex name from a "guarded by <mu>" annotation.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo is one annotated field: the struct it belongs to and the
// sibling mutex field that protects it.
type guardInfo struct {
	structName string
	mutexName  string
}

// lockedHelper reports the naming convention for "caller holds the lock".
// Names ending in "unlocked"/"Unlocked" assert the opposite and never count.
func lockedHelper(name string) bool {
	if strings.HasSuffix(name, "unlocked") || strings.HasSuffix(name, "Unlocked") {
		return false
	}
	return strings.HasSuffix(name, "locked") || strings.HasSuffix(name, "Locked")
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// through a pointer).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// collectGuards walks the package's struct declarations and returns the
// annotated field objects. Annotations whose named mutex is missing or not
// a sync.Mutex/RWMutex are reported immediately.
func collectGuards(p *Pass) map[types.Object]guardInfo {
	guards := make(map[types.Object]guardInfo)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Index the sibling fields by name for mutex validation.
			siblings := make(map[string]*ast.Field)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					siblings[name.Name] = f
				}
			}
			for _, f := range st.Fields.List {
				mu := annotationOf(f)
				if mu == "" {
					continue
				}
				muField, ok := siblings[mu]
				if !ok {
					p.Reportf(f.Pos(),
						"guarded-by annotation names %q, which is not a field of %s",
						mu, ts.Name.Name)
					continue
				}
				if !isMutexType(p.Info.TypeOf(muField.Type)) {
					p.Reportf(f.Pos(),
						"guarded-by annotation names %s.%s, which is not a sync.Mutex or sync.RWMutex",
						ts.Name.Name, mu)
					continue
				}
				for _, name := range f.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{structName: ts.Name.Name, mutexName: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotationOf returns the mutex name of a field's "guarded by" annotation,
// checking the doc comment and the trailing line comment.
func annotationOf(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// exprKey renders an expression to a canonical string, so "same receiver"
// is a syntactic comparison: s.mu.Lock() sanctions accesses through s, not
// through some other instance.
func exprKey(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e) // printing to a Buffer cannot fail
	return buf.String()
}

func runMutexGuard(p *Pass) {
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, file := range p.Files {
		checkFuncs(p, file, guards)
	}
}

// checkFuncs walks every function (declaration or literal) in file and
// checks annotated-field accesses against the locks the function acquires.
func checkFuncs(p *Pass, file *ast.File, guards map[types.Object]guardInfo) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkFuncBody(p, fn.Name.Name, fn.Body, guards)
			}
		case *ast.FuncLit:
			checkFuncBody(p, "", fn.Body, guards)
		}
		return true
	})
}

// checkFuncBody checks one function body. Nested function literals are
// skipped here — the outer Inspect in checkFuncs visits them as their own
// scopes, because a closure that accesses a guarded field must itself
// acquire the lock (it may run on a different goroutine than its creator).
func checkFuncBody(p *Pass, name string, body *ast.BlockStmt, guards map[types.Object]guardInfo) {
	if lockedHelper(name) {
		return // caller holds the lock by convention
	}
	acquired := lockAcquisitions(p, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, visited by checkFuncs
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		g, guarded := guards[obj]
		if !guarded {
			return true
		}
		base := exprKey(p.Fset, sel.X)
		if acquired[lockKey{base: base, mutex: g.mutexName}] {
			return true
		}
		p.Reportf(sel.Pos(),
			"%s.%s is annotated `guarded by %s` but this access never acquires %s.%s (lock it, or name the helper *locked)",
			g.structName, sel.Sel.Name, g.mutexName, base, g.mutexName)
		return true
	})
}

// lockKey identifies one acquisition: the receiver expression's canonical
// rendering plus the mutex field name.
type lockKey struct {
	base  string
	mutex string
}

// lockAcquisitions collects every base.mu.Lock()/RLock() call in body.
// Nested function literals are excluded: a Lock inside a closure protects
// the closure's accesses (checked when the closure is analyzed), not the
// enclosing function's.
func lockAcquisitions(p *Pass, body *ast.BlockStmt) map[lockKey]bool {
	acquired := make(map[lockKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure's Lock does not protect this body
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		acquired[lockKey{base: exprKey(p.Fset, muSel.X), mutex: muSel.Sel.Name}] = true
		return true
	})
	return acquired
}
