package lint

import (
	"go/ast"
	"go/types"
)

// LaunchPath enforces the model's single-entry invariant: every piece of
// simulated GPU work flows through gpu.Device.Launch. A package outside
// internal/gpu that constructs a gpu.LaunchResult by hand, or assembles a
// gpu.Occupancy itself, is fabricating modeled results and bypassing the
// timing model — the profiler, cache, and figures would silently trust it.
var LaunchPath = &Analyzer{
	Name: "launchpath",
	Doc: "forbid constructing gpu.LaunchResult/gpu.Occupancy outside " +
		"internal/gpu; modeled results come only from Device.Launch",
	Scope: func(path string) bool { return !gpuPackage(path) },
	Run:   runLaunchPath,
}

func runLaunchPath(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(lit)
			if t == nil {
				return true
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !gpuPackage(obj.Pkg().Path()) {
				return true
			}
			switch obj.Name() {
			case "LaunchResult":
				p.Reportf(lit.Pos(), "gpu.LaunchResult constructed outside internal/gpu; modeled results must come from Device.Launch")
			case "Occupancy":
				p.Reportf(lit.Pos(), "gpu.Occupancy constructed outside internal/gpu; occupancy is computed by Device.Launch")
			}
			return true
		})
	}
}
