package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/callgraph"
)

// LaunchPath enforces the model's single-entry invariant: every piece of
// simulated GPU work flows through gpu.Device.Launch. A package outside
// internal/gpu that fabricates a gpu.LaunchResult or gpu.Occupancy is
// bypassing the timing model — the profiler, cache, and figures would
// silently trust it.
//
// The original check flagged composite literals only, which a helper
// could launder trivially (declare a zero value, assign its fields,
// return it). The analyzer is now an interprocedural escape check with
// four rules, applied outside internal/gpu:
//
//  1. composite literals of the result types are fabrication;
//  2. writing any field of a result-typed value is fabrication —
//     modeled results are immutable facts once Device.Launch produced
//     them;
//  3. returning a variable whose only binding is a zero-value `var`
//     declaration is fabrication (the zero value escapes as if it were a
//     modeled result);
//  4. returning the result of a call that — resolved through the call
//     graph, including interface dispatch — reaches a function marked
//     fabricating by rules 1–3 (or by this rule, to a fixpoint)
//     re-exports the fabrication; the finding names the fabricating
//     callee.
//
// Values genuinely derived from the model stay clean: results assigned
// from Device.Launch (or any non-fabricating call), copies, slices built
// with make+copy, and zero-value vars that are later wholly reassigned
// are all accepted. The check is flow-insensitive and biased against
// false positives: an unresolved call target is assumed benign.
var LaunchPath = &Analyzer{
	Name: "launchpath",
	Doc: "forbid fabricating gpu.LaunchResult/gpu.Occupancy outside " +
		"internal/gpu (literals, field writes, zero-value escapes, and " +
		"laundering through helpers); modeled results come only from Device.Launch",
	ScopeDoc:       "all packages outside internal/gpu (whole-program)",
	Scope:          func(path string) bool { return !gpuPackage(path) },
	NeedsCallGraph: true,
	RunProgram:     runLaunchPath,
}

// resultTypeName returns "LaunchResult" or "Occupancy" when t is one of
// the model's result types from a gpu package, else "".
func resultTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !gpuPackage(obj.Pkg().Path()) {
		return ""
	}
	switch obj.Name() {
	case "LaunchResult", "Occupancy":
		return obj.Name()
	}
	return ""
}

func runLaunchPath(p *ProgramPass) {
	// fabricating maps every function found to fabricate a result to its
	// short name for rule-4 messages.
	fabricating := make(map[*callgraph.Node]string)
	var scoped []*callgraph.Node
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			runLaunchPathFile(p, pkg, file, fabricating, &scoped)
		}
	}
	launchPathCascade(p, scoped, fabricating)
}

// runLaunchPathFile applies rules 1–3 to one file, marking each enclosing
// function that fabricates, and collects the file's function nodes for the
// rule-4 cascade.
func runLaunchPathFile(p *ProgramPass, pkg *Package, file *ast.File, fabricating map[*callgraph.Node]string, scoped *[]*callgraph.Node) {
	mark := func(encl *callgraph.Node) {
		if encl != nil {
			if _, ok := fabricating[encl]; !ok {
				fabricating[encl] = shortNodeName(encl)
			}
		}
	}
	// walk visits n with encl as the innermost enclosing function node,
	// recursing into nested functions with their own nodes.
	var walk func(n ast.Node, encl *callgraph.Node)
	visit := func(n ast.Node, encl *callgraph.Node) bool {
		switch st := n.(type) {
		case *ast.FuncDecl:
			if st.Body == nil {
				return false
			}
			var node *callgraph.Node
			if fn, ok := pkg.Info.Defs[st.Name].(*types.Func); ok {
				node = p.Graph.NodeOf(fn)
			}
			if node != nil {
				*scoped = append(*scoped, node)
				checkZeroReturns(p, pkg, st.Body, node, fabricating)
			}
			walk(st.Body, node)
			return false
		case *ast.FuncLit:
			node := p.Graph.NodeOfLit(st)
			if node != nil {
				*scoped = append(*scoped, node)
				checkZeroReturns(p, pkg, st.Body, node, fabricating)
			}
			walk(st.Body, node)
			return false
		case *ast.CompositeLit:
			switch resultTypeName(pkg.Info.TypeOf(st)) {
			case "LaunchResult":
				p.Reportf(st.Pos(), "gpu.LaunchResult constructed outside internal/gpu; modeled results must come from Device.Launch")
				mark(encl)
			case "Occupancy":
				p.Reportf(st.Pos(), "gpu.Occupancy constructed outside internal/gpu; occupancy is computed by Device.Launch")
				mark(encl)
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					if name := resultTypeName(pkg.Info.TypeOf(sel.X)); name != "" {
						p.Reportf(lhs.Pos(),
							"field write to gpu.%s outside internal/gpu mutates a modeled result; results come only from Device.Launch", name)
						mark(encl)
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(st.X).(*ast.SelectorExpr); ok {
				if name := resultTypeName(pkg.Info.TypeOf(sel.X)); name != "" {
					p.Reportf(st.X.Pos(),
						"field write to gpu.%s outside internal/gpu mutates a modeled result; results come only from Device.Launch", name)
					mark(encl)
				}
			}
		}
		return true
	}
	walk = func(n ast.Node, encl *callgraph.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			return visit(m, encl)
		})
	}
	walk(file, nil)
}

// checkZeroReturns applies rule 3 to one function body (nested literals
// excluded — they are their own functions): returning a variable whose
// only binding is a zero-value declaration of a result type.
func checkZeroReturns(p *ProgramPass, pkg *Package, body *ast.BlockStmt, encl *callgraph.Node, fabricating map[*callgraph.Node]string) {
	zeroVars := make(map[types.Object]string) // object -> result type name
	assigned := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ValueSpec:
			if len(st.Values) != 0 || st.Type == nil {
				return true
			}
			name := resultTypeName(pkg.Info.TypeOf(st.Type))
			if name == "" {
				return true
			}
			for _, id := range st.Names {
				if obj := pkg.Info.Defs[id]; obj != nil {
					zeroVars[obj] = name
				}
			}
		case *ast.AssignStmt:
			// Whole assignments and field writes both count as bindings
			// here: rule 2 reports the field writes on its own, so rule 3
			// only flags values that stayed untouched zeros.
			for _, lhs := range st.Lhs {
				if id := baseIdent(lhs); id != nil {
					if obj := identObj(pkg.Info, id); obj != nil {
						assigned[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id := baseIdent(st.X); id != nil {
				if obj := identObj(pkg.Info, id); obj != nil {
					assigned[obj] = true
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := identObj(pkg.Info, id); obj != nil {
						assigned[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(zeroVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Uses[id]
			name, isZero := zeroVars[obj]
			if !isZero || assigned[obj] {
				continue
			}
			p.Reportf(res.Pos(),
				"zero-value gpu.%s escapes via return; modeled results must come from Device.Launch", name)
			if encl != nil {
				if _, ok := fabricating[encl]; !ok {
					fabricating[encl] = shortNodeName(encl)
				}
			}
		}
		return true
	})
}

// baseIdent unwraps an lvalue to its base identifier: r in r, r.Time,
// and r.Occ.BlocksPerSM; nil for anything rooted elsewhere.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier whether it is a use or a definition
// (the := form defines).
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// launchPathCascade applies rule 4 to a fixpoint: any scoped function
// returning the result of a call into a fabricating function is itself
// fabricating, reported once at the offending return.
func launchPathCascade(p *ProgramPass, scoped []*callgraph.Node, fabricating map[*callgraph.Node]string) {
	reported := make(map[*callgraph.Node]bool)
	for changed := true; changed; {
		changed = false
		for _, node := range scoped {
			if _, done := fabricating[node]; done || reported[node] {
				continue
			}
			pos, name, callee := fabricatedReturn(node, fabricating)
			if callee == nil {
				continue
			}
			p.Reportf(pos,
				"gpu.%s returned here is fabricated outside internal/gpu by %s (not derived from Device.Launch)",
				name, fabricating[callee])
			fabricating[node] = shortNodeName(node)
			reported[node] = true
			changed = true
		}
	}
}

// fabricatedReturn scans node's body (nested literals excluded) for a
// return whose result expression is a call resolving to a fabricating
// function, returning the first such site in source order.
func fabricatedReturn(node *callgraph.Node, fabricating map[*callgraph.Node]string) (pos token.Pos, typeName string, callee *callgraph.Node) {
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			name := resultTypeName(node.Info.TypeOf(call))
			if name == "" {
				continue
			}
			targets := callTargets(node, call)
			sort.Slice(targets, func(i, j int) bool { return targets[i].Name < targets[j].Name })
			for _, t := range targets {
				if _, fab := fabricating[t]; fab {
					pos, typeName, callee = res.Pos(), name, t
					found = true
					return false
				}
			}
		}
		return true
	})
	return pos, typeName, callee
}

// callTargets returns the call-graph targets recorded for one call site.
func callTargets(node *callgraph.Node, call *ast.CallExpr) []*callgraph.Node {
	var out []*callgraph.Node
	for _, e := range node.Out {
		if e.Pos == call.Pos() && !e.Go && e.Kind != callgraph.Closure {
			out = append(out, e.Callee)
		}
	}
	return out
}

// shortNodeName renders a node name without the package path for
// messages: "fabricate" or "fixture.(*T).helper" shortened to its
// function part.
func shortNodeName(n *callgraph.Node) string {
	if n.Func != nil {
		if sig, ok := n.Func.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fmt.Sprintf("%s.%s", recvString(n.Func), n.Func.Name())
		}
		return n.Func.Name()
	}
	return n.Name
}
