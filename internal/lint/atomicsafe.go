package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicSafe forbids mixed atomic and plain access to one memory location.
// A variable or field that is ever passed by address to a sync/atomic
// function (atomic.AddInt64(&x, 1), atomic.LoadUint32(&f.n), ...) is an
// atomic location: every other read or write of it must also go through
// sync/atomic, because a plain access racing an atomic one is undefined
// behavior the race detector only catches on exercised schedules. The
// typed atomics (atomic.Int64, atomic.Pointer[T]) are immune by
// construction — their value is only reachable through methods — which is
// why this repo prefers them; this analyzer keeps the raw escape hatch
// honest wherever it appears.
//
// The check is package-local and flow-insensitive: initialization before
// the value is shared (a constructor writing the zero value) is the one
// common safe plain access, and it takes a reasoned //lint:ignore.
var AtomicSafe = &Analyzer{
	Name: "atomicsafe",
	Doc: "forbid plain reads/writes of variables that are accessed via " +
		"sync/atomic elsewhere",
	ScopeDoc: "all packages",
	Run:      runAtomicSafe,
}

// atomicCallArg returns the expression whose address is taken by a
// sync/atomic call argument (&x in atomic.AddInt64(&x, 1)), or nil.
func atomicCallArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	var out []ast.Expr
	for _, arg := range call.Args {
		if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
			out = append(out, ast.Unparen(un.X))
		}
	}
	return out
}

// exprObject resolves the variable or field an lvalue expression denotes:
// the object of a plain identifier or of the final selector of a field
// chain. Index expressions and dereferences resolve to nothing (their
// aliasing is beyond a package-local check).
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func runAtomicSafe(p *Pass) {
	// Pass 1: find every atomic location and remember one atomic-use
	// position per object for the message.
	atomicAt := make(map[types.Object]token.Position)
	// sanctioned tracks the expression nodes that ARE the atomic accesses,
	// so pass 2 can skip them.
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range atomicCallArgs(p.Info, call) {
				sanctioned[arg] = true
				if obj := exprObject(p.Info, arg); obj != nil {
					if _, seen := atomicAt[obj]; !seen {
						atomicAt[obj] = p.Fset.Position(arg.Pos())
					}
				}
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	// Pass 2: any other mention of an atomic location is a plain access.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if sanctioned[e] {
				return false // the atomic access itself (and its subtree)
			}
			var obj types.Object
			switch e := e.(type) {
			case *ast.Ident:
				obj = p.Info.Uses[e]
			case *ast.SelectorExpr:
				obj = p.Info.Uses[e.Sel]
				if obj != nil && atomicAt[obj] != (token.Position{}) {
					// Report on the selector, then stop: the base expression
					// is not itself the atomic location.
					reportPlainAccess(p, e.Sel.Pos(), obj, atomicAt[obj])
					return false
				}
				return true
			default:
				return true
			}
			if obj != nil {
				if at, ok := atomicAt[obj]; ok {
					reportPlainAccess(p, e.Pos(), obj, at)
				}
			}
			return true
		})
	}
}

func reportPlainAccess(p *Pass, pos token.Pos, obj types.Object, at token.Position) {
	p.Reportf(pos,
		"%s is accessed with sync/atomic at %s:%d; this plain access races it — use sync/atomic here too (or suppress an init-before-share write with a reason)",
		obj.Name(), at.Filename, at.Line)
}
