package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one import-free fixture package under
// testdata/src and returns it as a build Source.
func loadFixture(t *testing.T, fset *token.FileSet, dir string) Source {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	pkg, err := conf.Check(dir, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return Source{Path: dir, Files: files, Info: info, Pkg: pkg}
}

// buildDispatch builds the graph over the dispatch fixture.
func buildDispatch(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	return Build(fset, []Source{loadFixture(t, fset, "dispatch")})
}

// renderEdges flattens the graph to deterministic "caller -> callee [kind]"
// lines, the golden-list shape.
func renderEdges(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			line := e.Caller.Name + " -> " + e.Callee.Name + " [" + e.Kind.String() + "]"
			if e.Go {
				line += " go"
			}
			if e.Defer {
				line += " defer"
			}
			out = append(out, line)
		}
	}
	return out
}

// TestGoldenEdgeList pins the full edge list of the dispatch fixture:
// interface dispatch (CHA over both implementers), static concrete calls,
// method values, closures (containment and dynamic calls through captured
// bindings), immediate literal invocation, go/defer tags, and the cycle.
func TestGoldenEdgeList(t *testing.T) {
	g := buildDispatch(t)
	want := []string{
		"dispatch.speak -> dispatch.(Dog).Sound [interface]",
		"dispatch.speak -> dispatch.(*Cat).Sound [interface]",
		"dispatch.direct -> dispatch.(Dog).Sound [static]",
		"dispatch.methodValue -> dispatch.(*Cat).Sound [dynamic]",
		"dispatch.closures -> dispatch.closures$1 [closure]",
		"dispatch.closures -> dispatch.closures$2 [closure]",
		"dispatch.closures -> dispatch.closures$2 [dynamic]",
		"dispatch.closures -> dispatch.closures$3 [static]",
		"dispatch.closures -> dispatch.closures$3 [closure]",
		"dispatch.closures$2 -> dispatch.closures$1 [dynamic]",
		"dispatch.closures$2 -> dispatch.direct [static]",
		"dispatch.spawn -> dispatch.speak [static] go",
		"dispatch.spawn -> dispatch.direct [static] defer",
		"dispatch.unused -> dispatch.speak [static]",
		"dispatch.cycleA -> dispatch.cycleB [static]",
		"dispatch.cycleB -> dispatch.cycleA [static]",
	}
	got := renderEdges(g)
	if len(got) != len(want) {
		t.Errorf("edge count = %d, want %d", len(got), len(want))
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Errorf("edge %d:\n  got  %s\n  want %s", i, g, w)
		}
	}
}

// nodeByName finds a node or fails the test.
func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// names renders a node list for comparison.
func names(ns []*Node) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = n.Name
	}
	return strings.Join(parts, " ")
}

// TestReachable checks forward reachability, that unreachable functions
// stay out, and that an edge filter (ignore go edges) prunes the walk.
func TestReachable(t *testing.T) {
	g := buildDispatch(t)
	closures := nodeByName(t, g, "dispatch.closures")
	got := names(g.Reachable([]*Node{closures}, nil))
	want := "dispatch.(Dog).Sound dispatch.direct dispatch.closures " +
		"dispatch.closures$1 dispatch.closures$2 dispatch.closures$3"
	if got != want {
		t.Errorf("Reachable(closures) = %q, want %q", got, want)
	}
	for _, n := range g.Reachable([]*Node{closures}, nil) {
		if n.Name == "dispatch.unused" || n.Name == "dispatch.speak" {
			t.Errorf("unreachable node %s reported reachable", n.Name)
		}
	}
	spawn := nodeByName(t, g, "dispatch.spawn")
	noGo := names(g.Reachable([]*Node{spawn}, func(e *Edge) bool { return !e.Go }))
	wantNoGo := "dispatch.(Dog).Sound dispatch.direct dispatch.spawn"
	if noGo != wantNoGo {
		t.Errorf("Reachable(spawn, !go) = %q, want %q", noGo, wantNoGo)
	}
}

// TestSCCs checks that the deliberate two-node cycle is one component,
// everything else is a singleton, and components come out callees-first.
func TestSCCs(t *testing.T) {
	g := buildDispatch(t)
	comps := g.SCCs()
	var cycle []*Node
	seen := make(map[*Node]bool)
	order := make(map[*Node]int)
	for i, comp := range comps {
		for _, n := range comp {
			if seen[n] {
				t.Errorf("node %s in two components", n.Name)
			}
			seen[n] = true
			order[n] = i
		}
		if len(comp) > 1 {
			if cycle != nil {
				t.Errorf("more than one multi-node component")
			}
			cycle = comp
		}
	}
	if got, want := names(cycle), "dispatch.cycleA dispatch.cycleB"; got != want {
		t.Errorf("cycle component = %q, want %q", got, want)
	}
	if len(seen) != len(g.Nodes) {
		t.Errorf("components cover %d nodes, graph has %d", len(seen), len(g.Nodes))
	}
	// Reverse topological: a callee's component never comes after its
	// caller's (cycle members share one component).
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if order[e.Callee] > order[n] {
				t.Errorf("component order not reverse-topological: %s (%d) calls %s (%d)",
					n.Name, order[n], e.Callee.Name, order[e.Callee])
			}
		}
	}
}
