// Package callgraph builds a static, whole-program call graph over the
// parsed and type-checked packages cactuslint analyzes, so analyzers can
// reason interprocedurally: which functions a call site may invoke, which
// functions are reachable from a root, and which functions call each other
// in cycles.
//
// Resolution is class-hierarchy analysis (CHA) over the analyzed program:
//
//   - a call to a declared function or a method on a concrete receiver has
//     exactly one target;
//   - a call through an interface resolves to the matching method of every
//     named type in the program that implements the interface — an
//     over-approximation that never misses an in-program target;
//   - a call through a local function variable resolves to every function
//     literal, declared function, or method value the variable is assigned
//     anywhere in the enclosing function (flow-insensitive);
//   - function literals are first-class nodes named parent$1, parent$2, …
//     in source order, and every literal has a Closure edge from the
//     function that lexically contains it, so reachability can choose to
//     follow or ignore lexical containment.
//
// Calls whose target is outside the analyzed program (stdlib, export-data
// imports) produce no edge: the graph describes the program, and analyzers
// treat missing targets as "unknown, assume benign".
//
// The graph is deterministic: nodes are numbered by (file, offset) of their
// declaration and every adjacency list is sorted, so golden-edge-list tests
// and findings derived from graph walks are stable across runs.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Kind classifies how an edge's call site binds to its target.
type Kind int

const (
	// Static is a direct call to a declared function, a method on a
	// concrete receiver, or an immediately invoked function literal.
	Static Kind = iota
	// Interface is a CHA-resolved call through an interface method.
	Interface
	// Dynamic is a call through a local function variable, resolved to the
	// values assigned to it in the enclosing function.
	Dynamic
	// Closure links a function to a literal it lexically contains. It is
	// not a call: followers decide whether containment implies execution.
	Closure
)

// String names the kind for messages and golden edge lists.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	case Closure:
		return "closure"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Edge is one resolved call (or containment) from Caller to Callee.
type Edge struct {
	Caller *Node
	Callee *Node
	// Pos is the call site (or the literal's position for Closure edges).
	Pos token.Pos
	// Kind records how the target was resolved.
	Kind Kind
	// Go marks a call spawned in a go statement: the callee runs on a new
	// goroutine, so the call does not happen "while" the caller's locks
	// are held or its deadlines apply.
	Go bool
	// Defer marks a call made in a defer statement.
	Defer bool
}

// Node is one function in the graph: a declared function or method, or a
// function literal.
type Node struct {
	// Name qualifies the function deterministically:
	// "pkg/path.Func", "pkg/path.(*Recv).Method", or "…$N" for literals.
	Name string
	// Func is the type-checker's object; nil for function literals.
	Func *types.Func
	// Body is the function's body; never nil (bodyless declarations get
	// no node).
	Body *ast.BlockStmt
	// FType is the declared signature's syntax (parameter names for
	// argument mapping).
	FType *ast.FuncType
	// Info is the type-check info of the package the function lives in,
	// so analyzers can query types while walking a foreign node's body.
	Info *types.Info
	// Out and In are the adjacency lists, sorted by (Pos, Callee/Caller
	// name) once Build returns.
	Out []*Edge
	In  []*Edge

	id int
	// pos orders nodes deterministically.
	pos token.Pos
}

// Source is one package's worth of build input, mirroring the driver's
// package representation without importing it.
type Source struct {
	Path  string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Graph is the built call graph.
type Graph struct {
	Fset  *token.FileSet
	Nodes []*Node // deterministic order: by declaration position

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// NodeOf returns the node of a declared function or method, or nil when fn
// has no body in the analyzed program.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// NodeOfLit returns the node of a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build constructs the graph over the sources. All sources must share fset.
func Build(fset *token.FileSet, srcs []Source) *Graph {
	g := &Graph{
		Fset:   fset,
		byFunc: make(map[*types.Func]*Node),
		byLit:  make(map[*ast.FuncLit]*Node),
	}
	b := &builder{g: g}
	for _, src := range srcs {
		b.collectNodes(src)
		b.collectTypes(src)
	}
	b.numberNodes()
	for _, src := range srcs {
		b.resolveCalls(src)
	}
	b.sortEdges()
	return g
}

// builder carries the intermediate state of one Build.
type builder struct {
	g *Graph
	// concrete is every non-interface named type defined in the program,
	// for CHA interface resolution; deduplicated, deterministic order.
	concrete []*types.TypeName
	seen     map[*types.TypeName]bool
}

// collectNodes creates a node for every function declaration with a body
// and every function literal, naming literals parent$N in source order.
func (b *builder) collectNodes(src Source) {
	for _, file := range src.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := src.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			parent := &Node{Name: qualifiedName(fn), Func: fn, Body: fd.Body,
				FType: fd.Type, Info: src.Info, pos: fd.Pos()}
			b.g.byFunc[fn] = parent
			b.g.Nodes = append(b.g.Nodes, parent)
			b.collectLits(parent, fd.Body)
		}
	}
}

// collectLits creates nodes for the literals lexically inside body, with
// Closure edges from the containing node. Nesting recurses: a literal
// inside a literal belongs to the inner one.
func (b *builder) collectLits(parent *Node, body *ast.BlockStmt) {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n++
		child := &Node{
			Name:  fmt.Sprintf("%s$%d", parent.Name, n),
			Body:  lit.Body,
			FType: lit.Type,
			Info:  parent.Info,
			pos:   lit.Pos(),
		}
		b.g.byLit[lit] = child
		b.g.Nodes = append(b.g.Nodes, child)
		b.addEdge(&Edge{Caller: parent, Callee: child, Pos: lit.Pos(), Kind: Closure})
		b.collectLits(child, lit.Body)
		return false // inner literals belong to child
	})
}

// collectTypes gathers the program's concrete named types for CHA.
func (b *builder) collectTypes(src Source) {
	if b.seen == nil {
		b.seen = make(map[*types.TypeName]bool)
	}
	for _, obj := range src.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() || b.seen[tn] {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		b.seen[tn] = true
		b.concrete = append(b.concrete, tn)
	}
	sort.Slice(b.concrete, func(i, j int) bool {
		a, c := b.concrete[i], b.concrete[j]
		if a.Pkg() != c.Pkg() && a.Pkg() != nil && c.Pkg() != nil {
			return a.Pkg().Path() < c.Pkg().Path()
		}
		return a.Name() < c.Name()
	})
}

// numberNodes fixes the deterministic node order: declaration position.
func (b *builder) numberNodes() {
	fset := b.g.Fset
	sort.Slice(b.g.Nodes, func(i, j int) bool {
		a, c := fset.Position(b.g.Nodes[i].pos), fset.Position(b.g.Nodes[j].pos)
		if a.Filename != c.Filename {
			return a.Filename < c.Filename
		}
		return a.Offset < c.Offset
	})
	for i, n := range b.g.Nodes {
		n.id = i
	}
}

// resolveCalls walks every node's body and adds call edges.
func (b *builder) resolveCalls(src Source) {
	for _, file := range src.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := src.Info.Defs[fd.Name].(*types.Func)
			if node := b.g.byFunc[fn]; node != nil {
				b.resolveBody(src, node, fd.Body, nil)
			}
		}
	}
}

// resolveBody resolves the calls lexically inside body but outside nested
// literals (those resolve in their own invocation), tagging go/defer call
// sites. Local function-variable bindings are collected first so Dynamic
// calls can resolve flow-insensitively; inherited carries the enclosing
// scopes' bindings so a closure calling a captured function variable still
// resolves.
func (b *builder) resolveBody(src Source, node *Node, body *ast.BlockStmt, inherited map[types.Object][]*Node) {
	bindings := b.collectBindings(src, body)
	for obj, targets := range inherited {
		bindings[obj] = append(bindings[obj], targets...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			if child := b.g.byLit[st]; child != nil {
				b.resolveBody(src, child, st.Body, bindings)
			}
			return false
		case *ast.GoStmt:
			b.resolveCall(src, node, bindings, st.Call, true, false)
			b.resolveExprs(src, node, bindings, st.Call)
			return false
		case *ast.DeferStmt:
			b.resolveCall(src, node, bindings, st.Call, false, true)
			b.resolveExprs(src, node, bindings, st.Call)
			return false
		case *ast.CallExpr:
			b.resolveCall(src, node, bindings, st, false, false)
			return true
		}
		return true
	})
}

// resolveExprs resolves ordinary calls nested in a go/defer call's function
// and argument expressions (those evaluate on the caller's goroutine, now).
func (b *builder) resolveExprs(src Source, node *Node, bindings map[types.Object][]*Node, call *ast.CallExpr) {
	for _, e := range append([]ast.Expr{call.Fun}, call.Args...) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				b.resolveCall(src, node, bindings, inner, false, false)
			}
			return true
		})
	}
}

// collectBindings maps each local variable of function type to the
// candidate targets assigned to it anywhere in body: function literals,
// declared functions, and method values. The map is flow-insensitive.
func (b *builder) collectBindings(src Source, body *ast.BlockStmt) map[types.Object][]*Node {
	bindings := make(map[types.Object][]*Node)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := src.Info.Defs[id]
		if obj == nil {
			obj = src.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if t := b.targetOf(src, rhs); t != nil {
			bindings[obj] = append(bindings[obj], t)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					bind(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i := range vs.Names {
					bind(vs.Names[i], vs.Values[i])
				}
			}
		}
		return true
	})
	return bindings
}

// targetOf resolves an expression used as a function value: a literal, a
// declared function's name, or a method value.
func (b *builder) targetOf(src Source, e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.byLit[e]
	case *ast.Ident:
		if fn, ok := src.Info.Uses[e].(*types.Func); ok {
			return b.g.byFunc[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := src.Info.Uses[e.Sel].(*types.Func); ok {
			return b.g.byFunc[fn]
		}
	}
	return nil
}

// resolveCall adds the edges of one call site.
func (b *builder) resolveCall(src Source, caller *Node, bindings map[types.Object][]*Node, call *ast.CallExpr, isGo, isDefer bool) {
	add := func(target *Node, kind Kind) {
		if target != nil {
			b.addEdge(&Edge{Caller: caller, Callee: target, Pos: call.Pos(), Kind: kind, Go: isGo, Defer: isDefer})
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		add(b.g.byLit[fun], Static)
	case *ast.Ident:
		switch obj := src.Info.Uses[fun].(type) {
		case *types.Func:
			add(b.g.byFunc[obj], Static)
		case *types.Var:
			for _, t := range bindings[obj] {
				add(t, Dynamic)
			}
		}
	case *ast.SelectorExpr:
		sel, ok := src.Info.Selections[fun]
		if !ok {
			// Qualified identifier: pkg.F.
			if fn, ok := src.Info.Uses[fun.Sel].(*types.Func); ok {
				add(b.g.byFunc[fn], Static)
			}
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			// Calling a function-typed struct field: unresolved.
			return
		}
		if iface := interfaceOf(sel.Recv()); iface != nil {
			for _, t := range b.implementers(iface, fn.Name()) {
				add(t, Interface)
			}
			return
		}
		add(b.g.byFunc[fn], Static)
	}
}

// interfaceOf returns t's underlying interface, or nil for concrete types.
func interfaceOf(t types.Type) *types.Interface {
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// implementers returns the nodes of the named method of every concrete
// program type (or its pointer type) implementing iface, in deterministic
// type order.
func (b *builder) implementers(iface *types.Interface, method string) []*Node {
	var out []*Node
	for _, tn := range b.concrete {
		t := tn.Type()
		recv := t
		if !types.Implements(t, iface) {
			recv = types.NewPointer(t)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		ms := types.NewMethodSet(recv)
		for i := 0; i < ms.Len(); i++ {
			fn, ok := ms.At(i).Obj().(*types.Func)
			if !ok || fn.Name() != method {
				continue
			}
			if node := b.g.byFunc[fn]; node != nil {
				out = append(out, node)
			}
		}
	}
	return out
}

// addEdge appends the edge to both adjacency lists, deduplicating exact
// repeats (same site, same target, same kind).
func (b *builder) addEdge(e *Edge) {
	for _, prev := range e.Caller.Out {
		if prev.Callee == e.Callee && prev.Pos == e.Pos && prev.Kind == e.Kind {
			return
		}
	}
	e.Caller.Out = append(e.Caller.Out, e)
	e.Callee.In = append(e.Callee.In, e)
}

// sortEdges fixes every adjacency list's deterministic order.
func (b *builder) sortEdges() {
	for _, n := range b.g.Nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			a, c := n.Out[i], n.Out[j]
			if a.Pos != c.Pos {
				return a.Pos < c.Pos
			}
			if a.Callee.id != c.Callee.id {
				return a.Callee.id < c.Callee.id
			}
			return a.Kind < c.Kind
		})
		sort.Slice(n.In, func(i, j int) bool {
			a, c := n.In[i], n.In[j]
			if a.Caller.id != c.Caller.id {
				return a.Caller.id < c.Caller.id
			}
			return a.Pos < c.Pos
		})
	}
}

// qualifiedName renders a deterministic node name: "pkg/path.Func" or
// "pkg/path.(*Recv).Method".
func qualifiedName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig == nil || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fmt.Sprintf("%s.(%s%s).%s", pkg, ptr, name, fn.Name())
}

// Reachable returns every node reachable from the roots over edges for
// which follow returns true (nil follows every edge), including the roots
// themselves, in deterministic node order.
func (g *Graph) Reachable(roots []*Node, follow func(*Edge) bool) []*Node {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if follow != nil && !follow(e) {
				continue
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	out := make([]*Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// SCCs returns the strongly connected components of the call edges
// (Closure edges included), each component and the component list in
// deterministic node order. Components are returned in reverse
// topological order (callees before callers), the natural order for
// bottom-up interprocedural propagation.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan, iterative to survive deep graphs.
	index := make(map[*Node]int)
	low := make(map[*Node]int)
	onStack := make(map[*Node]bool)
	var stack []*Node
	var comps [][]*Node
	next := 0

	type frame struct {
		n  *Node
		ei int
	}
	for _, root := range g.Nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			n := f.n
			if f.ei == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.ei < len(n.Out) {
				e := n.Out[f.ei]
				f.ei++
				m := e.Callee
				if _, ok := index[m]; !ok {
					work = append(work, frame{n: m})
					advanced = true
					break
				} else if onStack[m] && index[m] < low[n] {
					low[n] = index[m]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var comp []*Node
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].id < comp[j].id })
				comps = append(comps, comp)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	return comps
}
