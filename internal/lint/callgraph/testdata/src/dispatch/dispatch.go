// Package dispatch exercises the call-graph builder's resolution modes:
// static calls, CHA interface dispatch, method values, local function
// bindings (including capture by closures), immediately invoked literals,
// and go/defer call sites. It deliberately imports nothing so the test
// loader needs no importer.
package dispatch

// Speaker is the dispatch interface.
type Speaker interface{ Sound() string }

// Dog implements Speaker by value.
type Dog struct{}

// Sound is Dog's implementation.
func (d Dog) Sound() string { return "woof" }

// Cat implements Speaker by pointer.
type Cat struct{}

// Sound is Cat's implementation.
func (c *Cat) Sound() string { return "meow" }

// Mute is a concrete type with no Sound method: never a CHA target.
type Mute struct{}

// Quiet keeps Mute used.
func (m Mute) Quiet() string { return "" }

// speak dispatches through the interface: CHA resolves to every
// implementation in the program.
func speak(s Speaker) string { return s.Sound() }

// direct calls the concrete method statically.
func direct() string {
	d := Dog{}
	return d.Sound()
}

// methodValue binds a method value to a local and calls through it.
func methodValue() string {
	c := &Cat{}
	f := c.Sound
	return f()
}

// closures exercises literal nodes, capture, and immediate invocation.
func closures() string {
	prefix := func() string { return "the " }
	wrap := func() string {
		return prefix() + direct()
	}
	return wrap() + func() string { return "!" }()
}

// spawn exercises go and defer call sites.
func spawn() {
	go speak(Dog{})
	defer direct()
}

// unused is reachable from nothing above: the reachability test's
// negative case.
func unused() string { return speak(&Cat{}) }

// cycleA and cycleB form the SCC test's two-node cycle.
func cycleA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycleB(n - 1)
}

// cycleB closes the cycle.
func cycleB(n int) int { return cycleA(n) }

var _ = []any{methodValue, closures, spawn, unused, cycleA, Mute{}.Quiet}
