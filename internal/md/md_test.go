package md

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/workloads"
)

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if (Vec3{3, 4, 0}).Norm() != 5 {
		t.Error("Norm")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
}

func TestNewSolvatedProtein(t *testing.T) {
	s, err := NewSolvatedProtein(50, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 250 {
		t.Errorf("N = %d", s.N)
	}
	if len(s.Bonds) != 49 || len(s.Angles) != 48 {
		t.Errorf("topology: %d bonds %d angles", len(s.Bonds), len(s.Angles))
	}
	// All positions inside the box.
	for i, p := range s.Pos {
		for k := 0; k < 3; k++ {
			if p[k] < 0 || p[k] >= s.Box {
				t.Fatalf("particle %d outside box: %v", i, p)
			}
		}
	}
	// Momentum zeroed.
	if s.Momentum().Norm() > 1e-9 {
		t.Errorf("initial momentum = %v", s.Momentum())
	}
	// Charges present (electrostatics path must fire).
	charged := 0
	for _, q := range s.Charge {
		if q != 0 {
			charged++
		}
	}
	if charged == 0 {
		t.Error("no charges in solvated protein")
	}
	if _, err := NewSolvatedProtein(2, 0, 1); err == nil {
		t.Error("too-small protein should fail")
	}
}

func TestNewColloid(t *testing.T) {
	s, err := NewColloid(8, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 108 {
		t.Errorf("N = %d", s.N)
	}
	if len(s.Bonds) != 0 {
		t.Error("colloid has no bonds")
	}
	for _, q := range s.Charge {
		if q != 0 {
			t.Fatal("colloid must be uncharged")
		}
	}
	if _, err := NewColloid(0, 10, 1); err == nil {
		t.Error("zero colloids should fail")
	}
}

func TestNeighborListFindsAllPairs(t *testing.T) {
	s, err := NewSolvatedProtein(20, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	cutoff, skin := 2.0, 0.3
	nl, err := BuildNeighborList(s, cutoff, skin)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force reference.
	rc2 := (cutoff + skin) * (cutoff + skin)
	want := 0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := s.minimumImage(s.Pos[i], s.Pos[j])
			if d.Dot(d) < rc2 {
				want++
			}
		}
	}
	if nl.Pairs() != want {
		t.Errorf("neighbor list has %d pairs, brute force %d", nl.Pairs(), want)
	}
	// Half list: no pair (i, j<=i).
	for i := 0; i < s.N; i++ {
		for _, j := range nl.NeighborsOf(i) {
			if int(j) <= i {
				t.Fatalf("half-list violation: %d -> %d", i, j)
			}
		}
	}
}

func TestCellListErrors(t *testing.T) {
	s, _ := NewColloid(1, 10, 1)
	if _, err := BuildCellList(s, 0); err == nil {
		t.Error("zero cell size should fail")
	}
}

func TestPairForcesNewtonThirdLaw(t *testing.T) {
	s, err := NewSolvatedProtein(30, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNeighborList(s, 2.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	clearForces(s)
	st := ComputePairForces(s, nl, 2.5, 0.9)
	if st.PairsInteracting == 0 {
		t.Fatal("no interacting pairs")
	}
	if st.CoulombPairs == 0 {
		t.Fatal("no coulomb pairs despite charges")
	}
	var net Vec3
	for _, f := range s.Force {
		net = net.Add(f)
	}
	if net.Norm() > 1e-8 {
		t.Errorf("net pair force = %v, want ~0 (Newton's third law)", net)
	}
}

func TestEnergyConservationNVE(t *testing.T) {
	// After equilibrating away initial overlaps, a short NVE run (no
	// thermostat) should roughly conserve kinetic + potential energy.
	s, err := NewColloid(4, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 2.5
	dt := 0.0005
	stepOnce := func(thermostat bool) {
		nl, err := BuildNeighborList(s, cutoff, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		clearForces(s)
		ComputePairForces(s, nl, cutoff, 0)
		Leapfrog(s, dt)
		if thermostat {
			BerendsenThermostat(s, 1.0, 0.2)
		}
	}
	for step := 0; step < 400; step++ { // equilibration: bleed off overlaps
		stepOnce(true)
	}
	energy := func() float64 {
		nl, err := BuildNeighborList(s, cutoff, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		clearForces(s)
		st := ComputePairForces(s, nl, cutoff, 0)
		return st.Energy + s.KineticEnergy()
	}
	e0 := energy()
	for step := 0; step < 200; step++ {
		stepOnce(false)
	}
	e1 := energy()
	drift := math.Abs(e1-e0) / math.Max(100, math.Abs(e0))
	if drift > 0.2 {
		t.Errorf("energy drift %.1f%% over 200 NVE steps (E %g -> %g)", drift*100, e0, e1)
	}
}

func TestThermostatDrivesTemperature(t *testing.T) {
	s, err := NewColloid(4, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Heat the system to T=4 and let the thermostat pull it to 1.
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(2)
	}
	for step := 0; step < 200; step++ {
		BerendsenThermostat(s, 1.0, 0.1)
	}
	if T := s.Temperature(); math.Abs(T-1.0) > 0.15 {
		t.Errorf("temperature after thermostatting = %g, want ~1", T)
	}
}

func TestBarostatMovesBox(t *testing.T) {
	s, err := NewColloid(4, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	box0 := s.Box
	for i := 0; i < 50; i++ {
		BerendsenBarostat(s, 1.0, 0, 0.05)
	}
	if s.Box == box0 {
		t.Error("barostat never adjusted the box")
	}
	for _, p := range s.Pos {
		for k := 0; k < 3; k++ {
			if p[k] < 0 || p[k] >= s.Box {
				t.Fatal("positions left the box after barostat rescale")
			}
		}
	}
}

func TestConstraintsRestoreBondLengths(t *testing.T) {
	s, err := NewSolvatedProtein(20, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb positions.
	for i := range s.Pos {
		s.Pos[i] = s.wrap(s.Pos[i].Add(Vec3{0.1 * float64(i%3), -0.05, 0.07}))
	}
	iters := ApplyConstraints(s, 1e-3, 50)
	if iters == 0 {
		t.Fatal("constraints did not run")
	}
	for _, b := range s.Bonds {
		r := s.minimumImage(s.Pos[b.I], s.Pos[b.J]).Norm()
		if math.Abs(r-b.R0)/b.R0 > 5e-3 {
			t.Errorf("bond %d-%d length %g, want %g", b.I, b.J, r, b.R0)
		}
	}
}

func TestFFTRoundTripAndParseval(t *testing.T) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.3), math.Cos(float64(i)*0.11))
	}
	orig := append([]complex128(nil), x...)
	var t0 float64
	for _, v := range orig {
		t0 += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	// Parseval: sum |X|^2 = n * sum |x|^2.
	var t1 float64
	for _, v := range x {
		t1 += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(t1-64*t0) > 1e-6*t1 {
		t.Errorf("Parseval violated: %g vs %g", t1, 64*t0)
	}
	if err := FFT(x, true); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
	if err := FFT(make([]complex128, 3), false); err == nil {
		t.Error("non-power-of-two length should fail")
	}
}

func TestFFTKnownSpectrum(t *testing.T) {
	// A pure cosine at bin 3 should produce spikes at bins 3 and n-3.
	n := 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*3*float64(i)/float64(n)), 0)
	}
	if err := FFT(x, false); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mag := cmplx.Abs(x[i])
		if i == 3 || i == n-3 {
			if math.Abs(mag-16) > 1e-9 {
				t.Errorf("bin %d magnitude %g, want 16", i, mag)
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude %g, want 0", i, mag)
		}
	}
}

func TestFFT3DRoundTrip(t *testing.T) {
	g, err := NewGrid3D(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		g.Data[i] = complex(float64(i%7), float64(i%3))
	}
	orig := append([]complex128(nil), g.Data...)
	if err := g.FFT3D(false); err != nil {
		t.Fatal(err)
	}
	if err := g.FFT3D(true); err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip failed at %d", i)
		}
	}
	if _, err := NewGrid3D(10); err == nil {
		t.Error("non-power-of-two grid should fail")
	}
}

func TestPMEChargeConservationInSpread(t *testing.T) {
	s, err := NewSolvatedProtein(40, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPME(16, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	updates := p.Spread(s)
	if updates == 0 {
		t.Fatal("spread performed no updates")
	}
	// Total grid charge equals total particle charge.
	var gridQ, partQ float64
	for _, v := range p.grid.Data {
		gridQ += real(v)
	}
	for _, q := range s.Charge {
		partQ += q
	}
	if math.Abs(gridQ-partQ) > 1e-9 {
		t.Errorf("grid charge %g != particle charge %g", gridQ, partQ)
	}
	// Solve produces a finite, nonnegative reciprocal energy.
	e, err := p.Solve(s.Box)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 || math.IsNaN(e) {
		t.Errorf("reciprocal energy = %g", e)
	}
	if reads := p.Gather(s); reads == 0 {
		t.Error("gather read nothing")
	}
	if _, err := NewPME(16, 0); err == nil {
		t.Error("zero alpha should fail")
	}
}

func newSession(t *testing.T) *profiler.Session {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return profiler.NewSession(d)
}

func TestConfigValidate(t *testing.T) {
	good := Gromacs().Config()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.DT = 0 },
		func(c *Config) { c.Cutoff = -1 },
		func(c *Config) { c.Skin = -0.1 },
		func(c *Config) { c.Replication = 0.5 },
		func(c *Config) { c.RebuildEvery = 0 },
	} {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Error("invalid config accepted")
		}
	}
}

func TestGromacsWorkloadKernelSet(t *testing.T) {
	w := Gromacs()
	if w.Abbr() != "GMS" || w.Suite() != workloads.Cactus || w.Domain() != workloads.Molecular {
		t.Error("GMS identity")
	}
	s := newSession(t)
	if err := w.Run(s); err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	// Table I: GMS executes 9 kernels.
	if len(ks) != 9 {
		names := make([]string, len(ks))
		for i, k := range ks {
			names[i] = k.Name
		}
		t.Errorf("GMS kernels = %d (%v), want 9", len(ks), names)
	}
	// The nonbonded kernel must be the dominant one.
	if ks[0].Name != "nbnxn_kernel_ElecEwald_VdwLJ_F" {
		t.Errorf("dominant kernel = %s", ks[0].Name)
	}
}

func TestLammpsRhodopsinKernelSet(t *testing.T) {
	s := newSession(t)
	if err := LammpsRhodopsin().Run(s); err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	// Table I: LMR executes 15 kernels.
	if len(ks) != 15 {
		names := make([]string, len(ks))
		for i, k := range ks {
			names[i] = k.Name
		}
		t.Errorf("LMR kernels = %d (%v), want 15", len(ks), names)
	}
	if ks[0].Name != "pair_lj_charmm_coul_long" {
		t.Errorf("dominant kernel = %s", ks[0].Name)
	}
}

func TestLammpsColloidKernelSetDiffersFromRhodopsin(t *testing.T) {
	s := newSession(t)
	if err := LammpsColloid().Run(s); err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	// Table I: LMC executes 9 kernels.
	if len(ks) != 9 {
		names := make([]string, len(ks))
		for i, k := range ks {
			names[i] = k.Name
		}
		t.Errorf("LMC kernels = %d (%v), want 9", len(ks), names)
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
	}
	// Observation #3: same code base, different input, different kernels.
	if !names["pair_colloid"] {
		t.Error("colloid input must trigger pair_colloid")
	}
	if names["pair_lj_charmm_coul_long"] || names["pppm_spread_charges"] {
		t.Error("colloid input must not trigger the electrostatics kernels")
	}
}

// TestDominantKernelCharacters pins the Figure 6c observations: the
// molecular workloads mix compute- and memory-intensive kernels among
// their dominant sets.
func TestDominantKernelCharacters(t *testing.T) {
	const elbow = 21.76
	for _, tc := range []struct {
		w       *Workload
		wantCmp string // a dominant kernel expected on the compute side
	}{
		{Gromacs(), "nbnxn_kernel_ElecEwald_VdwLJ_F"},
		{LammpsRhodopsin(), "pair_lj_charmm_coul_long"},
		{LammpsColloid(), "pair_colloid"},
	} {
		s := newSession(t)
		if err := tc.w.Run(s); err != nil {
			t.Fatal(err)
		}
		total := s.TotalTime()
		var sawCmp, sawMem bool
		cum := 0.0
		for _, k := range s.Kernels() {
			cum += (k.TotalTime / total).Float()
			ii := k.Metrics()[1] // InstIntensity
			if k.Name == tc.wantCmp {
				if ii < elbow {
					t.Errorf("%s: %s II=%.1f, want compute-intensive", tc.w.Abbr(), k.Name, ii)
				}
				sawCmp = true
			} else if ii < elbow {
				sawMem = true
			}
			if cum >= 0.9 {
				break
			}
		}
		if !sawCmp || !sawMem {
			t.Errorf("%s: dominant set not mixed (cmp=%v mem=%v)", tc.w.Abbr(), sawCmp, sawMem)
		}
	}
}

func TestEngineRebuildsNeighborList(t *testing.T) {
	s := newSession(t)
	sys, err := NewColloid(8, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LammpsColloid().Config()
	cfg.Steps = 20
	eng, err := NewEngine(cfg, sys, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Rebuilds < 2 {
		t.Errorf("rebuilds = %d, want >= 2 over 20 steps", eng.Rebuilds)
	}
}
