package md

import (
	"testing"
)

// TestDebugTimeShares prints per-kernel time shares under -v; it never
// fails. Used while calibrating the engine's kernel balance.
func TestDebugTimeShares(t *testing.T) {
	for _, w := range []*Workload{Gromacs(), LammpsRhodopsin(), LammpsColloid()} {
		s := newSession(t)
		if err := w.Run(s); err != nil {
			t.Fatal(err)
		}
		total := s.TotalTime()
		t.Logf("=== %s: %d launches, %.3f ms GPU time, %d kernels, %d Mwarp insts",
			w.Abbr(), s.LaunchCount(), total*1e3, len(s.Kernels()), s.TotalWarpInstructions()/1e6)
		for _, k := range s.Kernels() {
			m := k.Metrics()
			t.Logf("  %-36s share=%5.1f%% inv=%4d II=%8.2f GIPS=%7.2f occ=%4.1f",
				k.Name, 100*k.TotalTime/total, k.Invocations, m[1], m[0], m[3])
		}
	}
}
