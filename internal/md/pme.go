package md

import (
	"fmt"
	"math"
)

// PME implements a particle-mesh Ewald style long-range electrostatics
// pipeline: trilinear charge spreading onto a periodic grid, a forward 3-D
// FFT, a reciprocal-space Green's-function solve, an inverse FFT, and a
// potential gather back to the particles. It is a simplified but genuine
// k-space solver — the engine maps its five phases onto the five PME kernels
// the real Gromacs/LAMMPS GPU builds launch.
type PME struct {
	GridN int
	Alpha float64
	grid  *Grid3D
}

// NewPME builds a PME solver with an n^3 grid (n a power of two).
func NewPME(n int, alpha float64) (*PME, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("md: PME alpha %g must be positive", alpha)
	}
	g, err := NewGrid3D(n)
	if err != nil {
		return nil, err
	}
	return &PME{GridN: n, Alpha: alpha, grid: g}, nil
}

// Spread deposits particle charges onto the grid with trilinear weights and
// returns the number of grid-point updates performed.
func (p *PME) Spread(s *System) int {
	for i := range p.grid.Data {
		p.grid.Data[i] = 0
	}
	n := p.GridN
	h := s.Box / float64(n)
	updates := 0
	for i := 0; i < s.N; i++ {
		q := s.Charge[i]
		if q == 0 {
			continue
		}
		pos := s.wrap(s.Pos[i])
		fx, fy, fz := pos[0]/h, pos[1]/h, pos[2]/h
		ix, iy, iz := int(fx), int(fy), int(fz)
		wx, wy, wz := fx-float64(ix), fy-float64(iy), fz-float64(iz)
		for dx := 0; dx < 2; dx++ {
			for dy := 0; dy < 2; dy++ {
				for dz := 0; dz < 2; dz++ {
					gx, gy, gz := (ix+dx)%n, (iy+dy)%n, (iz+dz)%n
					w := lerpW(wx, dx) * lerpW(wy, dy) * lerpW(wz, dz)
					p.grid.Set(gx, gy, gz, p.grid.At(gx, gy, gz)+complex(q*w, 0))
					updates++
				}
			}
		}
	}
	return updates
}

func lerpW(f float64, d int) float64 {
	if d == 0 {
		return 1 - f
	}
	return f
}

// Solve runs forward FFT, applies the reciprocal-space Green's function
// exp(-k^2/(4 alpha^2))/k^2, and runs the inverse FFT, returning the
// reciprocal-space energy estimate.
func (p *PME) Solve(box float64) (float64, error) {
	if err := p.grid.FFT3D(false); err != nil {
		return 0, err
	}
	n := p.GridN
	twoPiL := 2 * math.Pi / box
	var energy float64
	for x := 0; x < n; x++ {
		kx := freq(x, n) * twoPiL
		for y := 0; y < n; y++ {
			ky := freq(y, n) * twoPiL
			for z := 0; z < n; z++ {
				kz := freq(z, n) * twoPiL
				k2 := kx*kx + ky*ky + kz*kz
				idx := (x*n+y)*n + z
				if k2 == 0 {
					p.grid.Data[idx] = 0
					continue
				}
				g := math.Exp(-k2/(4*p.Alpha*p.Alpha)) / k2
				v := p.grid.Data[idx]
				mag2 := real(v)*real(v) + imag(v)*imag(v)
				energy += g * mag2
				p.grid.Data[idx] = v * complex(g, 0)
			}
		}
	}
	if err := p.grid.FFT3D(true); err != nil {
		return 0, err
	}
	return energy * 2 * math.Pi / (box * box * box), nil
}

func freq(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}

// Gather interpolates the grid potential back to the charged particles and
// applies forces via a finite-difference gradient; it returns the number of
// grid reads performed.
func (p *PME) Gather(s *System) int {
	n := p.GridN
	h := s.Box / float64(n)
	reads := 0
	for i := 0; i < s.N; i++ {
		q := s.Charge[i]
		if q == 0 {
			continue
		}
		pos := s.wrap(s.Pos[i])
		ix := int(pos[0]/h) % n
		iy := int(pos[1]/h) % n
		iz := int(pos[2]/h) % n
		// Central-difference field from the potential grid.
		ex := real(p.grid.At((ix+1)%n, iy, iz) - p.grid.At((ix+n-1)%n, iy, iz))
		ey := real(p.grid.At(ix, (iy+1)%n, iz) - p.grid.At(ix, (iy+n-1)%n, iz))
		ez := real(p.grid.At(ix, iy, (iz+1)%n) - p.grid.At(ix, iy, (iz+n-1)%n))
		reads += 6
		f := Vec3{ex, ey, ez}.Scale(-q / (2 * h))
		s.Force[i] = s.Force[i].Add(f)
	}
	return reads
}
