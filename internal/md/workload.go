package md

import (
	"fmt"

	"repro/internal/profiler"
	"repro/internal/workloads"
)

// Workload is one configured molecular-simulation benchmark.
type Workload struct {
	name, abbr string
	build      func() (*System, error)
	cfg        Config
}

var _ workloads.Workload = (*Workload)(nil)

// Name returns the full workload name.
func (w *Workload) Name() string { return w.name }

// Abbr returns the paper's abbreviation.
func (w *Workload) Abbr() string { return w.abbr }

// Suite returns Cactus.
func (w *Workload) Suite() workloads.Suite { return workloads.Cactus }

// Domain returns the molecular-simulation domain.
func (w *Workload) Domain() workloads.Domain { return workloads.Molecular }

// Config exposes the run configuration (for tests and ablations).
func (w *Workload) Config() Config { return w.cfg }

// Run builds the particle system and executes the engine against s.
func (w *Workload) Run(s *profiler.Session) error {
	sys, err := w.build()
	if err != nil {
		return fmt.Errorf("md: %s: %w", w.abbr, err)
	}
	eng, err := NewEngine(w.cfg, sys, s)
	if err != nil {
		return fmt.Errorf("md: %s: %w", w.abbr, err)
	}
	if err := eng.Run(); err != nil {
		return fmt.Errorf("md: %s: %w", w.abbr, err)
	}
	return nil
}

// Gromacs returns GMS: the Gromacs-like NPT equilibration of a solvated
// T4-lysozyme-scale protein (paper: 5,000 NPT steps; here: a reduced tile
// extrapolated by the replication factor).
func Gromacs() *Workload {
	return &Workload{
		name: "Gromacs NPT equilibration (T4 lysozyme)",
		abbr: "GMS",
		build: func() (*System, error) {
			return NewSolvatedProtein(240, 1100, 101)
		},
		cfg: Config{
			Flavor:        GromacsFlavor,
			Steps:         40,
			DT:            0.002,
			Cutoff:        2.6,
			Skin:          0.4,
			EwaldAlpha:    0.9,
			PMEGrid:       16,
			NPT:           true,
			TargetT:       1.0,
			Replication:   60, // launch-overhead-realistic extrapolation (~80k particles)
			RebuildEvery:  20,
			PairCostScale: 5.0, // nbnxn 4x8 cluster padding + pruning work
		},
	}
}

// LammpsRhodopsin returns LMR: the LAMMPS-like solvated-protein (rhodopsin)
// run with full electrostatics (paper: 32 K atoms, 3,000 steps).
func LammpsRhodopsin() *Workload {
	return &Workload{
		name: "LAMMPS protein simulation (rhodopsin)",
		abbr: "LMR",
		build: func() (*System, error) {
			return NewSolvatedProtein(320, 1300, 202)
		},
		cfg: Config{
			Flavor:        LammpsFlavor,
			Steps:         36,
			DT:            0.002,
			Cutoff:        2.6,
			Skin:          0.4,
			EwaldAlpha:    0.9,
			PMEGrid:       16,
			TargetT:       1.0,
			Replication:   60, // launch-overhead-realistic extrapolation (~95k particles)
			RebuildEvery:  8,
			PairCostScale: 3.0, // CHARMM switching + exclusion work
		},
	}
}

// LammpsColloid returns LMC: the LAMMPS-like colloid run — pairwise
// interactions between particles, no electrostatics (paper: 60 K atoms,
// 2,000 steps).
func LammpsColloid() *Workload {
	return &Workload{
		name: "LAMMPS pairwise colloid interactions",
		abbr: "LMC",
		build: func() (*System, error) {
			return NewColloid(60, 1440, 303)
		},
		cfg: Config{
			Flavor:       LammpsFlavor,
			Steps:        32,
			DT:           0.002,
			Cutoff:       3.0,
			Skin:         0.5,
			EwaldAlpha:   0, // triggers the colloid kernel split
			PMEGrid:      0,
			TargetT:      1.0,
			Replication:  80, // launch-overhead-realistic extrapolation (~120k particles)
			RebuildEvery: 8,
		},
	}
}
