package md

import "math"

// Leapfrog advances velocities and positions by one step of size dt.
func Leapfrog(s *System, dt float64) {
	for i := 0; i < s.N; i++ {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(dt / s.Mass[i]))
		s.Pos[i] = s.wrap(s.Pos[i].Add(s.Vel[i].Scale(dt)))
	}
}

// BerendsenThermostat rescales velocities toward target temperature T0 with
// coupling ratio dt/tau.
func BerendsenThermostat(s *System, T0, dtOverTau float64) {
	T := s.Temperature()
	if T <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dtOverTau*(T0/T-1))
	// Clamp to avoid violent rescaling on cold starts.
	lambda = math.Max(0.8, math.Min(1.25, lambda))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(lambda)
	}
}

// BerendsenBarostat isotropically rescales the box and positions toward a
// target pressure, using the virial-free ideal estimate plus the pair virial
// approximated by energy (adequate for an equilibration workload model).
// It returns the applied scale factor.
func BerendsenBarostat(s *System, targetP, virial, dtOverTau float64) float64 {
	vol := s.Box * s.Box * s.Box
	// P = (N k T + virial/3) / V   (k_B = 1)
	p := (float64(s.N)*s.Temperature() + virial/3) / vol
	mu := math.Cbrt(1 - dtOverTau*(targetP-p)*0.01)
	mu = math.Max(0.998, math.Min(1.002, mu))
	s.Box *= mu
	for i := range s.Pos {
		s.Pos[i] = s.wrap(s.Pos[i].Scale(mu))
	}
	return mu
}

// ApplyConstraints runs a SHAKE-style iterative bond-length constraint
// (the stand-in for Gromacs' LINCS kernel) and returns the number of
// bond-correction iterations actually performed.
func ApplyConstraints(s *System, tol float64, maxIter int) int {
	if len(s.Bonds) == 0 {
		return 0
	}
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		worst := 0.0
		for _, b := range s.Bonds {
			d := s.minimumImage(s.Pos[b.I], s.Pos[b.J])
			r := d.Norm()
			if r == 0 {
				continue
			}
			diff := (r - b.R0) / b.R0
			if math.Abs(diff) > worst {
				worst = math.Abs(diff)
			}
			// Move both atoms toward the constraint, mass-weighted.
			mi, mj := s.Mass[b.I], s.Mass[b.J]
			corr := d.Scale((b.R0 - r) / r / (mi + mj))
			s.Pos[b.I] = s.wrap(s.Pos[b.I].Add(corr.Scale(mj)))
			s.Pos[b.J] = s.wrap(s.Pos[b.J].Sub(corr.Scale(mi)))
		}
		iters++
		if worst < tol {
			break
		}
	}
	return iters
}
