package md

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes an in-place radix-2 Cooley-Tukey FFT of x. len(x) must be a
// power of two. inverse selects the inverse transform (with 1/n scaling).
func FFT(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("md: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// Grid3D is a cubic complex grid stored flat in x-major order.
type Grid3D struct {
	N    int
	Data []complex128
}

// NewGrid3D allocates an n^3 grid; n must be a power of two.
func NewGrid3D(n int) (*Grid3D, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("md: grid size %d is not a power of two", n)
	}
	return &Grid3D{N: n, Data: make([]complex128, n*n*n)}, nil
}

// At returns the value at (x, y, z).
func (g *Grid3D) At(x, y, z int) complex128 {
	return g.Data[(x*g.N+y)*g.N+z]
}

// Set assigns the value at (x, y, z).
func (g *Grid3D) Set(x, y, z int, v complex128) {
	g.Data[(x*g.N+y)*g.N+z] = v
}

// FFT3D transforms the grid along all three axes.
func (g *Grid3D) FFT3D(inverse bool) error {
	n := g.N
	line := make([]complex128, n)
	// z-lines are contiguous.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			base := (x*n + y) * n
			if err := FFT(g.Data[base:base+n], inverse); err != nil {
				return err
			}
		}
	}
	// y-lines.
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				line[y] = g.At(x, y, z)
			}
			if err := FFT(line, inverse); err != nil {
				return err
			}
			for y := 0; y < n; y++ {
				g.Set(x, y, z, line[y])
			}
		}
	}
	// x-lines.
	for y := 0; y < n; y++ {
		for z := 0; z < n; z++ {
			for x := 0; x < n; x++ {
				line[x] = g.At(x, y, z)
			}
			if err := FFT(line, inverse); err != nil {
				return err
			}
			for x := 0; x < n; x++ {
				g.Set(x, y, z, line[x])
			}
		}
	}
	return nil
}
