// Package md implements the molecular-dynamics substrate behind the Cactus
// molecular-simulation workloads (GMS: a Gromacs-like NPT equilibration of a
// solvated protein; LMR: a LAMMPS-like solvated-protein run; LMC: a
// LAMMPS-like colloid run). The engine is a real MD code — cell lists,
// Verlet neighbor lists, Lennard-Jones and short-range Coulomb forces, a
// PME-style long-range pipeline with an actual 3-D FFT, leapfrog
// integration, constraints, thermostat and barostat — executed at reduced
// particle count. Every phase launches kernels on the device model with
// instruction and memory counts derived from the work actually performed,
// extrapolated to paper-scale systems by a documented replication factor.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-component vector.
type Vec3 [3]float64

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v[0] + o[0], v[1] + o[1], v[2] + o[2]} }

// Sub returns v - o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v[0] - o[0], v[1] - o[1], v[2] - o[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns the dot product.
func (v Vec3) Dot(o Vec3) float64 { return v[0]*o[0] + v[1]*o[1] + v[2]*o[2] }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// LJParam holds Lennard-Jones parameters for one particle type.
type LJParam struct {
	Epsilon float64
	Sigma   float64
}

// Bond is a harmonic bond between two particles.
type Bond struct {
	I, J int
	R0   float64 // equilibrium length
	K    float64 // spring constant
}

// Angle is a harmonic angle I-J-K.
type Angle struct {
	I, J, K int
	Theta0  float64
	KTheta  float64
}

// System holds the particle state of one simulation.
type System struct {
	N      int
	Pos    []Vec3
	Vel    []Vec3
	Force  []Vec3
	Mass   []float64
	Charge []float64
	Type   []int
	Types  []LJParam
	Bonds  []Bond
	Angles []Angle
	Box    float64 // cubic periodic box edge
}

// minimumImage returns the periodic minimum-image displacement a-b.
func (s *System) minimumImage(a, b Vec3) Vec3 {
	d := a.Sub(b)
	for k := 0; k < 3; k++ {
		if d[k] > s.Box/2 {
			d[k] -= s.Box
		} else if d[k] < -s.Box/2 {
			d[k] += s.Box
		}
	}
	return d
}

// wrap folds a coordinate back into the box. It is robust to arbitrarily
// large (but finite) excursions; non-finite coordinates are clamped to the
// box center so a numerical blow-up surfaces as bad physics rather than a
// hang.
func (s *System) wrap(p Vec3) Vec3 {
	for k := 0; k < 3; k++ {
		v := p[k]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			p[k] = s.Box / 2
			continue
		}
		v = math.Mod(v, s.Box)
		if v < 0 {
			v += s.Box
		}
		if v >= s.Box { // guard against Mod returning exactly Box via rounding
			v = 0
		}
		p[k] = v
	}
	return p
}

// KineticEnergy returns the system's kinetic energy.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i := 0; i < s.N; i++ {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Dot(s.Vel[i])
	}
	return ke
}

// Temperature returns the instantaneous kinetic temperature (k_B = 1 units).
func (s *System) Temperature() float64 {
	if s.N == 0 {
		return 0
	}
	dof := float64(3*s.N - 3)
	return 2 * s.KineticEnergy() / dof
}

// Momentum returns the total momentum (useful as a conservation check).
func (s *System) Momentum() Vec3 {
	var p Vec3
	for i := 0; i < s.N; i++ {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	return p
}

// zeroMomentum removes center-of-mass drift.
func (s *System) zeroMomentum() {
	p := s.Momentum()
	var totalMass float64
	for _, m := range s.Mass {
		totalMass += m
	}
	if totalMass == 0 {
		return
	}
	drift := p.Scale(1 / totalMass)
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(drift)
	}
}

// initVelocities draws Maxwell-Boltzmann velocities at temperature T.
func (s *System) initVelocities(r *rand.Rand, T float64) {
	for i := 0; i < s.N; i++ {
		sd := math.Sqrt(T / s.Mass[i])
		s.Vel[i] = Vec3{r.NormFloat64() * sd, r.NormFloat64() * sd, r.NormFloat64() * sd}
	}
	s.zeroMomentum()
}

func newSystem(n int, box float64) *System {
	return &System{
		N:      n,
		Pos:    make([]Vec3, n),
		Vel:    make([]Vec3, n),
		Force:  make([]Vec3, n),
		Mass:   make([]float64, n),
		Charge: make([]float64, n),
		Type:   make([]int, n),
		Box:    box,
	}
}

// NewSolvatedProtein builds a compact bonded "protein" globule of nProtein
// particles (chain with bonds and angles, alternating partial charges)
// solvated by nSolvent neutral-ish particles on a perturbed lattice —
// the structure of the Gromacs T4-lysozyme and LAMMPS rhodopsin inputs.
func NewSolvatedProtein(nProtein, nSolvent int, seed int64) (*System, error) {
	if nProtein < 4 || nSolvent < 0 {
		return nil, fmt.Errorf("md: solvated protein needs >= 4 protein particles, got %d", nProtein)
	}
	n := nProtein + nSolvent
	// Density ~0.6 particles/sigma^3.
	box := math.Cbrt(float64(n) / 0.6)
	s := newSystem(n, box)
	s.Types = []LJParam{
		{Epsilon: 1.0, Sigma: 1.0},  // protein backbone
		{Epsilon: 0.65, Sigma: 0.9}, // solvent
	}
	r := rand.New(rand.NewSource(seed))

	// Protein: self-avoiding-ish random walk folded near the box center.
	center := Vec3{box / 2, box / 2, box / 2}
	cur := center
	for i := 0; i < nProtein; i++ {
		step := Vec3{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		nrm := step.Norm()
		if nrm == 0 {
			nrm = 1
		}
		cur = cur.Add(step.Scale(0.8 / nrm))
		// Soft restraint toward the center keeps the globule compact.
		cur = cur.Add(center.Sub(cur).Scale(0.05))
		s.Pos[i] = s.wrap(cur)
		s.Mass[i] = 1.0
		s.Type[i] = 0
		// Alternating partial charges drive the electrostatics path.
		if i%2 == 0 {
			s.Charge[i] = 0.4
		} else {
			s.Charge[i] = -0.4
		}
		if i > 0 {
			s.Bonds = append(s.Bonds, Bond{I: i - 1, J: i, R0: 0.8, K: 100})
		}
		if i > 1 {
			s.Angles = append(s.Angles, Angle{I: i - 2, J: i - 1, K: i, Theta0: 2.0, KTheta: 20})
		}
	}

	// Solvent: perturbed simple-cubic lattice filling the box.
	side := int(math.Ceil(math.Cbrt(float64(nSolvent))))
	if side == 0 {
		side = 1
	}
	spacing := box / float64(side)
	idx := nProtein
	for x := 0; x < side && idx < n; x++ {
		for y := 0; y < side && idx < n; y++ {
			for z := 0; z < side && idx < n; z++ {
				p := Vec3{
					(float64(x) + 0.5 + 0.2*r.NormFloat64()) * spacing,
					(float64(y) + 0.5 + 0.2*r.NormFloat64()) * spacing,
					(float64(z) + 0.5 + 0.2*r.NormFloat64()) * spacing,
				}
				s.Pos[idx] = s.wrap(p)
				s.Mass[idx] = 0.8
				s.Type[idx] = 1
				// Small alternating charges so PME has solvent work too.
				if idx%2 == 0 {
					s.Charge[idx] = 0.1
				} else {
					s.Charge[idx] = -0.1
				}
				idx++
			}
		}
	}
	s.initVelocities(r, 1.0)
	return s, nil
}

// NewColloid builds a binary colloid system: nLarge big particles suspended
// in nSmall solvent particles (the LAMMPS colloid input). No bonds, no
// charges — the electrostatics kernels never fire, which is exactly the
// input sensitivity the paper observes between LMR and LMC.
func NewColloid(nLarge, nSmall int, seed int64) (*System, error) {
	if nLarge < 1 || nSmall < 0 {
		return nil, fmt.Errorf("md: colloid needs >= 1 large particle, got %d", nLarge)
	}
	n := nLarge + nSmall
	box := math.Cbrt(float64(nLarge)*20 + float64(nSmall)/0.5)
	s := newSystem(n, box)
	s.Types = []LJParam{
		{Epsilon: 1.5, Sigma: 2.5}, // colloid particle
		{Epsilon: 1.0, Sigma: 1.0}, // solvent
	}
	r := rand.New(rand.NewSource(seed))
	// Large particles on a sparse lattice so they do not overlap.
	sideL := int(math.Ceil(math.Cbrt(float64(nLarge))))
	spacingL := box / float64(sideL)
	idx := 0
	for x := 0; x < sideL && idx < nLarge; x++ {
		for y := 0; y < sideL && idx < nLarge; y++ {
			for z := 0; z < sideL && idx < nLarge; z++ {
				s.Pos[idx] = Vec3{(float64(x) + 0.5) * spacingL, (float64(y) + 0.5) * spacingL, (float64(z) + 0.5) * spacingL}
				s.Mass[idx] = 10
				s.Type[idx] = 0
				idx++
			}
		}
	}
	// Solvent fills remaining space randomly, rejecting colloid overlap.
	for ; idx < n; idx++ {
		for try := 0; ; try++ {
			p := Vec3{r.Float64() * box, r.Float64() * box, r.Float64() * box}
			ok := true
			for j := 0; j < nLarge; j++ {
				if s.minimumImage(p, s.Pos[j]).Norm() < 1.8 {
					ok = false
					break
				}
			}
			if ok || try > 50 {
				s.Pos[idx] = p
				break
			}
		}
		s.Mass[idx] = 1
		s.Type[idx] = 1
	}
	s.initVelocities(r, 1.0)
	return s, nil
}
