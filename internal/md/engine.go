package md

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/isa"
	"repro/internal/memsim"
	"repro/internal/profiler"
)

// Flavor selects the kernel decomposition style of the host MD package.
type Flavor uint8

const (
	// GromacsFlavor uses the nbnxn/PME kernel split of Gromacs' CUDA build.
	GromacsFlavor Flavor = iota
	// LammpsFlavor uses the pair/neigh/pppm/fix kernel split of the LAMMPS
	// GPU package.
	LammpsFlavor
)

// Config parameterizes one MD run.
type Config struct {
	Flavor Flavor
	Steps  int
	DT     float64
	Cutoff float64
	Skin   float64
	// EwaldAlpha enables electrostatics (real-space erfc + PME) when > 0.
	EwaldAlpha float64
	// PMEGrid is the PME grid edge (power of two); 0 disables PME.
	PMEGrid int
	// NPT enables the barostat (the Gromacs NPT-equilibration workload).
	NPT bool
	// TargetT is the thermostat set point.
	TargetT float64
	// Replication extrapolates the reduced simulation to paper scale: every
	// kernel's instruction mix and memory streams are scaled by this factor
	// (the simulated system is treated as a sampled tile of the full one).
	Replication float64
	// RebuildEvery rebuilds the neighbor list every k steps at most; it also
	// rebuilds when displacement exceeds half the skin.
	RebuildEvery int
	// PairCostScale calibrates the per-pair instruction cost of the
	// nonbonded kernel relative to the plain LJ+Ewald count: Gromacs'
	// nbnxn kernels pad 4x8 clusters (extra evaluated pairs), LAMMPS'
	// CHARMM style adds switching-function and exclusion work. Zero
	// defaults to 1.
	PairCostScale float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Steps <= 0:
		return fmt.Errorf("md: steps %d", c.Steps)
	case c.DT <= 0:
		return fmt.Errorf("md: dt %g", c.DT)
	case c.Cutoff <= 0:
		return fmt.Errorf("md: cutoff %g", c.Cutoff)
	case c.Skin < 0:
		return fmt.Errorf("md: negative skin")
	case c.Replication < 1:
		return fmt.Errorf("md: replication %g < 1", c.Replication)
	case c.RebuildEvery <= 0:
		return fmt.Errorf("md: rebuild interval %d", c.RebuildEvery)
	}
	return nil
}

// Engine couples a System to a profiling session and runs the simulation,
// launching one kernel per phase per step with counts taken from the work
// the phase actually did.
type Engine struct {
	cfg  Config
	sys  *System
	sess *profiler.Session
	pme  *PME
	nl   *NeighborList
	ref  []Vec3

	// LastEnergy is the most recent total potential energy (diagnostics).
	LastEnergy float64
	// Rebuilds counts neighbor-list rebuilds.
	Rebuilds int
}

// NewEngine builds an engine.
func NewEngine(cfg Config, sys *System, sess *profiler.Session) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, sys: sys, sess: sess}
	if cfg.PMEGrid > 0 && cfg.EwaldAlpha > 0 {
		p, err := NewPME(cfg.PMEGrid, cfg.EwaldAlpha)
		if err != nil {
			return nil, err
		}
		e.pme = p
	}
	return e, nil
}

// Run executes all configured steps.
func (e *Engine) Run() error {
	for step := 0; step < e.cfg.Steps; step++ {
		if err := e.Step(step); err != nil {
			return fmt.Errorf("md: step %d: %w", step, err)
		}
	}
	return nil
}

// launch assembles and issues one kernel.
func (e *Engine) launch(name string, threads int, mix isa.Mix, streams []memsim.Stream, div float64) {
	r := e.cfg.Replication
	scaled := make([]memsim.Stream, len(streams))
	for i, s := range streams {
		s.FootprintBytes = uint64(float64(s.FootprintBytes) * r)
		s.AccessBytes = uint64(float64(s.AccessBytes) * r)
		scaled[i] = s
	}
	block := 128
	grid := (int(float64(threads)*r) + block - 1) / block
	if grid < 1 {
		grid = 1
	}
	e.sess.MustLaunch(gpu.KernelSpec{
		Name:               name,
		Grid:               gpu.D1(grid),
		Block:              gpu.D1(block),
		Mix:                mix.Scale(r),
		Streams:            scaled,
		DivergenceFraction: div,
	})
}

// warp converts a thread-instruction count estimate into warp instructions.
func warp(threadInsts float64) uint64 {
	w := threadInsts / 32
	if w < 1 {
		w = 1
	}
	return uint64(w)
}

const f4 = 16 // bytes of a float4 (position / force record)

// Step advances the simulation one step, launching every phase's kernel.
func (e *Engine) Step(step int) error {
	s := e.sys
	cfg := e.cfg
	n := float64(s.N)

	// --- Neighbor list maintenance ---------------------------------------
	needRebuild := e.nl == nil || step%cfg.RebuildEvery == 0
	if !needRebuild && MaxDisplacement(s, e.ref) > cfg.Skin/2 {
		needRebuild = true
	}
	if needRebuild {
		nl, err := BuildNeighborList(s, cfg.Cutoff, cfg.Skin)
		if err != nil {
			return err
		}
		e.nl = nl
		e.ref = append(e.ref[:0], s.Pos...)
		e.Rebuilds++
		pairs := float64(nl.Pairs())
		binMix, buildMix := isa.Mix{}, isa.Mix{}
		binMix.Add(isa.INT, warp(n*12))
		binMix.Add(isa.LoadGlobal, warp(n*2))
		binMix.Add(isa.StoreGlobal, warp(n))
		binMix.Add(isa.Misc, warp(n*2))
		buildMix.Add(isa.FP32, warp(pairs*8))
		buildMix.Add(isa.INT, warp(pairs*6))
		buildMix.Add(isa.LoadGlobal, warp(pairs*1.5))
		buildMix.Add(isa.StoreGlobal, warp(pairs/2))
		buildMix.Add(isa.Branch, warp(pairs))
		buildMix.Add(isa.Misc, warp(pairs))
		posBytes := uint64(s.N * f4)
		listBytes := uint64(nl.Pairs() * 4)
		binStreams := []memsim.Stream{
			{Name: "pos", FootprintBytes: posBytes, AccessBytes: posBytes, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
			{Name: "bins", FootprintBytes: uint64(s.N * 4), AccessBytes: uint64(s.N * 4), ElemBytes: 4, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
		}
		buildStreams := []memsim.Stream{
			{Name: "pos-gather", FootprintBytes: posBytes, AccessBytes: uint64(float64(nl.Pairs()) * 4 * 4), ElemBytes: 16, Pattern: memsim.Random, Partitioned: true},
			{Name: "list-out", FootprintBytes: listBytes, AccessBytes: listBytes, ElemBytes: 4, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
		}
		switch cfg.Flavor {
		case GromacsFlavor:
			// Gromacs folds binning + list construction into one pairlist
			// pass on the GPU.
			buildMix.AddMix(binMix)
			e.launch("nbnxn_pairlist_build", s.N, buildMix, append(binStreams, buildStreams...), 0.2)
		case LammpsFlavor:
			e.launch("neigh_bin_atoms", s.N, binMix, binStreams, 0.05)
			e.launch("neigh_build_list", s.N, buildMix, buildStreams, 0.25)
		}
	}

	// --- Pair forces ------------------------------------------------------
	clearForces(s)
	st := ComputePairForces(s, e.nl, cfg.Cutoff, cfg.EwaldAlpha)
	e.LastEnergy = st.Energy
	e.emitPairKernels(st)

	// --- PME long range ---------------------------------------------------
	if e.pme != nil {
		if err := e.emitPME(); err != nil {
			return err
		}
	}

	// --- Bonded forces ------------------------------------------------------
	if len(s.Bonds) > 0 {
		bst := ComputeBondedForces(s)
		e.emitBonded(bst)
	}

	// --- Integration, thermostat/barostat, constraints ---------------------
	Leapfrog(s, cfg.DT)
	BerendsenThermostat(s, cfg.TargetT, 0.1)
	virial := -st.Energy // crude virial proxy; adequate for the barostat path
	if cfg.NPT {
		BerendsenBarostat(s, 1.0, virial, 0.05)
	}
	iters := 0
	if len(s.Bonds) > 0 {
		iters = ApplyConstraints(s, 1e-3, 8)
	}
	e.emitUpdate(iters)

	return nil
}

func (e *Engine) emitPairKernels(st ForceStats) {
	s := e.sys
	posBytes := uint64(s.N * f4)
	listBytes := uint64(e.nl.Pairs() * 4)
	pe, pi, pc := float64(st.PairsEvaluated), float64(st.PairsInteracting), float64(st.CoulombPairs)
	div := 0.0
	if st.PairsEvaluated > 0 {
		div = 0.5 * (1 - pi/pe) // lanes idle on cutoff-rejected pairs
	}

	cost := e.cfg.PairCostScale
	if cost <= 0 {
		cost = 1
	}
	mkMix := func(pairsEval, pairsLJ, pairsCoul float64) isa.Mix {
		pairsEval *= cost
		pairsLJ *= cost
		pairsCoul *= cost
		var m isa.Mix
		m.Add(isa.FP32, warp(pairsEval*14+pairsLJ*22+pairsCoul*20))
		m.Add(isa.SFU, warp(pairsCoul*3+pairsLJ/4))
		m.Add(isa.INT, warp(pairsEval*5))
		m.Add(isa.LoadGlobal, warp(pairsEval*1.2))
		m.Add(isa.StoreGlobal, warp(float64(s.N)*2))
		m.Add(isa.Branch, warp(pairsEval*1.5))
		m.Add(isa.Misc, warp(pairsEval))
		return m
	}

	switch e.cfg.Flavor {
	case GromacsFlavor:
		// Gromacs' cluster-based nbnxn kernel: positions are reloaded per
		// cluster with high L1 reuse; the pair list is compressed 8:1.
		streams := []memsim.Stream{
			{Name: "pairlist", FootprintBytes: listBytes / 8, AccessBytes: listBytes / 8, ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true},
			{Name: "pos-gather", FootprintBytes: posBytes, AccessBytes: uint64(pe * 4), ElemBytes: 16, Pattern: memsim.Random, Partitioned: true},
			{Name: "force-out", FootprintBytes: posBytes, AccessBytes: posBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
		}
		e.launch("nbnxn_kernel_ElecEwald_VdwLJ_F", s.N*8, mkMix(pe, pi, pc), streams, div*0.5)
	case LammpsFlavor:
		// LAMMPS GPU pair styles use full neighbor lists (every pair stored
		// and evaluated from both atoms) and stream the list from global
		// memory every step — twice the pair work and the memory-heavy
		// character of its pair kernels.
		pe, pi, pc = pe*2, pi*2, pc*2
		listBytes *= 2
		mkStreams := func(pairsEval float64, list uint64) []memsim.Stream {
			return []memsim.Stream{
				{Name: "neighlist", FootprintBytes: list, AccessBytes: list, ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true},
				{Name: "pos-gather", FootprintBytes: posBytes, AccessBytes: uint64(pairsEval * f4), ElemBytes: 16, Pattern: memsim.Random, Partitioned: true},
				{Name: "force-out", FootprintBytes: posBytes, AccessBytes: posBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
			}
		}
		if e.cfg.EwaldAlpha > 0 {
			e.launch("pair_lj_charmm_coul_long", s.N, mkMix(pe, pi, pc), mkStreams(pe, listBytes), div)
		} else {
			// Colloid input: split by pair class, mirroring a LAMMPS hybrid
			// pair style (colloid + lj/cut). The split is derived from the
			// actual type composition of the evaluated pairs.
			largeFrac := e.largePairFraction()
			peL, peS := pe*largeFrac, pe*(1-largeFrac)
			piL, piS := pi*largeFrac, pi*(1-largeFrac)
			// The colloid pair style evaluates an analytic Hamaker
			// integration per pair — roughly an order of magnitude more
			// arithmetic than plain LJ, making this kernel the
			// compute-intensive member of LMC's dominant set.
			e.launch("pair_colloid", s.N, mkMix(peL*2, piL*10, 0), mkStreams(peL, uint64(float64(listBytes)*largeFrac)), div)
			e.launch("pair_lj_cut_solvent", s.N, mkMix(peS, piS, 0), mkStreams(peS, uint64(float64(listBytes)*(1-largeFrac))), div)
		}
	}
}

// largePairFraction estimates the fraction of neighbor pairs involving a
// type-0 (colloid) particle from the current list.
func (e *Engine) largePairFraction() float64 {
	s := e.sys
	total, large := 0, 0
	for i := 0; i < s.N; i++ {
		for _, j := range e.nl.NeighborsOf(i) {
			total++
			if s.Type[i] == 0 || s.Type[int(j)] == 0 {
				large++
			}
		}
	}
	if total == 0 {
		return 0
	}
	frac := float64(large) / float64(total)
	if frac < 0.05 {
		frac = 0.05 // the colloid kernel still launches
	}
	return frac
}

func (e *Engine) emitPME() error {
	s := e.sys
	g := e.pme.GridN
	gridCells := float64(g * g * g)
	gridBytes := uint64(gridCells * 16)

	updates := float64(e.pme.Spread(s))
	var spreadMix isa.Mix
	spreadMix.Add(isa.FP32, warp(updates*6))
	spreadMix.Add(isa.INT, warp(updates*3))
	spreadMix.Add(isa.StoreGlobal, warp(updates))
	spreadMix.Add(isa.LoadGlobal, warp(float64(s.N)))
	spreadMix.Add(isa.Misc, warp(updates))
	names := e.kernelNames()
	e.launch(names.spread, s.N, spreadMix, []memsim.Stream{
		{Name: "grid-scatter", FootprintBytes: gridBytes, AccessBytes: uint64(updates * 8), ElemBytes: 8, Pattern: memsim.Random, Store: true, Partitioned: true},
		{Name: "pos", FootprintBytes: uint64(s.N * f4), AccessBytes: uint64(s.N * f4), ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
	}, 0.1)

	// Forward FFT, solve, inverse FFT are performed for real; instruction
	// counts follow the radix-2 butterfly count actually executed:
	// 3 axes x n^2 lines x (n/2) log2(n) butterflies.
	butterflies := 3 * gridCells / 2 * math.Log2(float64(g))
	fftMix := func() isa.Mix {
		var m isa.Mix
		m.Add(isa.FP32, warp(butterflies*10))
		m.Add(isa.INT, warp(butterflies*4))
		m.Add(isa.LoadShared, warp(butterflies*2))
		m.Add(isa.StoreShared, warp(butterflies*2))
		m.Add(isa.LoadGlobal, warp(gridCells*3))
		m.Add(isa.StoreGlobal, warp(gridCells*3))
		m.Add(isa.Sync, warp(gridCells/4))
		m.Add(isa.Misc, warp(butterflies))
		return m
	}
	fftStreams := func() []memsim.Stream {
		return []memsim.Stream{
			{Name: "grid-in", FootprintBytes: gridBytes, AccessBytes: gridBytes * 3, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
			{Name: "grid-out", FootprintBytes: gridBytes, AccessBytes: gridBytes * 3, ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
		}
	}

	e.launch(names.fftFwd, g*g, fftMix(), fftStreams(), 0)
	energy, err := e.pme.Solve(s.Box)
	if err != nil {
		return err
	}
	e.LastEnergy += energy
	var solveMix isa.Mix
	solveMix.Add(isa.FP32, warp(gridCells*9))
	solveMix.Add(isa.SFU, warp(gridCells)) // exp()
	solveMix.Add(isa.INT, warp(gridCells*3))
	solveMix.Add(isa.LoadGlobal, warp(gridCells))
	solveMix.Add(isa.StoreGlobal, warp(gridCells))
	solveMix.Add(isa.Misc, warp(gridCells))
	e.launch(names.solve, g*g, solveMix, []memsim.Stream{
		{Name: "grid", FootprintBytes: gridBytes, AccessBytes: gridBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
	}, 0)
	e.launch(names.fftInv, g*g, fftMix(), fftStreams(), 0)

	reads := float64(e.pme.Gather(s))
	var gatherMix isa.Mix
	gatherMix.Add(isa.FP32, warp(reads*4))
	gatherMix.Add(isa.INT, warp(reads*2))
	gatherMix.Add(isa.LoadGlobal, warp(reads))
	gatherMix.Add(isa.StoreGlobal, warp(float64(s.N)))
	gatherMix.Add(isa.Misc, warp(reads))
	e.launch(names.gather, s.N, gatherMix, []memsim.Stream{
		{Name: "grid-gather", FootprintBytes: gridBytes, AccessBytes: uint64(reads * 8), ElemBytes: 8, Pattern: memsim.Random, Partitioned: true},
		{Name: "force-out", FootprintBytes: uint64(s.N * f4), AccessBytes: uint64(s.N * f4), ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
	}, 0.1)
	return nil
}

func (e *Engine) emitBonded(bst BondedStats) {
	s := e.sys
	work := float64(bst.Bonds)*30 + float64(bst.Angles)*70
	elems := float64(bst.Bonds + bst.Angles)
	names := e.kernelNames()
	switch e.cfg.Flavor {
	case GromacsFlavor:
		var m isa.Mix
		m.Add(isa.FP32, warp(work))
		m.Add(isa.SFU, warp(float64(bst.Angles)*2))
		m.Add(isa.INT, warp(elems*4))
		m.Add(isa.LoadGlobal, warp(elems*4))
		m.Add(isa.StoreGlobal, warp(elems*3))
		m.Add(isa.Branch, warp(elems))
		m.Add(isa.Misc, warp(elems))
		e.launch(names.bonded, int(elems), m, e.bondedStreams(elems), 0.15)
	case LammpsFlavor:
		// LAMMPS launches one kernel per bonded style.
		emit := func(name string, count, instPer float64, sfu bool) {
			if count == 0 {
				return
			}
			var m isa.Mix
			m.Add(isa.FP32, warp(count*instPer))
			if sfu {
				m.Add(isa.SFU, warp(count*2))
			}
			m.Add(isa.INT, warp(count*4))
			m.Add(isa.LoadGlobal, warp(count*4))
			m.Add(isa.StoreGlobal, warp(count*3))
			m.Add(isa.Misc, warp(count))
			e.launch(name, int(count), m, e.bondedStreams(count), 0.1)
		}
		emit("bond_harmonic", float64(bst.Bonds), 30, false)
		emit("angle_harmonic", float64(bst.Angles), 70, true)
		// Dihedral proxy: 1-4 restraints along the chain (see workload
		// construction) are folded into the angle count at build time; the
		// CHARMM input additionally runs a dihedral kernel over ~the same
		// number of terms as angles.
		emit("dihedral_charmm", float64(bst.Angles), 90, true)
	}
	_ = s
}

func (e *Engine) bondedStreams(elems float64) []memsim.Stream {
	s := e.sys
	posBytes := uint64(s.N * f4)
	idxBytes := uint64(elems * 16)
	if idxBytes == 0 {
		idxBytes = 16
	}
	return []memsim.Stream{
		{Name: "topology", FootprintBytes: idxBytes, AccessBytes: idxBytes, ElemBytes: 4, Pattern: memsim.Coalesced, Partitioned: true},
		{Name: "pos-gather", FootprintBytes: posBytes, AccessBytes: uint64(elems * 3 * f4), ElemBytes: 16, Pattern: memsim.Random, Partitioned: true},
		{Name: "force-out", FootprintBytes: posBytes, AccessBytes: uint64(elems * 3 * f4), ElemBytes: 16, Pattern: memsim.Random, Store: true, Partitioned: true},
	}
}

// emitUpdate launches the integration/thermostat (and constraint) kernels.
func (e *Engine) emitUpdate(constraintIters int) {
	s := e.sys
	n := float64(s.N)
	posBytes := uint64(s.N * f4)
	names := e.kernelNames()

	var upd isa.Mix
	upd.Add(isa.FP32, warp(n*14))
	upd.Add(isa.INT, warp(n*4))
	upd.Add(isa.LoadGlobal, warp(n*3))
	upd.Add(isa.StoreGlobal, warp(n*2))
	upd.Add(isa.Misc, warp(n*2))
	// Constraint iterations fold into the Gromacs update_constraints kernel.
	if e.cfg.Flavor == GromacsFlavor && constraintIters > 0 {
		cwork := float64(constraintIters * len(s.Bonds))
		upd.Add(isa.FP32, warp(cwork*20))
		upd.Add(isa.LoadGlobal, warp(cwork*2))
		upd.Add(isa.Sync, warp(n/8))
	}
	streams := []memsim.Stream{
		{Name: "pos", FootprintBytes: posBytes, AccessBytes: posBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
		{Name: "vel", FootprintBytes: posBytes, AccessBytes: posBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
		{Name: "force", FootprintBytes: posBytes, AccessBytes: posBytes, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
		{Name: "pos-out", FootprintBytes: posBytes, AccessBytes: posBytes, ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
	}
	e.launch(names.update, s.N, upd, streams, 0)

	if e.cfg.Flavor == LammpsFlavor {
		// Thermostat, halo exchange pack/unpack, and the per-step
		// energy/virial reduction are separate LAMMPS kernels.
		var th isa.Mix
		th.Add(isa.FP32, warp(n*6))
		th.Add(isa.LoadGlobal, warp(n))
		th.Add(isa.StoreGlobal, warp(n))
		th.Add(isa.Misc, warp(n))
		thName := "temp_berendsen"
		if e.cfg.EwaldAlpha == 0 {
			thName = "temp_rescale"
		}
		e.launch(thName, s.N, th, []memsim.Stream{
			{Name: "vel", FootprintBytes: posBytes, AccessBytes: posBytes * 2, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
		}, 0)

		halo := n * 0.3 // boundary fraction exchanged each step
		var pack isa.Mix
		pack.Add(isa.INT, warp(halo*4))
		pack.Add(isa.LoadGlobal, warp(halo*2))
		pack.Add(isa.StoreGlobal, warp(halo*2))
		pack.Add(isa.Misc, warp(halo))
		haloBytes := uint64(halo * f4)
		e.launch("comm_pack_forward", int(halo), pack, []memsim.Stream{
			{Name: "halo-gather", FootprintBytes: posBytes, AccessBytes: haloBytes, ElemBytes: 16, Pattern: memsim.Random, Partitioned: true},
			{Name: "buf-out", FootprintBytes: haloBytes, AccessBytes: haloBytes, ElemBytes: 16, Pattern: memsim.Coalesced, Store: true, Partitioned: true},
		}, 0.1)
		if e.cfg.EwaldAlpha == 0 {
			e.launch("comm_unpack", int(halo), pack, []memsim.Stream{
				{Name: "buf-in", FootprintBytes: haloBytes, AccessBytes: haloBytes, ElemBytes: 16, Pattern: memsim.Coalesced, Partitioned: true},
				{Name: "halo-scatter", FootprintBytes: posBytes, AccessBytes: haloBytes, ElemBytes: 16, Pattern: memsim.Random, Store: true, Partitioned: true},
			}, 0.1)
		}

		var red isa.Mix
		red.Add(isa.FP32, warp(n*3))
		red.Add(isa.LoadGlobal, warp(n))
		red.Add(isa.LoadShared, warp(n/2))
		red.Add(isa.StoreShared, warp(n/2))
		red.Add(isa.Sync, warp(n/16))
		red.Add(isa.Misc, warp(n))
		e.launch("energy_virial_reduce", s.N, red, []memsim.Stream{
			{Name: "per-atom-e", FootprintBytes: uint64(n * 8), AccessBytes: uint64(n * 8), ElemBytes: 8, Pattern: memsim.Coalesced, Partitioned: true},
		}, 0)
	}
}

type kernelNames struct {
	spread, fftFwd, solve, fftInv, gather, bonded, update string
}

func (e *Engine) kernelNames() kernelNames {
	if e.cfg.Flavor == GromacsFlavor {
		return kernelNames{
			spread: "pme_spread_charges",
			fftFwd: "cufft_radix8_forward",
			solve:  "pme_solve_kspace",
			fftInv: "cufft_radix8_inverse",
			gather: "pme_gather_forces",
			bonded: "bonded_forces",
			update: "update_constraints",
		}
	}
	update := "nve_integrate"
	if e.cfg.EwaldAlpha == 0 {
		// The colloid input integrates finite-size spheres.
		update = "nve_sphere_integrate"
	}
	return kernelNames{
		spread: "pppm_spread_charges",
		fftFwd: "pppm_fft_forward",
		solve:  "pppm_solve_poisson",
		fftInv: "pppm_fft_inverse",
		gather: "pppm_gather_field",
		bonded: "bonded_forces",
		update: update,
	}
}
