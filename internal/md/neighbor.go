package md

import "fmt"

// CellList bins particles into cubic cells of at least the cutoff length so
// neighbor search only scans the 27 surrounding cells.
type CellList struct {
	Side  int // cells per box edge
	Cells [][]int
	size  float64
}

// BuildCellList bins all particles of s into cells of edge >= cellSize.
func BuildCellList(s *System, cellSize float64) (*CellList, error) {
	if cellSize <= 0 {
		return nil, fmt.Errorf("md: non-positive cell size %g", cellSize)
	}
	side := int(s.Box / cellSize)
	if side < 1 {
		side = 1
	}
	if side > 64 {
		side = 64
	}
	cl := &CellList{Side: side, Cells: make([][]int, side*side*side), size: s.Box / float64(side)}
	for i := 0; i < s.N; i++ {
		c := cl.cellOf(s, s.Pos[i])
		cl.Cells[c] = append(cl.Cells[c], i)
	}
	return cl, nil
}

func (cl *CellList) cellOf(s *System, p Vec3) int {
	ix := int(p[0]/cl.size) % cl.Side
	iy := int(p[1]/cl.size) % cl.Side
	iz := int(p[2]/cl.size) % cl.Side
	if ix < 0 {
		ix += cl.Side
	}
	if iy < 0 {
		iy += cl.Side
	}
	if iz < 0 {
		iz += cl.Side
	}
	return (ix*cl.Side+iy)*cl.Side + iz
}

// NeighborList is a CSR half neighbor list (each pair stored once, i<j by
// construction of the search).
type NeighborList struct {
	Offsets []int32
	Neigh   []int32
	// Cutoff is the list cutoff (force cutoff + skin).
	Cutoff float64
}

// Pairs returns the number of stored pairs.
func (nl *NeighborList) Pairs() int { return len(nl.Neigh) }

// NeighborsOf returns particle i's neighbor slice.
func (nl *NeighborList) NeighborsOf(i int) []int32 {
	return nl.Neigh[nl.Offsets[i]:nl.Offsets[i+1]]
}

// BuildNeighborList builds a Verlet half-list with the given cutoff+skin
// radius using a cell list.
func BuildNeighborList(s *System, cutoff, skin float64) (*NeighborList, error) {
	rc := cutoff + skin
	cl, err := BuildCellList(s, rc)
	if err != nil {
		return nil, err
	}
	rc2 := rc * rc
	nl := &NeighborList{Offsets: make([]int32, s.N+1), Cutoff: rc}
	side := cl.Side
	var cells [27]int
	for i := 0; i < s.N; i++ {
		nl.Offsets[i] = int32(len(nl.Neigh))
		pi := s.Pos[i]
		ix := int(pi[0] / cl.size)
		iy := int(pi[1] / cl.size)
		iz := int(pi[2] / cl.size)
		// Collect the distinct neighbor cells: with fewer than 3 cells per
		// edge, wrapped offsets alias onto the same cell and a naive 27-way
		// scan would double-count pairs. With side >= 3 the 27 wrapped
		// offsets are provably distinct, so the quadratic duplicate scan is
		// skipped — the cells still fill in the same loop order, so the
		// neighbor list comes out identical.
		nCells := 0
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					cx, cy, cz := (ix+dx+side)%side, (iy+dy+side)%side, (iz+dz+side)%side
					id := (cx*side+cy)*side + cz
					if side >= 3 {
						cells[nCells] = id
						nCells++
						continue
					}
					dup := false
					for k := 0; k < nCells; k++ {
						if cells[k] == id {
							dup = true
							break
						}
					}
					if !dup {
						cells[nCells] = id
						nCells++
					}
				}
			}
		}
		for k := 0; k < nCells; k++ {
			for _, j := range cl.Cells[cells[k]] {
				if j <= i {
					continue
				}
				d := s.minimumImage(pi, s.Pos[j])
				if d.Dot(d) < rc2 {
					nl.Neigh = append(nl.Neigh, int32(j))
				}
			}
		}
	}
	nl.Offsets[s.N] = int32(len(nl.Neigh))
	return nl, nil
}

// MaxDisplacement returns the largest displacement of any particle from the
// reference positions — the engine rebuilds the list when it exceeds half
// the skin.
func MaxDisplacement(s *System, ref []Vec3) float64 {
	var worst float64
	for i := 0; i < s.N && i < len(ref); i++ {
		d := s.minimumImage(s.Pos[i], ref[i]).Norm()
		if d > worst {
			worst = d
		}
	}
	return worst
}
