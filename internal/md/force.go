package md

import "math"

// ForceStats counts the work one force evaluation actually performed; the
// engine turns these counts into kernel instruction mixes.
type ForceStats struct {
	PairsEvaluated   int // pairs inside the list cutoff that were examined
	PairsInteracting int // pairs inside the force cutoff
	CoulombPairs     int // pairs with both charges nonzero
	Energy           float64
}

// clearForces zeroes the force accumulators.
func clearForces(s *System) {
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
}

// ComputePairForces evaluates Lennard-Jones plus (optionally) real-space
// Ewald Coulomb forces over the neighbor list, accumulating into s.Force.
// Lorentz-Berthelot mixing combines per-type LJ parameters. ewaldAlpha <= 0
// disables electrostatics (the colloid path).
func ComputePairForces(s *System, nl *NeighborList, cutoff, ewaldAlpha float64) ForceStats {
	var st ForceStats
	rc2 := cutoff * cutoff
	for i := 0; i < s.N; i++ {
		ti := &s.Types[s.Type[i]]
		qi := s.Charge[i]
		for _, j32 := range nl.NeighborsOf(i) {
			j := int(j32)
			st.PairsEvaluated++
			d := s.minimumImage(s.Pos[i], s.Pos[j])
			r2 := d.Dot(d)
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			st.PairsInteracting++
			tj := &s.Types[s.Type[j]]
			eps := math.Sqrt(ti.Epsilon * tj.Epsilon)
			sig := (ti.Sigma + tj.Sigma) / 2
			sr2 := sig * sig / r2
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			// F = 24 eps (2 sr12 - sr6) / r^2 * dvec. The magnitude is
			// capped so overlapping initial configurations equilibrate
			// instead of blowing up (standard soft-start practice).
			fmag := 24 * eps * (2*sr12 - sr6) / r2
			const fcap = 1e4
			if fmag > fcap {
				fmag = fcap
			} else if fmag < -fcap {
				fmag = -fcap
			}
			e := 4 * eps * (sr12 - sr6)
			if e > fcap {
				e = fcap
			}
			st.Energy += e

			if ewaldAlpha > 0 {
				qj := s.Charge[j]
				if qi != 0 && qj != 0 {
					st.CoulombPairs++
					r := math.Sqrt(r2)
					ar := ewaldAlpha * r
					erfc := math.Erfc(ar)
					e := qi * qj / r * erfc
					st.Energy += e
					fmag += (e + qi*qj*2*ewaldAlpha/math.Sqrt(math.Pi)*math.Exp(-ar*ar)) / r2
				}
			}
			f := d.Scale(fmag)
			s.Force[i] = s.Force[i].Add(f)
			s.Force[j] = s.Force[j].Sub(f)
		}
	}
	return st
}

// BondedStats counts bonded-force work.
type BondedStats struct {
	Bonds, Angles int
	Energy        float64
}

// ComputeBondedForces evaluates harmonic bonds and angles.
func ComputeBondedForces(s *System) BondedStats {
	var st BondedStats
	for _, b := range s.Bonds {
		st.Bonds++
		d := s.minimumImage(s.Pos[b.I], s.Pos[b.J])
		r := d.Norm()
		if r == 0 {
			continue
		}
		dr := r - b.R0
		st.Energy += 0.5 * b.K * dr * dr
		f := d.Scale(-b.K * dr / r)
		s.Force[b.I] = s.Force[b.I].Add(f)
		s.Force[b.J] = s.Force[b.J].Sub(f)
	}
	for _, a := range s.Angles {
		st.Angles++
		// Harmonic angle via small-displacement force on the outer atoms.
		rij := s.minimumImage(s.Pos[a.I], s.Pos[a.J])
		rkj := s.minimumImage(s.Pos[a.K], s.Pos[a.J])
		ni, nk := rij.Norm(), rkj.Norm()
		if ni == 0 || nk == 0 {
			continue
		}
		cosT := rij.Dot(rkj) / (ni * nk)
		cosT = math.Max(-1, math.Min(1, cosT))
		theta := math.Acos(cosT)
		dT := theta - a.Theta0
		st.Energy += 0.5 * a.KTheta * dT * dT
		sinT := math.Sin(theta)
		if math.Abs(sinT) < 1e-8 {
			continue
		}
		c := -a.KTheta * dT / sinT
		fi := rkj.Scale(1 / (ni * nk)).Sub(rij.Scale(cosT / (ni * ni))).Scale(c)
		fk := rij.Scale(1 / (ni * nk)).Sub(rkj.Scale(cosT / (nk * nk))).Scale(c)
		s.Force[a.I] = s.Force[a.I].Add(fi)
		s.Force[a.K] = s.Force[a.K].Add(fk)
		s.Force[a.J] = s.Force[a.J].Sub(fi.Add(fk))
	}
	return st
}
