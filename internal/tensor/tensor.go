// Package tensor provides the dense FP32 tensor type and the CPU math
// routines (GEMM, convolution, pooling, reductions) underlying the neural-
// network framework in internal/nn. This package is pure computation; kernel
// emission onto the device model happens one layer up, in internal/nn, with
// counts derived from the shapes processed here.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major FP32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; the length must match.
func FromData(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: %d elements for shape %v", len(data), shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Randn fills a new tensor with N(0, std) samples.
func Randn(r *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
	return t
}

// Full returns a new tensor filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// Bytes returns the size in bytes (4 per element).
func (t *Tensor) Bytes() uint64 { return uint64(len(t.Data)) * 4 }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		return nil, fmt.Errorf("tensor: reshape %v -> %v", t.Shape, shape)
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}, nil
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Zero clears the tensor in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddScaled accumulates alpha*src into t (shapes must match).
func (t *Tensor) AddScaled(src *Tensor, alpha float32) error {
	if len(src.Data) != len(t.Data) {
		return fmt.Errorf("tensor: addScaled %v += %v", t.Shape, src.Shape)
	}
	for i, v := range src.Data {
		t.Data[i] += alpha * v
	}
	return nil
}

// MatMul computes C = A(M,K) x B(K,N). transA/transB interpret A as (K,M)
// or B as (N,K) respectively, matching BLAS conventions.
func MatMul(a, b *Tensor, transA, transB bool) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: matmul wants 2-D, got %v x %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	if transA {
		m, k = k, m
	}
	k2, n := b.Shape[0], b.Shape[1]
	if transB {
		k2, n = n, k2
	}
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmul inner dims %d != %d", k, k2)
	}
	c := New(m, n)
	lda, ldb := a.Shape[1], b.Shape[1]
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			var av float32
			if transA {
				av = a.Data[kk*lda+i]
			} else {
				av = a.Data[i*lda+kk]
			}
			if av == 0 {
				continue
			}
			row := c.Data[i*n : (i+1)*n]
			if !transB {
				brow := b.Data[kk*n : (kk+1)*n]
				for j := range row {
					row[j] += av * brow[j]
				}
			} else {
				for j := range row {
					row[j] += av * b.Data[j*ldb+kk]
				}
			}
		}
	}
	return c, nil
}

// ConvShape computes the output spatial size of a convolution.
func ConvShape(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Conv2D computes a NCHW convolution: x (N,C,H,W) * w (F,C,KH,KW) + b (F).
// b may be nil.
func Conv2D(x, w, b *Tensor, stride, pad int) (*Tensor, error) {
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		return nil, fmt.Errorf("tensor: conv2d wants 4-D, got %v * %v", x.Shape, w.Shape)
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f, cw, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if c != cw {
		return nil, fmt.Errorf("tensor: conv2d channels %d != %d", c, cw)
	}
	oh, ow := ConvShape(h, kh, stride, pad), ConvShape(wd, kw, stride, pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: conv2d empty output for input %dx%d kernel %dx%d", h, wd, kh, kw)
	}
	out := New(n, f, oh, ow)
	// Accumulate tap by tap into the output plane instead of summing taps
	// per output element: each element still receives its contributions in
	// (ci, ky, kx) order starting from the bias, so the result is
	// bit-identical to the naive nest, but the inner loop becomes a
	// contiguous AXPY over an output row (stride 1) with the weight hoisted.
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			plane := out.Data[(ni*f+fi)*oh*ow : (ni*f+fi+1)*oh*ow]
			if b != nil {
				bias := b.Data[fi]
				for i := range plane {
					plane[i] = bias
				}
			}
			for ci := 0; ci < c; ci++ {
				xplane := x.Data[(ni*c+ci)*h*wd : (ni*c+ci+1)*h*wd]
				wrow := w.Data[(fi*cw+ci)*kh*kw : (fi*cw+ci+1)*kh*kw]
				for ky := 0; ky < kh; ky++ {
					for oy := 0; oy < oh; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						xrow := xplane[iy*wd : iy*wd+wd]
						orow := plane[oy*ow : oy*ow+ow]
						for kx := 0; kx < kw; kx++ {
							wv := wrow[ky*kw+kx]
							oxLo, oxHi := convOxRange(kx, pad, stride, wd, ow)
							if oxLo > oxHi {
								continue
							}
							xoff := kx - pad
							if stride == 1 {
								xr := xrow[oxLo+xoff : oxHi+xoff+1]
								or := orow[oxLo : oxHi+1]
								for t := range or {
									or[t] += wv * xr[t]
								}
							} else {
								for ox := oxLo; ox <= oxHi; ox++ {
									orow[ox] += wv * xrow[ox*stride+xoff]
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// convOxRange returns the inclusive output-column range [lo, hi] for which
// the input column ox*stride + kx - pad falls inside [0, wd). An empty range
// reports lo > hi.
func convOxRange(kx, pad, stride, wd, ow int) (lo, hi int) {
	lo = 0
	if num := pad - kx; num > 0 {
		lo = (num + stride - 1) / stride
	}
	hi = ow - 1
	if num := wd - 1 + pad - kx; num < 0 {
		return 1, 0
	} else if byInput := num / stride; byInput < hi {
		hi = byInput
	}
	return lo, hi
}

// Conv2DGrads computes input and weight gradients of Conv2D.
func Conv2DGrads(x, w, dy *Tensor, stride, pad int) (dx, dw, db *Tensor, err error) {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	f, _, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := dy.Shape[2], dy.Shape[3]
	dx = New(n, c, h, wd)
	dw = New(f, c, kh, kw)
	db = New(f)
	// The loop nest (and with it every accumulation order into dx, dw, db)
	// matches the naive formulation exactly; only the inner kx walk changes,
	// from per-tap index arithmetic to contiguous slices — the valid kx range
	// is computed up front instead of bounds-checking ix per tap.
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			for oy := 0; oy < oh; oy++ {
				dyRow := dy.Data[((ni*f+fi)*oh+oy)*ow : ((ni*f+fi)*oh+oy)*ow+ow]
				for ox := 0; ox < ow; ox++ {
					g := dyRow[ox]
					if g == 0 {
						continue
					}
					db.Data[fi] += g
					kxLo, kxHi := convKxRange(ox, pad, stride, wd, kw)
					if kxLo > kxHi {
						continue
					}
					span := kxHi - kxLo + 1
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							xBase := ((ni*c+ci)*h+iy)*wd + ox*stride - pad + kxLo
							wBase := ((fi*c+ci)*kh+ky)*kw + kxLo
							xr := x.Data[xBase : xBase+span]
							wr := w.Data[wBase : wBase+span]
							dxr := dx.Data[xBase : xBase+span]
							dwr := dw.Data[wBase : wBase+span]
							for t := range xr {
								dxr[t] += g * wr[t]
								dwr[t] += g * xr[t]
							}
						}
					}
				}
			}
		}
	}
	return dx, dw, db, nil
}

// convKxRange returns the inclusive kernel-column range [lo, hi] for which
// the input column ox*stride + kx - pad falls inside [0, wd). An empty range
// reports lo > hi.
func convKxRange(ox, pad, stride, wd, kw int) (lo, hi int) {
	lo = 0
	if num := pad - ox*stride; num > 0 {
		lo = num
	}
	hi = kw - 1
	if byInput := wd - 1 - ox*stride + pad; byInput < hi {
		hi = byInput
	}
	return lo, hi
}

// ConvTranspose2D computes a NCHW transposed convolution (deconvolution):
// x (N,C,H,W), w (C,F,KH,KW), stride, pad. Output spatial size is
// (H-1)*stride - 2*pad + KH.
func ConvTranspose2D(x, w, b *Tensor, stride, pad int) (*Tensor, error) {
	if len(x.Shape) != 4 || len(w.Shape) != 4 {
		return nil, fmt.Errorf("tensor: convT wants 4-D, got %v * %v", x.Shape, w.Shape)
	}
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cw, f, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if c != cw {
		return nil, fmt.Errorf("tensor: convT channels %d != %d", c, cw)
	}
	oh := (h-1)*stride - 2*pad + kh
	ow := (wd-1)*stride - 2*pad + kw
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: convT empty output")
	}
	out := New(n, f, oh, ow)
	if b != nil {
		for ni := 0; ni < n; ni++ {
			for fi := 0; fi < f; fi++ {
				base := (ni*f + fi) * oh * ow
				for i := 0; i < oh*ow; i++ {
					out.Data[base+i] = b.Data[fi]
				}
			}
		}
	}
	// Same nest as the naive formulation (accumulation order into out is
	// unchanged); the kx walk becomes one contiguous AXPY per (ky, fi) over
	// the output row, with the valid kx range hoisted out of the loop.
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for iy := 0; iy < h; iy++ {
				xRow := x.Data[((ni*c+ci)*h+iy)*wd : ((ni*c+ci)*h+iy)*wd+wd]
				for ix := 0; ix < wd; ix++ {
					xv := xRow[ix]
					if xv == 0 {
						continue
					}
					kxLo, kxHi := convKxRange(ix, pad, stride, ow, kw)
					if kxLo > kxHi {
						continue
					}
					span := kxHi - kxLo + 1
					for fi := 0; fi < f; fi++ {
						for ky := 0; ky < kh; ky++ {
							oy := iy*stride + ky - pad
							if oy < 0 || oy >= oh {
								continue
							}
							oBase := ((ni*f+fi)*oh+oy)*ow + ix*stride - pad + kxLo
							wBase := ((ci*f+fi)*kh+ky)*kw + kxLo
							or := out.Data[oBase : oBase+span]
							wr := w.Data[wBase : wBase+span]
							for t := range or {
								or[t] += xv * wr[t]
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// ConvTranspose2DGrads computes the gradients of ConvTranspose2D.
func ConvTranspose2DGrads(x, w, dy *Tensor, stride, pad int) (dx, dw, db *Tensor, err error) {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	_, f, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	oh, ow := dy.Shape[2], dy.Shape[3]
	dx = New(n, c, h, wd)
	dw = New(c, f, kh, kw)
	db = New(f)
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			base := (ni*f + fi) * oh * ow
			for i := 0; i < oh*ow; i++ {
				db.Data[fi] += dy.Data[base+i]
			}
		}
	}
	// Same nest as the naive formulation. dx[xi] accumulates through a local
	// running value seeded from the current entry — the identical sequence
	// of adds, kept in a register — and the kx walk uses contiguous slices.
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for iy := 0; iy < h; iy++ {
				for ix := 0; ix < wd; ix++ {
					xi := ((ni*c+ci)*h+iy)*wd + ix
					xv := x.Data[xi]
					kxLo, kxHi := convKxRange(ix, pad, stride, ow, kw)
					if kxLo > kxHi {
						continue
					}
					span := kxHi - kxLo + 1
					acc := dx.Data[xi]
					for fi := 0; fi < f; fi++ {
						for ky := 0; ky < kh; ky++ {
							oy := iy*stride + ky - pad
							if oy < 0 || oy >= oh {
								continue
							}
							dyBase := ((ni*f+fi)*oh+oy)*ow + ix*stride - pad + kxLo
							wBase := ((ci*f+fi)*kh+ky)*kw + kxLo
							dyr := dy.Data[dyBase : dyBase+span]
							wr := w.Data[wBase : wBase+span]
							dwr := dw.Data[wBase : wBase+span]
							for t := range dyr {
								g := dyr[t]
								acc += g * wr[t]
								dwr[t] += g * xv
							}
						}
					}
					dx.Data[xi] = acc
				}
			}
		}
	}
	return dx, dw, db, nil
}

// MaxPool2D computes 2x2-style max pooling with the given window and stride,
// returning the output and the argmax indices (into the input) for backward.
func MaxPool2D(x *Tensor, window, stride int) (*Tensor, []int32, error) {
	if len(x.Shape) != 4 {
		return nil, nil, fmt.Errorf("tensor: maxpool wants 4-D, got %v", x.Shape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := (h-window)/stride+1, (w-window)/stride+1
	if oh <= 0 || ow <= 0 {
		return nil, nil, fmt.Errorf("tensor: maxpool empty output")
	}
	out := New(n, c, oh, ow)
	arg := make([]int32, out.Numel())
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for ky := 0; ky < window; ky++ {
						for kx := 0; kx < window; kx++ {
							idx := ((ni*c+ci)*h+oy*stride+ky)*w + ox*stride + kx
							if x.Data[idx] > best {
								best, bestIdx = x.Data[idx], idx
							}
						}
					}
					oi := ((ni*c+ci)*oh+oy)*ow + ox
					out.Data[oi] = best
					arg[oi] = int32(bestIdx)
				}
			}
		}
	}
	return out, arg, nil
}

// Softmax computes row-wise softmax of a 2-D tensor.
func Softmax(x *Tensor) (*Tensor, error) {
	if len(x.Shape) != 2 {
		return nil, fmt.Errorf("tensor: softmax wants 2-D, got %v", x.Shape)
	}
	m, n := x.Shape[0], x.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := x.Data[i*n : (i+1)*n]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float32
		o := out.Data[i*n : (i+1)*n]
		for j, v := range row {
			e := float32(math.Exp(float64(v - max)))
			o[j] = e
			sum += e
		}
		for j := range o {
			o[j] /= sum
		}
	}
	return out, nil
}

// Gram computes the CxC Gram matrix of a (C, HW) feature map, the style
// statistic of the Neural Style workload.
func Gram(features *Tensor) (*Tensor, error) {
	g, err := MatMul(features, features, false, true)
	if err != nil {
		return nil, err
	}
	norm := float32(features.Shape[0] * features.Shape[1])
	for i := range g.Data {
		g.Data[i] /= norm
	}
	return g, nil
}
