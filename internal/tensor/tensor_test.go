package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndBasics(t *testing.T) {
	x := New(2, 3)
	if x.Numel() != 6 || x.Bytes() != 24 || x.Dim(1) != 3 {
		t.Error("basic accessors")
	}
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 0 {
		t.Error("clone aliases data")
	}
	r, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dim(0) != 3 {
		t.Error("reshape")
	}
	if _, err := x.Reshape(4, 4); err == nil {
		t.Error("bad reshape should fail")
	}
	if !SameShape(x, New(2, 3)) || SameShape(x, New(3, 2)) {
		t.Error("SameShape")
	}
	f := Full(2, 2, 2)
	if f.Data[3] != 2 {
		t.Error("Full")
	}
	f.Zero()
	if f.Data[0] != 0 {
		t.Error("Zero")
	}
	if err := f.AddScaled(Full(1, 2, 2), 3); err != nil || f.Data[0] != 3 {
		t.Error("AddScaled")
	}
	if err := f.AddScaled(New(5), 1); err == nil {
		t.Error("AddScaled shape mismatch should fail")
	}
	if _, err := FromData([]float32{1, 2}, 3); err == nil {
		t.Error("FromData length mismatch should fail")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(2, 0)
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromData([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b, false, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("c[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := Randn(r, 1, 4, 3)
	b := Randn(r, 1, 4, 5)
	// a^T (3x4) x b (4x5).
	c, err := MatMul(a, b, true, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: transpose a manually.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Data[j*4+i] = a.Data[i*3+j]
		}
	}
	ref, _ := MatMul(at, b, false, false)
	for i := range ref.Data {
		if !almost(float64(c.Data[i]), float64(ref.Data[i]), 1e-5) {
			t.Fatalf("transA mismatch at %d", i)
		}
	}
	// b (4x5) x b^T -> (4,4) via transB.
	d, err := MatMul(b, b, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.Shape[0] != 4 || d.Shape[1] != 4 {
		t.Errorf("transB shape %v", d.Shape)
	}
	// Diagonal entries are squared norms: positive.
	for i := 0; i < 4; i++ {
		if d.Data[i*4+i] <= 0 {
			t.Error("gram diagonal must be positive")
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(4, 5), false, false); err == nil {
		t.Error("inner mismatch")
	}
	if _, err := MatMul(New(2), New(2, 2), false, false); err == nil {
		t.Error("1-D input")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	x := Randn(rand.New(rand.NewSource(2)), 1, 1, 1, 5, 5)
	w := New(1, 1, 1, 1)
	w.Data[0] = 1
	y, err := Conv2D(x, w, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("1x1 identity conv should copy")
		}
	}
}

func TestConv2DKnown(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no pad: sliding sums.
	x, _ := FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w, _ := FromData([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	b, _ := FromData([]float32{10}, 1)
	y, err := Conv2D(x, w, b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 2 + 4 + 5 + 10, 2 + 3 + 5 + 6 + 10, 4 + 5 + 7 + 8 + 10, 5 + 6 + 8 + 9 + 10}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("y[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	if y.Shape[2] != 2 || y.Shape[3] != 2 {
		t.Errorf("shape %v", y.Shape)
	}
}

func TestConv2DGradsNumerically(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := Randn(r, 1, 2, 3, 4, 4)
	w := Randn(r, 0.5, 2, 3, 3, 3)
	stride, pad := 1, 1
	y, err := Conv2D(x, w, nil, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	dy := Randn(r, 1, y.Shape...)
	dx, dw, _, err := Conv2DGrads(x, w, dy, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		y, err := Conv2D(x, w, nil, stride, pad)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	const eps = 1e-3
	// Check a few x gradients by central differences.
	for _, idx := range []int{0, 7, 23, len(x.Data) - 1} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		up := loss()
		x.Data[idx] = orig - eps
		dn := loss()
		x.Data[idx] = orig
		num := (up - dn) / (2 * eps)
		if !almost(num, float64(dx.Data[idx]), 2e-2) {
			t.Errorf("dx[%d]: numeric %g vs analytic %g", idx, num, dx.Data[idx])
		}
	}
	for _, idx := range []int{0, 13, len(w.Data) - 1} {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		up := loss()
		w.Data[idx] = orig - eps
		w.Data[idx] = orig - eps
		dn := loss()
		w.Data[idx] = orig
		num := (up - dn) / (2 * eps)
		if !almost(num, float64(dw.Data[idx]), 2e-2) {
			t.Errorf("dw[%d]: numeric %g vs analytic %g", idx, num, dw.Data[idx])
		}
	}
}

func TestConvTranspose2DInvertsStride(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := Randn(r, 1, 1, 2, 4, 4)
	w := Randn(r, 1, 2, 3, 4, 4) // (C=2, F=3, 4, 4)
	y, err := ConvTranspose2D(x, w, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (4-1)*2 - 2 + 4 = 8: the DCGAN upsampling shape rule.
	if y.Shape[2] != 8 || y.Shape[3] != 8 || y.Shape[1] != 3 {
		t.Errorf("convT shape %v", y.Shape)
	}
}

func TestConvTranspose2DGradsNumerically(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := Randn(r, 1, 1, 2, 3, 3)
	w := Randn(r, 0.5, 2, 2, 2, 2)
	y, err := ConvTranspose2D(x, w, nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dy := Randn(r, 1, y.Shape...)
	dx, dw, _, err := ConvTranspose2DGrads(x, w, dy, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		y, _ := ConvTranspose2D(x, w, nil, 2, 0)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i] * dy.Data[i])
		}
		return s
	}
	const eps = 1e-3
	for _, idx := range []int{0, 5, len(x.Data) - 1} {
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		up := loss()
		x.Data[idx] = orig - eps
		dn := loss()
		x.Data[idx] = orig
		if num := (up - dn) / (2 * eps); !almost(num, float64(dx.Data[idx]), 2e-2) {
			t.Errorf("convT dx[%d]: numeric %g vs analytic %g", idx, num, dx.Data[idx])
		}
	}
	for _, idx := range []int{0, 7, len(w.Data) - 1} {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		up := loss()
		w.Data[idx] = orig - eps
		dn := loss()
		w.Data[idx] = orig
		if num := (up - dn) / (2 * eps); !almost(num, float64(dw.Data[idx]), 2e-2) {
			t.Errorf("convT dw[%d]: numeric %g vs analytic %g", idx, num, dw.Data[idx])
		}
	}
}

func TestMaxPool2D(t *testing.T) {
	x, _ := FromData([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, arg, err := MaxPool2D(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, v := range want {
		if y.Data[i] != v {
			t.Errorf("pool[%d] = %g, want %g", i, y.Data[i], v)
		}
	}
	// Argmax of 6 is index 5.
	if arg[0] != 5 {
		t.Errorf("arg[0] = %d", arg[0])
	}
	if _, _, err := MaxPool2D(New(2, 2), 2, 2); err == nil {
		t.Error("2-D input should fail")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := Randn(r, 3, 4, 7)
	s, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := float64(s.Data[i*7+j])
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			sum += v
		}
		if !almost(sum, 1, 1e-5) {
			t.Errorf("row %d sums to %g", i, sum)
		}
	}
	// Numerical stability for large logits.
	big, _ := FromData([]float32{1000, 1000}, 1, 2)
	s, _ = Softmax(big)
	if !almost(float64(s.Data[0]), 0.5, 1e-6) {
		t.Error("softmax overflow")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := Randn(r, 1, 4, 30)
	g, err := Gram(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if g.Data[i*4+i] < 0 {
			t.Error("gram diagonal negative")
		}
		for j := 0; j < 4; j++ {
			if g.Data[i*4+j] != g.Data[j*4+i] {
				t.Error("gram not symmetric")
			}
		}
	}
}

// Property: MatMul distributes over addition: (A+B)C = AC + BC.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Randn(r, 1, 3, 4)
		b := Randn(r, 1, 3, 4)
		c := Randn(r, 1, 4, 2)
		ab := a.Clone()
		if err := ab.AddScaled(b, 1); err != nil {
			return false
		}
		left, err := MatMul(ab, c, false, false)
		if err != nil {
			return false
		}
		ac, _ := MatMul(a, c, false, false)
		bc, _ := MatMul(b, c, false, false)
		for i := range left.Data {
			if !almost(float64(left.Data[i]), float64(ac.Data[i]+bc.Data[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvShape(t *testing.T) {
	if ConvShape(32, 3, 1, 1) != 32 {
		t.Error("same-pad conv")
	}
	if ConvShape(32, 4, 2, 1) != 16 {
		t.Error("stride-2 conv")
	}
}
