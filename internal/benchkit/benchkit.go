// Package benchkit is the repo's benchmark harness: fixed-iteration,
// best-of-N timing of registered benchmark functions, JSON suite files, and
// baseline comparison with a regression threshold.
//
// The stdlib testing.Benchmark is deliberately not used: outside a test
// binary its iteration count cannot be pinned (-benchtime is a test flag),
// so two runs time different amounts of work and their ns/op wander with
// the ramp-up heuristic. Here every benchmark declares its iteration count
// once; a run executes N rounds of exactly that many iterations and reports
// the fastest round, which is the standard way to strip scheduler and
// frequency noise from a throughput measurement.
package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// Bench is one registered benchmark: Fn run Iters times per round.
type Bench struct {
	Name  string
	Iters int
	Fn    func()
}

// Result is one benchmark's measurement.
type Result struct {
	Name string `json:"name"`
	// NsPerOp is the per-iteration wall time of the fastest round.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the per-iteration heap allocation count of the fastest
	// round (mallocs are deterministic per round, but background GC activity
	// can add a handful; treat small differences as noise).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Rounds and Iters record the measurement protocol so a baseline file is
	// self-describing.
	Rounds int `json:"rounds"`
	Iters  int `json:"iters_per_round"`
	// RoundNs holds every round's per-iteration time in measurement order,
	// so a suite file carries the full distribution — best-vs-median spread
	// is the run's noise floor, not something to re-measure.
	RoundNs []float64 `json:"round_ns_per_op,omitempty"`
}

// Median returns the median per-iteration time across rounds, falling back
// to NsPerOp for files predating round recording.
func (r Result) Median() float64 {
	if len(r.RoundNs) == 0 {
		return r.NsPerOp
	}
	s := append([]float64(nil), r.RoundNs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	}
	n := len(s)
	return (s[n/2-1] + s[n/2]) / 2
}

// Suite is a labeled set of results plus enough environment to judge whether
// a comparison is apples-to-apples.
type Suite struct {
	Label   string   `json:"label"`
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []Result `json:"results"`
}

// Run measures one benchmark: rounds rounds of b.Iters iterations each,
// reporting the fastest round. A GC runs before each round so earlier
// rounds' garbage is not charged to later ones.
func Run(b Bench, rounds int) Result {
	if rounds < 1 {
		rounds = 1
	}
	if b.Iters < 1 {
		b.Iters = 1
	}
	b.Fn() // warm-up: page in code and data, fill caches
	var best time.Duration
	var bestAllocs uint64
	var ms runtime.MemStats
	roundNs := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		m0 := ms.Mallocs
		start := time.Now()
		for i := 0; i < b.Iters; i++ {
			b.Fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		roundNs = append(roundNs, float64(elapsed.Nanoseconds())/float64(b.Iters))
		if r == 0 || elapsed < best {
			best = elapsed
			bestAllocs = ms.Mallocs - m0
		}
	}
	return Result{
		Name:        b.Name,
		NsPerOp:     float64(best.Nanoseconds()) / float64(b.Iters),
		AllocsPerOp: float64(bestAllocs) / float64(b.Iters),
		Rounds:      rounds,
		Iters:       b.Iters,
		RoundNs:     roundNs,
	}
}

// RunSuite measures every benchmark, reporting progress per benchmark.
func RunSuite(label string, benches []Bench, rounds int, progress io.Writer) Suite {
	s := Suite{Label: label, GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, b := range benches {
		res := Run(b, rounds)
		s.Results = append(s.Results, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-24s %14.0f ns/op (median %14.0f) %12.0f allocs/op\n",
				res.Name, res.NsPerOp, res.Median(), res.AllocsPerOp)
		}
	}
	return s
}

// WriteFile writes a suite as indented JSON.
func WriteFile(path string, s Suite) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads a suite file written by WriteFile.
func ReadFile(path string) (Suite, error) {
	var s Suite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Regression is one benchmark that got slower than the baseline allows.
type Regression struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	// BaselineMedianNs and CurrentMedianNs are the median-of-rounds times:
	// when best-of regressed but medians agree, the "regression" is likely
	// one unlucky fastest round, not a real slowdown.
	BaselineMedianNs float64
	CurrentMedianNs  float64
	// Ratio is current/baseline - 1: 0.20 means 20% slower.
	Ratio float64
}

// Compare checks current against baseline with the given regression
// threshold (0.15 = fail when a benchmark is more than 15% slower).
// Benchmarks present in the baseline but missing from current are returned
// in missing — a silently dropped benchmark must not pass the gate.
// Benchmarks new in current are ignored: they have nothing to regress from.
func Compare(baseline, current Suite, threshold float64) (regressions []Regression, missing []string) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, b := range baseline.Results {
		c, ok := cur[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp/b.NsPerOp - 1
		if ratio > threshold {
			regressions = append(regressions, Regression{
				Name: b.Name, BaselineNs: b.NsPerOp, CurrentNs: c.NsPerOp,
				BaselineMedianNs: b.Median(), CurrentMedianNs: c.Median(),
				Ratio: ratio,
			})
		}
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Ratio > regressions[j].Ratio })
	sort.Strings(missing)
	return regressions, missing
}

// Annotation renders a regression as a GitHub Actions workflow command so
// the failure shows up inline on the pull request.
func (r Regression) Annotation() string {
	return fmt.Sprintf("::error title=Benchmark regression: %s::%s is %.1f%% slower than baseline (%.0f ns/op vs %.0f ns/op)",
		r.Name, r.Name, 100*r.Ratio, r.CurrentNs, r.BaselineNs)
}

// String renders a regression for plain logs, best and median side by side.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%; medians %.0f vs %.0f)",
		r.Name, r.CurrentNs, r.BaselineNs, 100*r.Ratio, r.CurrentMedianNs, r.BaselineMedianNs)
}
