package benchkit

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var sink []byte // defeats escape analysis so the test allocation hits the heap

func TestRunCountsIterationsAndAllocs(t *testing.T) {
	calls := 0
	res := Run(Bench{Name: "alloc", Iters: 10, Fn: func() {
		calls++
		sink = make([]byte, 1<<16)
	}}, 3)
	// Warm-up call + 3 rounds of 10.
	if calls != 1+3*10 {
		t.Errorf("calls = %d, want %d", calls, 1+3*10)
	}
	if res.NsPerOp <= 0 {
		t.Errorf("NsPerOp = %g, want > 0", res.NsPerOp)
	}
	// Each iteration makes exactly one heap allocation; background GC may
	// add a few mallocs of its own, so allow slack above but not below.
	if res.AllocsPerOp < 1 || res.AllocsPerOp > 3 {
		t.Errorf("AllocsPerOp = %g, want about 1", res.AllocsPerOp)
	}
	if res.Rounds != 3 || res.Iters != 10 {
		t.Errorf("protocol = %d rounds x %d iters, want 3 x 10", res.Rounds, res.Iters)
	}
}

func TestRunClampsDegenerateProtocol(t *testing.T) {
	res := Run(Bench{Name: "x", Iters: 0, Fn: func() {}}, 0)
	if res.Rounds != 1 || res.Iters != 1 {
		t.Errorf("protocol = %d rounds x %d iters, want 1 x 1", res.Rounds, res.Iters)
	}
}

func TestCompareFlagsRegressionsAndMissing(t *testing.T) {
	base := Suite{Results: []Result{
		{Name: "fast", NsPerOp: 100},
		{Name: "slow", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
	}}
	cur := Suite{Results: []Result{
		{Name: "fast", NsPerOp: 110}, // +10%: inside a 15% threshold
		{Name: "slow", NsPerOp: 130}, // +30%: regression
		{Name: "new", NsPerOp: 999},  // not in baseline: ignored
	}}
	regs, missing := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Name != "slow" {
		t.Fatalf("regressions = %+v, want exactly slow", regs)
	}
	if got := regs[0].Ratio; got < 0.29 || got > 0.31 {
		t.Errorf("ratio = %g, want ~0.30", got)
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Errorf("missing = %v, want [gone]", missing)
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	base := Suite{Results: []Result{{Name: "a", NsPerOp: 100}, {Name: "b", NsPerOp: 100}}}
	cur := Suite{Results: []Result{{Name: "a", NsPerOp: 120}, {Name: "b", NsPerOp: 150}}}
	regs, _ := Compare(base, cur, 0.1)
	if len(regs) != 2 || regs[0].Name != "b" {
		t.Fatalf("regressions = %+v, want b first", regs)
	}
}

func TestSuiteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := Suite{Label: "test", GoOS: "linux", GoArch: "amd64", NumCPU: 8,
		Results: []Result{{Name: "a", NsPerOp: 123.5, AllocsPerOp: 7, Rounds: 3, Iters: 10,
			RoundNs: []float64{123.5, 130, 128}}}}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != want.Label || len(got.Results) != 1 || !reflect.DeepEqual(got.Results[0], want.Results[0]) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

// TestRunRecordsEveryRound — the suite file carries the full per-round
// distribution, with the best round matching NsPerOp.
func TestRunRecordsEveryRound(t *testing.T) {
	res := Run(Bench{Name: "r", Iters: 4, Fn: func() { sink = make([]byte, 1<<12) }}, 5)
	if len(res.RoundNs) != 5 {
		t.Fatalf("RoundNs has %d entries, want 5", len(res.RoundNs))
	}
	best := res.RoundNs[0]
	for _, ns := range res.RoundNs {
		if ns <= 0 {
			t.Errorf("round recorded %g ns/op, want > 0", ns)
		}
		if ns < best {
			best = ns
		}
	}
	if best != res.NsPerOp {
		t.Errorf("NsPerOp = %g, but the fastest recorded round is %g", res.NsPerOp, best)
	}
	if med := res.Median(); med < res.NsPerOp {
		t.Errorf("median %g below best %g", med, res.NsPerOp)
	}
}

// TestMedian covers odd, even, and legacy (no rounds) results.
func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		res  Result
		want float64
	}{
		{"odd", Result{RoundNs: []float64{30, 10, 20}}, 20},
		{"even", Result{RoundNs: []float64{40, 10, 20, 30}}, 25},
		{"legacy", Result{NsPerOp: 99}, 99},
	}
	for _, tc := range cases {
		if got := tc.res.Median(); got != tc.want {
			t.Errorf("%s: Median() = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestRegressionCarriesMedians — Compare surfaces the medians next to the
// best-of times, and String renders both.
func TestRegressionCarriesMedians(t *testing.T) {
	base := Suite{Results: []Result{{Name: "a", NsPerOp: 100, RoundNs: []float64{100, 105, 110}}}}
	cur := Suite{Results: []Result{{Name: "a", NsPerOp: 150, RoundNs: []float64{150, 160, 170}}}}
	regs, _ := Compare(base, cur, 0.15)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want 1", regs)
	}
	if regs[0].BaselineMedianNs != 105 || regs[0].CurrentMedianNs != 160 {
		t.Errorf("medians = %g vs %g, want 160 vs 105", regs[0].CurrentMedianNs, regs[0].BaselineMedianNs)
	}
	if s := regs[0].String(); !strings.Contains(s, "medians 160 vs 105") {
		t.Errorf("String() = %q lacks the medians", s)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("want error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteFile(bad, Suite{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it.
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("want error for corrupt file")
	}
}

func TestAnnotationFormat(t *testing.T) {
	r := Regression{Name: "study_serial", BaselineNs: 1000, CurrentNs: 1200, Ratio: 0.2}
	a := r.Annotation()
	if !strings.HasPrefix(a, "::error title=Benchmark regression: study_serial::") {
		t.Errorf("annotation %q lacks the workflow-command prefix", a)
	}
	if !strings.Contains(a, "20.0% slower") {
		t.Errorf("annotation %q lacks the ratio", a)
	}
	if strings.ContainsAny(a, "\n") {
		t.Errorf("annotation %q must be a single line", a)
	}
}
