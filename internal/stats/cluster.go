package stats

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects the agglomerative merge criterion.
type Linkage uint8

const (
	// WardLinkage minimizes within-cluster variance increase (the paper's
	// choice, standard with FAMD coordinates).
	WardLinkage Linkage = iota
	// AverageLinkage merges by mean inter-cluster distance (UPGMA).
	AverageLinkage
	// CompleteLinkage merges by maximum inter-cluster distance.
	CompleteLinkage
	// SingleLinkage merges by minimum inter-cluster distance.
	SingleLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case WardLinkage:
		return "ward"
	case AverageLinkage:
		return "average"
	case CompleteLinkage:
		return "complete"
	case SingleLinkage:
		return "single"
	}
	return fmt.Sprintf("linkage(%d)", uint8(l))
}

// Merge records one agglomeration step. Node ids < N refer to leaves;
// node id N+i refers to the cluster created by Merges[i].
type Merge struct {
	A, B   int
	Height float64
	Size   int // leaves under the new cluster
}

// Dendrogram is the full merge tree of an agglomerative clustering.
type Dendrogram struct {
	N      int
	Labels []string
	Merges []Merge
}

// Agglomerative performs hierarchical clustering of the points (row
// vectors) under the given linkage, using the Lance-Williams recurrence.
func Agglomerative(points [][]float64, labels []string, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("stats: clustering of zero points")
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("%w: %d labels for %d points", ErrDimension, len(labels), n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimension, i, len(p), dim)
		}
	}
	if labels == nil {
		labels = make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("p%d", i)
		}
	}

	// Distance matrix. Ward works on squared Euclidean distances inside the
	// recurrence; we store squared distances for Ward and plain for others,
	// and take the square root of merge heights for Ward at the end so all
	// linkages report heights in distance units.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := EuclideanDist(points[i], points[j])
			if linkage == WardLinkage {
				dist = dist * dist
			}
			d[i][j], d[j][i] = dist, dist
		}
	}

	type clus struct {
		id   int // node id (leaf < n, else n+mergeIdx)
		size int
	}
	active := make([]clus, n)
	for i := range active {
		active[i] = clus{id: i, size: 1}
	}
	dend := &Dendrogram{N: n, Labels: append([]string(nil), labels...)}

	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		ci, cj := active[bi], active[bj]
		newSize := ci.size + cj.size
		height := best
		if linkage == WardLinkage {
			height = math.Sqrt(best)
		}
		dend.Merges = append(dend.Merges, Merge{A: ci.id, B: cj.id, Height: height, Size: newSize})

		// Lance-Williams update of distances from the merged cluster to all
		// others, written into row/col bi; then remove bj.
		for k := 0; k < len(active); k++ {
			if k == bi || k == bj {
				continue
			}
			dik, djk, dij := d[bi][k], d[bj][k], d[bi][bj]
			var nd float64
			switch linkage {
			case WardLinkage:
				si, sj, sk := float64(ci.size), float64(cj.size), float64(active[k].size)
				tot := si + sj + sk
				nd = ((si+sk)*dik + (sj+sk)*djk - sk*dij) / tot
			case AverageLinkage:
				si, sj := float64(ci.size), float64(cj.size)
				nd = (si*dik + sj*djk) / (si + sj)
			case CompleteLinkage:
				nd = math.Max(dik, djk)
			case SingleLinkage:
				nd = math.Min(dik, djk)
			}
			d[bi][k], d[k][bi] = nd, nd
		}
		active[bi] = clus{id: n + step, size: newSize}
		// Remove bj by swapping with the last entry.
		last := len(active) - 1
		active[bj] = active[last]
		active = active[:last]
		for k := 0; k < len(active); k++ {
			d[bj][k], d[k][bj] = d[last][k], d[k][last]
		}
	}
	return dend, nil
}

// Cut assigns each leaf to one of k clusters by undoing the last k-1 merges.
// Cluster ids are 0..k-1 in order of first leaf appearance.
func (dd *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dd.N {
		return nil, fmt.Errorf("stats: cut into %d clusters of %d leaves", k, dd.N)
	}
	// Union-find over the first n-k merges.
	parent := make([]int, dd.N+len(dd.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < dd.N-k; i++ {
		m := dd.Merges[i]
		node := dd.N + i
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	assign := make([]int, dd.N)
	next := 0
	rootID := make(map[int]int)
	for leaf := 0; leaf < dd.N; leaf++ {
		r := find(leaf)
		id, ok := rootID[r]
		if !ok {
			id = next
			rootID[r] = id
			next++
		}
		assign[leaf] = id
	}
	return assign, nil
}

// LeafOrder returns the leaves in dendrogram display order (left-to-right
// in-order walk of the merge tree).
func (dd *Dendrogram) LeafOrder() []int {
	if len(dd.Merges) == 0 {
		out := make([]int, dd.N)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	var walk func(node int)
	walk = func(node int) {
		if node < dd.N {
			out = append(out, node)
			return
		}
		m := dd.Merges[node-dd.N]
		walk(m.A)
		walk(m.B)
	}
	walk(dd.N + len(dd.Merges) - 1)
	return out
}

// CopheneticHeight returns the merge height at which leaves a and b first
// join, a standard dendrogram similarity measure.
func (dd *Dendrogram) CopheneticHeight(a, b int) (float64, error) {
	if a < 0 || a >= dd.N || b < 0 || b >= dd.N {
		return 0, fmt.Errorf("stats: leaf out of range")
	}
	if a == b {
		return 0, nil
	}
	// Track cluster membership upward.
	member := make([]int, dd.N+len(dd.Merges))
	for i := range member {
		member[i] = -1
	}
	cur := map[int]int{a: a, b: b} // leaf -> current node id
	_ = member
	for i, m := range dd.Merges {
		node := dd.N + i
		for leaf, at := range cur {
			if at == m.A || at == m.B {
				cur[leaf] = node
			}
		}
		if cur[a] == cur[b] {
			return m.Height, nil
		}
	}
	return 0, fmt.Errorf("stats: leaves never merge (corrupt dendrogram)")
}

// SilhouetteScore computes the mean silhouette coefficient of an assignment
// over the given points — used by tests and the FAMD-vs-raw ablation to
// compare clustering quality.
func SilhouetteScore(points [][]float64, assign []int) (float64, error) {
	n := len(points)
	if n != len(assign) {
		return 0, fmt.Errorf("%w: %d points, %d assignments", ErrDimension, n, len(assign))
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: silhouette needs >= 2 points")
	}
	clusters := make(map[int][]int)
	for i, c := range assign {
		clusters[c] = append(clusters[c], i)
	}
	if len(clusters) < 2 {
		return 0, fmt.Errorf("stats: silhouette needs >= 2 clusters")
	}
	var total float64
	var counted int
	for i := 0; i < n; i++ {
		own := clusters[assign[i]]
		if len(own) == 1 {
			continue // silhouette undefined; conventionally 0, skip from mean
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += EuclideanDist(points[i], points[j])
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for c, members := range clusters {
			if c == assign[i] {
				continue
			}
			var s float64
			for _, j := range members {
				s += EuclideanDist(points[i], points[j])
			}
			s /= float64(len(members))
			if s < b {
				b = s
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0, nil
	}
	return total / float64(counted), nil
}

// ClusterSizes returns the size of each cluster in an assignment, sorted by
// cluster id.
func ClusterSizes(assign []int) []int {
	counts := make(map[int]int)
	maxID := -1
	for _, c := range assign {
		counts[c]++
		if c > maxID {
			maxID = c
		}
	}
	out := make([]int, maxID+1)
	for c, n := range counts {
		out[c] = n
	}
	return out
}

// SortMergesByHeight returns merge indices sorted ascending by height
// (diagnostic helper).
func (dd *Dendrogram) SortMergesByHeight() []int {
	idx := make([]int, len(dd.Merges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return dd.Merges[a].Height < dd.Merges[b].Height })
	return idx
}
