package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	a := [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-10 {
			t.Errorf("val[%d] = %g, want %g", i, vals[i], w)
		}
	}
	// First eigenvector should be e0 (up to sign).
	if math.Abs(math.Abs(vecs[0][0])-1) > 1e-8 {
		t.Errorf("first eigenvector = %v", Column(vecs, 0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := EigenSym([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("vals = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2.
	v := math.Abs(vecs[0][0] * vecs[1][0])
	if math.Abs(v-0.5) > 1e-8 {
		t.Errorf("eigenvector product = %g, want 0.5", v)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 6
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a[i][j], a[j][i] = v, v
		}
	}
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check A v_k = lambda_k v_k.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += a[i][j] * vecs[j][k]
			}
			if math.Abs(av-vals[k]*vecs[i][k]) > 1e-8 {
				t.Fatalf("A v != lambda v at (%d,%d): %g vs %g", i, k, av, vals[k]*vecs[i][k])
			}
		}
	}
	// Eigenvectors orthonormal.
	for k := 0; k < n; k++ {
		for l := k; l < n; l++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += vecs[i][k] * vecs[i][l]
			}
			want := 0.0
			if k == l {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("vec dot (%d,%d) = %g, want %g", k, l, dot, want)
			}
		}
	}
	// Trace preserved.
	var trA, trL float64
	for i := 0; i < n; i++ {
		trA += a[i][i]
		trL += vals[i]
	}
	if math.Abs(trA-trL) > 1e-8 {
		t.Errorf("trace mismatch: %g vs %g", trA, trL)
	}
}

func TestEigenSymErrors(t *testing.T) {
	if _, _, err := EigenSym(nil); err == nil {
		t.Error("empty matrix")
	}
	if _, _, err := EigenSym([][]float64{{1, 2}}); err == nil {
		t.Error("ragged matrix")
	}
	if _, _, err := EigenSym([][]float64{{1, 2}, {5, 1}}); err == nil {
		t.Error("asymmetric matrix")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along (1,1) with small noise: PC1 should be ~(1,1)/sqrt2 and
	// explain most variance.
	r := rand.New(rand.NewSource(42))
	var rows [][]float64
	for i := 0; i < 200; i++ {
		s := r.NormFloat64() * 10
		rows = append(rows, []float64{s + r.NormFloat64()*0.1, s + r.NormFloat64()*0.1})
	}
	rows = StandardizeColumns(rows)
	res, err := PCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExplainedVariance[0] < 0.95 {
		t.Errorf("PC1 explains %g, want > 0.95", res.ExplainedVariance[0])
	}
	if math.Abs(math.Abs(res.Components[0][0])-math.Sqrt(0.5)) > 0.05 {
		t.Errorf("PC1 = (%g,%g)", res.Components[0][0], res.Components[1][0])
	}
	if len(res.Scores) != 200 || len(res.Scores[0]) != 2 {
		t.Errorf("scores shape %dx%d", len(res.Scores), len(res.Scores[0]))
	}
}

func TestPCAScoreVarianceMatchesEigenvalue(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var rows [][]float64
	for i := 0; i < 500; i++ {
		rows = append(rows, []float64{r.NormFloat64() * 3, r.NormFloat64(), r.NormFloat64() * 0.5})
	}
	// Center columns.
	for j := 0; j < 3; j++ {
		col := Column(rows, j)
		m := Mean(col)
		for i := range rows {
			rows[i][j] -= m
		}
	}
	res, err := PCA(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		var v float64
		for _, s := range res.Scores {
			v += s[k] * s[k]
		}
		v /= float64(len(rows))
		if math.Abs(v-res.Eigenvalues[k]) > 0.05*math.Max(1, res.Eigenvalues[k]) {
			t.Errorf("score variance %g != eigenvalue %g (k=%d)", v, res.Eigenvalues[k], k)
		}
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA(nil, 2); err == nil {
		t.Error("empty PCA should fail")
	}
	if _, err := PCA([][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Error("ragged PCA should fail")
	}
}
