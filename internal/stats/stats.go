// Package stats provides the statistical machinery the paper's methodology
// needs: Pearson correlation (Fig. 8), standardization, a symmetric
// eigensolver and PCA, Factor Analysis of Mixed Data (FAMD, after Pagès —
// the paper uses the FactoMineR implementation), and agglomerative
// hierarchical clustering with Ward linkage plus dendrogram utilities
// (Fig. 9). Only the standard library is used.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when input shapes do not line up.
var ErrDimension = errors.New("stats: dimension mismatch")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 (not an error) when either series is constant: the paper's
// correlation heatmap treats undefined correlation as "no correlation".
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: len(x)=%d len(y)=%d", ErrDimension, len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: pearson needs at least 2 samples, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Numerical safety: clamp to [-1, 1].
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r, nil
}

// Standardize z-scores a column in place and returns it. Constant columns
// become all-zero.
func Standardize(col []float64) []float64 {
	m, sd := Mean(col), StdDev(col)
	for i := range col {
		if sd == 0 {
			col[i] = 0
		} else {
			col[i] = (col[i] - m) / sd
		}
	}
	return col
}

// Column extracts column j from a row-major matrix.
func Column(rows [][]float64, j int) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[j]
	}
	return out
}

// StandardizeColumns z-scores every column of a row-major matrix, returning
// a new matrix.
func StandardizeColumns(rows [][]float64) [][]float64 {
	if len(rows) == 0 {
		return nil
	}
	p := len(rows[0])
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, p)
	}
	for j := 0; j < p; j++ {
		col := Standardize(Column(rows, j))
		for i := range rows {
			out[i][j] = col[i]
		}
	}
	return out
}

// EuclideanDist returns the L2 distance between two equal-length vectors.
func EuclideanDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CorrelationMatrix returns the p x p Pearson correlation matrix of the
// columns of rows (n x p).
func CorrelationMatrix(rows [][]float64) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("stats: empty matrix")
	}
	p := len(rows[0])
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = Column(rows, j)
	}
	out := make([][]float64, p)
	for i := range out {
		out[i] = make([]float64, p)
		out[i][i] = 1
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			r, err := Pearson(cols[i], cols[j])
			if err != nil {
				return nil, err
			}
			out[i][j], out[j][i] = r, r
		}
	}
	return out, nil
}

// CorrelationStrength buckets |r| the way Figure 8 colors its cells.
type CorrelationStrength uint8

const (
	// NoCorrelation: |r| < 0.2 (white).
	NoCorrelation CorrelationStrength = iota
	// WeakCorrelation: 0.2 <= |r| < 0.5 (gray).
	WeakCorrelation
	// StrongCorrelation: |r| >= 0.5 (black).
	StrongCorrelation
)

// String returns the bucket label.
func (c CorrelationStrength) String() string {
	switch c {
	case NoCorrelation:
		return "none"
	case WeakCorrelation:
		return "weak"
	default:
		return "strong"
	}
}

// Strength buckets a correlation coefficient per the paper's color code.
func Strength(r float64) CorrelationStrength {
	a := math.Abs(r)
	switch {
	case a < 0.2:
		return NoCorrelation
	case a < 0.5:
		return WeakCorrelation
	default:
		return StrongCorrelation
	}
}
