package stats

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigenvalues and eigenvectors of a symmetric matrix
// using the cyclic Jacobi method. Results are sorted by descending
// eigenvalue; eigenvectors are returned column-wise (vecs[i][k] is component
// i of eigenvector k).
func EigenSym(a [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("stats: eigen of empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimension, i, len(a[i]), n)
		}
	}
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	// Symmetry check (tolerant).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(m[i][j]-m[j][i]) > 1e-8*(1+math.Abs(m[i][j])) {
				return nil, nil, fmt.Errorf("stats: matrix not symmetric at (%d,%d)", i, j)
			}
			avg := (m[i][j] + m[j][i]) / 2
			m[i][j], m[j][i] = avg, avg
		}
	}

	v := identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := range vals {
		vals[i] = m[i][i]
	}
	// Sort by descending eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	outVals := make([]float64, n)
	outVecs := make([][]float64, n)
	for i := range outVecs {
		outVecs[i] = make([]float64, n)
	}
	for k, src := range idx {
		outVals[k] = vals[src]
		for i := 0; i < n; i++ {
			outVecs[i][k] = v[i][src]
		}
	}
	return outVals, outVecs, nil
}

func identity(n int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	return v
}

// rotate applies a Jacobi rotation J(p,q,theta) as m = J^T m J and
// accumulates v = v J.
func rotate(m, v [][]float64, p, q int, c, s float64) {
	n := len(m)
	for i := 0; i < n; i++ {
		mip, miq := m[i][p], m[i][q]
		m[i][p] = c*mip - s*miq
		m[i][q] = s*mip + c*miq
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m[p][j], m[q][j]
		m[p][j] = c*mpj - s*mqj
		m[q][j] = s*mpj + c*mqj
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

// PCAResult holds a principal-component decomposition.
type PCAResult struct {
	// Eigenvalues in descending order (variance along each component).
	Eigenvalues []float64
	// Components is p x p with components column-wise.
	Components [][]float64
	// Scores is n x k: the input rows projected on the first k components.
	Scores [][]float64
	// ExplainedVariance[k] is Eigenvalues[k] / sum(Eigenvalues).
	ExplainedVariance []float64
}

// PCA computes a principal-component analysis of the (already centered or
// standardized) row-major matrix rows, keeping k components. k is clamped to
// the number of columns.
func PCA(rows [][]float64, k int) (*PCAResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("stats: PCA of empty matrix")
	}
	p := len(rows[0])
	if k <= 0 || k > p {
		k = p
	}
	// Covariance (columns assumed centered): C = X^T X / n.
	cov := make([][]float64, p)
	for i := range cov {
		cov[i] = make([]float64, p)
	}
	for _, r := range rows {
		if len(r) != p {
			return nil, fmt.Errorf("%w: ragged PCA input", ErrDimension)
		}
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				cov[i][j] += r[i] * r[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}
	vals, vecs, err := EigenSym(cov)
	if err != nil {
		return nil, err
	}
	var totalVar float64
	for _, v := range vals {
		if v > 0 {
			totalVar += v
		}
	}
	res := &PCAResult{
		Eigenvalues:       vals,
		Components:        vecs,
		ExplainedVariance: make([]float64, len(vals)),
	}
	for i, v := range vals {
		if totalVar > 0 && v > 0 {
			res.ExplainedVariance[i] = v / totalVar
		}
	}
	res.Scores = make([][]float64, n)
	for r, row := range rows {
		sc := make([]float64, k)
		for c := 0; c < k; c++ {
			var s float64
			for i := 0; i < p; i++ {
				s += row[i] * vecs[i][c]
			}
			sc[c] = s
		}
		res.Scores[r] = sc
	}
	return res, nil
}
