package stats

import (
	"fmt"
	"math"
	"sort"
)

// MixedData is the input of Factor Analysis of Mixed Data: n observations
// described by quantitative columns and qualitative (categorical) columns.
// In the paper, observations are dominant kernels, quantitative variables
// are the Table IV metrics, and qualitative variables are the two roofline
// labels (memory- vs compute-intensive, bandwidth- vs latency-bound).
type MixedData struct {
	// QuantNames names the quantitative columns.
	QuantNames []string
	// Quant is n x len(QuantNames).
	Quant [][]float64
	// QualNames names the qualitative columns.
	QualNames []string
	// Qual is n x len(QualNames) category labels.
	Qual [][]string
}

// Rows returns the number of observations.
func (d MixedData) Rows() int {
	if len(d.Quant) > 0 {
		return len(d.Quant)
	}
	return len(d.Qual)
}

// Validate reports shape errors.
func (d MixedData) Validate() error {
	n := d.Rows()
	if n == 0 {
		return fmt.Errorf("stats: FAMD of empty data")
	}
	if len(d.Quant) > 0 && len(d.Quant) != n {
		return fmt.Errorf("%w: quantitative rows", ErrDimension)
	}
	for i, r := range d.Quant {
		if len(r) != len(d.QuantNames) {
			return fmt.Errorf("%w: quant row %d has %d cols, want %d", ErrDimension, i, len(r), len(d.QuantNames))
		}
	}
	if len(d.Qual) > 0 && len(d.Qual) != n {
		return fmt.Errorf("%w: qualitative rows", ErrDimension)
	}
	for i, r := range d.Qual {
		if len(r) != len(d.QualNames) {
			return fmt.Errorf("%w: qual row %d has %d cols, want %d", ErrDimension, i, len(r), len(d.QualNames))
		}
	}
	return nil
}

// FAMDResult holds the factor decomposition.
type FAMDResult struct {
	// Coords is n x k: observation coordinates on the retained dimensions.
	// These are the denoised vectors the clustering step consumes.
	Coords [][]float64
	// Eigenvalues of the retained dimensions (descending).
	Eigenvalues []float64
	// ExplainedVariance per retained dimension.
	ExplainedVariance []float64
	// ColumnNames names the expanded (standardized + one-hot) design-matrix
	// columns, for diagnostics.
	ColumnNames []string
}

// FAMD performs Factor Analysis of Mixed Data, keeping k dimensions (the
// "first few, most significant dimensions" that denoise the data before
// clustering, per the paper's Section V-D). Quantitative columns are
// z-standardized; each qualitative category becomes an indicator column
// scaled by 1/sqrt(p_cat) and centered, the standard FAMD weighting that
// makes both variable kinds comparable. PCA on the combined matrix yields
// the coordinates.
func FAMD(d MixedData, k int) (*FAMDResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := d.Rows()

	var cols [][]float64
	var names []string

	// Quantitative block: z-scores.
	for j := range d.QuantNames {
		col := Standardize(Column(d.Quant, j))
		cols = append(cols, col)
		names = append(names, d.QuantNames[j])
	}

	// Qualitative block: scaled, centered indicators.
	for j, qn := range d.QualNames {
		// Collect category levels in deterministic order.
		counts := make(map[string]int)
		for i := 0; i < n; i++ {
			counts[d.Qual[i][j]]++
		}
		levels := make([]string, 0, len(counts))
		for l := range counts {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		for _, level := range levels {
			p := float64(counts[level]) / float64(n)
			if p <= 0 || p >= 1 {
				// A constant qualitative column carries no information;
				// matching FactoMineR, it contributes nothing.
				if p >= 1 {
					continue
				}
			}
			w := 1 / math.Sqrt(p)
			col := make([]float64, n)
			mean := p * w
			for i := 0; i < n; i++ {
				v := 0.0
				if d.Qual[i][j] == level {
					v = w
				}
				col[i] = v - mean
			}
			cols = append(cols, col)
			names = append(names, qn+"="+level)
		}
	}

	if len(cols) == 0 {
		return nil, fmt.Errorf("stats: FAMD produced no columns")
	}
	// Assemble row-major design matrix.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, len(cols))
		for j, c := range cols {
			rows[i][j] = c[i]
		}
	}
	if k <= 0 || k > len(cols) {
		k = len(cols)
	}
	pca, err := PCA(rows, k)
	if err != nil {
		return nil, err
	}
	return &FAMDResult{
		Coords:            pca.Scores,
		Eigenvalues:       pca.Eigenvalues[:min(k, len(pca.Eigenvalues))],
		ExplainedVariance: pca.ExplainedVariance[:min(k, len(pca.ExplainedVariance))],
		ColumnNames:       names,
	}, nil
}

// CumulativeVariance returns the cumulative explained variance of the first
// k dimensions of the result.
func (r *FAMDResult) CumulativeVariance(k int) float64 {
	var s float64
	for i := 0; i < k && i < len(r.ExplainedVariance); i++ {
		s += r.ExplainedVariance[i]
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
