package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %g", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("std = %g", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %g, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(x, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %g, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("constant series r = %g, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
}

func TestPearsonSymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		a, err1 := Pearson(x, y)
		b, err2 := Pearson(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-12 && a >= -1 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStandardize(t *testing.T) {
	col := []float64{1, 2, 3, 4, 5}
	Standardize(col)
	if math.Abs(Mean(col)) > 1e-12 {
		t.Errorf("standardized mean = %g", Mean(col))
	}
	if math.Abs(StdDev(col)-1) > 1e-12 {
		t.Errorf("standardized std = %g", StdDev(col))
	}
	constant := []float64{3, 3, 3}
	Standardize(constant)
	for _, v := range constant {
		if v != 0 {
			t.Error("constant column should standardize to zeros")
		}
	}
}

func TestStandardizeColumns(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	out := StandardizeColumns(rows)
	if rows[0][0] != 1 {
		t.Error("input must not be mutated")
	}
	for j := 0; j < 2; j++ {
		if math.Abs(Mean(Column(out, j))) > 1e-12 {
			t.Errorf("col %d mean nonzero", j)
		}
	}
	if StandardizeColumns(nil) != nil {
		t.Error("empty input")
	}
}

func TestCorrelationMatrix(t *testing.T) {
	rows := [][]float64{{1, 2, -1}, {2, 4, -2}, {3, 6, -3}, {4, 8, -4}}
	m, err := CorrelationMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Error("diagonal should be 1")
	}
	if math.Abs(m[0][1]-1) > 1e-12 {
		t.Errorf("m[0][1] = %g, want 1", m[0][1])
	}
	if math.Abs(m[0][2]+1) > 1e-12 {
		t.Errorf("m[0][2] = %g, want -1", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix should be symmetric")
	}
	if _, err := CorrelationMatrix(nil); err == nil {
		t.Error("empty matrix should fail")
	}
}

func TestStrengthBuckets(t *testing.T) {
	cases := map[float64]CorrelationStrength{
		0: NoCorrelation, 0.19: NoCorrelation, -0.19: NoCorrelation,
		0.2: WeakCorrelation, -0.49: WeakCorrelation,
		0.5: StrongCorrelation, -1: StrongCorrelation,
	}
	for r, want := range cases {
		if got := Strength(r); got != want {
			t.Errorf("Strength(%g) = %v, want %v", r, got, want)
		}
	}
	if NoCorrelation.String() != "none" || StrongCorrelation.String() != "strong" {
		t.Error("strength names")
	}
}

func TestEuclideanDist(t *testing.T) {
	if d := EuclideanDist([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("dist = %g, want 5", d)
	}
}
