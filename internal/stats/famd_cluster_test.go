package stats

import (
	"math"
	"math/rand"
	"testing"
)

func mixedSample(r *rand.Rand, n int) MixedData {
	d := MixedData{
		QuantNames: []string{"gips", "ii"},
		QualNames:  []string{"side"},
	}
	for i := 0; i < n; i++ {
		side := "mem"
		base := 1.0
		if i%2 == 0 {
			side, base = "cmp", 10.0
		}
		d.Quant = append(d.Quant, []float64{base + r.NormFloat64()*0.3, base*2 + r.NormFloat64()*0.3})
		d.Qual = append(d.Qual, []string{side})
	}
	return d
}

func TestFAMDSeparatesGroups(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := mixedSample(r, 40)
	res, err := FAMD(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coords) != 40 || len(res.Coords[0]) != 2 {
		t.Fatalf("coords shape %dx%d", len(res.Coords), len(res.Coords[0]))
	}
	// Dimension 1 must separate the two groups: means well apart.
	var m0, m1 float64
	for i, c := range res.Coords {
		if i%2 == 0 {
			m0 += c[0]
		} else {
			m1 += c[0]
		}
	}
	m0 /= 20
	m1 /= 20
	if math.Abs(m0-m1) < 1 {
		t.Errorf("FAMD dim1 group means %g vs %g: no separation", m0, m1)
	}
	// First dimension should explain the bulk of variance.
	if res.ExplainedVariance[0] < 0.5 {
		t.Errorf("dim1 variance = %g", res.ExplainedVariance[0])
	}
	// Expanded columns: 2 quant + 2 one-hot levels.
	if len(res.ColumnNames) != 4 {
		t.Errorf("column names = %v", res.ColumnNames)
	}
}

func TestFAMDValidation(t *testing.T) {
	if _, err := FAMD(MixedData{}, 2); err == nil {
		t.Error("empty data should fail")
	}
	bad := MixedData{QuantNames: []string{"a"}, Quant: [][]float64{{1, 2}}}
	if _, err := FAMD(bad, 1); err == nil {
		t.Error("ragged quant should fail")
	}
	bad2 := MixedData{QualNames: []string{"a"}, Qual: [][]string{{"x", "y"}}}
	if _, err := FAMD(bad2, 1); err == nil {
		t.Error("ragged qual should fail")
	}
}

func TestFAMDConstantQualColumn(t *testing.T) {
	d := MixedData{
		QuantNames: []string{"v"},
		Quant:      [][]float64{{1}, {2}, {3}},
		QualNames:  []string{"c"},
		Qual:       [][]string{{"same"}, {"same"}, {"same"}},
	}
	res, err := FAMD(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The constant qualitative column contributes nothing.
	if len(res.ColumnNames) != 1 {
		t.Errorf("columns = %v", res.ColumnNames)
	}
}

func TestFAMDCumulativeVariance(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	res, err := FAMD(mixedSample(r, 30), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cv := res.CumulativeVariance(len(res.ExplainedVariance)); cv < 0.99 || cv > 1.01 {
		t.Errorf("full cumulative variance = %g, want ~1", cv)
	}
	if res.CumulativeVariance(1) > res.CumulativeVariance(2)+1e-12 {
		t.Error("cumulative variance must be nondecreasing")
	}
}

func gaussianBlobs(r *rand.Rand, centers [][]float64, perBlob int, spread float64) ([][]float64, []int) {
	var pts [][]float64
	var truth []int
	for ci, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := make([]float64, len(c))
			for j := range c {
				p[j] = c[j] + r.NormFloat64()*spread
			}
			pts = append(pts, p)
			truth = append(truth, ci)
		}
	}
	return pts, truth
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	pts, truth := gaussianBlobs(r, centers, 15, 0.5)
	for _, linkage := range []Linkage{WardLinkage, AverageLinkage, CompleteLinkage, SingleLinkage} {
		d, err := Agglomerative(pts, nil, linkage)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := d.Cut(3)
		if err != nil {
			t.Fatal(err)
		}
		// Every true blob must map to exactly one cluster id.
		seen := map[int]int{}
		ok := true
		for i, c := range assign {
			if prev, found := seen[truth[i]]; found && prev != c {
				ok = false
			}
			seen[truth[i]] = c
		}
		if !ok {
			t.Errorf("%v linkage split a blob", linkage)
		}
		if len(ClusterSizes(assign)) != 3 {
			t.Errorf("%v linkage: %d clusters", linkage, len(ClusterSizes(assign)))
		}
	}
}

func TestDendrogramStructure(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}}
	d, err := Agglomerative(pts, []string{"a", "b", "c"}, WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(d.Merges))
	}
	// First merge joins the close pair at low height.
	if d.Merges[0].Height >= d.Merges[1].Height {
		t.Error("merge heights must increase")
	}
	if d.Merges[1].Size != 3 {
		t.Errorf("final merge size = %d", d.Merges[1].Size)
	}
	// Cophenetic heights: a,b merge early; a,c only at the top.
	hab, err := d.CopheneticHeight(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hac, err := d.CopheneticHeight(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hab >= hac {
		t.Errorf("cophenetic(a,b)=%g should be < cophenetic(a,c)=%g", hab, hac)
	}
	if h, _ := d.CopheneticHeight(1, 1); h != 0 {
		t.Error("self cophenetic height should be 0")
	}
	order := d.LeafOrder()
	if len(order) != 3 {
		t.Errorf("leaf order = %v", order)
	}
}

func TestCutEdgeCases(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	d, err := Agglomerative(pts, nil, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	one, err := d.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range one {
		if c != 0 {
			t.Error("k=1 should place everything in cluster 0")
		}
	}
	all, err := d.Cut(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ClusterSizes(all)) != 4 {
		t.Error("k=n should be singletons")
	}
	if _, err := d.Cut(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := d.Cut(5); err == nil {
		t.Error("k>n should fail")
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(nil, nil, WardLinkage); err == nil {
		t.Error("empty points")
	}
	if _, err := Agglomerative([][]float64{{1}, {1, 2}}, nil, WardLinkage); err == nil {
		t.Error("ragged points")
	}
	if _, err := Agglomerative([][]float64{{1}}, []string{"a", "b"}, WardLinkage); err == nil {
		t.Error("label count mismatch")
	}
}

func TestSilhouetteScore(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts, truth := gaussianBlobs(r, [][]float64{{0, 0}, {20, 20}}, 20, 0.5)
	good, err := SilhouetteScore(pts, truth)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.8 {
		t.Errorf("well-separated blobs silhouette = %g, want > 0.8", good)
	}
	// Random assignment should score far worse.
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = r.Intn(2)
	}
	worse, err := SilhouetteScore(pts, bad)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Errorf("random assignment silhouette %g >= truth %g", worse, good)
	}
	if _, err := SilhouetteScore(pts, truth[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := SilhouetteScore(pts, make([]int, len(pts))); err == nil {
		t.Error("single cluster should fail")
	}
}

func TestSingleLeafDendrogram(t *testing.T) {
	d, err := Agglomerative([][]float64{{1, 2}}, []string{"only"}, WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 0 {
		t.Error("single leaf has no merges")
	}
	assign, err := d.Cut(1)
	if err != nil || len(assign) != 1 {
		t.Errorf("cut single: %v %v", assign, err)
	}
	if got := d.LeafOrder(); len(got) != 1 || got[0] != 0 {
		t.Errorf("leaf order = %v", got)
	}
}

func TestLinkageString(t *testing.T) {
	if WardLinkage.String() != "ward" || SingleLinkage.String() != "single" {
		t.Error("linkage names")
	}
}
