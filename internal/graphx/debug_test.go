package graphx

import (
	"testing"

	"repro/internal/units"
)

// TestDebugTimeShares prints per-kernel shares under -v; never fails.
func TestDebugTimeShares(t *testing.T) {
	for _, w := range []*Workload{SocialBFS(), RoadBFS()} {
		s := session(t)
		if err := w.Run(s); err != nil {
			t.Fatal(err)
		}
		total := s.TotalTime().Float()
		agg := s.TotalWarpInstructions().Float()
		var txns units.Txns
		for _, l := range s.Launches() {
			txns += l.Traffic.DRAMTxns
		}
		t.Logf("=== %s: %d launches, %.3f ms, %d kernels, %d Mwarps, agg II=%.2f agg GIPS=%.2f iters=%d pull=%d",
			w.Abbr(), s.LaunchCount(), total*1e3, len(s.Kernels()),
			s.TotalWarpInstructions()/1e6, agg/(txns.Float()+1),
			agg/total/1e9, w.LastResult.Iterations, w.LastResult.PullIterations)
		for _, k := range s.Kernels() {
			m := k.Metrics()
			t.Logf("  %-28s share=%5.1f%% inv=%4d II=%8.2f GIPS=%7.2f L1=%.2f L2=%.2f",
				k.Name, 100*k.TotalTime.Float()/total, k.Invocations, m[1], m[0], m[4], m[5])
		}
	}
}
