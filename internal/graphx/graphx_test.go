package graphx

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/workloads"
)

func TestRMATProperties(t *testing.T) {
	g, err := RMAT(12, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1<<12 {
		t.Errorf("N = %d", g.N)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// Heavy tail: max degree far above average.
	avg := float64(g.NumEdges()) / float64(g.N)
	if float64(g.MaxDegree()) < 10*avg {
		t.Errorf("max degree %d vs avg %.1f: not heavy-tailed", g.MaxDegree(), avg)
	}
	// Symmetric storage: every edge has its reverse.
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(int(u)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing reverse", v, u)
			}
		}
	}
	if _, err := RMAT(1, 8, 1); err == nil {
		t.Error("tiny scale should fail")
	}
	if _, err := RMAT(10, 0, 1); err == nil {
		t.Error("zero edge factor should fail")
	}
}

func TestRoadGridProperties(t *testing.T) {
	g, err := RoadGrid(64, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 64*64 {
		t.Errorf("N = %d", g.N)
	}
	// Low max degree (lattice + rare shortcuts).
	if g.MaxDegree() > 12 {
		t.Errorf("road max degree = %d, want small", g.MaxDegree())
	}
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 2 || avg > 5 {
		t.Errorf("road avg degree = %.2f, want ~3.5", avg)
	}
	if _, err := RoadGrid(1, 5, 1); err == nil {
		t.Error("degenerate grid should fail")
	}
}

func TestCSRNoSelfLoopsNoDuplicates(t *testing.T) {
	g, err := RMAT(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if int(u) == v {
				t.Fatalf("self loop at %d", v)
			}
			if i > 0 && nb[i-1] >= u {
				t.Fatalf("unsorted/duplicate adjacency at %d", v)
			}
		}
	}
}

func TestReferenceBFS(t *testing.T) {
	// A path graph 0-1-2-3: depths are 0,1,2,3.
	g := fromAdjacency([][]int32{{1}, {0, 2}, {1, 3}, {2}})
	res := ReferenceBFS(g, 0)
	for v, want := range []int32{0, 1, 2, 3} {
		if res.Depth[v] != want {
			t.Errorf("depth[%d] = %d, want %d", v, res.Depth[v], want)
		}
	}
	// Four frontier expansions: {0}, {1}, {2}, {3} (the last finds nothing).
	if res.Iterations != 4 || res.Visited != 4 {
		t.Errorf("iterations=%d visited=%d", res.Iterations, res.Visited)
	}
	if len(res.FrontierSizes) != 4 || res.FrontierSizes[0] != 1 {
		t.Errorf("frontier sizes = %v", res.FrontierSizes)
	}
}

func session(t *testing.T) *profiler.Session {
	t.Helper()
	d, err := gpu.New(gpu.RTX3080())
	if err != nil {
		t.Fatal(err)
	}
	return profiler.NewSession(d)
}

func TestGunrockBFSMatchesReference(t *testing.T) {
	for name, build := range map[string]func() (*Graph, error){
		"rmat": func() (*Graph, error) { return RMAT(12, 8, 7) },
		"road": func() (*Graph, error) { return RoadGrid(48, 48, 7) },
	} {
		g, err := build()
		if err != nil {
			t.Fatal(err)
		}
		src := g.LargestComponentVertex()
		ref := ReferenceBFS(g, src)
		for _, dirOpt := range []bool{false, true} {
			got, err := GunrockBFS(g, src, BFSConfig{DirectionOptimized: dirOpt}, session(t))
			if err != nil {
				t.Fatal(err)
			}
			if got.Visited != ref.Visited {
				t.Errorf("%s dirOpt=%v: visited %d, want %d", name, dirOpt, got.Visited, ref.Visited)
			}
			for v := range ref.Depth {
				if got.Depth[v] != ref.Depth[v] {
					t.Fatalf("%s dirOpt=%v: depth[%d] = %d, want %d", name, dirOpt, v, got.Depth[v], ref.Depth[v])
				}
			}
		}
	}
}

func TestGunrockBFSBadSource(t *testing.T) {
	g, err := RoadGrid(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GunrockBFS(g, -1, BFSConfig{}, session(t)); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := GunrockBFS(g, g.N, BFSConfig{}, session(t)); err == nil {
		t.Error("out-of-range source should fail")
	}
}

func TestSocialBFSKernelSet(t *testing.T) {
	w := SocialBFS()
	if w.Abbr() != "GST" || w.Domain() != workloads.Graph || w.Suite() != workloads.Cactus {
		t.Error("GST identity")
	}
	s := session(t)
	if err := w.Run(s); err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
	}
	// Table I: GST executes 12 kernels.
	if len(ks) != 12 {
		list := make([]string, 0, len(ks))
		for _, k := range ks {
			list = append(list, k.Name)
		}
		t.Errorf("GST kernels = %d (%v), want 12", len(ks), list)
	}
	if !names["bottom_up_expand"] {
		t.Error("social input must trigger the pull kernels")
	}
	if w.LastResult.PullIterations == 0 {
		t.Error("direction optimizer never switched on the social graph")
	}
	// Social graphs have tiny diameter.
	if w.LastResult.Iterations > 15 {
		t.Errorf("social BFS took %d iterations, want shallow", w.LastResult.Iterations)
	}
	// Most of the graph must be reachable.
	if float64(w.LastResult.Visited) < 0.5*float64(1<<17) {
		t.Errorf("visited %d of %d vertices", w.LastResult.Visited, 1<<17)
	}
}

func TestRoadBFSKernelSetDiffersFromSocial(t *testing.T) {
	w := RoadBFS()
	s := session(t)
	if err := w.Run(s); err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
	}
	// Table I: GRU executes 8 kernels.
	if len(ks) != 8 {
		list := make([]string, 0, len(ks))
		for _, k := range ks {
			list = append(list, k.Name)
		}
		t.Errorf("GRU kernels = %d (%v), want 8", len(ks), list)
	}
	// Observation #3: the road input must NOT trigger the pull kernels.
	if names["bottom_up_expand"] || names["bitmap_to_queue"] {
		t.Error("road input must not trigger bottom-up kernels")
	}
	if w.LastResult.PullIterations != 0 {
		t.Error("direction optimizer switched on the road graph")
	}
	// Road networks have enormous diameter.
	if w.LastResult.Iterations < 100 {
		t.Errorf("road BFS took %d iterations, want deep traversal", w.LastResult.Iterations)
	}
}

func TestBFSConfigDefaults(t *testing.T) {
	var c BFSConfig
	if c.pullThreshold() != 0.05 {
		t.Error("default pull threshold")
	}
	if c.maxTraceEdges() != 40960 {
		t.Error("default trace budget")
	}
	c.PullThreshold = 0.2
	c.MaxTraceEdges = 100
	if c.pullThreshold() != 0.2 || c.maxTraceEdges() != 100 {
		t.Error("explicit config ignored")
	}
}
