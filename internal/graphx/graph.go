// Package graphx implements the graph-analytics substrate behind the Cactus
// GST/GRU workloads: graph generators standing in for the paper's
// SOC-Twitter10 social network and Road-USA road network, and a
// Gunrock-style frontier-based BFS whose per-iteration kernel launches are
// derived from the actual frontier the traversal produces. A bottom-up-style
// single-kernel BFS (the Rodinia/Parboil formulation) is also provided for
// the baseline suites and the BFS ablation.
package graphx

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	N       int
	Offsets []int32
	Edges   []int32
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns vertex v's adjacency slice.
func (g *Graph) Neighbors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// MaxDegree returns the maximum out-degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// fromAdjacency builds a CSR graph from an adjacency list, deduplicating
// and sorting neighbor sets.
func fromAdjacency(adj [][]int32) *Graph {
	n := len(adj)
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		nb := adj[v]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		// Dedup.
		out := nb[:0]
		var prev int32 = -1
		for _, u := range nb {
			if u != prev && int(u) != v {
				out = append(out, u)
				prev = u
			}
		}
		g.Offsets[v] = int32(len(g.Edges))
		g.Edges = append(g.Edges, out...)
	}
	g.Offsets[n] = int32(len(g.Edges))
	return g
}

// fromEdges builds a CSR graph from an undirected edge list (each pair
// stored in both directions), sorting and deduplicating neighbor sets and
// dropping self-loops — the same normalization as fromAdjacency, but via a
// two-pass counting build into flat arrays instead of growing one slice per
// vertex, which is where the generators used to spend their allocation time.
func fromEdges(n int, us, vs []int32) *Graph {
	// Degree count, then prefix-sum into per-vertex cursors.
	pos := make([]int32, n+1)
	for i := range us {
		pos[us[i]]++
		pos[vs[i]]++
	}
	var run int32
	for v := 0; v <= n; v++ {
		run, pos[v] = run+pos[v], run
	}
	edges := make([]int32, 2*len(us))
	for i := range us {
		u, v := us[i], vs[i]
		edges[pos[u]] = v
		pos[u]++
		edges[pos[v]] = u
		pos[v]++
	}
	// pos[v] now marks the end of v's range (and pos[v-1] its start). Sort
	// each range, then compact dedup/self-loop-free runs toward the front;
	// the write cursor never passes a range's read start.
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	w := int32(0)
	lo := int32(0)
	for v := 0; v < n; v++ {
		hi := pos[v]
		g.Offsets[v] = w
		nb := edges[lo:hi]
		slices.Sort(nb)
		var prev int32 = -1
		for _, u := range nb {
			if u != prev && int(u) != v {
				edges[w] = u
				w++
				prev = u
			}
		}
		lo = hi
	}
	g.Offsets[n] = w
	g.Edges = edges[:w:w]
	return g
}

// RMAT generates a scale-free RMAT graph with 2^scale vertices and about
// edgeFactor*2^scale undirected edges (stored in both directions) — the
// stand-in for the paper's SOC-Twitter10 social network (21 M vertices,
// 265 M edges; here reduced, see DESIGN.md scale substitutions). The
// standard Graph500 partition probabilities (0.57, 0.19, 0.19, 0.05) yield
// the heavy-tailed degree distribution that drives wide BFS frontiers.
func RMAT(scale, edgeFactor int, seed int64) (*Graph, error) {
	if scale < 2 || scale > 24 {
		return nil, fmt.Errorf("graphx: RMAT scale %d out of [2,24]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graphx: RMAT edge factor %d", edgeFactor)
	}
	n := 1 << scale
	m := n * edgeFactor
	r := rand.New(rand.NewSource(seed))
	us := make([]int32, 0, m)
	vs := make([]int32, 0, m)
	const a, b, c = 0.57, 0.19, 0.19
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// upper-left: nothing
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
	}
	return fromEdges(n, us, vs), nil
}

// RoadGrid generates a road-network-like graph: a w x h lattice with
// mostly 4-neighbor connectivity, a fraction of deleted edges (dead ends)
// and occasional long-range "highway" shortcuts — the stand-in for the
// paper's Road-USA input (23 M vertices, 28 M edges; average degree ~2.4,
// enormous diameter). The low degree and high diameter drive BFS into many
// iterations with tiny frontiers.
func RoadGrid(w, h int, seed int64) (*Graph, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("graphx: road grid %dx%d too small", w, h)
	}
	n := w * h
	r := rand.New(rand.NewSource(seed))
	us := make([]int32, 0, 2*n)
	vs := make([]int32, 0, 2*n)
	add := func(u, v int) {
		us = append(us, int32(u))
		vs = append(vs, int32(v))
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u := y*w + x
			if x+1 < w && r.Float64() > 0.12 { // some missing streets
				add(u, u+1)
			}
			if y+1 < h && r.Float64() > 0.12 {
				add(u, u+w)
			}
		}
	}
	// Sparse highways: long-range shortcuts for ~0.1% of vertices.
	for i := 0; i < n/1000; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	return fromEdges(n, us, vs), nil
}

// LargestComponentVertex returns a vertex in (very likely) the largest
// connected component: the highest-degree vertex, a standard BFS source
// choice for benchmarking.
func (g *Graph) LargestComponentVertex() int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// BFSResult holds a traversal's output and per-iteration statistics.
type BFSResult struct {
	// Depth[v] is the BFS depth of v, or -1 if unreached.
	Depth []int32
	// Iterations is the number of frontier expansions (graph diameter from
	// the source).
	Iterations int
	// Visited is the number of reached vertices.
	Visited int
	// FrontierSizes[i] is the input-frontier size of iteration i.
	FrontierSizes []int
	// EdgesExpanded[i] is the number of edges examined in iteration i.
	EdgesExpanded []int
	// PullIterations counts iterations executed in bottom-up (pull) mode by
	// the direction-optimizing traversal.
	PullIterations int
}

// ReferenceBFS computes BFS depths with a simple sequential queue — the
// oracle the kernel-issuing implementations are tested against.
func ReferenceBFS(g *Graph, src int) *BFSResult {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	res := &BFSResult{Depth: depth, Visited: 1}
	for d := int32(1); len(queue) > 0; d++ {
		var next []int32
		edges := 0
		res.FrontierSizes = append(res.FrontierSizes, len(queue))
		for _, u := range queue {
			for _, v := range g.Neighbors(int(u)) {
				edges++
				if depth[v] == -1 {
					depth[v] = d
					next = append(next, v)
					res.Visited++
				}
			}
		}
		res.EdgesExpanded = append(res.EdgesExpanded, edges)
		res.Iterations++
		queue = next
	}
	return res
}
